// Stage isolation and re-arming semantics of the STREAM controller —
// "Each of these stages is ran in isolation, orchestrated by the host.
//  The use of blocking calls ensures the separation between stages"
//  (paper Sec. V).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/layout.hpp"
#include "stream/design.hpp"

namespace polymem::stream {
namespace {

StreamDesignConfig small_cfg() {
  StreamDesignConfig cfg;
  cfg.vector_capacity = 64;
  cfg.width = 32;
  cfg.stream_depth = 64;
  return cfg;
}

TEST(StageIsolation, IdleControllerTicksAreNoOps) {
  StreamDesign design(small_cfg());
  auto& ctl = design.controller();
  const auto cycles_before = ctl.polymem().cycles();
  for (int c = 0; c < 100; ++c) ctl.tick();
  EXPECT_TRUE(ctl.done());
  // An idle controller does not burn PolyMem cycles (the real design's
  // clock runs, but no accesses happen — our model skips the ticks).
  EXPECT_EQ(ctl.polymem().cycles(), cycles_before);
}

TEST(StageIsolation, StagesDoNotLeakAcrossStarts) {
  StreamDesign design(small_cfg());
  auto& ctl = design.controller();
  auto& mem = ctl.polymem().functional();
  for (std::int64_t k = 0; k < 64; ++k)
    mem.store(ctl.band(Vector::kA).coord(k), core::pack_double(1.0 + k));

  // Run a HALF-length copy, then a full-length one; the second stage must
  // start from scratch (fresh counters), not resume.
  ctl.start(Mode::kCopy, 32);
  while (!ctl.done()) ctl.tick();
  ctl.start(Mode::kCopy, 64);
  EXPECT_FALSE(ctl.done());  // fresh stage, nothing done yet
  while (!ctl.done()) ctl.tick();
  for (std::int64_t k = 0; k < 64; ++k)
    EXPECT_DOUBLE_EQ(
        core::unpack_double(mem.load(ctl.band(Vector::kC).coord(k))),
        1.0 + k);
}

TEST(StageIsolation, ModeReportsCurrentStage) {
  StreamDesign design(small_cfg());
  auto& ctl = design.controller();
  EXPECT_EQ(ctl.mode(), Mode::kIdle);
  ctl.start(Mode::kScale, 64, 2.0);
  EXPECT_EQ(ctl.mode(), Mode::kScale);
}

TEST(StageIsolation, LoadDoesNotDisturbOtherBands) {
  StreamDesign design(small_cfg());
  auto& ctl = design.controller();
  auto& mem = ctl.polymem().functional();
  // Pre-existing B and C data.
  for (std::int64_t k = 0; k < 64; ++k) {
    mem.store(ctl.band(Vector::kB).coord(k), core::pack_double(-1.0));
    mem.store(ctl.band(Vector::kC).coord(k), core::pack_double(-2.0));
  }
  auto& a_in = design.manager().stream(StreamDesign::kAIn);
  ctl.start(Mode::kLoadA, 64);
  std::int64_t pushed = 0;
  while (!ctl.done()) {
    while (pushed < 64 && a_in.push(core::pack_double(7.0))) ++pushed;
    ctl.tick();
  }
  for (std::int64_t k = 0; k < 64; ++k) {
    EXPECT_DOUBLE_EQ(
        core::unpack_double(mem.load(ctl.band(Vector::kB).coord(k))), -1.0);
    EXPECT_DOUBLE_EQ(
        core::unpack_double(mem.load(ctl.band(Vector::kC).coord(k))), -2.0);
  }
}

TEST(StageIsolation, CountersAccumulateAcrossStages) {
  // The underlying CyclePolyMem keeps global statistics across stages —
  // the DSE-style utilisation accounting.
  StreamDesign design(small_cfg());
  auto& ctl = design.controller();
  auto& mem = ctl.polymem().functional();
  for (std::int64_t k = 0; k < 64; ++k)
    mem.store(ctl.band(Vector::kA).coord(k), core::pack_double(1.0));
  ctl.start(Mode::kCopy, 64);
  while (!ctl.done()) ctl.tick();
  const auto reads_after_first = ctl.polymem().reads_issued();
  EXPECT_EQ(reads_after_first, 8u);
  ctl.start(Mode::kCopy, 64);
  while (!ctl.done()) ctl.tick();
  EXPECT_EQ(ctl.polymem().reads_issued(), 2 * reads_after_first);
}

}  // namespace
}  // namespace polymem::stream
