#include "stream/design.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::stream {
namespace {

TEST(StreamDesignConfig, DefaultsMatchPaperSectionV) {
  const StreamDesignConfig cfg;
  // "we synthesized this design using a PolyMem with 8 lanes (p*q = 2*4)"
  EXPECT_EQ(cfg.p, 2u);
  EXPECT_EQ(cfg.q, 4u);
  // "Because we access data in rows only, we have used the RoCo scheme."
  EXPECT_EQ(cfg.scheme, maf::Scheme::kRoCo);
  // "The maximum allocated size for each array is 170*512*8 bytes".
  EXPECT_EQ(cfg.vector_capacity, 170 * 512);
  EXPECT_EQ(cfg.vector_capacity * 8, 696320);  // ~700KB
  // "the STREAM design, using 2 read ports".
  EXPECT_EQ(cfg.read_ports, 2u);
  // "synthesize this STREAM-Copy design ... at 120MHz".
  EXPECT_DOUBLE_EQ(cfg.clock_mhz, 120.0);
  // "The required delay applied on the output data is 14 clock cycles".
  EXPECT_EQ(cfg.read_latency, 14u);
}

TEST(StreamDesignConfig, PolyMemConfigHoldsThreeBands) {
  const StreamDesignConfig cfg;
  const auto pm = cfg.polymem_config();
  EXPECT_EQ(pm.width, 512);
  EXPECT_EQ(pm.height, 510);  // 3 x 170 rows
  EXPECT_GE(pm.capacity_bytes(), 3ull * 170 * 512 * 8);
  EXPECT_EQ(pm.read_latency, 14u);
}

TEST(StreamDesign, WiresFourStreamsAndController) {
  StreamDesign design;
  EXPECT_NO_THROW(design.manager().stream(StreamDesign::kAIn));
  EXPECT_NO_THROW(design.manager().stream(StreamDesign::kBIn));
  EXPECT_NO_THROW(design.manager().stream(StreamDesign::kCIn));
  EXPECT_NO_THROW(design.manager().stream(StreamDesign::kOut));
  EXPECT_EQ(design.manager().kernel_count(), 1u);
  EXPECT_TRUE(design.controller().done());  // idle at reset
}

TEST(StreamDesign, SmallCustomConfig) {
  StreamDesignConfig cfg;
  cfg.vector_capacity = 64;
  cfg.width = 32;
  StreamDesign design(cfg);
  EXPECT_EQ(design.controller().config().height, 6);  // 3 x 2 rows
  EXPECT_EQ(design.controller().vector_capacity(), 64);
}

TEST(StreamDesign, BandsAreDisjointAndOrdered) {
  StreamDesignConfig cfg;
  cfg.vector_capacity = 64;
  cfg.width = 32;
  StreamDesign design(cfg);
  const auto a = design.controller().band(Vector::kA);
  const auto b = design.controller().band(Vector::kB);
  const auto c = design.controller().band(Vector::kC);
  EXPECT_EQ(a.first_row(), 0);
  EXPECT_EQ(b.first_row(), 2);
  EXPECT_EQ(c.first_row(), 4);
}

}  // namespace
}  // namespace polymem::stream
