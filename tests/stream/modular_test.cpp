// The paper's modular-vs-fused comparison, made functional: the modular
// multi-kernel design computes the same results at the same steady-state
// throughput; the cost is resources (2x, per the resource model) and a
// few cycles of inter-kernel pipeline depth.
#include "stream/modular.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/layout.hpp"
#include "stream/host.hpp"
#include "synth/resource_model.hpp"

namespace polymem::stream {
namespace {

StreamDesignConfig small_cfg() {
  StreamDesignConfig cfg;
  cfg.vector_capacity = 512;
  cfg.width = 64;
  cfg.stream_depth = 64;
  return cfg;
}

void fill_band(core::CyclePolyMem& mem, const core::VectorBand& band,
               std::int64_t n, double base) {
  for (std::int64_t k = 0; k < n; ++k)
    mem.functional().store(band.coord(k),
                           core::pack_double(base + 0.5 * k));
}

double read_band(core::CyclePolyMem& mem, const core::VectorBand& band,
                 std::int64_t k) {
  return core::unpack_double(mem.functional().load(band.coord(k)));
}

TEST(ModularDesign, CopyProducesIdenticalResults) {
  ModularCopyDesign design(small_cfg());
  fill_band(design.polymem(), design.band(Vector::kA), 512, 1.0);
  design.start(Mode::kCopy, 512);
  EXPECT_FALSE(design.done());
  design.run();
  for (std::int64_t k = 0; k < 512; ++k)
    EXPECT_DOUBLE_EQ(read_band(design.polymem(), design.band(Vector::kC), k),
                     1.0 + 0.5 * k);
}

TEST(ModularDesign, ScaleAppliesTheScalar) {
  ModularCopyDesign design(small_cfg());
  fill_band(design.polymem(), design.band(Vector::kB), 512, 2.0);
  design.start(Mode::kScale, 512, 4.0);
  design.run();
  for (std::int64_t k = 0; k < 512; ++k)
    EXPECT_DOUBLE_EQ(read_band(design.polymem(), design.band(Vector::kA), k),
                     4.0 * (2.0 + 0.5 * k));
}

TEST(ModularDesign, SameThroughputAsFusedPlusPipelineDepth) {
  // Fused: groups + latency + 1 cycles (see controller tests). Modular:
  // the same plus a handful of stream-hop cycles — NOT slower per
  // element, exactly the paper's observation that modularity costs
  // resources, not bandwidth.
  const std::int64_t n = 512;
  StreamDesignConfig cfg = small_cfg();

  StreamDesign fused(cfg);
  fill_band(fused.controller().polymem(),
            fused.controller().band(Vector::kA), n, 0.0);
  fused.controller().start(Mode::kCopy, n);
  std::uint64_t fused_cycles = 0;
  while (!fused.controller().done()) {
    fused.controller().tick();
    ++fused_cycles;
  }

  ModularCopyDesign modular(cfg);
  fill_band(modular.polymem(), modular.band(Vector::kA), n, 0.0);
  modular.start(Mode::kCopy, n);
  const std::uint64_t modular_cycles = modular.run();

  EXPECT_GE(modular_cycles, fused_cycles);
  EXPECT_LE(modular_cycles, fused_cycles + 8);  // a few hops of depth
  // Throughput within 10%.
  EXPECT_LT(static_cast<double>(modular_cycles) / fused_cycles, 1.1);
}

TEST(ModularDesign, ResourceModelChargesTwiceTheLogic) {
  const synth::ResourceModel resources;
  const auto cfg = small_cfg().polymem_config();
  const auto fused = resources.estimate(cfg);
  const auto modular = resources.estimate_modular(cfg);
  EXPECT_DOUBLE_EQ(modular.logic_pct, 2 * fused.logic_pct);
}

TEST(ModularDesign, BackPressureThroughTinyStreams) {
  // Ruthlessly small FIFOs: the design must still complete, just slower.
  StreamDesignConfig cfg = small_cfg();
  cfg.stream_depth = 8;  // exactly one lane group
  ModularCopyDesign design(cfg);
  fill_band(design.polymem(), design.band(Vector::kA), 64, 5.0);
  design.start(Mode::kCopy, 64);
  design.run();
  for (std::int64_t k = 0; k < 64; ++k)
    EXPECT_DOUBLE_EQ(read_band(design.polymem(), design.band(Vector::kC), k),
                     5.0 + 0.5 * k);
}

TEST(ModularDesign, RejectsUnsupportedModesAndLengths) {
  ModularCopyDesign design(small_cfg());
  EXPECT_THROW(design.start(Mode::kSum, 64), InvalidArgument);
  EXPECT_THROW(design.start(Mode::kCopy, 7), InvalidArgument);
  EXPECT_THROW(design.start(Mode::kCopy, 100000), InvalidArgument);
}

TEST(ModularDesign, ReusableAcrossRuns) {
  ModularCopyDesign design(small_cfg());
  fill_band(design.polymem(), design.band(Vector::kA), 64, 1.0);
  design.start(Mode::kCopy, 64);
  design.run();
  fill_band(design.polymem(), design.band(Vector::kA), 64, 9.0);
  design.start(Mode::kCopy, 64);
  design.run();
  EXPECT_DOUBLE_EQ(read_band(design.polymem(), design.band(Vector::kC), 0),
                   9.0);
}

}  // namespace
}  // namespace polymem::stream
