// STREAM design variants beyond the paper's synthesised point: 16 lanes,
// different schemes, different latencies — the "more in-depth analysis"
// the paper defers to future work.
#include <gtest/gtest.h>

#include "stream/host.hpp"

namespace polymem::stream {
namespace {

std::vector<double> iota_doubles(int n, double base) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) v[static_cast<std::size_t>(k)] = base + k;
  return v;
}

TEST(StreamVariants, SixteenLaneDesignDoublesThePeak) {
  StreamDesignConfig cfg;
  cfg.vector_capacity = 2048;
  cfg.width = 128;
  cfg.q = 8;  // 16 lanes (2x8)
  StreamHost host(cfg);
  // Peak doubles: 2 x 16 x 8B x 120MHz.
  EXPECT_DOUBLE_EQ(host.theoretical_peak_bytes_per_s(Mode::kCopy), 30720e6);

  host.load(iota_doubles(2048, 1.0), iota_doubles(2048, 0.0),
            iota_doubles(2048, 0.0));
  const auto copy = host.run(Mode::kCopy, 2048, 1);
  // 2048/16 groups + 14 + 1 cycles.
  EXPECT_EQ(copy.cycles_per_run, 2048u / 16 + 15);
  // Exact analytic rate: bytes / (300ns call overhead + cycles at 120MHz).
  const double expected =
      2048 * 2 * 8.0 / (300e-9 + copy.cycles_per_run / 120e6);
  EXPECT_NEAR(copy.best_rate_bytes_per_s(), expected, 1.0);
  std::vector<double> a(2048), b(2048), c(2048);
  host.offload(a, b, c);
  EXPECT_EQ(c, iota_doubles(2048, 1.0));
}

TEST(StreamVariants, ReRoSchemeWorksForRowOnlyTraffic) {
  // The paper picked RoCo; ReRo also serves rows — the design must run
  // identically (schemes differ only in the unused pattern family).
  StreamDesignConfig cfg;
  cfg.vector_capacity = 512;
  cfg.width = 64;
  cfg.scheme = maf::Scheme::kReRo;
  StreamHost host(cfg);
  host.load(iota_doubles(512, 3.0), iota_doubles(512, 0.0),
            iota_doubles(512, 0.0));
  host.run(Mode::kCopy, 512, 1);
  std::vector<double> a(512), b(512), c(512);
  host.offload(a, b, c);
  EXPECT_EQ(c, iota_doubles(512, 3.0));
}

TEST(StreamVariants, ColumnOnlySchemeRejectedAtConstruction) {
  // ReCo serves no rows: the controller's row-band traffic cannot work,
  // and the failure must come from register definition (AGU), not show up
  // as wrong data.
  StreamDesignConfig cfg;
  cfg.vector_capacity = 512;
  cfg.width = 64;
  cfg.scheme = maf::Scheme::kReCo;
  StreamHost host(cfg);
  std::vector<double> v(512, 1.0);
  EXPECT_THROW(host.load(v, v, v), Unsupported);
}

TEST(StreamVariants, LatencyOnlyShiftsNotThroughput) {
  // Read latency adds a constant; the steady-state rate is unchanged.
  auto run_with_latency = [](unsigned latency) {
    StreamDesignConfig cfg;
    cfg.vector_capacity = 1024;
    cfg.width = 128;
    cfg.read_latency = latency;
    StreamHost host(cfg);
    std::vector<double> v(1024, 1.0);
    host.load(v, v, v);
    return host.run(Mode::kCopy, 1024, 1).cycles_per_run;
  };
  EXPECT_EQ(run_with_latency(14) - run_with_latency(0), 14u);
}

TEST(StreamVariants, HigherClockScalesBandwidthLinearly) {
  StreamDesignConfig slow;
  slow.vector_capacity = 1024;
  slow.width = 128;
  slow.clock_mhz = 100.0;
  StreamDesignConfig fast = slow;
  fast.clock_mhz = 200.0;
  for (auto* cfg : {&slow, &fast}) {
    StreamHost host(*cfg);
    std::vector<double> v(1024, 1.0);
    host.load(v, v, v);
    const auto r = host.run(Mode::kCopy, 1024, 1);
    const double peak = host.theoretical_peak_bytes_per_s(Mode::kCopy);
    EXPECT_NEAR(peak / (cfg->clock_mhz * 1e6), 2 * 8 * 8, 1e-9);
    // Exact analytic rate including the fixed 300ns call overhead.
    const double expected =
        1024 * 2 * 8.0 /
        (300e-9 + r.cycles_per_run / (cfg->clock_mhz * 1e6));
    EXPECT_NEAR(r.best_rate_bytes_per_s(), expected, 1.0);
  }
}

}  // namespace
}  // namespace polymem::stream
