#include "stream/controller.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "runtime/thread_pool.hpp"
#include "stream/design.hpp"

namespace polymem::stream {
namespace {

// A small design for fast controller-level tests: vectors of 64 elements
// in a 32-wide space, 8 lanes, latency 14 (the paper's).
StreamDesignConfig small_cfg() {
  StreamDesignConfig cfg;
  cfg.vector_capacity = 64;
  cfg.width = 32;
  cfg.stream_depth = 64;
  return cfg;
}

// Loads vector `v` through the functional backdoor (not the streams).
void backdoor_fill(StreamController& ctl, Vector v,
                   const std::vector<double>& data) {
  const auto band = ctl.band(v);
  auto& mem = ctl.polymem().functional();
  for (std::size_t k = 0; k < data.size(); ++k)
    mem.store(band.coord(static_cast<std::int64_t>(k)),
              core::pack_double(data[k]));
}

std::vector<double> backdoor_dump(StreamController& ctl, Vector v,
                                  std::int64_t n) {
  const auto band = ctl.band(v);
  auto& mem = ctl.polymem().functional();
  std::vector<double> out(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k)
    out[static_cast<std::size_t>(k)] =
        core::unpack_double(mem.load(band.coord(k)));
  return out;
}

std::vector<double> iota_doubles(int n, double base) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) v[static_cast<std::size_t>(k)] = base + k;
  return v;
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : design_(small_cfg()), ctl_(design_.controller()) {}

  void run_stage(std::uint64_t max_cycles = 100000) {
    while (!ctl_.done()) {
      POLYMEM_REQUIRE(max_cycles-- > 0, "stage hung");
      ctl_.tick();
    }
  }

  StreamDesign design_;
  StreamController& ctl_;
};

TEST_F(ControllerTest, CopyMovesAIntoC) {
  const auto a = iota_doubles(64, 1.0);
  backdoor_fill(ctl_, Vector::kA, a);
  ctl_.start(Mode::kCopy, 64);
  EXPECT_FALSE(ctl_.done());
  run_stage();
  EXPECT_EQ(backdoor_dump(ctl_, Vector::kC, 64), a);
}

TEST_F(ControllerTest, CopyCycleCountIsGroupsPlusLatency) {
  backdoor_fill(ctl_, Vector::kA, iota_doubles(64, 0.0));
  ctl_.start(Mode::kCopy, 64);
  const auto start = ctl_.polymem().cycles();
  run_stage();
  const auto cycles = ctl_.polymem().cycles() - start;
  // 8 groups of 8 lanes, plus the 14-cycle read latency, plus the final
  // write cycle.
  EXPECT_EQ(cycles, 64 / 8 + 14 + 1);
}

TEST_F(ControllerTest, ScaleMultipliesBIntoA) {
  backdoor_fill(ctl_, Vector::kB, iota_doubles(64, 1.0));
  ctl_.start(Mode::kScale, 64, 2.5);
  run_stage();
  const auto a = backdoor_dump(ctl_, Vector::kA, 64);
  for (int k = 0; k < 64; ++k) EXPECT_DOUBLE_EQ(a[k], 2.5 * (1.0 + k));
}

TEST_F(ControllerTest, SumAddsBAndCIntoA) {
  backdoor_fill(ctl_, Vector::kB, iota_doubles(64, 10.0));
  backdoor_fill(ctl_, Vector::kC, iota_doubles(64, 100.0));
  ctl_.start(Mode::kSum, 64);
  run_stage();
  const auto a = backdoor_dump(ctl_, Vector::kA, 64);
  for (int k = 0; k < 64; ++k)
    EXPECT_DOUBLE_EQ(a[k], (10.0 + k) + (100.0 + k));
}

TEST_F(ControllerTest, TriadComputesBPlusQTimesC) {
  backdoor_fill(ctl_, Vector::kB, iota_doubles(64, 5.0));
  backdoor_fill(ctl_, Vector::kC, iota_doubles(64, 1.0));
  ctl_.start(Mode::kTriad, 64, 3.0);
  run_stage();
  const auto a = backdoor_dump(ctl_, Vector::kA, 64);
  for (int k = 0; k < 64; ++k)
    EXPECT_DOUBLE_EQ(a[k], (5.0 + k) + 3.0 * (1.0 + k));
}

TEST_F(ControllerTest, PartialLengthRuns) {
  backdoor_fill(ctl_, Vector::kA, iota_doubles(64, 7.0));
  backdoor_fill(ctl_, Vector::kC, std::vector<double>(64, -1.0));
  ctl_.start(Mode::kCopy, 32);  // only the first half
  run_stage();
  const auto c = backdoor_dump(ctl_, Vector::kC, 64);
  for (int k = 0; k < 32; ++k) EXPECT_DOUBLE_EQ(c[k], 7.0 + k);
  for (int k = 32; k < 64; ++k) EXPECT_DOUBLE_EQ(c[k], -1.0);
}

TEST_F(ControllerTest, LoadStageConsumesStream) {
  auto& a_in = design_.manager().stream(StreamDesign::kAIn);
  for (int k = 0; k < 64; ++k) a_in.push(core::pack_double(0.5 * k));
  ctl_.start(Mode::kLoadA, 64);
  run_stage();
  const auto a = backdoor_dump(ctl_, Vector::kA, 64);
  for (int k = 0; k < 64; ++k) EXPECT_DOUBLE_EQ(a[k], 0.5 * k);
}

TEST_F(ControllerTest, LoadStallsOnEmptyStreamThenResumes) {
  auto& a_in = design_.manager().stream(StreamDesign::kAIn);
  ctl_.start(Mode::kLoadA, 16);
  for (int c = 0; c < 20; ++c) ctl_.tick();  // starved: nothing to do
  EXPECT_FALSE(ctl_.done());
  for (int k = 0; k < 16; ++k) a_in.push(core::pack_double(k));
  run_stage();
  EXPECT_TRUE(ctl_.done());
  EXPECT_EQ(backdoor_dump(ctl_, Vector::kA, 16), iota_doubles(16, 0.0));
}

TEST_F(ControllerTest, OffloadPushesVectorToOutStream) {
  backdoor_fill(ctl_, Vector::kC, iota_doubles(64, 3.0));
  ctl_.start(Mode::kOffloadC, 64);
  auto& out = design_.manager().stream(StreamDesign::kOut);
  std::vector<double> got;
  std::uint64_t guard = 100000;
  while (!ctl_.done() || !out.empty()) {
    POLYMEM_REQUIRE(guard-- > 0, "offload hung");
    ctl_.tick();
    while (auto w = out.pop()) got.push_back(core::unpack_double(*w));
  }
  EXPECT_EQ(got, iota_doubles(64, 3.0));
}

TEST_F(ControllerTest, OffloadRespectsOutBackPressure) {
  // An output FIFO smaller than the in-flight window forces read gating;
  // the data must still come out complete and in order.
  StreamDesignConfig cfg = small_cfg();
  cfg.stream_depth = 16;  // two groups
  StreamDesign design(cfg);
  auto& ctl = design.controller();
  backdoor_fill(ctl, Vector::kA, iota_doubles(64, 9.0));
  ctl.start(Mode::kOffloadA, 64);
  auto& out = design.manager().stream(StreamDesign::kOut);
  std::vector<double> got;
  std::uint64_t guard = 100000;
  while (!ctl.done() || !out.empty()) {
    POLYMEM_REQUIRE(guard-- > 0, "offload hung");
    ctl.tick();
    // Host drains slowly: at most 3 words per cycle.
    for (int k = 0; k < 3; ++k)
      if (auto w = out.pop()) got.push_back(core::unpack_double(*w));
  }
  EXPECT_EQ(got, iota_doubles(64, 9.0));
}

TEST_F(ControllerTest, StartValidation) {
  EXPECT_THROW(ctl_.start(Mode::kIdle, 8), InvalidArgument);
  EXPECT_THROW(ctl_.start(Mode::kCopy, 0), InvalidArgument);
  EXPECT_THROW(ctl_.start(Mode::kCopy, 65), InvalidArgument);   // > capacity
  EXPECT_THROW(ctl_.start(Mode::kCopy, 12), InvalidArgument);   // % lanes
}

TEST_F(ControllerTest, SumNeedsTwoReadPorts) {
  StreamDesignConfig cfg = small_cfg();
  cfg.read_ports = 1;
  StreamDesign design(cfg);
  EXPECT_THROW(design.controller().start(Mode::kSum, 64), Unsupported);
  EXPECT_NO_THROW(design.controller().start(Mode::kCopy, 64));
}

TEST_F(ControllerTest, ModeNamesDistinct) {
  EXPECT_STREQ(mode_name(Mode::kCopy), "Copy");
  EXPECT_STREQ(mode_name(Mode::kTriad), "Triad");
  EXPECT_STREQ(mode_name(Mode::kOffloadB), "OffloadB");
}

TEST_F(ControllerTest, BulkTransfersRoundTrip) {
  const auto a = iota_doubles(64, 0.5);
  ctl_.preload(Vector::kA, a);
  EXPECT_EQ(backdoor_dump(ctl_, Vector::kA, 64), a);
  std::vector<double> back(64);
  ctl_.offload_bulk(Vector::kA, back);
  EXPECT_EQ(back, a);
}

TEST_F(ControllerTest, PooledOffloadMatchesSerialOffload) {
  // The threaded host-side offload (read_batch_mt under the hood) must be
  // bit-identical to the serial one for every pool size.
  const auto b = iota_doubles(64, -3.25);
  ctl_.preload(Vector::kB, b);
  std::vector<double> serial(64);
  ctl_.offload_bulk(Vector::kB, serial);
  EXPECT_EQ(serial, b);
  for (unsigned workers : {0u, 1u, 3u}) {
    runtime::ThreadPool pool(workers);
    std::vector<double> pooled(64, -1.0);
    ctl_.offload_bulk(Vector::kB, pooled, pool);
    EXPECT_EQ(pooled, serial) << "workers " << workers;
  }
}

TEST_F(ControllerTest, BackToBackStagesReuseTheController) {
  backdoor_fill(ctl_, Vector::kA, iota_doubles(64, 1.0));
  ctl_.start(Mode::kCopy, 64);
  run_stage();
  // Now scale the copied C? No — Scale reads B; fill B from C first.
  backdoor_fill(ctl_, Vector::kB, backdoor_dump(ctl_, Vector::kC, 64));
  ctl_.start(Mode::kScale, 64, 10.0);
  run_stage();
  const auto a = backdoor_dump(ctl_, Vector::kA, 64);
  for (int k = 0; k < 64; ++k) EXPECT_DOUBLE_EQ(a[k], 10.0 * (1.0 + k));
}

}  // namespace
}  // namespace polymem::stream
