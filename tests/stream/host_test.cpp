#include "stream/host.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::stream {
namespace {

StreamDesignConfig small_cfg() {
  StreamDesignConfig cfg;
  cfg.vector_capacity = 512;
  cfg.width = 64;
  cfg.stream_depth = 128;
  return cfg;
}

std::vector<double> iota_doubles(int n, double base) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) v[static_cast<std::size_t>(k)] = base + k;
  return v;
}

TEST(StreamHost, EndToEndCopyRoundTrip) {
  // The full paper flow: Load (PCIe in), Copy (measured), Offload
  // (PCIe out) — with C arriving as a copy of A.
  StreamHost host(small_cfg());
  const auto a = iota_doubles(512, 1.0);
  const auto b = iota_doubles(512, 1000.0);
  const auto c0 = std::vector<double>(512, 0.0);
  host.load(a, b, c0);
  host.run(Mode::kCopy, 512, /*runs=*/1);
  std::vector<double> a2(512), b2(512), c2(512);
  host.offload(a2, b2, c2);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(b2, b);
  EXPECT_EQ(c2, a);  // Copy: c = a
}

TEST(StreamHost, AllFourStreamKernelsCorrect) {
  StreamHost host(small_cfg());
  const auto a0 = iota_doubles(512, 2.0);
  const auto b0 = iota_doubles(512, 5.0);
  const auto c0 = iota_doubles(512, -3.0);
  host.load(a0, b0, c0);

  // Copy: c = a.
  host.run(Mode::kCopy, 512, 1);
  // Scale: a = q*b.
  host.run(Mode::kScale, 512, 1, 2.0);
  // Sum: a' = b + c (c is now the old a).
  host.run(Mode::kSum, 512, 1);
  // Triad: a'' = b + q*c.
  host.run(Mode::kTriad, 512, 1, 0.5);

  std::vector<double> a(512), b(512), c(512);
  host.offload(a, b, c);
  for (int k = 0; k < 512; ++k) {
    EXPECT_DOUBLE_EQ(c[k], a0[k]);                 // from Copy
    EXPECT_DOUBLE_EQ(b[k], b0[k]);                 // untouched
    EXPECT_DOUBLE_EQ(a[k], b0[k] + 0.5 * a0[k]);   // final Triad
  }
}

TEST(StreamHost, CopyTimingMatchesAnalyticModel) {
  // Per run: groups + latency + 1 cycles at 120MHz, plus one 300ns call.
  StreamHost host(small_cfg());
  host.load(iota_doubles(512, 0.0), iota_doubles(512, 0.0),
            iota_doubles(512, 0.0));
  const auto result = host.run(Mode::kCopy, 512, 5);
  EXPECT_EQ(result.cycles_per_run, 512u / 8 + 14 + 1);
  const double expected =
      300e-9 + static_cast<double>(result.cycles_per_run) / 120e6;
  EXPECT_NEAR(result.seconds.min(), expected, 1e-12);
  EXPECT_NEAR(result.seconds.max(), expected, 1e-12);  // deterministic
  EXPECT_EQ(result.seconds.count(), 5u);
}

TEST(StreamHost, TheoreticalPeakMatchesPaperFormula) {
  // "2 x 8 x 8 x 120 = 15360 MB/s" (Sec. V).
  StreamHost host(small_cfg());
  EXPECT_DOUBLE_EQ(host.theoretical_peak_bytes_per_s(Mode::kCopy), 15360e6);
  EXPECT_DOUBLE_EQ(host.theoretical_peak_bytes_per_s(Mode::kTriad),
                   1.5 * 15360e6);
}

TEST(StreamHost, LargeCopyReaches99PercentOfPeak) {
  // The paper's headline: at ~700KB, measured Copy bandwidth exceeds 99%
  // of the 15360 MB/s theoretical peak.
  StreamHost host;  // full-size paper design (170*512 elements)
  const std::int64_t n = 170 * 512;
  std::vector<double> zeros(static_cast<std::size_t>(n), 1.0);
  host.load(zeros, zeros, zeros);
  const auto result = host.run(Mode::kCopy, n, 1);
  const double ratio = result.best_rate_bytes_per_s() /
                       host.theoretical_peak_bytes_per_s(Mode::kCopy);
  EXPECT_GT(ratio, 0.99);
  EXPECT_LT(ratio, 1.0);
}

TEST(StreamHost, SmallCopiesAreOverheadBound) {
  // The left ramp of Fig. 10: with runtimes comparable to the 300ns call
  // overhead, the achieved bandwidth collapses.
  StreamHost host(small_cfg());
  host.load(iota_doubles(512, 0.0), iota_doubles(512, 0.0),
            iota_doubles(512, 0.0));
  const auto small = host.run(Mode::kCopy, 8, 1);
  const auto large = host.run(Mode::kCopy, 512, 1);
  EXPECT_LT(small.best_rate_bytes_per_s(),
            0.5 * large.best_rate_bytes_per_s());
}

TEST(StreamHost, ReportHasStreamFormat) {
  StreamHost host(small_cfg());
  host.load(iota_doubles(512, 0.0), iota_doubles(512, 1.0),
            iota_doubles(512, 2.0));
  std::vector<StreamResult> results;
  results.push_back(host.run(Mode::kCopy, 512, 3));
  results.push_back(host.run(Mode::kScale, 512, 3));
  const auto table = host.report(results);
  std::ostringstream os;
  table.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Copy"), std::string::npos);
  EXPECT_NE(s.find("Scale"), std::string::npos);
  EXPECT_NE(s.find("BestRate"), std::string::npos);
}

TEST(StreamHost, MismatchedVectorSizesRejected) {
  StreamHost host(small_cfg());
  std::vector<double> a(512), b(256), c(512);
  EXPECT_THROW(host.load(a, b, c), InvalidArgument);
}

}  // namespace
}  // namespace polymem::stream
