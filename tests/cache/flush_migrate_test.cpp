// Ordered write-back and scheme re-layout: the two TileCache duties the
// adaptive layout engine leans on (flush feeds the migration's
// LMem-as-truth step; migrate() re-points a live cache at the PolyMem
// of the winning scheme).
#include <gtest/gtest.h>

#include "cache/tile_cache.hpp"

namespace polymem::cache {
namespace {

core::PolyMemConfig pm_cfg(maf::Scheme scheme = maf::Scheme::kReRo) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  return c;
}

// A 64x64 LMem matrix of i*1000 + j at word 64; 8x32 tiles -> an 8x2
// tile grid whose lexicographic (ti, tj) key is the LMem address order.
maxsim::LMemMatrix make_matrix(maxsim::LMem& lmem) {
  maxsim::LMemMatrix m{64, 64, 64, 64};
  std::vector<hw::Word> row(64);
  for (std::int64_t i = 0; i < 64; ++i) {
    for (std::int64_t j = 0; j < 64; ++j)
      row[static_cast<std::size_t>(j)] = static_cast<hw::Word>(i * 1000 + j);
    lmem.write(m.word_addr(i, 0), row);
  }
  return m;
}

// Dirty one word of tile (ti, tj) through the PolyMem and mark it.
void dirty_tile(TileCache& cache, std::int64_t ti, std::int64_t tj,
                hw::Word value) {
  const auto ref = cache.acquire(ti, tj);
  cache.polymem().store({ref.origin.i + 1, ref.origin.j + 2}, value);
  cache.mark_dirty(ref.frame);
}

hw::Word lmem_at(maxsim::LMem& lmem, const maxsim::LMemMatrix& m,
                 std::int64_t i, std::int64_t j) {
  std::vector<hw::Word> one(1);
  lmem.read(m.word_addr(i, j), one);
  return one[0];
}

TEST(TileCacheFlush, ContiguousDirtyTilesFlushAsOneRun) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, core::FramePool::whole_space(mem.config(), 8, 32));

  // Tiles (0,0) and (0,1): adjacent LMem keys 0 and 1.
  dirty_tile(cache, 0, 0, 111);
  dirty_tile(cache, 0, 1, 222);
  cache.flush();

  EXPECT_EQ(cache.stats().counters().flush_runs, 1u);
  EXPECT_EQ(cache.stats().counters().writebacks, 2u);
  // Tile (0,0) covers rows 0-7 cols 0-31; (0,1) rows 0-7 cols 32-63.
  EXPECT_EQ(lmem_at(lmem, m, 1, 2), 111u);
  EXPECT_EQ(lmem_at(lmem, m, 1, 34), 222u);
  // An untouched neighbour survives the write-back.
  EXPECT_EQ(lmem_at(lmem, m, 1, 3), 1003u);

  // Flushing clean frames is a no-op.
  cache.flush();
  EXPECT_EQ(cache.stats().counters().flush_runs, 1u);
}

TEST(TileCacheFlush, DisjointDirtyTilesFlushAsSeparateRuns) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, core::FramePool::whole_space(mem.config(), 8, 32));

  // Keys 0 and 5 (tile (2,1)): a hole in the address order.
  dirty_tile(cache, 0, 0, 111);
  dirty_tile(cache, 2, 1, 333);
  cache.flush();

  EXPECT_EQ(cache.stats().counters().flush_runs, 2u);
  EXPECT_EQ(lmem_at(lmem, m, 1, 2), 111u);
  EXPECT_EQ(lmem_at(lmem, m, 17, 34), 333u);
}

TEST(TileCacheMigrate, RelayoutPreservesDirtyDataUnderTheNewScheme) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem re_ro(pm_cfg(maf::Scheme::kReRo));
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, re_ro, m,
                  core::FramePool::whole_space(re_ro.config(), 8, 32));

  dirty_tile(cache, 1, 0, 444);  // matrix cell (9, 2)
  ASSERT_TRUE(cache.resident(1, 0));

  // Live scheme migration: flush (LMem becomes the only truth), drop
  // residency, re-point at the ReCo PolyMem.
  core::PolyMem re_co(pm_cfg(maf::Scheme::kReCo));
  cache.migrate(re_co);

  EXPECT_EQ(&cache.polymem(), &re_co);
  EXPECT_EQ(cache.stats().counters().relayouts, 1u);
  EXPECT_FALSE(cache.resident(1, 0));
  EXPECT_EQ(lmem_at(lmem, m, 9, 2), 444u);  // the dirty word was flushed

  // Refill on demand: the tile comes back under the new layout with the
  // migrated word intact.
  const auto ref = cache.acquire(1, 0);
  EXPECT_EQ(re_co.load({ref.origin.i + 1, ref.origin.j + 2}), 444u);
  EXPECT_EQ(re_co.load({ref.origin.i, ref.origin.j}), 8u * 1000u);
}

}  // namespace
}  // namespace polymem::cache
