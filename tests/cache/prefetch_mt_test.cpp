// Async-prefetch hammer: the TSan gate target for the cache subsystem.
// Repeated sequential sweeps (the prefetcher's trigger pattern) mixed
// with writes, flushes and invalidations while a thread pool races the
// consumer on the shared LMem.
#include <gtest/gtest.h>

#include <vector>

#include "cache/cached_matrix.hpp"
#include "common/rng.hpp"

namespace polymem::cache {
namespace {

core::PolyMemConfig pm_cfg() {
  core::PolyMemConfig c;
  c.scheme = maf::Scheme::kReRo;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  return c;
}

TEST(PrefetchHammer, SweepsStayCoherentUnderAsyncPrefetch) {
  maxsim::LMem lmem(1 << 22);
  core::PolyMem mem(pm_cfg());
  const maxsim::LMemMatrix m{0, 64, 32, 32};
  std::vector<hw::Word> mirror(static_cast<std::size_t>(m.rows * m.cols));
  for (std::size_t k = 0; k < mirror.size(); ++k)
    mirror[k] = static_cast<hw::Word>(k * 2654435761u);
  for (std::int64_t i = 0; i < m.rows; ++i)
    lmem.write(m.word_addr(i, 0),
               std::span<const hw::Word>(mirror).subspan(
                   static_cast<std::size_t>(i * m.cols),
                   static_cast<std::size_t>(m.cols)));

  runtime::ThreadPool pool(3);
  // 4 frames of 4x32 caching a 64x32 matrix: every sweep misses on 12 of
  // 16 tiles, keeping prefetches in flight nearly continuously.
  CachedMatrix cached(lmem, mem, m,
                      core::FramePool::whole_space(mem.config(), 4, 32),
                      {.prefetch_pool = &pool});

  Rng rng(31337);
  std::vector<hw::Word> buf(static_cast<std::size_t>(m.cols));
  for (int sweep = 0; sweep < 12; ++sweep) {
    for (std::int64_t i = 0; i < m.rows; ++i) {
      cached.read_row(i, 0, buf);
      for (std::int64_t j = 0; j < m.cols; ++j)
        ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                  mirror[static_cast<std::size_t>(i * m.cols + j)])
            << "sweep " << sweep << " row " << i << " col " << j;
      if (rng.chance(0.2)) {
        const std::int64_t j = rng.uniform(0, m.cols - 1);
        const hw::Word w = rng.bits();
        cached.write(i, j, w);
        mirror[static_cast<std::size_t>(i * m.cols + j)] = w;
      }
    }
    // Periodically force the cold-start paths while jobs may be in
    // flight: flush keeps LMem current, invalidate drops residency.
    if (sweep % 4 == 3) {
      cached.flush();
      cached.cache().invalidate();
    }
  }
  cached.flush();

  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols));
  for (std::int64_t i = 0; i < m.rows; ++i) {
    lmem.read(m.word_addr(i, 0), row);
    for (std::int64_t j = 0; j < m.cols; ++j)
      ASSERT_EQ(row[static_cast<std::size_t>(j)],
                mirror[static_cast<std::size_t>(i * m.cols + j)])
          << "final row " << i << " col " << j;
  }

  const auto stats = cached.stats();
  EXPECT_GT(stats.counters().prefetch_issued, 0u);
  EXPECT_GT(stats.counters().prefetch_useful, 0u);
}

TEST(PrefetchHammer, ManyShortLivedCachesDrainCleanly) {
  // Construction/teardown races: each cache issues a prefetch and is
  // destroyed (draining the in-flight job) almost immediately.
  runtime::ThreadPool pool(3);
  maxsim::LMem lmem(1 << 22);
  const maxsim::LMemMatrix m{0, 64, 32, 32};
  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols), 7);
  for (std::int64_t i = 0; i < m.rows; ++i) lmem.write(m.word_addr(i, 0), row);

  for (int round = 0; round < 40; ++round) {
    core::PolyMem mem(pm_cfg());
    TileCache cache(lmem, mem, m,
                    core::FramePool::whole_space(mem.config(), 4, 32),
                    {.prefetch_pool = &pool});
    const auto ref = cache.acquire(round % 8, 0);  // issues a prefetch
    EXPECT_EQ(mem.load(ref.origin), 7u);
  }
  pool.wait_idle();
}

}  // namespace
}  // namespace polymem::cache
