#include "stream/out_of_core.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "apps/matvec_ooc.hpp"
#include "common/rng.hpp"
#include "core/layout.hpp"

namespace polymem::stream {
namespace {

core::PolyMemConfig pm_cfg() {
  core::PolyMemConfig c;
  c.scheme = maf::Scheme::kReRo;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  return c;
}

void fill_random(maxsim::LMem& lmem, const maxsim::LMemMatrix& m,
                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols));
  for (std::int64_t i = 0; i < m.rows; ++i) {
    for (auto& w : row) w = rng.bits();
    lmem.write(m.word_addr(i, 0), row);
  }
}

// 128x32 = 4096 words per vector: 8x the 16x32 = 512-word PolyMem
// capacity, the ISSUE's out-of-core acceptance working set.
constexpr std::int64_t kRows = 128;
constexpr std::int64_t kCols = 32;

TEST(OutOfCoreCopy, BitIdenticalUnderBothEvictionPolicies) {
  for (cache::EvictionKind eviction :
       {cache::EvictionKind::kLru, cache::EvictionKind::kFifo}) {
    for (cache::WritePolicy policy : {cache::WritePolicy::kWriteBack,
                                      cache::WritePolicy::kWriteThrough}) {
      SCOPED_TRACE(std::string(cache::eviction_name(eviction)) + "/" +
                   cache::write_policy_name(policy));
      maxsim::LMem lmem(1 << 22);
      core::PolyMem mem(pm_cfg());
      const maxsim::LMemMatrix a{0, kRows, kCols, kCols};
      const maxsim::LMemMatrix c{8192, kRows, kCols, kCols};
      fill_random(lmem, a, 42);

      const auto report = out_of_core_copy(
          lmem, mem, a, c, {.eviction = eviction, .write_policy = policy});
      EXPECT_TRUE(report.verified);
      EXPECT_EQ(report.elements, kRows * kCols);

      // Independent bit-identity check straight from LMem.
      std::vector<hw::Word> src(static_cast<std::size_t>(kCols));
      std::vector<hw::Word> dst(static_cast<std::size_t>(kCols));
      for (std::int64_t i = 0; i < kRows; ++i) {
        lmem.read(a.word_addr(i, 0), src);
        lmem.read(c.word_addr(i, 0), dst);
        ASSERT_EQ(src, dst) << "row " << i;
      }

      // The working set dwarfs the cache, yet block-row streaming inside
      // multi-row tiles must still hit.
      EXPECT_GT(report.src.counters().hit_rate(), 0.0);
      EXPECT_GT(report.src.counters().evictions, 0u);
      EXPECT_GT(report.modelled_seconds(120e6), 0.0);
    }
  }
}

TEST(OutOfCoreCopy, AsyncPrefetchNoSlowerThanSynchronous) {
  maxsim::LMem lmem_sync(1 << 22);
  maxsim::LMem lmem_async(1 << 22);
  core::PolyMem mem_sync(pm_cfg());
  core::PolyMem mem_async(pm_cfg());
  const maxsim::LMemMatrix a{0, kRows, kCols, kCols};
  const maxsim::LMemMatrix c{8192, kRows, kCols, kCols};
  fill_random(lmem_sync, a, 1234);
  fill_random(lmem_async, a, 1234);

  const auto sync = out_of_core_copy(lmem_sync, mem_sync, a, c, {});
  runtime::ThreadPool pool(2);
  const auto async = out_of_core_copy(lmem_async, mem_async, a, c,
                                      {.prefetch_pool = &pool});

  EXPECT_TRUE(sync.verified);
  EXPECT_TRUE(async.verified);
  EXPECT_GT(async.src.counters().prefetch_issued, 0u);
  EXPECT_GT(async.src.counters().prefetch_useful, 0u);
  EXPECT_GT(async.src.lmem_seconds_overlapped, 0.0);
  // The sequential sweep is the prefetcher's best case: hiding DRAM
  // bursts must never make the modelled time worse.
  EXPECT_LE(async.modelled_seconds(120e6),
            sync.modelled_seconds(120e6) + 1e-12);
}

TEST(OocMatVec, MatchesHostReference) {
  maxsim::LMem lmem(1 << 22);
  core::PolyMem mem(pm_cfg());
  const std::int64_t rows = 48, cols = 32;
  const maxsim::LMemMatrix a{256, rows, cols, cols};

  Rng rng(99);
  std::vector<double> host_a(static_cast<std::size_t>(rows * cols));
  for (auto& v : host_a)
    v = static_cast<double>(rng.uniform(-50, 50)) / 4.0;
  std::vector<hw::Word> row(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j)
      row[static_cast<std::size_t>(j)] =
          core::pack_double(host_a[static_cast<std::size_t>(i * cols + j)]);
    lmem.write(a.word_addr(i, 0), row);
  }

  std::vector<double> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = static_cast<double>(rng.uniform(-20, 20)) / 8.0;
  std::vector<double> y(static_cast<std::size_t>(rows));

  const auto report = apps::ooc_matvec(lmem, mem, a, x, y);
  EXPECT_EQ(report.rows, rows);
  EXPECT_EQ(report.cols, cols);
  // 48x32 doubles = 3x the PolyMem capacity: genuinely out of core.
  EXPECT_GT(report.cache.counters().evictions, 0u);
  EXPECT_GT(report.cache.counters().hit_rate(), 0.0);

  for (std::int64_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < cols; ++j)
      acc += host_a[static_cast<std::size_t>(i * cols + j)] *
             x[static_cast<std::size_t>(j)];
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], acc) << "row " << i;
  }
}

}  // namespace
}  // namespace polymem::stream
