#include "cache/tile_cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::cache {
namespace {

core::PolyMemConfig pm_cfg(maf::Scheme scheme = maf::Scheme::kReRo) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  return c;
}

// A rows x cols LMem matrix of i*1000 + j at word 64.
maxsim::LMemMatrix make_matrix(maxsim::LMem& lmem, std::int64_t rows = 64,
                               std::int64_t cols = 64) {
  maxsim::LMemMatrix m{64, rows, cols, cols};
  std::vector<hw::Word> row(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j)
      row[static_cast<std::size_t>(j)] = static_cast<hw::Word>(i * 1000 + j);
    lmem.write(m.word_addr(i, 0), row);
  }
  return m;
}

// Two full-width 8-row frames over the 16x32 space.
core::FramePool two_frames(const core::PolyMemConfig& cfg) {
  return core::FramePool::whole_space(cfg, 8, 32);
}

TEST(TileCache, MissLoadsTileAndHitReusesIt) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, two_frames(mem.config()));
  EXPECT_EQ(cache.tiles_i(), 8);
  EXPECT_EQ(cache.tiles_j(), 2);

  const auto ref = cache.acquire(2, 1);
  EXPECT_EQ(ref.rows, 8);
  EXPECT_EQ(ref.cols, 32);
  for (std::int64_t r = 0; r < 8; ++r)
    for (std::int64_t c = 0; c < 32; ++c)
      EXPECT_EQ(mem.load({ref.origin.i + r, ref.origin.j + c}),
                static_cast<hw::Word>((16 + r) * 1000 + 32 + c));

  const auto again = cache.acquire(2, 1);
  EXPECT_EQ(again.frame, ref.frame);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.counters().hits, 1u);
  EXPECT_EQ(stats.counters().misses, 1u);
  EXPECT_DOUBLE_EQ(stats.counters().hit_rate(), 0.5);
  // One 8x32 refill over 8-lane rows: 8 * (32/8) parallel accesses.
  EXPECT_EQ(stats.dma.polymem_accesses, 32u);
  EXPECT_GT(stats.dma.lmem_seconds, 0.0);
}

TEST(TileCache, LruEvictsLeastRecentlyTouched) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, two_frames(mem.config()),
                  {.eviction = EvictionKind::kLru});

  cache.acquire(0, 0);
  cache.acquire(0, 1);
  cache.acquire(0, 0);  // touch (0,0): (0,1) is now the LRU victim
  cache.acquire(1, 0);
  EXPECT_TRUE(cache.resident(0, 0));
  EXPECT_FALSE(cache.resident(0, 1));
  EXPECT_TRUE(cache.resident(1, 0));
  EXPECT_EQ(cache.stats().counters().evictions, 1u);
}

TEST(TileCache, FifoEvictsOldestRegardlessOfTouches) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, two_frames(mem.config()),
                  {.eviction = EvictionKind::kFifo});

  cache.acquire(0, 0);
  cache.acquire(0, 1);
  cache.acquire(0, 0);  // touching does not rescue (0,0) under FIFO
  cache.acquire(1, 0);
  EXPECT_FALSE(cache.resident(0, 0));
  EXPECT_TRUE(cache.resident(0, 1));
}

TEST(TileCache, DirtyTileWritesBackOnEviction) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, two_frames(mem.config()));

  const auto ref = cache.acquire(0, 0);
  mem.store({ref.origin.i + 1, ref.origin.j + 2}, 4242);
  cache.mark_dirty(ref.frame);
  cache.acquire(0, 1);
  cache.acquire(1, 0);  // evicts (0, 0)
  EXPECT_FALSE(cache.resident(0, 0));

  std::vector<hw::Word> row(32);
  lmem.read(m.word_addr(1, 0), row);
  EXPECT_EQ(row[2], 4242u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.counters().writebacks, 1u);
  EXPECT_EQ(stats.counters().evictions, 1u);
}

TEST(TileCache, FlushWritesEveryDirtyTile) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, two_frames(mem.config()));

  const auto a = cache.acquire(3, 0);
  const auto b = cache.acquire(3, 1);
  mem.store(a.origin, 111);
  mem.store(b.origin, 222);
  cache.mark_dirty(a.frame);
  cache.mark_dirty(b.frame);
  cache.flush();

  std::vector<hw::Word> row(64);
  lmem.read(m.word_addr(24, 0), row);
  EXPECT_EQ(row[0], 111u);
  EXPECT_EQ(row[32], 222u);
  EXPECT_EQ(cache.stats().counters().writebacks, 2u);
  // A second flush has nothing left to do.
  cache.flush();
  EXPECT_EQ(cache.stats().counters().writebacks, 2u);
}

TEST(TileCache, WriteThroughKeepsLMemCurrentWithoutWritebacks) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, two_frames(mem.config()),
                  {.write_policy = WritePolicy::kWriteThrough});

  const auto ref = cache.acquire(0, 0);
  const hw::Word value = 9001;
  mem.store(ref.origin, value);
  cache.mark_dirty(ref.frame);  // no-op under write-through
  cache.write_through(0, 0, std::span<const hw::Word>(&value, 1));

  std::vector<hw::Word> row(1);
  lmem.read(m.word_addr(0, 0), row);
  EXPECT_EQ(row[0], value);
  cache.flush();
  EXPECT_EQ(cache.stats().counters().writebacks, 0u);
}

TEST(TileCache, InvalidateDropsDirtyDataWithoutWriteback) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, two_frames(mem.config()));

  const auto ref = cache.acquire(0, 0);
  mem.store(ref.origin, 777);
  cache.mark_dirty(ref.frame);
  cache.invalidate();
  EXPECT_FALSE(cache.resident(0, 0));

  std::vector<hw::Word> row(1);
  lmem.read(m.word_addr(0, 0), row);
  EXPECT_EQ(row[0], 0u);  // original value, not 777
  EXPECT_EQ(cache.stats().counters().writebacks, 0u);
  // Reacquiring reloads from LMem.
  const auto fresh = cache.acquire(0, 0);
  EXPECT_EQ(mem.load(fresh.origin), 0u);
}

TEST(TileCache, EdgeTilesAreClipped) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem, 20, 40);
  TileCache cache(lmem, mem, m, two_frames(mem.config()));
  EXPECT_EQ(cache.tiles_i(), 3);
  EXPECT_EQ(cache.tiles_j(), 2);

  const auto corner = cache.acquire(2, 1);
  EXPECT_EQ(corner.rows, 4);
  EXPECT_EQ(corner.cols, 8);
  for (std::int64_t r = 0; r < corner.rows; ++r)
    for (std::int64_t c = 0; c < corner.cols; ++c)
      EXPECT_EQ(mem.load({corner.origin.i + r, corner.origin.j + c}),
                static_cast<hw::Word>((16 + r) * 1000 + 32 + c));
  // Round-trip a dirty edge tile.
  mem.store(corner.origin, 31337);
  cache.mark_dirty(corner.frame);
  cache.flush();
  std::vector<hw::Word> row(1);
  lmem.read(m.word_addr(16, 32), row);
  EXPECT_EQ(row[0], 31337u);
}

TEST(TileCache, SynchronousPrefetchConsumption) {
  // With a pool, a miss on the predicted next tile must consume the
  // staged burst (waiting for it if still in flight).
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  runtime::ThreadPool pool(2);
  TileCache cache(lmem, mem, m, two_frames(mem.config()),
                  {.prefetch_pool = &pool});

  cache.acquire(0, 0);  // issues prefetch of (0, 1)
  const auto ref = cache.acquire(0, 1);
  for (std::int64_t c = 0; c < 32; ++c)
    EXPECT_EQ(mem.load({ref.origin.i, ref.origin.j + c}),
              static_cast<hw::Word>(32 + c));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.counters().prefetch_issued, 2u);  // (0,1) and (1,0)
  EXPECT_EQ(stats.counters().prefetch_useful, 1u);
  EXPECT_GE(stats.lmem_seconds_overlapped, 0.0);
}

TEST(TileCache, RejectsOutOfRangeTiles) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  const auto m = make_matrix(lmem);
  TileCache cache(lmem, mem, m, two_frames(mem.config()));
  EXPECT_THROW(cache.acquire(8, 0), InvalidArgument);
  EXPECT_THROW(cache.acquire(0, 2), InvalidArgument);
  EXPECT_THROW(cache.acquire(-1, 0), InvalidArgument);
}

}  // namespace
}  // namespace polymem::cache
