// CachedMatrix scalar-fallback coverage: when the scheme or the block
// shape refuses the batched row path (narrow columns, a row-incapable
// scheme), every access must route through the per-element fallback —
// bit-identical data at an honest one-access-per-element cost. The
// hammer variant is the TSan gate target: threads race fallback-heavy
// caches over disjoint regions of one shared LMem.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "cache/cached_matrix.hpp"
#include "common/rng.hpp"

namespace polymem::cache {
namespace {

core::PolyMemConfig pm_cfg(maf::Scheme scheme) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  return c;
}

// Fills the LMem matrix with a deterministic pattern and returns the
// host mirror the cache results are checked against.
std::vector<hw::Word> seed_matrix(maxsim::LMem& lmem,
                                  const maxsim::LMemMatrix& m,
                                  std::uint64_t salt) {
  std::vector<hw::Word> mirror(static_cast<std::size_t>(m.rows * m.cols));
  for (std::size_t k = 0; k < mirror.size(); ++k)
    mirror[k] = static_cast<hw::Word>((k + salt) * 2654435761u);
  for (std::int64_t i = 0; i < m.rows; ++i)
    lmem.write(m.word_addr(i, 0),
               std::span<const hw::Word>(mirror).subspan(
                   static_cast<std::size_t>(i * m.cols),
                   static_cast<std::size_t>(m.cols)));
  return mirror;
}

TEST(ScalarFallback, OneWideColumnBlocksCostOneAccessPerElement) {
  maxsim::LMem lmem(1 << 22);
  core::PolyMem mem(pm_cfg(maf::Scheme::kReRo));
  const maxsim::LMemMatrix m{0, 32, 32, 32};
  const std::vector<hw::Word> mirror = seed_matrix(lmem, m, 1);
  CachedMatrix cached(lmem, mem, m,
                      core::FramePool::whole_space(mem.config(), 8, 32));

  // 8x1 column blocks can never be served by the batched row path even
  // on a row-capable scheme: sub_cols == 1 is not lane-aligned.
  std::vector<hw::Word> col(8);
  std::uint64_t elements = 0;
  for (std::int64_t j = 0; j < m.cols; ++j) {
    cached.read_block(8, j, 8, 1, col);
    elements += 8;
    for (std::int64_t r = 0; r < 8; ++r)
      ASSERT_EQ(col[static_cast<std::size_t>(r)],
                mirror[static_cast<std::size_t>((8 + r) * m.cols + j)])
          << "col " << j << " row " << r;
  }
  // Refills are billed separately (dma.polymem_cycles); the kernel side
  // is exactly one PolyMem access per touched element.
  EXPECT_EQ(cached.stats().kernel_accesses, elements);
}

TEST(ScalarFallback, RowIncapableSchemeFallsBackOnFullRows) {
  maxsim::LMem lmem(1 << 22);
  // ReCo serves columns and diagonals, not rows: even a perfectly
  // lane-aligned full-width row read is a provoked conflict and must
  // take the scalar path.
  core::PolyMem mem(pm_cfg(maf::Scheme::kReCo));
  const maxsim::LMemMatrix m{0, 16, 32, 32};
  const std::vector<hw::Word> mirror = seed_matrix(lmem, m, 2);
  CachedMatrix cached(lmem, mem, m,
                      core::FramePool::whole_space(mem.config(), 8, 32));

  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols));
  for (std::int64_t i = 0; i < m.rows; ++i) {
    cached.read_row(i, 0, row);
    for (std::int64_t j = 0; j < m.cols; ++j)
      ASSERT_EQ(row[static_cast<std::size_t>(j)],
                mirror[static_cast<std::size_t>(i * m.cols + j)]);
  }
  EXPECT_EQ(cached.stats().kernel_accesses,
            static_cast<std::uint64_t>(m.rows * m.cols));
}

TEST(ScalarFallback, FallbackAndBatchedPathsAgreeBitForBit) {
  maxsim::LMem lmem(1 << 22);
  const maxsim::LMemMatrix m{0, 16, 32, 32};
  const std::vector<hw::Word> mirror = seed_matrix(lmem, m, 3);

  // Same LMem bytes read through a batched row-capable scheme and a
  // scalar-fallback scheme: the polymorphic layouts differ, the words
  // delivered must not.
  std::vector<hw::Word> batched(static_cast<std::size_t>(m.rows * m.cols));
  std::vector<hw::Word> fallback(batched.size());
  {
    core::PolyMem mem(pm_cfg(maf::Scheme::kReRo));
    CachedMatrix cached(lmem, mem, m,
                        core::FramePool::whole_space(mem.config(), 8, 32));
    cached.read_block(0, 0, m.rows, m.cols, batched);
    // Full-width rows on ReRo ride the parallel engine: lanes elements
    // per access, not one.
    EXPECT_EQ(cached.stats().kernel_accesses,
              static_cast<std::uint64_t>(m.rows * m.cols) /
                  pm_cfg(maf::Scheme::kReRo).lanes());
  }
  {
    core::PolyMem mem(pm_cfg(maf::Scheme::kReCo));
    CachedMatrix cached(lmem, mem, m,
                        core::FramePool::whole_space(mem.config(), 8, 32));
    cached.read_block(0, 0, m.rows, m.cols, fallback);
    EXPECT_EQ(cached.stats().kernel_accesses,
              static_cast<std::uint64_t>(m.rows * m.cols));
  }
  EXPECT_EQ(batched, fallback);
  EXPECT_EQ(batched, mirror);
}

TEST(ScalarFallback, DirtyFallbackWritesSurviveEviction) {
  maxsim::LMem lmem(1 << 22);
  core::PolyMem mem(pm_cfg(maf::Scheme::kReRo));
  // 64 rows cached through 16-row frames: column sweeps keep evicting
  // dirty tiles written through the scalar path.
  const maxsim::LMemMatrix m{0, 64, 32, 32};
  std::vector<hw::Word> mirror = seed_matrix(lmem, m, 4);
  CachedMatrix cached(lmem, mem, m,
                      core::FramePool::whole_space(mem.config(), 8, 32));

  Rng rng(4242);
  std::vector<hw::Word> col(8);
  for (int round = 0; round < 200; ++round) {
    const std::int64_t i = 8 * rng.uniform(0, m.rows / 8 - 1);
    const std::int64_t j = rng.uniform(0, m.cols - 1);
    cached.read_block(i, j, 8, 1, col);
    for (std::int64_t r = 0; r < 8; ++r) {
      col[static_cast<std::size_t>(r)] += 0x9e3779b9u;
      mirror[static_cast<std::size_t>((i + r) * m.cols + j)] =
          col[static_cast<std::size_t>(r)];
    }
    cached.write_block(i, j, 8, 1, col);
  }
  cached.flush();

  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols));
  for (std::int64_t i = 0; i < m.rows; ++i) {
    lmem.read(m.word_addr(i, 0), row);
    for (std::int64_t j = 0; j < m.cols; ++j)
      ASSERT_EQ(row[static_cast<std::size_t>(j)],
                mirror[static_cast<std::size_t>(i * m.cols + j)])
          << "row " << i << " col " << j;
  }
}

TEST(ScalarFallbackHammer, DisjointRegionsRaceOverOneLMem) {
  // The TSan gate variant: four threads, each with a private PolyMem +
  // CachedMatrix over its own quarter of a shared LMem, hammer the
  // scalar-fallback path (1-wide column RMW) with periodic flushes and
  // invalidations. Disjoint regions means the only shared state is the
  // LMem itself — exactly what the DMA layer must keep race-free.
  constexpr int kThreads = 4;
  constexpr std::int64_t kRows = 32, kCols = 32;
  maxsim::LMem lmem(1 << 22);

  std::vector<maxsim::LMemMatrix> regions;
  std::vector<std::vector<hw::Word>> mirrors;
  for (int t = 0; t < kThreads; ++t) {
    const maxsim::LMemMatrix m{static_cast<std::uint64_t>(t) * kRows * kCols,
                               kRows, kCols, kCols};
    regions.push_back(m);
    mirrors.push_back(seed_matrix(lmem, m, 100 + static_cast<std::uint64_t>(t)));
  }

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &lmem, &regions, &mirrors] {
      core::PolyMem mem(pm_cfg(maf::Scheme::kReRo));
      CachedMatrix cached(lmem, mem, regions[static_cast<std::size_t>(t)],
                          core::FramePool::whole_space(mem.config(), 8, 32));
      std::vector<hw::Word>& mirror = mirrors[static_cast<std::size_t>(t)];
      Rng rng(static_cast<std::uint64_t>(9000 + t));
      std::vector<hw::Word> col(8);
      for (int round = 0; round < 300; ++round) {
        const std::int64_t i = 8 * rng.uniform(0, kRows / 8 - 1);
        const std::int64_t j = rng.uniform(0, kCols - 1);
        cached.read_block(i, j, 8, 1, col);
        for (std::int64_t r = 0; r < 8; ++r) {
          ASSERT_EQ(col[static_cast<std::size_t>(r)],
                    mirror[static_cast<std::size_t>((i + r) * kCols + j)])
              << "thread " << t << " round " << round;
          col[static_cast<std::size_t>(r)] ^= rng.bits() | 1u;
          mirror[static_cast<std::size_t>((i + r) * kCols + j)] =
              col[static_cast<std::size_t>(r)];
        }
        cached.write_block(i, j, 8, 1, col);
        if (round % 50 == 49) {
          cached.flush();
          cached.cache().invalidate();
        }
      }
      cached.flush();
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<hw::Word> row(static_cast<std::size_t>(kCols));
  for (int t = 0; t < kThreads; ++t) {
    const maxsim::LMemMatrix& m = regions[static_cast<std::size_t>(t)];
    for (std::int64_t i = 0; i < m.rows; ++i) {
      lmem.read(m.word_addr(i, 0), row);
      for (std::int64_t j = 0; j < m.cols; ++j)
        ASSERT_EQ(row[static_cast<std::size_t>(j)],
                  mirrors[static_cast<std::size_t>(t)]
                         [static_cast<std::size_t>(i * m.cols + j)])
            << "thread " << t << " row " << i << " col " << j;
    }
  }
}

}  // namespace
}  // namespace polymem::cache
