#include "cache/cached_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "maf/scheme.hpp"

namespace polymem::cache {
namespace {

core::PolyMemConfig pm_cfg(maf::Scheme scheme) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  return c;
}

// Host-side mirror of a rows x cols LMem matrix.
struct Mirror {
  std::int64_t rows, cols;
  std::vector<hw::Word> data;

  hw::Word& at(std::int64_t i, std::int64_t j) {
    return data[static_cast<std::size_t>(i * cols + j)];
  }
};

Mirror random_matrix(maxsim::LMem& lmem, const maxsim::LMemMatrix& m,
                     Rng& rng) {
  Mirror host{m.rows, m.cols,
              std::vector<hw::Word>(static_cast<std::size_t>(m.rows * m.cols))};
  for (auto& w : host.data) w = rng.bits();
  for (std::int64_t i = 0; i < m.rows; ++i)
    lmem.write(m.word_addr(i, 0),
               std::span<const hw::Word>(host.data).subspan(
                   static_cast<std::size_t>(i * m.cols),
                   static_cast<std::size_t>(m.cols)));
  return host;
}

// Random read/write blocks, rows and scalars against a host mirror. The
// matrix is larger than the cached region (4 frames of 8x16 over a 16x32
// space vs a 40x48 matrix), so the op stream continuously evicts.
void differential_run(maf::Scheme scheme, EvictionKind eviction,
                      WritePolicy policy, std::uint64_t seed) {
  maxsim::LMem lmem(1 << 22);
  core::PolyMem mem(pm_cfg(scheme));
  const maxsim::LMemMatrix m{128, 40, 48, 48};
  Rng rng(seed);
  Mirror host = random_matrix(lmem, m, rng);

  CachedMatrix cached(lmem, mem, m,
                      core::FramePool::whole_space(mem.config(), 8, 16),
                      {.eviction = eviction, .write_policy = policy});

  std::vector<hw::Word> buf;
  for (int op = 0; op < 160; ++op) {
    const std::int64_t rows = rng.uniform(1, 12);
    const std::int64_t cols = rng.uniform(1, 20);
    const std::int64_t i = rng.uniform(0, m.rows - rows);
    const std::int64_t j = rng.uniform(0, m.cols - cols);
    buf.resize(static_cast<std::size_t>(rows * cols));
    switch (rng.uniform(0, 3)) {
      case 0:
        cached.read_block(i, j, rows, cols, buf);
        for (std::int64_t r = 0; r < rows; ++r)
          for (std::int64_t c = 0; c < cols; ++c)
            ASSERT_EQ(buf[static_cast<std::size_t>(r * cols + c)],
                      host.at(i + r, j + c))
                << "read_block(" << i << "," << j << "," << rows << "," << cols
                << ") at +" << r << ",+" << c << " op " << op;
        break;
      case 1:
        for (auto& w : buf) w = rng.bits();
        cached.write_block(i, j, rows, cols, buf);
        for (std::int64_t r = 0; r < rows; ++r)
          for (std::int64_t c = 0; c < cols; ++c)
            host.at(i + r, j + c) = buf[static_cast<std::size_t>(r * cols + c)];
        break;
      case 2: {
        ASSERT_EQ(cached.read(i, j), host.at(i, j)) << "read(" << i << "," << j
                                                    << ") op " << op;
        break;
      }
      default: {
        const hw::Word w = rng.bits();
        cached.write(i, j, w);
        host.at(i, j) = w;
        break;
      }
    }
  }

  cached.flush();
  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols));
  for (std::int64_t i = 0; i < m.rows; ++i) {
    lmem.read(m.word_addr(i, 0), row);
    for (std::int64_t j = 0; j < m.cols; ++j)
      ASSERT_EQ(row[static_cast<std::size_t>(j)], host.at(i, j))
          << "LMem after flush at " << i << "," << j;
  }

  const auto stats = cached.stats();
  EXPECT_GT(stats.counters().misses, 0u);
  EXPECT_GT(stats.counters().evictions, 0u);
  EXPECT_GT(stats.kernel_accesses, 0u);
  if (policy == WritePolicy::kWriteThrough) {
    EXPECT_EQ(stats.counters().writebacks, 0u);
  }
}

TEST(CachedMatrixDifferential, AllSchemesBothEvictionPolicies) {
  std::uint64_t seed = 20260806;
  for (maf::Scheme scheme : maf::kAllSchemes) {
    for (EvictionKind eviction : {EvictionKind::kLru, EvictionKind::kFifo}) {
      SCOPED_TRACE(std::string(maf::scheme_name(scheme)) + "/" +
                   eviction_name(eviction));
      differential_run(scheme, eviction, WritePolicy::kWriteBack, seed++);
    }
  }
}

TEST(CachedMatrixDifferential, WriteThroughKeepsLMemCurrent) {
  // Same op stream under write-through; additionally, LMem must match the
  // mirror even without the final flush for pure-write coverage.
  differential_run(maf::Scheme::kReRo, EvictionKind::kLru,
                   WritePolicy::kWriteThrough, 7);
  differential_run(maf::Scheme::kRoCo, EvictionKind::kFifo,
                   WritePolicy::kWriteThrough, 11);
}

TEST(CachedMatrix, RejectsOutOfRangeBlocks) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg(maf::Scheme::kReRo));
  const maxsim::LMemMatrix m{0, 16, 16, 16};
  CachedMatrix cached(lmem, mem, m,
                      core::FramePool::whole_space(mem.config(), 8, 16));
  std::vector<hw::Word> buf(16);
  EXPECT_THROW(cached.read_block(8, 8, 2, 16, buf), InvalidArgument);
  EXPECT_THROW(cached.read_block(-1, 0, 1, 1, buf), InvalidArgument);
  EXPECT_THROW(cached.read_block(0, 0, 4, 8, std::span<hw::Word>(buf).first(8)),
               InvalidArgument);
}

}  // namespace
}  // namespace polymem::cache
