// BatchCoalescer and the service-drain compiled entry points
// (compile_batch / read_compiled / write_compiled), differentially
// checked against read_batch / write_batch.
#include <gtest/gtest.h>

#include <vector>

#include "core/access_batch.hpp"
#include "core/polymem.hpp"

namespace polymem::core {
namespace {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

PolyMemConfig cfg() {
  PolyMemConfig c;
  c.scheme = maf::Scheme::kReRo;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  c.read_ports = 2;
  return c;
}

void fill(PolyMem& mem) {
  for (std::int64_t i = 0; i < mem.config().height; ++i) {
    for (std::int64_t j = 0; j < mem.config().width; ++j) {
      mem.store({i, j}, static_cast<hw::Word>(i * 1000 + j));
    }
  }
}

TEST(BatchCoalescer, SingletonTakesWithZeroStride) {
  BatchCoalescer c;
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.try_add({PatternKind::kRow, {3, 8}}));
  EXPECT_EQ(c.size(), 1);
  const AccessBatch batch = c.take();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(batch.count(), 1);
  EXPECT_EQ(batch.start, (Coord{3, 8}));
  EXPECT_EQ(batch.inner_stride, (Coord{0, 0}));
}

TEST(BatchCoalescer, SecondAccessFixesTheStride) {
  BatchCoalescer c;
  EXPECT_TRUE(c.try_add({PatternKind::kRect, {0, 0}}));
  EXPECT_TRUE(c.try_add({PatternKind::kRect, {2, 4}}));
  EXPECT_TRUE(c.try_add({PatternKind::kRect, {4, 8}}));
  EXPECT_FALSE(c.try_add({PatternKind::kRect, {4, 8}}));  // breaks the walk
  const AccessBatch batch = c.take();
  EXPECT_EQ(batch.count(), 3);
  EXPECT_EQ(batch.inner_stride, (Coord{2, 4}));
  // The batch replays exactly the accesses that joined.
  EXPECT_EQ(batch.access(2), (ParallelAccess{PatternKind::kRect, {4, 8}}));
}

TEST(BatchCoalescer, RejectsKindChangeAndKeepsRunIntact) {
  BatchCoalescer c;
  EXPECT_TRUE(c.try_add({PatternKind::kRow, {0, 0}}));
  EXPECT_TRUE(c.try_add({PatternKind::kRow, {1, 0}}));
  EXPECT_FALSE(c.try_add({PatternKind::kRect, {2, 0}}));
  const AccessBatch batch = c.take();
  EXPECT_EQ(batch.kind, PatternKind::kRow);
  EXPECT_EQ(batch.count(), 2);
}

TEST(CompiledEntryPoints, ReadCompiledMatchesReadBatch) {
  PolyMem mem(cfg());
  fill(mem);
  const AccessBatch batch =
      AccessBatch::strided(PatternKind::kRow, {1, 8}, {1, 0}, 12);
  const auto n = static_cast<std::size_t>(batch.count()) * mem.lanes();

  ExecPlan plan;
  ASSERT_TRUE(mem.compile_batch(batch, plan));
  std::vector<hw::Word> compiled(n);
  mem.read_compiled(plan, 1, compiled);

  std::vector<hw::Word> reference(n);
  mem.read_batch(batch, 1, reference);
  EXPECT_EQ(compiled, reference);
}

TEST(CompiledEntryPoints, CallerOwnedPlanRecompilesAcrossVaryingRuns) {
  // The service drain's exact usage: one ExecPlan serving run after run
  // of different shapes — each recompile must produce correct results.
  PolyMem mem(cfg());
  fill(mem);
  ExecPlan plan;
  for (std::int64_t count = 1; count <= 9; count += 4) {
    const AccessBatch batch =
        AccessBatch::strided(PatternKind::kRow, {0, count - 1}, {1, 1}, count);
    ASSERT_TRUE(mem.compile_batch(batch, plan));
    const auto n = static_cast<std::size_t>(count) * mem.lanes();
    std::vector<hw::Word> compiled(n), reference(n);
    mem.read_compiled(plan, 0, compiled);
    mem.read_batch(batch, 0, reference);
    EXPECT_EQ(compiled, reference) << "count=" << count;
  }
}

TEST(CompiledEntryPoints, TablePoolServesAlternatingResidueClasses) {
  // The drain loop's steady state: one plan recompiled for runs that
  // cycle through a few residue classes. The retained-table pool must
  // hand back the right pointer tables for whichever class each run
  // starts in, in any order.
  PolyMem mem(cfg());
  fill(mem);
  ExecPlan plan;
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t i0 = 0; i0 < 4; ++i0) {
      const AccessBatch batch = AccessBatch::strided(
          PatternKind::kRow, {i0, (i0 * 4) % 16}, {3, 2}, 5);
      ASSERT_TRUE(mem.compile_batch(batch, plan));
      const auto n = static_cast<std::size_t>(batch.count()) * mem.lanes();
      std::vector<hw::Word> compiled(n), reference(n);
      mem.read_compiled(plan, 0, compiled);
      mem.read_batch(batch, 0, reference);
      EXPECT_EQ(compiled, reference) << "round=" << round << " i0=" << i0;
    }
  }
}

TEST(CompiledEntryPoints, PlanMigratesBetweenMemories) {
  // A caller-owned plan recompiled against a different PolyMem must not
  // reuse pointer tables retained from the first memory's bank storage.
  PolyMem a(cfg());
  PolyMem b(cfg());
  fill(a);
  for (std::int64_t i = 0; i < b.config().height; ++i) {
    for (std::int64_t j = 0; j < b.config().width; ++j) {
      b.store({i, j}, static_cast<hw::Word>(9'000'000 + i * 1000 + j));
    }
  }
  const AccessBatch batch =
      AccessBatch::strided(PatternKind::kRow, {0, 0}, {1, 0}, 8);
  const auto n = static_cast<std::size_t>(batch.count()) * a.lanes();
  ExecPlan plan;
  for (PolyMem* mem : {&a, &b, &a}) {
    ASSERT_TRUE(mem->compile_batch(batch, plan));
    std::vector<hw::Word> compiled(n), reference(n);
    mem->read_compiled(plan, 0, compiled);
    mem->read_batch(batch, 0, reference);
    EXPECT_EQ(compiled, reference);
  }
}

TEST(CompiledEntryPoints, WriteCompiledMatchesWriteBatch) {
  PolyMem a(cfg());
  PolyMem b(cfg());
  const AccessBatch batch =
      AccessBatch::strided(PatternKind::kRow, {2, 0}, {2, 4}, 5);
  std::vector<hw::Word> data(static_cast<std::size_t>(batch.count()) *
                             a.lanes());
  for (std::size_t k = 0; k < data.size(); ++k) {
    data[k] = static_cast<hw::Word>(k * 7 + 3);
  }

  ExecPlan plan;
  ASSERT_TRUE(a.compile_batch(batch, plan));
  a.write_compiled(plan, data);
  b.write_batch(batch, data);

  for (std::int64_t i = 0; i < a.config().height; ++i) {
    for (std::int64_t j = 0; j < a.config().width; ++j) {
      EXPECT_EQ(a.load({i, j}), b.load({i, j})) << i << "," << j;
    }
  }
}

TEST(CompiledEntryPoints, CompileFailsWhenPlanCacheDisabled) {
  PolyMem mem(cfg());
  mem.set_plan_cache_enabled(false);
  ExecPlan plan;
  const AccessBatch batch =
      AccessBatch::strided(PatternKind::kRow, {0, 0}, {1, 0}, 4);
  EXPECT_FALSE(mem.compile_batch(batch, plan));
}

TEST(CompiledEntryPoints, AccountsBulkAccessCounters) {
  PolyMem mem(cfg());
  fill(mem);
  const AccessBatch batch =
      AccessBatch::strided(PatternKind::kRow, {0, 0}, {1, 0}, 6);
  ExecPlan plan;
  ASSERT_TRUE(mem.compile_batch(batch, plan));
  std::vector<hw::Word> out(static_cast<std::size_t>(batch.count()) *
                            mem.lanes());
  const std::uint64_t reads0 = mem.parallel_reads();
  mem.read_compiled(plan, 0, out);
  EXPECT_EQ(mem.parallel_reads(), reads0 + 6);
}

}  // namespace
}  // namespace polymem::core
