#include "core/cycle_polymem.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/units.hpp"

namespace polymem::core {
namespace {

using access::ParallelAccess;
using access::PatternKind;

PolyMemConfig cfg(unsigned latency = 14, unsigned ports = 1) {
  auto c = PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo, 2, 4,
                                        ports);
  c.read_latency = latency;
  return c;
}

void fill(CyclePolyMem& mem) {
  auto& f = mem.functional();
  for (std::int64_t i = 0; i < f.config().height; ++i)
    for (std::int64_t j = 0; j < f.config().width; ++j)
      f.store({i, j}, static_cast<Word>(i * 1000 + j));
}

TEST(CyclePolyMem, ReadCompletesAfterLatencyCycles) {
  CyclePolyMem mem(cfg(14));
  fill(mem);
  ASSERT_TRUE(mem.issue_read(0, {PatternKind::kRow, {2, 0}}, 42));
  for (int c = 0; c < 14; ++c) {
    mem.tick();
    EXPECT_EQ(mem.retire_read(0), std::nullopt) << "cycle " << c;
    // Pipeline is free to accept more work meanwhile; keep it idle here.
  }
  mem.tick();
  const auto resp = mem.retire_read(0);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->tag, 42u);
  ASSERT_EQ(resp->data.size(), 8u);
  EXPECT_EQ(resp->data[3], 2003u);
}

TEST(CyclePolyMem, OneReadPerPortPerCycle) {
  CyclePolyMem mem(cfg(2));
  fill(mem);
  EXPECT_TRUE(mem.issue_read(0, {PatternKind::kRow, {0, 0}}));
  EXPECT_FALSE(mem.issue_read(0, {PatternKind::kRow, {1, 0}}));
  mem.tick();
  EXPECT_TRUE(mem.issue_read(0, {PatternKind::kRow, {1, 0}}));
}

TEST(CyclePolyMem, OneWritePerCycle) {
  CyclePolyMem mem(cfg(2));
  std::vector<Word> data(8, 1);
  EXPECT_TRUE(mem.issue_write({PatternKind::kRow, {0, 0}}, data));
  EXPECT_FALSE(mem.issue_write({PatternKind::kRow, {1, 0}}, data));
  mem.tick();
  EXPECT_TRUE(mem.issue_write({PatternKind::kRow, {1, 0}}, data));
}

TEST(CyclePolyMem, FullyPipelinedOneAccessPerCycle) {
  // Throughput: N back-to-back reads retire in N + latency cycles.
  const unsigned latency = 14;
  CyclePolyMem mem(cfg(latency));
  fill(mem);
  const int n = 100;
  int retired = 0;
  for (int k = 0; k < n; ++k) {
    ASSERT_TRUE(
        mem.issue_read(0, {PatternKind::kRow, {k % 16, 0}},
                       static_cast<std::uint64_t>(k)));
    mem.tick();
    if (auto r = mem.retire_read(0)) {
      EXPECT_EQ(r->tag, static_cast<std::uint64_t>(retired));
      ++retired;
    }
  }
  while (retired < n) {
    mem.tick();
    if (auto r = mem.retire_read(0)) {
      EXPECT_EQ(r->tag, static_cast<std::uint64_t>(retired));
      ++retired;
    }
  }
  EXPECT_EQ(mem.cycles(), static_cast<std::uint64_t>(n + latency));
  EXPECT_EQ(mem.reads_issued(), static_cast<std::uint64_t>(n));
}

TEST(CyclePolyMem, ConcurrentReadAndWriteSameCycle) {
  CyclePolyMem mem(cfg(3));
  fill(mem);
  std::vector<Word> data(8, 555);
  ASSERT_TRUE(mem.issue_read(0, {PatternKind::kRow, {4, 0}}));
  ASSERT_TRUE(mem.issue_write({PatternKind::kRow, {4, 0}}, data));
  mem.tick();  // read sees pre-write data (read-first)
  mem.tick();
  mem.tick();
  mem.tick();
  const auto r = mem.retire_read(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->data[0], 4000u);
  EXPECT_EQ(mem.functional().load({4, 0}), 555u);
}

TEST(CyclePolyMem, MultiplePortsRetireIndependently) {
  CyclePolyMem mem(cfg(2, /*ports=*/2));
  fill(mem);
  ASSERT_TRUE(mem.issue_read(0, {PatternKind::kRow, {0, 0}}, 10));
  ASSERT_TRUE(mem.issue_read(1, {PatternKind::kRow, {1, 0}}, 20));
  mem.tick();
  mem.tick();
  mem.tick();
  const auto r0 = mem.retire_read(0);
  const auto r1 = mem.retire_read(1);
  ASSERT_TRUE(r0 && r1);
  EXPECT_EQ(r0->tag, 10u);
  EXPECT_EQ(r1->tag, 20u);
  EXPECT_EQ(r0->data[0], 0u);
  EXPECT_EQ(r1->data[0], 1000u);
}

TEST(CyclePolyMem, DrainCollectsInFlightReads) {
  CyclePolyMem mem(cfg(5));
  fill(mem);
  for (int k = 0; k < 3; ++k) {
    mem.issue_read(0, {PatternKind::kRow, {k, 0}},
                   static_cast<std::uint64_t>(k));
    mem.tick();
  }
  std::vector<ReadResponse> out;
  mem.drain(0, out);
  ASSERT_EQ(out.size(), 3u);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(out[k].tag, static_cast<std::uint64_t>(k));
}

TEST(CyclePolyMem, IdleCycleCounter) {
  CyclePolyMem mem(cfg(1));
  fill(mem);
  mem.tick();  // idle
  mem.issue_read(0, {PatternKind::kRow, {0, 0}});
  mem.tick();  // busy
  mem.tick();  // idle
  EXPECT_EQ(mem.cycles(), 3u);
  EXPECT_EQ(mem.idle_cycles(), 2u);
}

TEST(CyclePolyMem, ZeroLatencyConfigRetiresSameCycle) {
  CyclePolyMem mem(cfg(0));
  fill(mem);
  mem.issue_read(0, {PatternKind::kRow, {3, 0}});
  mem.tick();
  const auto r = mem.retire_read(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->data[0], 3000u);
}

}  // namespace
}  // namespace polymem::core
