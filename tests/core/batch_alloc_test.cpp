// Heap discipline of the batched access engine: after one warm-up pass
// (templates built, ExecPlans compiled, scratch sized), read_batch /
// write_batch / stream_copy_batch perform ZERO heap allocations per
// call, and read_batch_mt allocates per *invocation* (task plumbing),
// never per access. Verified by counting global operator new calls —
// including the aligned forms the compiled engine's cache-line-aligned
// SoA tables (core/simd/aligned.hpp) go through.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/units.hpp"
#include "core/polymem.hpp"
#include "runtime/thread_pool.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting replacements for the global allocation functions. Linked into
// this test binary only; delegating to malloc/free keeps them compatible
// with ASan/TSan interception.
namespace {
void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed))
    g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = nullptr;
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     size ? size : a) != 0)
    throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace polymem::core {
namespace {

using access::PatternKind;

template <typename Fn>
std::uint64_t count_allocations(Fn&& fn) {
  g_news.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_news.load(std::memory_order_relaxed);
}

TEST(BatchAllocation, SteadyStateBatchesAllocateNothing) {
  const auto cfg =
      PolyMemConfig::with_capacity(64 * KiB, maf::Scheme::kReRo, 2, 4);
  PolyMem mem(cfg);
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const AccessBatch batch{PatternKind::kRow, {0, 0}, {0, lanes},
                          cfg.width / lanes,  {1, 0}, cfg.height / 2};
  const AccessBatch dst{PatternKind::kRow,
                        {cfg.height / 2, 0},
                        {0, lanes},
                        cfg.width / lanes,
                        {1, 0},
                        cfg.height / 2};
  std::vector<Word> buf(static_cast<std::size_t>(batch.count()) * lanes);

  // Warm-up: builds every template this walk touches and sizes scratch.
  mem.write_batch(batch, buf);
  mem.read_batch(batch, 0, buf);
  mem.stream_copy_batch(batch, dst, 0);

  EXPECT_EQ(count_allocations([&] { mem.read_batch(batch, 0, buf); }), 0u);
  EXPECT_EQ(count_allocations([&] { mem.write_batch(batch, buf); }), 0u);
  EXPECT_EQ(count_allocations([&] { mem.stream_copy_batch(batch, dst, 0); }),
            0u);
}

// The compiled-plan memo holds four slots; driving five distinct batch
// shapes forces a recompile on every call. Recompiling must land in the
// evicted slot's existing AlignedVec capacity and reuse its table
// storage — steady-state recompilation is allocation-free too.
TEST(BatchAllocation, ExecPlanRecompileReusesCapacity) {
  const auto cfg =
      PolyMemConfig::with_capacity(64 * KiB, maf::Scheme::kReRo, 2, 4);
  PolyMem mem(cfg);
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  std::vector<AccessBatch> batches;
  for (std::int64_t r = 0; r < 5; ++r)
    batches.push_back({PatternKind::kRow, {r, 0}, {0, lanes},
                       cfg.width / lanes,  {1, 0}, cfg.height / 8});
  std::vector<Word> buf(
      static_cast<std::size_t>(batches[0].count()) * lanes);

  // Two warm-up rounds: templates, scratch, and peak table counts all
  // reach steady state.
  for (int round = 0; round < 2; ++round)
    for (const AccessBatch& b : batches) mem.read_batch(b, 0, buf);

  const std::uint64_t allocs = count_allocations([&] {
    for (const AccessBatch& b : batches) mem.read_batch(b, 0, buf);
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(BatchAllocation, NaiveEngineSteadyStateAlsoAllocationFree) {
  const auto cfg =
      PolyMemConfig::with_capacity(64 * KiB, maf::Scheme::kReRo, 2, 4);
  PolyMem mem(cfg);
  mem.set_plan_cache_enabled(false);
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const AccessBatch batch = AccessBatch::strided(
      PatternKind::kRow, {0, 0}, {0, lanes}, cfg.width / lanes);
  std::vector<Word> buf(static_cast<std::size_t>(batch.count()) * lanes);
  mem.read_batch(batch, 0, buf);
  EXPECT_EQ(count_allocations([&] { mem.read_batch(batch, 0, buf); }), 0u);
}

TEST(BatchAllocation, MtReadAllocatesPerCallNotPerAccess) {
  const auto cfg =
      PolyMemConfig::with_capacity(64 * KiB, maf::Scheme::kReRo, 2, 4, 2);
  PolyMem mem(cfg);
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const AccessBatch small{PatternKind::kRow, {0, 0}, {0, lanes},
                          cfg.width / lanes,  {1, 0}, cfg.height / 8};
  const AccessBatch large{PatternKind::kRow, {0, 0}, {0, lanes},
                          cfg.width / lanes,  {1, 0}, cfg.height};
  std::vector<Word> buf(static_cast<std::size_t>(large.count()) * lanes);
  runtime::ThreadPool pool(3);

  // Warm-up both shapes (templates + per-participant scratch).
  mem.read_batch_mt(small, pool,
                    std::span<Word>(buf).first(
                        static_cast<std::size_t>(small.count()) * lanes));
  mem.read_batch_mt(large, pool, buf);

  // 8x the accesses must not mean more allocations: task plumbing is
  // per-invocation, the per-access hot loop is allocation-free.
  const std::uint64_t a_small = count_allocations([&] {
    mem.read_batch_mt(small, pool,
                      std::span<Word>(buf).first(
                          static_cast<std::size_t>(small.count()) * lanes));
  });
  const std::uint64_t a_large =
      count_allocations([&] { mem.read_batch_mt(large, pool, buf); });
  EXPECT_LE(a_large, a_small + 4);  // scheduling jitter tolerance, not O(n)
}

}  // namespace
}  // namespace polymem::core
