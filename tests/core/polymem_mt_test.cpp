// Differential tests for the concurrent multi-port read engine:
// read_batch_mt must produce bit-identical output to the serial
// read_batch for every thread count (the determinism contract of
// docs/ARCHITECTURE.md, "Parallel runtime"), on the cached and the naive
// engine, across schemes, geometries and port counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "core/polymem.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::core {
namespace {

using access::PatternKind;

void fill_unique(PolyMem& mem) {
  const auto& cfg = mem.config();
  std::vector<Word> row(cfg.width);
  for (std::int64_t i = 0; i < cfg.height; ++i) {
    for (std::int64_t j = 0; j < cfg.width; ++j)
      row[j] = static_cast<Word>((i << 20) ^ (j * 2654435761u));
    mem.fill_rect({i, 0}, 1, cfg.width, row);
  }
}

struct MtCase {
  maf::Scheme scheme;
  unsigned p, q, ports;
  PatternKind kind;
};

class ReadBatchMt : public ::testing::TestWithParam<MtCase> {};

TEST_P(ReadBatchMt, BitIdenticalToSerialAcrossThreadCounts) {
  const auto& c = GetParam();
  const auto cfg =
      PolyMemConfig::with_capacity(64 * KiB, c.scheme, c.p, c.q, c.ports);
  PolyMem mem(cfg);
  fill_unique(mem);

  // A 2D batch covering the whole address space: rows of `kind` groups.
  const std::int64_t col_step =
      c.kind == PatternKind::kRow ? cfg.lanes() : c.q;
  const std::int64_t row_step = c.kind == PatternKind::kRow ? 1 : c.p;
  const AccessBatch batch{c.kind,       {0, 0},          {0, col_step},
                          cfg.width / col_step, {row_step, 0},
                          cfg.height / row_step};
  std::vector<Word> serial(static_cast<std::size_t>(batch.count()) *
                           cfg.lanes());
  mem.read_batch(batch, 0, serial);

  const std::uint64_t reads_before = mem.parallel_reads();
  for (unsigned workers : {0u, 1u, 7u}) {
    runtime::ThreadPool pool(workers);
    std::vector<Word> parallel(serial.size(), ~Word{0});
    mem.read_batch_mt(batch, pool, parallel);
    EXPECT_EQ(parallel, serial) << "workers " << workers;
  }
  EXPECT_EQ(mem.parallel_reads(), reads_before + 3 * batch.count());
}

TEST_P(ReadBatchMt, NaiveEngineAlsoDeterministic) {
  const auto& c = GetParam();
  const auto cfg =
      PolyMemConfig::with_capacity(16 * KiB, c.scheme, c.p, c.q, c.ports);
  PolyMem mem(cfg);
  fill_unique(mem);
  mem.set_plan_cache_enabled(false);

  const std::int64_t col_step =
      c.kind == PatternKind::kRow ? cfg.lanes() : c.q;
  const AccessBatch batch = AccessBatch::strided(
      c.kind, {0, 0}, {0, col_step}, cfg.width / col_step);
  std::vector<Word> serial(static_cast<std::size_t>(batch.count()) *
                           cfg.lanes());
  mem.read_batch(batch, 0, serial);

  runtime::ThreadPool pool(3);
  std::vector<Word> parallel(serial.size());
  mem.read_batch_mt(batch, pool, parallel);
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(mem.plan_cache().hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReadBatchMt,
    ::testing::Values(
        MtCase{maf::Scheme::kReRo, 2, 4, 1, PatternKind::kRow},
        MtCase{maf::Scheme::kReRo, 2, 4, 4, PatternKind::kRow},
        MtCase{maf::Scheme::kReRo, 4, 4, 2, PatternKind::kRow},
        MtCase{maf::Scheme::kRoCo, 2, 4, 4, PatternKind::kRect},
        MtCase{maf::Scheme::kReTr, 2, 8, 2, PatternKind::kRect},
        MtCase{maf::Scheme::kReO, 2, 4, 3, PatternKind::kRect}),
    [](const ::testing::TestParamInfo<MtCase>& info) {
      const auto& c = info.param;
      return std::string(maf::scheme_name(c.scheme)) + "_" +
             std::to_string(c.p) + "x" + std::to_string(c.q) + "_" +
             std::to_string(c.ports) + "P_" +
             access::pattern_name(c.kind);
    });

TEST(ReadBatchMt, ValidatesLikeSerialBatch) {
  const auto cfg =
      PolyMemConfig::with_capacity(16 * KiB, maf::Scheme::kReRo, 2, 4);
  PolyMem mem(cfg);
  runtime::ThreadPool pool(2);
  std::vector<Word> out(8 * cfg.lanes());
  // Out-of-bounds batch: rejected up front, before any thread runs.
  const AccessBatch oob = AccessBatch::strided(
      PatternKind::kRow, {cfg.height - 1, 0},
      {1, 0}, 8);
  EXPECT_THROW(mem.read_batch_mt(oob, pool, out), InvalidArgument);
  // Wrong buffer size.
  const AccessBatch good = AccessBatch::strided(
      PatternKind::kRow, {0, 0}, {1, 0}, 8);
  std::vector<Word> small(cfg.lanes());
  EXPECT_THROW(mem.read_batch_mt(good, pool, small), Error);
}

TEST(ReadBatchMt, MixedWithWritesBetweenBatches) {
  // Alternating write_batch / read_batch_mt phases: the read-only phase
  // contract holds between (not within) phases, and each phase sees the
  // preceding writes on every port.
  const auto cfg =
      PolyMemConfig::with_capacity(16 * KiB, maf::Scheme::kReRo, 2, 4, 4);
  PolyMem mem(cfg);
  runtime::ThreadPool pool(3);
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const AccessBatch rows = AccessBatch::strided(
      PatternKind::kRow, {0, 0}, {0, lanes}, cfg.width / lanes);
  std::vector<Word> data(static_cast<std::size_t>(rows.count()) * lanes);
  std::vector<Word> back(data.size());
  for (int phase = 0; phase < 3; ++phase) {
    for (std::size_t k = 0; k < data.size(); ++k)
      data[k] = static_cast<Word>(phase * 1'000'003 + k);
    mem.write_batch(rows, data);
    mem.read_batch_mt(rows, pool, back);
    EXPECT_EQ(back, data) << "phase " << phase;
  }
}

}  // namespace
}  // namespace polymem::core
