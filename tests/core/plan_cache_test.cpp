// Differential tests of the plan-template cache and the batched access
// engine: for every scheme x supported pattern x an anchor sweep covering
// more than one MAF period, the cached/batched path must produce bitwise
// identical plans and read/write results to the naive AGU path. This is
// the correctness gate for the whole fast path.
#include "core/plan_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "core/polymem.hpp"
#include "maf/conflict.hpp"

namespace polymem::core {
namespace {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;
using maf::Scheme;
using maf::SupportLevel;

struct Geometry {
  unsigned p;
  unsigned q;
};

constexpr Geometry kGeometries[] = {{2, 4}, {4, 2}, {4, 4}, {1, 4}};

// An address space wide enough to sweep anchors across two full MAF
// periods plus the widest pattern extent.
PolyMemConfig make_config(Scheme scheme, Geometry g) {
  const maf::Maf maf(scheme, g.p, g.q);
  const std::int64_t n = static_cast<std::int64_t>(g.p) * g.q;
  PolyMemConfig cfg;
  cfg.scheme = scheme;
  cfg.p = g.p;
  cfg.q = g.q;
  cfg.height = round_up<std::int64_t>(2 * maf.period_i() + 2 * n, g.p);
  cfg.width = round_up<std::int64_t>(2 * maf.period_j() + 2 * n, g.q);
  cfg.validate();
  return cfg;
}

// All valid anchors of `kind` with both coordinates below ~one period plus
// a margin — every residue class plus its first repetition.
std::vector<Coord> sweep_anchors(const PolyMemConfig& cfg,
                                 const maf::Maf& maf, PatternKind kind,
                                 SupportLevel level) {
  const auto ext = access::pattern_extent(kind, cfg.p, cfg.q);
  const std::int64_t lo_i = 0, hi_i = cfg.height - ext.rows;
  const std::int64_t lo_j = -ext.col_offset;
  const std::int64_t hi_j = cfg.width - ext.cols - ext.col_offset;
  const std::int64_t end_i = std::min(hi_i, maf.period_i() + cfg.p);
  const std::int64_t end_j = std::min(hi_j, lo_j + maf.period_j() + cfg.q);
  std::vector<Coord> anchors;
  for (std::int64_t i = lo_i; i <= end_i; ++i) {
    if (level == SupportLevel::kAligned && i % cfg.p != 0) continue;
    for (std::int64_t j = lo_j; j <= end_j; ++j) {
      if (level == SupportLevel::kAligned && j % cfg.q != 0) continue;
      anchors.push_back({i, j});
    }
  }
  return anchors;
}

void fill_deterministic(PolyMem& mem) {
  std::vector<Word> values(
      static_cast<std::size_t>(mem.config().height * mem.config().width));
  for (std::size_t k = 0; k < values.size(); ++k)
    values[k] = 0x9E3779B97F4A7C15ull * (k + 1);
  mem.fill_rect({0, 0}, mem.config().height, mem.config().width, values);
}

TEST(PlanCache, TemplatesMatchNaivePlansEverywhere) {
  for (Scheme scheme : maf::kAllSchemes) {
    for (Geometry g : kGeometries) {
      const PolyMemConfig cfg = make_config(scheme, g);
      PolyMem mem(cfg);
      ASSERT_TRUE(mem.plan_cache().enabled());
      for (PatternKind kind : access::kAllPatterns) {
        const SupportLevel level = mem.supports(kind);
        if (level == SupportLevel::kNone) continue;
        for (const Coord& anchor :
             sweep_anchors(cfg, mem.maf(), kind, level)) {
          const ParallelAccess acc{kind, anchor};
          const AccessPlan naive = mem.agu().expand(acc);
          std::int64_t delta = 0;
          const PlanTemplate* t = mem.plan_cache().lookup(acc, delta);
          ASSERT_NE(t, nullptr)
              << maf::scheme_name(scheme) << " " << g.p << "x" << g.q << " "
              << access::pattern_name(kind) << " at " << anchor;
          for (unsigned k = 0; k < cfg.lanes(); ++k) {
            ASSERT_EQ(t->bank[k], naive.bank[k])
                << maf::scheme_name(scheme) << " "
                << access::pattern_name(kind) << " lane " << k << " at "
                << anchor;
            ASSERT_EQ(t->addr0[k] + delta, naive.addr[k])
                << maf::scheme_name(scheme) << " "
                << access::pattern_name(kind) << " lane " << k << " at "
                << anchor;
            ASSERT_EQ(t->lane_for_bank[t->bank[k]], k);
            ASSERT_EQ(t->bank_addr0[t->bank[k]], t->addr0[k]);
          }
        }
      }
    }
  }
}

TEST(PlanCache, CachedReadsMatchNaiveReads) {
  for (Scheme scheme : maf::kAllSchemes) {
    for (Geometry g : kGeometries) {
      const PolyMemConfig cfg = make_config(scheme, g);
      PolyMem cached(cfg);
      PolyMem naive(cfg);
      naive.set_plan_cache_enabled(false);
      fill_deterministic(cached);
      fill_deterministic(naive);
      std::vector<Word> a(cfg.lanes()), b(cfg.lanes());
      for (PatternKind kind : access::kAllPatterns) {
        const SupportLevel level = cached.supports(kind);
        if (level == SupportLevel::kNone) continue;
        for (const Coord& anchor :
             sweep_anchors(cfg, cached.maf(), kind, level)) {
          cached.read_into({kind, anchor}, 0, a);
          naive.read_into({kind, anchor}, 0, b);
          ASSERT_EQ(a, b) << maf::scheme_name(scheme) << " "
                          << access::pattern_name(kind) << " at " << anchor;
        }
      }
      EXPECT_GT(cached.plan_cache().hits(), 0u);
    }
  }
}

TEST(PlanCache, CachedWritesMatchNaiveWrites) {
  for (Scheme scheme : maf::kAllSchemes) {
    for (Geometry g : kGeometries) {
      const PolyMemConfig cfg = make_config(scheme, g);
      PolyMem cached(cfg);
      PolyMem naive(cfg);
      naive.set_plan_cache_enabled(false);
      std::vector<Word> data(cfg.lanes());
      std::uint64_t seed = 1;
      for (PatternKind kind : access::kAllPatterns) {
        const SupportLevel level = cached.supports(kind);
        if (level == SupportLevel::kNone) continue;
        for (const Coord& anchor :
             sweep_anchors(cfg, cached.maf(), kind, level)) {
          for (Word& w : data) w = seed += 0x9E3779B97F4A7C15ull;
          cached.write({kind, anchor}, data);
          naive.write({kind, anchor}, data);
        }
      }
      const auto elems =
          static_cast<std::size_t>(cfg.height) * static_cast<std::size_t>(cfg.width);
      std::vector<Word> da(elems), db(elems);
      cached.dump_rect({0, 0}, cfg.height, cfg.width, da);
      naive.dump_rect({0, 0}, cfg.height, cfg.width, db);
      ASSERT_EQ(da, db) << maf::scheme_name(scheme) << " " << g.p << "x"
                        << g.q;
    }
  }
}

TEST(PlanCache, ErrorsMatchNaivePath) {
  PolyMemConfig cfg = make_config(Scheme::kRoCo, {2, 4});
  PolyMem cached(cfg);
  PolyMem naive(cfg);
  naive.set_plan_cache_enabled(false);
  std::vector<Word> out(cfg.lanes());
  // RoCo serves rectangles only at aligned anchors.
  ASSERT_EQ(cached.supports(PatternKind::kRect), SupportLevel::kAligned);
  EXPECT_THROW(cached.read_into({PatternKind::kRect, {1, 1}}, 0, out),
               Unsupported);
  EXPECT_THROW(naive.read_into({PatternKind::kRect, {1, 1}}, 0, out),
               Unsupported);
  // Out-of-bounds accesses stay InvalidArgument on both paths.
  EXPECT_THROW(
      cached.read_into({PatternKind::kRow, {0, cfg.width - 1}}, 0, out),
      InvalidArgument);
  EXPECT_THROW(
      naive.read_into({PatternKind::kRow, {0, cfg.width - 1}}, 0, out),
      InvalidArgument);
  // TRect is outside RoCo's family on both paths.
  if (cached.supports(PatternKind::kTRect) == SupportLevel::kNone) {
    EXPECT_THROW(cached.read_into({PatternKind::kTRect, {0, 0}}, 0, out),
                 Unsupported);
    EXPECT_THROW(naive.read_into({PatternKind::kTRect, {0, 0}}, 0, out),
                 Unsupported);
  }
}

TEST(PlanCache, TemplateCountIsBoundedByResidueClasses) {
  const PolyMemConfig cfg = make_config(Scheme::kReRo, {2, 4});
  PolyMem mem(cfg);
  fill_deterministic(mem);
  std::vector<Word> out(cfg.lanes());
  for (std::int64_t i = 0; i + 1 <= cfg.height; ++i)
    for (std::int64_t j = 0; j + 8 <= cfg.width; ++j)
      mem.read_into({PatternKind::kRow, {i, j}}, 0, out);
  const auto& pc = mem.plan_cache();
  EXPECT_LE(pc.builds(),
            static_cast<std::uint64_t>(pc.period_i() * pc.period_j()));
  EXPECT_EQ(pc.builds(), pc.size());
  EXPECT_GT(pc.hits(), pc.builds());
}

TEST(BatchEngine, ReadBatchMatchesReadLoop) {
  for (Scheme scheme : {Scheme::kReRo, Scheme::kRoCo, Scheme::kReTr}) {
    const PolyMemConfig cfg = make_config(scheme, {2, 4});
    PolyMem mem(cfg);
    fill_deterministic(mem);
    const PatternKind kind = scheme == Scheme::kReTr ? PatternKind::kRect
                                                     : PatternKind::kRow;
    const auto ext = access::pattern_extent(kind, cfg.p, cfg.q);
    const std::int64_t inner = (cfg.width - ext.cols) / cfg.q + 1;
    const std::int64_t outer = (cfg.height - ext.rows) / cfg.p + 1;
    const AccessBatch batch{kind,       {0, 0}, {0, cfg.q}, inner,
                            {cfg.p, 0}, outer};
    std::vector<Word> bulk(
        static_cast<std::size_t>(batch.count()) * cfg.lanes());
    mem.read_batch(batch, 0, bulk);
    std::vector<Word> one(cfg.lanes());
    for (std::int64_t t = 0; t < batch.count(); ++t) {
      mem.read_into(batch.access(t), 0, one);
      for (unsigned k = 0; k < cfg.lanes(); ++k)
        ASSERT_EQ(bulk[static_cast<std::size_t>(t) * cfg.lanes() + k],
                  one[k])
            << maf::scheme_name(scheme) << " access " << t << " lane " << k;
    }
  }
}

TEST(BatchEngine, WriteBatchMatchesWriteLoop) {
  const PolyMemConfig cfg = make_config(Scheme::kReRo, {2, 4});
  PolyMem batched(cfg);
  PolyMem looped(cfg);
  const std::int64_t groups = cfg.width / cfg.lanes();
  const AccessBatch batch{PatternKind::kRow, {0, 0},
                          {0, static_cast<std::int64_t>(cfg.lanes())},
                          groups,          {1, 0},
                          cfg.height};
  std::vector<Word> data(
      static_cast<std::size_t>(batch.count()) * cfg.lanes());
  for (std::size_t k = 0; k < data.size(); ++k)
    data[k] = 0xD1B54A32D192ED03ull * (k + 7);
  batched.write_batch(batch, data);
  for (std::int64_t t = 0; t < batch.count(); ++t)
    looped.write(batch.access(t),
                 std::span<const Word>(data).subspan(
                     static_cast<std::size_t>(t) * cfg.lanes(),
                     cfg.lanes()));
  const auto elems =
      static_cast<std::size_t>(cfg.height) * static_cast<std::size_t>(cfg.width);
  std::vector<Word> da(elems), db(elems);
  batched.dump_rect({0, 0}, cfg.height, cfg.width, da);
  looped.dump_rect({0, 0}, cfg.height, cfg.width, db);
  EXPECT_EQ(da, db);
  EXPECT_EQ(batched.parallel_writes(),
            static_cast<std::uint64_t>(batch.count()));
}

TEST(BatchEngine, StreamCopyBatchMatchesManualCopy) {
  const PolyMemConfig cfg = make_config(Scheme::kReRo, {2, 4});
  PolyMem mem(cfg);
  fill_deterministic(mem);
  const std::int64_t half = cfg.height / 2;
  const std::int64_t groups = cfg.width / cfg.lanes();
  const AccessBatch src{PatternKind::kRow, {0, 0},
                        {0, static_cast<std::int64_t>(cfg.lanes())},
                        groups,            {1, 0},
                        half};
  AccessBatch dst = src;
  dst.start = {half, 0};
  mem.stream_copy_batch(src, dst, 0);
  const auto elems =
      static_cast<std::size_t>(half) * static_cast<std::size_t>(cfg.width);
  std::vector<Word> a(elems), b(elems);
  mem.dump_rect({0, 0}, half, cfg.width, a);
  mem.dump_rect({half, 0}, half, cfg.width, b);
  EXPECT_EQ(a, b);
}

TEST(BatchEngine, ValidatesOnceAndRejectsBadBatches) {
  const PolyMemConfig cfg = make_config(Scheme::kRoCo, {2, 4});
  PolyMem mem(cfg);
  std::vector<Word> out(static_cast<std::size_t>(4) * cfg.lanes());
  // Unaligned stride under an aligned-only pattern.
  EXPECT_THROW(
      mem.read_batch(AccessBatch::strided(PatternKind::kRect, {0, 0}, {1, 0},
                                          4),
                     0, out),
      Unsupported);
  // Last anchor walks off the end of the address space.
  EXPECT_THROW(
      mem.read_batch(AccessBatch::strided(PatternKind::kRow, {0, 0},
                                          {0, cfg.width}, 4),
                     0, out),
      InvalidArgument);
  // Unsupported pattern family.
  EXPECT_THROW(
      mem.read_batch(AccessBatch::strided(PatternKind::kTRect, {0, 0},
                                          {cfg.p, 0}, 4),
                     0, out),
      Unsupported);
  // Wrong buffer size.
  EXPECT_THROW(
      mem.read_batch(AccessBatch::strided(PatternKind::kRow, {0, 0}, {1, 0},
                                          3),
                     0, out),
      InvalidArgument);
  // An empty batch is a no-op.
  mem.read_batch(AccessBatch::strided(PatternKind::kRow, {0, 0}, {1, 0}, 0),
                 0, std::span<Word>());
  EXPECT_EQ(mem.parallel_reads(), 0u);
}

TEST(BatchEngine, BatchWorksWithPlanCacheDisabled) {
  const PolyMemConfig cfg = make_config(Scheme::kReRo, {2, 4});
  PolyMem mem(cfg);
  mem.set_plan_cache_enabled(false);
  fill_deterministic(mem);
  const AccessBatch batch{PatternKind::kRow, {0, 0},
                          {0, static_cast<std::int64_t>(cfg.lanes())},
                          cfg.width / cfg.lanes(), {1, 0},
                          cfg.height};
  std::vector<Word> bulk(
      static_cast<std::size_t>(batch.count()) * cfg.lanes());
  mem.read_batch(batch, 0, bulk);  // naive fallback per access
  std::vector<Word> expect(
      static_cast<std::size_t>(cfg.height) * static_cast<std::size_t>(cfg.width));
  mem.dump_rect({0, 0}, cfg.height, cfg.width, expect);
  EXPECT_EQ(bulk, expect);
  EXPECT_EQ(mem.plan_cache().hits(), 0u);
}

}  // namespace
}  // namespace polymem::core
