// Failure injection: every layer of the stack must *loudly* reject what
// real hardware would silently corrupt. These tests drive each layer with
// deliberately broken inputs and assert the failure surfaces at the right
// place with the right type.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/banks.hpp"
#include "core/cycle_polymem.hpp"
#include "core/polymem.hpp"
#include "core/shuffle.hpp"

namespace polymem::core {
namespace {

using access::ParallelAccess;
using access::PatternKind;

TEST(FailureInjection, UnsupportedPatternStoppedAtTheAgu) {
  // Layer 1: a pattern the scheme cannot serve never reaches the banks.
  PolyMem mem(PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReO, 2, 4));
  EXPECT_THROW(mem.read({PatternKind::kRow, {0, 0}}), Unsupported);
  EXPECT_EQ(mem.parallel_reads(), 0u);  // nothing was counted
}

TEST(FailureInjection, ConflictingBankVectorStoppedAtTheShuffle) {
  // Layer 2: a corrupted (non-permutation) bank select — as a broken MAF
  // would produce — is rejected by the crossbar's permutation check.
  PolyMem mem(PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo, 2, 4));
  AccessPlan plan = mem.agu().expand({PatternKind::kRow, {0, 0}});
  plan.bank[3] = plan.bank[2];  // two lanes claim the same bank
  std::vector<std::int64_t> per_bank_addr(8);
  EXPECT_THROW(address_shuffle(plan, per_bank_addr), InvalidArgument);
  std::vector<Word> data(8), routed(8);
  EXPECT_THROW(write_data_shuffle(plan, data, routed), InvalidArgument);
  EXPECT_THROW(read_data_shuffle(plan, data, routed), InvalidArgument);
}

TEST(FailureInjection, DoubleBankAccessStoppedAtTheBram) {
  // Layer 3: even if routing were bypassed, the BRAM port accounting
  // catches two same-cycle accesses to one bank.
  BankArray banks(8, 1, 16);
  std::vector<std::int64_t> addr(8, 0);
  std::vector<hw::Word> out(8);
  banks.begin_cycle();
  banks.read(0, addr, out);
  // A second full read in the same cycle double-uses every bank port.
  EXPECT_THROW(banks.read(0, addr, out), Error);
}

TEST(FailureInjection, OutOfBoundsAddressStoppedBeforeTheBanks) {
  PolyMem mem(PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo, 2, 4));
  const std::uint64_t writes_before = mem.parallel_writes();
  std::vector<Word> data(8, 1);
  EXPECT_THROW(mem.write({PatternKind::kRow, {0, mem.config().width - 1}},
                         data),
               InvalidArgument);
  EXPECT_EQ(mem.parallel_writes(), writes_before);
  // The memory is untouched.
  EXPECT_EQ(mem.load({0, mem.config().width - 1}), 0u);
}

TEST(FailureInjection, CycleModelPortOversubscription) {
  auto cfg = PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo, 2, 4);
  CyclePolyMem mem(cfg);
  EXPECT_TRUE(mem.issue_read(0, {PatternKind::kRow, {0, 0}}));
  EXPECT_FALSE(mem.issue_read(0, {PatternKind::kRow, {1, 0}}));  // refused
  EXPECT_THROW(mem.issue_read(1, {PatternKind::kRow, {0, 0}}),
               InvalidArgument);  // port 1 does not exist
  mem.tick();
  EXPECT_EQ(mem.reads_issued(), 1u);  // the refused issue left no trace
}

TEST(FailureInjection, BadConfigurationsNeverConstruct) {
  PolyMemConfig cfg;
  cfg.height = 9;  // not a multiple of p = 2
  cfg.width = 16;
  EXPECT_THROW(PolyMem{cfg}, InvalidArgument);
  cfg.height = 8;
  cfg.read_ports = 0;
  EXPECT_THROW(PolyMem{cfg}, InvalidArgument);
  cfg.read_ports = 1;
  EXPECT_NO_THROW(PolyMem{cfg});
}

TEST(FailureInjection, ReTrGeometryWithoutSkewingRejected) {
  // A geometry for which the coefficient family has no conflict-free
  // member must be refused at construction, not fail silently later.
  // (3, 5): the search space is tiny, so the failure is immediate.
  bool constructed = false;
  try {
    maf::Maf maf(maf::Scheme::kReTr, 3, 5);
    constructed = true;
    // If a skewing exists after all, it must at least be verified.
    EXPECT_TRUE(maf::verify_conflict_free(maf, PatternKind::kRect));
    EXPECT_TRUE(maf::verify_conflict_free(maf, PatternKind::kTRect));
  } catch (const Unsupported&) {
    // Equally acceptable: cleanly refused.
  }
  (void)constructed;
}

TEST(FailureInjection, WrongDataWidthRejectedEverywhere) {
  PolyMem mem(PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo, 2, 4));
  std::vector<Word> short_data(7);
  std::vector<Word> long_buf(9);
  EXPECT_THROW(mem.write({PatternKind::kRow, {0, 0}}, short_data),
               InvalidArgument);
  EXPECT_THROW(mem.read_into({PatternKind::kRow, {0, 0}}, 0, long_buf),
               InvalidArgument);
  CyclePolyMem cycle(mem.config());
  EXPECT_THROW(cycle.issue_write({PatternKind::kRow, {0, 0}}, short_data),
               InvalidArgument);
}

}  // namespace
}  // namespace polymem::core
