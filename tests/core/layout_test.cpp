#include "core/layout.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::core {
namespace {

TEST(Layout, PackUnpackDoubleIsBitExact) {
  for (double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e-300, -1e300}) {
    EXPECT_EQ(unpack_double(pack_double(v)), v);
  }
  // NaN payload preserved bit-exactly.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(pack_double(unpack_double(pack_double(nan))), pack_double(nan));
}

TEST(VectorBand, CoordsRowMajor) {
  // The STREAM design: vector A of 170*512 elements in rows 0..169 of a
  // 512-wide space (paper Sec. V).
  const VectorBand a(0, 170 * 512, 512);
  EXPECT_EQ(a.rows(), 170);
  EXPECT_EQ(a.coord(0), (access::Coord{0, 0}));
  EXPECT_EQ(a.coord(511), (access::Coord{0, 511}));
  EXPECT_EQ(a.coord(512), (access::Coord{1, 0}));
  EXPECT_EQ(a.coord(170 * 512 - 1), (access::Coord{169, 511}));
}

TEST(VectorBand, SecondBandOffsets) {
  const VectorBand c(340, 170 * 512, 512);
  EXPECT_EQ(c.coord(0), (access::Coord{340, 0}));
}

TEST(VectorBand, PartialLastRow) {
  const VectorBand v(2, 10, 8);
  EXPECT_EQ(v.rows(), 2);
  EXPECT_EQ(v.coord(9), (access::Coord{3, 1}));
}

TEST(VectorBand, BoundsChecked) {
  const VectorBand v(0, 16, 8);
  EXPECT_THROW(v.coord(-1), InvalidArgument);
  EXPECT_THROW(v.coord(16), InvalidArgument);
}

TEST(VectorBand, GroupAnchors) {
  const VectorBand v(4, 64, 16);
  EXPECT_EQ(v.group_anchor(0, 8), (access::Coord{4, 0}));
  EXPECT_EQ(v.group_anchor(8, 8), (access::Coord{4, 8}));
  EXPECT_EQ(v.group_anchor(16, 8), (access::Coord{5, 0}));
  EXPECT_THROW(v.group_anchor(4, 8), InvalidArgument);   // unaligned
  EXPECT_THROW(v.group_anchor(0, 3), InvalidArgument);   // 3 !| 16
}

TEST(VectorBand, ConstructorValidation) {
  EXPECT_THROW(VectorBand(-1, 8, 8), InvalidArgument);
  EXPECT_THROW(VectorBand(0, 8, 0), InvalidArgument);
  EXPECT_THROW(VectorBand(0, -2, 8), InvalidArgument);
}

}  // namespace
}  // namespace polymem::core
