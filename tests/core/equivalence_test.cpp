// Property: the cycle-accurate model is OBSERVATIONALLY EQUIVALENT to the
// functional model — same read data (only later), same final memory state
// — under randomized streams of mixed reads/writes on random patterns.
// This is the key guarantee that lets the bandwidth benches trust the
// functional fast path.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/cycle_polymem.hpp"
#include "core/polymem.hpp"

namespace polymem::core {
namespace {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

struct Op {
  bool is_write;
  ParallelAccess where;
  std::vector<Word> data;  // writes only
};

std::vector<Op> random_ops(const PolyMemConfig& cfg, int count,
                           std::uint64_t seed) {
  Rng rng(seed);
  // Use patterns the scheme serves at any anchor.
  maf::Maf maf(cfg.scheme, cfg.p, cfg.q);
  std::vector<PatternKind> kinds;
  for (PatternKind kind : access::kAllPatterns)
    if (maf::probe_support(maf, kind) == maf::SupportLevel::kAny)
      kinds.push_back(kind);
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(count));
  while (static_cast<int>(ops.size()) < count) {
    const PatternKind kind =
        kinds[static_cast<std::size_t>(rng.uniform(0, kinds.size() - 1))];
    const Coord anchor{rng.uniform(0, cfg.height - 1),
                       rng.uniform(0, cfg.width - 1)};
    if (!access::fits({kind, anchor}, cfg.p, cfg.q, cfg.height, cfg.width))
      continue;
    Op op;
    op.is_write = rng.chance(0.5);
    op.where = {kind, anchor};
    if (op.is_write) {
      op.data.resize(cfg.lanes());
      for (auto& w : op.data) w = rng.bits();
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

class EquivalenceTest : public ::testing::TestWithParam<maf::Scheme> {};

TEST_P(EquivalenceTest, CycleModelMatchesFunctionalModel) {
  auto cfg = PolyMemConfig::with_capacity(8 * KiB, GetParam(), 2, 4);
  cfg.read_latency = 5;
  PolyMem functional(cfg);
  CyclePolyMem cycle(cfg);

  const auto ops = random_ops(cfg, 400, 0xC0FFEE);

  // Functional: execute in order, record expected read results.
  std::deque<std::vector<Word>> expected_reads;
  for (const Op& op : ops) {
    if (op.is_write)
      functional.write(op.where, op.data);
    else
      expected_reads.push_back(functional.read(op.where));
  }

  // Cycle model: one op per cycle (a write and the next read may NOT be
  // reordered, so ops are issued strictly in order), retire as data
  // arrives, compare in order.
  std::size_t next = 0;
  std::size_t verified = 0;
  const std::size_t total_reads = expected_reads.size();
  while (verified < total_reads || next < ops.size()) {
    if (next < ops.size()) {
      const Op& op = ops[next];
      const bool ok = op.is_write
                          ? cycle.issue_write(op.where, op.data)
                          : cycle.issue_read(0, op.where, next);
      ASSERT_TRUE(ok);
      ++next;
    }
    cycle.tick();
    if (auto resp = cycle.retire_read(0)) {
      ASSERT_FALSE(expected_reads.empty());
      EXPECT_EQ(resp->data, expected_reads.front())
          << "read #" << verified << " under "
          << maf::scheme_name(GetParam());
      expected_reads.pop_front();
      ++verified;
    }
  }

  // Final memory state identical, word for word.
  for (std::int64_t i = 0; i < cfg.height; ++i)
    for (std::int64_t j = 0; j < cfg.width; ++j)
      ASSERT_EQ(cycle.functional().load({i, j}), functional.load({i, j}))
          << "(" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EquivalenceTest,
                         ::testing::ValuesIn(maf::kAllSchemes),
                         [](const auto& info) {
                           return std::string(maf::scheme_name(info.param));
                         });

TEST(Equivalence, WaitWriteBeforeDependentRead) {
  // A read issued the cycle AFTER a write to the same location must see
  // the new data in both models (no stale-forwarding bugs).
  auto cfg = PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo, 2, 4);
  cfg.read_latency = 7;
  CyclePolyMem cycle(cfg);
  std::vector<Word> data(8, 1234);
  const ParallelAccess where{PatternKind::kRow, {3, 8}};
  cycle.issue_write(where, data);
  cycle.tick();
  cycle.issue_read(0, where);
  std::vector<ReadResponse> out;
  cycle.drain(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].data, data);
}

}  // namespace
}  // namespace polymem::core
