// Concurrency regression tests for PlanCache (run under TSan in CI).
//
// PR 1 left the cache with a per-instance single-entry memo — mutable
// state shared by every caller, a data race the moment two threads
// looked up plans on the same PolyMem. The memo now lives with the
// caller (PlanCache::Memo, one per thread) and the template map sits
// behind a shared_mutex; these tests hammer the lookup path from many
// threads and cross-check every answer against a serial reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/plan_cache.hpp"
#include "core/polymem.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::core {
namespace {

using access::ParallelAccess;
using access::PatternKind;

PolyMemConfig test_config(maf::Scheme scheme, unsigned p, unsigned q) {
  return PolyMemConfig::with_capacity(64 * KiB, scheme, p, q);
}

struct Answer {
  bool served = false;
  std::vector<unsigned> bank;
  std::vector<std::int64_t> addr;  // addr0 + delta (the per-anchor truth)
};

Answer answer_for(PlanCache& cache, PlanCache::Memo& memo,
                  const ParallelAccess& acc) {
  Answer a;
  std::int64_t delta = 0;
  const PlanTemplate* t = cache.lookup(acc, delta, memo);
  if (t == nullptr) return a;
  a.served = true;
  a.bank = t->bank;
  a.addr = t->addr0;
  for (auto& v : a.addr) v += delta;
  return a;
}

TEST(PlanCacheMt, HammeredLookupsMatchSerialReference) {
  for (auto [scheme, p, q] : {std::tuple{maf::Scheme::kReRo, 2u, 4u},
                              std::tuple{maf::Scheme::kRoCo, 4u, 4u},
                              std::tuple{maf::Scheme::kReTr, 2u, 8u}}) {
    const PolyMemConfig cfg = test_config(scheme, p, q);
    PolyMem mem(cfg);
    PlanCache& cache = mem.plan_cache();
    ASSERT_TRUE(cache.enabled());

    // The anchor script every thread replays (mixed kinds, strided walk
    // cycling the residue classes, plus rejects: unsupported anchors and
    // out-of-bounds anchors must return null everywhere).
    std::vector<ParallelAccess> script;
    for (std::int64_t i = 0; i < 3 * cache.period_i(); ++i)
      for (std::int64_t j : {std::int64_t{0}, std::int64_t{q},
                             2 * cache.period_j(), cfg.width - q})
        for (PatternKind kind :
             {PatternKind::kRow, PatternKind::kRect, PatternKind::kCol})
          script.push_back({kind, {i, j}});
    script.push_back({PatternKind::kRow, {cfg.height + 5, 0}});

    // Serial reference, fresh memo.
    std::vector<Answer> expected;
    {
      PlanCache::Memo memo;
      for (const auto& acc : script)
        expected.push_back(answer_for(cache, memo, acc));
    }

    // Hammer: 8 threads replay the script 20 times each, all sharing the
    // cache but owning their memos. Every answer must equal the serial
    // reference (template pointers are stable, so the data must be too).
    constexpr int kThreads = 8;
    constexpr int kReps = 20;
    std::vector<int> mismatches(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        PlanCache::Memo memo;
        for (int rep = 0; rep < kReps; ++rep)
          for (std::size_t s = 0; s < script.size(); ++s) {
            const Answer got = answer_for(cache, memo, script[s]);
            if (got.served != expected[s].served ||
                got.bank != expected[s].bank || got.addr != expected[s].addr)
              ++mismatches[t];
          }
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);

    // Each residue class was built exactly once despite 8 racing builders.
    const auto stats = cache.stats();
    EXPECT_EQ(stats.builds, stats.templates);
    EXPECT_GT(stats.hits, 0u);
  }
}

TEST(PlanCacheMt, ConcurrentLookupsDuringParallelBatchRead) {
  // The integrated race: read_batch_mt drives lookups from pool workers
  // while the main thread keeps issuing its own lookups.
  const PolyMemConfig cfg = test_config(maf::Scheme::kReRo, 2, 4);
  PolyMem mem(cfg);
  for (std::int64_t i = 0; i < cfg.height; ++i)
    for (std::int64_t j = 0; j < cfg.width; ++j)
      mem.store({i, j}, static_cast<Word>(i * cfg.width + j));

  runtime::ThreadPool pool(4);
  const AccessBatch batch{PatternKind::kRow, {0, 0},
                          {0, static_cast<std::int64_t>(cfg.lanes())},
                          cfg.width / cfg.lanes(),
                          {1, 0},
                          cfg.height};
  std::vector<Word> serial(static_cast<std::size_t>(batch.count()) *
                           cfg.lanes());
  mem.read_batch(batch, 0, serial);

  std::vector<Word> parallel(serial.size());
  PlanCache::Memo memo;
  for (int rep = 0; rep < 5; ++rep) {
    mem.read_batch_mt(batch, pool, parallel);
    std::int64_t delta = 0;
    // Foreground lookups interleaved with the worker lookups.
    for (std::int64_t i = 0; i + cfg.p <= cfg.height; i += 7)
      mem.plan_cache().lookup({PatternKind::kRow, {i, 0}}, delta, memo);
    ASSERT_EQ(parallel, serial) << "rep " << rep;
  }
}

}  // namespace
}  // namespace polymem::core
