#include "core/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::core {
namespace {

TEST(PolyMemConfig, WithCapacityDerivesConsistentShape) {
  for (std::uint64_t kb : {512, 1024, 2048, 4096}) {
    for (auto [p, q] : {std::pair<unsigned, unsigned>{2, 4}, {2, 8}}) {
      const auto cfg = PolyMemConfig::with_capacity(kb * KiB,
                                                    maf::Scheme::kReRo, p, q);
      EXPECT_EQ(cfg.capacity_bytes(), kb * KiB) << kb << "KB " << p << "x" << q;
      EXPECT_EQ(cfg.height % p, 0u);
      EXPECT_EQ(cfg.width % q, 0u);
      EXPECT_EQ(cfg.lanes(), p * q);
      // Near-square: aspect ratio at most 2.
      EXPECT_LE(cfg.width, 2 * cfg.height);
      EXPECT_LE(cfg.height, 2 * cfg.width);
    }
  }
}

TEST(PolyMemConfig, PaperDesignPoint512KB8Lanes) {
  // 512KB of 64-bit words = 65536 elements -> 256 x 256.
  const auto cfg =
      PolyMemConfig::with_capacity(512 * KiB, maf::Scheme::kReO, 2, 4);
  EXPECT_EQ(cfg.height * cfg.width, 65536);
  EXPECT_EQ(cfg.words_per_bank(), 65536 / 8);
  EXPECT_EQ(cfg.describe(), "512KB 8 lanes (2x4) ReO 1R");
}

TEST(PolyMemConfig, PhysicalBytesGrowWithReadPorts) {
  // Read ports replicate data (paper Sec. IV-C).
  const auto cfg =
      PolyMemConfig::with_capacity(512 * KiB, maf::Scheme::kReRo, 2, 4, 4);
  EXPECT_EQ(cfg.capacity_bytes(), 512 * KiB);
  EXPECT_EQ(cfg.physical_bytes(), 2048 * KiB);
}

TEST(PolyMemConfig, ValidationRejectsInconsistentShapes) {
  PolyMemConfig cfg;
  cfg.height = 7;  // not a multiple of p = 2
  cfg.width = 16;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.height = 8;
  cfg.width = 18;  // not a multiple of q = 4
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.width = 16;
  EXPECT_NO_THROW(cfg.validate());
  cfg.read_ports = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.read_ports = 1;
  cfg.data_width_bits = 48;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(PolyMemConfig, WithCapacityRejectsNonPow2) {
  EXPECT_THROW(
      PolyMemConfig::with_capacity(500 * KiB, maf::Scheme::kReO, 2, 4),
      InvalidArgument);
  EXPECT_THROW(
      PolyMemConfig::with_capacity(512 * KiB, maf::Scheme::kReO, 3, 4),
      InvalidArgument);
}

TEST(PolyMemConfig, TinyCapacityStillShapes) {
  // One element per bank is the lower bound.
  const auto cfg =
      PolyMemConfig::with_capacity(64, maf::Scheme::kReO, 2, 4);
  EXPECT_EQ(cfg.height * cfg.width, 8);
  EXPECT_EQ(cfg.words_per_bank(), 1);
}

TEST(PolyMemConfig, ThirtyTwoBitElements) {
  const auto cfg = PolyMemConfig::with_capacity(512 * KiB, maf::Scheme::kReO,
                                                2, 4, 1, 32);
  EXPECT_EQ(cfg.capacity_bytes(), 512 * KiB);
  EXPECT_EQ(cfg.height * cfg.width, 131072);  // twice the elements
}

}  // namespace
}  // namespace polymem::core
