#include "core/frame_pool.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::core {
namespace {

PolyMemConfig cfg(std::int64_t height = 16, std::int64_t width = 32) {
  PolyMemConfig c;
  c.p = 2;
  c.q = 4;
  c.height = height;
  c.width = width;
  return c;
}

TEST(FramePool, PartitionsRegionRowMajor) {
  const FramePool pool(cfg(), {4, 8}, 8, 16, 4, 8);
  EXPECT_EQ(pool.frames_i(), 2);
  EXPECT_EQ(pool.frames_j(), 2);
  EXPECT_EQ(pool.frames(), 4);
  EXPECT_EQ(pool.frame_words(), 32);
  EXPECT_EQ(pool.frame_origin(0), (access::Coord{4, 8}));
  EXPECT_EQ(pool.frame_origin(1), (access::Coord{4, 16}));
  EXPECT_EQ(pool.frame_origin(2), (access::Coord{8, 8}));
  EXPECT_EQ(pool.frame_origin(3), (access::Coord{8, 16}));
}

TEST(FramePool, WholeSpace) {
  const FramePool pool = FramePool::whole_space(cfg(), 8, 16);
  EXPECT_EQ(pool.origin(), (access::Coord{0, 0}));
  EXPECT_EQ(pool.frames(), 4);
  EXPECT_EQ(pool.frame_origin(3), (access::Coord{8, 16}));
}

TEST(FramePool, DefaultTilingIsRowPanels) {
  const FramePool pool = FramePool::default_tiling(cfg(64, 64));
  EXPECT_EQ(pool.frames(), 4);
  EXPECT_EQ(pool.tile_rows(), 16);
  EXPECT_EQ(pool.tile_cols(), 64);
  // A shallow space gets fewer panels, never below one p-aligned row band.
  const FramePool shallow = FramePool::default_tiling(cfg(4, 64));
  EXPECT_EQ(shallow.frames(), 2);
  EXPECT_EQ(shallow.tile_rows(), 2);
}

TEST(FramePool, RejectsMisalignedAndOversized) {
  // Tile not aligned to the bank grid.
  EXPECT_THROW(FramePool(cfg(), {0, 0}, 16, 32, 3, 8), InvalidArgument);
  EXPECT_THROW(FramePool(cfg(), {0, 0}, 16, 32, 4, 6), InvalidArgument);
  // Origin off the bank grid.
  EXPECT_THROW(FramePool(cfg(), {1, 0}, 8, 32, 4, 8), InvalidArgument);
  EXPECT_THROW(FramePool(cfg(), {0, 2}, 8, 16, 4, 8), InvalidArgument);
  // Region exceeding the space or not divisible by the tile.
  EXPECT_THROW(FramePool(cfg(), {8, 0}, 16, 32, 4, 8), InvalidArgument);
  EXPECT_THROW(FramePool(cfg(), {0, 0}, 12, 32, 8, 8), InvalidArgument);
  // Frame index bounds.
  const FramePool pool = FramePool::whole_space(cfg(), 8, 16);
  EXPECT_THROW(pool.frame_origin(4), InvalidArgument);
  EXPECT_THROW(pool.frame_origin(-1), InvalidArgument);
}

}  // namespace
}  // namespace polymem::core
