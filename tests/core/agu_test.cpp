#include "core/agu.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::core {
namespace {

using access::ParallelAccess;
using access::PatternKind;

class AguTest : public ::testing::Test {
 protected:
  AguTest()
      : cfg_(PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo, 2, 4)),
        maf_(cfg_.scheme, cfg_.p, cfg_.q),
        addr_(cfg_.p, cfg_.q, cfg_.height, cfg_.width),
        agu_(cfg_, maf_, addr_) {}

  PolyMemConfig cfg_;
  maf::Maf maf_;
  maf::AddressingFunction addr_;
  Agu agu_;
};

TEST_F(AguTest, ExpandsToLaneCount) {
  const auto plan = agu_.expand({PatternKind::kRow, {0, 0}});
  EXPECT_EQ(plan.lanes(), 8u);
  EXPECT_EQ(plan.coords.size(), 8u);
  EXPECT_EQ(plan.bank.size(), 8u);
  EXPECT_EQ(plan.addr.size(), 8u);
}

TEST_F(AguTest, BankVectorIsPermutation) {
  // Conflict-freeness materialised: the per-lane bank selects form a
  // permutation of [0, lanes) — exactly what the shuffles require.
  for (PatternKind kind : {PatternKind::kRect, PatternKind::kRow,
                           PatternKind::kMainDiag, PatternKind::kSecDiag}) {
    const access::Coord anchor =
        kind == PatternKind::kSecDiag ? access::Coord{3, 20} : access::Coord{3, 5};
    const auto plan = agu_.expand({kind, anchor});
    std::set<unsigned> banks(plan.bank.begin(), plan.bank.end());
    EXPECT_EQ(banks.size(), 8u) << access::pattern_name(kind);
    EXPECT_EQ(*banks.rbegin(), 7u);
  }
}

TEST_F(AguTest, CoordsMatchPatternExpansion) {
  const ParallelAccess req{PatternKind::kRect, {2, 4}};
  const auto plan = agu_.expand(req);
  EXPECT_EQ(plan.coords, access::expand(req, 2, 4));
  EXPECT_EQ(plan.request, req);
}

TEST_F(AguTest, AddressesMatchAddressingFunction) {
  const auto plan = agu_.expand({PatternKind::kRow, {5, 8}});
  for (unsigned k = 0; k < plan.lanes(); ++k) {
    EXPECT_EQ(plan.bank[k], maf_.bank(plan.coords[k]));
    EXPECT_EQ(plan.addr[k], addr_.address(plan.coords[k]));
  }
}

TEST_F(AguTest, UnsupportedPatternThrows) {
  // ReRo does not serve columns.
  EXPECT_THROW(agu_.expand({PatternKind::kCol, {0, 0}}), Unsupported);
  EXPECT_THROW(agu_.expand({PatternKind::kTRect, {0, 0}}), Unsupported);
}

TEST_F(AguTest, OutOfBoundsThrows) {
  // 4KB / 8B = 512 elements -> 16 x 32 space.
  EXPECT_EQ(cfg_.height, 16);
  EXPECT_EQ(cfg_.width, 32);
  EXPECT_NO_THROW(agu_.expand({PatternKind::kRow, {0, 24}}));
  EXPECT_THROW(agu_.expand({PatternKind::kRow, {0, 25}}), InvalidArgument);
  EXPECT_THROW(agu_.expand({PatternKind::kRect, {15, 0}}), InvalidArgument);
  EXPECT_THROW(agu_.expand({PatternKind::kRow, {-1, 0}}), InvalidArgument);
}

TEST_F(AguTest, AlignedOnlyPatternsEnforceAnchors) {
  const auto cfg = PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kRoCo,
                                                2, 4);
  const maf::Maf maf(cfg.scheme, cfg.p, cfg.q);
  const maf::AddressingFunction addr(cfg.p, cfg.q, cfg.height, cfg.width);
  const Agu agu(cfg, maf, addr);
  EXPECT_NO_THROW(agu.expand({PatternKind::kRect, {2, 4}}));
  EXPECT_THROW(agu.expand({PatternKind::kRect, {1, 4}}), Unsupported);
  EXPECT_THROW(agu.expand({PatternKind::kRect, {2, 5}}), Unsupported);
}

TEST_F(AguTest, ExpandIntoReusesPlan) {
  AccessPlan plan;
  agu_.expand_into({PatternKind::kRow, {0, 0}}, plan);
  const auto* coords_data = plan.coords.data();
  agu_.expand_into({PatternKind::kRow, {1, 0}}, plan);
  EXPECT_EQ(plan.coords.data(), coords_data);  // no reallocation
  EXPECT_EQ(plan.coords[0], (access::Coord{1, 0}));
}

}  // namespace
}  // namespace polymem::core
