// Differential gate of the compiled SIMD execution engine
// (core/exec_plan.hpp + core/simd/): for every scheme x geometry x
// supported pattern, the compiled path — at every kernel level the host
// supports — must be bit-identical to the interpreted per-access engine
// for read_batch, write_batch and read_batch_mt. A forced-scalar
// dispatch test keeps the fallback kernels exercised on AVX2 hosts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "core/polymem.hpp"
#include "core/simd/dispatch.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::core {
namespace {

using access::Coord;
using access::PatternKind;
using maf::Scheme;
using maf::SupportLevel;

struct Geometry {
  unsigned p, q;
};

constexpr Geometry kGeometries[] = {{2, 2}, {2, 4}, {4, 4}};

// Restores whatever level was active on entry (which may be scalar via
// POLYMEM_FORCE_SCALAR even on an AVX2 host) when a test exits, pass or
// fail — the SIMD sweeps must not leak a forced level into later tests.
struct LevelGuard {
  simd::Level entry = simd::active_level();
  ~LevelGuard() { simd::force_level(entry); }
};

// Every level the host can actually run (scalar always; AVX2/NEON when
// detected). force_level clamps, so requesting an unsupported level
// silently stays scalar — filter those out to avoid duplicate runs.
std::vector<simd::Level> host_levels() {
  LevelGuard guard;
  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (simd::Level l : {simd::Level::kAvx2, simd::Level::kNeon}) {
    simd::force_level(l);
    if (simd::active_level() == l) levels.push_back(l);
  }
  return levels;
}

PolyMemConfig make_config(Scheme scheme, Geometry g) {
  return PolyMemConfig::with_capacity(16 * KiB, scheme, g.p, g.q);
}

void fill_deterministic(PolyMem& mem) {
  const auto& cfg = mem.config();
  std::vector<Word> values(static_cast<std::size_t>(cfg.height) * cfg.width);
  for (std::size_t k = 0; k < values.size(); ++k)
    values[k] = 0xD1B54A32D192ED03ull * (k + 1);
  mem.fill_rect({0, 0}, cfg.height, cfg.width, values);
}

// A batch of every in-bounds anchor of `kind` (p/q-aligned when the
// scheme only serves aligned anchors) — covers every residue class, so
// both the uniform and the multi-table kernel paths run.
AccessBatch full_sweep(const PolyMemConfig& cfg, const PolyMem& mem,
                       PatternKind kind, SupportLevel level) {
  const auto ext =
      access::pattern_extent(kind, cfg.p, cfg.q);
  const std::int64_t step_i =
      level == SupportLevel::kAligned ? cfg.p : 1;
  const std::int64_t step_j =
      level == SupportLevel::kAligned ? cfg.q : 1;
  const std::int64_t rows = (cfg.height - ext.rows) / step_i + 1;
  const std::int64_t min_j = -ext.col_offset;
  const std::int64_t max_j = cfg.width - ext.cols - ext.col_offset;
  std::int64_t start_j = min_j;
  if (level == SupportLevel::kAligned && start_j % cfg.q != 0)
    start_j += cfg.q - start_j % cfg.q;
  const std::int64_t cols = (max_j - start_j) / step_j + 1;
  (void)mem;
  return {kind, {0, start_j}, {0, step_j}, cols, {step_i, 0}, rows};
}

TEST(SimdExec, ReadBatchBitIdenticalAcrossLevels) {
  LevelGuard guard;
  const auto levels = host_levels();
  for (Scheme scheme : maf::kAllSchemes) {
    for (Geometry g : kGeometries) {
      const PolyMemConfig cfg = make_config(scheme, g);
      PolyMem compiled(cfg);
      PolyMem interpreted(cfg);
      interpreted.set_plan_cache_enabled(false);
      fill_deterministic(compiled);
      fill_deterministic(interpreted);
      for (PatternKind kind : access::kAllPatterns) {
        const SupportLevel level = compiled.supports(kind);
        if (level == SupportLevel::kNone) continue;
        const AccessBatch batch = full_sweep(cfg, compiled, kind, level);
        std::vector<Word> want(
            static_cast<std::size_t>(batch.count()) * cfg.lanes());
        interpreted.read_batch(batch, 0, want);
        std::vector<Word> got(want.size());
        for (simd::Level l : levels) {
          simd::force_level(l);
          got.assign(got.size(), 0);
          compiled.read_batch(batch, 0, got);
          ASSERT_EQ(got, want)
              << maf::scheme_name(scheme) << " " << g.p << "x" << g.q << " "
              << access::pattern_name(kind) << " level "
              << simd::level_name(l);
        }
      }
    }
  }
}

TEST(SimdExec, WriteBatchBitIdenticalAcrossLevels) {
  LevelGuard guard;
  const auto levels = host_levels();
  for (Scheme scheme : maf::kAllSchemes) {
    for (Geometry g : kGeometries) {
      const PolyMemConfig cfg = make_config(scheme, g);
      for (PatternKind kind : access::kAllPatterns) {
        // Fresh, identically-seeded instances per pattern: sweeps that do
        // not cover every cell must still match on the untouched ones.
        PolyMem interpreted(cfg);
        interpreted.set_plan_cache_enabled(false);
        fill_deterministic(interpreted);
        const SupportLevel level = interpreted.supports(kind);
        if (level == SupportLevel::kNone) continue;
        const AccessBatch batch = full_sweep(cfg, interpreted, kind, level);
        std::vector<Word> data(
            static_cast<std::size_t>(batch.count()) * cfg.lanes());
        for (std::size_t k = 0; k < data.size(); ++k)
          data[k] = 0x9E3779B97F4A7C15ull * (k + 7);
        const std::size_t cells =
            static_cast<std::size_t>(cfg.height) * cfg.width;
        std::vector<Word> want(cells), got(cells);
        interpreted.write_batch(batch, data);
        interpreted.dump_rect({0, 0}, cfg.height, cfg.width, want);
        for (simd::Level l : levels) {
          simd::force_level(l);
          PolyMem compiled(cfg);
          fill_deterministic(compiled);
          compiled.write_batch(batch, data);
          compiled.dump_rect({0, 0}, cfg.height, cfg.width, got);
          ASSERT_EQ(got, want)
              << maf::scheme_name(scheme) << " " << g.p << "x" << g.q << " "
              << access::pattern_name(kind) << " level "
              << simd::level_name(l);
        }
      }
    }
  }
}

TEST(SimdExec, ReadBatchMtBitIdenticalAcrossLevelsAndWorkerCounts) {
  LevelGuard guard;
  const auto levels = host_levels();
  const PolyMemConfig cfg = PolyMemConfig::with_capacity(
      64 * KiB, Scheme::kReRo, 2, 4, /*read_ports=*/2);
  PolyMem mem(cfg);
  fill_deterministic(mem);
  const AccessBatch batch{PatternKind::kRow, {0, 0},
                          {0, static_cast<std::int64_t>(cfg.lanes())},
                          cfg.width / cfg.lanes(), {1, 0},
                          cfg.height};
  std::vector<Word> want(
      static_cast<std::size_t>(batch.count()) * cfg.lanes());
  mem.read_batch(batch, 0, want);
  for (unsigned workers : {0u, 1u, 3u}) {
    runtime::ThreadPool pool(workers);
    for (simd::Level l : levels) {
      simd::force_level(l);
      std::vector<Word> got(want.size(), 0);
      mem.read_batch_mt(batch, pool, got);
      ASSERT_EQ(got, want) << workers << " workers, level "
                           << simd::level_name(l);
    }
  }
}

// Write-then-read round trip through the compiled engine at every level,
// against a host-side mirror — catches a scatter/gather pair that is
// self-consistently wrong.
TEST(SimdExec, RoundTripMatchesHostMirror) {
  LevelGuard guard;
  const auto levels = host_levels();
  const PolyMemConfig cfg = make_config(Scheme::kRoCo, {4, 4});
  const AccessBatch batch{PatternKind::kRect, {0, 0},
                          {0, 4}, cfg.width / 4, {4, 0}, cfg.height / 4};
  std::vector<Word> data(
      static_cast<std::size_t>(batch.count()) * cfg.lanes());
  for (std::size_t k = 0; k < data.size(); ++k)
    data[k] = 0xA24BAED4963EE407ull ^ (k * 0x9FB21C651E98DF25ull);
  for (simd::Level l : levels) {
    simd::force_level(l);
    PolyMem mem(cfg);
    mem.write_batch(batch, data);
    std::vector<Word> got(data.size(), 0);
    mem.read_batch(batch, 0, got);
    ASSERT_EQ(got, data) << "level " << simd::level_name(l);
  }
}

TEST(SimdExec, ForcedScalarDispatchTakesEffect) {
  LevelGuard guard;
  simd::force_level(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::kernels().level, simd::Level::kScalar);
  // Forcing a level the host lacks stays scalar rather than crashing.
  if (simd::detected_level() == simd::Level::kScalar) {
    simd::force_level(simd::Level::kAvx2);
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  }
  // And the scalar engine still serves data correctly.
  const PolyMemConfig cfg = make_config(Scheme::kReRo, {2, 4});
  PolyMem mem(cfg);
  fill_deterministic(mem);
  const AccessBatch batch = AccessBatch::strided(
      PatternKind::kRow, {0, 0}, {1, 0}, cfg.height);
  std::vector<Word> a(static_cast<std::size_t>(batch.count()) * cfg.lanes());
  mem.read_batch(batch, 0, a);
  simd::force_level(simd::detected_level());
  std::vector<Word> b(a.size(), 0);
  mem.read_batch(batch, 0, b);
  EXPECT_EQ(a, b);
}

TEST(SimdExec, LevelNamesRoundTrip) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(simd::Level::kNeon), "neon");
}

}  // namespace
}  // namespace polymem::core
