#include "core/polymem.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace polymem::core {
namespace {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

PolyMemConfig small(maf::Scheme scheme, unsigned p = 2, unsigned q = 4,
                    unsigned ports = 1) {
  return PolyMemConfig::with_capacity(4 * KiB, scheme, p, q, ports);
}

// Fills the whole memory with unique values via the host backdoor — the
// paper's DSE validation: "the host fills MAX-PolyMem with unique numerical
// values, and then reads them back using parallel accesses."
void fill_unique(PolyMem& mem) {
  for (std::int64_t i = 0; i < mem.config().height; ++i)
    for (std::int64_t j = 0; j < mem.config().width; ++j)
      mem.store({i, j}, static_cast<Word>(i * 10000 + j));
}

Word expected_at(Coord c) { return static_cast<Word>(c.i * 10000 + c.j); }

TEST(PolyMem, HostFillThenParallelReadBack) {
  PolyMem mem(small(maf::Scheme::kReRo));
  fill_unique(mem);
  for (PatternKind kind : {PatternKind::kRect, PatternKind::kRow,
                           PatternKind::kMainDiag}) {
    const ParallelAccess acc{kind, {1, 3}};
    const auto data = mem.read(acc);
    const auto coords = access::expand(acc, 2, 4);
    for (unsigned k = 0; k < 8; ++k)
      EXPECT_EQ(data[k], expected_at(coords[k]))
          << access::pattern_name(kind) << " lane " << k;
  }
}

TEST(PolyMem, ParallelWriteThenScalarReadBack) {
  PolyMem mem(small(maf::Scheme::kReRo));
  std::vector<Word> data(8);
  std::iota(data.begin(), data.end(), 500u);
  const ParallelAccess acc{PatternKind::kRect, {3, 7}};
  mem.write(acc, data);
  const auto coords = access::expand(acc, 2, 4);
  for (unsigned k = 0; k < 8; ++k) EXPECT_EQ(mem.load(coords[k]), data[k]);
}

TEST(PolyMem, WriteReadRoundTripAllSupportedPatternsAllSchemes) {
  for (maf::Scheme scheme : maf::kAllSchemes) {
    PolyMem mem(small(scheme));
    for (PatternKind kind : access::kAllPatterns) {
      if (mem.supports(kind) != maf::SupportLevel::kAny) continue;
      const Coord anchor =
          kind == PatternKind::kSecDiag ? Coord{2, 14} : Coord{2, 6};
      if (!access::fits({kind, anchor}, 2, 4, mem.config().height,
                        mem.config().width))
        continue;
      std::vector<Word> data(8);
      for (unsigned k = 0; k < 8; ++k) data[k] = 7000 + k;
      mem.write({kind, anchor}, data);
      EXPECT_EQ(mem.read({kind, anchor}), data)
          << maf::scheme_name(scheme) << " " << access::pattern_name(kind);
    }
  }
}

TEST(PolyMem, MultiviewSchemesCombinePatternsOnSameData) {
  // The PolyMem pitch: write with one shape, read with another, no
  // reconfiguration. Write rows, read back rectangles and diagonals.
  PolyMem mem(small(maf::Scheme::kReRo));
  for (std::int64_t i = 0; i < mem.config().height; ++i)
    for (std::int64_t g = 0; g < mem.config().width; g += 8) {
      std::vector<Word> row(8);
      for (int k = 0; k < 8; ++k)
        row[k] = expected_at({i, g + k});
      mem.write({PatternKind::kRow, {i, g}}, row);
    }
  const auto rect = mem.read({PatternKind::kRect, {5, 9}});
  const auto coords = access::expand({PatternKind::kRect, {5, 9}}, 2, 4);
  for (unsigned k = 0; k < 8; ++k) EXPECT_EQ(rect[k], expected_at(coords[k]));

  const auto diag = mem.read({PatternKind::kMainDiag, {4, 11}});
  for (unsigned k = 0; k < 8; ++k)
    EXPECT_EQ(diag[k], expected_at({4 + k, 11 + k}));
}

TEST(PolyMem, ReTrSchemeReadsRectAndTransposedRect) {
  PolyMem mem(small(maf::Scheme::kReTr));
  fill_unique(mem);
  const auto rect = mem.read({PatternKind::kRect, {3, 5}});
  const auto trect = mem.read({PatternKind::kTRect, {3, 5}});
  const auto rc = access::expand({PatternKind::kRect, {3, 5}}, 2, 4);
  const auto tc = access::expand({PatternKind::kTRect, {3, 5}}, 2, 4);
  for (unsigned k = 0; k < 8; ++k) {
    EXPECT_EQ(rect[k], expected_at(rc[k]));
    EXPECT_EQ(trect[k], expected_at(tc[k]));
  }
}

TEST(PolyMem, MultipleReadPortsSeeTheSameData) {
  PolyMem mem(small(maf::Scheme::kReRo, 2, 4, 3));
  fill_unique(mem);
  const ParallelAccess acc{PatternKind::kRow, {2, 8}};
  const auto d0 = mem.read(acc, 0);
  const auto d1 = mem.read(acc, 1);
  const auto d2 = mem.read(acc, 2);
  EXPECT_EQ(d0, d1);
  EXPECT_EQ(d0, d2);
  EXPECT_THROW(mem.read(acc, 3), InvalidArgument);
}

TEST(PolyMem, ConcurrentReadWriteReadFirstSemantics) {
  PolyMem mem(small(maf::Scheme::kReRo));
  fill_unique(mem);
  const ParallelAccess where{PatternKind::kRow, {0, 0}};
  std::vector<Word> new_data(8, 12345);
  std::vector<Word> read_out(8);
  // Overlapping read+write in one cycle: the read returns the *old* data.
  mem.read_write(where, 0, read_out, where, new_data);
  for (unsigned k = 0; k < 8; ++k)
    EXPECT_EQ(read_out[k], expected_at({0, static_cast<std::int64_t>(k)}));
  // After the cycle the write has landed.
  EXPECT_EQ(mem.read(where), new_data);
}

TEST(PolyMem, ConcurrentReadWriteDisjointRegions) {
  // The STREAM-Copy inner loop: read from region A, write to region C,
  // same cycle, distinct buffers.
  PolyMem mem(small(maf::Scheme::kRoCo));
  fill_unique(mem);
  std::vector<Word> read_out(8);
  std::vector<Word> write_data(8, 777);
  mem.read_write({PatternKind::kRow, {1, 0}}, 0, read_out,
                 {PatternKind::kRow, {9, 0}}, write_data);
  for (unsigned k = 0; k < 8; ++k) {
    EXPECT_EQ(read_out[k], expected_at({1, static_cast<std::int64_t>(k)}));
    EXPECT_EQ(mem.load({9, static_cast<std::int64_t>(k)}), 777u);
  }
}

TEST(PolyMem, WrongLaneCountRejected) {
  PolyMem mem(small(maf::Scheme::kReRo));
  std::vector<Word> five(5);
  EXPECT_THROW(mem.write({PatternKind::kRow, {0, 0}}, five), InvalidArgument);
  std::vector<Word> out(5);
  EXPECT_THROW(mem.read_into({PatternKind::kRow, {0, 0}}, 0, out),
               InvalidArgument);
}

TEST(PolyMem, ScalarBackdoorBoundsChecked) {
  PolyMem mem(small(maf::Scheme::kReRo));
  EXPECT_THROW(mem.load({-1, 0}), InvalidArgument);
  EXPECT_THROW(mem.store({0, mem.config().width}, 1), InvalidArgument);
}

TEST(PolyMem, FillAndDumpRect) {
  PolyMem mem(small(maf::Scheme::kReRo));
  std::vector<Word> in(4 * 6);
  std::iota(in.begin(), in.end(), 0u);
  mem.fill_rect({2, 3}, 4, 6, in);
  std::vector<Word> out(4 * 6);
  mem.dump_rect({2, 3}, 4, 6, out);
  EXPECT_EQ(in, out);
  EXPECT_EQ(mem.load({2, 3}), 0u);
  EXPECT_EQ(mem.load({5, 8}), 23u);
  std::vector<Word> wrong(5);
  EXPECT_THROW(mem.fill_rect({0, 0}, 2, 3, wrong), InvalidArgument);
}

TEST(PolyMem, AccessCounters) {
  PolyMem mem(small(maf::Scheme::kReRo));
  std::vector<Word> data(8, 1);
  mem.write({PatternKind::kRow, {0, 0}}, data);
  mem.read({PatternKind::kRow, {0, 0}});
  mem.read({PatternKind::kRow, {0, 0}});
  EXPECT_EQ(mem.parallel_writes(), 1u);
  EXPECT_EQ(mem.parallel_reads(), 2u);
}

TEST(PolyMem, RandomisedReadAfterWriteProperty) {
  // Property test: random supported accesses; a shadow map predicts every
  // read. Exercises MAF + addressing + shuffles end to end.
  PolyMem mem(small(maf::Scheme::kReRo));
  Rng rng(2024);
  std::vector<std::vector<Word>> shadow(
      mem.config().height, std::vector<Word>(mem.config().width, 0));
  const std::vector<PatternKind> kinds = {
      PatternKind::kRect, PatternKind::kRow, PatternKind::kMainDiag,
      PatternKind::kSecDiag};
  for (int step = 0; step < 500; ++step) {
    const PatternKind kind = kinds[rng.uniform(0, 3)];
    // Draw anchors until the access fits.
    Coord anchor;
    do {
      anchor = {rng.uniform(0, mem.config().height - 1),
                rng.uniform(0, mem.config().width - 1)};
    } while (!access::fits({kind, anchor}, 2, 4, mem.config().height,
                           mem.config().width));
    const auto coords = access::expand({kind, anchor}, 2, 4);
    if (rng.chance(0.5)) {
      std::vector<Word> data(8);
      for (auto& w : data) w = rng.bits();
      mem.write({kind, anchor}, data);
      for (unsigned k = 0; k < 8; ++k)
        shadow[coords[k].i][coords[k].j] = data[k];
    } else {
      const auto data = mem.read({kind, anchor});
      for (unsigned k = 0; k < 8; ++k)
        EXPECT_EQ(data[k], shadow[coords[k].i][coords[k].j])
            << "step " << step << " " << access::pattern_name(kind);
    }
  }
}

}  // namespace
}  // namespace polymem::core
