#include "core/banks.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"

namespace polymem::core {
namespace {

TEST(BankArray, WriteReadRoundTripBankOrder) {
  BankArray banks(8, 1, 16);
  std::vector<std::int64_t> addr(8, 3);
  std::vector<hw::Word> data(8);
  std::iota(data.begin(), data.end(), 100u);
  banks.begin_cycle();
  banks.write(addr, data);
  std::vector<hw::Word> out(8);
  banks.begin_cycle();
  banks.read(0, addr, out);
  EXPECT_EQ(out, data);
}

TEST(BankArray, WriteReplicatesToEveryReadPort) {
  BankArray banks(4, 3, 8);
  std::vector<std::int64_t> addr = {0, 1, 2, 3};
  std::vector<hw::Word> data = {10, 11, 12, 13};
  banks.begin_cycle();
  banks.write(addr, data);
  for (unsigned port = 0; port < 3; ++port) {
    std::vector<hw::Word> out(4);
    banks.begin_cycle();
    banks.read(port, addr, out);
    EXPECT_EQ(out, data) << "port " << port;
  }
}

TEST(BankArray, ReadPortsAreIndependentWithinOneCycle) {
  BankArray banks(2, 2, 4);
  banks.poke(0, 0, 7);
  banks.poke(1, 0, 8);
  std::vector<std::int64_t> addr = {0, 0};
  std::vector<hw::Word> out0(2), out1(2);
  banks.begin_cycle();
  banks.read(0, addr, out0);
  EXPECT_NO_THROW(banks.read(1, addr, out1));  // different replica: no conflict
  EXPECT_EQ(out0, out1);
  // Same port twice in one cycle conflicts.
  EXPECT_THROW(banks.read(0, addr, out0), Error);
}

TEST(BankArray, ConcurrentReadAndWriteAllowed) {
  BankArray banks(2, 1, 4);
  std::vector<std::int64_t> addr = {1, 1};
  std::vector<hw::Word> data = {5, 6};
  std::vector<hw::Word> out(2);
  banks.begin_cycle();
  banks.read(0, addr, out);
  EXPECT_NO_THROW(banks.write(addr, data));  // independent write port
}

TEST(BankArray, PokeUpdatesAllReplicas) {
  BankArray banks(2, 2, 4);
  banks.poke(1, 2, 99);
  std::vector<std::int64_t> addr = {0, 2};
  std::vector<hw::Word> out(2);
  banks.begin_cycle();
  banks.read(1, addr, out);
  EXPECT_EQ(out[1], 99u);
  EXPECT_EQ(banks.peek(1, 2), 99u);
}

TEST(BankArray, SizeMismatchRejected) {
  BankArray banks(4, 1, 8);
  std::vector<std::int64_t> addr = {0, 1};
  std::vector<hw::Word> data(4);
  banks.begin_cycle();
  EXPECT_THROW(banks.write(addr, data), InvalidArgument);
}

TEST(BankArray, Counters) {
  BankArray banks(2, 2, 4);
  std::vector<std::int64_t> addr = {0, 0};
  std::vector<hw::Word> data = {1, 2};
  std::vector<hw::Word> out(2);
  banks.begin_cycle();
  banks.write(addr, data);       // 2 banks x 2 replicas = 4 writes
  banks.read(0, addr, out);      // 2 reads
  EXPECT_EQ(banks.total_writes(), 4u);
  EXPECT_EQ(banks.total_reads(), 2u);
}

TEST(BankArray, InvalidIndicesRejected) {
  BankArray banks(2, 1, 4);
  EXPECT_THROW(banks.peek(2, 0), InvalidArgument);
  std::vector<std::int64_t> addr = {0, 0};
  std::vector<hw::Word> out(2);
  banks.begin_cycle();
  EXPECT_THROW(banks.read(1, addr, out), InvalidArgument);
}

}  // namespace
}  // namespace polymem::core
