#include "sched/setcover.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace polymem::sched {
namespace {

TEST(SetCover, ValidateCatchesBadInstances) {
  CoverInstance bad;
  bad.universe_size = 3;
  bad.sets = {{0, 1}};  // element 2 uncoverable
  EXPECT_THROW(bad.validate(), InvalidArgument);

  CoverInstance oob;
  oob.universe_size = 2;
  oob.sets = {{0, 2}};
  EXPECT_THROW(oob.validate(), InvalidArgument);
}

TEST(SetCover, GreedyFindsACover) {
  CoverInstance inst;
  inst.universe_size = 5;
  inst.sets = {{0, 1, 2}, {2, 3}, {3, 4}, {0, 4}};
  const auto chosen = greedy_cover(inst);
  EXPECT_TRUE(is_cover(inst, chosen));
}

TEST(SetCover, ExactFindsMinimum) {
  // Greedy's classic failure: picks the big middle set then needs 2 more;
  // the optimum is the two side sets.
  CoverInstance inst;
  inst.universe_size = 6;
  inst.sets = {{0, 1, 2}, {3, 4, 5}, {1, 2, 3, 4}, {0}, {5}};
  const auto exact = exact_cover(inst);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(is_cover(inst, *exact));
  EXPECT_EQ(exact->size(), 2u);
}

TEST(SetCover, GreedyCanBeSuboptimalButNeverBetterThanExact) {
  CoverInstance inst;
  inst.universe_size = 6;
  inst.sets = {{0, 1, 2}, {3, 4, 5}, {1, 2, 3, 4}, {0}, {5}};
  const auto greedy = greedy_cover(inst);
  const auto exact = exact_cover(inst);
  EXPECT_GE(greedy.size(), exact->size());
  EXPECT_EQ(greedy.size(), 3u);  // greedy takes the 4-element trap set
}

TEST(SetCover, SingleSetCoversEverything) {
  CoverInstance inst;
  inst.universe_size = 4;
  inst.sets = {{0}, {0, 1, 2, 3}, {1, 2}};
  const auto exact = exact_cover(inst);
  EXPECT_EQ(exact->size(), 1u);
  EXPECT_EQ((*exact)[0], 1);
}

TEST(SetCover, EmptyUniverseNeedsNothing) {
  CoverInstance inst;
  inst.universe_size = 0;
  EXPECT_TRUE(greedy_cover(inst).empty());
  EXPECT_TRUE(exact_cover(inst)->empty());
}

TEST(SetCover, NodeBudgetExhaustionReturnsNullopt) {
  // The greedy seed of the trap instance is suboptimal (3 sets), so the
  // lower bound cannot prove optimality at the root: the search must
  // descend, and a 1-node budget runs out before it can.
  CoverInstance inst;
  inst.universe_size = 6;
  inst.sets = {{0, 1, 2}, {3, 4, 5}, {1, 2, 3, 4}, {0}, {5}};
  EXPECT_EQ(exact_cover(inst, /*max_nodes=*/1), std::nullopt);
  EXPECT_TRUE(exact_cover(inst).has_value());
}

TEST(PruneDominated, DropsSubsetsKeepsMaximal) {
  CoverInstance inst;
  inst.universe_size = 5;
  inst.sets = {{0, 1}, {0, 1, 2}, {3}, {3, 4}, {2}};
  std::vector<int> kept;
  const auto pruned = prune_dominated(inst, kept);
  // {0,1} c {0,1,2}; {3} c {3,4}; {2} c {0,1,2}.
  EXPECT_EQ(kept, (std::vector<int>{1, 3}));
  EXPECT_EQ(pruned.sets.size(), 2u);
  EXPECT_EQ(pruned.universe_size, 5);
}

TEST(PruneDominated, DuplicatesKeepExactlyOne) {
  CoverInstance inst;
  inst.universe_size = 2;
  inst.sets = {{0, 1}, {0, 1}, {0, 1}};
  std::vector<int> kept;
  const auto pruned = prune_dominated(inst, kept);
  EXPECT_EQ(kept, std::vector<int>{0});
  EXPECT_EQ(pruned.sets.size(), 1u);
}

TEST(PruneDominated, PreservesTheOptimum) {
  Rng rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    CoverInstance inst;
    inst.universe_size = static_cast<int>(rng.uniform(4, 9));
    const int num_sets = static_cast<int>(rng.uniform(4, 12));
    for (int s = 0; s < num_sets; ++s) {
      std::vector<int> set;
      for (int e = 0; e < inst.universe_size; ++e)
        if (rng.chance(0.35)) set.push_back(e);
      inst.sets.push_back(std::move(set));
    }
    std::vector<int> all(static_cast<std::size_t>(inst.universe_size));
    for (int e = 0; e < inst.universe_size; ++e)
      all[static_cast<std::size_t>(e)] = e;
    inst.sets.push_back(std::move(all));

    std::vector<int> kept;
    const auto pruned = prune_dominated(inst, kept);
    const auto full = exact_cover(inst);
    const auto reduced = exact_cover(pruned);
    ASSERT_TRUE(full && reduced);
    EXPECT_EQ(full->size(), reduced->size()) << "trial " << trial;
    // The pruned solution maps back to a valid cover of the original.
    std::vector<int> mapped;
    for (int s : *reduced)
      mapped.push_back(kept[static_cast<std::size_t>(s)]);
    EXPECT_TRUE(is_cover(inst, mapped));
  }
}

TEST(PruneDominated, NothingToPruneIsIdentity) {
  CoverInstance inst;
  inst.universe_size = 4;
  inst.sets = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  std::vector<int> kept;
  const auto pruned = prune_dominated(inst, kept);
  EXPECT_EQ(pruned.sets, inst.sets);
  EXPECT_EQ(kept, (std::vector<int>{0, 1, 2, 3}));
}

// Property: on random small instances, exact <= greedy and exact is
// optimal (verified by brute force over all subsets).
TEST(SetCover, ExactMatchesBruteForceOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    CoverInstance inst;
    inst.universe_size = static_cast<int>(rng.uniform(3, 8));
    const int num_sets = static_cast<int>(rng.uniform(3, 9));
    for (int s = 0; s < num_sets; ++s) {
      std::vector<int> set;
      for (int e = 0; e < inst.universe_size; ++e)
        if (rng.chance(0.4)) set.push_back(e);
      inst.sets.push_back(std::move(set));
    }
    // Guarantee coverability.
    std::vector<int> all(static_cast<std::size_t>(inst.universe_size));
    for (int e = 0; e < inst.universe_size; ++e)
      all[static_cast<std::size_t>(e)] = e;
    inst.sets.push_back(std::move(all));

    // Brute force: smallest subset of sets that covers.
    const int n = static_cast<int>(inst.sets.size());
    std::size_t best = SIZE_MAX;
    for (int mask = 1; mask < (1 << n); ++mask) {
      std::vector<int> chosen;
      for (int s = 0; s < n; ++s)
        if (mask & (1 << s)) chosen.push_back(s);
      if (chosen.size() < best && is_cover(inst, chosen))
        best = chosen.size();
    }

    const auto exact = exact_cover(inst);
    ASSERT_TRUE(exact.has_value()) << "trial " << trial;
    EXPECT_TRUE(is_cover(inst, *exact));
    EXPECT_EQ(exact->size(), best) << "trial " << trial;
    EXPECT_GE(greedy_cover(inst).size(), exact->size());
  }
}

}  // namespace
}  // namespace polymem::sched
