#include "sched/execute.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::sched {
namespace {

using access::Coord;

core::Word value_at(Coord c) {
  return static_cast<core::Word>(c.i * 4096 + c.j);
}

core::PolyMemConfig cfg(maf::Scheme scheme, unsigned latency = 14) {
  auto c = core::PolyMemConfig::with_capacity(8 * KiB, scheme, 2, 4);
  c.read_latency = latency;
  return c;
}

void fill(core::CyclePolyMem& mem) {
  for (std::int64_t i = 0; i < mem.config().height; ++i)
    for (std::int64_t j = 0; j < mem.config().width; ++j)
      mem.functional().store({i, j}, value_at({i, j}));
}

TEST(ExecuteSchedule, DenseTraceMeetsSteadyStateSpeedup) {
  const Scheduler sched(maf::Scheme::kReO, 2, 4);
  const auto trace = AccessTrace::dense_block({1, 3}, 8, 16);  // 128 elements
  const auto schedule = sched.schedule(trace);
  ASSERT_EQ(schedule.length(), 16);

  core::CyclePolyMem mem(cfg(maf::Scheme::kReO));
  fill(mem);
  const auto result = execute_schedule(trace, schedule, mem, value_at);
  EXPECT_EQ(result.scalar_cycles, 128u);
  // 16 back-to-back accesses + 14-cycle latency = 30 cycles.
  EXPECT_EQ(result.polymem_cycles, 30u);
  EXPECT_NEAR(result.measured_speedup, 128.0 / 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.steady_state_speedup, 8.0);
  EXPECT_EQ(result.elements_fetched, 16u * 8);
}

TEST(ExecuteSchedule, MeasuredApproachesPredictedForLongSchedules) {
  // Latency amortises: for a big trace, measured -> steady-state.
  core::CyclePolyMem mem(cfg(maf::Scheme::kReRo));
  Scheduler sched(maf::Scheme::kReRo, 2, 4);
  sched.set_bounds(mem.config().height, mem.config().width);
  const auto trace = AccessTrace::dense_block({0, 0}, 16, 32);  // 512 el.
  const auto schedule = sched.schedule(trace, SolverKind::kGreedy);
  fill(mem);
  const auto result = execute_schedule(trace, schedule, mem, value_at);
  EXPECT_GT(result.measured_speedup, 0.8 * result.steady_state_speedup);
}

TEST(ExecuteSchedule, DetectsWrongData) {
  const Scheduler sched(maf::Scheme::kReRo, 2, 4);
  const auto trace = AccessTrace::dense_block({0, 0}, 2, 8);
  const auto schedule = sched.schedule(trace);
  core::CyclePolyMem mem(cfg(maf::Scheme::kReRo));
  fill(mem);
  mem.functional().store({1, 3}, 0xBAD);  // corrupt one element
  EXPECT_THROW(execute_schedule(trace, schedule, mem, value_at), Error);
}

TEST(ExecuteSchedule, SparseTraceSpeedupBelowDense) {
  core::CyclePolyMem mem(cfg(maf::Scheme::kReRo));
  Scheduler sched(maf::Scheme::kReRo, 2, 4);
  sched.set_bounds(mem.config().height, mem.config().width);
  const auto sparse = AccessTrace::random_sparse({0, 0}, 10, 16, 0.3, 3);
  const auto schedule = sched.schedule(sparse, SolverKind::kGreedy);
  fill(mem);
  const auto result = execute_schedule(sparse, schedule, mem, value_at);
  // Irregularity costs lanes: speedup strictly below the dense 8x.
  EXPECT_LT(result.steady_state_speedup, 8.0);
  EXPECT_GT(result.steady_state_speedup, 1.0);
}

TEST(ExecuteSchedule, ZeroLatencyMeasuresExactlySteadyState) {
  const Scheduler sched(maf::Scheme::kReO, 2, 4);
  const auto trace = AccessTrace::dense_block({0, 0}, 4, 8);
  const auto schedule = sched.schedule(trace);
  core::CyclePolyMem mem(cfg(maf::Scheme::kReO, /*latency=*/0));
  fill(mem);
  const auto result = execute_schedule(trace, schedule, mem, value_at);
  EXPECT_DOUBLE_EQ(result.measured_speedup, result.steady_state_speedup);
}

}  // namespace
}  // namespace polymem::sched
