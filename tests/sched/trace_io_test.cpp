// Trace serialization: print/parse round trips, recorder coalescing,
// the canonical-data host oracle, provenance, and malformed-input
// handling (typed parse errors, never a crash).
#include "sched/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/access_batch.hpp"

namespace polymem::sched {
namespace {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

RecordedTrace sample_trace() {
  RecordedTrace trace;
  trace.p = 2;
  trace.q = 4;
  trace.height = 16;
  trace.width = 16;
  trace.seed = 7;
  trace.ops = {
      {TraceOp::Dir::kRead, PatternKind::kRow, {0, 0}, {1, 0}, 16, {}},
      {TraceOp::Dir::kWrite, PatternKind::kRect, {4, 8}, {0, 0}, 1, {}},
      {TraceOp::Dir::kRead, PatternKind::kMainDiag, {0, 0}, {8, 8}, 2, {}},
  };
  return trace;
}

TEST(TraceIo, PrintParseRoundTrip) {
  RecordedTrace trace = sample_trace();
  annotate_checksums(trace);
  const std::string text = trace_to_string(trace);
  const RecordedTrace parsed = parse_trace_text(text);
  EXPECT_EQ(parsed, trace);
  // Idempotent: the second print is byte-identical.
  EXPECT_EQ(trace_to_string(parsed), text);
}

TEST(TraceIo, RoundTripPreservesEveryPatternAndNegativeStride) {
  RecordedTrace trace;
  trace.height = 64;
  trace.width = 64;
  trace.seed = 3;
  std::int64_t i = 0;
  for (PatternKind kind : access::kAllPatterns) {
    trace.ops.push_back({TraceOp::Dir::kRead, kind, {8 + i, 32}, {0, -2}, 3,
                         {}});
    ++i;
  }
  annotate_checksums(trace);
  EXPECT_EQ(parse_trace_text(trace_to_string(trace)), trace);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const RecordedTrace parsed = parse_trace_text(
      "# leading comment\n"
      "\n"
      "polymem-trace v1\n"
      "geometry 2x4 space 8x8 seed 1   # inline comment\n"
      "\n"
      "R rect @ 0,0   # another\n");
  EXPECT_EQ(parsed.ops.size(), 1u);
  EXPECT_EQ(parsed.ops[0].count, 1);
  EXPECT_EQ(parsed.height, 8);
}

TEST(TraceIo, RecorderCoalescesConstantStrideRuns) {
  TraceRecorder recorder(2, 4, 32, 32, 9);
  for (std::int64_t t = 0; t < 5; ++t)
    recorder.read({PatternKind::kRect, {0, 4 * t}});
  recorder.write({PatternKind::kRect, {8, 0}});   // direction break
  recorder.read({PatternKind::kRow, {16, 0}});    // pattern break
  recorder.read({PatternKind::kRow, {16, 8}});
  recorder.read({PatternKind::kRow, {16, 24}});   // stride break
  const RecordedTrace trace = recorder.finish();

  ASSERT_EQ(trace.ops.size(), 4u);
  EXPECT_EQ(trace.ops[0].count, 5);
  EXPECT_EQ(trace.ops[0].stride, (Coord{0, 4}));
  EXPECT_EQ(trace.ops[1].dir, TraceOp::Dir::kWrite);
  EXPECT_EQ(trace.ops[1].count, 1);
  EXPECT_EQ(trace.ops[1].stride, (Coord{0, 0}));
  EXPECT_EQ(trace.ops[2].count, 2);
  EXPECT_EQ(trace.ops[3].count, 1);
  EXPECT_EQ(trace.ops[3].anchor, (Coord{16, 24}));
  // Every op got a canonical checksum.
  for (const TraceOp& op : trace.ops) EXPECT_TRUE(op.checksum.has_value());
}

TEST(TraceIo, RecorderFlattens2dBatches) {
  TraceRecorder recorder(2, 4, 32, 32);
  recorder.read_batch({PatternKind::kRect, {0, 0}, {0, 4}, 8, {2, 0}, 4});
  EXPECT_EQ(recorder.ops_recorded(), 4);  // one run per outer row
  const RecordedTrace trace = recorder.finish();
  ASSERT_EQ(trace.ops.size(), 4u);
  for (std::int64_t o = 0; o < 4; ++o) {
    EXPECT_EQ(trace.ops[static_cast<std::size_t>(o)].anchor,
              (Coord{2 * o, 0}));
    EXPECT_EQ(trace.ops[static_cast<std::size_t>(o)].count, 8);
  }
}

TEST(TraceIo, RecorderIsReusableAfterFinish) {
  TraceRecorder recorder(2, 4, 16, 16);
  recorder.read({PatternKind::kRect, {0, 0}});
  const RecordedTrace first = recorder.finish();
  EXPECT_EQ(first.ops.size(), 1u);
  EXPECT_EQ(recorder.ops_recorded(), 0);
  recorder.write({PatternKind::kRect, {2, 4}});
  const RecordedTrace second = recorder.finish();
  ASSERT_EQ(second.ops.size(), 1u);
  EXPECT_EQ(second.ops[0].dir, TraceOp::Dir::kWrite);
  EXPECT_EQ(second.height, first.height);
}

TEST(TraceIo, HostReplayChecksumsAreSerializationInvariant) {
  RecordedTrace trace = sample_trace();
  annotate_checksums(trace);
  // Re-deriving checksums from the parsed text reproduces them exactly.
  const RecordedTrace parsed = parse_trace_text(trace_to_string(trace));
  const HostReplay host = host_replay(parsed);
  ASSERT_EQ(host.checksums.size(), parsed.ops.size());
  for (std::size_t k = 0; k < parsed.ops.size(); ++k)
    EXPECT_EQ(host.checksums[k], *parsed.ops[k].checksum) << "op " << k;
}

TEST(TraceIo, HostReplayReadsSeeEarlierWrites) {
  RecordedTrace trace;
  trace.height = 8;
  trace.width = 8;
  trace.seed = 5;
  trace.ops = {
      {TraceOp::Dir::kWrite, PatternKind::kRect, {2, 4}, {0, 0}, 1, {}},
      {TraceOp::Dir::kRead, PatternKind::kRect, {2, 4}, {0, 0}, 1, {}},
  };
  const HostReplay host = host_replay(trace);
  // The read checksum covers exactly the written payload.
  std::vector<std::uint64_t> payload;
  for (std::int64_t w = 0; w < 8; ++w)
    payload.push_back(canonical_write_word(trace.seed, 0, w));
  EXPECT_EQ(host.checksums[1], fnv1a(payload.data(), payload.size()));
  EXPECT_EQ(host.checksums[0], host.checksums[1]);
  // And the final image holds it at (2..3, 4..7).
  EXPECT_EQ(host.memory[2 * 8 + 4], canonical_write_word(trace.seed, 0, 0));
}

TEST(TraceIo, HostReplayRejectsOutOfBoundsOps) {
  RecordedTrace trace;
  trace.height = 4;
  trace.width = 4;
  trace.ops = {
      {TraceOp::Dir::kRead, PatternKind::kRect, {3, 3}, {0, 0}, 1, {}}};
  EXPECT_THROW(host_replay(trace), Error);
}

TEST(TraceIo, AccessTraceCarriesProvenance) {
  RecordedTrace trace;
  trace.height = 16;
  trace.width = 16;
  trace.ops = {
      {TraceOp::Dir::kRead, PatternKind::kRect, {0, 0}, {2, 0}, 3, {}},
      {TraceOp::Dir::kWrite, PatternKind::kMainDiag, {1, 3}, {0, 0}, 1, {}},
  };
  const AccessTrace flat = trace.access_trace();
  ASSERT_TRUE(flat.has_origins());
  ASSERT_EQ(flat.origins().size(), 4u);
  EXPECT_EQ(flat.origin_p(), 2u);
  EXPECT_EQ(flat.origin_q(), 4u);
  EXPECT_EQ(flat.origins()[1].access.anchor, (Coord{2, 0}));
  EXPECT_TRUE(flat.origins()[0].aligned);
  EXPECT_FALSE(flat.origins()[3].aligned);  // (1, 3) off-lattice
  EXPECT_FALSE(flat.origins_aligned());
  // Elements are the dedup'd union: 24 rect elements (rows 0..5 x cols
  // 0..3) plus 8 diagonal elements, of which only (1,3) overlaps.
  EXPECT_EQ(flat.size(), 24 + 8 - 1);
}

TEST(TraceIo, FromAccessesRecordsAlignment) {
  const std::vector<ParallelAccess> accesses = {
      {PatternKind::kRect, {0, 0}},
      {PatternKind::kRect, {2, 4}},
      {PatternKind::kRect, {1, 4}},
  };
  const AccessTrace trace = AccessTrace::from_accesses(accesses, 2, 4);
  ASSERT_EQ(trace.origins().size(), 3u);
  EXPECT_TRUE(trace.origins()[0].aligned);
  EXPECT_TRUE(trace.origins()[1].aligned);
  EXPECT_FALSE(trace.origins()[2].aligned);

  const AccessTrace aligned_only = AccessTrace::from_accesses(
      std::span(accesses.data(), 2), 2, 4);
  EXPECT_TRUE(aligned_only.origins_aligned());
}

TEST(TraceIo, GeneratorTracesHaveNoOrigins) {
  const AccessTrace trace = AccessTrace::dense_block({0, 0}, 4, 4);
  EXPECT_FALSE(trace.has_origins());
  EXPECT_EQ(trace.origin_p(), 0u);
}

// ---- malformed input: typed errors with line numbers, never a crash ----

struct BadCase {
  const char* label;
  const char* text;
  int line;
};

class TraceIoMalformed : public ::testing::TestWithParam<BadCase> {};

TEST_P(TraceIoMalformed, ThrowsTypedParseError) {
  const BadCase& c = GetParam();
  try {
    parse_trace_text(c.text);
    FAIL() << c.label << ": expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), c.line) << c.label << ": " << e.what();
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, TraceIoMalformed,
    ::testing::Values(
        BadCase{"empty", "", 1},
        BadCase{"wrong magic", "polymem-trace v2\n", 1},
        BadCase{"missing geometry", "polymem-trace v1\n", 2},
        BadCase{"bad geometry pair",
                "polymem-trace v1\ngeometry 2,4 space 8x8 seed 1\n", 2},
        BadCase{"zero geometry",
                "polymem-trace v1\ngeometry 0x4 space 8x8 seed 1\n", 2},
        BadCase{"garbled header",
                "polymem-trace v1\ngeometry 2x4 spice 8x8 seed 1\n", 2},
        BadCase{"bad seed",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed pi\n", 2},
        BadCase{"unknown direction",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "X rect @ 0,0\n",
                3},
        BadCase{"unknown pattern",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R blob @ 0,0\n",
                3},
        BadCase{"missing at",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect 0,0\n",
                3},
        BadCase{"bad anchor",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect @ 0;0\n",
                3},
        BadCase{"half anchor",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect @ 0,\n",
                3},
        BadCase{"zero count",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect @ 0,0 x0\n",
                3},
        BadCase{"dangling step",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect @ 0,0 x2 step\n",
                3},
        BadCase{"short checksum",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect @ 0,0 sum abcd\n",
                3},
        BadCase{"non-hex checksum",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect @ 0,0 sum zzzzzzzzzzzzzzzz\n",
                3},
        BadCase{"trailing junk",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect @ 0,0 x2 step 0,4 whee\n",
                3},
        BadCase{"second op bad",
                "polymem-trace v1\ngeometry 2x4 space 8x8 seed 1\n"
                "R rect @ 0,0\nW row @\n",
                4}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      std::string name = info.param.label;
      for (char& ch : name)
        if (ch == ' ' || ch == '-') ch = '_';
      return name;
    });

TEST(TraceIo, ParseFileRejectsMissingFile) {
  EXPECT_THROW(parse_trace_file("/nonexistent/nope.trace"), Error);
}

}  // namespace
}  // namespace polymem::sched
