#include "sched/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace polymem::sched {
namespace {

using access::Coord;

TEST(AccessTrace, DeduplicatesAndSorts) {
  const AccessTrace trace({{1, 1}, {0, 0}, {1, 1}, {0, 2}});
  EXPECT_EQ(trace.size(), 3);
  EXPECT_TRUE(std::is_sorted(trace.elements().begin(),
                             trace.elements().end()));
}

TEST(AccessTrace, BoundingBox) {
  const AccessTrace trace({{2, 5}, {7, 1}, {3, 9}});
  EXPECT_EQ(trace.min(), (Coord{2, 1}));
  EXPECT_EQ(trace.max(), (Coord{7, 9}));
  EXPECT_THROW(AccessTrace().min(), InvalidArgument);
}

TEST(AccessTrace, DenseBlock) {
  const auto trace = AccessTrace::dense_block({2, 3}, 4, 5);
  EXPECT_EQ(trace.size(), 20);
  EXPECT_EQ(trace.min(), (Coord{2, 3}));
  EXPECT_EQ(trace.max(), (Coord{5, 7}));
}

TEST(AccessTrace, StencilUnionOfShifts) {
  // 5-point star over a 2x2 tile.
  const std::vector<Coord> star = {{0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}};
  const auto trace = AccessTrace::stencil({4, 4}, 2, 2, star);
  // Union of 4 stars: the 2x2 core + halo = 12 distinct elements.
  EXPECT_EQ(trace.size(), 12);
  const auto& el = trace.elements();
  EXPECT_TRUE(std::binary_search(el.begin(), el.end(), Coord{3, 4}));
  EXPECT_TRUE(std::binary_search(el.begin(), el.end(), Coord{6, 5}));
  EXPECT_FALSE(std::binary_search(el.begin(), el.end(), Coord{3, 3}));
}

TEST(AccessTrace, RandomSparseIsDeterministicPerSeed) {
  const auto a = AccessTrace::random_sparse({0, 0}, 10, 10, 0.3, 11);
  const auto b = AccessTrace::random_sparse({0, 0}, 10, 10, 0.3, 11);
  const auto c = AccessTrace::random_sparse({0, 0}, 10, 10, 0.3, 12);
  EXPECT_EQ(a.elements(), b.elements());
  EXPECT_NE(a.elements(), c.elements());
  EXPECT_GT(a.size(), 10);  // ~30 of 100 expected
  EXPECT_LT(a.size(), 60);
}

TEST(AccessTrace, DiagonalBand) {
  const auto trace = AccessTrace::diagonal_band({0, 5}, 4, 1);
  EXPECT_EQ(trace.size(), 12);  // 4 diagonal positions x 3-wide band
  const auto& el = trace.elements();
  EXPECT_TRUE(std::binary_search(el.begin(), el.end(), Coord{0, 5}));
  EXPECT_TRUE(std::binary_search(el.begin(), el.end(), Coord{3, 8}));
  EXPECT_TRUE(std::binary_search(el.begin(), el.end(), Coord{3, 7}));
}

TEST(AccessTrace, GeneratorValidation) {
  EXPECT_THROW(AccessTrace::dense_block({0, 0}, 0, 5), InvalidArgument);
  EXPECT_THROW(AccessTrace::stencil({0, 0}, 1, 1, {}), InvalidArgument);
  EXPECT_THROW(AccessTrace::random_sparse({0, 0}, 2, 2, 0.0, 1),
               InvalidArgument);
  EXPECT_THROW(AccessTrace::diagonal_band({0, 0}, 0, 1), InvalidArgument);
}

}  // namespace
}  // namespace polymem::sched
