// Golden trace fixtures (tests/data): committed recordings must parse,
// re-print byte-identically, carry checksums the host oracle reproduces,
// and the malformed fixtures must fail with typed errors — guarding the
// on-disk format against accidental drift.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sched/trace_io.hpp"

namespace polymem::sched {
namespace {

std::string data_path(const std::string& name) {
  return std::string(POLYMEM_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class GoldenTrace : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenTrace, ParsesAndReprintsByteIdentically) {
  const std::string path = data_path(GetParam());
  const RecordedTrace trace = parse_trace_file(path);
  EXPECT_FALSE(trace.ops.empty());
  // The committed fixtures contain no comments, so print(parse(x)) == x.
  EXPECT_EQ(trace_to_string(trace), slurp(path));
}

TEST_P(GoldenTrace, ChecksumsMatchTheHostOracle) {
  const RecordedTrace trace = parse_trace_file(data_path(GetParam()));
  const HostReplay host = host_replay(trace);
  ASSERT_EQ(host.checksums.size(), trace.ops.size());
  for (std::size_t k = 0; k < trace.ops.size(); ++k) {
    ASSERT_TRUE(trace.ops[k].checksum.has_value()) << "op " << k;
    EXPECT_EQ(host.checksums[k], *trace.ops[k].checksum) << "op " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Fixtures, GoldenTrace,
                         ::testing::Values("transpose_8x8.trace",
                                           "histogram_16bins.trace",
                                           "phase_change_64x64.trace"),
                         [](const auto& info) {
                           std::string name = info.param;
                           return name.substr(0, name.find('.'));
                         });

TEST(GoldenTrace, MalformedFixturesRaiseTypedErrors) {
  EXPECT_THROW(parse_trace_file(data_path("malformed_missing_anchor.trace")),
               TraceParseError);
  EXPECT_THROW(parse_trace_file(data_path("malformed_bad_checksum.trace")),
               TraceParseError);
  try {
    parse_trace_file(data_path("malformed_missing_anchor.trace"));
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 5);
  }
}

}  // namespace
}  // namespace polymem::sched
