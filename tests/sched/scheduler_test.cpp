#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace polymem::sched {
namespace {

using access::Coord;
using access::PatternKind;
using maf::Scheme;

// Verifies that the schedule covers every trace element.
void expect_covers(const Schedule& schedule, const AccessTrace& trace,
                   unsigned p, unsigned q) {
  std::set<Coord> covered;
  for (const auto& acc : schedule.accesses)
    for (const Coord& c : access::expand(acc, p, q)) covered.insert(c);
  for (const Coord& c : trace.elements())
    EXPECT_TRUE(covered.count(c)) << "uncovered " << c;
}

TEST(Scheduler, AlignedDenseBlockNeedsExactlyAreaOverLanes) {
  // An aligned 4x8 block under ReO (2x4 rects): 32 elements / 8 lanes = 4.
  const Scheduler sched(Scheme::kReO, 2, 4);
  const auto trace = AccessTrace::dense_block({0, 0}, 4, 8);
  const auto schedule = sched.schedule(trace);
  EXPECT_TRUE(schedule.optimal);
  EXPECT_EQ(schedule.length(), 4);
  expect_covers(schedule, trace, 2, 4);
}

TEST(Scheduler, UnalignedBlockStillOptimalUnderReO) {
  // ReO rectangles are conflict-free at ANY anchor, so an unaligned block
  // costs the same 4 accesses.
  const Scheduler sched(Scheme::kReO, 2, 4);
  const auto trace = AccessTrace::dense_block({3, 5}, 4, 8);
  const auto schedule = sched.schedule(trace);
  EXPECT_EQ(schedule.length(), 4);
  expect_covers(schedule, trace, 2, 4);
}

TEST(Scheduler, RoCoPaysForUnalignedBlocks) {
  // RoCo rectangles are aligned-only. An unaligned 2x4 block is a single
  // access under ReO (rect anywhere) but costs two under RoCo (its rows
  // span two row accesses; no aligned rect matches).
  const auto trace = AccessTrace::dense_block({1, 1}, 2, 4);
  const auto roco = Scheduler(Scheme::kRoCo, 2, 4).schedule(trace);
  expect_covers(roco, trace, 2, 4);
  EXPECT_EQ(roco.length(), 2);
  EXPECT_EQ(Scheduler(Scheme::kReO, 2, 4).schedule(trace).length(), 1);

  // A full-width unaligned 4x8 block, however, is served in the optimal
  // 4 accesses by RoCo's rows — multiview pays off.
  const auto wide = AccessTrace::dense_block({1, 1}, 4, 8);
  EXPECT_EQ(Scheduler(Scheme::kRoCo, 2, 4).schedule(wide).length(), 4);
}

TEST(Scheduler, RowTraceOptimalUnderReRo) {
  const Scheduler sched(Scheme::kReRo, 2, 4);
  // One full row of 24 elements: 3 row accesses.
  const auto trace = AccessTrace::dense_block({5, 8}, 1, 24);
  const auto schedule = sched.schedule(trace);
  EXPECT_EQ(schedule.length(), 3);
  for (const auto& acc : schedule.accesses)
    EXPECT_EQ(acc.kind, PatternKind::kRow);
}

TEST(Scheduler, DiagonalTraceUsesDiagonalAccesses) {
  const Scheduler sched(Scheme::kReRo, 2, 4);
  const auto trace = AccessTrace(
      access::expand({PatternKind::kMainDiag, {2, 3}}, 2, 4));
  const auto schedule = sched.schedule(trace);
  EXPECT_EQ(schedule.length(), 1);
  EXPECT_EQ(schedule.accesses[0].kind, PatternKind::kMainDiag);
  EXPECT_EQ(schedule.accesses[0].anchor, (Coord{2, 3}));
}

TEST(Scheduler, CandidateAccessesAllSupportedAndTouching) {
  const Scheduler sched(Scheme::kReRo, 2, 4);
  const auto trace = AccessTrace::dense_block({4, 4}, 2, 4);
  const auto candidates = sched.candidate_accesses(trace);
  EXPECT_FALSE(candidates.empty());
  const auto& el = trace.elements();
  for (const auto& acc : candidates) {
    EXPECT_TRUE(maf::access_supported(sched.maf(), acc));
    bool touches = false;
    for (const Coord& c : access::expand(acc, 2, 4))
      touches = touches || std::binary_search(el.begin(), el.end(), c);
    EXPECT_TRUE(touches);
    // ReRo serves no columns or transposed rects.
    EXPECT_NE(acc.kind, PatternKind::kCol);
    EXPECT_NE(acc.kind, PatternKind::kTRect);
  }
}

TEST(Scheduler, GreedyNeverBeatsExact) {
  const Scheduler sched(Scheme::kReRo, 2, 4);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto trace = AccessTrace::random_sparse({0, 0}, 8, 12, 0.35, seed);
    const auto exact = sched.schedule(trace, SolverKind::kExact);
    const auto greedy = sched.schedule(trace, SolverKind::kGreedy);
    expect_covers(exact, trace, 2, 4);
    expect_covers(greedy, trace, 2, 4);
    EXPECT_LE(exact.length(), greedy.length()) << "seed " << seed;
  }
}

TEST(Scheduler, MetricsMatchDefinitions) {
  const Scheduler sched(Scheme::kReO, 2, 4);
  const auto trace = AccessTrace::dense_block({0, 0}, 4, 8);
  const auto schedule = sched.schedule(trace);
  const auto metrics = sched.evaluate(trace, schedule);
  EXPECT_EQ(metrics.trace_elements, 32);
  EXPECT_EQ(metrics.schedule_length, 4);
  EXPECT_DOUBLE_EQ(metrics.speedup, 8.0);      // 32 elements / 4 accesses
  EXPECT_DOUBLE_EQ(metrics.efficiency, 1.0);   // all lanes useful
}

TEST(Scheduler, SparseTraceHasLowEfficiency) {
  const Scheduler sched(Scheme::kReRo, 2, 4);
  // 4 isolated elements, far apart: 4 accesses, speedup 1, efficiency 1/8.
  const AccessTrace trace({{0, 0}, {20, 0}, {0, 30}, {20, 30}});
  const auto schedule = sched.schedule(trace);
  const auto metrics = sched.evaluate(trace, schedule);
  EXPECT_EQ(metrics.schedule_length, 4);
  EXPECT_DOUBLE_EQ(metrics.speedup, 1.0);
  EXPECT_DOUBLE_EQ(metrics.efficiency, 0.125);
}

TEST(Scheduler, EmptyTraceEmptySchedule) {
  const Scheduler sched(Scheme::kReO, 2, 4);
  const auto schedule = sched.schedule(AccessTrace{});
  EXPECT_EQ(schedule.length(), 0);
  EXPECT_TRUE(schedule.optimal);
}

TEST(RankConfigurations, PicksTheBestSchemeForTheWorkload) {
  // A columns-heavy workload: ReCo (or RoCo) must beat ReRo.
  std::vector<Coord> cols;
  for (int c = 0; c < 3; ++c)
    for (int k = 0; k < 16; ++k) cols.push_back({k, 10 * c});
  const AccessTrace trace{std::move(cols)};
  const std::vector<std::tuple<Scheme, unsigned, unsigned>> configs = {
      {Scheme::kReRo, 2, 4}, {Scheme::kReCo, 2, 4}, {Scheme::kRoCo, 2, 4}};
  const auto ranking = rank_configurations(trace, configs);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_NE(ranking[0].scheme, Scheme::kReRo);
  EXPECT_GT(ranking[0].metrics.speedup,
            ranking[2].metrics.speedup - 1e-12);
  // Column accesses of 8 elements: 3 cols x 16 rows = 48 elements in 6.
  EXPECT_EQ(ranking[0].schedule.length(), 6);
}

}  // namespace
}  // namespace polymem::sched
