#include "dse/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace polymem::dse {
namespace {

std::string render(const TextTable& table) {
  std::ostringstream os;
  table.print(os);
  return os.str();
}

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : results_(DseExplorer().explore()) {}
  std::vector<DseResult> results_;
};

TEST_F(ReportTest, ColumnLabelsMatchFigureAxisFormat) {
  EXPECT_EQ(column_label({512, 8, 1}), "512,8,1");
  EXPECT_EQ(column_label({4096, 16, 1}), "4096,16,1");
}

TEST_F(ReportTest, Table4ModelHasFiveSchemeRows) {
  const auto table = table4_model(results_);
  EXPECT_EQ(table.rows(), 5u);
  const std::string s = render(table);
  for (const char* scheme : {"ReO", "ReRo", "ReCo", "RoCo", "ReTr"})
    EXPECT_NE(s.find(scheme), std::string::npos) << scheme;
  EXPECT_NE(s.find("512,8,1"), std::string::npos);
}

TEST_F(ReportTest, Table4PaperContainsHeadlineCells) {
  const std::string s = render(table4_paper());
  EXPECT_NE(s.find("202"), std::string::npos);  // best ReO cell
  EXPECT_NE(s.find("77"), std::string::npos);   // minimum cell
}

TEST_F(ReportTest, Table4ErrorReportsAllSchemesAndTotal) {
  const auto table = table4_error(results_);
  EXPECT_EQ(table.rows(), 6u);  // 5 schemes + ALL
  const std::string s = render(table);
  EXPECT_NE(s.find("ALL"), std::string::npos);
}

TEST_F(ReportTest, FigureTablesHave18Rows) {
  for (const auto& table :
       {fig4_write_bandwidth(results_), fig5_read_bandwidth(results_),
        fig6_logic_utilisation(results_), fig7_lut_utilisation(results_),
        fig8_bram_utilisation(results_)}) {
    EXPECT_EQ(table.rows(), 18u);
  }
}

TEST_F(ReportTest, Fig5PeakExceeds28GBs) {
  const std::string s = render(fig5_read_bandwidth(results_));
  // The 512,8,4 row must exist; detailed peak values are asserted in
  // explorer_test. Here we check the table carries GB/s-scale numbers.
  EXPECT_NE(s.find("512,8,4"), std::string::npos);
}

TEST_F(ReportTest, CsvRendering) {
  std::ostringstream os;
  fig8_bram_utilisation(results_).print_csv(os);
  const std::string s = os.str();
  // Header + 18 rows.
  EXPECT_EQ(static_cast<int>(std::count(s.begin(), s.end(), '\n')), 19);
}

TEST_F(ReportTest, WriteAllCsvProducesEightArtefacts) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "polymem_report_test_csv";
  fs::remove_all(dir);
  const auto written = write_all_csv(dir.string(), results_);
  EXPECT_EQ(written.size(), 8u);
  for (const auto& path : written) {
    EXPECT_TRUE(fs::exists(path)) << path;
    EXPECT_GT(fs::file_size(path), 100u) << path;
  }
  // Spot-check one file's shape: header + 5 scheme rows.
  std::ifstream in(dir / "table4_model.csv");
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 6);
  fs::remove_all(dir);
}

TEST_F(ReportTest, SaveCsvRejectsUnwritablePath) {
  EXPECT_THROW(table4_paper().save_csv("/nonexistent-dir/x.csv"),
               InvalidArgument);
}

TEST_F(ReportTest, IncompleteResultsRejected) {
  std::vector<DseResult> partial(results_.begin(), results_.begin() + 10);
  EXPECT_THROW(table4_model(partial), InvalidArgument);
}

}  // namespace
}  // namespace polymem::dse
