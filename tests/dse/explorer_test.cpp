#include "dse/explorer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::dse {
namespace {

using maf::Scheme;
using synth::DsePoint;

TEST(DseExplorer, Covers90Points) {
  const DseExplorer explorer;
  const auto results = explorer.explore();
  EXPECT_EQ(results.size(), 90u);
  // Every point carries a paper reference (the paper synthesised all 90).
  for (const DseResult& r : results) {
    EXPECT_TRUE(r.fmax_mhz_paper.has_value());
    EXPECT_TRUE(r.write_bw_paper.has_value());
  }
}

TEST(DseExplorer, BandwidthArithmetic) {
  const DseExplorer explorer;
  const auto r = explorer.evaluate(DsePoint{Scheme::kReO, 512, 8, 4});
  EXPECT_DOUBLE_EQ(r.write_bw_bytes_per_s,
                   8 * 8 * r.fmax_mhz * 1e6);
  EXPECT_DOUBLE_EQ(r.read_bw_bytes_per_s, 4 * r.write_bw_bytes_per_s);
  // Paper-derived columns use the paper frequency.
  EXPECT_DOUBLE_EQ(*r.write_bw_paper, 8 * 8 * 123.0 * 1e6);
  EXPECT_DOUBLE_EQ(*r.read_bw_paper, 4 * *r.write_bw_paper);
}

TEST(DseExplorer, PaperPeaksReproduced) {
  // Abstract: "the design with the maximum read bandwidth is a 512KB
  // memory, with 4 read ports ... a peak read bandwidth of around 32GB/s"
  // — from Table IV that is the 512KB, 8-lane, 4-port ReTr at 137 MHz.
  const DseExplorer explorer;
  std::optional<DseResult> best_paper;
  for (const DseResult& r : explorer.explore())
    if (!best_paper || *r.read_bw_paper > *best_paper->read_bw_paper)
      best_paper = r;
  ASSERT_TRUE(best_paper.has_value());
  EXPECT_EQ(best_paper->point.size_kb, 512u);
  EXPECT_EQ(best_paper->point.lanes, 8u);
  EXPECT_EQ(best_paper->point.ports, 4u);
  EXPECT_EQ(best_paper->point.scheme, Scheme::kReTr);
  EXPECT_GT(*best_paper->read_bw_paper, 32e9);

  // Write peak: "exceeds 22GB/s for the 512KB, 16-lane, ReO configuration".
  std::optional<DseResult> best_write;
  for (const DseResult& r : explorer.explore())
    if (!best_write || *r.write_bw_paper > *best_write->write_bw_paper)
      best_write = r;
  EXPECT_EQ(best_write->point.size_kb, 512u);
  EXPECT_EQ(best_write->point.lanes, 16u);
  EXPECT_EQ(best_write->point.ports, 1u);
  EXPECT_EQ(best_write->point.scheme, Scheme::kReO);
  EXPECT_GT(*best_write->write_bw_paper, 22e9);
}

TEST(DseExplorer, ModelPeaksLandInSameCorner) {
  // The model's best configurations must sit at the same grid corner as
  // the paper's: smallest capacity with maximum port-lane parallelism for
  // read (the paper picks 8L/4P; the model may prefer the equally-parallel
  // 16L/2P cell), 16 lanes for write.
  const DseExplorer explorer;
  const auto best_read = explorer.best_read_bandwidth();
  EXPECT_EQ(best_read.point.size_kb, 512u);
  EXPECT_EQ(best_read.point.lanes * best_read.point.ports, 32u);
  EXPECT_GT(best_read.read_bw_bytes_per_s, 28e9);

  const auto best_write = explorer.best_write_bandwidth();
  EXPECT_EQ(best_write.point.size_kb, 512u);
  EXPECT_EQ(best_write.point.lanes, 16u);
  EXPECT_GT(best_write.write_bw_bytes_per_s, 18e9);
}

TEST(DseExplorer, SinglePortBandwidthScalesLinearlyWithLanes) {
  // "single-port bandwidth scales linearly when doubling number of memory
  // banks from 8 to 16" — in the paper's data, up to the frequency drop.
  const DseExplorer explorer;
  const auto r8 = explorer.evaluate(DsePoint{Scheme::kReRo, 512, 8, 1});
  const auto r16 = explorer.evaluate(DsePoint{Scheme::kReRo, 512, 16, 1});
  const double gain = *r16.write_bw_paper / *r8.write_bw_paper;
  EXPECT_GT(gain, 1.5);
  EXPECT_LT(gain, 2.1);
}

TEST(DseExplorer, DiminishingReturnsAt3And4Ports) {
  // "good bandwidth scaling when doubling ... from 1 to 2 ports, and
  // diminishing returns for the 3- and 4-port configurations".
  const DseExplorer explorer;
  auto read_bw = [&](unsigned ports) {
    return *explorer.evaluate(DsePoint{Scheme::kReRo, 512, 8, ports})
                .read_bw_paper;
  };
  const double s12 = read_bw(2) / read_bw(1);
  const double s34 = read_bw(4) / read_bw(3);
  EXPECT_GT(s12, 1.5);
  EXPECT_LT(s34, 1.35);
  EXPECT_GT(s12, s34);
}

TEST(DseExplorer, ParetoFrontierIsNonDominatedAndMonotone) {
  const DseExplorer explorer;
  const auto frontier = explorer.pareto_read_bw_vs_bram();
  ASSERT_FALSE(frontier.empty());
  EXPECT_LT(frontier.size(), 90u);  // most points are dominated
  // Sorted by BRAM; bandwidth strictly increases along the frontier.
  for (std::size_t k = 1; k < frontier.size(); ++k) {
    EXPECT_GT(frontier[k].resources.bram36,
              frontier[k - 1].resources.bram36);
    EXPECT_GT(frontier[k].read_bw_bytes_per_s,
              frontier[k - 1].read_bw_bytes_per_s);
  }
  // No grid point dominates a frontier point.
  for (const auto& f : frontier) {
    for (const auto& r : explorer.explore()) {
      const bool dominates =
          r.read_bw_bytes_per_s > f.read_bw_bytes_per_s &&
          r.resources.bram36 <= f.resources.bram36;
      EXPECT_FALSE(dominates);
    }
  }
  // The global best read bandwidth is on the frontier (by definition).
  const auto best = explorer.best_read_bandwidth();
  bool found = false;
  for (const auto& f : frontier)
    found = found || (f.point == best.point);
  EXPECT_TRUE(found);
}

TEST(DseSweep, MatchesExploreOnAnalyticFields) {
  const DseExplorer explorer;
  const auto serial = explorer.sweep({.threads = 1, .validate = false});
  const auto reference = explorer.explore();
  ASSERT_EQ(serial.size(), reference.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].point, reference[k].point);
    EXPECT_DOUBLE_EQ(serial[k].fmax_mhz, reference[k].fmax_mhz);
    EXPECT_DOUBLE_EQ(serial[k].read_bw_bytes_per_s,
                     reference[k].read_bw_bytes_per_s);
    EXPECT_FALSE(serial[k].validated);
  }
}

TEST(DseSweep, ParallelSweepIsBitIdenticalAcrossThreadCounts) {
  // The determinism contract: 1, 2 and 8 threads produce the identical
  // result vector, including the functional-validation checksums (RNG is
  // derived per point index, never per thread).
  const DseExplorer explorer;
  const SweepOptions base{.threads = 1, .validate = true, .seed = 77};
  const auto serial = explorer.sweep(base);
  ASSERT_EQ(serial.size(), 90u);
  for (const DseResult& r : serial) {
    EXPECT_TRUE(r.validated);
    EXPECT_TRUE(r.validation_ok) << maf::scheme_name(r.point.scheme) << " "
                                 << r.point.size_kb << "KB";
    EXPECT_NE(r.validation_checksum, 0u);
  }
  for (unsigned threads : {2u, 8u}) {
    SweepOptions opts = base;
    opts.threads = threads;
    const auto parallel = explorer.sweep(opts);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t k = 0; k < serial.size(); ++k) {
      EXPECT_EQ(parallel[k].point, serial[k].point);
      EXPECT_DOUBLE_EQ(parallel[k].fmax_mhz, serial[k].fmax_mhz);
      EXPECT_EQ(parallel[k].validation_ok, serial[k].validation_ok);
      EXPECT_EQ(parallel[k].validation_checksum,
                serial[k].validation_checksum)
          << "thread count " << threads << " point " << k;
    }
  }
}

TEST(DseSweep, SeedChangesChecksumsButNotVerdicts) {
  const DseExplorer explorer;
  const auto a = explorer.sweep({.threads = 2, .validate = true, .seed = 1});
  const auto b = explorer.sweep({.threads = 2, .validate = true, .seed = 2});
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_TRUE(a[k].validation_ok);
    EXPECT_TRUE(b[k].validation_ok);
    any_diff = any_diff || a[k].validation_checksum != b[k].validation_checksum;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DseExplorer, InvalidPointRejected) {
  const DseExplorer explorer;
  EXPECT_THROW(explorer.evaluate(DsePoint{Scheme::kReO, 4096, 8, 2}),
               InvalidArgument);
}

TEST(PortBandwidth, Formula) {
  EXPECT_DOUBLE_EQ(port_bandwidth_bytes_per_s(8, 120.0), 7680e6);
}

}  // namespace
}  // namespace polymem::dse
