#include "access/region.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace polymem::access {
namespace {

TEST(Region, MatrixElements) {
  const Region r = Region::matrix({1, 2}, 2, 3);
  EXPECT_EQ(r.element_count(), 6);
  const auto el = r.elements();
  ASSERT_EQ(el.size(), 6u);
  EXPECT_EQ(el.front(), (Coord{1, 2}));
  EXPECT_EQ(el.back(), (Coord{2, 4}));
}

TEST(Region, VectorAndDiagonalElements) {
  EXPECT_EQ(Region::row_vec({0, 0}, 5).elements().back(), (Coord{0, 4}));
  EXPECT_EQ(Region::col_vec({0, 0}, 5).elements().back(), (Coord{4, 0}));
  EXPECT_EQ(Region::main_diag({1, 1}, 4).elements().back(), (Coord{4, 4}));
  EXPECT_EQ(Region::sec_diag({0, 5}, 4).elements().back(), (Coord{3, 2}));
}

TEST(Region, RejectsEmpty) {
  EXPECT_THROW(Region::matrix({0, 0}, 0, 3), InvalidArgument);
  EXPECT_THROW(Region::row_vec({0, 0}, 0), InvalidArgument);
}

TEST(TileRegion, MatrixWithRectCoversExactly) {
  // 4x8 matrix tiled by 2x4 rects -> 2*2 = 4 accesses.
  const Region r = Region::matrix({0, 0}, 4, 8);
  const auto tiles = tile_region(r, PatternKind::kRect, 2, 4);
  EXPECT_EQ(tiles.size(), 4u);

  // The union of tile elements equals the region elements exactly.
  std::set<Coord> covered;
  for (const auto& t : tiles)
    for (const Coord& c : expand(t, 2, 4)) covered.insert(c);
  const auto want = r.elements();
  EXPECT_EQ(covered, std::set<Coord>(want.begin(), want.end()));
}

TEST(TileRegion, MatrixWithRowAccesses) {
  // Fig. 2's R0: a matrix read with several row accesses.
  const Region r = Region::matrix({0, 0}, 3, 16);
  const auto tiles = tile_region(r, PatternKind::kRow, 2, 4);
  // Each row needs 2 accesses (16 / 8), 3 rows -> 6.
  EXPECT_EQ(tiles.size(), 6u);
  EXPECT_EQ(tile_count(r, PatternKind::kRow, 2, 4), 6);
}

TEST(TileRegion, UnevenSizesRoundUp) {
  const Region r = Region::matrix({0, 0}, 3, 9);
  // 2x4 rect tiles: ceil(3/2) * ceil(9/4) = 2 * 3 = 6.
  EXPECT_EQ(tile_count(r, PatternKind::kRect, 2, 4), 6);
}

TEST(TileRegion, VectorsAndDiagonals) {
  EXPECT_EQ(tile_count(Region::row_vec({0, 0}, 24), PatternKind::kRow, 2, 4),
            3);
  EXPECT_EQ(tile_count(Region::col_vec({0, 0}, 17), PatternKind::kCol, 2, 4),
            3);
  const auto d =
      tile_region(Region::main_diag({0, 0}, 16), PatternKind::kMainDiag, 2, 4);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[1].anchor, (Coord{8, 8}));
  const auto s =
      tile_region(Region::sec_diag({0, 20}, 16), PatternKind::kSecDiag, 2, 4);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1].anchor, (Coord{8, 12}));
}

TEST(TileRegion, MismatchedShapePatternThrows) {
  EXPECT_THROW(
      tile_region(Region::row_vec({0, 0}, 8), PatternKind::kCol, 2, 4),
      Unsupported);
  EXPECT_THROW(
      tile_region(Region::main_diag({0, 0}, 8), PatternKind::kRow, 2, 4),
      Unsupported);
  EXPECT_THROW(
      tile_region(Region::matrix({0, 0}, 4, 4), PatternKind::kMainDiag, 2, 4),
      Unsupported);
}

TEST(RegionShapeNames, AllDistinct) {
  std::set<std::string> names;
  for (RegionShape s :
       {RegionShape::kMatrix, RegionShape::kRowVec, RegionShape::kColVec,
        RegionShape::kMainDiag, RegionShape::kSecDiag})
    names.insert(region_shape_name(s));
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace polymem::access
