#include "access/coord.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace polymem::access {
namespace {

TEST(Coord, OrderingIsRowMajor) {
  EXPECT_LT((Coord{0, 5}), (Coord{1, 0}));
  EXPECT_LT((Coord{1, 0}), (Coord{1, 2}));
  EXPECT_EQ((Coord{3, 4}), (Coord{3, 4}));
  EXPECT_NE((Coord{3, 4}), (Coord{4, 3}));
}

TEST(Coord, StreamsReadably) {
  std::ostringstream os;
  os << Coord{-2, 7};
  EXPECT_EQ(os.str(), "(-2,7)");
}

TEST(CoordHash, UsableInUnorderedContainersWithFewCollisions) {
  std::unordered_set<Coord, CoordHash> set;
  for (std::int64_t i = -20; i < 20; ++i)
    for (std::int64_t j = -20; j < 20; ++j) set.insert({i, j});
  EXPECT_EQ(set.size(), 1600u);
  EXPECT_TRUE(set.count(Coord{-20, -20}));
  EXPECT_FALSE(set.count(Coord{20, 20}));

  // Hash quality: the mirrored pairs (i, j) / (j, i) must not all
  // collide (a weak XOR-only hash would).
  CoordHash hash;
  int collisions = 0;
  for (std::int64_t k = 1; k < 100; ++k)
    collisions += (hash({k, k + 1}) == hash({k + 1, k})) ? 1 : 0;
  EXPECT_LT(collisions, 3);
}

}  // namespace
}  // namespace polymem::access
