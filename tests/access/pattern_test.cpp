#include "access/pattern.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace polymem::access {
namespace {

TEST(PatternNames, RoundTrip) {
  for (PatternKind kind : kAllPatterns)
    EXPECT_EQ(pattern_from_name(pattern_name(kind)), kind);
  EXPECT_THROW(pattern_from_name("bogus"), InvalidArgument);
}

TEST(Expand, RowIsContiguous) {
  const auto el = expand({PatternKind::kRow, {3, 5}}, 2, 4);
  ASSERT_EQ(el.size(), 8u);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(el[k], (Coord{3, 5 + k}));
}

TEST(Expand, ColIsContiguous) {
  const auto el = expand({PatternKind::kCol, {3, 5}}, 2, 4);
  ASSERT_EQ(el.size(), 8u);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(el[k], (Coord{3 + k, 5}));
}

TEST(Expand, RectIsRowMajorPByQ) {
  const auto el = expand({PatternKind::kRect, {1, 2}}, 2, 4);
  ASSERT_EQ(el.size(), 8u);
  EXPECT_EQ(el[0], (Coord{1, 2}));
  EXPECT_EQ(el[3], (Coord{1, 5}));
  EXPECT_EQ(el[4], (Coord{2, 2}));
  EXPECT_EQ(el[7], (Coord{2, 5}));
}

TEST(Expand, TRectIsRowMajorQByP) {
  const auto el = expand({PatternKind::kTRect, {0, 0}}, 2, 4);
  ASSERT_EQ(el.size(), 8u);
  // 4 rows of 2 columns.
  EXPECT_EQ(el[0], (Coord{0, 0}));
  EXPECT_EQ(el[1], (Coord{0, 1}));
  EXPECT_EQ(el[2], (Coord{1, 0}));
  EXPECT_EQ(el[7], (Coord{3, 1}));
}

TEST(Expand, MainDiagonalWalksDownRight) {
  const auto el = expand({PatternKind::kMainDiag, {2, 3}}, 2, 4);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(el[k], (Coord{2 + k, 3 + k}));
}

TEST(Expand, SecondaryDiagonalWalksDownLeft) {
  const auto el = expand({PatternKind::kSecDiag, {2, 9}}, 2, 4);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(el[k], (Coord{2 + k, 9 - k}));
}

TEST(Expand, AlwaysProducesPTimesQDistinctElements) {
  for (PatternKind kind : kAllPatterns) {
    for (auto [p, q] : {std::pair<unsigned, unsigned>{2, 4}, {2, 8}, {4, 4},
                        {1, 8}, {4, 2}}) {
      const auto el = expand({kind, {5, 7}}, p, q);
      EXPECT_EQ(el.size(), static_cast<std::size_t>(p) * q);
      const std::set<Coord> uniq(el.begin(), el.end());
      EXPECT_EQ(uniq.size(), el.size())
          << pattern_name(kind) << " " << p << "x" << q;
    }
  }
}

TEST(Extent, MatchesExpansionBoundingBox) {
  for (PatternKind kind : kAllPatterns) {
    const unsigned p = 2, q = 4;
    const auto el = expand({kind, {0, 0}}, p, q);
    std::int64_t min_i = el[0].i, max_i = el[0].i;
    std::int64_t min_j = el[0].j, max_j = el[0].j;
    for (const Coord& c : el) {
      min_i = std::min(min_i, c.i); max_i = std::max(max_i, c.i);
      min_j = std::min(min_j, c.j); max_j = std::max(max_j, c.j);
    }
    const PatternExtent ext = pattern_extent(kind, p, q);
    EXPECT_EQ(ext.rows, max_i - min_i + 1) << pattern_name(kind);
    EXPECT_EQ(ext.cols, max_j - min_j + 1) << pattern_name(kind);
    EXPECT_EQ(ext.col_offset, min_j) << pattern_name(kind);
    EXPECT_EQ(min_i, 0) << pattern_name(kind);
  }
}

TEST(Fits, RespectsBounds) {
  // 8x16 space with 2x4 banks.
  EXPECT_TRUE(fits({PatternKind::kRect, {0, 0}}, 2, 4, 8, 16));
  EXPECT_TRUE(fits({PatternKind::kRect, {6, 12}}, 2, 4, 8, 16));
  EXPECT_FALSE(fits({PatternKind::kRect, {7, 12}}, 2, 4, 8, 16));
  EXPECT_FALSE(fits({PatternKind::kRect, {6, 13}}, 2, 4, 8, 16));
  EXPECT_FALSE(fits({PatternKind::kRect, {-1, 0}}, 2, 4, 8, 16));

  EXPECT_TRUE(fits({PatternKind::kRow, {0, 8}}, 2, 4, 8, 16));
  EXPECT_FALSE(fits({PatternKind::kRow, {0, 9}}, 2, 4, 8, 16));

  EXPECT_TRUE(fits({PatternKind::kCol, {0, 15}}, 2, 4, 8, 16));
  EXPECT_FALSE(fits({PatternKind::kCol, {1, 15}}, 2, 4, 8, 16));

  // Secondary diagonal needs room on the *left* of the anchor.
  EXPECT_TRUE(fits({PatternKind::kSecDiag, {0, 7}}, 2, 4, 8, 16));
  EXPECT_FALSE(fits({PatternKind::kSecDiag, {0, 6}}, 2, 4, 8, 16));
  EXPECT_TRUE(fits({PatternKind::kSecDiag, {0, 15}}, 2, 4, 8, 16));
}

TEST(ExpandInto, ReusesBuffer) {
  std::vector<Coord> buf;
  expand_into({PatternKind::kRow, {0, 0}}, 2, 4, buf);
  EXPECT_EQ(buf.size(), 8u);
  expand_into({PatternKind::kRect, {1, 1}}, 2, 4, buf);
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf[0], (Coord{1, 1}));
}

TEST(Expand, RejectsDegenerateGeometry) {
  EXPECT_THROW(expand({PatternKind::kRow, {0, 0}}, 0, 4), InvalidArgument);
}

}  // namespace
}  // namespace polymem::access
