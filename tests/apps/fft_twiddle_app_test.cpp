// FFT transpose-and-twiddle: host-oracle verification, the diagonal
// twiddle-ROM walk, and record -> replay round trips for both memories.
#include "apps/fft_twiddle_app.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "replay/replay.hpp"

namespace polymem::apps {
namespace {

std::vector<double> ramp(std::int64_t n) {
  std::vector<double> v(static_cast<std::size_t>(n * n));
  for (std::size_t k = 0; k < v.size(); ++k)
    v[k] = 0.125 * static_cast<double>(k) - 3.0;
  return v;
}

TEST(FftTwiddleApp, VerifiesTransposeAndTwiddle) {
  for (std::int64_t n : {8, 16, 24}) {
    FftTwiddleApp app(n);
    app.load(ramp(n));
    const AppReport report = app.run();
    EXPECT_TRUE(report.verified) << "n = " << n;
    // One rect read + one ROM diag + one trect write per tile.
    const auto tiles = static_cast<std::uint64_t>((n / 2) * (n / 4));
    EXPECT_EQ(report.parallel_reads, 2 * tiles);
    EXPECT_EQ(report.parallel_writes, tiles);
  }
}

TEST(FftTwiddleApp, DestinationMatchesExplicitFormula) {
  const std::int64_t n = 8;
  FftTwiddleApp app(n);
  const std::vector<double> src = ramp(n);
  app.load(src);
  ASSERT_TRUE(app.run().verified);
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < n; ++c)
      EXPECT_EQ(app.dst_at(r, c),
                src[static_cast<std::size_t>(c * n + r)] * app.twiddle(r, c))
          << r << "," << c;
}

TEST(FftTwiddleApp, DataTraceIsRectTrectAndRomTraceIsDiagonal) {
  const std::int64_t n = 16;
  FftTwiddleApp app(n);
  auto data_rec = app.make_data_recorder();
  auto rom_rec = app.make_rom_recorder();
  app.set_recorders(&data_rec, &rom_rec);
  app.load(ramp(n));
  ASSERT_TRUE(app.run().verified);

  const sched::RecordedTrace data = data_rec.finish();
  const sched::RecordedTrace rom = rom_rec.finish();
  ASSERT_FALSE(data.ops.empty());
  ASSERT_FALSE(rom.ops.empty());
  for (const auto& op : data.ops)
    EXPECT_TRUE(op.kind == access::PatternKind::kRect ||
                op.kind == access::PatternKind::kTRect);
  for (const auto& op : rom.ops) {
    EXPECT_EQ(op.kind, access::PatternKind::kMainDiag);
    EXPECT_EQ(op.dir, sched::TraceOp::Dir::kRead);
  }
  // The ROM walk anchors off the aligned lattice (columns t / (n/L)).
  EXPECT_FALSE(rom.access_trace().origins_aligned());

  // Native-scheme replays are fully batched and bit-identical.
  replay::ReplayOptions data_opt;
  data_opt.scheme = maf::Scheme::kReTr;
  const auto data_replay = replay::replay(data, data_opt);
  EXPECT_TRUE(data_replay.verified());
  EXPECT_EQ(data_replay.fallback_accesses, 0);

  replay::ReplayOptions rom_opt;
  rom_opt.scheme = maf::Scheme::kReRo;
  const auto rom_replay = replay::replay(rom, rom_opt);
  EXPECT_TRUE(rom_replay.verified());
  EXPECT_EQ(rom_replay.fallback_accesses, 0);

  // On ReO the unaligned diagonals cannot be served in parallel — the
  // replay falls back scalar yet still verifies (polymorphism's cost
  // model, not a correctness cliff).
  replay::ReplayOptions reo_opt;
  reo_opt.scheme = maf::Scheme::kReO;
  const auto reo_replay = replay::replay(rom, reo_opt);
  EXPECT_TRUE(reo_replay.verified());
  EXPECT_GT(reo_replay.fallback_accesses, 0);
}

TEST(FftTwiddleApp, RejectsSizesNotMultipleOfLanes) {
  EXPECT_THROW(FftTwiddleApp(12), Error);  // 12 % 8 != 0
  EXPECT_THROW(FftTwiddleApp(4), Error);
}

}  // namespace
}  // namespace polymem::apps
