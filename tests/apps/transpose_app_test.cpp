#include "apps/transpose_app.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"

namespace polymem::apps {
namespace {

std::vector<hw::Word> iota(std::int64_t n) {
  std::vector<hw::Word> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0u);
  return v;
}

TEST(TransposeApp, CorrectAndVerified) {
  TransposeApp app(16);
  app.load_source(iota(16 * 16));
  const auto report = app.run();
  EXPECT_TRUE(report.verified);
  for (std::int64_t i = 0; i < 16; ++i)
    for (std::int64_t j = 0; j < 16; ++j)
      EXPECT_EQ(app.destination(i, j),
                static_cast<hw::Word>(j * 16 + i));
}

TEST(TransposeApp, FullyPipelinedCycleCount) {
  // 32 tiles of 2x4 in a 16x16 matrix; one read per cycle, the write
  // trails in the shadow of the next reads: tiles + latency + 1 cycles.
  TransposeApp app(16, 2, 4, /*latency=*/14);
  app.load_source(iota(16 * 16));
  const auto report = app.run();
  EXPECT_EQ(report.parallel_reads, 32u);
  EXPECT_EQ(report.parallel_writes, 32u);
  EXPECT_EQ(report.cycles, 32u + 14 + 1);
  // 512 elements in & out in ~48 cycles: > 10 elements per cycle.
  EXPECT_GT(report.elements_per_cycle(), 10.0);
}

TEST(TransposeApp, SteadyStateApproaches2NElementsPerCycle) {
  // Large matrix: read+write concurrency delivers ~2 * lanes = 16
  // elements per cycle.
  TransposeApp app(64);
  app.load_source(iota(64 * 64));
  const auto report = app.run();
  EXPECT_TRUE(report.verified);
  EXPECT_GT(report.elements_per_cycle(), 15.0);
  EXPECT_LE(report.elements_per_cycle(), 16.0);
}

TEST(TransposeApp, RejectsMisalignedSizes) {
  EXPECT_THROW(TransposeApp(10), InvalidArgument);  // 10 % 4 != 0
  EXPECT_THROW(TransposeApp(0), InvalidArgument);
  std::vector<hw::Word> wrong(10);
  TransposeApp app(8);
  EXPECT_THROW(app.load_source(wrong), InvalidArgument);
}

TEST(TransposeApp, ZeroLatencyVariant) {
  TransposeApp app(8, 2, 4, /*latency=*/0);
  app.load_source(iota(64));
  const auto report = app.run();
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.cycles, 8u + 0 + 1);
}

}  // namespace
}  // namespace polymem::apps
