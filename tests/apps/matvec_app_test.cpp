#include "apps/matvec_app.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::apps {
namespace {

std::vector<double> test_matrix(std::int64_t n) {
  std::vector<double> a(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      a[static_cast<std::size_t>(i * n + j)] =
          (i == j ? 2.0 : 0.0) + 0.01 * (i + j);
  return a;
}

TEST(MatVecApp, ComputesCorrectProduct) {
  const std::int64_t n = 16;
  MatVecApp app(n);
  app.load_matrix(test_matrix(n));
  std::vector<double> x(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k)
    x[static_cast<std::size_t>(k)] = 1.0 + 0.5 * k;
  std::vector<double> y(static_cast<std::size_t>(n));
  const auto report = app.run(x, y);
  EXPECT_TRUE(report.verified);
}

TEST(MatVecApp, CycleCountIsMatrixOverLanesPlusLatency) {
  const std::int64_t n = 32;
  MatVecApp app(n, 2, 4, /*latency=*/14);
  app.load_matrix(test_matrix(n));
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n));
  const auto report = app.run(x, y);
  EXPECT_EQ(report.parallel_reads, static_cast<std::uint64_t>(n * n / 8));
  EXPECT_EQ(report.cycles, static_cast<std::uint64_t>(n * n / 8 + 14));
  EXPECT_GT(report.elements_per_cycle(), 7.0);  // near the 8-lane bound
}

TEST(MatVecApp, SixteenLaneVariantDoublesThroughput) {
  const std::int64_t n = 32;
  MatVecApp app(n, 2, 8);
  app.load_matrix(test_matrix(n));
  std::vector<double> x(static_cast<std::size_t>(n), 2.0);
  std::vector<double> y(static_cast<std::size_t>(n));
  const auto report = app.run(x, y);
  EXPECT_TRUE(report.verified);
  EXPECT_GT(report.elements_per_cycle(), 12.0);
}

TEST(MatVecApp, Validation) {
  EXPECT_THROW(MatVecApp(12), InvalidArgument);  // 12 % 8 != 0
  MatVecApp app(8);
  app.load_matrix(test_matrix(8));
  std::vector<double> bad(4), y(8);
  EXPECT_THROW(app.run(bad, y), InvalidArgument);
}

TEST(MatVecApp, LinearityProperty) {
  // A(ax) == a(Ax): run twice and compare (exercises determinism too).
  const std::int64_t n = 16;
  MatVecApp app(n);
  app.load_matrix(test_matrix(n));
  std::vector<double> x(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k)
    x[static_cast<std::size_t>(k)] = 0.25 * k - 1.0;
  std::vector<double> x2(x);
  for (auto& v : x2) v *= 3.0;
  std::vector<double> y(static_cast<std::size_t>(n)),
      y2(static_cast<std::size_t>(n));
  app.run(x, y);
  app.run(x2, y2);
  for (std::int64_t k = 0; k < n; ++k)
    EXPECT_NEAR(y2[static_cast<std::size_t>(k)],
                3.0 * y[static_cast<std::size_t>(k)], 1e-9);
}

}  // namespace
}  // namespace polymem::apps
