#include "apps/stencil_app.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::apps {
namespace {

std::vector<double> smooth_grid(std::int64_t n) {
  std::vector<double> g(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      g[static_cast<std::size_t>(i * n + j)] =
          0.3 * i - 0.7 * j + 0.013 * i * j;
  return g;
}

TEST(StencilApp, VerifiesAgainstHostReference) {
  StencilApp app(16);
  app.load_grid(smooth_grid(16));
  const auto report = app.run();
  EXPECT_TRUE(report.verified);
  EXPECT_GT(report.parallel_reads, 0u);
  EXPECT_EQ(report.parallel_reads, 4 * report.parallel_writes);
}

TEST(StencilApp, PipelineThroughputOneReadPerCycle) {
  StencilApp app(24, /*latency=*/14);
  app.load_grid(smooth_grid(24));
  const auto report = app.run();
  // cycles ~= reads + latency + 2 (fully pipelined gather).
  EXPECT_LE(report.cycles, report.parallel_reads + 14 + 2);
  // 10 scalar accesses per output element vs 5 parallel accesses per
  // 8-element tile: speedup 80/5 = 16x over scalar.
  EXPECT_GT(report.speedup_vs_scalar(), 12.0);
}

TEST(StencilApp, OutputMatchesPointwise) {
  StencilApp app(8);
  const auto grid = smooth_grid(8);
  app.load_grid(grid);
  app.run();
  // Interior point (2, 2): mean over its 3x3 neighbourhood.
  double sum = 0;
  for (int di = -1; di <= 1; ++di)
    for (int dj = -1; dj <= 1; ++dj)
      sum += grid[static_cast<std::size_t>((2 + di) * 8 + 2 + dj)];
  EXPECT_NEAR(app.output(2, 2), sum / 9.0, 1e-12);
}

TEST(StencilApp, RejectsBadSizes) {
  EXPECT_THROW(StencilApp(6), InvalidArgument);   // too small
  EXPECT_THROW(StencilApp(14), InvalidArgument);  // 14 % 4 != 0
  StencilApp app(8);
  std::vector<double> wrong(10);
  EXPECT_THROW(app.load_grid(wrong), InvalidArgument);
}

}  // namespace
}  // namespace polymem::apps
