// Histogram scatter-add: host-oracle verification through the software
// cache's scalar-fallback path, provoked linter diagnostics, and the
// scheme-dependent replay of the recorded column trace.
#include "apps/histogram_app.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "replay/replay.hpp"

namespace polymem::apps {
namespace {

using verify::LintKind;

bool has_kind(const verify::LintReport& report, LintKind kind) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [kind](const auto& d) { return d.kind == kind; });
}

TEST(HistogramApp, VerifiesAgainstHostHistogram) {
  HistogramScatterApp app(32, 8);
  const AppReport report = app.run(512, 99);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.parallel_reads, 512u);
  EXPECT_EQ(report.parallel_writes, 512u);

  std::uint64_t total = 0;
  for (std::int64_t b = 0; b < app.n_bins(); ++b) total += app.bin_total(b);
  EXPECT_EQ(total, 512u);
}

TEST(HistogramApp, ColumnUpdatesTakeTheScalarFallbackPath) {
  HistogramScatterApp app(32, 8);  // ReRo: columns unsupported
  const AppReport report = app.run(128, 7);
  ASSERT_TRUE(report.verified);
  // 1-wide blocks can never use the batched row path: every one of the
  // 2 * samples * L touched elements costs one kernel PolyMem access.
  EXPECT_EQ(app.stats().kernel_accesses, report.elements_touched);
  // Which makes the realised bandwidth scalar, not parallel.
  EXPECT_LE(report.elements_per_cycle(), 1.0);
}

TEST(HistogramApp, ProvokesConflictDiagnostics) {
  HistogramScatterApp app(32, 8);
  ASSERT_TRUE(app.run(512, 3).verified);
  const verify::LintReport& lint = app.lint_report();

  // The parallel formulation (column batches on ReRo) is refuted: an
  // unsupported-pattern error with a concrete bank-conflict witness,
  // plus the write->read hazard on the repeated hot anchor and the
  // skewed stream's bank-imbalance warning.
  EXPECT_GT(lint.errors(), 0u);
  EXPECT_TRUE(has_kind(lint, LintKind::kUnsupportedPattern));
  EXPECT_TRUE(has_kind(lint, LintKind::kBankConflict));
  EXPECT_TRUE(has_kind(lint, LintKind::kReadAfterWrite));
  EXPECT_TRUE(has_kind(lint, LintKind::kBankImbalance));
}

TEST(HistogramApp, ColumnCapableSchemeClearsTheDiagnostics) {
  HistogramScatterApp app(32, 8, maf::Scheme::kRoCo);
  ASSERT_TRUE(app.run(512, 3).verified);
  const verify::LintReport& lint = app.lint_report();
  EXPECT_EQ(lint.errors(), 0u);
  EXPECT_FALSE(has_kind(lint, LintKind::kUnsupportedPattern));
}

TEST(HistogramApp, RecordedTraceReplaysFallbackOnReRoBatchedOnRoCo) {
  HistogramScatterApp app(32, 8);
  auto recorder = app.make_recorder();
  app.set_recorder(&recorder);
  ASSERT_TRUE(app.run(96, 21).verified);
  const sched::RecordedTrace trace = recorder.finish();
  ASSERT_FALSE(trace.ops.empty());

  replay::ReplayOptions rero;
  rero.scheme = maf::Scheme::kReRo;
  const auto on_rero = replay::replay(trace, rero);
  EXPECT_TRUE(on_rero.verified());
  EXPECT_EQ(on_rero.batched_accesses, 0);
  EXPECT_EQ(on_rero.fallback_accesses, 2 * 96);

  replay::ReplayOptions roco;
  roco.scheme = maf::Scheme::kRoCo;
  const auto on_roco = replay::replay(trace, roco);
  EXPECT_TRUE(on_roco.verified());
  EXPECT_EQ(on_roco.fallback_accesses, 0);
  EXPECT_EQ(on_roco.batched_accesses, 2 * 96);
}

TEST(HistogramApp, RejectsIndivisibleBinLayout) {
  EXPECT_THROW(HistogramScatterApp(30, 8), Error);
  EXPECT_THROW(HistogramScatterApp(0, 8), Error);
}

}  // namespace
}  // namespace polymem::apps
