// Tiled GEMM: exact host-oracle verification on every scheme, recorder
// round trip, and the aligned-anchor property that makes the kernel
// scheme-agnostic.
#include "apps/tiled_gemm_app.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "replay/replay.hpp"

namespace polymem::apps {
namespace {

std::vector<double> ramp(std::int64_t n, double scale, double offset) {
  std::vector<double> v(static_cast<std::size_t>(n * n));
  for (std::size_t k = 0; k < v.size(); ++k)
    v[k] = scale * static_cast<double>(k % 23) + offset;
  return v;
}

TEST(TiledGemmApp, VerifiesAgainstHostGemmOnEveryScheme) {
  const std::int64_t n = 8;
  for (maf::Scheme scheme : maf::kAllSchemes) {
    TiledGemmApp app(n, scheme);
    app.load(ramp(n, 0.5, -2.0), ramp(n, 0.25, 1.0));
    const AppReport report = app.run();
    EXPECT_TRUE(report.verified) << maf::scheme_name(scheme);
    EXPECT_EQ(report.parallel_writes,
              static_cast<std::uint64_t>((n / 2) * (n / 4)));
    EXPECT_GT(report.elements_per_cycle(), 1.0) << maf::scheme_name(scheme);
  }
}

TEST(TiledGemmApp, ComputesKnownProduct) {
  const std::int64_t n = 8;
  TiledGemmApp app(n);
  // A = I scaled by 3, B = ramp: C(i, j) == 3 * B(i, j).
  std::vector<double> a(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i)
    a[static_cast<std::size_t>(i * n + i)] = 3.0;
  const std::vector<double> b = ramp(n, 1.0, 0.0);
  app.load(a, b);
  EXPECT_TRUE(app.run().verified);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      EXPECT_EQ(app.c_at(i, j),
                3.0 * b[static_cast<std::size_t>(i * n + j)]);
}

TEST(TiledGemmApp, RecordedTraceReplaysOnAllSchemes) {
  const std::int64_t n = 8;
  TiledGemmApp app(n);
  auto recorder = app.make_recorder();
  app.set_recorder(&recorder);
  app.load(ramp(n, 1.0, 0.0), ramp(n, 2.0, -1.0));
  ASSERT_TRUE(app.run().verified);
  const sched::RecordedTrace trace = recorder.finish();
  EXPECT_GT(trace.ops.size(), 0u);

  // Every anchor the kernel issues sits on the aligned lattice, so the
  // trace is fully batched on EVERY scheme — including aligned-only
  // RoCo rectangles.
  const sched::AccessTrace flat = trace.access_trace();
  ASSERT_TRUE(flat.has_origins());
  EXPECT_TRUE(flat.origins_aligned());
  for (maf::Scheme scheme : maf::kAllSchemes) {
    replay::ReplayOptions options;
    options.scheme = scheme;
    const replay::ReplayReport report = replay::replay(trace, options);
    EXPECT_TRUE(report.verified()) << maf::scheme_name(scheme);
    EXPECT_EQ(report.fallback_accesses, 0) << maf::scheme_name(scheme);
    EXPECT_EQ(report.checksums_checked,
              static_cast<std::int64_t>(trace.ops.size()));
  }
}

TEST(TiledGemmApp, RejectsIndivisibleSizes) {
  EXPECT_THROW(TiledGemmApp(6), Error);   // not a multiple of q = 4
  EXPECT_THROW(TiledGemmApp(10), Error);  // not a multiple of q = 4
}

}  // namespace
}  // namespace polymem::apps
