#include "hw/clock.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::hw {
namespace {

TEST(ClockDomain, CountsCycles) {
  ClockDomain clk(120e6);
  clk.tick();
  clk.tick(9);
  EXPECT_EQ(clk.cycles(), 10u);
}

TEST(ClockDomain, ConvertsCyclesToTime) {
  ClockDomain clk(120e6);  // the paper's STREAM design clock
  clk.tick(120);
  EXPECT_DOUBLE_EQ(clk.elapsed_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(clk.elapsed_ns(), 1000.0);
  EXPECT_DOUBLE_EQ(clk.seconds_for(120'000'000), 1.0);
}

TEST(ClockDomain, Reset) {
  ClockDomain clk(100e6);
  clk.tick(5);
  clk.reset();
  EXPECT_EQ(clk.cycles(), 0u);
}

TEST(ClockDomain, RejectsNonPositiveFrequency) {
  EXPECT_THROW(ClockDomain(0), InvalidArgument);
  EXPECT_THROW(ClockDomain(-1), InvalidArgument);
}

}  // namespace
}  // namespace polymem::hw
