#include "hw/crossbar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "hw/bram.hpp"

namespace polymem::hw {
namespace {

TEST(Crossbar, ShuffleRoutesBySelect) {
  const std::vector<int> in = {10, 11, 12, 13};
  const std::vector<unsigned> sel = {2, 0, 3, 1};
  std::vector<int> out(4);
  shuffle<int>(in, sel, out);
  EXPECT_EQ(out, (std::vector<int>{12, 10, 13, 11}));
}

TEST(Crossbar, InverseShuffleScattersBySelect) {
  const std::vector<int> in = {10, 11, 12, 13};
  const std::vector<unsigned> sel = {2, 0, 3, 1};
  std::vector<int> out(4);
  inverse_shuffle<int>(in, sel, out);
  // out[sel[k]] = in[k]: out[2]=10, out[0]=11, out[3]=12, out[1]=13.
  EXPECT_EQ(out, (std::vector<int>{11, 13, 10, 12}));
}

TEST(Crossbar, ShuffleAfterInverseShuffleIsIdentity) {
  // The paper pairs a regular Shuffle (read path) with an Inverse Shuffle
  // (write path) so data written in canonical order reads back in
  // canonical order. Property-checked over random permutations.
  std::mt19937 rng(7);
  for (unsigned lanes : {1u, 2u, 8u, 16u, 32u}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<unsigned> sel(lanes);
      std::iota(sel.begin(), sel.end(), 0u);
      std::shuffle(sel.begin(), sel.end(), rng);
      std::vector<Word> data(lanes), banked(lanes), restored(lanes);
      for (unsigned k = 0; k < lanes; ++k) data[k] = 1000 + k;
      inverse_shuffle<Word>(data, sel, banked);
      shuffle<Word>(banked, sel, restored);
      EXPECT_EQ(restored, data) << "lanes=" << lanes;
    }
  }
}

TEST(Crossbar, NonPermutationSelectRejected) {
  const std::vector<int> in = {1, 2, 3};
  std::vector<int> out(3);
  EXPECT_THROW(shuffle<int>(in, std::vector<unsigned>{0, 0, 1}, out),
               InvalidArgument);
  EXPECT_THROW(shuffle<int>(in, std::vector<unsigned>{0, 1, 3}, out),
               InvalidArgument);
  EXPECT_THROW(inverse_shuffle<int>(in, std::vector<unsigned>{2, 2, 2}, out),
               InvalidArgument);
}

TEST(Crossbar, SizeMismatchRejected) {
  const std::vector<int> in = {1, 2, 3};
  std::vector<int> out(2);
  EXPECT_THROW(shuffle<int>(in, std::vector<unsigned>{0, 1, 2}, out),
               InvalidArgument);
}

TEST(Crossbar, CrosspointsQuadratic) {
  // The resource model relies on full-crossbar quadratic growth
  // (paper Sec. IV-C: supra-linear logic increase when doubling lanes).
  EXPECT_EQ(crossbar_crosspoints(8), 64u);
  EXPECT_EQ(crossbar_crosspoints(16), 256u);
  EXPECT_EQ(crossbar_crosspoints(16), 4 * crossbar_crosspoints(8));
}

}  // namespace
}  // namespace polymem::hw
