#include "hw/benes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "common/error.hpp"
#include "hw/bram.hpp"
#include "hw/crossbar.hpp"

namespace polymem::hw {
namespace {

std::vector<unsigned> identity(unsigned n) {
  std::vector<unsigned> sel(n);
  std::iota(sel.begin(), sel.end(), 0u);
  return sel;
}

TEST(Benes, StageAndSwitchCounts) {
  EXPECT_EQ(benes_stages(2), 1u);
  EXPECT_EQ(benes_stages(4), 3u);
  EXPECT_EQ(benes_stages(8), 5u);
  EXPECT_EQ(benes_stages(16), 7u);
  EXPECT_EQ(benes_switches(8), 5u * 4);
  EXPECT_EQ(benes_switches(16), 7u * 8);
  // The area argument of the ablation: Benes beats the crossbar from 16
  // lanes up (counting a 2x2 switch as 4 crosspoints).
  EXPECT_LT(4 * benes_switches(16), crossbar_crosspoints(16) + 1);
}

TEST(Benes, IdentityRoutesStraight) {
  const auto sel = identity(8);
  const auto plan = benes_route(sel);
  EXPECT_EQ(plan.lanes, 8u);
  EXPECT_EQ(plan.stages(), 5u);
  std::vector<int> in = {0, 1, 2, 3, 4, 5, 6, 7}, out(8);
  benes_apply<int>(in, plan, out);
  EXPECT_EQ(out, in);
}

TEST(Benes, TwoLaneSwap) {
  const std::vector<unsigned> sel = {1, 0};
  const auto plan = benes_route(sel);
  EXPECT_EQ(plan.stages(), 1u);
  std::vector<int> in = {10, 20}, out(2);
  benes_apply<int>(in, plan, out);
  EXPECT_EQ(out, (std::vector<int>{20, 10}));
}

TEST(Benes, SingleLaneDegenerate) {
  const std::vector<unsigned> sel = {0};
  const auto plan = benes_route(sel);
  EXPECT_EQ(plan.stages(), 0u);
  std::vector<int> in = {42}, out(1);
  benes_apply<int>(in, plan, out);
  EXPECT_EQ(out[0], 42);
}

TEST(Benes, MatchesCrossbarOnAllPermutationsOf4) {
  // Exhaustive: every permutation of 4 lanes routes correctly.
  std::vector<unsigned> sel = identity(4);
  std::vector<Word> in = {100, 101, 102, 103};
  do {
    const auto plan = benes_route(sel);
    std::vector<Word> via_benes(4), via_xbar(4);
    benes_apply<Word>(in, plan, via_benes);
    shuffle<Word>(in, sel, via_xbar);
    EXPECT_EQ(via_benes, via_xbar);
  } while (std::next_permutation(sel.begin(), sel.end()));
}

TEST(Benes, MatchesCrossbarOnRandomPermutations) {
  std::mt19937 rng(11);
  for (unsigned lanes : {8u, 16u, 32u, 64u}) {
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<unsigned> sel = identity(lanes);
      std::shuffle(sel.begin(), sel.end(), rng);
      const auto plan = benes_route(sel);
      EXPECT_EQ(plan.switches(), benes_switches(lanes));
      std::vector<Word> in(lanes), via_benes(lanes), via_xbar(lanes);
      for (unsigned k = 0; k < lanes; ++k) in[k] = 1000 + k;
      benes_apply<Word>(in, plan, via_benes);
      shuffle<Word>(in, sel, via_xbar);
      ASSERT_EQ(via_benes, via_xbar) << "lanes=" << lanes;
    }
  }
}

TEST(Benes, RoutesTheMafReorderingSignals) {
  // The real workload: bank-select permutations produced by the MAFs are
  // routable (of course — Benes is rearrangeable — but this pins the
  // integration the ablation talks about).
  const std::vector<unsigned> rero_row_banks = {4, 5, 6, 7, 0, 1, 2, 3};
  const auto plan = benes_route(rero_row_banks);
  std::vector<Word> in = {0, 1, 2, 3, 4, 5, 6, 7}, out(8);
  benes_apply<Word>(in, plan, out);
  EXPECT_EQ(out, (std::vector<Word>{4, 5, 6, 7, 0, 1, 2, 3}));
}

TEST(Benes, RejectsBadInputs) {
  EXPECT_THROW(benes_route(std::vector<unsigned>{0, 1, 2}),
               InvalidArgument);  // not a power of two
  EXPECT_THROW(benes_route(std::vector<unsigned>{0, 0, 1, 1}),
               InvalidArgument);  // not a permutation
  EXPECT_THROW(benes_route(std::vector<unsigned>{}), InvalidArgument);
  const auto plan = benes_route(identity(4));
  std::vector<int> in(4), wrong(3);
  EXPECT_THROW(benes_apply<int>(in, plan, wrong), InvalidArgument);
}

}  // namespace
}  // namespace polymem::hw
