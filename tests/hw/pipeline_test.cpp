#include "hw/pipeline.hpp"

#include <gtest/gtest.h>

namespace polymem::hw {
namespace {

TEST(DelayLine, ZeroLatencyPassesThrough) {
  DelayLine<int> d(0);
  EXPECT_EQ(d.tick(7), 7);
  EXPECT_EQ(d.tick(std::nullopt), std::nullopt);
}

TEST(DelayLine, ValueEmergesAfterLatencyTicks) {
  // The paper's STREAM design sees its PolyMem read data 14 cycles after
  // issue; this is the mechanism.
  DelayLine<int> d(14);
  EXPECT_EQ(d.latency(), 14u);
  auto out = d.tick(99);  // issued at cycle 0
  EXPECT_EQ(out, std::nullopt);
  for (int cycle = 1; cycle < 14; ++cycle)
    EXPECT_EQ(d.tick(std::nullopt), std::nullopt) << "cycle " << cycle;
  EXPECT_EQ(d.tick(std::nullopt), 99);  // cycle 14
}

TEST(DelayLine, FullyPipelinedThroughput) {
  // One value in, one value out, every cycle once the pipe is primed.
  DelayLine<int> d(3);
  std::vector<int> received;
  for (int v = 0; v < 10; ++v)
    if (auto out = d.tick(v)) received.push_back(*out);
  // Values 0..6 have emerged (7, 8, 9 still in flight).
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(d.in_flight(), 3u);
}

TEST(DelayLine, BubblesPropagate) {
  DelayLine<int> d(2);
  d.tick(1);
  d.tick(std::nullopt);  // bubble
  EXPECT_EQ(d.tick(3), 1);
  EXPECT_EQ(d.tick(std::nullopt), std::nullopt);  // the bubble
  EXPECT_EQ(d.tick(std::nullopt), 3);
}

TEST(DelayLine, FlushDropsInFlight) {
  DelayLine<int> d(3);
  d.tick(1);
  d.tick(2);
  EXPECT_EQ(d.in_flight(), 2u);
  d.flush();
  EXPECT_EQ(d.in_flight(), 0u);
  for (int c = 0; c < 6; ++c) EXPECT_EQ(d.tick(std::nullopt), std::nullopt);
}

}  // namespace
}  // namespace polymem::hw
