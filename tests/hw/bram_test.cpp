#include "hw/bram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::hw {
namespace {

TEST(BramBank, ZeroInitialised) {
  BramBank b(16);
  for (int a = 0; a < 16; ++a) EXPECT_EQ(b.peek(a), 0u);
}

TEST(BramBank, WriteThenReadBack) {
  BramBank b(16);
  b.begin_cycle();
  b.write(3, 0xDEADBEEF);
  b.begin_cycle();
  EXPECT_EQ(b.read(3), 0xDEADBEEFu);
}

TEST(BramBank, OneReadAndOneWritePerCycleAllowed) {
  BramBank b(16);
  b.begin_cycle();
  b.poke(5, 42);
  EXPECT_EQ(b.read(5), 42u);   // read port
  b.write(6, 7);               // write port, same cycle: fine
  EXPECT_EQ(b.peek(6), 7u);
}

TEST(BramBank, SecondReadSameCycleIsBankConflict) {
  BramBank b(16);
  b.begin_cycle();
  b.read(0);
  EXPECT_THROW(b.read(1), Error);
  // Next cycle the port is free again.
  b.begin_cycle();
  EXPECT_NO_THROW(b.read(1));
}

TEST(BramBank, SecondWriteSameCycleIsBankConflict) {
  BramBank b(16);
  b.begin_cycle();
  b.write(0, 1);
  EXPECT_THROW(b.write(1, 2), Error);
  b.begin_cycle();
  EXPECT_NO_THROW(b.write(1, 2));
}

TEST(BramBank, AddressBoundsChecked) {
  BramBank b(8);
  b.begin_cycle();
  EXPECT_THROW(b.read(8), InvalidArgument);
  EXPECT_THROW(b.write(-1, 0), InvalidArgument);
  EXPECT_THROW(b.peek(100), InvalidArgument);
}

TEST(BramBank, Counters) {
  BramBank b(8);
  for (int c = 0; c < 5; ++c) {
    b.begin_cycle();
    b.read(0);
    if (c % 2 == 0) b.write(1, c);
  }
  EXPECT_EQ(b.total_reads(), 5u);
  EXPECT_EQ(b.total_writes(), 3u);
}

TEST(BramBank, PeekPokeBypassPortAccounting) {
  BramBank b(8);
  b.begin_cycle();
  b.read(0);
  // peek/poke are host backdoors and never conflict.
  EXPECT_NO_THROW(b.peek(0));
  EXPECT_NO_THROW(b.poke(0, 9));
  EXPECT_EQ(b.peek(0), 9u);
}

TEST(BramBank, RejectsEmptyBank) {
  EXPECT_THROW(BramBank(0), InvalidArgument);
}

}  // namespace
}  // namespace polymem::hw
