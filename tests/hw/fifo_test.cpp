#include "hw/fifo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::hw {
namespace {

TEST(Fifo, FifoOrder) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_TRUE(f.try_push(3));
  EXPECT_EQ(f.try_pop(), 1);
  EXPECT_EQ(f.try_pop(), 2);
  EXPECT_EQ(f.try_pop(), 3);
  EXPECT_EQ(f.try_pop(), std::nullopt);
}

TEST(Fifo, BackPressureWhenFull) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.try_push(3));
  EXPECT_EQ(f.size(), 2u);
  f.try_pop();
  EXPECT_TRUE(f.try_push(3));
}

TEST(Fifo, FrontPeeksWithoutPopping) {
  Fifo<int> f(2);
  f.try_push(42);
  EXPECT_EQ(f.front(), 42);
  EXPECT_EQ(f.size(), 1u);
}

TEST(Fifo, FrontOnEmptyThrows) {
  Fifo<int> f(2);
  EXPECT_THROW(f.front(), InvalidArgument);
}

TEST(Fifo, ZeroCapacityRejected) {
  EXPECT_THROW(Fifo<int>(0), InvalidArgument);
}

TEST(Fifo, MoveOnlyPayload) {
  Fifo<std::unique_ptr<int>> f(2);
  EXPECT_TRUE(f.try_push(std::make_unique<int>(5)));
  auto v = f.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace polymem::hw
