#include "adapt/policy.hpp"

#include <gtest/gtest.h>

namespace polymem::adapt {
namespace {

using access::PatternKind;
using maf::Scheme;
using maf::SupportLevel;

// All policy tests run at the 2x4 geometry of the machine-checked
// support table: rows are served (kAny) by ReRo and RoCo, cols by ReCo
// and RoCo, main diagonals by ReRo and ReCo.
MigrationPolicy make_policy(PolicyOptions opts = {},
                            std::int64_t cells = 64 * 64) {
  return MigrationPolicy(2, 4, cells, opts);
}

WindowProfile pure_window(PatternKind kind, std::int64_t accesses,
                          std::int64_t aligned = 0) {
  WindowProfile w;
  w.accesses = accesses;
  w.reads = accesses;
  w.kinds[static_cast<std::size_t>(kind)].reads = accesses;
  w.kinds[static_cast<std::size_t>(kind)].aligned = aligned;
  return w;
}

TEST(MigrationPolicy, SupportMatchesMachineCheckedTable) {
  const MigrationPolicy policy = make_policy();
  EXPECT_EQ(policy.support(Scheme::kReRo, PatternKind::kRow),
            SupportLevel::kAny);
  EXPECT_EQ(policy.support(Scheme::kRoCo, PatternKind::kRow),
            SupportLevel::kAny);
  EXPECT_EQ(policy.support(Scheme::kReCo, PatternKind::kCol),
            SupportLevel::kAny);
  EXPECT_EQ(policy.support(Scheme::kReRo, PatternKind::kMainDiag),
            SupportLevel::kAny);
  EXPECT_EQ(policy.support(Scheme::kReCo, PatternKind::kMainDiag),
            SupportLevel::kAny);
  // ReO is the rectangle-only baseline; ReTr is the only scheme that
  // serves transposed rectangles.
  EXPECT_EQ(policy.support(Scheme::kReO, PatternKind::kRow),
            SupportLevel::kNone);
  EXPECT_EQ(policy.support(Scheme::kReTr, PatternKind::kTRect),
            SupportLevel::kAny);
  EXPECT_EQ(policy.support(Scheme::kReO, PatternKind::kRect),
            SupportLevel::kAny);
}

TEST(MigrationPolicy, WindowCostChargesFallbackPerLane) {
  const MigrationPolicy policy = make_policy();
  const WindowProfile w = pure_window(PatternKind::kCol, 1024);
  // ReCo serves cols at 1 slot per access; ReRo cannot and pays the
  // 8-lane scalar fallback per access.
  EXPECT_DOUBLE_EQ(policy.window_cost(Scheme::kReCo, w), 1024.0);
  EXPECT_DOUBLE_EQ(policy.window_cost(Scheme::kReRo, w), 1024.0 * 8);
}

TEST(MigrationPolicy, AlignedSupportSplitsByAlignedShare) {
  const MigrationPolicy policy = make_policy();
  // RoCo serves rects only when aligned: 100 aligned + 28 unaligned.
  const WindowProfile w = pure_window(PatternKind::kRect, 128, 100);
  ASSERT_EQ(policy.support(Scheme::kRoCo, PatternKind::kRect),
            SupportLevel::kAligned);
  EXPECT_DOUBLE_EQ(policy.window_cost(Scheme::kRoCo, w), 100.0 + 28.0 * 8);
}

TEST(MigrationPolicy, ScoreRatesAllSchemesInOrder) {
  const MigrationPolicy policy = make_policy();
  const auto scores = policy.score(pure_window(PatternKind::kRow, 256));
  ASSERT_EQ(scores.size(), std::size(maf::kAllSchemes));
  for (std::size_t k = 0; k < scores.size(); ++k) {
    EXPECT_EQ(scores[k].scheme, maf::kAllSchemes[k]);
    EXPECT_TRUE(scores[k].available) << "scheme index " << k;
  }
}

TEST(MigrationPolicy, MigrationCostIsOneFullCopy) {
  const MigrationPolicy policy = make_policy({}, /*cells=*/4096);
  EXPECT_DOUBLE_EQ(policy.migration_cost_accesses(), 2.0 * 4096 / 8);
}

TEST(MigrationPolicy, DecideWaitsForPersistenceThenFires) {
  PolicyOptions opts;
  opts.persistence = 2;
  MigrationPolicy policy = make_policy(opts);
  const WindowProfile cols = pure_window(PatternKind::kCol, 4096);
  // Window 1 elects a col-friendly scheme but the streak is too short.
  EXPECT_EQ(policy.decide(Scheme::kReRo, cols), std::nullopt);
  // Window 2, same winner: fire. The winner must actually serve cols.
  const auto target = policy.decide(Scheme::kReRo, cols);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(policy.support(*target, PatternKind::kCol), SupportLevel::kAny);
  // The streak was consumed by the decision.
  EXPECT_EQ(policy.decide(Scheme::kReRo, cols), std::nullopt);
}

TEST(MigrationPolicy, NoMigrationWhenCurrentAlreadyWins) {
  PolicyOptions opts;
  opts.persistence = 1;
  MigrationPolicy policy = make_policy(opts);
  const WindowProfile rows = pure_window(PatternKind::kRow, 4096);
  EXPECT_EQ(policy.decide(Scheme::kReRo, rows), std::nullopt);
}

TEST(MigrationPolicy, PaybackVetoesSmallWins) {
  PolicyOptions opts;
  opts.persistence = 1;
  opts.payback_windows = 1.0;
  // Huge matrix: one copy costs 2 * 2^20 / 8 = 262144 slots; a 4096-
  // access window can win at most 4096 * 7 = 28672. Vetoed.
  MigrationPolicy policy = make_policy(opts, /*cells=*/1 << 20);
  EXPECT_EQ(policy.decide(Scheme::kReRo, pure_window(PatternKind::kCol, 4096)),
            std::nullopt);
  // The same mix on a small matrix pays back immediately.
  MigrationPolicy small = make_policy(opts, /*cells=*/4096);
  EXPECT_TRUE(
      small.decide(Scheme::kReRo, pure_window(PatternKind::kCol, 4096))
          .has_value());
}

TEST(MigrationPolicy, ChangingWinnerRestartsTheStreak) {
  PolicyOptions opts;
  opts.persistence = 2;
  MigrationPolicy policy = make_policy(opts);
  EXPECT_EQ(policy.decide(Scheme::kReO, pure_window(PatternKind::kCol, 4096)),
            std::nullopt);
  // Different winner in the next window (only ReTr serves transposed
  // rectangles, and it does not serve cols): streak restarts at 1.
  EXPECT_EQ(policy.decide(Scheme::kReO, pure_window(PatternKind::kTRect, 4096)),
            std::nullopt);
  EXPECT_EQ(policy.decide(Scheme::kReO, pure_window(PatternKind::kCol, 4096)),
            std::nullopt);
  EXPECT_TRUE(
      policy.decide(Scheme::kReO, pure_window(PatternKind::kCol, 4096))
          .has_value());
}

TEST(MigrationPolicy, ResetClearsTheStreak) {
  PolicyOptions opts;
  opts.persistence = 2;
  MigrationPolicy policy = make_policy(opts);
  const WindowProfile cols = pure_window(PatternKind::kCol, 4096);
  EXPECT_EQ(policy.decide(Scheme::kReRo, cols), std::nullopt);
  policy.reset();
  EXPECT_EQ(policy.decide(Scheme::kReRo, cols), std::nullopt);
  EXPECT_TRUE(policy.decide(Scheme::kReRo, cols).has_value());
}

TEST(MigrationPolicy, EmptyWindowIsANoOp) {
  PolicyOptions opts;
  opts.persistence = 1;
  MigrationPolicy policy = make_policy(opts);
  EXPECT_EQ(policy.decide(Scheme::kReRo, WindowProfile{}), std::nullopt);
}

}  // namespace
}  // namespace polymem::adapt
