// Copy-forward concurrency hammer (runs under TSan in CI's explicit
// concurrency gate): writer threads own disjoint row bands and demand
// read-your-writes while a migrator thread cycles the scheme under
// them. Forwarding must carry every in-flight write into the winning
// epoch — a lost forward shows up as a stale read or a final-image
// mismatch, a protocol race as a TSan report, and a copy bug as a
// nonzero differential-oracle count.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/adaptive_matrix.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::adapt {
namespace {

using access::PatternKind;
using core::AccessBatch;
using maf::Scheme;

constexpr std::int64_t kBandRows = 16;  // per writer thread
constexpr unsigned kWriters = 4;
constexpr int kIters = 40;

core::Word cell_value(unsigned writer, int iter, std::size_t k) {
  return runtime::derive_seed(writer * 1000003u + static_cast<unsigned>(iter),
                              k);
}

TEST(MigrationHammer, ReadYourWritesAcrossLiveMigrations) {
  core::PolyMemConfig cfg;
  cfg.scheme = Scheme::kReRo;
  cfg.p = 2;
  cfg.q = 4;
  cfg.height = kBandRows * kWriters;
  cfg.width = 64;

  AdaptiveOptions opts;
  opts.adapt = false;  // the migrator thread drives migrations explicitly
  runtime::ThreadPool pool(2);
  opts.pool = &pool;
  AdaptiveMatrix mat(cfg, opts);

  // One full-band batch per writer: 16 rows x 8 row-accesses, 1024
  // words. Supported by some schemes (compiled) and not others
  // (fallback) — both paths stay under the hammer as the scheme flips.
  const auto band_batch = [](unsigned w) {
    return AccessBatch{PatternKind::kRow,
                       {static_cast<std::int64_t>(w) * kBandRows, 0},
                       {0, 8},
                       8,
                       {1, 0},
                       kBandRows};
  };

  std::atomic<bool> stop{false};
  std::atomic<int> stale_reads{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const AccessBatch batch = band_batch(w);
      const auto words = static_cast<std::size_t>(batch.count()) * 8;
      std::vector<core::Word> data(words), got(words);
      for (int iter = 0; iter < kIters; ++iter) {
        for (std::size_t k = 0; k < words; ++k) {
          data[k] = cell_value(w, iter, k);
        }
        mat.write_batch(batch, data);
        // Nobody else writes this band, so the engine's serialization
        // plus migration forwarding must make the write-back visible —
        // across any number of epoch flips in between.
        mat.read_batch(batch, got);
        if (got != data) stale_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // A scalar reader sweeping the whole space: epoch flips must never
  // tear or fault a concurrent load (values are owned by the writers,
  // so only liveness and memory-safety are asserted here).
  std::thread reader([&] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::int64_t j = 0; j < cfg.width; j += 8) {
        (void)mat.load({i, j});
      }
      i = (i + 1) % cfg.height;
    }
  });

  // The migrator cycles every scheme; migrate_to simply refuses while a
  // migration is already running.
  std::thread migrator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (maf::Scheme s : maf::kAllSchemes) {
        mat.migrate_to(s);
        std::this_thread::yield();
      }
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  migrator.join();
  reader.join();
  mat.wait_idle();

  EXPECT_EQ(stale_reads.load(), 0);

  // Final image: every band holds its owner's last iteration.
  for (unsigned w = 0; w < kWriters; ++w) {
    const AccessBatch batch = band_batch(w);
    const auto words = static_cast<std::size_t>(batch.count()) * 8;
    std::vector<core::Word> got(words);
    mat.read_batch(batch, got);
    int mismatches = 0;
    for (std::size_t k = 0; k < words; ++k) {
      if (got[k] != cell_value(w, kIters - 1, k)) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0) << "writer " << w;
  }

  const auto s = mat.stats();
  // Every completed migration passed its differential oracle; aborts
  // can only come from a mismatch in this test, so there are none.
  EXPECT_EQ(s.mismatched_words, 0u);
  EXPECT_EQ(s.migrations_aborted, 0u);
  EXPECT_GE(s.migrations_completed, 1u);
  EXPECT_EQ(s.epoch, s.migrations_completed);
}

}  // namespace
}  // namespace polymem::adapt
