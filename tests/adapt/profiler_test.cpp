#include "adapt/profiler.hpp"

#include <gtest/gtest.h>

namespace polymem::adapt {
namespace {

using access::Coord;
using access::PatternKind;

TEST(RunAligned, AnchorAndStrideMustBothAlign) {
  // p=2, q=4: aligned anchors have i % 2 == 0 and j % 4 == 0.
  EXPECT_TRUE(run_aligned(2, 4, {0, 0}, {2, 0}));
  EXPECT_TRUE(run_aligned(2, 4, {4, 8}, {0, 4}));
  EXPECT_FALSE(run_aligned(2, 4, {1, 0}, {2, 0}));  // odd anchor row
  EXPECT_FALSE(run_aligned(2, 4, {0, 2}, {2, 0}));  // anchor col % 4 != 0
  EXPECT_FALSE(run_aligned(2, 4, {0, 0}, {1, 0}));  // stride breaks rows
  EXPECT_FALSE(run_aligned(2, 4, {0, 0}, {0, 2}));  // stride breaks cols
}

TEST(AccessProfiler, SealsWindowAtConfiguredSize) {
  ProfilerOptions opts;
  opts.window = 8;
  AccessProfiler prof(2, 4, opts);
  for (int k = 0; k < 7; ++k) {
    prof.observe(false, {PatternKind::kRow, {0, 0}});
    EXPECT_FALSE(prof.window_ready());
  }
  prof.observe(true, {PatternKind::kCol, {0, 0}});
  ASSERT_TRUE(prof.window_ready());

  const WindowProfile w = prof.take_window();
  EXPECT_FALSE(prof.window_ready());
  EXPECT_EQ(w.accesses, 8);
  EXPECT_EQ(w.reads, 7);
  EXPECT_EQ(w.writes, 1);
  EXPECT_EQ(w.sequence, 0);
  EXPECT_EQ(w.of(PatternKind::kRow).reads, 7);
  EXPECT_EQ(w.of(PatternKind::kCol).writes, 1);
  EXPECT_EQ(w.dominant(), PatternKind::kRow);
  EXPECT_EQ(prof.windows_sealed(), 1);
  EXPECT_EQ(prof.accesses_observed(), 8);
}

TEST(AccessProfiler, RunsCountEveryAccessAndClassifyAlignment) {
  ProfilerOptions opts;
  opts.window = 32;
  AccessProfiler prof(2, 4, opts);
  // Aligned run: anchor (0,0), stride (2,0) — every access aligned.
  prof.observe_run(false, PatternKind::kRow, {0, 0}, {2, 0}, 16);
  // Unaligned run: stride 1 leaves odd rows.
  prof.observe_run(false, PatternKind::kRow, {0, 0}, {1, 0}, 16);
  ASSERT_TRUE(prof.window_ready());
  const WindowProfile w = prof.take_window();
  EXPECT_EQ(w.accesses, 32);
  EXPECT_EQ(w.of(PatternKind::kRow).total(), 32);
  EXPECT_EQ(w.of(PatternKind::kRow).aligned, 16);
}

TEST(AccessProfiler, SamplingScalesCountsUnbiased) {
  ProfilerOptions opts;
  opts.window = 16;
  opts.sample_period = 4;
  AccessProfiler prof(2, 4, opts);
  // 16 runs of 4 accesses each = 64 accesses. Windows fill on the
  // unscaled count (4 runs each); one in four runs is recorded, scaled
  // by 4, so every sealed window still estimates its full 16 accesses.
  for (int r = 0; r < 16; ++r) {
    prof.observe_run(false, PatternKind::kMainDiag, {0, 0}, {1, 0}, 4);
  }
  EXPECT_EQ(prof.windows_sealed(), 4);
  EXPECT_EQ(prof.accesses_observed(), 64);
  ASSERT_TRUE(prof.window_ready());
  const WindowProfile w = prof.take_window();
  EXPECT_EQ(w.accesses, 16);
  EXPECT_EQ(w.of(PatternKind::kMainDiag).reads, 16);
}

TEST(AccessProfiler, LatestSealedWindowWins) {
  ProfilerOptions opts;
  opts.window = 4;
  AccessProfiler prof(2, 4, opts);
  prof.observe_run(false, PatternKind::kRow, {0, 0}, {1, 0}, 4);
  prof.observe_run(false, PatternKind::kCol, {0, 0}, {0, 1}, 4);
  ASSERT_TRUE(prof.window_ready());
  // Two windows sealed before take: the adaptive loop wants the
  // freshest view, so the col window replaced the row one.
  const WindowProfile w = prof.take_window();
  EXPECT_EQ(w.dominant(), PatternKind::kCol);
  EXPECT_EQ(w.sequence, 1);
  EXPECT_EQ(prof.windows_sealed(), 2);
}

TEST(AccessProfiler, ResetDropsPartialAndPendingWindows) {
  ProfilerOptions opts;
  opts.window = 4;
  AccessProfiler prof(2, 4, opts);
  prof.observe_run(false, PatternKind::kRow, {0, 0}, {1, 0}, 5);
  ASSERT_TRUE(prof.window_ready());
  prof.reset();
  EXPECT_FALSE(prof.window_ready());
  // The next 3 accesses do not seal (the partial access was dropped).
  prof.observe_run(false, PatternKind::kRow, {0, 0}, {1, 0}, 3);
  EXPECT_FALSE(prof.window_ready());
  prof.observe(false, {PatternKind::kRow, {3, 0}});
  EXPECT_TRUE(prof.window_ready());
}

TEST(ProfilingObserver, TeesRecorderAccessesIntoTheProfiler) {
  ProfilerOptions opts;
  opts.window = 2;
  AccessProfiler prof(2, 4, opts);
  ProfilingObserver observer(prof);
  observer.on_access(sched::TraceOp::Dir::kRead,
                     {PatternKind::kRect, {0, 0}});
  observer.on_access(sched::TraceOp::Dir::kWrite,
                     {PatternKind::kRect, {2, 4}});
  ASSERT_TRUE(prof.window_ready());
  const WindowProfile w = prof.take_window();
  EXPECT_EQ(w.of(PatternKind::kRect).reads, 1);
  EXPECT_EQ(w.of(PatternKind::kRect).writes, 1);
}

}  // namespace
}  // namespace polymem::adapt
