#include "adapt/adaptive_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::adapt {
namespace {

using access::Coord;
using access::PatternKind;
using core::AccessBatch;
using maf::Scheme;

core::PolyMemConfig cfg_16x32(Scheme scheme = Scheme::kReRo) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  return c;
}

/// Distinct per-cell fill so any misplaced word is visible.
void fill_cells(AdaptiveMatrix& mat) {
  for (std::int64_t i = 0; i < mat.height(); ++i) {
    for (std::int64_t j = 0; j < mat.width(); ++j) {
      mat.store({i, j}, static_cast<core::Word>(i * 1000 + j));
    }
  }
}

::testing::AssertionResult cells_intact(const AdaptiveMatrix& mat) {
  for (std::int64_t i = 0; i < mat.height(); ++i) {
    for (std::int64_t j = 0; j < mat.width(); ++j) {
      const auto got = mat.load({i, j});
      const auto want = static_cast<core::Word>(i * 1000 + j);
      if (got != want) {
        return ::testing::AssertionFailure()
               << "cell (" << i << ", " << j << "): got " << got
               << ", want " << want;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

AdaptiveOptions static_opts() {
  AdaptiveOptions o;
  o.adapt = false;
  return o;
}

TEST(AdaptiveMatrix, ServesSupportedBatchesCompiledAndRestFallback) {
  AdaptiveMatrix mat(cfg_16x32(), static_opts());
  fill_cells(mat);

  // ReRo serves rows conflict-free: the batched engine path.
  const auto rows = AccessBatch::strided(PatternKind::kRow, {3, 0}, {0, 8}, 4);
  std::vector<core::Word> out(4 * 8);
  mat.read_batch(rows, out);
  for (std::int64_t t = 0; t < 4; ++t) {
    for (std::int64_t l = 0; l < 8; ++l) {
      EXPECT_EQ(out[static_cast<std::size_t>(t * 8 + l)],
                static_cast<core::Word>(3 * 1000 + t * 8 + l));
    }
  }

  // ReRo cannot serve cols: the same call falls back to scalar lanes
  // and still returns the right words.
  const auto cols = AccessBatch::strided(PatternKind::kCol, {0, 5}, {0, 1}, 2);
  std::vector<core::Word> col_out(2 * 8);
  mat.read_batch(cols, col_out);
  for (std::int64_t t = 0; t < 2; ++t) {
    for (std::int64_t l = 0; l < 8; ++l) {
      EXPECT_EQ(col_out[static_cast<std::size_t>(t * 8 + l)],
                static_cast<core::Word>(l * 1000 + 5 + t));
    }
  }

  const auto s = mat.stats();
  EXPECT_EQ(s.batched_accesses, 4u);
  EXPECT_EQ(s.fallback_accesses, 2u);
  EXPECT_EQ(s.reads, 6u);
  EXPECT_TRUE(mat.run_supported(rows));
  EXPECT_FALSE(mat.run_supported(cols));
}

TEST(AdaptiveMatrix, RejectsWrongSpanSizes) {
  AdaptiveMatrix mat(cfg_16x32(), static_opts());
  const auto b = AccessBatch::strided(PatternKind::kRow, {0, 0}, {1, 0}, 2);
  std::vector<core::Word> wrong(8);  // needs 2 * 8
  EXPECT_THROW(mat.read_batch(b, wrong), InvalidArgument);
  EXPECT_THROW(mat.write_batch(b, wrong), InvalidArgument);
}

TEST(AdaptiveMatrix, InlineMigrationIsBitIdenticalAndBumpsEpoch) {
  AdaptiveMatrix mat(cfg_16x32(), static_opts());
  fill_cells(mat);
  ASSERT_EQ(mat.scheme(), Scheme::kReRo);
  ASSERT_EQ(mat.epoch(), 0u);

  EXPECT_TRUE(mat.migrate_to(Scheme::kReCo));
  EXPECT_EQ(mat.scheme(), Scheme::kReCo);
  EXPECT_EQ(mat.epoch(), 1u);
  EXPECT_TRUE(cells_intact(mat));

  // After the flip the new layout serves cols on the compiled path.
  EXPECT_TRUE(mat.run_supported(
      AccessBatch::strided(PatternKind::kCol, {0, 0}, {0, 1}, 4)));

  const auto s = mat.stats();
  EXPECT_EQ(s.migrations_started, 1u);
  EXPECT_EQ(s.migrations_completed, 1u);
  EXPECT_EQ(s.migrations_aborted, 0u);
  EXPECT_EQ(s.mismatched_words, 0u);
  // The differential oracle read back the whole matrix from both epochs.
  EXPECT_EQ(s.verified_words, 16u * 32u);
  ASSERT_EQ(s.history.size(), 1u);
  EXPECT_EQ(s.history[0].from, Scheme::kReRo);
  EXPECT_EQ(s.history[0].to, Scheme::kReCo);
  EXPECT_EQ(s.history[0].epoch, 1u);
  EXPECT_FALSE(s.history[0].aborted);
}

TEST(AdaptiveMatrix, MigrateToActiveSchemeRefuses) {
  AdaptiveMatrix mat(cfg_16x32(), static_opts());
  EXPECT_FALSE(mat.migrate_to(Scheme::kReRo));
  EXPECT_EQ(mat.stats().migrations_started, 0u);
}

TEST(AdaptiveMatrix, InjectedFaultRollsBackWithoutFlipping) {
  AdaptiveMatrix mat(cfg_16x32(), static_opts());
  fill_cells(mat);

  // The copier "crashes" when it reaches band 2: the target epoch is
  // discarded, the active epoch stays authoritative and untouched.
  mat.set_fault_band(2);
  EXPECT_TRUE(mat.migrate_to(Scheme::kReCo));
  EXPECT_EQ(mat.scheme(), Scheme::kReRo);
  EXPECT_EQ(mat.epoch(), 0u);
  EXPECT_TRUE(cells_intact(mat));

  const auto s = mat.stats();
  EXPECT_EQ(s.migrations_started, 1u);
  EXPECT_EQ(s.migrations_completed, 0u);
  EXPECT_EQ(s.migrations_aborted, 1u);
  ASSERT_EQ(s.history.size(), 1u);
  EXPECT_TRUE(s.history[0].aborted);
  EXPECT_EQ(s.history[0].epoch, 0u);

  // The fault hook is one-shot: the retry completes cleanly.
  EXPECT_TRUE(mat.migrate_to(Scheme::kReCo));
  EXPECT_EQ(mat.scheme(), Scheme::kReCo);
  EXPECT_TRUE(cells_intact(mat));
}

TEST(AdaptiveMatrix, AbortOnPoolLeavesAConsistentMatrix) {
  AdaptiveOptions opts = static_opts();
  runtime::ThreadPool pool(1);
  opts.pool = &pool;
  AdaptiveMatrix mat(cfg_16x32(), opts);
  fill_cells(mat);

  EXPECT_TRUE(mat.migrate_to(Scheme::kRoCo));
  mat.abort_migration();  // may land mid-copy or after the flip
  EXPECT_FALSE(mat.migration_in_progress());

  const auto s = mat.stats();
  EXPECT_EQ(s.migrations_started, 1u);
  EXPECT_EQ(s.migrations_completed + s.migrations_aborted, 1u);
  EXPECT_EQ(s.mismatched_words, 0u);
  // Whichever epoch won, the data is whole.
  EXPECT_TRUE(mat.scheme() == Scheme::kReRo || mat.scheme() == Scheme::kRoCo);
  EXPECT_TRUE(cells_intact(mat));
}

TEST(AdaptiveMatrix, AdaptsToAColumnPhaseAndStaysCorrect) {
  AdaptiveOptions opts;
  opts.adapt = true;
  opts.profiler.window = 64;
  opts.policy.persistence = 2;
  AdaptiveMatrix mat(cfg_16x32(), opts);  // inline migrations
  fill_cells(mat);

  // A column phase: 32 cols x 2 anchor rows per pass. ReRo serves none
  // of it, so the policy must elect a col-friendly scheme.
  const auto cols =
      AccessBatch{PatternKind::kCol, {0, 0}, {0, 1}, 32, {8, 0}, 2};
  std::vector<core::Word> out(static_cast<std::size_t>(cols.count()) * 8);
  for (int pass = 0; pass < 8; ++pass) {
    mat.read_batch(cols, out);
  }

  const auto s = mat.stats();
  EXPECT_GE(s.migrations_completed, 1u);
  EXPECT_EQ(s.migrations_aborted, 0u);
  EXPECT_EQ(s.mismatched_words, 0u);
  EXPECT_GE(s.windows_profiled, 2u);
  EXPECT_GT(s.epoch, 0u);
  // The elected scheme serves the column phase on the compiled path.
  EXPECT_TRUE(mat.run_supported(
      AccessBatch::strided(PatternKind::kCol, {0, 0}, {0, 1}, 4)));
  EXPECT_GT(s.batched_accesses, 0u);
  EXPECT_TRUE(cells_intact(mat));
}

TEST(AdaptiveMatrix, FillAndDumpRectRoundTrip) {
  AdaptiveMatrix mat(cfg_16x32(), static_opts());
  std::vector<core::Word> in(4 * 8);
  for (std::size_t k = 0; k < in.size(); ++k) {
    in[k] = static_cast<core::Word>(k + 100);
  }
  mat.fill_rect({2, 8}, 4, 8, in);
  std::vector<core::Word> back(in.size());
  mat.dump_rect({2, 8}, 4, 8, back);
  EXPECT_EQ(in, back);
  EXPECT_EQ(mat.load({2, 8}), 100u);
}

}  // namespace
}  // namespace polymem::adapt
