// Cross-module integration: the complete paper pipeline from scheduler to
// STREAM, exercising core + maf + hw + maxsim + stream + synth together.
#include <gtest/gtest.h>

#include <cmath>

#include "dse/explorer.hpp"
#include "sched/scheduler.hpp"
#include "stream/host.hpp"
#include "synth/fmax_model.hpp"

namespace polymem {
namespace {

TEST(FullSystem, SchedulerChoosesConfigThenPolyMemServesIt) {
  // Sec. III-A flow: pick the best scheme for a row-sweep workload, build
  // the PolyMem, execute the schedule, and verify the data comes back
  // in one parallel access per schedule entry.
  const auto trace = sched::AccessTrace::dense_block({0, 0}, 2, 32);
  const std::vector<std::tuple<maf::Scheme, unsigned, unsigned>> configs = {
      {maf::Scheme::kReO, 2, 4},
      {maf::Scheme::kReRo, 2, 4},
      {maf::Scheme::kReCo, 2, 4}};
  const auto ranking = sched::rank_configurations(trace, configs);
  const auto& best = ranking.front();
  EXPECT_DOUBLE_EQ(best.metrics.efficiency, 1.0);  // dense: all lanes busy

  core::PolyMem mem(core::PolyMemConfig::with_capacity(
      4096, best.scheme, best.p, best.q));
  // Fill with unique values, then replay the schedule.
  for (std::int64_t i = 0; i < mem.config().height; ++i)
    for (std::int64_t j = 0; j < mem.config().width; ++j)
      mem.store({i, j}, static_cast<core::Word>(i * 100 + j));
  std::size_t seen = 0;
  for (const auto& acc : best.schedule.accesses) {
    const auto data = mem.read(acc);
    const auto coords = access::expand(acc, best.p, best.q);
    for (unsigned k = 0; k < data.size(); ++k)
      EXPECT_EQ(data[k],
                static_cast<core::Word>(coords[k].i * 100 + coords[k].j));
    seen += data.size();
  }
  EXPECT_EQ(seen, static_cast<std::size_t>(trace.size()));
}

TEST(FullSystem, StreamCopyBandwidthConsistentWithDseModel) {
  // The STREAM design synthesised at 120MHz, "just 2MHz lower than the
  // maximum clock frequency for a 2048KB configuration with a single read
  // port" — the model's 2048KB/8L/1P RoCo estimate must be in that
  // neighbourhood (the effective complexity of the optimised design).
  const auto& fmax = synth::FmaxModel::paper_calibrated();
  const double model_mhz = fmax.fmax_mhz(
      synth::DsePoint{maf::Scheme::kRoCo, 2048, 8, 1});
  EXPECT_NEAR(model_mhz, 122.0, 15.0);

  // And the measured STREAM Copy bandwidth approaches lanes*2 words/cycle
  // at whatever clock the design runs.
  stream::StreamDesignConfig cfg;
  cfg.vector_capacity = 4096;
  cfg.width = 512;
  stream::StreamHost host(cfg);
  std::vector<double> v(4096, 1.5);
  host.load(v, v, v);
  const auto result = host.run(stream::Mode::kCopy, 4096, 2);
  const double peak = host.theoretical_peak_bytes_per_s(stream::Mode::kCopy);
  EXPECT_GT(result.best_rate_bytes_per_s() / peak, 0.9);
}

TEST(FullSystem, CyclePolyMemThroughputMatchesDseBandwidthFormula) {
  // The DSE bandwidth formula (lanes * 8B * f) presumes one parallel
  // access per cycle; the cycle-accurate model must deliver exactly that.
  auto cfg = core::PolyMemConfig::with_capacity(32 * KiB, maf::Scheme::kReRo,
                                                2, 4);
  core::CyclePolyMem mem(cfg);
  for (std::int64_t i = 0; i < cfg.height; ++i)
    for (std::int64_t j = 0; j < cfg.width; ++j)
      mem.functional().store({i, j}, 7);
  const int accesses = 256;
  int retired = 0;
  while (retired < accesses) {
    if (mem.reads_issued() < static_cast<std::uint64_t>(accesses))
      mem.issue_read(0, {access::PatternKind::kRow,
                         {static_cast<std::int64_t>(mem.reads_issued()) %
                              cfg.height,
                          0}});
    mem.tick();
    if (mem.retire_read(0)) ++retired;
  }
  // cycles == accesses + latency: the pipeline never bubbles.
  EXPECT_EQ(mem.cycles(), static_cast<std::uint64_t>(accesses) +
                              cfg.read_latency);
  const double cycles_per_access =
      static_cast<double>(mem.cycles()) / accesses;
  EXPECT_LT(cycles_per_access, 1.1);
}

TEST(FullSystem, PaperHeadlineNumbersEndToEnd) {
  // One test tying the three headline claims together.
  // 1. Peak read bandwidth > 32 GB/s (512KB, 4 ports).
  const dse::DseExplorer explorer;
  double best_read_paper = 0;
  for (const auto& r : explorer.explore())
    best_read_paper = std::max(best_read_paper, *r.read_bw_paper);
  EXPECT_GT(best_read_paper / 1e9, 32.0);
  // 2. Up to 202 MHz.
  double best_mhz = 0;
  for (const auto& s : synth::paper_table4())
    best_mhz = std::max(best_mhz, s.mhz);
  EXPECT_DOUBLE_EQ(best_mhz, 202.0);
  // 3. STREAM-Copy >= 99% of 15360 MB/s.
  stream::StreamHost host;  // paper-size design
  const std::int64_t n = 170 * 512;
  std::vector<double> v(static_cast<std::size_t>(n), 2.0);
  host.load(v, v, v);
  const auto copy = host.run(stream::Mode::kCopy, n, 1);
  EXPECT_GT(copy.best_rate_bytes_per_s() / 15360e6, 0.99);
}

}  // namespace
}  // namespace polymem
