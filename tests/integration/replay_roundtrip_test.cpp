// End-to-end record -> serialize -> parse -> replay round trips: every
// application records its access trace, the text format round-trips it,
// and the replay harness reproduces the canonical checksums bit for bit
// on ALL five schemes (batched where supported, scalar fallback where
// not) and through the software cache. This is the tentpole oracle: one
// recording, every polymorphic configuration, zero divergence.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "apps/fft_twiddle_app.hpp"
#include "apps/histogram_app.hpp"
#include "apps/matvec_app.hpp"
#include "apps/stencil_app.hpp"
#include "apps/tiled_gemm_app.hpp"
#include "apps/transpose_app.hpp"
#include "replay/replay.hpp"

namespace polymem {
namespace {

struct Recording {
  std::string app;
  sched::RecordedTrace trace;
};

// Runs every app at a small size with a recorder attached; each returned
// trace is verified app-side before it gets here.
std::vector<Recording> record_all_apps() {
  std::vector<Recording> out;

  {
    apps::TiledGemmApp app(8);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    std::vector<double> a(64), b(64);
    for (std::size_t k = 0; k < 64; ++k) {
      a[k] = 0.5 * static_cast<double>(k % 7);
      b[k] = 1.0 - 0.25 * static_cast<double>(k % 5);
    }
    app.load(a, b);
    EXPECT_TRUE(app.run().verified);
    out.push_back({"tiled_gemm", rec.finish()});
  }
  {
    apps::StencilApp app(16);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    std::vector<double> grid(256);
    for (std::size_t k = 0; k < grid.size(); ++k)
      grid[k] = 0.01 * static_cast<double>(k);
    app.load_grid(grid);
    EXPECT_TRUE(app.run().verified);
    out.push_back({"stencil", rec.finish()});
  }
  {
    apps::TransposeApp app(8);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    std::vector<hw::Word> src(64);
    std::iota(src.begin(), src.end(), 0u);
    app.load_source(src);
    EXPECT_TRUE(app.run().verified);
    out.push_back({"transpose", rec.finish()});
  }
  {
    apps::FftTwiddleApp app(8);
    auto data_rec = app.make_data_recorder();
    auto rom_rec = app.make_rom_recorder();
    app.set_recorders(&data_rec, &rom_rec);
    std::vector<double> src(64);
    for (std::size_t k = 0; k < src.size(); ++k)
      src[k] = 0.3 * static_cast<double>(k) - 9.0;
    app.load(src);
    EXPECT_TRUE(app.run().verified);
    out.push_back({"fft_twiddle_data", data_rec.finish()});
    out.push_back({"fft_twiddle_rom", rom_rec.finish()});
  }
  {
    apps::HistogramScatterApp app(16, 4);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    EXPECT_TRUE(app.run(64, 11).verified);
    out.push_back({"histogram", rec.finish()});
  }
  {
    apps::MatVecApp app(16);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    std::vector<double> a(256, 0.25);
    app.load_matrix(a);
    std::vector<double> x(16, 2.0), y(16);
    EXPECT_TRUE(app.run(x, y).verified);
    out.push_back({"matvec", rec.finish()});
  }
  return out;
}

TEST(ReplayRoundTrip, EveryAppOnEverySchemeBitIdentical) {
  for (const Recording& r : record_all_apps()) {
    ASSERT_FALSE(r.trace.ops.empty()) << r.app;
    // Serialize -> parse: the text format carries the whole recording.
    const sched::RecordedTrace parsed =
        sched::parse_trace_text(sched::trace_to_string(r.trace));
    ASSERT_EQ(parsed, r.trace) << r.app;

    for (maf::Scheme scheme : maf::kAllSchemes) {
      replay::ReplayOptions options;
      options.scheme = scheme;
      const replay::ReplayReport report = replay::replay(parsed, options);
      EXPECT_TRUE(report.verified())
          << r.app << " on " << maf::scheme_name(scheme) << ": "
          << report.summary();
      EXPECT_EQ(report.checksums_checked,
                static_cast<std::int64_t>(parsed.ops.size()))
          << r.app;
      EXPECT_EQ(report.checksum_mismatches, 0) << r.app;
      EXPECT_EQ(report.data_mismatches, 0) << r.app;
    }
  }
}

TEST(ReplayRoundTrip, EveryAppThroughTheSoftwareCache) {
  for (const Recording& r : record_all_apps()) {
    replay::ReplayOptions options;
    options.scheme = maf::Scheme::kReRo;
    options.through_cache = true;
    const replay::ReplayReport report = replay::replay(r.trace, options);
    EXPECT_TRUE(report.verified()) << r.app << ": " << report.summary();
    EXPECT_GT(report.cache_stats.kernel_accesses, 0u) << r.app;

    replay::ReplayOptions through;
    through.scheme = maf::Scheme::kReRo;
    through.through_cache = true;
    through.write_policy = cache::WritePolicy::kWriteThrough;
    EXPECT_TRUE(replay::replay(r.trace, through).verified())
        << r.app << " (write-through)";
  }
}

TEST(ReplayRoundTrip, MultiPortReplayStaysVerified) {
  for (const Recording& r : record_all_apps()) {
    replay::ReplayOptions options;
    options.scheme = maf::Scheme::kReTr;
    options.read_ports = 2;
    EXPECT_TRUE(replay::replay(r.trace, options).verified()) << r.app;
  }
}

TEST(ReplayRoundTrip, CorruptedChecksumIsCaughtNotCrashed) {
  apps::TiledGemmApp app(8);
  auto rec = app.make_recorder();
  app.set_recorder(&rec);
  std::vector<double> a(64, 1.0), b(64, 2.0);
  app.load(a, b);
  ASSERT_TRUE(app.run().verified);
  sched::RecordedTrace trace = rec.finish();
  *trace.ops.front().checksum ^= 1;  // flip one recorded bit

  replay::ReplayOptions options;
  options.scheme = maf::Scheme::kReRo;
  const replay::ReplayReport report = replay::replay(trace, options);
  EXPECT_FALSE(report.verified());
  EXPECT_EQ(report.checksum_mismatches, 1);
  EXPECT_EQ(report.data_mismatches, 0);  // the data itself was fine
}

TEST(ReplayRoundTrip, RelintRecoversDiagnosticsFromTheTraceAlone) {
  // The histogram's recorded column trace, re-linted with no access to
  // the app: unsupported on ReRo, clean (errors-wise) on RoCo.
  apps::HistogramScatterApp app(16, 4);
  auto rec = app.make_recorder();
  app.set_recorder(&rec);
  ASSERT_TRUE(app.run(64, 11).verified);
  const sched::RecordedTrace trace = rec.finish();

  const auto on_rero = replay::relint(trace, maf::Scheme::kReRo);
  EXPECT_GT(on_rero.errors(), 0u);
  const auto on_roco = replay::relint(trace, maf::Scheme::kRoCo);
  EXPECT_EQ(on_roco.errors(), 0u);
}

}  // namespace
}  // namespace polymem
