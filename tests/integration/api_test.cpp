// API surface tests: the umbrella header compiles and exposes the full
// stack; MAF self-descriptions match the documented formulas.
#include "polymem.hpp"

#include <gtest/gtest.h>

namespace polymem {
namespace {

TEST(UmbrellaHeader, WholeStackReachable) {
  // One object from every module, through the single include.
  const auto cfg =
      core::PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo, 2, 4);
  core::PolyMem mem(cfg);
  prf::RegisterFile rf(mem);
  maxsim::LMem lmem(1 << 16);
  maxsim::DmaEngine dma(lmem, mem);
  const synth::ResourceModel resources;
  const dse::DseExplorer explorer;
  sched::Scheduler scheduler(maf::Scheme::kReRo, 2, 4);
  hw::ClockDomain clock(120e6);
  EXPECT_EQ(mem.lanes(), 8u);
  EXPECT_GT(resources.estimate(cfg).bram36, 0u);
  EXPECT_EQ(explorer.explore().size(), 90u);
  (void)rf;
  (void)dma;
  (void)scheduler;
  (void)clock;
}

TEST(MafDescribe, FormulasMatchDocumentation) {
  EXPECT_EQ(maf::Maf(maf::Scheme::kReO, 2, 4).describe(),
            "m_v = i mod 2, m_h = j mod 4");
  EXPECT_EQ(maf::Maf(maf::Scheme::kReRo, 2, 4).describe(),
            "m_v = (i + |j/4|) mod 2, m_h = j mod 4");
  EXPECT_EQ(maf::Maf(maf::Scheme::kReCo, 2, 4).describe(),
            "m_v = i mod 2, m_h = (j + |i/2|) mod 4");
  EXPECT_EQ(maf::Maf(maf::Scheme::kRoCo, 2, 8).describe(),
            "m_v = (i + |j/8|) mod 2, m_h = (j + |i/2|) mod 8");
  EXPECT_EQ(maf::Maf(maf::Scheme::kReTr, 2, 4).describe(),
            "bank = (j + 2*|j/2| + 2*i) mod 8");
  // The transposed form swaps i and j.
  EXPECT_EQ(maf::Maf(maf::Scheme::kReTr, 4, 2).describe(),
            "bank = (i + 2*|i/2| + 2*j) mod 8");
}

TEST(MafDescribe, FormulaMatchesBehaviourReRo) {
  // The printed formula must be the implemented one: evaluate it.
  const maf::Maf m(maf::Scheme::kReRo, 2, 4);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      const unsigned mv = static_cast<unsigned>((i + j / 4) % 2);
      const unsigned mh = static_cast<unsigned>(j % 4);
      EXPECT_EQ(m.bank(i, j), mv * 4 + mh);
    }
  }
}

TEST(ThirtyTwoBitElements, EndToEnd) {
  // 32-bit data width: double the elements per byte, same banking.
  auto cfg = core::PolyMemConfig::with_capacity(4 * KiB, maf::Scheme::kReRo,
                                                2, 4, 1, 32);
  core::PolyMem mem(cfg);
  EXPECT_EQ(cfg.height * cfg.width, 1024);  // 4KB / 4B
  std::vector<core::Word> data(8);
  for (unsigned k = 0; k < 8; ++k) data[k] = 0xABC0 + k;
  mem.write({access::PatternKind::kRow, {3, 8}}, data);
  EXPECT_EQ(mem.read({access::PatternKind::kRow, {3, 8}}), data);
  // Bandwidth accounting uses the narrower width.
  EXPECT_DOUBLE_EQ(bandwidth_bytes_per_s(cfg.lanes(), cfg.data_width_bits,
                                         100e6),
                   8 * 4 * 100e6);
}

TEST(SchedulerBounds, CandidatesStayInsideTheSpace) {
  sched::Scheduler scheduler(maf::Scheme::kReRo, 2, 4);
  scheduler.set_bounds(8, 16);
  // A trace hugging the right edge: row anchors must shift left, never out.
  const sched::AccessTrace trace({{0, 15}, {1, 15}, {7, 15}});
  for (const auto& acc : scheduler.candidate_accesses(trace))
    EXPECT_TRUE(access::fits(acc, 2, 4, 8, 16));
  const auto schedule = scheduler.schedule(trace);
  EXPECT_EQ(schedule.length(), 2);  // rect @ (0,12) covers rows 0-1, plus one more
  EXPECT_THROW(scheduler.set_bounds(0, 4), InvalidArgument);
}

}  // namespace
}  // namespace polymem
