// The paper's DSE validation cycle, executed against the simulator for a
// representative sample of the grid:
//
//   "We validate each design with a simple read/write cycle: the host
//    fills MAX-PolyMem with unique numerical values, and then reads them
//    back using parallel accesses." (Sec. IV-A)
#include <gtest/gtest.h>

#include "core/polymem.hpp"
#include "synth/fmax_model.hpp"

namespace polymem {
namespace {

struct ValidationCase {
  maf::Scheme scheme;
  unsigned size_kb, lanes, ports;
};

std::string case_name(const ::testing::TestParamInfo<ValidationCase>& info) {
  const auto& c = info.param;
  return std::string(maf::scheme_name(c.scheme)) + "_" +
         std::to_string(c.size_kb) + "KB_" + std::to_string(c.lanes) + "L_" +
         std::to_string(c.ports) + "P";
}

class DseValidation : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(DseValidation, HostFillThenParallelReadback) {
  const auto& c = GetParam();
  const auto cfg = synth::FmaxModel::make_config(
      synth::DsePoint{c.scheme, c.size_kb, c.lanes, c.ports});
  core::PolyMem mem(cfg);

  // The host fills PolyMem with unique values (sampled grid to keep the
  // suite fast on multi-MB configurations).
  const std::int64_t istep = std::max<std::int64_t>(1, cfg.height / 64);
  auto value = [](std::int64_t i, std::int64_t j) {
    return static_cast<core::Word>((i << 24) ^ j);
  };
  for (std::int64_t i = 0; i < cfg.height; i += istep)
    for (std::int64_t j = 0; j < cfg.width; ++j) mem.store({i, j}, value(i, j));

  // Read back on every port, with a pattern the scheme serves anywhere:
  // rows for the row-capable schemes, rectangles for the rest.
  const bool rows = (c.scheme == maf::Scheme::kReRo ||
                     c.scheme == maf::Scheme::kRoCo);
  const access::PatternKind kind =
      rows ? access::PatternKind::kRow : access::PatternKind::kRect;
  for (std::int64_t i = 0; i + cfg.p <= cfg.height; i += istep) {
    const access::ParallelAccess acc{kind, {i, 0}};
    for (unsigned port = 0; port < cfg.read_ports; ++port) {
      const auto data = mem.read(acc, port);
      const auto coords = access::expand(acc, cfg.p, cfg.q);
      for (unsigned k = 0; k < data.size(); ++k) {
        // Only rows we filled are checked (rect spans p rows; with istep
        // sampling the second row may be unfilled — skip those lanes).
        if (coords[k].i % istep == 0)
          EXPECT_EQ(data[k], value(coords[k].i, coords[k].j));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridSample, DseValidation,
    ::testing::Values(
        ValidationCase{maf::Scheme::kReO, 512, 8, 1},
        ValidationCase{maf::Scheme::kReRo, 512, 16, 2},
        ValidationCase{maf::Scheme::kReCo, 1024, 8, 4},
        ValidationCase{maf::Scheme::kRoCo, 2048, 8, 2},
        ValidationCase{maf::Scheme::kReTr, 1024, 16, 1},
        ValidationCase{maf::Scheme::kReRo, 4096, 8, 1}),
    case_name);

}  // namespace
}  // namespace polymem
