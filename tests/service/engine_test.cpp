// ServiceEngine, pumped manually (drain_once / run_until_idle) so every
// test is deterministic: the differential oracle replays completed
// requests in execution-sequence order against a plain PolyMem.
#include "service/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "maxsim/lmem.hpp"

namespace polymem::service {
namespace {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

core::PolyMemConfig cfg(unsigned read_ports = 2) {
  core::PolyMemConfig c;
  c.scheme = maf::Scheme::kReRo;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  c.read_ports = read_ports;
  return c;
}

void fill(core::PolyMem& mem) {
  for (std::int64_t i = 0; i < mem.config().height; ++i) {
    for (std::int64_t j = 0; j < mem.config().width; ++j) {
      mem.store({i, j}, static_cast<hw::Word>(i * 1000 + j));
    }
  }
}

/// Records every completion; owned data copies survive the callback.
struct Recorder : CompletionListener {
  struct Entry {
    Completion meta;  // .data dangles after the callback; use .data below
    std::vector<Word> data;
  };
  std::vector<Entry> entries;

  void on_complete(const Completion& completion) override {
    entries.push_back(
        {completion, {completion.data.begin(), completion.data.end()}});
  }
  std::size_t ok_count() const {
    std::size_t n = 0;
    for (const auto& e : entries) n += e.meta.status == Status::kOk ? 1 : 0;
    return n;
  }
};

Request read_req(ParallelAccess where, std::uint64_t tag, Recorder* rec,
                 Tenant tenant = 0) {
  Request r;
  r.tenant = tenant;
  r.op = Op::kRead;
  r.where = where;
  r.tag = tag;
  r.listener = rec;
  return r;
}

Request write_req(ParallelAccess where, std::vector<Word> payload,
                  std::uint64_t tag, Recorder* rec, Tenant tenant = 0) {
  Request r = read_req(where, tag, rec, tenant);
  r.op = Op::kWrite;
  r.payload = std::move(payload);
  return r;
}

TEST(ServiceEngine, CoalescedReadsMatchSerialReplay) {
  core::PolyMem mem(cfg());
  fill(mem);
  EngineOptions opt;
  opt.ports = 2;
  ServiceEngine engine(mem, opt);
  Recorder rec;

  // Mixed traffic on both ports: scan runs, stride jumps, pattern mixes.
  std::map<std::uint64_t, ParallelAccess> trace;
  std::uint64_t tag = 0;
  for (std::int64_t i = 0; i < 12; ++i) {
    const ParallelAccess a{PatternKind::kRow, {i, 8}};
    trace[tag] = a;
    ASSERT_EQ(engine.submit(i % 2 == 0 ? 0u : 1u, read_req(a, tag, &rec)),
              Status::kAccepted);
    ++tag;
  }
  for (std::int64_t j = 0; j < 3; ++j) {
    const ParallelAccess a{PatternKind::kRect, {4, j * 8}};
    trace[tag] = a;
    ASSERT_EQ(engine.submit(0, read_req(a, tag, &rec)), Status::kAccepted);
    ++tag;
  }
  engine.run_until_idle();

  ASSERT_EQ(rec.entries.size(), trace.size());
  core::PolyMem reference(cfg());
  fill(reference);
  for (const auto& e : rec.entries) {
    EXPECT_EQ(e.meta.status, Status::kOk);
    EXPECT_EQ(e.data, reference.read(trace.at(e.meta.tag)))
        << "tag " << e.meta.tag;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.accepted, trace.size());
  EXPECT_EQ(stats.completed_reads, trace.size());
  EXPECT_GE(stats.compiled_runs, 1u);  // the scans coalesced
  EXPECT_GT(stats.mean_run_length(), 1.0);
}

TEST(ServiceEngine, WriteThenReadOnSamePortIsOrdered) {
  core::PolyMem mem(cfg());
  fill(mem);
  ServiceEngine engine(mem);
  Recorder rec;

  const ParallelAccess where{PatternKind::kRow, {3, 16}};
  std::vector<Word> payload(mem.lanes());
  for (std::size_t k = 0; k < payload.size(); ++k) {
    payload[k] = 0xABC000 + static_cast<Word>(k);
  }
  ASSERT_EQ(engine.submit(0, write_req(where, payload, 0, &rec)),
            Status::kAccepted);
  ASSERT_EQ(engine.submit(0, read_req(where, 1, &rec)), Status::kAccepted);
  engine.run_until_idle();

  ASSERT_EQ(rec.entries.size(), 2u);
  // FIFO per port: the read observes the write.
  const auto& read_entry = rec.entries[1];
  EXPECT_EQ(read_entry.meta.op, Op::kRead);
  EXPECT_EQ(read_entry.data, payload);
  EXPECT_EQ(engine.stats().completed_writes, 1u);
}

TEST(ServiceEngine, WriteRunsCoalesceAndLand) {
  core::PolyMem mem(cfg());
  ServiceEngine engine(mem);
  Recorder rec;
  const unsigned lanes = mem.lanes();
  for (std::int64_t i = 0; i < 8; ++i) {
    std::vector<Word> payload(lanes);
    for (unsigned k = 0; k < lanes; ++k) {
      payload[k] = static_cast<Word>(i * 100 + k);
    }
    ASSERT_EQ(engine.submit(0, write_req({PatternKind::kRow, {i, 0}},
                                         std::move(payload),
                                         static_cast<std::uint64_t>(i), &rec)),
              Status::kAccepted);
  }
  engine.run_until_idle();
  EXPECT_GE(engine.stats().compiled_runs, 1u);
  for (std::int64_t i = 0; i < 8; ++i) {
    for (unsigned k = 0; k < lanes; ++k) {
      EXPECT_EQ(mem.load({i, static_cast<std::int64_t>(k)}),
                static_cast<Word>(i * 100 + k));
    }
  }
}

TEST(ServiceEngine, OverloadShedsWithTypedStatus) {
  core::PolyMem mem(cfg());
  fill(mem);
  EngineOptions opt;
  opt.queue_bound = 4;
  ServiceEngine engine(mem, opt);
  Recorder rec;
  int overloaded = 0;
  for (std::int64_t i = 0; i < 7; ++i) {
    const Status s = engine.submit(
        0, read_req({PatternKind::kRow, {i, 0}},
                    static_cast<std::uint64_t>(i), &rec));
    if (s == Status::kOverloaded) ++overloaded;
  }
  EXPECT_EQ(overloaded, 3);
  const EngineStats before = engine.stats();
  EXPECT_EQ(before.accepted, 4u);
  EXPECT_EQ(before.shed, 3u);
  engine.run_until_idle();
  EXPECT_EQ(rec.entries.size(), 4u);  // shed requests never complete
  EXPECT_EQ(engine.stats().max_queue_depth, 4u);
}

TEST(ServiceEngine, RejectsMalformedRequestsSynchronously) {
  core::PolyMem mem(cfg());
  ServiceEngine engine(mem);
  Recorder rec;

  // Null listener.
  Request no_listener = read_req({PatternKind::kRow, {0, 0}}, 0, nullptr);
  EXPECT_EQ(engine.submit(0, std::move(no_listener)), Status::kRejected);
  // Out of bounds.
  EXPECT_EQ(engine.submit(0, read_req({PatternKind::kRow, {0, 30}}, 1, &rec)),
            Status::kRejected);
  EXPECT_EQ(engine.submit(0, read_req({PatternKind::kRow, {-1, 0}}, 2, &rec)),
            Status::kRejected);
  // Wrong payload size.
  EXPECT_EQ(engine.submit(0, write_req({PatternKind::kRow, {0, 0}},
                                       std::vector<Word>(3), 3, &rec)),
            Status::kRejected);
  // Reads carry no payload.
  Request read_with_payload = read_req({PatternKind::kRow, {0, 0}}, 4, &rec);
  read_with_payload.payload.resize(8);
  EXPECT_EQ(engine.submit(0, std::move(read_with_payload)), Status::kRejected);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_TRUE(rec.entries.empty());
}

TEST(ServiceEngine, CallbacksFireExactlyOnceWithUniqueIds) {
  core::PolyMem mem(cfg());
  fill(mem);
  EngineOptions opt;
  opt.max_coalesce = 4;
  ServiceEngine engine(mem, opt);
  Recorder rec;
  std::set<RequestId> submitted;
  for (std::int64_t i = 0; i < 16; ++i) {
    RequestId id = 0;
    ASSERT_EQ(engine.submit(0, read_req({PatternKind::kRow, {i % 16, 0}},
                                        static_cast<std::uint64_t>(i), &rec),
                            &id),
              Status::kAccepted);
    EXPECT_TRUE(submitted.insert(id).second) << "duplicate id " << id;
    if (i % 5 == 4) engine.drain_once();  // interleave draining
  }
  engine.run_until_idle();
  ASSERT_EQ(rec.entries.size(), submitted.size());
  std::set<RequestId> completed;
  for (const auto& e : rec.entries) {
    EXPECT_TRUE(completed.insert(e.meta.id).second)
        << "id " << e.meta.id << " completed twice";
    EXPECT_EQ(submitted.count(e.meta.id), 1u);
  }
}

TEST(ServiceEngine, CompletionsRetireInCycleOrderWithModeledLatency) {
  core::PolyMem mem(cfg());
  fill(mem);
  ServiceEngine engine(mem);
  Recorder rec;
  for (std::int64_t i = 0; i < 6; ++i) {
    ASSERT_EQ(engine.submit(0, read_req({PatternKind::kRow, {i, 0}},
                                        static_cast<std::uint64_t>(i), &rec)),
              Status::kAccepted);
  }
  engine.run_until_idle();
  ASSERT_EQ(rec.entries.size(), 6u);
  std::uint64_t last_cycle = 0;
  for (const auto& e : rec.entries) {
    EXPECT_GE(e.meta.complete_cycle, last_cycle);
    last_cycle = e.meta.complete_cycle;
    // Pipeline model: at least read_latency cycles after submission.
    EXPECT_GE(e.meta.complete_cycle - e.meta.submit_cycle,
              static_cast<std::uint64_t>(mem.config().read_latency));
  }
}

TEST(ServiceEngine, StopCompletesQueuedRequestsAsShutdown) {
  core::PolyMem mem(cfg());
  fill(mem);
  ServiceEngine engine(mem);
  Recorder rec;
  for (std::int64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(engine.submit(0, read_req({PatternKind::kRow, {i, 0}},
                                        static_cast<std::uint64_t>(i), &rec)),
              Status::kAccepted);
  }
  engine.stop();  // never drained: everything sweeps out as kShutdown
  ASSERT_EQ(rec.entries.size(), 5u);
  for (const auto& e : rec.entries) {
    EXPECT_EQ(e.meta.status, Status::kShutdown);
    EXPECT_TRUE(e.data.empty());
  }
  EXPECT_EQ(engine.stats().shutdown_completions, 5u);
  // Admission is closed after stop.
  EXPECT_EQ(engine.submit(0, read_req({PatternKind::kRow, {0, 0}}, 9, &rec)),
            Status::kShutdown);
}

TEST(ServiceEngine, ManualDrainIsDeterministic) {
  auto run = [] {
    core::PolyMem mem(cfg());
    fill(mem);
    EngineOptions opt;
    opt.ports = 2;
    opt.max_coalesce = 8;
    ServiceEngine engine(mem, opt);
    Recorder rec;
    std::uint64_t tag = 0;
    for (std::int64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(
          engine.submit(static_cast<unsigned>(i % 2),
                        read_req({PatternKind::kRow, {i, 8}}, tag++, &rec)),
          Status::kAccepted);
    }
    engine.run_until_idle();
    std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> out;
    out.reserve(rec.entries.size());
    for (const auto& e : rec.entries) {
      out.emplace_back(e.meta.tag, e.meta.sequence, e.meta.complete_cycle);
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(ServiceEngine, ManualPumpForbiddenOnStartedEngine) {
  core::PolyMem mem(cfg());
  ServiceEngine engine(mem);
  runtime::ThreadPool pool(1);
  engine.start(pool);
  EXPECT_THROW(engine.drain_once(), InvalidArgument);
  EXPECT_THROW(engine.run_until_idle(), InvalidArgument);
  engine.stop();
}

// ----- tile-cached mode -------------------------------------------------

maxsim::LMemMatrix make_matrix(maxsim::LMem& lmem, std::int64_t rows = 64,
                               std::int64_t cols = 64) {
  maxsim::LMemMatrix m{64, rows, cols, cols};
  std::vector<hw::Word> row(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      row[static_cast<std::size_t>(j)] = static_cast<hw::Word>(i * 1000 + j);
    }
    lmem.write(m.word_addr(i, 0), row);
  }
  return m;
}

TEST(ServiceEngineCached, ReadsMatchTheMatrixAndMissesCostLatency) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(cfg());
  const auto matrix = make_matrix(lmem);
  cache::TileCache cache(lmem, mem, matrix,
                         core::FramePool::whole_space(mem.config(), 8, 32));
  EngineOptions opt;
  opt.miss_penalty_cycles = 100;
  ServiceEngine engine(cache, opt);
  Recorder rec;

  // Rows 0..3 of tile (0,0), then rows 16..19 of tile (2,1).
  std::uint64_t tag = 0;
  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(engine.submit(0, read_req({PatternKind::kRow, {i, 8}}, tag++,
                                        &rec)),
              Status::kAccepted);
  }
  for (std::int64_t i = 16; i < 20; ++i) {
    ASSERT_EQ(engine.submit(0, read_req({PatternKind::kRow, {i, 40}}, tag++,
                                        &rec)),
              Status::kAccepted);
  }
  engine.run_until_idle();

  ASSERT_EQ(rec.entries.size(), 8u);
  for (const auto& e : rec.entries) {
    const std::int64_t i = static_cast<std::int64_t>(e.meta.tag) < 4
                               ? static_cast<std::int64_t>(e.meta.tag)
                               : 12 + static_cast<std::int64_t>(e.meta.tag);
    const std::int64_t j = e.meta.tag < 4 ? 8 : 40;
    for (unsigned k = 0; k < mem.lanes(); ++k) {
      EXPECT_EQ(e.data[k], static_cast<hw::Word>(i * 1000 + j + k))
          << "tag " << e.meta.tag;
    }
    // Both runs fault their tile: the miss penalty shows in the latency.
    EXPECT_GE(e.meta.complete_cycle - e.meta.submit_cycle, 100u);
  }
  EXPECT_EQ(engine.stats().tile_misses, 2u);
  EXPECT_EQ(cache.stats().counters().misses, 2u);
}

TEST(ServiceEngineCached, RejectsTileCrossingAccesses) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(cfg());
  const auto matrix = make_matrix(lmem);
  cache::TileCache cache(lmem, mem, matrix,
                         core::FramePool::whole_space(mem.config(), 8, 32));
  ServiceEngine engine(cache);
  Recorder rec;
  // A row crossing the column-tile boundary at 32, and one crossing the
  // matrix edge.
  EXPECT_EQ(engine.submit(0, read_req({PatternKind::kRow, {0, 28}}, 0, &rec)),
            Status::kRejected);
  EXPECT_EQ(engine.submit(0, read_req({PatternKind::kRow, {0, 60}}, 1, &rec)),
            Status::kRejected);
  // A rect crossing the row-tile boundary at 8.
  EXPECT_EQ(engine.submit(0, read_req({PatternKind::kRect, {7, 0}}, 2, &rec)),
            Status::kRejected);
  // In-tile equivalents are accepted.
  EXPECT_EQ(engine.submit(0, read_req({PatternKind::kRow, {0, 24}}, 3, &rec)),
            Status::kAccepted);
  EXPECT_EQ(engine.submit(0, read_req({PatternKind::kRect, {6, 0}}, 4, &rec)),
            Status::kAccepted);
  engine.run_until_idle();
  EXPECT_EQ(rec.entries.size(), 2u);
}

TEST(ServiceEngineCached, WritesMarkDirtyAndFlushPublishesToLMem) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(cfg());
  const auto matrix = make_matrix(lmem);
  cache::TileCache cache(lmem, mem, matrix,
                         core::FramePool::whole_space(mem.config(), 8, 32));
  ServiceEngine engine(cache);
  Recorder rec;

  const std::int64_t row = 17, col = 32;  // tile (2, 1)
  std::vector<Word> payload(mem.lanes());
  for (std::size_t k = 0; k < payload.size(); ++k) {
    payload[k] = 0xD00D00 + static_cast<Word>(k);
  }
  ASSERT_EQ(engine.submit(0, write_req({PatternKind::kRow, {row, col}},
                                       payload, 0, &rec)),
            Status::kAccepted);
  ASSERT_EQ(engine.submit(0, read_req({PatternKind::kRow, {row, col}}, 1,
                                      &rec)),
            Status::kAccepted);
  engine.run_until_idle();

  ASSERT_EQ(rec.entries.size(), 2u);
  EXPECT_EQ(rec.entries[1].data, payload);  // read-after-write via the frame

  // LMem still holds the old data until flush.
  std::vector<hw::Word> lmem_row(payload.size());
  lmem.read(matrix.word_addr(row, col), lmem_row);
  EXPECT_NE(lmem_row, payload);
  cache.flush();
  lmem.read(matrix.word_addr(row, col), lmem_row);
  EXPECT_EQ(lmem_row, payload);
}

TEST(ServiceEngineCached, RequiresWriteBackPolicy) {
  maxsim::LMem lmem(1 << 20);
  core::PolyMem mem(cfg());
  const auto matrix = make_matrix(lmem);
  cache::CacheOptions copt;
  copt.write_policy = cache::WritePolicy::kWriteThrough;
  cache::TileCache cache(lmem, mem, matrix,
                         core::FramePool::whole_space(mem.config(), 8, 32),
                         copt);
  EXPECT_THROW(ServiceEngine{cache}, InvalidArgument);
}

}  // namespace
}  // namespace polymem::service
