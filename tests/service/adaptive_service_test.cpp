#include "service/adaptive_service.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace polymem::service {
namespace {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;
using maf::Scheme;

AdaptiveServiceOptions small_opts() {
  AdaptiveServiceOptions o;
  o.tenant_config.scheme = Scheme::kReRo;
  o.tenant_config.p = 2;
  o.tenant_config.q = 4;
  o.tenant_config.height = 16;
  o.tenant_config.width = 32;
  o.adaptive.profiler.window = 64;
  o.adaptive.policy.persistence = 2;
  // pool stays nullptr: migrations run inline, deterministically.
  return o;
}

TEST(AdaptiveService, ReadWriteRoundTripPerTenant) {
  AdaptiveService svc(small_opts());
  const unsigned lanes = svc.lanes();
  std::vector<Word> data(lanes);
  for (unsigned l = 0; l < lanes; ++l) data[l] = 100 + l;

  const ParallelAccess row{PatternKind::kRow, {3, 8}};
  ASSERT_EQ(svc.write(7, row, data), Status::kOk);
  std::vector<Word> back(lanes);
  ASSERT_EQ(svc.read(7, row, back), Status::kOk);
  EXPECT_EQ(back, data);

  // Another tenant's matrix is private: same anchor, different words.
  std::vector<Word> other(lanes);
  ASSERT_EQ(svc.read(8, row, other), Status::kOk);
  EXPECT_NE(other, data);

  const auto ids = svc.tenants();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 7u);
  EXPECT_EQ(ids[1], 8u);
}

TEST(AdaptiveService, RejectsMalformedRequestsTyped) {
  AdaptiveService svc(small_opts());
  const unsigned lanes = svc.lanes();
  std::vector<Word> one_access(lanes);

  // Span size must be count * lanes.
  EXPECT_EQ(svc.read(0, {PatternKind::kRow, {0, 0}},
                     std::span<Word>(one_access).first(lanes - 1)),
            Status::kRejected);
  // Out-of-bounds anchor.
  EXPECT_EQ(svc.read(0, {PatternKind::kRow, {0, 30}}, one_access),
            Status::kRejected);
  // A run whose last anchor leaves the space.
  std::vector<Word> run(lanes * 4);
  EXPECT_EQ(svc.read_run(0, {PatternKind::kRow, {14, 0}}, {1, 0}, 4, run),
            Status::kRejected);
  // Nonpositive count.
  EXPECT_EQ(svc.write_run(0, {PatternKind::kRow, {0, 0}}, {1, 0}, 0,
                          std::span<const Word>()),
            Status::kRejected);
}

TEST(AdaptiveService, TenantsConvergeToTheirOwnSchemes) {
  AdaptiveService svc(small_opts());
  const unsigned lanes = svc.lanes();
  constexpr Tenant kRowTenant = 1;
  constexpr Tenant kColTenant = 2;

  // Tenant 1 scans rows (ReRo already serves them); tenant 2 scans
  // columns (ReRo serves none — its private policy must migrate).
  std::vector<Word> row_buf(16 * lanes);
  std::vector<Word> col_buf(32 * lanes);
  for (int pass = 0; pass < 8; ++pass) {
    for (std::int64_t j = 0; j < 32; j += 8) {
      ASSERT_EQ(svc.read_run(kRowTenant, {PatternKind::kRow, {0, j}}, {1, 0},
                             16, row_buf),
                Status::kOk);
    }
    for (std::int64_t i = 0; i < 16; i += 8) {
      ASSERT_EQ(svc.read_run(kColTenant, {PatternKind::kCol, {i, 0}}, {0, 1},
                             32, col_buf),
                Status::kOk);
    }
  }
  svc.wait_idle();

  const auto& row_mat = svc.tenant_matrix(kRowTenant);
  const auto& col_mat = svc.tenant_matrix(kColTenant);
  // The row tenant had no reason to move off ReRo.
  EXPECT_EQ(row_mat.scheme(), Scheme::kReRo);
  EXPECT_EQ(row_mat.stats().migrations_completed, 0u);
  // The col tenant migrated — to a scheme that serves columns — and
  // every migration passed its differential oracle.
  EXPECT_GE(col_mat.stats().migrations_completed, 1u);
  EXPECT_EQ(col_mat.stats().mismatched_words, 0u);
  EXPECT_NE(col_mat.scheme(), Scheme::kReRo);
  EXPECT_TRUE(col_mat.run_supported(
      core::AccessBatch::strided(PatternKind::kCol, {0, 0}, {0, 1}, 4)));
}

TEST(AdaptiveService, WritesSurviveTheTenantsMigration) {
  AdaptiveService svc(small_opts());
  const unsigned lanes = svc.lanes();
  constexpr Tenant kTenant = 3;

  // Seed every row with distinct words through the request plane.
  std::vector<Word> fill(16 * lanes);
  for (std::int64_t j = 0; j < 32; j += 8) {
    for (std::size_t k = 0; k < fill.size(); ++k) {
      fill[k] = static_cast<Word>(j * 1000 + static_cast<std::int64_t>(k));
    }
    ASSERT_EQ(svc.write_run(kTenant, {PatternKind::kRow, {0, j}}, {1, 0}, 16,
                            fill),
              Status::kOk);
  }

  // Drive a column phase until the tenant migrates.
  std::vector<Word> col_buf(32 * lanes);
  for (int pass = 0; pass < 8; ++pass) {
    for (std::int64_t i = 0; i < 16; i += 8) {
      ASSERT_EQ(svc.read_run(kTenant, {PatternKind::kCol, {i, 0}}, {0, 1}, 32,
                             col_buf),
                Status::kOk);
    }
  }
  svc.wait_idle();
  ASSERT_GE(svc.tenant_matrix(kTenant).stats().migrations_completed, 1u);

  // The seeded words read back bit-identical under the new layout.
  std::vector<Word> back(16 * lanes);
  for (std::int64_t j = 0; j < 32; j += 8) {
    ASSERT_EQ(
        svc.read_run(kTenant, {PatternKind::kRow, {0, j}}, {1, 0}, 16, back),
        Status::kOk);
    for (std::size_t k = 0; k < back.size(); ++k) {
      EXPECT_EQ(back[k],
                static_cast<Word>(j * 1000 + static_cast<std::int64_t>(k)))
          << "j=" << j << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace polymem::service
