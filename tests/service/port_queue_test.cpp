#include "service/port_queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"

namespace polymem::service {
namespace {

using access::Coord;
using access::PatternKind;

PendingRequest row_read(std::int64_t i, std::int64_t j, std::uint64_t tag) {
  PendingRequest pr;
  pr.request.op = Op::kRead;
  pr.request.where = {PatternKind::kRow, Coord{i, j}};
  pr.request.tag = tag;
  pr.id = tag;
  return pr;
}

PendingRequest row_write(std::int64_t i, std::int64_t j, std::uint64_t tag) {
  PendingRequest pr = row_read(i, j, tag);
  pr.request.op = Op::kWrite;
  return pr;
}

TEST(PortQueue, OverflowShedsTypedNeverSilently) {
  PortQueue queue(2);
  EXPECT_EQ(queue.try_push(row_read(0, 0, 0)), Status::kAccepted);
  EXPECT_EQ(queue.try_push(row_read(1, 0, 1)), Status::kAccepted);
  EXPECT_EQ(queue.try_push(row_read(2, 0, 2)), Status::kOverloaded);
  EXPECT_EQ(queue.depth(), 2u);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.max_depth, 2u);

  // Shedding is not sticky: popping frees capacity again.
  std::vector<PendingRequest> run;
  core::AccessBatch batch;
  ASSERT_EQ(queue.pop_run(64, run, batch), 2u);
  EXPECT_EQ(queue.try_push(row_read(2, 0, 2)), Status::kAccepted);
}

TEST(PortQueue, BoundMustBePositive) {
  EXPECT_THROW(PortQueue(0), InvalidArgument);
  EXPECT_THROW(PortQueue(8, 8, 0), InvalidArgument);
}

TEST(PortQueue, PopRunCoalescesConstantStridePrefix) {
  PortQueue queue(16);
  for (std::int64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(queue.try_push(row_read(i, 4, static_cast<std::uint64_t>(i))),
              Status::kAccepted);
  }
  std::vector<PendingRequest> run;
  core::AccessBatch batch;
  ASSERT_EQ(queue.pop_run(64, run, batch), 5u);
  EXPECT_EQ(batch.kind, PatternKind::kRow);
  EXPECT_EQ(batch.start, (Coord{0, 4}));
  EXPECT_EQ(batch.inner_stride, (Coord{1, 0}));
  EXPECT_EQ(batch.inner_count, 5);
  EXPECT_EQ(batch.outer_count, 1);
  for (std::uint64_t t = 0; t < 5; ++t) EXPECT_EQ(run[t].request.tag, t);
  EXPECT_TRUE(queue.empty());
}

TEST(PortQueue, RunBreaksOnOpAndKindAndStride) {
  PortQueue queue(16);
  // Two coalescible reads, then a write, then a rect, then a stride break.
  ASSERT_EQ(queue.try_push(row_read(0, 0, 0)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_read(1, 0, 1)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_write(2, 0, 2)), Status::kAccepted);
  PendingRequest rect = row_read(3, 0, 3);
  rect.request.where.kind = PatternKind::kRect;
  ASSERT_EQ(queue.try_push(std::move(rect)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_read(10, 0, 4)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_read(20, 0, 5)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_read(30, 0, 6)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_read(31, 0, 7)), Status::kAccepted);

  std::vector<PendingRequest> run;
  core::AccessBatch batch;
  ASSERT_EQ(queue.pop_run(64, run, batch), 2u);  // reads stop at the write
  EXPECT_EQ(batch.inner_count, 2);

  ASSERT_EQ(queue.pop_run(64, run, batch), 1u);  // the write, alone
  EXPECT_EQ(run[0].request.op, Op::kWrite);
  EXPECT_EQ(batch.inner_count, 1);
  EXPECT_EQ(batch.inner_stride, (Coord{0, 0}));  // singleton: no stride

  ASSERT_EQ(queue.pop_run(64, run, batch), 1u);  // the rect, alone
  EXPECT_EQ(batch.kind, PatternKind::kRect);

  // (10,0),(20,0),(30,0) advance by 10; (31,0) breaks the progression.
  ASSERT_EQ(queue.pop_run(64, run, batch), 3u);
  EXPECT_EQ(batch.inner_stride, (Coord{10, 0}));
  ASSERT_EQ(queue.pop_run(64, run, batch), 1u);
  EXPECT_EQ(run[0].request.tag, 7u);
  EXPECT_EQ(queue.pop_run(64, run, batch), 0u);
}

TEST(PortQueue, MaxRunCapsTheBatch) {
  PortQueue queue(16);
  for (std::int64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(queue.try_push(row_read(i, 0, static_cast<std::uint64_t>(i))),
              Status::kAccepted);
  }
  std::vector<PendingRequest> run;
  core::AccessBatch batch;
  EXPECT_EQ(queue.pop_run(3, run, batch), 3u);
  EXPECT_EQ(queue.pop_run(3, run, batch), 3u);
  EXPECT_EQ(queue.pop_run(3, run, batch), 2u);
}

TEST(PortQueue, ZeroStrideRunCoalesces) {
  PortQueue queue(16);
  for (std::uint64_t t = 0; t < 4; ++t) {
    ASSERT_EQ(queue.try_push(row_read(2, 8, t)), Status::kAccepted);
  }
  std::vector<PendingRequest> run;
  core::AccessBatch batch;
  ASSERT_EQ(queue.pop_run(64, run, batch), 4u);
  EXPECT_EQ(batch.inner_stride, (Coord{0, 0}));
  EXPECT_EQ(batch.inner_count, 4);
}

TEST(PortQueue, TileConstraintBreaksRunsAtTileBoundary) {
  PortQueue queue(16, /*tile_rows=*/8, /*tile_cols=*/32);
  ASSERT_EQ(queue.try_push(row_read(6, 0, 0)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_read(7, 0, 1)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_read(8, 0, 2)), Status::kAccepted);  // next tile
  std::vector<PendingRequest> run;
  core::AccessBatch batch;
  ASSERT_EQ(queue.pop_run(64, run, batch), 2u);
  ASSERT_EQ(queue.pop_run(64, run, batch), 1u);
  EXPECT_EQ(run[0].request.tag, 2u);
}

TEST(PortQueue, PopAllDrainsEverythingInFifoOrder) {
  PortQueue queue(16);
  ASSERT_EQ(queue.try_push(row_read(0, 0, 0)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_write(5, 0, 1)), Status::kAccepted);
  ASSERT_EQ(queue.try_push(row_read(9, 0, 2)), Status::kAccepted);
  std::vector<PendingRequest> run;
  ASSERT_EQ(queue.pop_all(run), 3u);
  for (std::uint64_t t = 0; t < 3; ++t) EXPECT_EQ(run[t].request.tag, t);
  EXPECT_TRUE(queue.empty());
}

TEST(PortQueue, ConcurrentSubmittersKeepFifoPerSubmitterAndShedExactly) {
  // 4 submitters x 64 requests into a bound of 128: exactly 256 - shed
  // are queued; each submitter's accepted tags drain in its own order.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 64;
  PortQueue queue(128);
  std::vector<std::vector<std::uint64_t>> accepted(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&queue, &accepted, w] {
      for (std::uint64_t t = 0; t < kPer; ++t) {
        const std::uint64_t tag = static_cast<std::uint64_t>(w) * 1000 + t;
        if (queue.try_push(row_read(0, 0, tag)) == Status::kAccepted) {
          accepted[static_cast<std::size_t>(w)].push_back(tag);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<PendingRequest> drained;
  queue.pop_all(drained);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed, drained.size());
  EXPECT_EQ(stats.pushed + stats.shed, kThreads * kPer);
  EXPECT_LE(drained.size(), 128u);

  // Per-submitter FIFO: the drained tags of each thread appear in
  // submission order.
  std::vector<std::vector<std::uint64_t>> seen(kThreads);
  for (const auto& pr : drained) {
    seen[pr.request.tag / 1000].push_back(pr.request.tag);
  }
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(seen[static_cast<std::size_t>(w)],
              accepted[static_cast<std::size_t>(w)]);
  }
}

}  // namespace
}  // namespace polymem::service
