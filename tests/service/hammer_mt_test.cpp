// Concurrency hammer: many client threads against started drain loops,
// small queues forcing constant overload/retry. Run under TSan in CI
// (the tsan job's explicit concurrency gate) to prove the submit/drain
// handshake, the bounded queues and the completion path are race-free.
//
// Invariants checked:
//  - every accepted request completes exactly once with kOk (or, for
//    stragglers at stop, kShutdown) — accepted == completions;
//  - request ids are unique across all clients;
//  - read data always matches the static memory content (no torn reads).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "service/engine.hpp"
#include "service/sharded.hpp"

namespace polymem::service {
namespace {

using access::ParallelAccess;
using access::PatternKind;

core::PolyMemConfig cfg() {
  core::PolyMemConfig c;
  c.scheme = maf::Scheme::kReRo;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  c.read_ports = 2;
  return c;
}

/// Thread-safe recorder: in the sharded hammer one client's completions
/// arrive from several shard drains concurrently.
struct CountingListener : CompletionListener {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shutdown{0};
  std::atomic<std::uint64_t> data_mismatches{0};
  std::mutex mutex;
  std::vector<RequestId> ids;

  void on_complete(const Completion& completion) override {
    if (completion.status == Status::kOk) {
      ok.fetch_add(1, std::memory_order_relaxed);
      if (completion.op == Op::kRead) {
        // tag encodes the anchor: i * 64 + j of a row access.
        const auto i = static_cast<std::int64_t>(completion.tag / 64);
        const auto j = static_cast<std::int64_t>(completion.tag % 64);
        for (std::size_t k = 0; k < completion.data.size(); ++k) {
          if (completion.data[k] !=
              static_cast<Word>(i * 1000 + j + static_cast<std::int64_t>(k))) {
            data_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    } else {
      shutdown.fetch_add(1, std::memory_order_relaxed);
    }
    const std::lock_guard<std::mutex> lock(mutex);
    ids.push_back(completion.id);
  }
};

TEST(ServiceHammer, ManyClientsSmallQueuesDirectEngine) {
  core::PolyMem mem(cfg());
  for (std::int64_t i = 0; i < 16; ++i) {
    for (std::int64_t j = 0; j < 32; ++j) {
      mem.store({i, j}, static_cast<hw::Word>(i * 1000 + j));
    }
  }
  EngineOptions opt;
  opt.ports = 2;
  opt.queue_bound = 8;  // tiny: submitters constantly hit kOverloaded
  opt.max_coalesce = 16;
  ServiceEngine engine(mem, opt);
  runtime::ThreadPool pool(2);
  engine.start(pool);

  constexpr int kClients = 4;
  constexpr std::uint64_t kPerClient = 400;
  std::vector<CountingListener> listeners(kClients);
  std::atomic<std::uint64_t> total_accepted{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::uint64_t accepted = 0;
      for (std::uint64_t t = 0; t < kPerClient; ++t) {
        const std::int64_t i = static_cast<std::int64_t>(t % 16);
        const std::int64_t j = static_cast<std::int64_t>((t / 16) % 3) * 8;
        Request req;
        req.tenant = static_cast<Tenant>(c);
        req.op = Op::kRead;
        req.where = {PatternKind::kRow, {i, j}};
        req.tag = static_cast<std::uint64_t>(i) * 64 +
                  static_cast<std::uint64_t>(j);
        req.listener = &listeners[static_cast<std::size_t>(c)];
        const unsigned port = static_cast<unsigned>(c) % 2;
        for (int attempt = 0; attempt < 10'000; ++attempt) {
          const Status s = engine.submit(port, std::move(req));
          if (s == Status::kAccepted) {
            ++accepted;
            break;
          }
          ASSERT_EQ(s, Status::kOverloaded);  // never rejected, never lost
          std::this_thread::yield();
        }
      }
      total_accepted.fetch_add(accepted);
    });
  }
  for (auto& th : clients) th.join();
  engine.stop();

  std::uint64_t completions = 0;
  std::set<RequestId> all_ids;
  for (auto& listener : listeners) {
    completions += listener.ok.load() + listener.shutdown.load();
    EXPECT_EQ(listener.data_mismatches.load(), 0u);
    for (const RequestId id : listener.ids) {
      EXPECT_TRUE(all_ids.insert(id).second) << "id " << id << " fired twice";
    }
  }
  EXPECT_EQ(completions, total_accepted.load());
  EXPECT_EQ(engine.stats().accepted, total_accepted.load());
  EXPECT_GT(engine.stats().shed, 0u);  // the tiny queues really shed
  EXPECT_LE(engine.stats().max_queue_depth, 8u);
}

TEST(ServiceHammer, ShardedMultiTenantUnderLoad) {
  maxsim::LMem lmem(1 << 22);
  maxsim::LMemMatrix matrix{0, 128, 64, 64};
  {
    std::vector<hw::Word> row(64);
    for (std::int64_t i = 0; i < 128; ++i) {
      for (std::int64_t j = 0; j < 64; ++j) {
        row[static_cast<std::size_t>(j)] = static_cast<hw::Word>(i * 1000 + j);
      }
      lmem.write(matrix.word_addr(i, 0), row);
    }
  }
  ShardedOptions opt;
  opt.shards = 2;
  opt.engine.ports = 2;
  opt.engine.queue_bound = 16;
  opt.shard_config = cfg();
  ShardedService service(lmem, matrix, opt);
  runtime::ThreadPool pool(3);
  service.start(pool);

  constexpr int kClients = 3;
  constexpr std::uint64_t kPerClient = 300;
  std::vector<CountingListener> listeners(kClients);
  std::atomic<std::uint64_t> total_accepted{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  const std::int64_t tile_rows = service.tile_rows();
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::uint64_t accepted = 0;
      for (std::uint64_t t = 0; t < kPerClient; ++t) {
        // Scan rows inside a tile the client hops between.
        const std::int64_t tile =
            static_cast<std::int64_t>((t / 8 + static_cast<std::uint64_t>(c)) %
                                      (128 / tile_rows));
        const std::int64_t i =
            tile * tile_rows + static_cast<std::int64_t>(t % 8) % tile_rows;
        const std::int64_t j = 16;
        Request req;
        req.tenant = static_cast<Tenant>(c);
        req.op = Op::kRead;
        req.where = {PatternKind::kRow, {i, j}};
        req.tag = static_cast<std::uint64_t>(i) * 64 +
                  static_cast<std::uint64_t>(j);
        req.listener = &listeners[static_cast<std::size_t>(c)];
        for (int attempt = 0; attempt < 10'000; ++attempt) {
          const Status s = service.submit(std::move(req));
          if (s == Status::kAccepted) {
            ++accepted;
            break;
          }
          ASSERT_EQ(s, Status::kOverloaded);
          std::this_thread::yield();
        }
      }
      total_accepted.fetch_add(accepted);
    });
  }
  for (auto& th : clients) th.join();
  service.stop();

  std::uint64_t completions = 0;
  for (auto& listener : listeners) {
    completions += listener.ok.load() + listener.shutdown.load();
    EXPECT_EQ(listener.data_mismatches.load(), 0u);
  }
  EXPECT_EQ(completions, total_accepted.load());
  EXPECT_EQ(service.stats().accepted, total_accepted.load());
}

}  // namespace
}  // namespace polymem::service
