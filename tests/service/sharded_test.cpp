// ShardedService: multi-tenant routing over several PolyMem shards
// caching one shared LMem matrix. Engines are pumped manually where
// determinism matters; hammer_mt_test.cpp covers the started drains.
#include "service/sharded.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace polymem::service {
namespace {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

core::PolyMemConfig shard_cfg() {
  core::PolyMemConfig c;
  c.scheme = maf::Scheme::kReRo;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  c.read_ports = 2;
  return c;
}

maxsim::LMemMatrix make_matrix(maxsim::LMem& lmem, std::int64_t rows,
                               std::int64_t cols) {
  maxsim::LMemMatrix m{128, rows, cols, cols};
  std::vector<hw::Word> row(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      row[static_cast<std::size_t>(j)] = static_cast<hw::Word>(i * 1000 + j);
    }
    lmem.write(m.word_addr(i, 0), row);
  }
  return m;
}

ShardedOptions options(unsigned shards = 2, unsigned ports = 2) {
  ShardedOptions o;
  o.shards = shards;
  o.engine.ports = ports;
  o.engine.queue_bound = 1024;
  o.shard_config = shard_cfg();
  return o;
}

struct Recorder : CompletionListener {
  struct Entry {
    Completion meta;
    std::vector<Word> data;
  };
  std::vector<Entry> entries;
  void on_complete(const Completion& completion) override {
    entries.push_back(
        {completion, {completion.data.begin(), completion.data.end()}});
  }
};

void pump_all(ShardedService& service) {
  for (unsigned s = 0; s < service.shards(); ++s) {
    service.engine(s).run_until_idle();
  }
}

TEST(ShardedService, ReadsFromManyTenantsMatchTheHostMirror) {
  maxsim::LMem lmem(1 << 22);
  const auto matrix = make_matrix(lmem, 128, 128);
  ShardedService service(lmem, matrix, options(/*shards=*/3));
  Recorder rec;

  // Every tenant scans a few rows of its own tile; anchors stay in-tile.
  std::map<std::uint64_t, Coord> trace;
  std::uint64_t tag = 0;
  for (Tenant tenant = 0; tenant < 6; ++tenant) {
    const std::int64_t ti = tenant % 4;
    for (std::int64_t r = 0; r < service.tile_rows(); ++r) {
      const Coord anchor{ti * service.tile_rows() + r,
                         (tenant % 2) * service.tile_cols() + 8};
      Request req;
      req.tenant = tenant;
      req.op = Op::kRead;
      req.where = {PatternKind::kRow, anchor};
      req.tag = tag;
      req.listener = &rec;
      trace[tag] = anchor;
      ASSERT_EQ(service.submit(std::move(req)), Status::kAccepted);
      ++tag;
    }
  }
  pump_all(service);

  ASSERT_EQ(rec.entries.size(), trace.size());
  for (const auto& e : rec.entries) {
    const Coord anchor = trace.at(e.meta.tag);
    ASSERT_EQ(e.data.size(), 8u);
    for (unsigned k = 0; k < 8; ++k) {
      EXPECT_EQ(e.data[k],
                static_cast<hw::Word>(anchor.i * 1000 + anchor.j + k))
          << "tag " << e.meta.tag;
    }
  }
  const EngineStats stats = service.stats();
  EXPECT_EQ(stats.accepted, trace.size());
  EXPECT_EQ(stats.completed_reads, trace.size());
}

TEST(ShardedService, RoutingIsStableAndTileDisjoint) {
  maxsim::LMem lmem(1 << 22);
  const auto matrix = make_matrix(lmem, 128, 128);
  ShardedService service(lmem, matrix, options(/*shards=*/4));

  std::set<unsigned> shards_used;
  for (std::int64_t ti = 0; ti < 128 / service.tile_rows(); ++ti) {
    for (std::int64_t tj = 0; tj < 128 / service.tile_cols(); ++tj) {
      const Coord a{ti * service.tile_rows(), tj * service.tile_cols()};
      const unsigned shard = service.shard_of(a);
      EXPECT_EQ(shard, service.shard_of(a));  // stable
      // Every anchor inside the tile routes to the same shard.
      EXPECT_EQ(shard, service.shard_of({a.i + service.tile_rows() - 1,
                                         a.j + service.tile_cols() - 1}));
      shards_used.insert(shard);
    }
  }
  // The hash spreads 32 tiles over all 4 shards.
  EXPECT_EQ(shards_used.size(), 4u);
}

TEST(ShardedService, WriteThenReadSameTenantSameTileIsOrdered) {
  maxsim::LMem lmem(1 << 22);
  const auto matrix = make_matrix(lmem, 128, 128);
  ShardedService service(lmem, matrix, options());
  Recorder rec;

  const Coord anchor{33, 40};
  std::vector<Word> payload(8);
  for (std::size_t k = 0; k < payload.size(); ++k) {
    payload[k] = 0xFACE00 + static_cast<Word>(k);
  }
  Request write;
  write.tenant = 7;
  write.op = Op::kWrite;
  write.where = {PatternKind::kRow, anchor};
  write.tag = 0;
  write.listener = &rec;
  write.payload = payload;
  ASSERT_EQ(service.submit(std::move(write)), Status::kAccepted);

  Request read;
  read.tenant = 7;  // same tenant + same tile => same shard, same port
  read.op = Op::kRead;
  read.where = {PatternKind::kRow, anchor};
  read.tag = 1;
  read.listener = &rec;
  ASSERT_EQ(service.submit(std::move(read)), Status::kAccepted);

  pump_all(service);
  ASSERT_EQ(rec.entries.size(), 2u);
  EXPECT_EQ(rec.entries[1].meta.op, Op::kRead);
  EXPECT_EQ(rec.entries[1].data, payload);

  // flush publishes the dirty tile to the shared LMem.
  std::vector<hw::Word> lmem_row(8);
  lmem.read(matrix.word_addr(anchor.i, anchor.j), lmem_row);
  EXPECT_NE(lmem_row, payload);
  service.flush();
  lmem.read(matrix.word_addr(anchor.i, anchor.j), lmem_row);
  EXPECT_EQ(lmem_row, payload);
}

TEST(ShardedService, RejectsNegativeAnchorsBeforeRouting) {
  maxsim::LMem lmem(1 << 22);
  const auto matrix = make_matrix(lmem, 128, 128);
  ShardedService service(lmem, matrix, options());
  Recorder rec;
  Request req;
  req.op = Op::kRead;
  req.where = {PatternKind::kRow, {-1, 0}};
  req.listener = &rec;
  EXPECT_EQ(service.submit(std::move(req)), Status::kRejected);
}

TEST(ShardedService, StartRequiresOneWorkerPerShard) {
  maxsim::LMem lmem(1 << 22);
  const auto matrix = make_matrix(lmem, 128, 128);
  ShardedService service(lmem, matrix, options(/*shards=*/3));
  runtime::ThreadPool pool(2);
  EXPECT_THROW(service.start(pool), InvalidArgument);
}

}  // namespace
}  // namespace polymem::service
