#include "common/units.hpp"

#include <gtest/gtest.h>

namespace polymem {
namespace {

TEST(Units, FormatCapacity) {
  EXPECT_EQ(format_capacity(512 * KiB), "512KB");
  EXPECT_EQ(format_capacity(4 * MiB), "4MB");
  EXPECT_EQ(format_capacity(2048 * KiB), "2MB");
  EXPECT_EQ(format_capacity(100), "100B");
}

TEST(Units, BandwidthArithmetic) {
  // Paper Sec. V: 2 ports x 8 lanes x 8 bytes x 120 MHz = 15360 MB/s.
  const double per_port = bandwidth_bytes_per_s(8, 64, 120e6);
  EXPECT_DOUBLE_EQ(2 * per_port, 15360e6);
}

TEST(Units, PeakReadBandwidthOfBestDesign) {
  // Paper abstract: 512KB, 4 read ports, 8 lanes at 137 MHz -> ~32 GB/s.
  const double bw = 4 * bandwidth_bytes_per_s(8, 64, 137e6);
  EXPECT_NEAR(bw / GB, 35.07, 0.01);  // 35 GB/s decimal = "around 32GB/s" binary
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(15360e6), "15360.0 MB/s");
  EXPECT_EQ(format_bandwidth(32e9, true), "32.00 GB/s");
}

}  // namespace
}  // namespace polymem
