#include "common/error.hpp"

#include <gtest/gtest.h>

namespace polymem {
namespace {

TEST(Error, RequireThrowsInvalidArgumentWithContext) {
  try {
    POLYMEM_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, SupportedThrowsUnsupported) {
  EXPECT_THROW(POLYMEM_SUPPORTED(false, "not built"), Unsupported);
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(POLYMEM_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(POLYMEM_SUPPORTED(true, "fine"));
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw Unsupported("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

}  // namespace
}  // namespace polymem
