#include "common/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem {
namespace {

TEST(ConfigFile, ParsesKeyValuesAndComments) {
  const auto cfg = ConfigFile::parse(
      "# a DSE configuration\n"
      "capacity_kb = 512\n"
      "scheme = ReRo   # trailing comment\n"
      "lanes=8\n"
      "\n"
      "clock_mhz = 196.5\n"
      "validate = true\n");
  EXPECT_EQ(cfg.get_int("capacity_kb"), 512);
  EXPECT_EQ(cfg.get_string("scheme"), "ReRo");
  EXPECT_EQ(cfg.get_int("lanes"), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("clock_mhz"), 196.5);
  EXPECT_TRUE(cfg.get_bool("validate"));
}

TEST(ConfigFile, MissingKeyThrows) {
  const auto cfg = ConfigFile::parse("a = 1\n");
  EXPECT_THROW(cfg.get_string("b"), InvalidArgument);
  EXPECT_FALSE(cfg.has("b"));
  EXPECT_TRUE(cfg.has("a"));
}

TEST(ConfigFile, FallbackGetters) {
  const auto cfg = ConfigFile::parse("x = 3\n");
  EXPECT_EQ(cfg.get_int_or("x", 7), 3);
  EXPECT_EQ(cfg.get_int_or("y", 7), 7);
  EXPECT_EQ(cfg.get_string_or("name", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double_or("z", 1.5), 1.5);
  EXPECT_TRUE(cfg.get_bool_or("flag", true));
}

TEST(ConfigFile, MalformedLineThrows) {
  EXPECT_THROW(ConfigFile::parse("no equals sign here\n"), InvalidArgument);
  EXPECT_THROW(ConfigFile::parse("= value-without-key\n"), InvalidArgument);
}

TEST(ConfigFile, TypeErrorsThrow) {
  const auto cfg = ConfigFile::parse("n = 12abc\nb = maybe\n");
  EXPECT_THROW(cfg.get_int("n"), InvalidArgument);
  EXPECT_THROW(cfg.get_bool("b"), InvalidArgument);
}

TEST(ConfigFile, BoolSpellings) {
  const auto cfg = ConfigFile::parse(
      "a = true\nb = 0\nc = YES\nd = off\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
}

TEST(ConfigFile, HexIntegers) {
  const auto cfg = ConfigFile::parse("addr = 0x10\n");
  EXPECT_EQ(cfg.get_int("addr"), 16);
}

TEST(ConfigFile, LoadMissingFileThrows) {
  EXPECT_THROW(ConfigFile::load("/nonexistent/path/cfg.txt"), InvalidArgument);
}

}  // namespace
}  // namespace polymem
