#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace polymem {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(a.bits(), b.bits());
  }
  // Different seeds diverge (overwhelmingly likely within a few draws).
  bool diverged = false;
  Rng a2(42);
  for (int k = 0; k < 10; ++k) diverged = diverged || (a2.bits() != c.bits());
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformRespectsInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int k = 0; k < 1000; ++k) {
    const auto v = rng.uniform(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 1000 draws
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int k = 0; k < 1000; ++k) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(99);
  int hits = 0;
  const int n = 10000;
  for (int k = 0; k < n; ++k) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

}  // namespace
}  // namespace polymem
