#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace polymem {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSeries) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-stddev example
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) { a.add(i); all.add(i); }
  for (int i = 10; i < 25; ++i) { b.add(i * 0.5); all.add(i * 0.5); }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(ErrorMetrics, MeanAbsError) {
  EXPECT_DOUBLE_EQ(mean_abs_error({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(mean_abs_error({1, 2, 3}, {2, 2, 5}), 1.0);
}

TEST(ErrorMetrics, MeanAbsRelError) {
  EXPECT_DOUBLE_EQ(mean_abs_rel_error({110, 90}, {100, 100}), 0.1);
  EXPECT_THROW(mean_abs_rel_error({1}, {0}), InvalidArgument);
  EXPECT_THROW(mean_abs_rel_error({1, 2}, {1}), InvalidArgument);
}

TEST(CacheCounters, HitRate) {
  CacheCounters c;
  EXPECT_EQ(c.hit_rate(), 0.0);  // no accesses yet: neutral, not NaN
  c.hits = 3;
  c.misses = 1;
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.75);
}

TEST(CacheCounters, Accumulate) {
  CacheCounters a{.hits = 1,
                  .misses = 2,
                  .evictions = 3,
                  .writebacks = 4,
                  .prefetch_issued = 5,
                  .prefetch_useful = 6,
                  .prefetch_dropped = 7};
  CacheCounters b = a;
  a += b;
  EXPECT_EQ(a.hits, 2u);
  EXPECT_EQ(a.misses, 4u);
  EXPECT_EQ(a.evictions, 6u);
  EXPECT_EQ(a.writebacks, 8u);
  EXPECT_EQ(a.prefetch_issued, 10u);
  EXPECT_EQ(a.prefetch_useful, 12u);
  EXPECT_EQ(a.prefetch_dropped, 14u);
  EXPECT_EQ(b, b);
}

TEST(Reservoir, ExactPercentilesBelowCapacity) {
  Reservoir r(256);
  // 0..99 inserted in a scrambled order: percentiles are exact.
  for (int k = 0; k < 100; ++k) r.add((k * 37) % 100);
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.size(), 100u);
  EXPECT_DOUBLE_EQ(r.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(r.percentile(100), 99.0);
  EXPECT_NEAR(r.percentile(50), 49.5, 1e-12);
  EXPECT_NEAR(r.percentile(95), 94.05, 1e-12);  // 0.95 * 99
  EXPECT_NEAR(r.percentile(99), 98.01, 1e-12);  // 0.99 * 99
  const auto s = r.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 99.0);
  EXPECT_NEAR(s.p50, 49.5, 1e-12);
  EXPECT_NEAR(s.p95, 94.05, 1e-12);
  EXPECT_NEAR(s.p99, 98.01, 1e-12);
}

TEST(Reservoir, EmptyYieldsNaN) {
  Reservoir r(16);
  EXPECT_TRUE(std::isnan(r.percentile(50)));
  EXPECT_EQ(r.summary().count, 0u);
}

TEST(Reservoir, RequiresValidArguments) {
  EXPECT_THROW(Reservoir(0), InvalidArgument);
  Reservoir r(4);
  r.add(1.0);
  EXPECT_THROW(r.percentile(-1), InvalidArgument);
  EXPECT_THROW(r.percentile(101), InvalidArgument);
}

TEST(Reservoir, SamplingKeepsCapacityAndApproximatesTheDistribution) {
  // 100k uniform values into 512 slots: the retained set stays at
  // capacity and the median lands near the true median.
  Reservoir r(512, /*seed=*/7);
  for (int k = 0; k < 100'000; ++k) r.add(k % 1000);
  EXPECT_EQ(r.count(), 100'000u);
  EXPECT_EQ(r.size(), 512u);
  EXPECT_NEAR(r.percentile(50), 500.0, 100.0);
  EXPECT_GE(r.percentile(99), r.percentile(50));
}

TEST(Reservoir, DeterministicForSameSeed) {
  auto run = [] {
    Reservoir r(64, 42);
    for (int k = 0; k < 5000; ++k) r.add(k * 13 % 977);
    return r.summary();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(HighWater, TracksTheMaximum) {
  HighWater hw;
  EXPECT_EQ(hw.max(), 0u);
  hw.record(3);
  hw.record(7);
  hw.record(5);
  EXPECT_EQ(hw.max(), 7u);
}

TEST(ErrorMetrics, Pearson) {
  // Perfect positive and negative correlation.
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
  // Constant series degenerate to 0.
  EXPECT_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

}  // namespace
}  // namespace polymem
