#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace polymem {
namespace {

TEST(FloorDiv, MatchesTruncationForPositive) {
  EXPECT_EQ(floordiv(7, 2), 3);
  EXPECT_EQ(floordiv(8, 2), 4);
  EXPECT_EQ(floordiv(0, 5), 0);
}

TEST(FloorDiv, RoundsTowardsNegativeInfinity) {
  EXPECT_EQ(floordiv(-1, 2), -1);
  EXPECT_EQ(floordiv(-7, 2), -4);
  EXPECT_EQ(floordiv(-8, 2), -4);
  EXPECT_EQ(floordiv(7, -2), -4);
  EXPECT_EQ(floordiv(-7, -2), 3);
}

TEST(FloorMod, NonNegativeForPositiveDivisor) {
  for (int a = -50; a <= 50; ++a) {
    for (int b : {1, 2, 3, 4, 7, 8}) {
      const int m = floormod(a, b);
      EXPECT_GE(m, 0);
      EXPECT_LT(m, b);
      EXPECT_EQ(floordiv(a, b) * b + m, a) << "a=" << a << " b=" << b;
    }
  }
}

TEST(FloorDivMod, Int64Extremes) {
  const std::int64_t big = std::int64_t{1} << 40;
  EXPECT_EQ(floordiv(-big - 1, std::int64_t{4}), -(big / 4) - 1);
  EXPECT_EQ(floormod(-big - 1, std::int64_t{4}), 3);
}

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(8, 4), 2);
  EXPECT_EQ(ceil_div(9, 4), 3);
  EXPECT_EQ(ceil_div(1, 4), 1);
}

TEST(RoundUp, Basics) {
  EXPECT_EQ(round_up(5, 4), 8);
  EXPECT_EQ(round_up(8, 4), 8);
  EXPECT_EQ(round_up(1, 512), 512);
}

TEST(IsPow2, Table) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Log2, FloorAndCeil) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(1024), 10u);
  EXPECT_EQ(log2_ceil(1025), 11u);
}

}  // namespace
}  // namespace polymem
