#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace polymem {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Every data line must be present.
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, RejectsHeaderAfterRows) {
  TextTable t;
  t.add_row({"x", "y"});
  EXPECT_THROW(t.set_header({"a", "b"}), InvalidArgument);
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(std::uint64_t{12345}), "12345");
  EXPECT_EQ(TextTable::num(-7), "-7");
}

TEST(TextTable, RowsWithoutHeaderMustMatchFirstRow) {
  TextTable t;
  t.add_row({"1", "2", "3"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace polymem
