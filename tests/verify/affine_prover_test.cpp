// Differential validation of the symbolic affine conflict-freedom prover
// (verify/affine_prover.hpp) against the brute-force period-lattice
// sweep, plus the affine IR's parser/printer contracts.
//
// The central gate: for every scheme and a battery of >= 20 affine
// patterns per scheme (the canonical suite covering all six Table-I
// families plus strided/skewed variants, and deliberately conflicting
// specs), the symbolic verdict must be bit-identical to the exhaustive
// sweep for both anchor classes, and every refutation must ship a
// counterexample that replays to a real bank collision on the production
// Maf.
#include "verify/affine_prover.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "maf/maf.hpp"
#include "verify/affine.hpp"

namespace polymem::verify {
namespace {

using access::PatternKind;
using maf::Scheme;
using maf::SupportLevel;

// Replays a refutation witness against the production MAF: two distinct
// elements, both produced by the pattern's lane map at the witness
// anchor, really landing in the same bank.
void expect_witness_replays(const maf::Maf& maf, const AffinePattern& pattern,
                            const AffineCounterexample& cx,
                            AnchorClass anchors) {
  EXPECT_FALSE(cx.elem_a.i == cx.elem_b.i && cx.elem_a.j == cx.elem_b.j)
      << pattern.spec();
  EXPECT_EQ(maf.bank(cx.elem_a.i, cx.elem_a.j), cx.bank) << pattern.spec();
  EXPECT_EQ(maf.bank(cx.elem_b.i, cx.elem_b.j), cx.bank) << pattern.spec();
  const auto lane_elem = [&](std::int64_t lane) {
    return pattern.element(cx.anchor, lane / pattern.lanes_v,
                           lane % pattern.lanes_v);
  };
  const access::Coord a = lane_elem(cx.lane_a);
  const access::Coord b = lane_elem(cx.lane_b);
  EXPECT_TRUE(a.i == cx.elem_a.i && a.j == cx.elem_a.j) << pattern.spec();
  EXPECT_TRUE(b.i == cx.elem_b.i && b.j == cx.elem_b.j) << pattern.spec();
  if (anchors == AnchorClass::kAligned) {
    EXPECT_EQ(cx.anchor.i % maf.p(), 0) << pattern.spec();
    EXPECT_EQ(cx.anchor.j % maf.q(), 0) << pattern.spec();
  }
}

// The per-scheme pattern battery: the canonical suite (all Table-I
// families as affine specs plus strided/skewed variants) extended with
// deliberately conflicting and deliberately odd specs.
std::vector<AffinePattern> battery(unsigned p, unsigned q) {
  std::vector<AffinePattern> out = canonical_affine_suite(p, q);
  const char* extras[] = {
      "lanes 1x8 ; i = 0 ; j = 2*v",        // stride-2 row: collides
      "lanes 8x1 ; i = 2*u ; j = 0",        // stride-2 column: collides
      "lanes 1x8 ; i = 0 ; j = 4*v",        // stride-4 row: collides
      "lanes 2x4 ; i = 2*u ; j = 2*v",      // stride-2 rect: collides
      "lanes 1x8 ; i = 0 ; j = 8*v + 1",    // period-stride row: collides
      "lanes 1x8 ; i = v ; j = v",          // main diagonal
      "lanes 4x2 ; i = u ; j = v",          // transposed rectangle
      "lanes 1x8 ; i = v ; j = 3*v",        // skewed diagonal
  };
  for (const char* spec : extras) out.push_back(AffinePattern::parse(spec));
  return out;
}

TEST(AffineProver, SymbolicVerdictMatchesSweepForEveryScheme) {
  for (Scheme scheme : maf::kAllSchemes) {
    const maf::Maf maf(scheme, 2, 4);
    const SymbolicMaf sym = SymbolicMaf::of(maf);
    const std::vector<AffinePattern> patterns = battery(2, 4);
    ASSERT_GE(patterns.size(), 20u);
    for (const AffinePattern& pattern : patterns)
      for (AnchorClass anchors : {AnchorClass::kAny, AnchorClass::kAligned}) {
        const AffineVerdict symbolic =
            prove_conflict_free(sym, pattern, anchors);
        const AffineVerdict swept = sweep_conflict_free(maf, pattern, anchors);
        ASSERT_TRUE(symbolic.degenerate.empty()) << pattern.spec();
        EXPECT_EQ(symbolic.conflict_free, swept.conflict_free)
            << maf.describe() << " pattern " << pattern.spec() << " ("
            << anchor_class_name(anchors) << " anchors)";
        if (!symbolic.conflict_free) {
          ASSERT_TRUE(symbolic.counterexample.has_value()) << pattern.spec();
          expect_witness_replays(maf, pattern, *symbolic.counterexample,
                                 anchors);
        }
      }
  }
}

TEST(AffineProver, DifferentialHoldsAcrossGeometries) {
  const std::pair<unsigned, unsigned> geometries[] = {
      {2, 4}, {4, 4}, {2, 8}, {4, 8}, {8, 8}, {4, 2}};
  for (Scheme scheme : maf::kAllSchemes)
    for (const auto& [p, q] : geometries) {
      const maf::Maf maf(scheme, p, q);
      const SymbolicMaf sym = SymbolicMaf::of(maf);
      EXPECT_EQ(validate_symbolic_maf(sym, maf), "") << maf.describe();
      for (const AffinePattern& pattern : canonical_affine_suite(p, q))
        for (AnchorClass anchors :
             {AnchorClass::kAny, AnchorClass::kAligned}) {
          const AffineVerdict symbolic =
              prove_conflict_free(sym, pattern, anchors);
          const AffineVerdict swept =
              sweep_conflict_free(maf, pattern, anchors);
          EXPECT_EQ(symbolic.conflict_free, swept.conflict_free)
              << maf.describe() << " pattern " << pattern.spec() << " ("
              << anchor_class_name(anchors) << " anchors)";
          if (symbolic.counterexample)
            expect_witness_replays(maf, pattern, *symbolic.counterexample,
                                   anchors);
        }
    }
}

TEST(AffineProver, KnownReRoFactsHold) {
  const maf::Maf rero(Scheme::kReRo, 2, 4);
  const SymbolicMaf sym = SymbolicMaf::of(rero);
  // A stride-3 row is served at every anchor (3 is coprime to q = 4)...
  EXPECT_EQ(prove_affine_support(
                sym, AffinePattern::parse("lanes 1x8 ; i = 0 ; j = 3*v")),
            SupportLevel::kAny);
  // ...but a stride-2 row folds lanes 0 and 4 onto one bank.
  AffineCounterexample cx;
  EXPECT_EQ(prove_affine_support(
                sym, AffinePattern::parse("lanes 1x8 ; i = 0 ; j = 2*v"), &cx),
            SupportLevel::kNone);
  EXPECT_EQ(cx.lane_a, 0);
  EXPECT_EQ(cx.lane_b, 4);
  EXPECT_EQ(rero.bank(cx.elem_a.i, cx.elem_a.j), cx.bank);
  EXPECT_EQ(rero.bank(cx.elem_b.i, cx.elem_b.j), cx.bank);
}

TEST(AffineProver, AlignedOnlySupportShipsUnalignedWitness) {
  // RoCo serves rectangles only at p/q-aligned anchors: the prover must
  // say kAligned and hand back the unaligned anchor that rules out kAny.
  const maf::Maf roco(Scheme::kRoCo, 2, 4);
  const SymbolicMaf sym = SymbolicMaf::of(roco);
  const AffinePattern rect = AffinePattern::of(PatternKind::kRect, 2, 4);
  AffineCounterexample cx;
  EXPECT_EQ(prove_affine_support(sym, rect, &cx), SupportLevel::kAligned);
  EXPECT_TRUE(cx.anchor.i % 2 != 0 || cx.anchor.j % 4 != 0);
  EXPECT_EQ(roco.bank(cx.elem_a.i, cx.elem_a.j), cx.bank);
  EXPECT_EQ(roco.bank(cx.elem_b.i, cx.elem_b.j), cx.bank);
}

TEST(AffineProver, DegeneratePatternsAreRejectedNotRefuted) {
  const SymbolicMaf sym = SymbolicMaf::of(maf::Maf(Scheme::kReO, 2, 4));
  // Two lanes alias the same element.
  const AffineVerdict alias = prove_conflict_free(
      sym, AffinePattern::parse("lanes 2x4 ; i = 0 ; j = v"),
      AnchorClass::kAny);
  EXPECT_FALSE(alias.ok());
  EXPECT_NE(alias.degenerate.find("alias"), std::string::npos);
  // An empty lane grid can never be proven.
  AffinePattern empty;
  empty.lanes_u = 0;
  empty.lanes_v = 4;
  EXPECT_NE(empty.invalid_reason(), "");
  EXPECT_FALSE(
      prove_conflict_free(sym, empty, AnchorClass::kAny).degenerate.empty());
}

TEST(AffineProver, CanonicalSuiteCoversTableOneWithUniqueNames) {
  const std::vector<AffinePattern> suite = canonical_affine_suite(2, 4);
  EXPECT_EQ(suite.size(), 14u);
  std::set<std::string> names;
  for (const AffinePattern& pattern : suite) {
    names.insert(pattern.name);
    EXPECT_EQ(pattern.invalid_reason(), "") << pattern.name;
  }
  EXPECT_EQ(names.size(), suite.size());
  for (PatternKind kind :
       {PatternKind::kRow, PatternKind::kCol, PatternKind::kRect,
        PatternKind::kTRect, PatternKind::kMainDiag, PatternKind::kSecDiag}) {
    const AffinePattern family = AffinePattern::of(kind, 2, 4);
    bool present = false;
    for (const AffinePattern& pattern : suite)
      present = present || (pattern.lanes_u == family.lanes_u &&
                            pattern.lanes_v == family.lanes_v &&
                            pattern.i == family.i && pattern.j == family.j);
    EXPECT_TRUE(present) << access::pattern_name(kind);
  }
}

TEST(AffinePatternTest, ParseRoundTripsThroughSpec) {
  const char* specs[] = {
      "lanes 1x8 ; i = 0 ; j = 3*v",
      "lanes 2x4 ; i = u ; j = v",
      "lanes 4x2 ; i = 2*u - v + 1 ; j = -u + 3",
  };
  for (const char* text : specs) {
    const AffinePattern parsed = AffinePattern::parse(text);
    const AffinePattern again = AffinePattern::parse(parsed.spec());
    EXPECT_EQ(parsed.lanes_u, again.lanes_u);
    EXPECT_EQ(parsed.lanes_v, again.lanes_v);
    EXPECT_EQ(parsed.i, again.i);
    EXPECT_EQ(parsed.j, again.j);
  }
  // Whitespace-insensitive.
  const AffinePattern tight = AffinePattern::parse("lanes 1x8;i=0;j=3*v");
  EXPECT_EQ(tight.j, (LaneExpr{0, 3, 0}));
  EXPECT_EQ(tight.count(), 8);
}

TEST(AffinePatternTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(AffinePattern::parse(""), InvalidArgument);
  EXPECT_THROW(AffinePattern::parse("lanes 1x8 ; i = 0"), InvalidArgument);
  EXPECT_THROW(AffinePattern::parse("lanes 1x8 ; i = 0 ; j = 3*w"),
               InvalidArgument);
  EXPECT_THROW(AffinePattern::parse("lanes axb ; i = 0 ; j = v"),
               InvalidArgument);
  EXPECT_THROW(AffinePattern::parse("lanes 1x8 ; i = 0 ; j = 3**v"),
               InvalidArgument);
}

TEST(AffinePatternTest, BoundingBoxCoversLatticeCorners) {
  const AffinePattern pattern =
      AffinePattern::parse("lanes 2x4 ; i = 2*u - v ; j = 3*v + 1");
  const AffinePattern::Box box = pattern.bounding_box();
  EXPECT_EQ(box.min_i, -3);  // u = 0, v = 3
  EXPECT_EQ(box.max_i, 2);   // u = 1, v = 0
  EXPECT_EQ(box.min_j, 1);   // v = 0
  EXPECT_EQ(box.max_j, 10);  // v = 3
}

}  // namespace
}  // namespace polymem::verify
