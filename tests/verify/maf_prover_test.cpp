#include "verify/maf_prover.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/error.hpp"
#include "common/math.hpp"
#include "maf/addressing.hpp"

namespace polymem::verify {
namespace {

using access::PatternKind;
using maf::Scheme;
using maf::SupportLevel;

TEST(MafProver, ProvesAllSchemesAt2x4And4x4) {
  for (Scheme scheme : maf::kAllSchemes) {
    for (const auto& [p, q] : {std::pair{2u, 4u}, std::pair{4u, 4u}}) {
      const ProverReport report = prove(scheme, p, q);
      EXPECT_TRUE(report.ok) << report.summary();
      EXPECT_EQ(report.patterns.size(), 6u);
    }
  }
}

TEST(MafProver, ProvenLevelsMatchOracleClaims) {
  const ProverReport report = prove(Scheme::kRoCo, 2, 4);
  ASSERT_TRUE(report.ok) << report.summary();
  for (const PatternProof& proof : report.patterns) {
    EXPECT_EQ(proof.proven, proof.claimed)
        << access::pattern_name(proof.pattern);
    if (proof.advertised) {
      EXPECT_NE(proof.proven, SupportLevel::kNone);
    }
  }
}

TEST(MafProver, ProveAcceptsRealConfig) {
  const auto config = core::PolyMemConfig::with_capacity(
      64 * 1024, Scheme::kReRo, 2, 4);
  const ProverReport report = prove(config);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.period_i, 2);
  EXPECT_EQ(report.period_j, 8);
}

TEST(MafProver, SummaryNamesSchemeAndResult) {
  const ProverReport report = prove(Scheme::kReTr, 2, 4);
  ASSERT_TRUE(report.ok);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("ReTr 2x4"), std::string::npos);
  EXPECT_NE(summary.find("PROVEN"), std::string::npos);
  EXPECT_NE(summary.find("pattern trect"), std::string::npos);
}

TEST(MafProver, CheckCodesAreStableAndDistinct) {
  const CheckKind kinds[] = {
      CheckKind::kConstruction,        CheckKind::kBankRange,
      CheckKind::kPeriodicity,         CheckKind::kConflictFreedom,
      CheckKind::kAddressInjectivity,  CheckKind::kTemplateAgreement,
      CheckKind::kAffineConflict,      CheckKind::kAffineForm,
      CheckKind::kAffineDifferential,  CheckKind::kAffineDegenerate,
  };
  std::set<std::string> codes;
  for (CheckKind kind : kinds) {
    codes.insert(check_code(kind));
    EXPECT_NE(std::string(check_name(kind)), "");
  }
  EXPECT_EQ(codes.size(), 10u);
  EXPECT_STREQ(check_code(CheckKind::kConstruction), "PMV001");
  EXPECT_STREQ(check_code(CheckKind::kBankRange), "PMV002");
  EXPECT_STREQ(check_code(CheckKind::kPeriodicity), "PMV003");
  EXPECT_STREQ(check_code(CheckKind::kConflictFreedom), "PMV004");
  EXPECT_STREQ(check_code(CheckKind::kAddressInjectivity), "PMV005");
  EXPECT_STREQ(check_code(CheckKind::kTemplateAgreement), "PMV006");
  EXPECT_STREQ(check_code(CheckKind::kAffineConflict), "PMV007");
  EXPECT_STREQ(check_code(CheckKind::kAffineForm), "PMV008");
  EXPECT_STREQ(check_code(CheckKind::kAffineDifferential), "PMV009");
  EXPECT_STREQ(check_code(CheckKind::kAffineDegenerate), "PMV010");
  EXPECT_STREQ(check_name(CheckKind::kConflictFreedom), "conflict-freedom");
  EXPECT_STREQ(check_name(CheckKind::kAffineConflict), "affine-conflict");
}

// ---- deliberately corrupted mutants the prover must reject ----

// Mutant 1: a "ReRo" whose rotation term was dropped (it degenerates to
// ReO) — rows are no longer conflict-free, and the prover must produce
// the offending anchor and lane pair.
TEST(MafProverMutant, DroppedRotationBreaksRowConflictFreedom) {
  const maf::Maf rero(Scheme::kReRo, 2, 4);
  MafModel mutant = model_of(rero);
  mutant.bank = [](std::int64_t i, std::int64_t j) {
    return static_cast<unsigned>(floormod<std::int64_t>(i, 2) * 4 +
                                 floormod<std::int64_t>(j, 4));
  };
  const auto violation = check_conflict_freedom(mutant, PatternKind::kRow,
                                                /*aligned_only=*/false);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->check, CheckKind::kConflictFreedom);
  EXPECT_NE(violation->message.find("[PMV004]"), std::string::npos);
  EXPECT_NE(violation->message.find("pattern row"), std::string::npos);
  EXPECT_NE(violation->message.find("lanes"), std::string::npos);
  EXPECT_NE(violation->message.find("bank"), std::string::npos);
}

// Mutant 2: the real ReRo bank function with an understated j-period
// (4 instead of p*q = 8) — the periodicity proof must refute the claim,
// since a wrong period would poison every plan-cache residue class.
TEST(MafProverMutant, UnderstatedPeriodIsRefuted) {
  const maf::Maf rero(Scheme::kReRo, 2, 4);
  MafModel mutant = model_of(rero);
  ASSERT_EQ(mutant.period_j, 8);
  mutant.period_j = 4;
  const auto violation = check_periodicity(mutant);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->check, CheckKind::kPeriodicity);
  EXPECT_NE(violation->message.find("[PMV003]"), std::string::npos);
  EXPECT_NE(violation->message.find("period_j = 4"), std::string::npos);
}

// Mutant 3: an addressing function using the element column instead of
// the block column (A = |i/p|*(W/q) + j) — not a bijection onto the
// banks' words; the injectivity check must find the duplicate or
// out-of-range word.
TEST(MafProverMutant, BrokenAddressingIsNotInjective) {
  const maf::Maf rero(Scheme::kReRo, 2, 4);
  const MafModel model = model_of(rero);
  const std::int64_t height = 8, width = 16;
  const auto broken = [width](std::int64_t i, std::int64_t j) {
    return (i / 2) * (width / 4) + j;  // j, not |j/q|
  };
  const auto violation = check_address_injectivity(
      model, broken, height, width, (height / 2) * (width / 4));
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->check, CheckKind::kAddressInjectivity);
  EXPECT_NE(violation->message.find("[PMV005]"), std::string::npos);
}

// Mutant 4: two banks fused (every element of bank 0 rerouted to bank 1)
// — rectangles must collide, and the correct addressing must double-book
// words of bank 1.
TEST(MafProverMutant, FusedBanksCollide) {
  const maf::Maf reo(Scheme::kReO, 2, 4);
  MafModel mutant = model_of(reo);
  const maf::Maf& real = reo;
  mutant.bank = [&real](std::int64_t i, std::int64_t j) {
    const unsigned b = real.bank(i, j);
    return b == 0 ? 1u : b;
  };
  const auto conflict = check_conflict_freedom(mutant, PatternKind::kRect,
                                               /*aligned_only=*/false);
  ASSERT_TRUE(conflict.has_value());
  EXPECT_NE(conflict->message.find("pattern rect"), std::string::npos);

  const maf::AddressingFunction addressing(2, 4, 8, 16);
  const auto address = [&addressing](std::int64_t i, std::int64_t j) {
    return addressing.address(i, j);
  };
  const auto dup = check_address_injectivity(mutant, address, 8, 16,
                                             addressing.words_per_bank());
  ASSERT_TRUE(dup.has_value());
  EXPECT_NE(dup->message.find("both occupy bank 1"), std::string::npos);
}

// Mutant 5: a bank function escaping [0, p*q).
TEST(MafProverMutant, BankOutOfRangeIsCaught) {
  const maf::Maf reo(Scheme::kReO, 2, 4);
  MafModel mutant = model_of(reo);
  const maf::Maf& real = reo;
  mutant.bank = [&real](std::int64_t i, std::int64_t j) {
    return i == 1 && j == 1 ? 8u : real.bank(i, j);
  };
  const auto violation = check_bank_range(mutant);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->check, CheckKind::kBankRange);
  EXPECT_NE(violation->message.find("[PMV002]"), std::string::npos);
  EXPECT_NE(violation->message.find("bank(1,1) = 8"), std::string::npos);
}

TEST(MafProver, TemplateAgreementHoldsForAllSchemes) {
  for (Scheme scheme : maf::kAllSchemes) {
    core::PolyMemConfig config;
    config.scheme = scheme;
    config.p = 2;
    config.q = 4;
    config.height = 32;
    config.width = 64;
    const auto violation = check_template_agreement(config);
    EXPECT_FALSE(violation.has_value())
        << maf::scheme_name(scheme) << ": " << violation->message;
  }
}

TEST(MafProver, UnbuildableConfigReportsConstruction) {
  core::PolyMemConfig config;
  config.scheme = Scheme::kReRo;
  config.p = 2;
  config.q = 4;
  config.height = 33;  // not a multiple of p
  config.width = 64;
  const ProverReport report = prove(config);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().check, CheckKind::kConstruction);
  EXPECT_NE(report.violations.front().message.find("[PMV001]"),
            std::string::npos);
}

TEST(MafProver, ProveSupportReportsCounterexample) {
  const maf::Maf reo(Scheme::kReO, 2, 4);
  const MafModel model = model_of(reo);
  std::string counterexample;
  EXPECT_EQ(prove_support(model, PatternKind::kRow, &counterexample),
            SupportLevel::kNone);
  EXPECT_NE(counterexample.find("lanes"), std::string::npos);
  EXPECT_EQ(prove_support(model, PatternKind::kRect), SupportLevel::kAny);
}

// ---- symbolic affine layer (PMV007-PMV010) ----

TEST(MafProver, FullProofCarriesAgreeingAffineSuite) {
  for (Scheme scheme : maf::kAllSchemes) {
    const ProverReport report = prove(scheme, 2, 4);
    ASSERT_TRUE(report.ok) << report.summary();
    ASSERT_FALSE(report.affine.empty());
    for (const AffineProof& proof : report.affine) {
      EXPECT_TRUE(proof.ok) << proof.pattern.spec();
      EXPECT_EQ(proof.proven, proof.swept) << proof.pattern.spec();
    }
  }
}

TEST(MafProver, ProvableAffinePatternPasses) {
  const AffineReport report = prove_affine_pattern(
      Scheme::kReRo, 2, 4, AffinePattern::parse("lanes 1x8 ; i = 0 ; j = 3*v"));
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.proven, SupportLevel::kAny);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_NE(report.summary().find("PROVEN (any anchor)"), std::string::npos);
}

// Mutant 6 (PMV007): a stride-2 row folds lanes 0 and 4 onto one ReRo
// bank — the symbolic refutation must carry a witness that replays to a
// real bank collision on the production MAF.
TEST(MafProverMutant, AffineConflictShipsReplayableWitness) {
  const AffineReport report = prove_affine_pattern(
      Scheme::kReRo, 2, 4, AffinePattern::parse("lanes 1x8 ; i = 0 ; j = 2*v"));
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.proven, SupportLevel::kNone);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().check, CheckKind::kAffineConflict);
  EXPECT_NE(report.violations.front().message.find("[PMV007]"),
            std::string::npos);
  ASSERT_TRUE(report.counterexample.has_value());
  const AffineCounterexample& cx = *report.counterexample;
  const maf::Maf maf(Scheme::kReRo, 2, 4);
  EXPECT_FALSE(cx.elem_a.i == cx.elem_b.i && cx.elem_a.j == cx.elem_b.j);
  EXPECT_EQ(maf.bank(cx.elem_a.i, cx.elem_a.j), cx.bank);
  EXPECT_EQ(maf.bank(cx.elem_b.i, cx.elem_b.j), cx.bank);
}

// Mutant 7 (PMV008): a corrupted symbolic normal form must be caught by
// the form check before any verdict built on it can be trusted.
TEST(MafProverMutant, CorruptedSymbolicFormIsCaught) {
  const maf::Maf reo(Scheme::kReO, 2, 4);
  SymbolicMaf mutant = SymbolicMaf::of(reo);
  mutant.forms.front().ci += 1;
  const AffineReport report = prove_affine_pattern(
      reo, mutant, AffinePattern::of(PatternKind::kRect, 2, 4));
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const Violation& v : report.violations)
    if (v.check == CheckKind::kAffineForm) {
      found = true;
      EXPECT_NE(v.message.find("[PMV008]"), std::string::npos);
    }
  EXPECT_TRUE(found) << report.summary();
}

// Mutant 8 (PMV009): feeding ReRo's symbolic form for a concrete ReO
// makes the symbolic verdict (rows conflict-free) disagree with the
// brute-force sweep — the differential check must refute it.
TEST(MafProverMutant, SymbolicVsSweepDisagreementIsRefuted) {
  const maf::Maf reo(Scheme::kReO, 2, 4);
  const SymbolicMaf wrong = SymbolicMaf::of(maf::Maf(Scheme::kReRo, 2, 4));
  const auto violation = check_affine_differential(
      reo, wrong, AffinePattern::of(PatternKind::kRow, 2, 4),
      AnchorClass::kAny);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->check, CheckKind::kAffineDifferential);
  EXPECT_NE(violation->message.find("[PMV009]"), std::string::npos);
}

// Mutant 9 (PMV010): a pattern whose lane lattice touches an element
// twice can never be conflict-free and must be rejected as degenerate,
// not "refuted".
TEST(MafProverMutant, AliasingAffinePatternIsDegenerate) {
  const AffineReport report = prove_affine_pattern(
      Scheme::kReO, 2, 4, AffinePattern::parse("lanes 2x4 ; i = 0 ; j = v"));
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.proven, SupportLevel::kNone);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().check, CheckKind::kAffineDegenerate);
  EXPECT_NE(report.violations.front().message.find("[PMV010]"),
            std::string::npos);
  EXPECT_NE(report.violations.front().message.find("alias"),
            std::string::npos);
}

}  // namespace
}  // namespace polymem::verify
