#include "verify/plan_lint.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "maf/maf.hpp"

namespace polymem::verify {
namespace {

using access::PatternKind;
using core::AccessBatch;
using maf::Scheme;

core::PolyMemConfig small_config(Scheme scheme = Scheme::kReRo) {
  core::PolyMemConfig config;
  config.scheme = scheme;
  config.p = 2;
  config.q = 4;
  config.height = 64;
  config.width = 64;
  return config;
}

bool has_kind(const LintReport& report, LintKind kind) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.kind == kind) return true;
  return false;
}

const Diagnostic& first_of(const LintReport& report, LintKind kind) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.kind == kind) return d;
  throw std::logic_error("diagnostic kind not found");
}

TEST(PlanLint, CodesAreStableAndDistinct) {
  const LintKind kinds[] = {
      LintKind::kBadConfig,       LintKind::kEmptyBatch,
      LintKind::kUnsupportedPattern, LintKind::kUnalignedAnchor,
      LintKind::kMisalignedStride,   LintKind::kOutOfBounds,
      LintKind::kBankConflict,       LintKind::kReadAfterWrite,
      LintKind::kTraceOutOfBounds,   LintKind::kBankImbalance,
  };
  std::set<std::string> codes;
  for (LintKind kind : kinds) {
    codes.insert(lint_code(kind));
    EXPECT_NE(std::string(lint_name(kind)), "");
  }
  EXPECT_EQ(codes.size(), 10u);
  EXPECT_STREQ(lint_code(LintKind::kBadConfig), "PML001");
  EXPECT_STREQ(lint_code(LintKind::kEmptyBatch), "PML002");
  EXPECT_STREQ(lint_code(LintKind::kUnsupportedPattern), "PML003");
  EXPECT_STREQ(lint_code(LintKind::kUnalignedAnchor), "PML004");
  EXPECT_STREQ(lint_code(LintKind::kMisalignedStride), "PML005");
  EXPECT_STREQ(lint_code(LintKind::kOutOfBounds), "PML006");
  EXPECT_STREQ(lint_code(LintKind::kBankConflict), "PML007");
  EXPECT_STREQ(lint_code(LintKind::kReadAfterWrite), "PML008");
  EXPECT_STREQ(lint_code(LintKind::kTraceOutOfBounds), "PML009");
  EXPECT_STREQ(lint_code(LintKind::kBankImbalance), "PML010");
  EXPECT_STREQ(lint_name(LintKind::kOutOfBounds), "out-of-bounds");
  EXPECT_STREQ(severity_name(Severity::kError), "error");
  EXPECT_STREQ(severity_name(Severity::kWarning), "warning");
}

TEST(PlanLint, CleanBatchProducesNoDiagnostics) {
  const auto batch =
      AccessBatch::strided(PatternKind::kRect, {0, 0}, {0, 4}, 16);
  const LintReport report = lint_batch(small_config(), batch);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.summary(), "clean");
}

TEST(PlanLint, BadConfigIsReportedNotThrown) {
  core::PolyMemConfig config = small_config();
  config.height = 63;  // not a multiple of p
  const auto batch =
      AccessBatch::strided(PatternKind::kRect, {0, 0}, {0, 4}, 4);
  const LintReport report = lint_batch(config, batch);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kBadConfig);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("[PML001]"), std::string::npos);
  EXPECT_NE(d.message.find("multiple of p"), std::string::npos);
}

TEST(PlanLint, EmptyBatchWarnsAndNegativeCountsError) {
  const auto empty =
      AccessBatch::strided(PatternKind::kRect, {0, 0}, {0, 4}, 0);
  LintReport report = lint_batch(small_config(), empty);
  EXPECT_TRUE(report.ok());  // a warning, not an error
  EXPECT_EQ(report.warnings(), 1u);
  {
    const Diagnostic& d = first_of(report, LintKind::kEmptyBatch);
    EXPECT_NE(d.message.find("[PML002]"), std::string::npos);
    EXPECT_NE(d.message.find("moves no data"), std::string::npos);
  }
  const auto negative =
      AccessBatch::strided(PatternKind::kRect, {0, 0}, {0, 4}, -3);
  report = lint_batch(small_config(), negative);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kEmptyBatch);
  EXPECT_NE(d.message.find("negative batch counts"), std::string::npos);
}

TEST(PlanLint, UnsupportedPatternCarriesBankConflictPair) {
  // ReO never serves rows: lanes 0 and 4 of a row share a bank.
  const auto batch =
      AccessBatch::strided(PatternKind::kRow, {0, 0}, {1, 0}, 4);
  const LintReport report = lint_batch(small_config(Scheme::kReO), batch);
  EXPECT_FALSE(report.ok());
  const Diagnostic& unsupported =
      first_of(report, LintKind::kUnsupportedPattern);
  EXPECT_EQ(unsupported.severity, Severity::kError);
  EXPECT_NE(unsupported.message.find("[PML003]"), std::string::npos);
  EXPECT_NE(unsupported.message.find("ReO"), std::string::npos);
  EXPECT_NE(unsupported.message.find("pattern row"), std::string::npos);
  const Diagnostic& conflict = first_of(report, LintKind::kBankConflict);
  EXPECT_EQ(conflict.severity, Severity::kWarning);
  EXPECT_NE(conflict.message.find("[PML007]"), std::string::npos);
  EXPECT_NE(conflict.message.find("lanes 0 and 4"), std::string::npos);
  EXPECT_NE(conflict.message.find("serialization"), std::string::npos);
}

TEST(PlanLint, UnalignedAnchorOnAlignedOnlyPattern) {
  // RoCo serves rectangles only at p/q-aligned anchors.
  const auto batch =
      AccessBatch::strided(PatternKind::kRect, {1, 0}, {2, 0}, 4);
  const LintReport report = lint_batch(small_config(Scheme::kRoCo), batch);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kUnalignedAnchor);
  EXPECT_NE(d.message.find("[PML004]"), std::string::npos);
  EXPECT_NE(d.message.find("(1,0)"), std::string::npos);
  EXPECT_NE(d.message.find("aligned"), std::string::npos);
}

TEST(PlanLint, MisalignedStrideOnAlignedOnlyPattern) {
  AccessBatch batch =
      AccessBatch::strided(PatternKind::kRect, {0, 0}, {1, 0}, 4);
  const LintReport report = lint_batch(small_config(Scheme::kRoCo), batch);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kMisalignedStride);
  EXPECT_NE(d.message.find("[PML005]"), std::string::npos);
  EXPECT_NE(d.message.find("inner stride (1,0)"), std::string::npos);
  EXPECT_FALSE(has_kind(report, LintKind::kUnalignedAnchor));
}

TEST(PlanLint, OutOfBoundsCornerIsNamed) {
  // 16 rect rows of 4 starting at i = 56 walk out of the 64-row space.
  const auto batch =
      AccessBatch::strided(PatternKind::kRect, {56, 0}, {2, 0}, 16);
  const LintReport report = lint_batch(small_config(), batch);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kOutOfBounds);
  EXPECT_NE(d.message.find("[PML006]"), std::string::npos);
  EXPECT_NE(d.message.find("(86,0)"), std::string::npos);
  EXPECT_NE(d.message.find("64x64"), std::string::npos);
  EXPECT_EQ(d.op, 0);
}

TEST(PlanLint, ReadAfterWriteHazardAcrossOps) {
  std::vector<BatchOp> ops;
  ops.push_back({BatchOp::Dir::kWrite,
                 AccessBatch::strided(PatternKind::kRect, {0, 0}, {2, 0}, 8)});
  ops.push_back({BatchOp::Dir::kRead,
                 AccessBatch::strided(PatternKind::kRect, {8, 0}, {2, 0}, 4)});
  const LintReport report = lint_program(small_config(), ops);
  EXPECT_TRUE(report.ok());  // hazard is a warning
  const Diagnostic& d = first_of(report, LintKind::kReadAfterWrite);
  EXPECT_NE(d.message.find("[PML008]"), std::string::npos);
  EXPECT_NE(d.message.find("op 1 reads"), std::string::npos);
  EXPECT_NE(d.message.find("op 0 writes"), std::string::npos);
  EXPECT_EQ(d.op, 1);

  // Disjoint regions: no hazard.
  ops[1].batch.start = {32, 0};
  EXPECT_FALSE(
      has_kind(lint_program(small_config(), ops), LintKind::kReadAfterWrite));
  // Read before write is not a RAW hazard either.
  std::swap(ops[0].dir, ops[1].dir);
  ops[1].batch.start = {8, 0};
  EXPECT_FALSE(
      has_kind(lint_program(small_config(), ops), LintKind::kReadAfterWrite));
}

TEST(PlanLint, TraceOutOfBoundsIsAnError) {
  const auto trace = sched::AccessTrace::dense_block({60, 60}, 8, 8);
  const LintReport report = lint_trace(small_config(), trace);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kTraceOutOfBounds);
  EXPECT_NE(d.message.find("[PML009]"), std::string::npos);
  EXPECT_NE(d.message.find("48 trace element(s)"), std::string::npos);
}

TEST(PlanLint, SkewedTraceReportsBankImbalance) {
  // Every element (2k, 0) lands in ReO bank 0: the schedule serializes.
  std::vector<access::Coord> elements;
  for (std::int64_t k = 0; k < 16; ++k) elements.push_back({2 * k, 0});
  const sched::AccessTrace trace(std::move(elements));
  const LintReport report = lint_trace(small_config(Scheme::kReO), trace);
  EXPECT_TRUE(report.ok());  // imbalance is a warning
  const Diagnostic& d = first_of(report, LintKind::kBankImbalance);
  EXPECT_NE(d.message.find("[PML010]"), std::string::npos);
  EXPECT_NE(d.message.find("bank 0 holds 16 of 16"), std::string::npos);
  EXPECT_NE(d.message.find("16 cycles"), std::string::npos);
}

TEST(PlanLint, BalancedTraceIsClean) {
  const auto trace = sched::AccessTrace::dense_block({0, 0}, 16, 16);
  const LintReport report = lint_trace(small_config(), trace);
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
}

// ---- affine-op admission through the symbolic prover ----

BatchOp affine_op(const std::string& spec, access::Coord start,
                  access::Coord stride = {0, 0}, std::int64_t count = 1,
                  BatchOp::Dir dir = BatchOp::Dir::kRead) {
  BatchOp op;
  op.dir = dir;
  op.batch =
      AccessBatch::strided(PatternKind::kRect, start, stride, count);
  op.affine = AffinePattern::parse(spec);
  return op;
}

TEST(PlanLintAffine, ProvenPatternIsAdmittedSilently) {
  // A stride-3 row is proven conflict-free for ReRo at any anchor — no
  // diagnostic at all, even at an unaligned anchor.
  const std::vector<BatchOp> ops = {
      affine_op("lanes 1x8 ; i = 0 ; j = 3*v", {3, 1}, {1, 0}, 4)};
  const LintReport report = lint_program(small_config(), ops);
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
}

TEST(PlanLintAffine, RefutedPatternCarriesReplayableCounterexample) {
  const std::vector<BatchOp> ops = {
      affine_op("lanes 1x8 ; i = 0 ; j = 2*v", {0, 0})};
  const LintReport report = lint_program(small_config(), ops);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kUnsupportedPattern);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("[PML003]"), std::string::npos);
  EXPECT_NE(d.message.find("cannot serve"), std::string::npos);
  ASSERT_TRUE(d.counterexample.has_value());
  // The witness replays to a real bank collision on the production MAF.
  const maf::Maf maf(Scheme::kReRo, 2, 4);
  EXPECT_EQ(maf.bank(d.counterexample->elem_a), d.counterexample->bank);
  EXPECT_EQ(maf.bank(d.counterexample->elem_b), d.counterexample->bank);
}

TEST(PlanLintAffine, AlignedOnlyProofGetsAnchorAndStrideLint) {
  // RoCo serves rectangles only at aligned anchors: the affine rect is
  // admitted, but an unaligned start is an error with the unaligned
  // witness attached.
  const std::string rect = "lanes 2x4 ; i = u ; j = v";
  LintReport report = lint_program(small_config(Scheme::kRoCo),
                                   {affine_op(rect, {1, 0})});
  EXPECT_FALSE(report.ok());
  {
    const Diagnostic& d = first_of(report, LintKind::kUnalignedAnchor);
    EXPECT_NE(d.message.find("[PML004]"), std::string::npos);
    EXPECT_NE(d.message.find("affine"), std::string::npos);
    EXPECT_TRUE(d.counterexample.has_value());
  }
  // Aligned start but a stride that leaves the aligned lattice.
  report = lint_program(small_config(Scheme::kRoCo),
                        {affine_op(rect, {0, 0}, {1, 0}, 4)});
  EXPECT_FALSE(report.ok());
  EXPECT_NE(first_of(report, LintKind::kMisalignedStride)
                .message.find("[PML005]"),
            std::string::npos);
  // Aligned anchor walk: clean.
  report = lint_program(small_config(Scheme::kRoCo),
                        {affine_op(rect, {0, 0}, {2, 0}, 4)});
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
}

TEST(PlanLintAffine, DegeneratePatternIsRejected) {
  // Lanes (0, v) and (1, v) alias the same elements.
  const std::vector<BatchOp> ops = {
      affine_op("lanes 2x4 ; i = 0 ; j = v", {0, 0})};
  const LintReport report = lint_program(small_config(), ops);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kEmptyBatch);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("degenerate"), std::string::npos);
}

TEST(PlanLintAffine, LaneCountMustMatchMemoryLanes) {
  const std::vector<BatchOp> ops = {
      affine_op("lanes 1x4 ; i = 0 ; j = v", {0, 0})};
  const LintReport report = lint_program(small_config(), ops);
  EXPECT_FALSE(report.ok());
  const Diagnostic& d = first_of(report, LintKind::kUnsupportedPattern);
  EXPECT_NE(d.message.find("4 lanes"), std::string::npos);
}

TEST(PlanLintAffine, OutOfBoundsCornerIsFlagged) {
  // Stride-3 row at column 48 reaches j = 48 + 21 = 69 in a 64-wide space.
  const std::vector<BatchOp> ops = {
      affine_op("lanes 1x8 ; i = 0 ; j = 3*v", {0, 48})};
  const LintReport report = lint_program(small_config(), ops);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(first_of(report, LintKind::kOutOfBounds)
                .message.find("[PML006]"),
            std::string::npos);
}

TEST(PlanLintAffine, ReadAfterWriteHazardSeesAffineExtent) {
  // The affine read's bounding box overlaps the earlier classic write, so
  // the RAW hazard must fire even though no Table-I extent is involved.
  std::vector<BatchOp> ops;
  ops.push_back({BatchOp::Dir::kWrite,
                 AccessBatch::strided(PatternKind::kRect, {0, 0}, {2, 0}, 8),
                 std::nullopt});
  ops.push_back(affine_op("lanes 1x8 ; i = 0 ; j = 3*v", {8, 0}));
  const LintReport report = lint_program(small_config(), ops);
  EXPECT_TRUE(report.ok());  // hazard is a warning
  const Diagnostic& d = first_of(report, LintKind::kReadAfterWrite);
  EXPECT_NE(d.message.find("[PML008]"), std::string::npos);
  EXPECT_EQ(d.op, 1);
  // Move the read clear of the write: no hazard.
  ops[1].batch.start = {32, 0};
  EXPECT_FALSE(
      has_kind(lint_program(small_config(), ops), LintKind::kReadAfterWrite));
}

// ---- PML010 threshold boundary ----

TEST(PlanLint, BankImbalanceFiresExactlyAtTwiceIdeal) {
  // ReO 2x4: bank(i, j) = (i mod 2)*4 + (j mod 4). 16 elements over 8
  // banks gives ideal = 2, so the warning threshold is worst >= 4.
  std::vector<access::Coord> below;
  for (std::int64_t k = 0; k < 3; ++k) below.push_back({0, 4 * k});  // bank 0
  for (std::int64_t j = 1; j <= 3; ++j) {  // banks 1..3, two each
    below.push_back({0, j});
    below.push_back({0, j + 4});
  }
  for (std::int64_t j = 0; j <= 2; ++j) {  // banks 4..6, two each
    below.push_back({1, j});
    below.push_back({1, j + 4});
  }
  below.push_back({1, 3});  // bank 7
  ASSERT_EQ(below.size(), 16u);
  // worst = 3 < 2*ideal = 4: no warning.
  EXPECT_FALSE(has_kind(
      lint_trace(small_config(Scheme::kReO), sched::AccessTrace(
                                                 std::vector(below))),
      LintKind::kBankImbalance));

  // Push bank 0 to exactly worst = 4 (swap the bank-7 element): fires.
  std::vector<access::Coord> at = below;
  at.back() = {0, 12};  // bank 0
  const LintReport report =
      lint_trace(small_config(Scheme::kReO), sched::AccessTrace(std::move(at)));
  EXPECT_TRUE(report.ok());  // still a warning, not an error
  const Diagnostic& d = first_of(report, LintKind::kBankImbalance);
  EXPECT_NE(d.message.find("[PML010]"), std::string::npos);
  EXPECT_NE(d.message.find("holds 4 of 16"), std::string::npos);
  EXPECT_NE(d.message.find("balanced would be 2"), std::string::npos);
}

TEST(PlanLint, SummaryCountsErrorsAndWarnings) {
  std::vector<BatchOp> ops;
  ops.push_back({BatchOp::Dir::kRead,
                 AccessBatch::strided(PatternKind::kRow, {0, 0}, {1, 0}, 4)});
  const LintReport report = lint_program(small_config(Scheme::kReO), ops);
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.warnings(), 1u);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("1 error(s), 1 warning(s)"), std::string::npos);
  EXPECT_NE(summary.find("error [PML003]"), std::string::npos);
}

}  // namespace
}  // namespace polymem::verify
