#include "verify/congruence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::verify {
namespace {

TEST(Egcd, BezoutIdentityHoldsIncludingNegatives) {
  const std::int64_t values[] = {0, 1, 2, 3, 8, 12, 35, 240, -5, -18, -240};
  for (std::int64_t a : values)
    for (std::int64_t b : values) {
      const Egcd e = egcd(a, b);
      EXPECT_EQ(a * e.x + b * e.y, e.g) << a << ", " << b;
      EXPECT_GE(e.g, 0);
      if (a != 0) EXPECT_EQ(a % e.g, 0);
      if (b != 0) EXPECT_EQ(b % e.g, 0);
    }
  EXPECT_EQ(egcd(12, 18).g, 6);
  EXPECT_EQ(egcd(-12, 18).g, 6);
  EXPECT_EQ(egcd(0, 7).g, 7);
  EXPECT_EQ(egcd(0, 0).g, 0);
}

TEST(ResidueClassTest, ContainsAndFirstAtLeast) {
  const ResidueClass c{3, 5};
  EXPECT_TRUE(c.contains(3));
  EXPECT_TRUE(c.contains(13));
  EXPECT_TRUE(c.contains(-2));
  EXPECT_FALSE(c.contains(4));
  EXPECT_EQ(c.first_at_least(0), 3);
  EXPECT_EQ(c.first_at_least(3), 3);
  EXPECT_EQ(c.first_at_least(4), 8);
  EXPECT_EQ(c.first_at_least(-10), -7);
  const ResidueClass all{0, 1};  // all of Z
  EXPECT_TRUE(all.contains(-41));
  EXPECT_EQ(all.first_at_least(17), 17);
}

TEST(SolveCongruence, SolvableAndUnsolvableCases) {
  // 3x = 6 (mod 9): x = 2 + 3Z.
  auto s = solve_congruence(3, 6, 9);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, (ResidueClass{2, 3}));
  // 4x = 2 (mod 8): gcd(4,8) = 4 does not divide 2.
  EXPECT_FALSE(solve_congruence(4, 2, 8).has_value());
  // 0x = 0 (mod m) is all of Z; 0x = b != 0 has no solution.
  s = solve_congruence(0, 0, 6);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, (ResidueClass{0, 1}));
  EXPECT_FALSE(solve_congruence(0, 5, 6).has_value());
  // Coefficients are normalised mod m first: -1x = 3 (mod 7).
  s = solve_congruence(-1, 3, 7);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->contains(4));  // -4 = 3 (mod 7)
  // Every solution actually solves the congruence.
  for (std::int64_t a = -6; a <= 6; ++a)
    for (std::int64_t b = -6; b <= 6; ++b)
      for (std::int64_t m = 1; m <= 8; ++m) {
        const auto cls = solve_congruence(a, b, m);
        for (std::int64_t x = -12; x <= 12; ++x) {
          const bool solves = ((a * x - b) % m + m) % m == 0;
          const bool member = cls.has_value() && cls->contains(x);
          EXPECT_EQ(member, solves) << a << "x=" << b << " mod " << m
                                    << " at x=" << x;
        }
      }
}

TEST(SolveCongruence, RejectsNonPositiveModulus) {
  EXPECT_THROW(solve_congruence(1, 0, 0), Error);
}

TEST(IntersectResidueClasses, CrtAgreesWithEnumeration) {
  // x = 2 (mod 3) and x = 3 (mod 5): x = 8 (mod 15).
  auto c = intersect({2, 3}, {3, 5});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (ResidueClass{8, 15}));
  // Incompatible classes: x = 0 (mod 4) and x = 1 (mod 2).
  EXPECT_FALSE(intersect({0, 4}, {1, 2}).has_value());
  // Exhaustive check on small moduli.
  for (std::int64_t m1 = 1; m1 <= 8; ++m1)
    for (std::int64_t r1 = 0; r1 < m1; ++r1)
      for (std::int64_t m2 = 1; m2 <= 8; ++m2)
        for (std::int64_t r2 = 0; r2 < m2; ++r2) {
          const ResidueClass a{r1, m1}, b{r2, m2};
          const auto both = intersect(a, b);
          for (std::int64_t x = -30; x <= 30; ++x) {
            const bool in_both = a.contains(x) && b.contains(x);
            const bool member = both.has_value() && both->contains(x);
            EXPECT_EQ(member, in_both)
                << r1 << "+" << m1 << "Z with " << r2 << "+" << m2 << "Z"
                << " at " << x;
          }
        }
}

}  // namespace
}  // namespace polymem::verify
