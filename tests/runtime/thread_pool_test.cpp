// Parallel runtime contract tests: every index runs exactly once under
// any pool size / grain combination, the caller participates, exceptions
// propagate, and derive_seed gives thread-count-independent randomness.
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace polymem::runtime {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned workers : {0u, 1u, 3u, 7u}) {
    ThreadPool pool(workers);
    for (std::int64_t grain : {1, 5, 64}) {
      constexpr std::int64_t kN = 1000;
      std::vector<std::atomic<int>> hits(kN);
      for (auto& h : hits) h.store(0);
      parallel_for(
          pool, 0, kN,
          [&](std::int64_t i, unsigned worker) {
            ASSERT_LE(worker, workers);
            hits[i].fetch_add(1);
          },
          grain);
      for (std::int64_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " workers "
                                     << workers << " grain " << grain;
    }
  }
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int runs = 0;
  parallel_for(pool, 5, 5, [&](std::int64_t, unsigned) { ++runs; });
  EXPECT_EQ(runs, 0);
  parallel_for(pool, 7, 8, [&](std::int64_t i, unsigned w) {
    EXPECT_EQ(i, 7);
    EXPECT_EQ(w, 0u);  // a single index runs inline on the caller
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<unsigned> worker_of(100, 99);
  parallel_for(pool, 0, 100,
               [&](std::int64_t i, unsigned w) { worker_of[i] = w; });
  for (unsigned w : worker_of) EXPECT_EQ(w, 0u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      parallel_for(pool, 0, 1000,
                   [&](std::int64_t i, unsigned) {
                     if (i == 417) throw InvalidArgument("boom");
                   }),
      InvalidArgument);
  // The pool survives a throwing job and remains usable.
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, 0, 100, [&](std::int64_t i, unsigned) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, UnevenWorkStillCompletes) {
  // Front-loaded work: stealing (or chunked claiming) must finish the
  // tail even though participant 0's static range is the heaviest.
  ThreadPool pool(3);
  std::atomic<std::int64_t> done{0};
  parallel_for(
      pool, 0, 256,
      [&](std::int64_t i, unsigned) {
        volatile std::int64_t spin = (i < 32) ? 20000 : 10;
        while (spin > 0) spin = spin - 1;
        done.fetch_add(1);
      },
      4);
  EXPECT_EQ(done.load(), 256);
}

TEST(ThreadPool, ZeroWorkerSubmitRunsInline) {
  // Design rule 3: a pool of size 0 degrades to serial execution — the
  // task runs on the calling thread before submit returns (it used to
  // queue forever with no worker to claim it).
  ThreadPool pool(0);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
  pool.wait_idle();  // and wait_idle no longer deadlocks
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int k = 0; k < 50; ++k) pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 50);
}

TEST(DeriveSeed, DeterministicAndIndexSensitive) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(derive_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions over a realistic range
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(DeriveSeed, ParallelRandomWorkloadIsThreadCountInvariant) {
  // The pattern every randomized consumer must follow: draw from
  // Rng(derive_seed(seed, i)) inside the loop body. Any pool size then
  // produces the identical result vector.
  auto run = [](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<std::int64_t> out(500);
    parallel_for(pool, 0, 500, [&](std::int64_t i, unsigned) {
      Rng rng(derive_seed(99, i));
      out[i] = rng.uniform(0, 1'000'000);
    });
    return out;
  };
  const auto serial = run(0);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

}  // namespace
}  // namespace polymem::runtime
