// Machine-checked reproduction of paper Fig. 2: ten regions, R1..R9 each
// readable in ONE parallel access, R0 in several, on 8 banks (2x4).
#include "prf/fig2.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "prf/register_file.hpp"

namespace polymem::prf {
namespace {

core::PolyMemConfig fig2_config(maf::Scheme scheme) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = kFig2Height;
  c.width = kFig2Width;
  c.validate();
  return c;
}

TEST(Fig2, TenRegionsAllKindsPresent) {
  const auto& regs = fig2_registers();
  ASSERT_EQ(regs.size(), 10u);
  std::set<access::RegionShape> shapes;
  for (const auto& r : regs) shapes.insert(r.region.shape);
  // matrix, row, column, main diagonal, secondary diagonal all appear.
  EXPECT_EQ(shapes.size(), 5u);
}

TEST(Fig2, RegionsAreDisjointAndInBounds) {
  std::set<access::Coord> seen;
  for (const auto& r : fig2_registers()) {
    for (const access::Coord& c : r.region.elements()) {
      EXPECT_TRUE(c.i >= 0 && c.i < kFig2Height && c.j >= 0 &&
                  c.j < kFig2Width)
          << r.name << " " << c;
      EXPECT_TRUE(seen.insert(c).second)
          << r.name << " overlaps at " << c;
    }
  }
}

TEST(Fig2, R1ToR9AreSingleAccessAndR0Needs4) {
  for (const auto& r : fig2_registers()) {
    // Build a register file on a PolyMem whose scheme serves the region.
    core::PolyMem mem(fig2_config(r.served_by));
    RegisterFile rf(mem);
    rf.define(r.name, r.region, r.pattern);
    EXPECT_EQ(rf.read_access_count(r.name), r.expected_accesses) << r.name;
  }
}

TEST(Fig2, EveryRegisterRoundTripsOnItsScheme) {
  for (const auto& r : fig2_registers()) {
    core::PolyMem mem(fig2_config(r.served_by));
    RegisterFile rf(mem);
    rf.define(r.name, r.region, r.pattern);
    std::vector<core::Word> data(
        static_cast<std::size_t>(r.region.element_count()));
    std::iota(data.begin(), data.end(), 1000u);
    rf.write_register(r.name, data);
    EXPECT_EQ(rf.read_register(r.name), data) << r.name;
  }
}

TEST(Fig2, MultiviewSchemeHoldsMostOfTheMap) {
  // One ReRo memory can host every register except the two columns (R5,
  // R6 need ReCo) and the transposed matrix (R9 needs ReTr) — exactly the
  // multiview trade-off of Table I.
  core::PolyMem mem(fig2_config(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  int defined = 0, rejected = 0;
  for (const auto& r : fig2_registers()) {
    try {
      rf.define(r.name, r.region, r.pattern);
      ++defined;
    } catch (const Unsupported&) {
      ++rejected;
      EXPECT_TRUE(r.name == "R5" || r.name == "R6" || r.name == "R9")
          << r.name;
    }
  }
  EXPECT_EQ(defined, 7);
  EXPECT_EQ(rejected, 3);
}

TEST(Fig2, TransposedMatrixReadableUnderReTr) {
  core::PolyMem mem(fig2_config(maf::Scheme::kReTr));
  RegisterFile rf(mem);
  const auto& r9 = fig2_registers().back();
  ASSERT_EQ(r9.name, "R9");
  rf.define("R9", r9.region, r9.pattern);
  EXPECT_EQ(rf.read_access_count("R9"), 1);
}

}  // namespace
}  // namespace polymem::prf
