#include "prf/register_file.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::prf {
namespace {

using access::PatternKind;
using access::Region;

core::PolyMemConfig cfg(maf::Scheme scheme) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  c.validate();
  return c;
}

std::vector<core::Word> iota_words(std::int64_t n, core::Word base) {
  std::vector<core::Word> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), base);
  return v;
}

TEST(RegisterFile, DefineLookupUndefine) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  EXPECT_FALSE(rf.defined("A"));
  rf.define("A", Region::matrix({0, 0}, 2, 4), PatternKind::kRect);
  EXPECT_TRUE(rf.defined("A"));
  EXPECT_EQ(rf.reg("A").elements(), 8);
  EXPECT_EQ(rf.names(), std::vector<std::string>{"A"});
  rf.undefine("A");
  EXPECT_FALSE(rf.defined("A"));
  EXPECT_THROW(rf.undefine("A"), InvalidArgument);
  EXPECT_THROW(rf.reg("A"), InvalidArgument);
}

TEST(RegisterFile, DuplicateNameRejected) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  rf.define("A", Region::matrix({0, 0}, 2, 4), PatternKind::kRect);
  EXPECT_THROW(
      rf.define("A", Region::matrix({4, 0}, 2, 4), PatternKind::kRect),
      InvalidArgument);
}

TEST(RegisterFile, OverlapRejected) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  rf.define("A", Region::matrix({0, 0}, 4, 8), PatternKind::kRect);
  EXPECT_THROW(
      rf.define("B", Region::matrix({3, 7}, 2, 4), PatternKind::kRect),
      InvalidArgument);
  // Disjoint is fine.
  EXPECT_NO_THROW(
      rf.define("B", Region::matrix({4, 8}, 2, 4), PatternKind::kRect));
}

TEST(RegisterFile, UnsupportedPatternRejectedAtDefineTime) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));  // no columns under ReRo
  RegisterFile rf(mem);
  EXPECT_THROW(
      rf.define("C", Region::col_vec({0, 0}, 8), PatternKind::kCol),
      Unsupported);
  // The same register is fine on a ReCo memory.
  core::PolyMem reco(cfg(maf::Scheme::kReCo));
  RegisterFile rf2(reco);
  EXPECT_NO_THROW(
      rf2.define("C", Region::col_vec({0, 0}, 8), PatternKind::kCol));
}

TEST(RegisterFile, OutOfSpaceRegionRejected) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  EXPECT_THROW(
      rf.define("X", Region::row_vec({0, 28}, 8), PatternKind::kRow),
      InvalidArgument);
}

TEST(RegisterFile, ReadWriteRoundTripExactCover) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  rf.define("M", Region::matrix({2, 4}, 4, 8), PatternKind::kRect);
  const auto data = iota_words(32, 100);
  TransferStats wstats;
  rf.write_register("M", data, &wstats);
  EXPECT_EQ(wstats.parallel_writes, 4);
  EXPECT_EQ(wstats.parallel_reads, 0);  // exact cover: no RMW needed
  EXPECT_EQ(wstats.elements_moved, 32);
  TransferStats rstats;
  EXPECT_EQ(rf.read_register("M", &rstats), data);
  EXPECT_EQ(rstats.parallel_reads, 4);
  EXPECT_EQ(rf.read_access_count("M"), 4);
}

TEST(RegisterFile, SingleAccessRegisters) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  rf.define("row", Region::row_vec({0, 0}, 8), PatternKind::kRow);
  rf.define("diag", Region::main_diag({2, 2}, 8), PatternKind::kMainDiag);
  EXPECT_EQ(rf.read_access_count("row"), 1);
  EXPECT_EQ(rf.read_access_count("diag"), 1);
  const auto d = iota_words(8, 7);
  rf.write_register("diag", d);
  EXPECT_EQ(rf.read_register("diag"), d);
  // The diagonal landed where it should.
  EXPECT_EQ(mem.load({2, 2}), 7u);
  EXPECT_EQ(mem.load({9, 9}), 14u);
}

TEST(RegisterFile, PartialTileWritePreservesNeighbours) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  // A 12-element row register: two row accesses, the second half-used.
  rf.define("V", Region::row_vec({5, 0}, 12), PatternKind::kRow);
  // Neighbouring data just right of the register.
  for (std::int64_t j = 12; j < 16; ++j) mem.store({5, j}, 999);
  TransferStats stats;
  rf.write_register("V", iota_words(12, 0), &stats);
  EXPECT_EQ(stats.parallel_writes, 2);
  EXPECT_EQ(stats.parallel_reads, 1);  // RMW on the partial tile
  for (std::int64_t j = 0; j < 12; ++j)
    EXPECT_EQ(mem.load({5, j}), static_cast<core::Word>(j));
  for (std::int64_t j = 12; j < 16; ++j) EXPECT_EQ(mem.load({5, j}), 999u);
  EXPECT_EQ(rf.read_register("V"), iota_words(12, 0));
}

TEST(RegisterFile, RedefineResizesAtRuntime) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  rf.define("R", Region::row_vec({0, 0}, 8), PatternKind::kRow);
  EXPECT_EQ(rf.read_access_count("R"), 1);
  // The polymorphism move: grow the register, same name, at runtime.
  rf.redefine("R", Region::matrix({0, 0}, 4, 16), PatternKind::kRect);
  EXPECT_EQ(rf.reg("R").elements(), 64);
  EXPECT_EQ(rf.read_access_count("R"), 8);
  const auto data = iota_words(64, 0);
  rf.write_register("R", data);
  EXPECT_EQ(rf.read_register("R"), data);
}

TEST(RegisterFile, FailedRedefineKeepsOldRegister) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  rf.define("R", Region::row_vec({0, 0}, 8), PatternKind::kRow);
  // Column pattern unsupported under ReRo: redefine must throw and keep R.
  EXPECT_THROW(
      rf.redefine("R", Region::col_vec({0, 0}, 8), PatternKind::kCol),
      Unsupported);
  EXPECT_TRUE(rf.defined("R"));
  EXPECT_EQ(rf.reg("R").pattern, PatternKind::kRow);
  EXPECT_THROW(
      rf.redefine("missing", Region::row_vec({1, 0}, 8), PatternKind::kRow),
      InvalidArgument);
}

TEST(RegisterFile, WriteSizeMismatchRejected) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  rf.define("A", Region::row_vec({0, 0}, 8), PatternKind::kRow);
  const auto wrong = iota_words(7, 0);
  EXPECT_THROW(rf.write_register("A", wrong), InvalidArgument);
}

TEST(RegisterFile, ManyRegistersCoexist) {
  core::PolyMem mem(cfg(maf::Scheme::kReRo));
  RegisterFile rf(mem);
  // Carve the space into 16 disjoint 2x4 tiles-as-registers and use all.
  int id = 0;
  for (std::int64_t i = 0; i < 8; i += 2)
    for (std::int64_t j = 0; j < 32; j += 8)
      rf.define("T" + std::to_string(id++), Region::matrix({i, j}, 2, 4),
                PatternKind::kRect);
  EXPECT_EQ(rf.names().size(), 16u);
  for (int k = 0; k < 16; ++k)
    rf.write_register("T" + std::to_string(k),
                      iota_words(8, static_cast<core::Word>(k * 10)));
  for (int k = 0; k < 16; ++k)
    EXPECT_EQ(rf.read_register("T" + std::to_string(k)),
              iota_words(8, static_cast<core::Word>(k * 10)));
}

}  // namespace
}  // namespace polymem::prf
