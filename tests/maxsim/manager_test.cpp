#include "maxsim/manager.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::maxsim {
namespace {

// A kernel that copies `n` words from `in` to `out`, one per cycle.
class CopyKernel : public Kernel {
 public:
  CopyKernel(Stream& in, Stream& out, int n)
      : Kernel("copy"), in_(&in), out_(&out), remaining_(n) {}

  void tick() override {
    if (remaining_ == 0) return;
    if (out_->full()) return;  // back-pressure
    if (auto w = in_->pop()) {
      out_->push(*w);
      --remaining_;
    }
  }
  bool done() const override { return remaining_ == 0; }

 private:
  Stream* in_;
  Stream* out_;
  int remaining_;
};

TEST(Manager, StreamsByName) {
  Manager m;
  m.add_stream("x", 4);
  EXPECT_EQ(m.stream("x").capacity(), 4u);
  EXPECT_THROW(m.stream("y"), InvalidArgument);
  EXPECT_THROW(m.add_stream("x", 8), InvalidArgument);
}

TEST(Manager, TicksAllKernelsOncePerCycle) {
  Manager m;
  Stream& in = m.add_stream("in", 16);
  Stream& mid = m.add_stream("mid", 16);
  Stream& out = m.add_stream("out", 16);
  m.add_kernel<CopyKernel>(in, mid, 4);
  m.add_kernel<CopyKernel>(mid, out, 4);
  EXPECT_EQ(m.kernel_count(), 2u);
  for (int k = 0; k < 4; ++k) in.push(100 + k);
  const auto cycles = m.run_to_completion(100);
  EXPECT_GT(cycles, 0u);
  EXPECT_EQ(m.cycles(), cycles);
  for (int k = 0; k < 4; ++k) EXPECT_EQ(out.pop(), 100u + k);
  EXPECT_TRUE(m.all_done());
}

TEST(Manager, PipelineRespectesBackPressure) {
  Manager m;
  Stream& in = m.add_stream("in", 16);
  Stream& mid = m.add_stream("mid", 1);  // tight buffer
  Stream& out = m.add_stream("out", 16);
  m.add_kernel<CopyKernel>(in, mid, 8);
  m.add_kernel<CopyKernel>(mid, out, 8);
  for (int k = 0; k < 8; ++k) in.push(k);
  m.run_to_completion(1000);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(out.pop(), static_cast<hw::Word>(k));
}

TEST(Manager, DeadlockDetected) {
  Manager m;
  Stream& in = m.add_stream("in", 4);
  Stream& out = m.add_stream("out", 4);
  m.add_kernel<CopyKernel>(in, out, 5);
  for (int k = 0; k < 3; ++k) in.push(k);  // starves after 3 words
  EXPECT_THROW(m.run_to_completion(100), Error);
}

TEST(Manager, RunWithNoKernelsCompletesImmediately) {
  Manager m;
  EXPECT_EQ(m.run_to_completion(10), 0u);
}

}  // namespace
}  // namespace polymem::maxsim
