#include "maxsim/lmem.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::maxsim {
namespace {

TEST(LMem, ReadsBackWrites) {
  LMem mem(1 << 20);
  std::vector<hw::Word> data = {1, 2, 3, 4};
  mem.write(100, data);
  std::vector<hw::Word> out(4);
  mem.read(100, out);
  EXPECT_EQ(out, data);
}

TEST(LMem, UnwrittenMemoryReadsZero) {
  LMem mem(1 << 20);
  std::vector<hw::Word> out(8, 0xFF);
  mem.read(5000, out);
  for (hw::Word w : out) EXPECT_EQ(w, 0u);
}

TEST(LMem, LargeCapacityWithoutLargeHostMemory) {
  // The Vectis carries 24GB; the model must handle addresses across the
  // whole range while materialising only touched pages.
  LMem mem;  // 24GB default
  EXPECT_EQ(mem.capacity_bytes(), 24ull << 30);
  std::vector<hw::Word> w = {42};
  mem.write((20ull << 30) / 8, w);
  std::vector<hw::Word> r(1);
  mem.read((20ull << 30) / 8, r);
  EXPECT_EQ(r[0], 42u);
  EXPECT_LE(mem.resident_pages(), 2u);
}

TEST(LMem, CrossPageTransfers) {
  LMem mem(1 << 20);
  std::vector<hw::Word> data(1500);
  for (std::size_t k = 0; k < data.size(); ++k) data[k] = k;
  mem.write(100, data);  // spans 3+ 512-word pages
  std::vector<hw::Word> out(1500);
  mem.read(100, out);
  EXPECT_EQ(out, data);
  EXPECT_GE(mem.resident_pages(), 3u);
}

TEST(LMem, OutOfRangeRejected) {
  LMem mem(1024);  // 128 words
  std::vector<hw::Word> data(8);
  EXPECT_NO_THROW(mem.write(120, data));
  EXPECT_THROW(mem.write(121, data), InvalidArgument);
  std::vector<hw::Word> out(8);
  EXPECT_THROW(mem.read(121, out), InvalidArgument);
}

TEST(LMem, BurstTimingLatencyPlusBandwidth) {
  // "the latency of this memory is relatively high ... bandwidth is
  // limited" — PolyMem's raison d'etre.
  LMem mem(1 << 20, 15e9, 200.0);
  EXPECT_DOUBLE_EQ(mem.burst_seconds(0), 200e-9);
  EXPECT_NEAR(mem.burst_seconds(15'000'000), 200e-9 + 1e-3, 1e-9);
}

TEST(LMem, PolyMemBeatsLMemOnReuse) {
  // Architectural sanity: one PolyMem parallel access (8 words, 1 cycle at
  // 120MHz ~ 8.3ns) vs an LMem burst of the same 64 bytes (200ns+).
  LMem lmem;
  const double lmem_time = lmem.burst_seconds(64);
  const double polymem_time = 1.0 / 120e6;
  EXPECT_LT(polymem_time * 10, lmem_time);
}

}  // namespace
}  // namespace polymem::maxsim
