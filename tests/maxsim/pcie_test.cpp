#include "maxsim/pcie.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::maxsim {
namespace {

TEST(PcieLink, DefaultMatchesPaperOverhead) {
  // Sec. V: "This minimum overhead is ... around 300ns".
  const PcieLink link;
  EXPECT_DOUBLE_EQ(link.call_overhead_seconds(), 300e-9);
}

TEST(PcieLink, ZeroByteCallCostsOnlyOverhead) {
  const PcieLink link(2e9, 300.0);
  EXPECT_DOUBLE_EQ(link.call_seconds(0), 300e-9);
}

TEST(PcieLink, PayloadAddsTransferTime) {
  const PcieLink link(2e9, 300.0);
  // 2MB at 2GB/s = 1ms, dominating the 300ns overhead.
  EXPECT_NEAR(link.call_seconds(2'000'000), 1e-3, 1e-6);
  EXPECT_GT(link.call_seconds(1), link.call_seconds(0));
}

TEST(PcieLink, OverheadDominatesShortCalls) {
  // The Fig. 10 left-side ramp: calls comparable to 300ns are
  // overhead-bound.
  const PcieLink link;
  const double tiny = link.call_seconds(64);
  EXPECT_GT(300e-9 / tiny, 0.9);
}

TEST(PcieLink, Accounting) {
  PcieLink link(1e9, 100.0);
  link.record_call(1000);
  link.record_call(0);
  EXPECT_EQ(link.calls(), 2u);
  EXPECT_EQ(link.bytes_moved(), 1000u);
  EXPECT_NEAR(link.busy_seconds(), 2 * 100e-9 + 1000 / 1e9, 1e-12);
}

TEST(PcieLink, RejectsBadParameters) {
  EXPECT_THROW(PcieLink(0, 300), InvalidArgument);
  EXPECT_THROW(PcieLink(1e9, -1), InvalidArgument);
}

}  // namespace
}  // namespace polymem::maxsim
