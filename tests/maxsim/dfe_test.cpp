#include "maxsim/dfe.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::maxsim {
namespace {

// Consumes words from `in` into a sink vector, one per cycle.
class SinkKernel : public Kernel {
 public:
  SinkKernel(Stream& in, std::size_t expect)
      : Kernel("sink"), in_(&in), expect_(expect) {}
  void tick() override {
    if (auto w = in_->pop()) received.push_back(*w);
  }
  bool done() const override { return received.size() >= expect_; }

  std::vector<hw::Word> received;

 private:
  Stream* in_;
  std::size_t expect_;
};

// Produces `n` sequential words into `out`, one per cycle.
class SourceKernel : public Kernel {
 public:
  SourceKernel(Stream& out, int n) : Kernel("source"), out_(&out), n_(n) {}
  void tick() override {
    if (next_ < n_ && out_->push(static_cast<hw::Word>(next_))) ++next_;
  }
  bool done() const override { return next_ == n_; }

 private:
  Stream* out_;
  int n_;
  int next_ = 0;
};

TEST(DfeDevice, WriteStreamDeliversAllWordsAndAccountsTime) {
  Manager m;
  Stream& in = m.add_stream("in", 8);
  auto& sink = m.add_kernel<SinkKernel>(in, 100);
  DfeDevice dfe(120.0);
  std::vector<hw::Word> data(100);
  for (std::size_t k = 0; k < data.size(); ++k) data[k] = k;

  const auto timing = dfe.write_stream(m, "in", data);
  EXPECT_EQ(sink.received, data);
  EXPECT_GT(timing.cycles, 0u);
  EXPECT_EQ(timing.pcie_bytes, 800u);
  // seconds = PCIe call (300ns + 800B/2GB/s) + cycles at 120MHz.
  const double expect =
      300e-9 + 800 / 2e9 + static_cast<double>(timing.cycles) / 120e6;
  EXPECT_NEAR(timing.seconds, expect, 1e-12);
}

TEST(DfeDevice, ReadStreamPullsAllWords) {
  Manager m;
  Stream& out = m.add_stream("out", 4);
  m.add_kernel<SourceKernel>(out, 50);
  DfeDevice dfe(120.0);
  std::vector<hw::Word> received(50);
  const auto timing = dfe.read_stream(m, "out", received);
  for (int k = 0; k < 50; ++k)
    EXPECT_EQ(received[static_cast<std::size_t>(k)],
              static_cast<hw::Word>(k));
  EXPECT_EQ(timing.pcie_bytes, 400u);
}

TEST(DfeDevice, RunActionPaysOnlyCallOverhead) {
  Manager m;
  Stream& s = m.add_stream("s", 64);
  for (int k = 0; k < 10; ++k) s.push(k);
  m.add_kernel<SinkKernel>(s, 10);
  DfeDevice dfe(100.0);
  const auto timing = dfe.run_action("compute", m);
  EXPECT_EQ(timing.pcie_bytes, 0u);
  EXPECT_EQ(timing.cycles, 10u);  // one word per cycle
  EXPECT_NEAR(timing.seconds, 300e-9 + 10 / 100e6, 1e-12);
}

TEST(DfeDevice, HistoryAccumulates) {
  Manager m;
  Stream& s = m.add_stream("s", 64);
  m.add_kernel<SinkKernel>(s, 0);  // immediately done
  DfeDevice dfe(100.0);
  dfe.run_action("a", m);
  dfe.run_action("b", m);
  ASSERT_EQ(dfe.history().size(), 2u);
  EXPECT_EQ(dfe.history()[0].name, "a");
  EXPECT_NEAR(dfe.total_seconds(), 2 * 300e-9, 1e-12);
  EXPECT_EQ(dfe.pcie().calls(), 2u);
}

TEST(DfeDevice, StalledStreamTimesOut) {
  Manager m;
  m.add_stream("in", 2);
  // No kernel drains the stream.
  DfeDevice dfe(100.0);
  std::vector<hw::Word> data(100, 1);
  EXPECT_THROW(dfe.write_stream(m, "in", data, /*max_cycles=*/1000),
               InvalidArgument);
}

TEST(DfeDevice, ClockAdvancesWithActions) {
  Manager m;
  Stream& s = m.add_stream("s", 64);
  for (int k = 0; k < 7; ++k) s.push(k);
  m.add_kernel<SinkKernel>(s, 7);
  DfeDevice dfe(100.0);
  dfe.run_action("go", m);
  EXPECT_EQ(dfe.clock().cycles(), 7u);
}

}  // namespace
}  // namespace polymem::maxsim
