#include "maxsim/dma.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/units.hpp"
#include "maf/scheme.hpp"

namespace polymem::maxsim {
namespace {

core::PolyMemConfig pm_cfg(maf::Scheme scheme = maf::Scheme::kReRo) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = 16;
  c.width = 32;
  return c;
}

// An LMem holding a 64x64 row-major matrix of i*1000 + j at word 100.
LMemMatrix make_matrix(LMem& lmem) {
  LMemMatrix m{100, 64, 64, 64};
  std::vector<hw::Word> row(64);
  for (std::int64_t i = 0; i < 64; ++i) {
    for (std::int64_t j = 0; j < 64; ++j)
      row[static_cast<std::size_t>(j)] =
          static_cast<hw::Word>(i * 1000 + j);
    lmem.write(m.word_addr(i, 0), row);
  }
  return m;
}

TEST(DmaEngine, LoadTileUsesParallelRowAccesses) {
  LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  DmaEngine dma(lmem, mem);
  const auto m = make_matrix(lmem);

  const auto stats = dma.load_tile(m, 8, 16, 4, 16, {2, 8});
  EXPECT_EQ(stats.words, 64u);
  // 4 rows x (16 cols / 8 lanes) = 8 parallel accesses.
  EXPECT_EQ(stats.polymem_accesses, 8u);
  EXPECT_GT(stats.lmem_seconds, 0.0);
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = 0; j < 16; ++j)
      EXPECT_EQ(mem.load({2 + i, 8 + j}),
                static_cast<hw::Word>((8 + i) * 1000 + 16 + j));
}

TEST(DmaEngine, StoreTileRoundTrip) {
  LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  DmaEngine dma(lmem, mem);
  const auto m = make_matrix(lmem);
  // Modify a tile inside PolyMem and push it back to a different place.
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 8; ++j)
      mem.store({i, j}, static_cast<hw::Word>(7000 + i * 10 + j));
  const auto stats = dma.store_tile(m, 40, 40, 2, 8, {0, 0});
  EXPECT_EQ(stats.polymem_accesses, 2u);
  std::vector<hw::Word> out(8);
  lmem.read(m.word_addr(40, 40), out);
  for (std::int64_t j = 0; j < 8; ++j)
    EXPECT_EQ(out[static_cast<std::size_t>(j)],
              static_cast<hw::Word>(7000 + j));
}

TEST(DmaEngine, SchemeWithoutRowsUsesRectangleAccesses) {
  // ReO serves no rows, but its rectangles work at any anchor: a 2x8
  // tile moves in two 2x4 parallel accesses.
  LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg(maf::Scheme::kReO));
  DmaEngine dma(lmem, mem);
  const auto m = make_matrix(lmem);
  EXPECT_EQ(dma.pick_shape(2, 8, {1, 0}), DmaEngine::Shape::kRectAccesses);
  const auto stats = dma.load_tile(m, 4, 8, 2, 8, {1, 0});
  EXPECT_EQ(stats.polymem_accesses, 2u);
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 8; ++j)
      EXPECT_EQ(mem.load({1 + i, j}),
                static_cast<hw::Word>((4 + i) * 1000 + 8 + j));
  // Round trip back out through rect reads.
  const auto out_stats = dma.store_tile(m, 50, 0, 2, 8, {1, 0});
  EXPECT_EQ(out_stats.polymem_accesses, 2u);
  std::vector<hw::Word> out(8);
  lmem.read(m.word_addr(50, 0), out);
  EXPECT_EQ(out[3], static_cast<hw::Word>(4 * 1000 + 8 + 3));
}

TEST(DmaEngine, AwkwardTilesFallBackToScalar) {
  LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  DmaEngine dma(lmem, mem);
  const auto m = make_matrix(lmem);
  // 2x6: not a lane multiple and 6 % q != 0 -> scalar.
  EXPECT_EQ(dma.pick_shape(2, 6, {0, 0}), DmaEngine::Shape::kScalar);
  const auto stats = dma.load_tile(m, 0, 0, 2, 6, {0, 0});
  EXPECT_EQ(stats.polymem_accesses, 12u);
  EXPECT_EQ(mem.load({1, 3}), static_cast<hw::Word>(1003));
}

TEST(DmaEngine, RoCoRectanglesOnlyWhenAligned) {
  LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg(maf::Scheme::kRoCo));
  DmaEngine dma(lmem, mem);
  // RoCo rows are any-anchor, so lane-multiple tiles still go as rows.
  EXPECT_EQ(dma.pick_shape(2, 8, {1, 1}), DmaEngine::Shape::kRowAccesses);
  // A 2x4 tile (not a lane multiple of 8): rect path needs alignment.
  EXPECT_EQ(dma.pick_shape(2, 4, {0, 0}), DmaEngine::Shape::kRectAccesses);
  EXPECT_EQ(dma.pick_shape(2, 4, {1, 0}), DmaEngine::Shape::kScalar);
}

TEST(DmaEngine, TileBoundsChecked) {
  LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  DmaEngine dma(lmem, mem);
  const auto m = make_matrix(lmem);
  EXPECT_THROW(dma.load_tile(m, 60, 0, 8, 8, {0, 0}), InvalidArgument);
  EXPECT_THROW(dma.load_tile(m, 0, 60, 2, 8, {0, 0}), InvalidArgument);
  EXPECT_THROW(dma.load_tile(m, 0, 0, 2, 8, {15, 0}), InvalidArgument);
  EXPECT_THROW(dma.load_tile(m, 0, 0, 0, 8, {0, 0}), InvalidArgument);
}

TEST(DmaEngine, CachingWinOverDirectLMemAccess) {
  // The Fig. 1 argument: load a tile once (one DRAM burst), then reuse it
  // from PolyMem many times. Compare against touching DRAM per reuse.
  LMem lmem(1 << 20);
  core::PolyMem mem(pm_cfg());
  DmaEngine dma(lmem, mem);
  const auto m = make_matrix(lmem);
  const auto load = dma.load_tile(m, 0, 0, 4, 16, {0, 0});

  const int reuses = 16;
  const double polymem_cycle = 1.0 / 120e6;  // one access per cycle @120MHz
  const double cached = load.lmem_seconds +
                        (load.polymem_cycles + reuses * 8.0) * polymem_cycle;
  const double uncached = reuses * lmem.burst_seconds(64 * 8);
  EXPECT_LT(cached, uncached);
}

TEST(DmaStats, Accumulate) {
  DmaStats a{.words = 10, .polymem_accesses = 2, .polymem_cycles = 2,
             .lmem_seconds = 1e-6, .cache = {}};
  DmaStats b{.words = 30, .polymem_accesses = 4, .polymem_cycles = 4,
             .lmem_seconds = 2e-6, .cache = {}};
  a.cache.hits = 1;
  b.cache.misses = 2;
  a += b;
  EXPECT_EQ(a.words, 40u);
  EXPECT_EQ(a.polymem_accesses, 6u);
  EXPECT_DOUBLE_EQ(a.lmem_seconds, 3e-6);
  EXPECT_EQ(a.cache.hits, 1u);
  EXPECT_EQ(a.cache.misses, 2u);
}

TEST(DmaEngine, BatchedPathMatchesLegacyPerAccessPath) {
  // The batched engine (read_batch/write_batch through the plan cache)
  // must move bits and account stats exactly like the original
  // access-at-a-time loop, for every scheme and every shape the picker
  // can choose.
  struct Case {
    std::int64_t row, col, rows, cols;
    access::Coord origin;
  };
  const Case cases[] = {
      {8, 16, 4, 16, {2, 8}},   // row accesses (lane multiples)
      {4, 8, 2, 8, {0, 0}},     // rect on ReO, rows elsewhere
      {0, 0, 2, 6, {0, 0}},     // scalar fallback
      {20, 4, 6, 4, {2, 4}},    // rect-aligned narrow tile
      {1, 1, 3, 5, {0, 0}},     // odd everything: scalar
  };
  for (maf::Scheme scheme : maf::kAllSchemes) {
    for (const Case& c : cases) {
      SCOPED_TRACE(std::string(maf::scheme_name(scheme)) + " tile " +
                   std::to_string(c.rows) + "x" + std::to_string(c.cols));
      LMem lmem_a(1 << 20);
      LMem lmem_b(1 << 20);
      core::PolyMem mem_a(pm_cfg(scheme));
      core::PolyMem mem_b(pm_cfg(scheme));
      DmaEngine batched(lmem_a, mem_a);
      DmaEngine legacy(lmem_b, mem_b);
      legacy.set_batched(false);
      ASSERT_TRUE(batched.batched());
      ASSERT_FALSE(legacy.batched());
      const auto ma = make_matrix(lmem_a);
      const auto mb = make_matrix(lmem_b);

      const auto sa = batched.load_tile(ma, c.row, c.col, c.rows, c.cols,
                                        c.origin);
      const auto sb = legacy.load_tile(mb, c.row, c.col, c.rows, c.cols,
                                       c.origin);
      EXPECT_EQ(sa.words, sb.words);
      EXPECT_EQ(sa.polymem_accesses, sb.polymem_accesses);
      EXPECT_EQ(sa.polymem_cycles, sb.polymem_cycles);
      EXPECT_DOUBLE_EQ(sa.lmem_seconds, sb.lmem_seconds);
      for (std::int64_t i = 0; i < c.rows; ++i)
        for (std::int64_t j = 0; j < c.cols; ++j)
          ASSERT_EQ(mem_a.load({c.origin.i + i, c.origin.j + j}),
                    mem_b.load({c.origin.i + i, c.origin.j + j}))
              << "loaded (" << i << "," << j << ")";

      // Round-trip: store the tile somewhere else and compare LMem.
      const auto ra = batched.store_tile(ma, 48, 32, c.rows, c.cols, c.origin);
      const auto rb = legacy.store_tile(mb, 48, 32, c.rows, c.cols, c.origin);
      EXPECT_EQ(ra.polymem_accesses, rb.polymem_accesses);
      EXPECT_DOUBLE_EQ(ra.lmem_seconds, rb.lmem_seconds);
      std::vector<hw::Word> out_a(static_cast<std::size_t>(c.cols));
      std::vector<hw::Word> out_b(static_cast<std::size_t>(c.cols));
      for (std::int64_t i = 0; i < c.rows; ++i) {
        lmem_a.read(ma.word_addr(48 + i, 32), out_a);
        lmem_b.read(mb.word_addr(48 + i, 32), out_b);
        ASSERT_EQ(out_a, out_b) << "stored row " << i;
      }
    }
  }
}

}  // namespace
}  // namespace polymem::maxsim
