#include "synth/calibration.hpp"

#include <gtest/gtest.h>

#include <set>

namespace polymem::synth {
namespace {

using maf::Scheme;

TEST(Calibration, Table4Has90Cells) {
  // 5 schemes x 18 synthesised (size, lanes, ports) columns.
  EXPECT_EQ(paper_table4().size(), 90u);
  EXPECT_EQ(table4_columns().size(), 18u);
}

TEST(Calibration, HeadlineCellsMatchPaperText) {
  // "The highest frequency, 202MHz, is achieved by the 512KB, 8-lane,
  //  single read port ReO design."
  EXPECT_EQ(paper_fmax_mhz({Scheme::kReO, 512, 8, 1}), 202.0);
  // "the highest clock frequency is 196MHz for the 512KB, 8-lane, single
  //  read port ReCo configuration" (multiview).
  EXPECT_EQ(paper_fmax_mhz({Scheme::kReCo, 512, 8, 1}), 196.0);
  // The STREAM section: "just 2 MHz lower than the maximum clock frequency
  //  for a 2048KB configuration with a single read port" -> 122 MHz RoCo.
  EXPECT_EQ(paper_fmax_mhz({Scheme::kRoCo, 2048, 8, 1}), 122.0);
}

TEST(Calibration, GlobalExtremaMatchPaperText) {
  // Max is 202; "The minimum clock frequency is 77MHz."
  double lo = 1e9, hi = 0;
  for (const FmaxSample& s : paper_table4()) {
    lo = std::min(lo, s.mhz);
    hi = std::max(hi, s.mhz);
  }
  EXPECT_EQ(hi, 202.0);
  EXPECT_EQ(lo, 77.0);
}

TEST(Calibration, UnsynthesisedPointsReturnNothing) {
  EXPECT_FALSE(paper_fmax_mhz({Scheme::kReO, 4096, 8, 2}).has_value());
  EXPECT_FALSE(paper_fmax_mhz({Scheme::kReO, 512, 16, 3}).has_value());
  EXPECT_FALSE(paper_fmax_mhz({Scheme::kReO, 2048, 8, 3}).has_value());
}

TEST(Calibration, ValidityRuleMatchesTable4Columns) {
  // The Table III validity predicate must generate exactly the 18
  // synthesised columns.
  std::set<std::tuple<unsigned, unsigned, unsigned>> from_rule;
  for (unsigned size : {512u, 1024u, 2048u, 4096u})
    for (unsigned lanes : {8u, 16u})
      for (unsigned ports = 1; ports <= 4; ++ports)
        if (dse_point_valid(size, lanes, ports))
          from_rule.insert({size, lanes, ports});
  std::set<std::tuple<unsigned, unsigned, unsigned>> from_table;
  for (const DseColumn& c : table4_columns())
    from_table.insert({c.size_kb, c.lanes, c.ports});
  EXPECT_EQ(from_rule, from_table);
  EXPECT_EQ(from_rule.size(), 18u);
}

TEST(Calibration, ValidityRejectsOverCapacityReplication) {
  EXPECT_FALSE(dse_point_valid(4096, 8, 2));   // 8MB of data: no
  EXPECT_FALSE(dse_point_valid(2048, 8, 3));   // 6MB: no
  EXPECT_TRUE(dse_point_valid(1024, 8, 4));    // exactly 4MB: yes
  EXPECT_TRUE(dse_point_valid(2048, 8, 2));    // exactly 4MB: yes
  EXPECT_FALSE(dse_point_valid(512, 16, 3));   // 16 lanes cap at 2 ports
  EXPECT_FALSE(dse_point_valid(256, 8, 1));    // not a Table III size
  EXPECT_FALSE(dse_point_valid(512, 4, 1));    // not a Table III lane count
  EXPECT_FALSE(dse_point_valid(512, 8, 0));
}

TEST(Calibration, Geometry) {
  unsigned p = 0, q = 0;
  dse_geometry(8, p, q);
  EXPECT_EQ(p, 2u);
  EXPECT_EQ(q, 4u);
  dse_geometry(16, p, q);
  EXPECT_EQ(p, 2u);
  EXPECT_EQ(q, 8u);
}

TEST(Calibration, EveryCellPositiveAndPlausible) {
  for (const FmaxSample& s : paper_table4()) {
    EXPECT_GE(s.mhz, 77.0);
    EXPECT_LE(s.mhz, 202.0);
  }
}

}  // namespace
}  // namespace polymem::synth
