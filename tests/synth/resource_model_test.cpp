// Pins the resource model against the utilisation numbers quoted in the
// paper's Sec. IV-C text, and checks the monotonicity/shape claims of
// Figs. 6-8.
#include "synth/resource_model.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "synth/calibration.hpp"
#include "synth/fmax_model.hpp"

namespace polymem::synth {
namespace {

using maf::Scheme;

core::PolyMemConfig cfg(Scheme s, unsigned size_kb, unsigned lanes,
                        unsigned ports) {
  return FmaxModel::make_config(DsePoint{s, size_kb, lanes, ports});
}

TEST(ResourceModel, BramAnchorsFromPaperText) {
  const ResourceModel model;
  // "the logic utilization varies ... 16.07% of the BRAMs [512KB ReRo 8L
  //  1P], the 16-lane PolyMem uses 19.31% and the 8-lane, dual read port
  //  configuration uses 29.04%".
  EXPECT_NEAR(model.estimate(cfg(Scheme::kReRo, 512, 8, 1)).bram_pct, 16.07,
              2.5);
  EXPECT_NEAR(model.estimate(cfg(Scheme::kReRo, 512, 16, 1)).bram_pct, 19.31,
              2.5);
  EXPECT_NEAR(model.estimate(cfg(Scheme::kReRo, 512, 8, 2)).bram_pct, 29.04,
              2.5);
  // "up to 97% for a 2MB, 16-lane, 2-read ports PolyMem".
  EXPECT_NEAR(model.estimate(cfg(Scheme::kReRo, 2048, 16, 2)).bram_pct, 97.0,
              4.0);
}

TEST(ResourceModel, BramIndependentOfScheme) {
  // "the memory scheme has no influence on the amount of BRAMs used".
  const ResourceModel model;
  const auto ref = model.estimate(cfg(Scheme::kReO, 1024, 8, 2)).bram36;
  for (Scheme s : maf::kAllSchemes)
    EXPECT_EQ(model.estimate(cfg(s, 1024, 8, 2)).bram36, ref);
}

TEST(ResourceModel, BramGrowsWithCapacityLanesAndPorts) {
  const ResourceModel model;
  auto bram = [&](unsigned size, unsigned lanes, unsigned ports) {
    return model.estimate(cfg(Scheme::kReRo, size, lanes, ports)).bram_pct;
  };
  EXPECT_LT(bram(512, 8, 1), bram(1024, 8, 1));
  EXPECT_LT(bram(1024, 8, 1), bram(2048, 8, 1));
  EXPECT_LT(bram(2048, 8, 1), bram(4096, 8, 1));
  EXPECT_LT(bram(512, 8, 1), bram(512, 16, 1));
  EXPECT_LT(bram(512, 8, 1), bram(512, 8, 2));
  EXPECT_LT(bram(512, 8, 2), bram(512, 8, 4));
}

TEST(ResourceModel, ReadPortDuplicationDoublesDataBrams) {
  const ResourceModel model;
  const auto one = model.estimate(cfg(Scheme::kReRo, 512, 8, 1));
  const auto two = model.estimate(cfg(Scheme::kReRo, 512, 8, 2));
  EXPECT_EQ(two.bram36_data, 2 * one.bram36_data);
}

TEST(ResourceModel, EveryValidDsePointFitsTheDevice) {
  // The paper synthesised all 90 Table IV points; the model must agree
  // they fit (BRAM <= 100%, logic < 38%, LUTs < 28%: Sec. IV-C bullets).
  const ResourceModel model;
  for (const FmaxSample& s : paper_table4()) {
    const auto est = model.estimate(FmaxModel::make_config(s.point));
    EXPECT_TRUE(est.fits()) << s.point.size_kb << "KB " << s.point.lanes
                            << "L " << s.point.ports << "P";
    EXPECT_LT(est.logic_pct, 38.0);
    EXPECT_LT(est.lut_pct, 28.5);
  }
}

TEST(ResourceModel, LogicAnchorsFromPaperText) {
  const ResourceModel model;
  // "varies between 10.58% for a 512KB, ReO configuration to 13.05% for
  //  the 4096KB featuring the RoCo scheme" (8 lanes, 1 read port).
  EXPECT_NEAR(model.estimate(cfg(Scheme::kReO, 512, 8, 1)).logic_pct, 10.58,
              0.5);
  EXPECT_NEAR(model.estimate(cfg(Scheme::kRoCo, 4096, 8, 1)).logic_pct, 13.05,
              0.5);
  // "for the ReRo, 512KB, 8 lane configuration, the logic utilization
  //  doubles from 10.78% for the single port case to 22.34% for the
  //  4-port PolyMem".
  EXPECT_NEAR(model.estimate(cfg(Scheme::kReRo, 512, 8, 1)).logic_pct, 10.78,
              0.5);
  EXPECT_NEAR(model.estimate(cfg(Scheme::kReRo, 512, 8, 4)).logic_pct, 22.34,
              0.8);
  // "the logic utilization increases from 10.78% to 23.73%" (8 -> 16 lanes).
  EXPECT_NEAR(model.estimate(cfg(Scheme::kReRo, 512, 16, 1)).logic_pct, 23.73,
              0.8);
}

TEST(ResourceModel, LogicSupraLinearInLanes) {
  // Doubling lanes more than doubles the crossbar contribution
  // (Sec. IV-C: "supra-linear logic utilization increase").
  const ResourceModel model;
  const double base = 3.5;  // platform offset excluded from the ratio
  const double l8 =
      model.estimate(cfg(Scheme::kReRo, 512, 8, 1)).logic_pct - base;
  const double l16 =
      model.estimate(cfg(Scheme::kReRo, 512, 16, 1)).logic_pct - base;
  EXPECT_GT(l16, 2.0 * l8);
  EXPECT_LT(l16, 4.0 * l8);  // but sub-quadratic overall
}

TEST(ResourceModel, LogicNearlyFlatInCapacity) {
  // "little to no increase in logic utilization" when only capacity grows.
  const ResourceModel model;
  const double small = model.estimate(cfg(Scheme::kReRo, 512, 8, 1)).logic_pct;
  const double large = model.estimate(cfg(Scheme::kReRo, 4096, 8, 1)).logic_pct;
  EXPECT_LT(large - small, 3.0);
  EXPECT_GT(large, small);
}

TEST(ResourceModel, LutsTrackLogic) {
  const ResourceModel model;
  for (const auto& point :
       {DsePoint{Scheme::kReRo, 512, 8, 1}, DsePoint{Scheme::kReRo, 512, 16, 2},
        DsePoint{Scheme::kReO, 4096, 8, 1}}) {
    const auto est = model.estimate(FmaxModel::make_config(point));
    EXPECT_GT(est.lut_pct, 0.5 * est.logic_pct);
    EXPECT_LT(est.lut_pct, est.logic_pct);
    // LUT% within the paper's 7..28% envelope.
    EXPECT_GE(est.lut_pct, 6.5);
    EXPECT_LE(est.lut_pct, 28.5);
  }
}

TEST(ResourceModel, ModularDesignDoublesLogic) {
  // Sec. III-C: modular multi-kernel design costs 2x resources.
  const ResourceModel model;
  const auto fused = model.estimate(cfg(Scheme::kReRo, 512, 8, 1));
  const auto modular = model.estimate_modular(cfg(Scheme::kReRo, 512, 8, 1));
  EXPECT_DOUBLE_EQ(modular.logic_pct, 2 * fused.logic_pct);
  EXPECT_DOUBLE_EQ(modular.lut_pct, 2 * fused.lut_pct);
  EXPECT_EQ(modular.bram36, fused.bram36);  // BRAM is data-bound
}

TEST(ResourceModel, AbsoluteCountsConsistentWithPercentages) {
  const ResourceModel model;
  const auto est = model.estimate(cfg(Scheme::kReRo, 512, 8, 1));
  const auto& dev = model.device();
  EXPECT_NEAR(est.luts, est.lut_pct / 100.0 * dev.luts, 1.0);
  EXPECT_NEAR(est.logic_cells, est.logic_pct / 100.0 * dev.logic_cells, 1.0);
}

}  // namespace
}  // namespace polymem::synth
