#include "synth/fmax_model.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace polymem::synth {
namespace {

using maf::Scheme;

TEST(FmaxModel, CalibratedFitIsTight) {
  // The analytical model must track the paper's 90 synthesis results to
  // within 10% mean relative error (the shape claim of DESIGN.md).
  const FmaxModel& model = FmaxModel::paper_calibrated();
  EXPECT_LT(model.mean_rel_error_vs_paper(), 0.10);
}

TEST(FmaxModel, CorrelatesStronglyWithPaper) {
  const FmaxModel& model = FmaxModel::paper_calibrated();
  std::vector<double> predicted, reference;
  for (const FmaxSample& s : paper_table4()) {
    predicted.push_back(model.fmax_mhz(s.point));
    reference.push_back(s.mhz);
  }
  EXPECT_GT(pearson(predicted, reference), 0.9);
}

TEST(FmaxModel, FrequencyFallsWithCapacity) {
  // Sec. IV-B: "bandwidth is reduced if the number of lanes and ports is
  // kept constant, but the capacity of PolyMem is increased" — via fmax.
  const FmaxModel& model = FmaxModel::paper_calibrated();
  for (Scheme s : maf::kAllSchemes) {
    double prev = 1e9;
    for (unsigned size : {512u, 1024u, 2048u, 4096u}) {
      const double f = model.fmax_mhz(DsePoint{s, size, 8, 1});
      EXPECT_LT(f, prev) << maf::scheme_name(s) << " " << size;
      prev = f;
    }
  }
}

TEST(FmaxModel, FrequencyFallsWithReadPorts) {
  const FmaxModel& model = FmaxModel::paper_calibrated();
  double prev = 1e9;
  for (unsigned ports = 1; ports <= 4; ++ports) {
    const double f =
        model.fmax_mhz(DsePoint{Scheme::kReRo, 512, 8, ports});
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(FmaxModel, FrequencyFallsWithLanes) {
  const FmaxModel& model = FmaxModel::paper_calibrated();
  EXPECT_LT(model.fmax_mhz(DsePoint{Scheme::kReRo, 512, 16, 1}),
            model.fmax_mhz(DsePoint{Scheme::kReRo, 512, 8, 1}));
}

TEST(FmaxModel, PredictionsWithinPaperEnvelope) {
  // All synthesised points landed in 77..202 MHz; the model must stay in
  // a modestly widened envelope on those same points.
  const FmaxModel& model = FmaxModel::paper_calibrated();
  for (const FmaxSample& s : paper_table4()) {
    const double f = model.fmax_mhz(s.point);
    EXPECT_GT(f, 65.0);
    EXPECT_LT(f, 230.0);
  }
}

TEST(FmaxModel, MakeConfigBuildsDseGeometry) {
  const auto cfg =
      FmaxModel::make_config(DsePoint{Scheme::kReTr, 1024, 16, 2});
  EXPECT_EQ(cfg.capacity_bytes(), 1024 * KiB);
  EXPECT_EQ(cfg.p, 2u);
  EXPECT_EQ(cfg.q, 8u);
  EXPECT_EQ(cfg.read_ports, 2u);
  EXPECT_EQ(cfg.scheme, Scheme::kReTr);
}

TEST(FmaxModel, PeriodIsInverseOfFrequency) {
  const FmaxModel& model = FmaxModel::paper_calibrated();
  const auto cfg = FmaxModel::make_config(DsePoint{Scheme::kReO, 512, 8, 1});
  EXPECT_NEAR(model.period_ns(cfg) * model.fmax_mhz(cfg), 1000.0, 1e-6);
}

TEST(FmaxModel, ExplicitParamsAreHonoured) {
  FmaxParams params;
  params.t0 = 10.0;
  params.tb = 0.0;
  params.tp = 0.0;
  params.tl = 0.0;
  params.scheme_offset = {};
  const FmaxModel model(params);
  const auto cfg = FmaxModel::make_config(DsePoint{Scheme::kReO, 512, 8, 1});
  EXPECT_DOUBLE_EQ(model.fmax_mhz(cfg), 100.0);
}

}  // namespace
}  // namespace polymem::synth
