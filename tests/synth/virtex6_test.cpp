#include "synth/virtex6.hpp"

#include <gtest/gtest.h>

namespace polymem::synth {
namespace {

TEST(Virtex6, MatchesPaperDescription) {
  const DeviceSpec& dev = virtex6_sx475t();
  EXPECT_EQ(dev.name, "XC6VSX475T");
  // "475k logic cells and 4MB of on-chip BRAMs" (Sec. IV-A).
  EXPECT_NEAR(static_cast<double>(dev.logic_cells), 475e3, 2e3);
  EXPECT_GE(dev.bram_bytes_total(), 4ull * 1024 * 1024);
  // The paper instantiated a 4MB PolyMem, so the device must hold at
  // least 4MB of data plus infrastructure, but not wildly more.
  EXPECT_LE(dev.bram_bytes_total(), 5ull * 1024 * 1024);
}

TEST(Virtex6, Bram36Geometry) {
  const DeviceSpec& dev = virtex6_sx475t();
  EXPECT_EQ(dev.bram36_blocks, 1064u);
  EXPECT_EQ(dev.bram36_bytes, 4608u);  // 36Kb with parity, 512x72 mode
}

}  // namespace
}  // namespace polymem::synth
