#include "maf/scheme.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace polymem::maf {
namespace {

using access::PatternKind;

TEST(SchemeNames, RoundTrip) {
  for (Scheme s : kAllSchemes) EXPECT_EQ(scheme_from_name(scheme_name(s)), s);
  EXPECT_THROW(scheme_from_name("ReXx"), InvalidArgument);
}

TEST(SchemeNames, MatchPaperTable1) {
  EXPECT_STREQ(scheme_name(Scheme::kReO), "ReO");
  EXPECT_STREQ(scheme_name(Scheme::kReRo), "ReRo");
  EXPECT_STREQ(scheme_name(Scheme::kReCo), "ReCo");
  EXPECT_STREQ(scheme_name(Scheme::kRoCo), "RoCo");
  EXPECT_STREQ(scheme_name(Scheme::kReTr), "ReTr");
}

TEST(AdvertisedPatterns, MatchPaperTable1) {
  auto has = [](Scheme s, PatternKind k) {
    const auto pats = advertised_patterns(s);
    return std::find(pats.begin(), pats.end(), k) != pats.end();
  };
  // ReO (Rectangle Only): Rectangle.
  EXPECT_TRUE(has(Scheme::kReO, PatternKind::kRect));
  EXPECT_EQ(advertised_patterns(Scheme::kReO).size(), 1u);
  // ReRo: Rectangle, Row, Main and secondary Diagonals.
  EXPECT_TRUE(has(Scheme::kReRo, PatternKind::kRect));
  EXPECT_TRUE(has(Scheme::kReRo, PatternKind::kRow));
  EXPECT_TRUE(has(Scheme::kReRo, PatternKind::kMainDiag));
  EXPECT_TRUE(has(Scheme::kReRo, PatternKind::kSecDiag));
  EXPECT_FALSE(has(Scheme::kReRo, PatternKind::kCol));
  // ReCo: Rectangle, Column, Main and secondary Diagonals.
  EXPECT_TRUE(has(Scheme::kReCo, PatternKind::kRect));
  EXPECT_TRUE(has(Scheme::kReCo, PatternKind::kCol));
  EXPECT_TRUE(has(Scheme::kReCo, PatternKind::kMainDiag));
  EXPECT_TRUE(has(Scheme::kReCo, PatternKind::kSecDiag));
  EXPECT_FALSE(has(Scheme::kReCo, PatternKind::kRow));
  // RoCo: Row, Column, Rectangle.
  EXPECT_TRUE(has(Scheme::kRoCo, PatternKind::kRow));
  EXPECT_TRUE(has(Scheme::kRoCo, PatternKind::kCol));
  EXPECT_TRUE(has(Scheme::kRoCo, PatternKind::kRect));
  // ReTr: Rectangle, Transposed Rectangle.
  EXPECT_TRUE(has(Scheme::kReTr, PatternKind::kRect));
  EXPECT_TRUE(has(Scheme::kReTr, PatternKind::kTRect));
  EXPECT_EQ(advertised_patterns(Scheme::kReTr).size(), 2u);
}

}  // namespace
}  // namespace polymem::maf
