#include "maf/maf.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"

namespace polymem::maf {
namespace {

TEST(Maf, ClassicFormulasReO) {
  const Maf m(Scheme::kReO, 2, 4);
  // m_v = i mod p, m_h = j mod q.
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(m.m_v(i, j), static_cast<unsigned>(i % 2));
      EXPECT_EQ(m.m_h(i, j), static_cast<unsigned>(j % 4));
      EXPECT_EQ(m.bank(i, j), m.m_v(i, j) * 4 + m.m_h(i, j));
    }
}

TEST(Maf, ClassicFormulasReRo) {
  const Maf m(Scheme::kReRo, 2, 4);
  // m_v = (i + |j/q|) mod p, m_h = j mod q.
  EXPECT_EQ(m.m_v(0, 0), 0u);
  EXPECT_EQ(m.m_v(0, 4), 1u);  // |4/4| = 1
  EXPECT_EQ(m.m_v(1, 4), 0u);
  EXPECT_EQ(m.m_h(0, 5), 1u);
}

TEST(Maf, ClassicFormulasReCo) {
  const Maf m(Scheme::kReCo, 2, 4);
  // m_h = (j + |i/p|) mod q.
  EXPECT_EQ(m.m_h(0, 0), 0u);
  EXPECT_EQ(m.m_h(2, 0), 1u);  // |2/2| = 1
  EXPECT_EQ(m.m_h(2, 3), 0u);
  EXPECT_EQ(m.m_v(3, 0), 1u);
}

TEST(Maf, ClassicFormulasRoCo) {
  const Maf m(Scheme::kRoCo, 2, 4);
  EXPECT_EQ(m.m_v(0, 4), 1u);
  EXPECT_EQ(m.m_h(2, 0), 1u);
}

TEST(Maf, NegativeCoordinatesUseFlooredArithmetic) {
  for (Scheme s : kAllSchemes) {
    const Maf m(s, 2, 4);
    // The MAF must be total and in-range on negative coordinates.
    for (int i = -10; i < 10; ++i)
      for (int j = -10; j < 10; ++j) EXPECT_LT(m.bank(i, j), 8u);
    // Periodicity across zero: shifting by one full period changes nothing.
    const int period = 8 * 4;  // n * lcm(p, q)
    for (int i = -8; i < 8; ++i)
      for (int j = -8; j < 8; ++j)
        EXPECT_EQ(m.bank(i, j), m.bank(i + period, j + period))
            << scheme_name(s);
  }
}

TEST(Maf, BankAlwaysInRange) {
  for (Scheme s : kAllSchemes) {
    for (auto [p, q] : {std::pair<unsigned, unsigned>{2, 4}, {2, 8}, {4, 4},
                        {1, 8}, {4, 2}}) {
      const Maf m(s, p, q);
      const unsigned n = p * q;
      for (int i = 0; i < 40; ++i)
        for (int j = 0; j < 40; ++j) {
          EXPECT_LT(m.bank(i, j), n);
          EXPECT_EQ(m.bank(i, j), m.m_v(i, j) * q + m.m_h(i, j));
        }
    }
  }
}

TEST(Maf, RejectsDegenerateGeometry) {
  EXPECT_THROW(Maf(Scheme::kReO, 0, 4), InvalidArgument);
  EXPECT_THROW(Maf(Scheme::kReO, 2, 0), InvalidArgument);
}

TEST(MafReTr, KnownCoefficientsForPaperGeometries) {
  // The DSE uses 8 = 2x4 and 16 = 2x8 lanes; both must resolve from the
  // built-in verified table (no search).
  const Maf m8(Scheme::kReTr, 2, 4);
  const auto c8 = m8.retr_coefficients();
  ASSERT_TRUE(c8.has_value());
  EXPECT_EQ(c8->a, 2u);
  EXPECT_EQ(c8->b, 2u);

  const Maf m16(Scheme::kReTr, 2, 8);
  ASSERT_TRUE(m16.retr_coefficients().has_value());
}

TEST(MafReTr, NonReTrSchemesReportNoCoefficients) {
  EXPECT_FALSE(Maf(Scheme::kReO, 2, 4).retr_coefficients().has_value());
  EXPECT_FALSE(Maf(Scheme::kRoCo, 2, 4).retr_coefficients().has_value());
}

TEST(MafReTr, TransposedGeometryMirrorsBaseForm) {
  // (4, 2) uses the transposed form of (2, 4): banks under (i, j) swap.
  const Maf base(Scheme::kReTr, 2, 4);
  const Maf tr(Scheme::kReTr, 4, 2);
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) EXPECT_EQ(tr.bank(i, j), base.bank(j, i));
}

TEST(MafReTr, SearchFallbackFindsUnlistedGeometry) {
  // (8, 8) is not in the built-in table: the constructor must derive
  // coefficients by verified search (cached for later constructions).
  const Maf m(Scheme::kReTr, 8, 8);
  EXPECT_TRUE(m.retr_coefficients().has_value());
  // Spot-check: a rect and a trect access at an awkward anchor are
  // conflict-free (full verification happens in conflict_test.cpp).
  std::set<unsigned> banks;
  for (int u = 0; u < 8; ++u)
    for (int v = 0; v < 8; ++v) banks.insert(m.bank(3 + u, 5 + v));
  EXPECT_EQ(banks.size(), 64u);
}

TEST(Maf, EveryBankUsedEquallyOftenOverOnePeriod) {
  // Load balance: over one full period each bank must appear the same
  // number of times, otherwise bank capacities would be wasted.
  for (Scheme s : kAllSchemes) {
    const unsigned p = 2, q = 4, n = p * q;
    const Maf m(s, p, q);
    const int period = static_cast<int>(n) * 4;  // n * lcm(p, q)
    std::map<unsigned, int> hist;
    for (int i = 0; i < period; ++i)
      for (int j = 0; j < period; ++j) ++hist[m.bank(i, j)];
    ASSERT_EQ(hist.size(), n) << scheme_name(s);
    for (const auto& [bank, count] : hist)
      EXPECT_EQ(count, period * period / static_cast<int>(n))
          << scheme_name(s) << " bank " << bank;
  }
}

TEST(Maf, AxisPeriodsAreTruePeriods) {
  // period_i/period_j underpin the plan-template cache: the bank function
  // must repeat exactly under a shift of one period along either axis,
  // including across zero (negative coordinates use floored arithmetic).
  const std::pair<unsigned, unsigned> geometries[] = {
      {1, 1}, {1, 4}, {2, 2}, {2, 4}, {4, 2}, {4, 4}, {2, 8}, {4, 8}};
  for (Scheme s : kAllSchemes) {
    for (const auto& [p, q] : geometries) {
      const Maf m(s, p, q);
      const std::int64_t pi = m.period_i();
      const std::int64_t pj = m.period_j();
      ASSERT_GE(pi, 1) << scheme_name(s);
      ASSERT_GE(pj, 1) << scheme_name(s);
      // Periods must be multiples of p / q so that anchor alignment and
      // the addressing decomposition are residue-class properties.
      EXPECT_EQ(pi % p, 0) << scheme_name(s) << " " << p << "x" << q;
      EXPECT_EQ(pj % q, 0) << scheme_name(s) << " " << p << "x" << q;
      for (std::int64_t i = -pi; i < pi; ++i) {
        for (std::int64_t j = -pj; j < pj; ++j) {
          ASSERT_EQ(m.bank(i + pi, j), m.bank(i, j))
              << scheme_name(s) << " " << p << "x" << q << " at (" << i
              << "," << j << ")";
          ASSERT_EQ(m.bank(i, j + pj), m.bank(i, j))
              << scheme_name(s) << " " << p << "x" << q << " at (" << i
              << "," << j << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace polymem::maf
