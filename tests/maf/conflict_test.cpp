// Machine-checked reproduction of the paper's Table I: which patterns each
// scheme serves conflict-free, exhaustively verified over one MAF period
// for each bank geometry the DSE uses (8 = 2x4, 16 = 2x8) plus extras.
#include "maf/conflict.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "maf/maf.hpp"

namespace polymem::maf {
namespace {

using access::PatternKind;

struct SupportCase {
  Scheme scheme;
  unsigned p, q;
  PatternKind pattern;
  SupportLevel expected;
};

std::string case_name(const ::testing::TestParamInfo<SupportCase>& info) {
  const auto& c = info.param;
  return std::string(scheme_name(c.scheme)) + "_" + std::to_string(c.p) + "x" +
         std::to_string(c.q) + "_" + access::pattern_name(c.pattern);
}

class SupportMatrix : public ::testing::TestWithParam<SupportCase> {};

TEST_P(SupportMatrix, ProbeMatchesExpectation) {
  const auto& c = GetParam();
  const Maf maf(c.scheme, c.p, c.q);
  EXPECT_EQ(probe_support(maf, c.pattern), c.expected);
}

constexpr auto kAny = SupportLevel::kAny;
constexpr auto kAligned = SupportLevel::kAligned;
constexpr auto kNone = SupportLevel::kNone;

// Expected values were derived by the exhaustive search in
// tools/maf_search.cpp and match the paper's Table I claims.
INSTANTIATE_TEST_SUITE_P(
    Paper8Lanes, SupportMatrix,
    ::testing::Values(
        // ReO (2x4): rectangle only.
        SupportCase{Scheme::kReO, 2, 4, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReO, 2, 4, PatternKind::kTRect, kNone},
        SupportCase{Scheme::kReO, 2, 4, PatternKind::kRow, kNone},
        SupportCase{Scheme::kReO, 2, 4, PatternKind::kCol, kNone},
        SupportCase{Scheme::kReO, 2, 4, PatternKind::kMainDiag, kNone},
        SupportCase{Scheme::kReO, 2, 4, PatternKind::kSecDiag, kNone},
        // ReRo (2x4): rect, row, both diagonals.
        SupportCase{Scheme::kReRo, 2, 4, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReRo, 2, 4, PatternKind::kRow, kAny},
        SupportCase{Scheme::kReRo, 2, 4, PatternKind::kMainDiag, kAny},
        SupportCase{Scheme::kReRo, 2, 4, PatternKind::kSecDiag, kAny},
        SupportCase{Scheme::kReRo, 2, 4, PatternKind::kCol, kNone},
        SupportCase{Scheme::kReRo, 2, 4, PatternKind::kTRect, kNone},
        // ReCo (2x4): rect, col, both diagonals.
        SupportCase{Scheme::kReCo, 2, 4, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReCo, 2, 4, PatternKind::kCol, kAny},
        SupportCase{Scheme::kReCo, 2, 4, PatternKind::kMainDiag, kAny},
        SupportCase{Scheme::kReCo, 2, 4, PatternKind::kSecDiag, kAny},
        SupportCase{Scheme::kReCo, 2, 4, PatternKind::kRow, kNone},
        // RoCo (2x4): row, col anywhere; rectangle aligned.
        SupportCase{Scheme::kRoCo, 2, 4, PatternKind::kRow, kAny},
        SupportCase{Scheme::kRoCo, 2, 4, PatternKind::kCol, kAny},
        SupportCase{Scheme::kRoCo, 2, 4, PatternKind::kRect, kAligned},
        SupportCase{Scheme::kRoCo, 2, 4, PatternKind::kMainDiag, kNone},
        // ReTr (2x4): rect and transposed rect anywhere.
        SupportCase{Scheme::kReTr, 2, 4, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReTr, 2, 4, PatternKind::kTRect, kAny}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    Paper16Lanes, SupportMatrix,
    ::testing::Values(
        SupportCase{Scheme::kReO, 2, 8, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReRo, 2, 8, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReRo, 2, 8, PatternKind::kRow, kAny},
        SupportCase{Scheme::kReRo, 2, 8, PatternKind::kMainDiag, kAny},
        SupportCase{Scheme::kReRo, 2, 8, PatternKind::kSecDiag, kAny},
        SupportCase{Scheme::kReCo, 2, 8, PatternKind::kCol, kAny},
        SupportCase{Scheme::kReCo, 2, 8, PatternKind::kMainDiag, kAny},
        SupportCase{Scheme::kRoCo, 2, 8, PatternKind::kRow, kAny},
        SupportCase{Scheme::kRoCo, 2, 8, PatternKind::kCol, kAny},
        SupportCase{Scheme::kRoCo, 2, 8, PatternKind::kRect, kAligned},
        SupportCase{Scheme::kReTr, 2, 8, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReTr, 2, 8, PatternKind::kTRect, kAny}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    OtherGeometries, SupportMatrix,
    ::testing::Values(
        // Square geometry: rect == trect shape-wise, so ReO gains trect.
        SupportCase{Scheme::kReO, 4, 4, PatternKind::kTRect, kAny},
        SupportCase{Scheme::kReTr, 4, 4, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReTr, 4, 4, PatternKind::kTRect, kAny},
        // Degenerate 1xN geometry: a rect *is* a row.
        SupportCase{Scheme::kReO, 1, 8, PatternKind::kRow, kAny},
        SupportCase{Scheme::kReO, 1, 8, PatternKind::kMainDiag, kAny},
        // Diagonals degrade when a bank-grid axis collapses.
        SupportCase{Scheme::kReRo, 8, 1, PatternKind::kMainDiag, kNone},
        SupportCase{Scheme::kReCo, 1, 8, PatternKind::kMainDiag, kNone},
        // Taller-than-wide geometry.
        SupportCase{Scheme::kReRo, 4, 2, PatternKind::kRow, kAny},
        SupportCase{Scheme::kReRo, 4, 2, PatternKind::kMainDiag, kAny},
        SupportCase{Scheme::kReTr, 4, 2, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReTr, 4, 2, PatternKind::kTRect, kAny},
        SupportCase{Scheme::kReTr, 4, 8, PatternKind::kRect, kAny},
        SupportCase{Scheme::kReTr, 4, 8, PatternKind::kTRect, kAny}),
    case_name);

TEST(Conflict, AdvertisedPatternsVerifiedForAllSchemesAtPaperGeometries) {
  // Table I end-to-end: everything a scheme advertises must verify at
  // least aligned; rows/cols/diagonals advertised by multiview schemes
  // must verify at *any* anchor.
  for (Scheme s : kAllSchemes) {
    for (auto [p, q] : {std::pair<unsigned, unsigned>{2, 4}, {2, 8}}) {
      const Maf maf(s, p, q);
      for (PatternKind pattern : advertised_patterns(s)) {
        const SupportLevel level = probe_support(maf, pattern);
        EXPECT_NE(level, SupportLevel::kNone)
            << scheme_name(s) << " " << access::pattern_name(pattern);
        if (s != Scheme::kRoCo) {
          EXPECT_EQ(level, SupportLevel::kAny)
              << scheme_name(s) << " " << access::pattern_name(pattern);
        }
      }
    }
  }
}

TEST(Conflict, FindConflictsReturnsWitnesses) {
  // ReO cannot serve rows: there must be concrete colliding anchors, and
  // re-checking one of them must show a genuine bank collision.
  const Maf maf(Scheme::kReO, 2, 4);
  const auto witnesses = find_conflicts(maf, PatternKind::kRow);
  ASSERT_FALSE(witnesses.empty());
  const auto el = access::expand({PatternKind::kRow, witnesses.front()}, 2, 4);
  std::set<unsigned> banks;
  for (const auto& c : el) banks.insert(maf.bank(c));
  EXPECT_LT(banks.size(), el.size());
}

TEST(Conflict, FindConflictsEmptyForSupportedPattern) {
  const Maf maf(Scheme::kReRo, 2, 4);
  EXPECT_TRUE(find_conflicts(maf, PatternKind::kRow).empty());
}

TEST(Conflict, AccessSupportedHonoursAlignment) {
  const Maf roco(Scheme::kRoCo, 2, 4);
  EXPECT_TRUE(access_supported(roco, {PatternKind::kRect, {0, 0}}));
  EXPECT_TRUE(access_supported(roco, {PatternKind::kRect, {2, 4}}));
  EXPECT_FALSE(access_supported(roco, {PatternKind::kRect, {1, 0}}));
  EXPECT_FALSE(access_supported(roco, {PatternKind::kRect, {0, 2}}));
  // Rows are fine anywhere.
  EXPECT_TRUE(access_supported(roco, {PatternKind::kRow, {3, 5}}));
  // Unsupported patterns are rejected at any anchor.
  EXPECT_FALSE(access_supported(roco, {PatternKind::kMainDiag, {0, 0}}));
}

TEST(Conflict, SupportLevelNames) {
  EXPECT_STREQ(support_level_name(SupportLevel::kNone), "none");
  EXPECT_STREQ(support_level_name(SupportLevel::kAligned), "aligned");
  EXPECT_STREQ(support_level_name(SupportLevel::kAny), "any");
}

}  // namespace
}  // namespace polymem::maf
