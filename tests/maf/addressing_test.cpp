#include "maf/addressing.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/error.hpp"
#include "maf/maf.hpp"

namespace polymem::maf {
namespace {

TEST(Addressing, Formula) {
  // A(i, j) = |i/p| * (W/q) + |j/q| on an 8x16 space with 2x4 banks.
  const AddressingFunction a(2, 4, 8, 16);
  EXPECT_EQ(a.address(0, 0), 0);
  EXPECT_EQ(a.address(1, 3), 0);    // same 2x4 block
  EXPECT_EQ(a.address(0, 4), 1);    // next block to the right
  EXPECT_EQ(a.address(2, 0), 4);    // next block row (W/q = 4)
  EXPECT_EQ(a.address(7, 15), 15);  // last block
  EXPECT_EQ(a.words_per_bank(), 16);
}

TEST(Addressing, RejectsMisalignedSpace) {
  EXPECT_THROW(AddressingFunction(2, 4, 7, 16), InvalidArgument);
  EXPECT_THROW(AddressingFunction(2, 4, 8, 15), InvalidArgument);
  EXPECT_THROW(AddressingFunction(0, 4, 8, 16), InvalidArgument);
}

TEST(Addressing, InBounds) {
  const AddressingFunction a(2, 4, 8, 16);
  EXPECT_TRUE(a.in_bounds(0, 0));
  EXPECT_TRUE(a.in_bounds(7, 15));
  EXPECT_FALSE(a.in_bounds(8, 0));
  EXPECT_FALSE(a.in_bounds(0, 16));
  EXPECT_FALSE(a.in_bounds(-1, 0));
  EXPECT_FALSE(a.in_bounds(0, -1));
}

// The pair (bank, address) must be a bijection from the H x W space onto
// banks x words — this is what lets PolyMem store every element exactly
// once with zero waste, for every scheme.
TEST(Addressing, BankAddressBijectionForEveryScheme) {
  for (Scheme s : kAllSchemes) {
    for (auto [p, q] : {std::pair<unsigned, unsigned>{2, 4}, {2, 8}, {4, 4},
                        {1, 8}, {4, 2}}) {
      const std::int64_t h = 4 * p, w = 4 * q;
      const Maf maf(s, p, q);
      const AddressingFunction a(p, q, h, w);
      std::set<std::pair<unsigned, std::int64_t>> slots;
      for (std::int64_t i = 0; i < h; ++i) {
        for (std::int64_t j = 0; j < w; ++j) {
          const std::int64_t addr = a.address(i, j);
          EXPECT_GE(addr, 0);
          EXPECT_LT(addr, a.words_per_bank());
          slots.insert({maf.bank(i, j), addr});
        }
      }
      EXPECT_EQ(slots.size(), static_cast<std::size_t>(h * w))
          << scheme_name(s) << " " << p << "x" << q;
    }
  }
}

}  // namespace
}  // namespace polymem::maf
