#include "maf/maf_table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace polymem::maf {
namespace {

TEST(MafTable, EqualsAnalyticMafEverywhere) {
  for (Scheme scheme : kAllSchemes) {
    for (auto [p, q] : {std::pair<unsigned, unsigned>{2, 4}, {2, 8}, {4, 4},
                        {1, 8}, {4, 2}}) {
      const Maf maf(scheme, p, q);
      const MafTable table(maf);
      // Inside the period, beyond it, and on negative coordinates.
      for (std::int64_t i = -40; i < 3 * table.period(); i += 7)
        for (std::int64_t j = -40; j < 3 * table.period(); j += 5)
          ASSERT_EQ(table.bank(i, j), maf.bank(i, j))
              << scheme_name(scheme) << " " << p << "x" << q << " (" << i
              << "," << j << ")";
    }
  }
}

TEST(MafTable, MetadataAndStorage) {
  const Maf maf(Scheme::kReRo, 2, 4);
  const MafTable table(maf);
  EXPECT_EQ(table.scheme(), Scheme::kReRo);
  EXPECT_EQ(table.banks(), 8u);
  EXPECT_EQ(table.period(), 8 * 4);  // n * lcm(2, 4)
  EXPECT_EQ(table.storage_bytes(), 32u * 32 * sizeof(BankIndex));
}

TEST(MafTable, RejectsUntabulatableGeometry) {
  // 64x64 banks would need a (4096*64)^2 table — refuse loudly.
  const Maf maf(Scheme::kReO, 64, 64);
  EXPECT_THROW(MafTable{maf}, InvalidArgument);
}

}  // namespace
}  // namespace polymem::maf
