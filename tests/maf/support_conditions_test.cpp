// Closed-form support conditions, validated against the exhaustive
// checker over a grid of geometries.
//
// The PRF thesis states conditions under which each scheme's patterns are
// conflict-free; the paper's Table I summarises them for "typical" p, q.
// This suite encodes the *geometry-dependent* closed forms this library
// derived (tools/maf_search.cpp) and proves them equivalent to the
// machine-checked oracle for every (p, q) in the grid — so the predicates
// below can be trusted as documentation.
#include <gtest/gtest.h>

#include "maf/conflict.hpp"

namespace polymem::maf {
namespace {

using access::PatternKind;

// The geometry grid: every p, q in {1, 2, 4, 8} plus a few stretched
// shapes. (Power-of-two geometries, as all of the paper's designs.)
std::vector<std::pair<unsigned, unsigned>> grid() {
  std::vector<std::pair<unsigned, unsigned>> g;
  for (unsigned p : {1u, 2u, 4u, 8u})
    for (unsigned q : {1u, 2u, 4u, 8u}) g.push_back({p, q});
  g.push_back({2, 16});
  g.push_back({16, 2});
  return g;
}

// ---- closed-form predicates ---------------------------------------------

SupportLevel expected_reo(PatternKind kind, unsigned p, unsigned q) {
  switch (kind) {
    case PatternKind::kRect:
      return SupportLevel::kAny;
    case PatternKind::kTRect:
      return p == q ? SupportLevel::kAny : SupportLevel::kNone;
    case PatternKind::kRow:
      return p == 1 ? SupportLevel::kAny : SupportLevel::kNone;
    case PatternKind::kCol:
      return q == 1 ? SupportLevel::kAny : SupportLevel::kNone;
    case PatternKind::kMainDiag:
    case PatternKind::kSecDiag:
      // A diagonal degenerates to a row/col walk when one axis is 1.
      return (p == 1 || q == 1) ? SupportLevel::kAny : SupportLevel::kNone;
  }
  return SupportLevel::kNone;
}

SupportLevel expected_rero(PatternKind kind, unsigned p, unsigned q) {
  switch (kind) {
    case PatternKind::kRect:
    case PatternKind::kRow:
      return SupportLevel::kAny;
    case PatternKind::kTRect:
      // Square: trect == rect. q == 1: trect degenerates to a 1 x p row.
      return (p == q || q == 1) ? SupportLevel::kAny : SupportLevel::kNone;
    case PatternKind::kCol:
      return q == 1 ? SupportLevel::kAny : SupportLevel::kNone;
    case PatternKind::kMainDiag:
    case PatternKind::kSecDiag:
      // The row rotation breaks on diagonals only when q == 1 (and the
      // grid is not a single row).
      return (q > 1 || p == 1) ? SupportLevel::kAny : SupportLevel::kNone;
  }
  return SupportLevel::kNone;
}

SupportLevel expected_reco(PatternKind kind, unsigned p, unsigned q) {
  switch (kind) {
    case PatternKind::kRect:
    case PatternKind::kCol:
      return SupportLevel::kAny;
    case PatternKind::kTRect:
      // Square: trect == rect. p == 1: trect degenerates to a q x 1 col.
      return (p == q || p == 1) ? SupportLevel::kAny : SupportLevel::kNone;
    case PatternKind::kRow:
      return p == 1 ? SupportLevel::kAny : SupportLevel::kNone;
    case PatternKind::kMainDiag:
    case PatternKind::kSecDiag:
      return (p > 1 || q == 1) ? SupportLevel::kAny : SupportLevel::kNone;
  }
  return SupportLevel::kNone;
}

}  // namespace

TEST(SupportConditions, ReOMatchesClosedForm) {
  for (auto [p, q] : grid()) {
    const Maf maf(Scheme::kReO, p, q);
    for (PatternKind kind : access::kAllPatterns)
      EXPECT_EQ(probe_support(maf, kind), expected_reo(kind, p, q))
          << "ReO " << p << "x" << q << " " << access::pattern_name(kind);
  }
}

TEST(SupportConditions, ReRoMatchesClosedForm) {
  for (auto [p, q] : grid()) {
    const Maf maf(Scheme::kReRo, p, q);
    for (PatternKind kind : access::kAllPatterns)
      EXPECT_EQ(probe_support(maf, kind), expected_rero(kind, p, q))
          << "ReRo " << p << "x" << q << " " << access::pattern_name(kind);
  }
}

TEST(SupportConditions, ReCoMatchesClosedForm) {
  for (auto [p, q] : grid()) {
    const Maf maf(Scheme::kReCo, p, q);
    for (PatternKind kind : access::kAllPatterns)
      EXPECT_EQ(probe_support(maf, kind), expected_reco(kind, p, q))
          << "ReCo " << p << "x" << q << " " << access::pattern_name(kind);
  }
}

TEST(SupportConditions, ReRoReCoAreTransposes) {
  // Structural duality: ReCo(p, q) behaves like ReRo(q, p) with i and j
  // swapped, so their support matrices mirror through the transpose.
  auto mirror = [](PatternKind kind) {
    switch (kind) {
      case PatternKind::kRow: return PatternKind::kCol;
      case PatternKind::kCol: return PatternKind::kRow;
      case PatternKind::kRect: return PatternKind::kTRect;
      case PatternKind::kTRect: return PatternKind::kRect;
      default: return kind;  // diagonals map to diagonals
    }
  };
  for (auto [p, q] : grid()) {
    const Maf rero(Scheme::kReRo, p, q);
    const Maf reco(Scheme::kReCo, q, p);
    for (PatternKind kind :
         {PatternKind::kRow, PatternKind::kCol, PatternKind::kMainDiag}) {
      EXPECT_EQ(probe_support(rero, kind),
                probe_support(reco, mirror(kind)))
          << p << "x" << q << " " << access::pattern_name(kind);
    }
  }
}

TEST(SupportConditions, RoCoRowsAndColumnsAlwaysAny) {
  for (auto [p, q] : grid()) {
    const Maf maf(Scheme::kRoCo, p, q);
    EXPECT_EQ(probe_support(maf, PatternKind::kRow), SupportLevel::kAny);
    EXPECT_EQ(probe_support(maf, PatternKind::kCol), SupportLevel::kAny);
    // Rectangles: at least aligned, everywhere.
    EXPECT_NE(probe_support(maf, PatternKind::kRect), SupportLevel::kNone);
  }
}

TEST(SupportConditions, RoCoRectAlignedOnlyExactlyWhenBothAxesNontrivial) {
  for (auto [p, q] : grid()) {
    const Maf maf(Scheme::kRoCo, p, q);
    const SupportLevel rect = probe_support(maf, PatternKind::kRect);
    if (p == 1 || q == 1) {
      EXPECT_EQ(rect, SupportLevel::kAny) << p << "x" << q;
    } else {
      EXPECT_EQ(rect, SupportLevel::kAligned) << p << "x" << q;
    }
  }
}

TEST(SupportConditions, ReTrRectAndTRectAnyForAllPow2Geometries) {
  for (auto [p, q] : grid()) {
    const Maf maf(Scheme::kReTr, p, q);
    EXPECT_EQ(probe_support(maf, PatternKind::kRect), SupportLevel::kAny)
        << p << "x" << q;
    EXPECT_EQ(probe_support(maf, PatternKind::kTRect), SupportLevel::kAny)
        << p << "x" << q;
  }
}

TEST(SupportConditions, EverySchemeServesAlignedRectangles) {
  // The addressing function's correctness rests on this: each aligned
  // p x q block hits every bank exactly once, for every scheme.
  for (Scheme scheme : kAllSchemes) {
    for (auto [p, q] : grid()) {
      const Maf maf(scheme, p, q);
      EXPECT_TRUE(verify_conflict_free(maf, PatternKind::kRect,
                                       /*aligned_only=*/true))
          << scheme_name(scheme) << " " << p << "x" << q;
    }
  }
}

}  // namespace polymem::maf
