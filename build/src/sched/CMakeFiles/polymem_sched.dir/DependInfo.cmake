
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/polymem_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/polymem_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/setcover.cpp" "src/sched/CMakeFiles/polymem_sched.dir/setcover.cpp.o" "gcc" "src/sched/CMakeFiles/polymem_sched.dir/setcover.cpp.o.d"
  "/root/repo/src/sched/trace.cpp" "src/sched/CMakeFiles/polymem_sched.dir/trace.cpp.o" "gcc" "src/sched/CMakeFiles/polymem_sched.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/polymem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
