# Empty compiler generated dependencies file for polymem_sched.
# This may be replaced when dependencies are built.
