file(REMOVE_RECURSE
  "libpolymem_sched.a"
)
