file(REMOVE_RECURSE
  "CMakeFiles/polymem_sched.dir/scheduler.cpp.o"
  "CMakeFiles/polymem_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/polymem_sched.dir/setcover.cpp.o"
  "CMakeFiles/polymem_sched.dir/setcover.cpp.o.d"
  "CMakeFiles/polymem_sched.dir/trace.cpp.o"
  "CMakeFiles/polymem_sched.dir/trace.cpp.o.d"
  "libpolymem_sched.a"
  "libpolymem_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
