file(REMOVE_RECURSE
  "CMakeFiles/polymem_dse.dir/explorer.cpp.o"
  "CMakeFiles/polymem_dse.dir/explorer.cpp.o.d"
  "CMakeFiles/polymem_dse.dir/report.cpp.o"
  "CMakeFiles/polymem_dse.dir/report.cpp.o.d"
  "libpolymem_dse.a"
  "libpolymem_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
