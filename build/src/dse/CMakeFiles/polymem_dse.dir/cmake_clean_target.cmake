file(REMOVE_RECURSE
  "libpolymem_dse.a"
)
