# Empty compiler generated dependencies file for polymem_dse.
# This may be replaced when dependencies are built.
