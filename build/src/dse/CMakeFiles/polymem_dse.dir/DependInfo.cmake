
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/explorer.cpp" "src/dse/CMakeFiles/polymem_dse.dir/explorer.cpp.o" "gcc" "src/dse/CMakeFiles/polymem_dse.dir/explorer.cpp.o.d"
  "/root/repo/src/dse/report.cpp" "src/dse/CMakeFiles/polymem_dse.dir/report.cpp.o" "gcc" "src/dse/CMakeFiles/polymem_dse.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/polymem_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/polymem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
