# CMake generated Testfile for 
# Source directory: /root/repo/src/maxsim
# Build directory: /root/repo/build/src/maxsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
