file(REMOVE_RECURSE
  "CMakeFiles/polymem_maxsim.dir/dfe.cpp.o"
  "CMakeFiles/polymem_maxsim.dir/dfe.cpp.o.d"
  "CMakeFiles/polymem_maxsim.dir/dma.cpp.o"
  "CMakeFiles/polymem_maxsim.dir/dma.cpp.o.d"
  "CMakeFiles/polymem_maxsim.dir/lmem.cpp.o"
  "CMakeFiles/polymem_maxsim.dir/lmem.cpp.o.d"
  "CMakeFiles/polymem_maxsim.dir/manager.cpp.o"
  "CMakeFiles/polymem_maxsim.dir/manager.cpp.o.d"
  "CMakeFiles/polymem_maxsim.dir/pcie.cpp.o"
  "CMakeFiles/polymem_maxsim.dir/pcie.cpp.o.d"
  "libpolymem_maxsim.a"
  "libpolymem_maxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_maxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
