file(REMOVE_RECURSE
  "libpolymem_maxsim.a"
)
