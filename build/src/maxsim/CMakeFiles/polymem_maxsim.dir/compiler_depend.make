# Empty compiler generated dependencies file for polymem_maxsim.
# This may be replaced when dependencies are built.
