
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maxsim/dfe.cpp" "src/maxsim/CMakeFiles/polymem_maxsim.dir/dfe.cpp.o" "gcc" "src/maxsim/CMakeFiles/polymem_maxsim.dir/dfe.cpp.o.d"
  "/root/repo/src/maxsim/dma.cpp" "src/maxsim/CMakeFiles/polymem_maxsim.dir/dma.cpp.o" "gcc" "src/maxsim/CMakeFiles/polymem_maxsim.dir/dma.cpp.o.d"
  "/root/repo/src/maxsim/lmem.cpp" "src/maxsim/CMakeFiles/polymem_maxsim.dir/lmem.cpp.o" "gcc" "src/maxsim/CMakeFiles/polymem_maxsim.dir/lmem.cpp.o.d"
  "/root/repo/src/maxsim/manager.cpp" "src/maxsim/CMakeFiles/polymem_maxsim.dir/manager.cpp.o" "gcc" "src/maxsim/CMakeFiles/polymem_maxsim.dir/manager.cpp.o.d"
  "/root/repo/src/maxsim/pcie.cpp" "src/maxsim/CMakeFiles/polymem_maxsim.dir/pcie.cpp.o" "gcc" "src/maxsim/CMakeFiles/polymem_maxsim.dir/pcie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/polymem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
