file(REMOVE_RECURSE
  "libpolymem_apps.a"
)
