# Empty compiler generated dependencies file for polymem_apps.
# This may be replaced when dependencies are built.
