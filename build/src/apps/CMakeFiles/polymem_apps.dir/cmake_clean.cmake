file(REMOVE_RECURSE
  "CMakeFiles/polymem_apps.dir/matvec_app.cpp.o"
  "CMakeFiles/polymem_apps.dir/matvec_app.cpp.o.d"
  "CMakeFiles/polymem_apps.dir/stencil_app.cpp.o"
  "CMakeFiles/polymem_apps.dir/stencil_app.cpp.o.d"
  "CMakeFiles/polymem_apps.dir/transpose_app.cpp.o"
  "CMakeFiles/polymem_apps.dir/transpose_app.cpp.o.d"
  "libpolymem_apps.a"
  "libpolymem_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
