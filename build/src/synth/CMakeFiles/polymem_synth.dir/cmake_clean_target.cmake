file(REMOVE_RECURSE
  "libpolymem_synth.a"
)
