# Empty compiler generated dependencies file for polymem_synth.
# This may be replaced when dependencies are built.
