file(REMOVE_RECURSE
  "CMakeFiles/polymem_synth.dir/calibration.cpp.o"
  "CMakeFiles/polymem_synth.dir/calibration.cpp.o.d"
  "CMakeFiles/polymem_synth.dir/fmax_model.cpp.o"
  "CMakeFiles/polymem_synth.dir/fmax_model.cpp.o.d"
  "CMakeFiles/polymem_synth.dir/resource_model.cpp.o"
  "CMakeFiles/polymem_synth.dir/resource_model.cpp.o.d"
  "CMakeFiles/polymem_synth.dir/virtex6.cpp.o"
  "CMakeFiles/polymem_synth.dir/virtex6.cpp.o.d"
  "libpolymem_synth.a"
  "libpolymem_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
