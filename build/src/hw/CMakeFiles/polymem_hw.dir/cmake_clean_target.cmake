file(REMOVE_RECURSE
  "libpolymem_hw.a"
)
