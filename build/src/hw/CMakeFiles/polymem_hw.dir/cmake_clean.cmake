file(REMOVE_RECURSE
  "CMakeFiles/polymem_hw.dir/benes.cpp.o"
  "CMakeFiles/polymem_hw.dir/benes.cpp.o.d"
  "CMakeFiles/polymem_hw.dir/bram.cpp.o"
  "CMakeFiles/polymem_hw.dir/bram.cpp.o.d"
  "CMakeFiles/polymem_hw.dir/crossbar.cpp.o"
  "CMakeFiles/polymem_hw.dir/crossbar.cpp.o.d"
  "libpolymem_hw.a"
  "libpolymem_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
