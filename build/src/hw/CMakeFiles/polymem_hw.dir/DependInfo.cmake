
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/benes.cpp" "src/hw/CMakeFiles/polymem_hw.dir/benes.cpp.o" "gcc" "src/hw/CMakeFiles/polymem_hw.dir/benes.cpp.o.d"
  "/root/repo/src/hw/bram.cpp" "src/hw/CMakeFiles/polymem_hw.dir/bram.cpp.o" "gcc" "src/hw/CMakeFiles/polymem_hw.dir/bram.cpp.o.d"
  "/root/repo/src/hw/crossbar.cpp" "src/hw/CMakeFiles/polymem_hw.dir/crossbar.cpp.o" "gcc" "src/hw/CMakeFiles/polymem_hw.dir/crossbar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
