# Empty compiler generated dependencies file for polymem_hw.
# This may be replaced when dependencies are built.
