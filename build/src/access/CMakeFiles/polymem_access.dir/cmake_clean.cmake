file(REMOVE_RECURSE
  "CMakeFiles/polymem_access.dir/pattern.cpp.o"
  "CMakeFiles/polymem_access.dir/pattern.cpp.o.d"
  "CMakeFiles/polymem_access.dir/region.cpp.o"
  "CMakeFiles/polymem_access.dir/region.cpp.o.d"
  "libpolymem_access.a"
  "libpolymem_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
