
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/pattern.cpp" "src/access/CMakeFiles/polymem_access.dir/pattern.cpp.o" "gcc" "src/access/CMakeFiles/polymem_access.dir/pattern.cpp.o.d"
  "/root/repo/src/access/region.cpp" "src/access/CMakeFiles/polymem_access.dir/region.cpp.o" "gcc" "src/access/CMakeFiles/polymem_access.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
