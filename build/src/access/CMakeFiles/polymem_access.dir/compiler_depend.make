# Empty compiler generated dependencies file for polymem_access.
# This may be replaced when dependencies are built.
