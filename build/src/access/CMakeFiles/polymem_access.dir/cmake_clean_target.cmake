file(REMOVE_RECURSE
  "libpolymem_access.a"
)
