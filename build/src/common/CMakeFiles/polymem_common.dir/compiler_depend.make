# Empty compiler generated dependencies file for polymem_common.
# This may be replaced when dependencies are built.
