file(REMOVE_RECURSE
  "CMakeFiles/polymem_common.dir/config.cpp.o"
  "CMakeFiles/polymem_common.dir/config.cpp.o.d"
  "CMakeFiles/polymem_common.dir/error.cpp.o"
  "CMakeFiles/polymem_common.dir/error.cpp.o.d"
  "CMakeFiles/polymem_common.dir/stats.cpp.o"
  "CMakeFiles/polymem_common.dir/stats.cpp.o.d"
  "CMakeFiles/polymem_common.dir/table.cpp.o"
  "CMakeFiles/polymem_common.dir/table.cpp.o.d"
  "CMakeFiles/polymem_common.dir/units.cpp.o"
  "CMakeFiles/polymem_common.dir/units.cpp.o.d"
  "libpolymem_common.a"
  "libpolymem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
