file(REMOVE_RECURSE
  "libpolymem_common.a"
)
