file(REMOVE_RECURSE
  "libpolymem_stream.a"
)
