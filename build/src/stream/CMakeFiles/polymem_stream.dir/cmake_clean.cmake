file(REMOVE_RECURSE
  "CMakeFiles/polymem_stream.dir/controller.cpp.o"
  "CMakeFiles/polymem_stream.dir/controller.cpp.o.d"
  "CMakeFiles/polymem_stream.dir/design.cpp.o"
  "CMakeFiles/polymem_stream.dir/design.cpp.o.d"
  "CMakeFiles/polymem_stream.dir/host.cpp.o"
  "CMakeFiles/polymem_stream.dir/host.cpp.o.d"
  "CMakeFiles/polymem_stream.dir/modular.cpp.o"
  "CMakeFiles/polymem_stream.dir/modular.cpp.o.d"
  "libpolymem_stream.a"
  "libpolymem_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
