# Empty dependencies file for polymem_stream.
# This may be replaced when dependencies are built.
