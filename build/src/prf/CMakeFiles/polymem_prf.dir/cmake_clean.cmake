file(REMOVE_RECURSE
  "CMakeFiles/polymem_prf.dir/fig2.cpp.o"
  "CMakeFiles/polymem_prf.dir/fig2.cpp.o.d"
  "CMakeFiles/polymem_prf.dir/register_file.cpp.o"
  "CMakeFiles/polymem_prf.dir/register_file.cpp.o.d"
  "libpolymem_prf.a"
  "libpolymem_prf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
