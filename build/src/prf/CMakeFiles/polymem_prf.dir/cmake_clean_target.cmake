file(REMOVE_RECURSE
  "libpolymem_prf.a"
)
