# Empty dependencies file for polymem_prf.
# This may be replaced when dependencies are built.
