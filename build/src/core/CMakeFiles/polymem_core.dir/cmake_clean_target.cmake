file(REMOVE_RECURSE
  "libpolymem_core.a"
)
