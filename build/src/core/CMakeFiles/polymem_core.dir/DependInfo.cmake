
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agu.cpp" "src/core/CMakeFiles/polymem_core.dir/agu.cpp.o" "gcc" "src/core/CMakeFiles/polymem_core.dir/agu.cpp.o.d"
  "/root/repo/src/core/banks.cpp" "src/core/CMakeFiles/polymem_core.dir/banks.cpp.o" "gcc" "src/core/CMakeFiles/polymem_core.dir/banks.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/polymem_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/polymem_core.dir/config.cpp.o.d"
  "/root/repo/src/core/cycle_polymem.cpp" "src/core/CMakeFiles/polymem_core.dir/cycle_polymem.cpp.o" "gcc" "src/core/CMakeFiles/polymem_core.dir/cycle_polymem.cpp.o.d"
  "/root/repo/src/core/polymem.cpp" "src/core/CMakeFiles/polymem_core.dir/polymem.cpp.o" "gcc" "src/core/CMakeFiles/polymem_core.dir/polymem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
