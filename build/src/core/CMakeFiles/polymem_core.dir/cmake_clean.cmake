file(REMOVE_RECURSE
  "CMakeFiles/polymem_core.dir/agu.cpp.o"
  "CMakeFiles/polymem_core.dir/agu.cpp.o.d"
  "CMakeFiles/polymem_core.dir/banks.cpp.o"
  "CMakeFiles/polymem_core.dir/banks.cpp.o.d"
  "CMakeFiles/polymem_core.dir/config.cpp.o"
  "CMakeFiles/polymem_core.dir/config.cpp.o.d"
  "CMakeFiles/polymem_core.dir/cycle_polymem.cpp.o"
  "CMakeFiles/polymem_core.dir/cycle_polymem.cpp.o.d"
  "CMakeFiles/polymem_core.dir/polymem.cpp.o"
  "CMakeFiles/polymem_core.dir/polymem.cpp.o.d"
  "libpolymem_core.a"
  "libpolymem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
