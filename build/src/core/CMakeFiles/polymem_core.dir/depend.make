# Empty dependencies file for polymem_core.
# This may be replaced when dependencies are built.
