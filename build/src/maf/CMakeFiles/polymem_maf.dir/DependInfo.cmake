
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maf/addressing.cpp" "src/maf/CMakeFiles/polymem_maf.dir/addressing.cpp.o" "gcc" "src/maf/CMakeFiles/polymem_maf.dir/addressing.cpp.o.d"
  "/root/repo/src/maf/conflict.cpp" "src/maf/CMakeFiles/polymem_maf.dir/conflict.cpp.o" "gcc" "src/maf/CMakeFiles/polymem_maf.dir/conflict.cpp.o.d"
  "/root/repo/src/maf/maf.cpp" "src/maf/CMakeFiles/polymem_maf.dir/maf.cpp.o" "gcc" "src/maf/CMakeFiles/polymem_maf.dir/maf.cpp.o.d"
  "/root/repo/src/maf/maf_table.cpp" "src/maf/CMakeFiles/polymem_maf.dir/maf_table.cpp.o" "gcc" "src/maf/CMakeFiles/polymem_maf.dir/maf_table.cpp.o.d"
  "/root/repo/src/maf/scheme.cpp" "src/maf/CMakeFiles/polymem_maf.dir/scheme.cpp.o" "gcc" "src/maf/CMakeFiles/polymem_maf.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
