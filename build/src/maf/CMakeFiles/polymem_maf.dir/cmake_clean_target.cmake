file(REMOVE_RECURSE
  "libpolymem_maf.a"
)
