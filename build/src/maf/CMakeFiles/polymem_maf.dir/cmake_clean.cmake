file(REMOVE_RECURSE
  "CMakeFiles/polymem_maf.dir/addressing.cpp.o"
  "CMakeFiles/polymem_maf.dir/addressing.cpp.o.d"
  "CMakeFiles/polymem_maf.dir/conflict.cpp.o"
  "CMakeFiles/polymem_maf.dir/conflict.cpp.o.d"
  "CMakeFiles/polymem_maf.dir/maf.cpp.o"
  "CMakeFiles/polymem_maf.dir/maf.cpp.o.d"
  "CMakeFiles/polymem_maf.dir/maf_table.cpp.o"
  "CMakeFiles/polymem_maf.dir/maf_table.cpp.o.d"
  "CMakeFiles/polymem_maf.dir/scheme.cpp.o"
  "CMakeFiles/polymem_maf.dir/scheme.cpp.o.d"
  "libpolymem_maf.a"
  "libpolymem_maf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_maf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
