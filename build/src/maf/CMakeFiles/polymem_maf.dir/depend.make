# Empty dependencies file for polymem_maf.
# This may be replaced when dependencies are built.
