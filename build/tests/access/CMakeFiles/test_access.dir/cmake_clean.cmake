file(REMOVE_RECURSE
  "CMakeFiles/test_access.dir/coord_test.cpp.o"
  "CMakeFiles/test_access.dir/coord_test.cpp.o.d"
  "CMakeFiles/test_access.dir/pattern_test.cpp.o"
  "CMakeFiles/test_access.dir/pattern_test.cpp.o.d"
  "CMakeFiles/test_access.dir/region_test.cpp.o"
  "CMakeFiles/test_access.dir/region_test.cpp.o.d"
  "test_access"
  "test_access.pdb"
  "test_access[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
