
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/access/coord_test.cpp" "tests/access/CMakeFiles/test_access.dir/coord_test.cpp.o" "gcc" "tests/access/CMakeFiles/test_access.dir/coord_test.cpp.o.d"
  "/root/repo/tests/access/pattern_test.cpp" "tests/access/CMakeFiles/test_access.dir/pattern_test.cpp.o" "gcc" "tests/access/CMakeFiles/test_access.dir/pattern_test.cpp.o.d"
  "/root/repo/tests/access/region_test.cpp" "tests/access/CMakeFiles/test_access.dir/region_test.cpp.o" "gcc" "tests/access/CMakeFiles/test_access.dir/region_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
