# CMake generated Testfile for 
# Source directory: /root/repo/tests/access
# Build directory: /root/repo/build/tests/access
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/access/test_access[1]_include.cmake")
