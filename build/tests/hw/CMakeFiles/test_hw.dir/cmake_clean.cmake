file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/benes_test.cpp.o"
  "CMakeFiles/test_hw.dir/benes_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/bram_test.cpp.o"
  "CMakeFiles/test_hw.dir/bram_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/clock_test.cpp.o"
  "CMakeFiles/test_hw.dir/clock_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/crossbar_test.cpp.o"
  "CMakeFiles/test_hw.dir/crossbar_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/fifo_test.cpp.o"
  "CMakeFiles/test_hw.dir/fifo_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/pipeline_test.cpp.o"
  "CMakeFiles/test_hw.dir/pipeline_test.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
