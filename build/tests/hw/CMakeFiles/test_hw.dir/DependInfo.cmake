
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/benes_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/benes_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/benes_test.cpp.o.d"
  "/root/repo/tests/hw/bram_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/bram_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/bram_test.cpp.o.d"
  "/root/repo/tests/hw/clock_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/clock_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/clock_test.cpp.o.d"
  "/root/repo/tests/hw/crossbar_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/crossbar_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/crossbar_test.cpp.o.d"
  "/root/repo/tests/hw/fifo_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/fifo_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/fifo_test.cpp.o.d"
  "/root/repo/tests/hw/pipeline_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/pipeline_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
