file(REMOVE_RECURSE
  "CMakeFiles/test_stream.dir/controller_test.cpp.o"
  "CMakeFiles/test_stream.dir/controller_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/design_test.cpp.o"
  "CMakeFiles/test_stream.dir/design_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/host_test.cpp.o"
  "CMakeFiles/test_stream.dir/host_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/modular_test.cpp.o"
  "CMakeFiles/test_stream.dir/modular_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/stage_isolation_test.cpp.o"
  "CMakeFiles/test_stream.dir/stage_isolation_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/variants_test.cpp.o"
  "CMakeFiles/test_stream.dir/variants_test.cpp.o.d"
  "test_stream"
  "test_stream.pdb"
  "test_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
