
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/api_test.cpp" "tests/integration/CMakeFiles/test_integration.dir/api_test.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/api_test.cpp.o.d"
  "/root/repo/tests/integration/dse_validation_test.cpp" "tests/integration/CMakeFiles/test_integration.dir/dse_validation_test.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/dse_validation_test.cpp.o.d"
  "/root/repo/tests/integration/full_system_test.cpp" "tests/integration/CMakeFiles/test_integration.dir/full_system_test.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/full_system_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/polymem_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/polymem_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/polymem_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/prf/CMakeFiles/polymem_prf.dir/DependInfo.cmake"
  "/root/repo/build/src/maxsim/CMakeFiles/polymem_maxsim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/polymem_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/polymem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
