
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/matvec_app_test.cpp" "tests/apps/CMakeFiles/test_apps.dir/matvec_app_test.cpp.o" "gcc" "tests/apps/CMakeFiles/test_apps.dir/matvec_app_test.cpp.o.d"
  "/root/repo/tests/apps/stencil_app_test.cpp" "tests/apps/CMakeFiles/test_apps.dir/stencil_app_test.cpp.o" "gcc" "tests/apps/CMakeFiles/test_apps.dir/stencil_app_test.cpp.o.d"
  "/root/repo/tests/apps/transpose_app_test.cpp" "tests/apps/CMakeFiles/test_apps.dir/transpose_app_test.cpp.o" "gcc" "tests/apps/CMakeFiles/test_apps.dir/transpose_app_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/polymem_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/polymem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
