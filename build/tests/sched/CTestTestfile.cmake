# CMake generated Testfile for 
# Source directory: /root/repo/tests/sched
# Build directory: /root/repo/build/tests/sched
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sched/test_sched[1]_include.cmake")
