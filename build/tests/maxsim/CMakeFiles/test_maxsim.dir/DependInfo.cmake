
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/maxsim/dfe_test.cpp" "tests/maxsim/CMakeFiles/test_maxsim.dir/dfe_test.cpp.o" "gcc" "tests/maxsim/CMakeFiles/test_maxsim.dir/dfe_test.cpp.o.d"
  "/root/repo/tests/maxsim/dma_test.cpp" "tests/maxsim/CMakeFiles/test_maxsim.dir/dma_test.cpp.o" "gcc" "tests/maxsim/CMakeFiles/test_maxsim.dir/dma_test.cpp.o.d"
  "/root/repo/tests/maxsim/lmem_test.cpp" "tests/maxsim/CMakeFiles/test_maxsim.dir/lmem_test.cpp.o" "gcc" "tests/maxsim/CMakeFiles/test_maxsim.dir/lmem_test.cpp.o.d"
  "/root/repo/tests/maxsim/manager_test.cpp" "tests/maxsim/CMakeFiles/test_maxsim.dir/manager_test.cpp.o" "gcc" "tests/maxsim/CMakeFiles/test_maxsim.dir/manager_test.cpp.o.d"
  "/root/repo/tests/maxsim/pcie_test.cpp" "tests/maxsim/CMakeFiles/test_maxsim.dir/pcie_test.cpp.o" "gcc" "tests/maxsim/CMakeFiles/test_maxsim.dir/pcie_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/maxsim/CMakeFiles/polymem_maxsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/polymem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
