# Empty dependencies file for test_maxsim.
# This may be replaced when dependencies are built.
