file(REMOVE_RECURSE
  "CMakeFiles/test_maxsim.dir/dfe_test.cpp.o"
  "CMakeFiles/test_maxsim.dir/dfe_test.cpp.o.d"
  "CMakeFiles/test_maxsim.dir/dma_test.cpp.o"
  "CMakeFiles/test_maxsim.dir/dma_test.cpp.o.d"
  "CMakeFiles/test_maxsim.dir/lmem_test.cpp.o"
  "CMakeFiles/test_maxsim.dir/lmem_test.cpp.o.d"
  "CMakeFiles/test_maxsim.dir/manager_test.cpp.o"
  "CMakeFiles/test_maxsim.dir/manager_test.cpp.o.d"
  "CMakeFiles/test_maxsim.dir/pcie_test.cpp.o"
  "CMakeFiles/test_maxsim.dir/pcie_test.cpp.o.d"
  "test_maxsim"
  "test_maxsim.pdb"
  "test_maxsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
