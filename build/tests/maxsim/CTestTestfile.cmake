# CMake generated Testfile for 
# Source directory: /root/repo/tests/maxsim
# Build directory: /root/repo/build/tests/maxsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/maxsim/test_maxsim[1]_include.cmake")
