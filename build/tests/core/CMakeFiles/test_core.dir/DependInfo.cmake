
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/agu_test.cpp" "tests/core/CMakeFiles/test_core.dir/agu_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/agu_test.cpp.o.d"
  "/root/repo/tests/core/banks_test.cpp" "tests/core/CMakeFiles/test_core.dir/banks_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/banks_test.cpp.o.d"
  "/root/repo/tests/core/config_test.cpp" "tests/core/CMakeFiles/test_core.dir/config_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/config_test.cpp.o.d"
  "/root/repo/tests/core/cycle_polymem_test.cpp" "tests/core/CMakeFiles/test_core.dir/cycle_polymem_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/cycle_polymem_test.cpp.o.d"
  "/root/repo/tests/core/equivalence_test.cpp" "tests/core/CMakeFiles/test_core.dir/equivalence_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/equivalence_test.cpp.o.d"
  "/root/repo/tests/core/failure_injection_test.cpp" "tests/core/CMakeFiles/test_core.dir/failure_injection_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/failure_injection_test.cpp.o.d"
  "/root/repo/tests/core/layout_test.cpp" "tests/core/CMakeFiles/test_core.dir/layout_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/layout_test.cpp.o.d"
  "/root/repo/tests/core/polymem_test.cpp" "tests/core/CMakeFiles/test_core.dir/polymem_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/polymem_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/polymem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polymem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
