file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/agu_test.cpp.o"
  "CMakeFiles/test_core.dir/agu_test.cpp.o.d"
  "CMakeFiles/test_core.dir/banks_test.cpp.o"
  "CMakeFiles/test_core.dir/banks_test.cpp.o.d"
  "CMakeFiles/test_core.dir/config_test.cpp.o"
  "CMakeFiles/test_core.dir/config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/cycle_polymem_test.cpp.o"
  "CMakeFiles/test_core.dir/cycle_polymem_test.cpp.o.d"
  "CMakeFiles/test_core.dir/equivalence_test.cpp.o"
  "CMakeFiles/test_core.dir/equivalence_test.cpp.o.d"
  "CMakeFiles/test_core.dir/failure_injection_test.cpp.o"
  "CMakeFiles/test_core.dir/failure_injection_test.cpp.o.d"
  "CMakeFiles/test_core.dir/layout_test.cpp.o"
  "CMakeFiles/test_core.dir/layout_test.cpp.o.d"
  "CMakeFiles/test_core.dir/polymem_test.cpp.o"
  "CMakeFiles/test_core.dir/polymem_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
