# CMake generated Testfile for 
# Source directory: /root/repo/tests/synth
# Build directory: /root/repo/build/tests/synth
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/synth/test_synth[1]_include.cmake")
