# CMake generated Testfile for 
# Source directory: /root/repo/tests/prf
# Build directory: /root/repo/build/tests/prf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/prf/test_prf[1]_include.cmake")
