# Empty compiler generated dependencies file for test_prf.
# This may be replaced when dependencies are built.
