file(REMOVE_RECURSE
  "CMakeFiles/test_prf.dir/fig2_test.cpp.o"
  "CMakeFiles/test_prf.dir/fig2_test.cpp.o.d"
  "CMakeFiles/test_prf.dir/register_file_test.cpp.o"
  "CMakeFiles/test_prf.dir/register_file_test.cpp.o.d"
  "test_prf"
  "test_prf.pdb"
  "test_prf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
