# CMake generated Testfile for 
# Source directory: /root/repo/tests/maf
# Build directory: /root/repo/build/tests/maf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/maf/test_maf[1]_include.cmake")
