
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/maf/addressing_test.cpp" "tests/maf/CMakeFiles/test_maf.dir/addressing_test.cpp.o" "gcc" "tests/maf/CMakeFiles/test_maf.dir/addressing_test.cpp.o.d"
  "/root/repo/tests/maf/conflict_test.cpp" "tests/maf/CMakeFiles/test_maf.dir/conflict_test.cpp.o" "gcc" "tests/maf/CMakeFiles/test_maf.dir/conflict_test.cpp.o.d"
  "/root/repo/tests/maf/maf_table_test.cpp" "tests/maf/CMakeFiles/test_maf.dir/maf_table_test.cpp.o" "gcc" "tests/maf/CMakeFiles/test_maf.dir/maf_table_test.cpp.o.d"
  "/root/repo/tests/maf/maf_test.cpp" "tests/maf/CMakeFiles/test_maf.dir/maf_test.cpp.o" "gcc" "tests/maf/CMakeFiles/test_maf.dir/maf_test.cpp.o.d"
  "/root/repo/tests/maf/scheme_test.cpp" "tests/maf/CMakeFiles/test_maf.dir/scheme_test.cpp.o" "gcc" "tests/maf/CMakeFiles/test_maf.dir/scheme_test.cpp.o.d"
  "/root/repo/tests/maf/support_conditions_test.cpp" "tests/maf/CMakeFiles/test_maf.dir/support_conditions_test.cpp.o" "gcc" "tests/maf/CMakeFiles/test_maf.dir/support_conditions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/maf/CMakeFiles/polymem_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/polymem_access.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
