file(REMOVE_RECURSE
  "CMakeFiles/test_maf.dir/addressing_test.cpp.o"
  "CMakeFiles/test_maf.dir/addressing_test.cpp.o.d"
  "CMakeFiles/test_maf.dir/conflict_test.cpp.o"
  "CMakeFiles/test_maf.dir/conflict_test.cpp.o.d"
  "CMakeFiles/test_maf.dir/maf_table_test.cpp.o"
  "CMakeFiles/test_maf.dir/maf_table_test.cpp.o.d"
  "CMakeFiles/test_maf.dir/maf_test.cpp.o"
  "CMakeFiles/test_maf.dir/maf_test.cpp.o.d"
  "CMakeFiles/test_maf.dir/scheme_test.cpp.o"
  "CMakeFiles/test_maf.dir/scheme_test.cpp.o.d"
  "CMakeFiles/test_maf.dir/support_conditions_test.cpp.o"
  "CMakeFiles/test_maf.dir/support_conditions_test.cpp.o.d"
  "test_maf"
  "test_maf.pdb"
  "test_maf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
