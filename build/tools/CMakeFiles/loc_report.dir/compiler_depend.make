# Empty compiler generated dependencies file for loc_report.
# This may be replaced when dependencies are built.
