file(REMOVE_RECURSE
  "CMakeFiles/loc_report.dir/loc_report.cpp.o"
  "CMakeFiles/loc_report.dir/loc_report.cpp.o.d"
  "loc_report"
  "loc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
