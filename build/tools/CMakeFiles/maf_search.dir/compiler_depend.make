# Empty compiler generated dependencies file for maf_search.
# This may be replaced when dependencies are built.
