file(REMOVE_RECURSE
  "CMakeFiles/maf_search.dir/maf_search.cpp.o"
  "CMakeFiles/maf_search.dir/maf_search.cpp.o.d"
  "maf_search"
  "maf_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maf_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
