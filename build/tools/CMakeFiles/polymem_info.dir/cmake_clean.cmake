file(REMOVE_RECURSE
  "CMakeFiles/polymem_info.dir/polymem_info.cpp.o"
  "CMakeFiles/polymem_info.dir/polymem_info.cpp.o.d"
  "polymem_info"
  "polymem_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymem_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
