# Empty dependencies file for polymem_info.
# This may be replaced when dependencies are built.
