# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_polymem_info_example "/root/repo/build/tools/polymem_info" "--example")
set_tests_properties(tool_polymem_info_example PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_polymem_info_config "sh" "-c" "/root/repo/build/tools/polymem_info --example > pm_info_test.cfg && /root/repo/build/tools/polymem_info pm_info_test.cfg")
set_tests_properties(tool_polymem_info_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
