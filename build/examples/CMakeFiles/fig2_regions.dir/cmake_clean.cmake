file(REMOVE_RECURSE
  "CMakeFiles/fig2_regions.dir/fig2_regions.cpp.o"
  "CMakeFiles/fig2_regions.dir/fig2_regions.cpp.o.d"
  "fig2_regions"
  "fig2_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
