file(REMOVE_RECURSE
  "CMakeFiles/tiled_mm.dir/tiled_mm.cpp.o"
  "CMakeFiles/tiled_mm.dir/tiled_mm.cpp.o.d"
  "tiled_mm"
  "tiled_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
