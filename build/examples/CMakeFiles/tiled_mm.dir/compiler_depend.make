# Empty compiler generated dependencies file for tiled_mm.
# This may be replaced when dependencies are built.
