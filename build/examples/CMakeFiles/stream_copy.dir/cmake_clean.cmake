file(REMOVE_RECURSE
  "CMakeFiles/stream_copy.dir/stream_copy.cpp.o"
  "CMakeFiles/stream_copy.dir/stream_copy.cpp.o.d"
  "stream_copy"
  "stream_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
