# Empty compiler generated dependencies file for stream_copy.
# This may be replaced when dependencies are built.
