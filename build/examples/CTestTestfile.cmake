# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil "/root/repo/build/examples/stencil")
set_tests_properties(example_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transpose "/root/repo/build/examples/transpose")
set_tests_properties(example_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_copy "/root/repo/build/examples/stream_copy")
set_tests_properties(example_stream_copy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheduler_demo "/root/repo/build/examples/scheduler_demo")
set_tests_properties(example_scheduler_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fig2_regions "/root/repo/build/examples/fig2_regions")
set_tests_properties(example_fig2_regions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tiled_mm "/root/repo/build/examples/tiled_mm")
set_tests_properties(example_tiled_mm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
