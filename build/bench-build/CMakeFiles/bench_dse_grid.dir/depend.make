# Empty dependencies file for bench_dse_grid.
# This may be replaced when dependencies are built.
