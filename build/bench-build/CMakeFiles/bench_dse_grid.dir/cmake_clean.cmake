file(REMOVE_RECURSE
  "../bench/bench_dse_grid"
  "../bench/bench_dse_grid.pdb"
  "CMakeFiles/bench_dse_grid.dir/bench_dse_grid.cpp.o"
  "CMakeFiles/bench_dse_grid.dir/bench_dse_grid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dse_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
