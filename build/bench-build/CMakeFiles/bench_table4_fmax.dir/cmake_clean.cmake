file(REMOVE_RECURSE
  "../bench/bench_table4_fmax"
  "../bench/bench_table4_fmax.pdb"
  "CMakeFiles/bench_table4_fmax.dir/bench_table4_fmax.cpp.o"
  "CMakeFiles/bench_table4_fmax.dir/bench_table4_fmax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
