# Empty compiler generated dependencies file for bench_table4_fmax.
# This may be replaced when dependencies are built.
