file(REMOVE_RECURSE
  "../bench/bench_fig10_stream_copy"
  "../bench/bench_fig10_stream_copy.pdb"
  "CMakeFiles/bench_fig10_stream_copy.dir/bench_fig10_stream_copy.cpp.o"
  "CMakeFiles/bench_fig10_stream_copy.dir/bench_fig10_stream_copy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stream_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
