# Empty dependencies file for bench_fig10_stream_copy.
# This may be replaced when dependencies are built.
