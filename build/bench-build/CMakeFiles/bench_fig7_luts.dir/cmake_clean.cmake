file(REMOVE_RECURSE
  "../bench/bench_fig7_luts"
  "../bench/bench_fig7_luts.pdb"
  "CMakeFiles/bench_fig7_luts.dir/bench_fig7_luts.cpp.o"
  "CMakeFiles/bench_fig7_luts.dir/bench_fig7_luts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_luts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
