file(REMOVE_RECURSE
  "../bench/bench_fig8_bram"
  "../bench/bench_fig8_bram.pdb"
  "CMakeFiles/bench_fig8_bram.dir/bench_fig8_bram.cpp.o"
  "CMakeFiles/bench_fig8_bram.dir/bench_fig8_bram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
