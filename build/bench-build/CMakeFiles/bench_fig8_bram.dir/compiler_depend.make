# Empty compiler generated dependencies file for bench_fig8_bram.
# This may be replaced when dependencies are built.
