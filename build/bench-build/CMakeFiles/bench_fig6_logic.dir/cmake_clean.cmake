file(REMOVE_RECURSE
  "../bench/bench_fig6_logic"
  "../bench/bench_fig6_logic.pdb"
  "CMakeFiles/bench_fig6_logic.dir/bench_fig6_logic.cpp.o"
  "CMakeFiles/bench_fig6_logic.dir/bench_fig6_logic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
