# Empty dependencies file for bench_fig6_logic.
# This may be replaced when dependencies are built.
