# Empty dependencies file for bench_fig4_write_bw.
# This may be replaced when dependencies are built.
