file(REMOVE_RECURSE
  "../bench/bench_fig4_write_bw"
  "../bench/bench_fig4_write_bw.pdb"
  "CMakeFiles/bench_fig4_write_bw.dir/bench_fig4_write_bw.cpp.o"
  "CMakeFiles/bench_fig4_write_bw.dir/bench_fig4_write_bw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_write_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
