# Empty compiler generated dependencies file for bench_ext_stream_full.
# This may be replaced when dependencies are built.
