file(REMOVE_RECURSE
  "../bench/bench_ext_stream_full"
  "../bench/bench_ext_stream_full.pdb"
  "CMakeFiles/bench_ext_stream_full.dir/bench_ext_stream_full.cpp.o"
  "CMakeFiles/bench_ext_stream_full.dir/bench_ext_stream_full.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_stream_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
