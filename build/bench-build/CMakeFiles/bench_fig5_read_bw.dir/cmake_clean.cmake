file(REMOVE_RECURSE
  "../bench/bench_fig5_read_bw"
  "../bench/bench_fig5_read_bw.pdb"
  "CMakeFiles/bench_fig5_read_bw.dir/bench_fig5_read_bw.cpp.o"
  "CMakeFiles/bench_fig5_read_bw.dir/bench_fig5_read_bw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_read_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
