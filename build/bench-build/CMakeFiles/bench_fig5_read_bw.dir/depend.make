# Empty dependencies file for bench_fig5_read_bw.
# This may be replaced when dependencies are built.
