file(REMOVE_RECURSE
  "../bench/bench_ext_sensitivity"
  "../bench/bench_ext_sensitivity.pdb"
  "CMakeFiles/bench_ext_sensitivity.dir/bench_ext_sensitivity.cpp.o"
  "CMakeFiles/bench_ext_sensitivity.dir/bench_ext_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
