#include "stream/modular.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "core/layout.hpp"

namespace polymem::stream {

using access::ParallelAccess;
using access::PatternKind;

namespace {

constexpr const char* kRdCmd = "RD_CMD";
constexpr const char* kRdData = "RD_DATA";
constexpr const char* kWrData = "WR_DATA";

core::VectorBand make_band(const StreamDesignConfig& cfg, Vector v) {
  const std::int64_t band_rows = ceil_div(cfg.vector_capacity, cfg.width);
  return core::VectorBand(static_cast<std::int64_t>(v) * band_rows,
                          cfg.vector_capacity, cfg.width);
}

}  // namespace

// Generates one read command (a source group index) per cycle.
class ModularCopyDesign::AddressGenKernel : public maxsim::Kernel {
 public:
  explicit AddressGenKernel(maxsim::Stream& rd_cmd)
      : maxsim::Kernel("address-gen"), rd_cmd_(&rd_cmd) {}

  void arm(std::int64_t groups) {
    total_ = groups;
    issued_ = 0;
  }

  void tick() override {
    if (issued_ < total_ &&
        rd_cmd_->push(static_cast<hw::Word>(issued_)))
      ++issued_;
  }
  bool done() const override { return issued_ == total_; }

 private:
  maxsim::Stream* rd_cmd_;
  std::int64_t total_ = 0;
  std::int64_t issued_ = 0;
};

// Owns the PolyMem; serves read commands and write data arriving on its
// streams. Reads are gated on rd_data space so retired data never drops.
class ModularCopyDesign::MemoryKernel : public maxsim::Kernel {
 public:
  MemoryKernel(core::PolyMemConfig cfg, const StreamDesignConfig& design,
               maxsim::Stream& rd_cmd, maxsim::Stream& rd_data,
               maxsim::Stream& wr_data)
      : maxsim::Kernel("polymem"),
        mem_(std::move(cfg)),
        design_(&design),
        rd_cmd_(&rd_cmd),
        rd_data_(&rd_data),
        wr_data_(&wr_data) {}

  core::CyclePolyMem& polymem() { return mem_; }

  void arm(Mode mode, std::int64_t groups) {
    src_band_ = make_band(*design_, mode == Mode::kCopy ? Vector::kA
                                                        : Vector::kB);
    dst_band_ = make_band(*design_, mode == Mode::kCopy ? Vector::kC
                                                        : Vector::kA);
    total_ = groups;
    writes_done_ = 0;
    in_flight_ = 0;
  }

  void tick() override {
    const auto lanes = static_cast<std::int64_t>(mem_.config().lanes());
    // 1. A full write group waiting on wr_data lands this cycle; its
    //    destination index is the write counter (in-order pipeline).
    if (writes_done_ < total_ &&
        wr_data_->size() >= static_cast<std::size_t>(lanes)) {
      std::vector<hw::Word> data(static_cast<std::size_t>(lanes));
      for (auto& w : data) w = *wr_data_->pop();
      const bool ok = mem_.issue_write(group_access(dst_band_, writes_done_),
                                       data);
      POLYMEM_ASSERT(ok);
      (void)ok;
      ++writes_done_;
    }
    // 2. Serve the next read command if the data stream can take the
    //    response.
    const std::size_t reserved =
        static_cast<std::size_t>((in_flight_ + 1) * lanes);
    if (!rd_cmd_->empty() &&
        rd_data_->capacity() - rd_data_->size() >= reserved) {
      const auto group = static_cast<std::int64_t>(*rd_cmd_->pop());
      mem_.issue_read(0, group_access(src_band_, group),
                      static_cast<std::uint64_t>(group));
      ++in_flight_;
    }
    mem_.tick();
    // 3. Retired data streams out to the compute kernel.
    if (auto resp = mem_.retire_read(0)) {
      for (hw::Word w : resp->data) {
        const bool ok = rd_data_->push(w);
        POLYMEM_ASSERT(ok);
        (void)ok;
      }
      --in_flight_;
    }
  }
  bool done() const override { return writes_done_ == total_; }

 private:
  ParallelAccess group_access(const core::VectorBand& band,
                              std::int64_t group) const {
    return {PatternKind::kRow,
            band.coord(group *
                       static_cast<std::int64_t>(mem_.config().lanes()))};
  }

  core::CyclePolyMem mem_;
  const StreamDesignConfig* design_;
  maxsim::Stream* rd_cmd_;
  maxsim::Stream* rd_data_;
  maxsim::Stream* wr_data_;
  core::VectorBand src_band_ = core::VectorBand(0, 1, 1);
  core::VectorBand dst_band_ = core::VectorBand(0, 1, 1);
  std::int64_t total_ = 0;
  std::int64_t writes_done_ = 0;
  std::int64_t in_flight_ = 0;
};

// Applies the arithmetic lane-wise: Copy forwards, Scale multiplies.
class ModularCopyDesign::ComputeKernel : public maxsim::Kernel {
 public:
  ComputeKernel(unsigned lanes, maxsim::Stream& rd_data,
                maxsim::Stream& wr_data)
      : maxsim::Kernel("compute"),
        lanes_(lanes),
        rd_data_(&rd_data),
        wr_data_(&wr_data) {}

  void arm(Mode mode, std::int64_t groups, double q) {
    mode_ = mode;
    q_ = q;
    total_ = groups;
    processed_ = 0;
  }

  void tick() override {
    if (processed_ == total_) return;
    if (rd_data_->size() < lanes_) return;
    if (wr_data_->capacity() - wr_data_->size() < lanes_) return;
    for (unsigned k = 0; k < lanes_; ++k) {
      hw::Word w = *rd_data_->pop();
      if (mode_ == Mode::kScale)
        w = core::pack_double(q_ * core::unpack_double(w));
      const bool ok = wr_data_->push(w);
      POLYMEM_ASSERT(ok);
      (void)ok;
    }
    ++processed_;
  }
  bool done() const override { return processed_ == total_; }

 private:
  unsigned lanes_;
  maxsim::Stream* rd_data_;
  maxsim::Stream* wr_data_;
  Mode mode_ = Mode::kCopy;
  double q_ = 3.0;
  std::int64_t total_ = 0;
  std::int64_t processed_ = 0;
};

ModularCopyDesign::ModularCopyDesign(StreamDesignConfig config)
    : config_(std::move(config)) {
  auto pm_cfg = config_.polymem_config();
  // The read-data FIFO must cover the PolyMem read latency or the
  // conservative issue gating throttles the pipeline below one access
  // per cycle — the buffering MaxJ's stream scheduler inserts
  // automatically between kernels.
  const std::size_t rd_depth =
      std::max<std::size_t>(config_.stream_depth,
                            (pm_cfg.read_latency + 2) *
                                static_cast<std::size_t>(pm_cfg.lanes()));
  maxsim::Stream& rd_cmd = manager_.add_stream(kRdCmd, config_.stream_depth);
  maxsim::Stream& rd_data = manager_.add_stream(kRdData, rd_depth);
  maxsim::Stream& wr_data =
      manager_.add_stream(kWrData, config_.stream_depth);
  addr_ = &manager_.add_kernel<AddressGenKernel>(rd_cmd);
  mem_ = &manager_.add_kernel<MemoryKernel>(pm_cfg, config_, rd_cmd, rd_data,
                                            wr_data);
  compute_ = &manager_.add_kernel<ComputeKernel>(pm_cfg.lanes(), rd_data,
                                                 wr_data);
}

core::CyclePolyMem& ModularCopyDesign::polymem() { return mem_->polymem(); }

core::VectorBand ModularCopyDesign::band(Vector v) const {
  return make_band(config_, v);
}

void ModularCopyDesign::start(Mode mode, std::int64_t n, double q) {
  POLYMEM_REQUIRE(mode == Mode::kCopy || mode == Mode::kScale,
                  "the modular design implements Copy and Scale");
  const auto lanes =
      static_cast<std::int64_t>(polymem().config().lanes());
  POLYMEM_REQUIRE(n >= 1 && n % lanes == 0 && n <= config_.vector_capacity,
                  "bad stage length");
  const std::int64_t groups = n / lanes;
  addr_->arm(groups);
  mem_->arm(mode, groups);
  compute_->arm(mode, groups, q);
}

std::uint64_t ModularCopyDesign::run(std::uint64_t max_cycles) {
  return manager_.run_to_completion(max_cycles);
}

}  // namespace polymem::stream
