// The complete STREAM design: manager + streams + controller (Fig. 9).
//
// Mirrors the synthesised design of the paper's Sec. V: a PolyMem with
// 8 lanes (2x4), the RoCo scheme ("Because we access data in rows only"),
// two read ports (Sum/Triad need them; Copy uses one), 64-bit elements,
// and room for three vectors of up to 170*512 elements each (~700KB per
// array), clocked at 120 MHz with a 14-cycle read latency.
#pragma once

#include <cstdint>
#include <memory>

#include "maxsim/manager.hpp"
#include "stream/controller.hpp"

namespace polymem::stream {

struct StreamDesignConfig {
  std::int64_t vector_capacity = 170 * 512;  ///< elements per vector
  std::int64_t width = 512;                  ///< address-space row width
  unsigned p = 2;
  unsigned q = 4;
  maf::Scheme scheme = maf::Scheme::kRoCo;
  unsigned read_ports = 2;
  unsigned read_latency = 14;  ///< cycles (paper Sec. V)
  double clock_mhz = 120.0;    ///< synthesised frequency (paper Sec. V)
  std::size_t stream_depth = 512;  ///< host-stream FIFO capacity, words

  /// The PolyMem configuration implied by the above (three row bands).
  core::PolyMemConfig polymem_config() const;
};

class StreamDesign {
 public:
  explicit StreamDesign(StreamDesignConfig config = {});

  const StreamDesignConfig& config() const { return config_; }
  maxsim::Manager& manager() { return manager_; }
  StreamController& controller() { return *controller_; }
  const StreamController& controller() const { return *controller_; }

  /// Stream names as wired into the manager.
  static constexpr const char* kAIn = "A_IN";
  static constexpr const char* kBIn = "B_IN";
  static constexpr const char* kCIn = "C_IN";
  static constexpr const char* kOut = "OUT";

 private:
  StreamDesignConfig config_;
  maxsim::Manager manager_;
  StreamController* controller_ = nullptr;  // owned by manager_
};

}  // namespace polymem::stream
