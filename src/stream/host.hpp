// The host side of the STREAM benchmark.
//
// Orchestrates the paper's three blocking stages — Load, compute, Offload
// — over the simulated PCIe link, measures the compute stage in isolation
// (repeated `runs` times, as the paper repeats 1000x for timer
// resolution), and reports results in the classic STREAM format
// (function, best rate MB/s, avg/min/max time).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "maxsim/dfe.hpp"
#include "stream/design.hpp"

namespace polymem::stream {

/// Result of one benchmark function over `runs` repetitions.
struct StreamResult {
  Mode mode = Mode::kCopy;
  std::int64_t n = 0;             ///< elements per vector processed
  std::uint64_t bytes_per_run = 0;  ///< STREAM-counted bytes per run
  std::uint64_t cycles_per_run = 0; ///< DFE cycles of the last run
  RunningStats seconds;            ///< per-run wall-clock (incl. overhead)

  double best_rate_bytes_per_s() const;
  double avg_rate_bytes_per_s() const;
};

class StreamHost {
 public:
  explicit StreamHost(StreamDesignConfig config = {});

  StreamDesign& design() { return design_; }
  maxsim::DfeDevice& dfe() { return dfe_; }

  /// Load stage: three blocking PCIe stream writes (A, B, C).
  void load(std::span<const double> a, std::span<const double> b,
            std::span<const double> c);

  /// One compute function over the first `n` elements, `runs` times.
  /// STREAM byte counting: Copy/Scale move 2 words per element, Sum/Triad
  /// move 3 ("one read and one write for each element copied", Sec. V —
  /// the paper's aggregated read+write throughput).
  StreamResult run(Mode mode, std::int64_t n, int runs = 10, double q = 3.0);

  /// Offload stage: blocking PCIe reads of the three vectors.
  void offload(std::span<double> a, std::span<double> b,
               std::span<double> c);

  /// Theoretical peak of a compute mode at the design clock:
  /// ports_used * lanes * 8 bytes * f. For Copy this is the paper's
  /// 2 x 8 x 8 x 120MHz = 15360 MB/s.
  double theoretical_peak_bytes_per_s(Mode mode) const;

  /// Classic STREAM report for a set of results.
  static TextTable report(const std::vector<StreamResult>& results);

 private:
  void load_vector(Mode mode, const char* stream_name,
                   std::span<const double> data);
  void offload_vector(Mode mode, std::span<double> out);

  StreamDesignConfig config_;
  StreamDesign design_;
  maxsim::DfeDevice dfe_;
};

}  // namespace polymem::stream
