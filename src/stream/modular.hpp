// The MODULAR multi-kernel STREAM-Copy design (paper Sec. III-C).
//
// "Once all kernels were available, we created a modular multikernel
//  design, using a custom manager to connect the different modules. ...
//  we implemented a fused, single-kernel implementation ... and compared
//  the two versions. We found that the modular version consumes twice as
//  many resources, mainly due to the additional inter-kernel
//  communication infrastructure."
//
// This module implements that modular variant: three kernels connected by
// manager streams —
//
//   AddressGenKernel --rd_cmd--> MemoryKernel --rd_data--> ComputeKernel
//        (AGU driver)               (PolyMem)                (copy/scale)
//                                       ^------wr_data-----------'
//
// — so the paper's comparison can be made *functionally*: same
// throughput (the streams only add pipeline depth), twice the modelled
// resources (ResourceModel::estimate_modular).
#pragma once

#include <cstdint>

#include "core/cycle_polymem.hpp"
#include "maxsim/manager.hpp"
#include "stream/design.hpp"

namespace polymem::stream {

class ModularCopyDesign {
 public:
  /// Same configuration vocabulary as the fused design. Supports the
  /// one-read-port kernels (Copy and Scale).
  explicit ModularCopyDesign(StreamDesignConfig config = {});

  maxsim::Manager& manager() { return manager_; }
  const StreamDesignConfig& config() const { return config_; }
  core::CyclePolyMem& polymem();

  /// Arms a Copy (q unused) or Scale over the first n elements:
  /// dst(i) = q * src(i), with Copy moving raw words (q ignored).
  void start(Mode mode, std::int64_t n, double q = 3.0);
  bool done() const { return manager_.all_done(); }

  /// Runs to completion; returns the cycles spent.
  std::uint64_t run(std::uint64_t max_cycles = 100'000'000);

  core::VectorBand band(Vector v) const;

  /// Pipeline-depth overhead vs the fused controller: the number of
  /// extra cycles the inter-kernel streams add to one run.
  static constexpr unsigned kStreamHops = 2;  // rd_data and wr_data

 private:
  class AddressGenKernel;
  class MemoryKernel;
  class ComputeKernel;

  StreamDesignConfig config_;
  maxsim::Manager manager_;
  AddressGenKernel* addr_ = nullptr;  // owned by manager_
  MemoryKernel* mem_ = nullptr;
  ComputeKernel* compute_ = nullptr;
};

}  // namespace polymem::stream
