// The STREAM design's Controller kernel (paper Fig. 9).
//
// "The Controller generates the write and read signals for MAX-PolyMem and
//  selects the correct input for MAX-PolyMem's write port by driving the
//  two MUXs. ... using the DEMUX, the controller selects the right output
//  stream."
//
// The controller runs one *stage* at a time, selected by the host through
// the Mode signal (Load / compute / Offload), exactly as the paper splits
// its measurement. PolyMem is split into three equal row bands holding the
// STREAM vectors A, B and C. The compute stages implement all four STREAM
// kernels (the paper measures Copy; Scale, Sum and Triad are the announced
// "finalize the implementation of STREAM" future work, included here):
//
//   Copy : c(i) = a(i)            1 read port
//   Scale: a(i) = q * b(i)        1 read port, 1 multiply
//   Sum  : a(i) = b(i) + c(i)     2 read ports, 1 add
//   Triad: a(i) = b(i) + q * c(i) 2 read ports, multiply + add
//
// The read latency (14 cycles) is absorbed by tagging each read with its
// element-group index; a retired read triggers the dependent write in the
// same cycle, the feedback path of the paper's design.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/cycle_polymem.hpp"
#include "core/layout.hpp"
#include "maxsim/kernel.hpp"

namespace polymem::runtime {
class ThreadPool;
}

namespace polymem::stream {

enum class Mode : std::uint8_t {
  kIdle,
  kLoadA,
  kLoadB,
  kLoadC,
  kCopy,
  kScale,
  kSum,
  kTriad,
  kOffloadA,
  kOffloadB,
  kOffloadC,
};

const char* mode_name(Mode mode);

/// Which of the three vector bands a mode touches.
enum class Vector : std::uint8_t { kA = 0, kB = 1, kC = 2 };

class StreamController : public maxsim::Kernel {
 public:
  /// The controller owns the PolyMem. `vector_capacity` is the maximum
  /// element count per vector (sets the band layout); in/out streams carry
  /// host data for the Load/Offload stages.
  StreamController(core::PolyMemConfig config, std::int64_t vector_capacity,
                   maxsim::Stream& a_in, maxsim::Stream& b_in,
                   maxsim::Stream& c_in, maxsim::Stream& out);

  core::CyclePolyMem& polymem() { return mem_; }
  const core::PolyMemConfig& config() const { return mem_.config(); }
  std::int64_t vector_capacity() const { return vector_capacity_; }

  /// Host-side Mode signal: arms a stage over the first `n` elements of
  /// the touched vectors. `n` must be a positive multiple of the lane
  /// count and fit the band capacity. `q` is the STREAM scalar.
  void start(Mode mode, std::int64_t n, double q = 3.0);

  /// Kernel interface: one clock cycle of the armed stage.
  void tick() override;
  bool done() const override;

  Mode mode() const { return mode_; }

  /// The band holding a vector (for host-side verification).
  core::VectorBand band(Vector v) const;

  /// Host-side bulk transfers through PolyMem's batched access engine:
  /// one validated batch per band instead of per-cycle streaming. These
  /// bypass the Load/Offload stage timing (use the Mode machinery when
  /// cycle counts matter) and are the fast path for test setup and
  /// host-side verification.
  void preload(Vector v, std::span<const double> data);
  void offload_bulk(Vector v, std::span<double> out);

  /// offload_bulk over the parallel runtime: the band's row batch is
  /// sharded across the pool's workers, each reading on its own replica
  /// port (PolyMem::read_batch_mt). Output is bit-identical to the serial
  /// offload_bulk for every pool size. Host-side only — the simulated
  /// hardware offload stage stays the per-cycle Mode machinery.
  void offload_bulk(Vector v, std::span<double> out,
                    runtime::ThreadPool& pool);

 private:
  void tick_load(maxsim::Stream& in, const core::VectorBand& band);
  void tick_compute();
  void tick_offload(const core::VectorBand& band);

  access::ParallelAccess group_access(const core::VectorBand& band,
                                      std::int64_t group) const;

  core::CyclePolyMem mem_;
  std::int64_t vector_capacity_;
  std::int64_t band_rows_;
  maxsim::Stream* a_in_;
  maxsim::Stream* b_in_;
  maxsim::Stream* c_in_;
  maxsim::Stream* out_;

  Mode mode_ = Mode::kIdle;
  double q_ = 3.0;
  std::int64_t groups_total_ = 0;
  std::int64_t reads_issued_ = 0;   // element groups sent to the read ports
  std::int64_t writes_done_ = 0;    // element groups written back
  std::int64_t pushed_ = 0;         // element groups pushed to `out`
  std::int64_t in_flight_ = 0;      // offload reads not yet pushed
  std::vector<hw::Word> lane_buf_;    // load-stage word gather buffer
  std::vector<hw::Word> result_buf_;  // compute-stage result (reused)
  std::vector<hw::Word> words_buf_;   // preload/offload staging
  std::size_t lane_fill_ = 0;
};

}  // namespace polymem::stream
