#include "stream/out_of_core.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace polymem::stream {

OutOfCoreCopyReport out_of_core_copy(maxsim::LMem& lmem,
                                     core::PolyMem& mem,
                                     const maxsim::LMemMatrix& a,
                                     const maxsim::LMemMatrix& c,
                                     const OutOfCoreOptions& options) {
  POLYMEM_REQUIRE(a.rows == c.rows && a.cols == c.cols,
                  "source and destination shapes differ");
  POLYMEM_REQUIRE(options.block_rows >= 1, "block_rows must be positive");
  const auto& cfg = mem.config();

  // Split the address space: top half caches the source, bottom half the
  // destination, two full-width frames each.
  const std::int64_t half = cfg.height / 2;
  POLYMEM_REQUIRE(half >= 2 * cfg.p,
                  "PolyMem too shallow for two frame regions");
  const std::int64_t tile_rows = half / 2;
  const core::FramePool src_frames(cfg, {0, 0}, half, cfg.width, tile_rows,
                                   cfg.width);
  const core::FramePool dst_frames(cfg, {half, 0}, half, cfg.width,
                                   tile_rows, cfg.width);

  cache::CacheOptions copts;
  copts.eviction = options.eviction;
  copts.write_policy = options.write_policy;
  copts.prefetch_pool = options.prefetch_pool;
  copts.clock_hz = options.clock_hz;
  cache::CachedMatrix src(lmem, mem, a, src_frames, copts);
  // The destination is write-only; prefetching its stale tiles would
  // waste bursts, so the destination cache always loads synchronously.
  cache::CacheOptions dopts = copts;
  dopts.prefetch_pool = nullptr;
  cache::CachedMatrix dst(lmem, mem, c, dst_frames, dopts);

  OutOfCoreCopyReport report;
  report.elements = a.rows * a.cols;

  std::vector<hw::Word> buf;
  for (std::int64_t r = 0; r < a.rows; r += options.block_rows) {
    const std::int64_t n = std::min(options.block_rows, a.rows - r);
    buf.resize(static_cast<std::size_t>(n * a.cols));
    src.read_block(r, 0, n, a.cols, buf);
    dst.write_block(r, 0, n, a.cols, buf);
  }
  dst.flush();

  report.src = src.stats();
  report.dst = dst.stats();

  // Verify straight from LMem: the flushed destination must equal the
  // source bit for bit.
  std::vector<hw::Word> row_a(static_cast<std::size_t>(a.cols));
  std::vector<hw::Word> row_c(row_a.size());
  report.verified = true;
  for (std::int64_t r = 0; r < a.rows && report.verified; ++r) {
    lmem.read(a.word_addr(r, 0), row_a);
    lmem.read(c.word_addr(r, 0), row_c);
    report.verified = row_a == row_c;
  }
  return report;
}

}  // namespace polymem::stream
