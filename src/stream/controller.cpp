#include "stream/controller.hpp"

#include "common/error.hpp"
#include "common/math.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::stream {

using access::ParallelAccess;
using access::PatternKind;

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kIdle: return "Idle";
    case Mode::kLoadA: return "LoadA";
    case Mode::kLoadB: return "LoadB";
    case Mode::kLoadC: return "LoadC";
    case Mode::kCopy: return "Copy";
    case Mode::kScale: return "Scale";
    case Mode::kSum: return "Sum";
    case Mode::kTriad: return "Triad";
    case Mode::kOffloadA: return "OffloadA";
    case Mode::kOffloadB: return "OffloadB";
    case Mode::kOffloadC: return "OffloadC";
  }
  throw InvalidArgument("unknown mode");
}

StreamController::StreamController(core::PolyMemConfig config,
                                   std::int64_t vector_capacity,
                                   maxsim::Stream& a_in, maxsim::Stream& b_in,
                                   maxsim::Stream& c_in, maxsim::Stream& out)
    : maxsim::Kernel("stream-controller"),
      mem_((config.validate(), std::move(config))),
      vector_capacity_(vector_capacity),
      band_rows_(ceil_div(vector_capacity, mem_.config().width)),
      a_in_(&a_in),
      b_in_(&b_in),
      c_in_(&c_in),
      out_(&out) {
  POLYMEM_REQUIRE(vector_capacity >= 1, "vectors must be non-empty");
  POLYMEM_REQUIRE(vector_capacity % mem_.config().lanes() == 0,
                  "vector capacity must be a multiple of the lane count");
  POLYMEM_REQUIRE(mem_.config().width % mem_.config().lanes() == 0,
                  "lane groups must not straddle rows");
  POLYMEM_REQUIRE(3 * band_rows_ <= mem_.config().height,
                  "PolyMem too small for three vector bands of this size");
  lane_buf_.resize(mem_.config().lanes());
  result_buf_.resize(mem_.config().lanes());
}

void StreamController::preload(Vector v, std::span<const double> data) {
  const auto n = static_cast<std::int64_t>(data.size());
  const auto lanes = static_cast<std::int64_t>(mem_.config().lanes());
  const std::int64_t width = mem_.config().width;
  POLYMEM_REQUIRE(n >= 1 && n <= vector_capacity_,
                  "vector exceeds the band capacity");
  POLYMEM_REQUIRE(n % lanes == 0,
                  "vector length must be a multiple of the lane count");
  words_buf_.resize(data.size());
  for (std::size_t k = 0; k < data.size(); ++k)
    words_buf_[k] = core::pack_double(data[k]);
  auto& f = mem_.functional();
  const core::VectorBand b = band(v);
  const std::int64_t full_rows = n / width;
  const std::int64_t tail = n % width;
  if (full_rows > 0)
    f.write_batch({access::PatternKind::kRow,
                   {b.first_row(), 0},
                   {0, lanes},
                   width / lanes,
                   {1, 0},
                   full_rows},
                  std::span<const hw::Word>(words_buf_)
                      .first(static_cast<std::size_t>(full_rows * width)));
  if (tail > 0)
    f.write_batch(core::AccessBatch::strided(access::PatternKind::kRow,
                                             {b.first_row() + full_rows, 0},
                                             {0, lanes}, tail / lanes),
                  std::span<const hw::Word>(words_buf_)
                      .last(static_cast<std::size_t>(tail)));
}

void StreamController::offload_bulk(Vector v, std::span<double> out) {
  const auto n = static_cast<std::int64_t>(out.size());
  const auto lanes = static_cast<std::int64_t>(mem_.config().lanes());
  const std::int64_t width = mem_.config().width;
  POLYMEM_REQUIRE(n >= 1 && n <= vector_capacity_,
                  "vector exceeds the band capacity");
  POLYMEM_REQUIRE(n % lanes == 0,
                  "vector length must be a multiple of the lane count");
  words_buf_.resize(out.size());
  auto& f = mem_.functional();
  const core::VectorBand b = band(v);
  const std::int64_t full_rows = n / width;
  const std::int64_t tail = n % width;
  if (full_rows > 0)
    f.read_batch({access::PatternKind::kRow,
                  {b.first_row(), 0},
                  {0, lanes},
                  width / lanes,
                  {1, 0},
                  full_rows},
                 0,
                 std::span<hw::Word>(words_buf_)
                     .first(static_cast<std::size_t>(full_rows * width)));
  if (tail > 0)
    f.read_batch(core::AccessBatch::strided(access::PatternKind::kRow,
                                            {b.first_row() + full_rows, 0},
                                            {0, lanes}, tail / lanes),
                 0,
                 std::span<hw::Word>(words_buf_)
                     .last(static_cast<std::size_t>(tail)));
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = core::unpack_double(words_buf_[k]);
}

void StreamController::offload_bulk(Vector v, std::span<double> out,
                                    runtime::ThreadPool& pool) {
  const auto n = static_cast<std::int64_t>(out.size());
  const auto lanes = static_cast<std::int64_t>(mem_.config().lanes());
  const std::int64_t width = mem_.config().width;
  POLYMEM_REQUIRE(n >= 1 && n <= vector_capacity_,
                  "vector exceeds the band capacity");
  POLYMEM_REQUIRE(n % lanes == 0,
                  "vector length must be a multiple of the lane count");
  words_buf_.resize(out.size());
  auto& f = mem_.functional();
  const core::VectorBand b = band(v);
  const std::int64_t full_rows = n / width;
  const std::int64_t tail = n % width;
  if (full_rows > 0)
    f.read_batch_mt({access::PatternKind::kRow,
                     {b.first_row(), 0},
                     {0, lanes},
                     width / lanes,
                     {1, 0},
                     full_rows},
                    pool,
                    std::span<hw::Word>(words_buf_)
                        .first(static_cast<std::size_t>(full_rows * width)));
  if (tail > 0)
    f.read_batch_mt(core::AccessBatch::strided(access::PatternKind::kRow,
                                               {b.first_row() + full_rows, 0},
                                               {0, lanes}, tail / lanes),
                    pool,
                    std::span<hw::Word>(words_buf_)
                        .last(static_cast<std::size_t>(tail)));
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = core::unpack_double(words_buf_[k]);
}

core::VectorBand StreamController::band(Vector v) const {
  return core::VectorBand(static_cast<std::int64_t>(v) * band_rows_,
                          vector_capacity_, mem_.config().width);
}

ParallelAccess StreamController::group_access(const core::VectorBand& band,
                                              std::int64_t group) const {
  return {PatternKind::kRow,
          band.coord(group * static_cast<std::int64_t>(mem_.config().lanes()))};
}

void StreamController::start(Mode mode, std::int64_t n, double q) {
  POLYMEM_REQUIRE(mode != Mode::kIdle, "cannot arm the idle mode");
  POLYMEM_REQUIRE(n >= 1 && n <= vector_capacity_,
                  "stage length exceeds the vector capacity");
  POLYMEM_REQUIRE(n % mem_.config().lanes() == 0,
                  "stage length must be a multiple of the lane count");
  if (mode == Mode::kSum || mode == Mode::kTriad) {
    POLYMEM_SUPPORTED(mem_.config().read_ports >= 2,
                      "Sum/Triad need two read ports");
  }
  mode_ = mode;
  q_ = q;
  groups_total_ = n / mem_.config().lanes();
  reads_issued_ = writes_done_ = pushed_ = in_flight_ = 0;
  lane_fill_ = 0;
}

bool StreamController::done() const {
  switch (mode_) {
    case Mode::kIdle:
      return true;
    case Mode::kOffloadA:
    case Mode::kOffloadB:
    case Mode::kOffloadC:
      return pushed_ == groups_total_;
    default:
      return writes_done_ == groups_total_;
  }
}

void StreamController::tick() {
  switch (mode_) {
    case Mode::kIdle:
      return;
    case Mode::kLoadA:
      return tick_load(*a_in_, band(Vector::kA));
    case Mode::kLoadB:
      return tick_load(*b_in_, band(Vector::kB));
    case Mode::kLoadC:
      return tick_load(*c_in_, band(Vector::kC));
    case Mode::kCopy:
    case Mode::kScale:
    case Mode::kSum:
    case Mode::kTriad:
      return tick_compute();
    case Mode::kOffloadA:
      return tick_offload(band(Vector::kA));
    case Mode::kOffloadB:
      return tick_offload(band(Vector::kB));
    case Mode::kOffloadC:
      return tick_offload(band(Vector::kC));
  }
}

void StreamController::tick_load(maxsim::Stream& in,
                                 const core::VectorBand& band) {
  if (writes_done_ == groups_total_) return;
  const unsigned lanes = mem_.config().lanes();
  // Gather one lane group from the host stream (the MUX-selected input).
  while (lane_fill_ < lanes) {
    const auto w = in.pop();
    if (!w) break;
    lane_buf_[lane_fill_++] = *w;
  }
  if (lane_fill_ == lanes) {
    const bool ok = mem_.issue_write(group_access(band, writes_done_),
                                     lane_buf_);
    POLYMEM_ASSERT(ok);
    (void)ok;
    ++writes_done_;
    lane_fill_ = 0;
  }
  mem_.tick();
}

void StreamController::tick_compute() {
  const Vector src0 = (mode_ == Mode::kCopy) ? Vector::kA : Vector::kB;
  const Vector src1 = Vector::kC;  // Sum/Triad second operand
  const Vector dst = (mode_ == Mode::kCopy) ? Vector::kC : Vector::kA;
  const bool two_reads = (mode_ == Mode::kSum || mode_ == Mode::kTriad);
  const unsigned lanes = mem_.config().lanes();

  // 1. A retired read (pair) triggers its dependent write this cycle —
  //    the feedback loop from PolyMem's output to its write port. The
  //    compute result lands in a reused member buffer (Copy forwards the
  //    read data directly): no allocation in the steady-state loop.
  if (auto r0 = mem_.retire_read(0)) {
    std::span<const hw::Word> result = r0->data;
    if (two_reads) {
      const auto r1 = mem_.retire_read(1);
      POLYMEM_ASSERT(r1 && r1->tag == r0->tag);
      for (unsigned k = 0; k < lanes; ++k) {
        const double b = core::unpack_double(r0->data[k]);
        const double c = core::unpack_double(r1->data[k]);
        const double a = (mode_ == Mode::kSum) ? b + c : b + q_ * c;
        result_buf_[k] = core::pack_double(a);
      }
      result = result_buf_;
    } else if (mode_ == Mode::kScale) {
      for (unsigned k = 0; k < lanes; ++k)
        result_buf_[k] =
            core::pack_double(q_ * core::unpack_double(r0->data[k]));
      result = result_buf_;
    }
    const bool ok = mem_.issue_write(
        group_access(band(dst), static_cast<std::int64_t>(r0->tag)), result);
    POLYMEM_ASSERT(ok);
    (void)ok;
    ++writes_done_;
  }

  // 2. Keep the read port(s) busy: one new group per cycle.
  if (reads_issued_ < groups_total_) {
    const auto tag = static_cast<std::uint64_t>(reads_issued_);
    mem_.issue_read(0, group_access(band(src0), reads_issued_), tag);
    if (two_reads)
      mem_.issue_read(1, group_access(band(src1), reads_issued_), tag);
    ++reads_issued_;
  }

  mem_.tick();
}

void StreamController::tick_offload(const core::VectorBand& band) {
  const unsigned lanes = mem_.config().lanes();
  // 1. Retired data goes out through the DEMUX-selected stream; space was
  //    reserved when the read was issued.
  if (auto r = mem_.retire_read(0)) {
    for (unsigned k = 0; k < lanes; ++k) {
      const bool ok = out_->push(r->data[k]);
      POLYMEM_ASSERT(ok);
      (void)ok;
    }
    ++pushed_;
    --in_flight_;
  }
  // 2. Issue the next read only when the output stream can absorb every
  //    in-flight group plus this one (PCIe back-pressure handling).
  const std::int64_t reserved = (in_flight_ + 1) * lanes;
  if (reads_issued_ < groups_total_ &&
      out_->capacity() - out_->size() >= static_cast<std::size_t>(reserved)) {
    mem_.issue_read(0, group_access(band, reads_issued_),
                    static_cast<std::uint64_t>(reads_issued_));
    ++reads_issued_;
    ++in_flight_;
  }
  mem_.tick();
}

}  // namespace polymem::stream
