#include "stream/host.hpp"

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/layout.hpp"

namespace polymem::stream {

namespace {

// STREAM words moved per element: Copy/Scale read 1 + write 1; Sum/Triad
// read 2 + write 1.
unsigned words_per_element(Mode mode) {
  switch (mode) {
    case Mode::kCopy:
    case Mode::kScale:
      return 2;
    case Mode::kSum:
    case Mode::kTriad:
      return 3;
    default:
      throw InvalidArgument("not a compute mode");
  }
}

std::vector<hw::Word> pack(std::span<const double> v) {
  std::vector<hw::Word> out(v.size());
  for (std::size_t k = 0; k < v.size(); ++k) out[k] = core::pack_double(v[k]);
  return out;
}

}  // namespace

double StreamResult::best_rate_bytes_per_s() const {
  return static_cast<double>(bytes_per_run) / seconds.min();
}

double StreamResult::avg_rate_bytes_per_s() const {
  return static_cast<double>(bytes_per_run) / seconds.mean();
}

StreamHost::StreamHost(StreamDesignConfig config)
    : config_(config), design_(config), dfe_(config.clock_mhz) {}

void StreamHost::load_vector(Mode mode, const char* stream_name,
                             std::span<const double> data) {
  design_.controller().start(mode, static_cast<std::int64_t>(data.size()));
  const auto words = pack(data);
  dfe_.write_stream(design_.manager(), stream_name, words);
  POLYMEM_ASSERT(design_.controller().done());
}

void StreamHost::load(std::span<const double> a, std::span<const double> b,
                      std::span<const double> c) {
  POLYMEM_REQUIRE(a.size() == b.size() && b.size() == c.size(),
                  "STREAM vectors must be equally sized");
  load_vector(Mode::kLoadA, StreamDesign::kAIn, a);
  load_vector(Mode::kLoadB, StreamDesign::kBIn, b);
  load_vector(Mode::kLoadC, StreamDesign::kCIn, c);
}

StreamResult StreamHost::run(Mode mode, std::int64_t n, int runs, double q) {
  POLYMEM_REQUIRE(runs >= 1, "need at least one run");
  StreamResult result;
  result.mode = mode;
  result.n = n;
  result.bytes_per_run =
      static_cast<std::uint64_t>(n) * words_per_element(mode) *
      sizeof(hw::Word);
  for (int r = 0; r < runs; ++r) {
    design_.controller().start(mode, n, q);
    const auto timing =
        dfe_.run_action(mode_name(mode), design_.manager());
    result.cycles_per_run = timing.cycles;
    result.seconds.add(timing.seconds);
  }
  return result;
}

void StreamHost::offload_vector(Mode mode, std::span<double> out) {
  design_.controller().start(mode, static_cast<std::int64_t>(out.size()));
  std::vector<hw::Word> words(out.size());
  dfe_.read_stream(design_.manager(), StreamDesign::kOut, words);
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = core::unpack_double(words[k]);
}

void StreamHost::offload(std::span<double> a, std::span<double> b,
                         std::span<double> c) {
  offload_vector(Mode::kOffloadA, a);
  offload_vector(Mode::kOffloadB, b);
  offload_vector(Mode::kOffloadC, c);
}

double StreamHost::theoretical_peak_bytes_per_s(Mode mode) const {
  const double per_port = bandwidth_bytes_per_s(
      design_.controller().config().lanes(), 64, config_.clock_mhz * 1e6);
  return words_per_element(mode) * per_port;
}

TextTable StreamHost::report(const std::vector<StreamResult>& results) {
  TextTable table("STREAM results (MAX-PolyMem)");
  table.set_header({"Function", "BestRate MB/s", "AvgTime s", "MinTime s",
                    "MaxTime s"});
  for (const StreamResult& r : results) {
    table.add_row({mode_name(r.mode),
                   TextTable::num(r.best_rate_bytes_per_s() / MB, 1),
                   TextTable::num(r.seconds.mean(), 9),
                   TextTable::num(r.seconds.min(), 9),
                   TextTable::num(r.seconds.max(), 9)});
  }
  return table;
}

}  // namespace polymem::stream
