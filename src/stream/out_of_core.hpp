// Out-of-core STREAM-Copy (paper Sec. V, beyond the on-chip design).
//
// The paper's STREAM implementation sizes its three vectors to fit the
// on-chip PolyMem. This variant removes that cap: both vectors live in
// LMem as row-major matrices of any size, and PolyMem is split into two
// frame regions — the top half caching the source, the bottom half the
// destination — managed by the software cache (cache::CachedMatrix).
// Copy then streams block rows through the cache; with prefetch enabled
// the next source tile's DRAM burst overlaps the PolyMem copy of the
// current one.
#pragma once

#include <cstdint>

#include "cache/cached_matrix.hpp"

namespace polymem::stream {

struct OutOfCoreOptions {
  cache::EvictionKind eviction = cache::EvictionKind::kLru;
  cache::WritePolicy write_policy = cache::WritePolicy::kWriteBack;
  runtime::ThreadPool* prefetch_pool = nullptr;  ///< null: synchronous loads
  std::int64_t block_rows = 1;  ///< matrix rows moved per block access
  double clock_hz = 120e6;
};

struct OutOfCoreCopyReport {
  std::int64_t elements = 0;
  cache::CacheStats src;  ///< source cache accounting
  cache::CacheStats dst;  ///< destination cache accounting
  bool verified = false;  ///< LMem destination == LMem source afterwards

  /// Modelled wall time: critical-path DRAM seconds of both caches plus
  /// every PolyMem cycle at `clock_hz`.
  double modelled_seconds(double clock_hz) const {
    return src.effective_lmem_seconds() + dst.effective_lmem_seconds() +
           static_cast<double>(src.total_polymem_cycles() +
                               dst.total_polymem_cycles()) /
               clock_hz;
  }
  double bytes() const { return static_cast<double>(elements) * 8.0; }
};

/// STREAM-Copy c = a entirely out of core. `a` and `c` must have the same
/// shape and not overlap in LMem. Flushes the destination cache and
/// verifies c against a in LMem before returning.
OutOfCoreCopyReport out_of_core_copy(maxsim::LMem& lmem, core::PolyMem& mem,
                                     const maxsim::LMemMatrix& a,
                                     const maxsim::LMemMatrix& c,
                                     const OutOfCoreOptions& options = {});

}  // namespace polymem::stream
