#include "stream/design.hpp"

#include "common/math.hpp"

namespace polymem::stream {

core::PolyMemConfig StreamDesignConfig::polymem_config() const {
  core::PolyMemConfig cfg;
  cfg.scheme = scheme;
  cfg.p = p;
  cfg.q = q;
  cfg.read_ports = read_ports;
  cfg.data_width_bits = 64;
  cfg.read_latency = read_latency;
  cfg.width = width;
  const std::int64_t band_rows = ceil_div(vector_capacity, width);
  cfg.height = round_up<std::int64_t>(3 * band_rows, p);
  cfg.validate();
  return cfg;
}

StreamDesign::StreamDesign(StreamDesignConfig config)
    : config_(std::move(config)) {
  maxsim::Stream& a_in = manager_.add_stream(kAIn, config_.stream_depth);
  maxsim::Stream& b_in = manager_.add_stream(kBIn, config_.stream_depth);
  maxsim::Stream& c_in = manager_.add_stream(kCIn, config_.stream_depth);
  maxsim::Stream& out = manager_.add_stream(kOut, config_.stream_depth);
  controller_ = &manager_.add_kernel<StreamController>(
      config_.polymem_config(), config_.vector_capacity, a_in, b_in, c_in,
      out);
}

}  // namespace polymem::stream
