#include "dse/explorer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/polymem.hpp"
#include "runtime/thread_pool.hpp"
#include "verify/affine_prover.hpp"

namespace polymem::dse {

using synth::DsePoint;
using synth::FmaxModel;

double port_bandwidth_bytes_per_s(unsigned lanes, double mhz) {
  return bandwidth_bytes_per_s(lanes, 64, mhz * 1e6);
}

DseExplorer::DseExplorer(const synth::FmaxModel& fmax) : fmax_(&fmax) {}

DseResult DseExplorer::evaluate(const DsePoint& point) const {
  POLYMEM_REQUIRE(
      synth::dse_point_valid(point.size_kb, point.lanes, point.ports),
      "design point is outside the valid DSE grid");
  DseResult r;
  r.point = point;
  const auto config = FmaxModel::make_config(point);
  r.fmax_mhz = fmax_->fmax_mhz(config);
  r.fmax_mhz_paper = synth::paper_fmax_mhz(point);
  r.resources = resources_.estimate(config);
  r.write_bw_bytes_per_s = port_bandwidth_bytes_per_s(point.lanes, r.fmax_mhz);
  r.read_bw_bytes_per_s = point.ports * r.write_bw_bytes_per_s;
  if (r.fmax_mhz_paper) {
    r.write_bw_paper =
        port_bandwidth_bytes_per_s(point.lanes, *r.fmax_mhz_paper);
    r.read_bw_paper = point.ports * *r.write_bw_paper;
  }
  return r;
}

std::vector<DseResult> DseExplorer::explore() const {
  std::vector<DseResult> out;
  out.reserve(synth::paper_table4().size());
  for (const synth::DseColumn& col : synth::table4_columns())
    for (maf::Scheme scheme : maf::kAllSchemes)
      out.push_back(
          evaluate(DsePoint{scheme, col.size_kb, col.lanes, col.ports}));
  return out;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t word) {
  for (int b = 0; b < 8; ++b) {
    h ^= (word >> (8 * b)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t DseExplorer::validate_point(const DsePoint& point,
                                          std::uint64_t seed, bool& ok) {
  const core::PolyMemConfig cfg = FmaxModel::make_config(point);
  core::PolyMem mem(cfg);
  ok = true;

  // Row-capable schemes read back full rows; the rest read aligned p x q
  // rectangles (mirrors tests/integration/dse_validation_test.cpp).
  const bool rows =
      mem.supports(access::PatternKind::kRow) == maf::SupportLevel::kAny;
  const access::PatternKind kind =
      rows ? access::PatternKind::kRow : access::PatternKind::kRect;
  const std::int64_t band_rows = rows ? 1 : cfg.p;
  const std::int64_t col_step = rows ? cfg.lanes() : cfg.q;

  // Sampled anchor rows (p-aligned so the rect variant stays aligned),
  // each owning a band of `band_rows` fully filled rows.
  std::int64_t istep = std::max<std::int64_t>(cfg.p, cfg.height / 48);
  istep -= istep % cfg.p;

  std::vector<core::Word> row(cfg.width);
  std::vector<core::Word> readback(
      static_cast<std::size_t>(cfg.width / col_step) * cfg.lanes());
  auto value = [seed](std::int64_t i, std::int64_t j) {
    return runtime::derive_seed(seed, static_cast<std::uint64_t>(i) << 24 |
                                          static_cast<std::uint64_t>(j));
  };

  std::uint64_t checksum = kFnvOffset;
  for (std::int64_t a = 0; a + band_rows <= cfg.height; a += istep) {
    for (std::int64_t r = 0; r < band_rows; ++r) {
      for (std::int64_t j = 0; j < cfg.width; ++j) row[j] = value(a + r, j);
      mem.fill_rect({a + r, 0}, 1, cfg.width, row);
    }
    const core::AccessBatch batch = core::AccessBatch::strided(
        kind, {a, 0}, {0, col_step}, cfg.width / col_step);
    for (unsigned port = 0; port < cfg.read_ports; ++port) {
      mem.read_batch(batch, port, readback);
      // Canonical lane order: each batch element covers band_rows rows by
      // (lanes / band_rows) columns, row-major within the element.
      std::size_t k = 0;
      const std::int64_t elem_cols = cfg.lanes() / band_rows;
      for (std::int64_t e = 0; e < batch.inner_count; ++e)
        for (std::int64_t r = 0; r < band_rows; ++r)
          for (std::int64_t c = 0; c < elem_cols; ++c) {
            const core::Word got = readback[k++];
            ok = ok && got == value(a + r, e * col_step + c);
            checksum = fnv1a(checksum, got);
          }
    }
  }
  return checksum;
}

DseExplorer::AffineCoverage DseExplorer::affine_coverage(maf::Scheme scheme,
                                                         unsigned p,
                                                         unsigned q) {
  AffineCoverage cov;
  const maf::Maf maf(scheme, p, q);
  const verify::SymbolicMaf sym = verify::SymbolicMaf::of(maf);
  for (const verify::AffinePattern& pattern :
       verify::canonical_affine_suite(p, q)) {
    ++cov.total;
    switch (verify::prove_affine_support(sym, pattern)) {
      case maf::SupportLevel::kAny:
        ++cov.any;
        ++cov.served;
        break;
      case maf::SupportLevel::kAligned:
        ++cov.served;
        break;
      case maf::SupportLevel::kNone:
        break;
    }
  }
  return cov;
}

std::vector<DseResult> DseExplorer::sweep(const SweepOptions& opts) const {
  std::vector<DsePoint> points;
  points.reserve(synth::paper_table4().size());
  for (const synth::DseColumn& col : synth::table4_columns())
    for (maf::Scheme scheme : maf::kAllSchemes)
      points.push_back(DsePoint{scheme, col.size_kb, col.lanes, col.ports});

  const unsigned participants =
      opts.threads == 0 ? runtime::ThreadPool::hardware_threads()
                        : opts.threads;
  // Pre-resolve every lazily-initialised shared singleton the evaluation
  // path touches (fitted model, support-probe oracle cache) so worker
  // threads only read them.
  (void)fmax_->params();

  std::vector<DseResult> results(points.size());
  runtime::ThreadPool pool(participants - 1);
  runtime::parallel_for(
      pool, 0, static_cast<std::int64_t>(points.size()),
      [&](std::int64_t i, unsigned) {
        DseResult r = evaluate(points[i]);
        if (opts.validate) {
          r.validated = true;
          r.validation_checksum = validate_point(
              points[i], runtime::derive_seed(opts.seed, i), r.validation_ok);
        }
        if (opts.score_affine) {
          const auto cfg = FmaxModel::make_config(points[i]);
          const AffineCoverage cov =
              affine_coverage(points[i].scheme, cfg.p, cfg.q);
          r.affine_served = cov.served;
          r.affine_any = cov.any;
          r.affine_total = cov.total;
        }
        results[i] = std::move(r);
      });
  return results;
}

DseResult DseExplorer::best_read_bandwidth() const {
  std::optional<DseResult> best;
  for (const DseResult& r : explore())
    if (!best || r.read_bw_bytes_per_s > best->read_bw_bytes_per_s) best = r;
  return *best;
}

DseResult DseExplorer::best_write_bandwidth() const {
  std::optional<DseResult> best;
  for (const DseResult& r : explore())
    if (!best || r.write_bw_bytes_per_s > best->write_bw_bytes_per_s) best = r;
  return *best;
}

std::vector<DseResult> DseExplorer::pareto_read_bw_vs_bram() const {
  std::vector<DseResult> all = explore();
  std::vector<DseResult> frontier;
  for (const DseResult& candidate : all) {
    bool dominated = false;
    for (const DseResult& other : all) {
      const bool better_or_equal =
          other.read_bw_bytes_per_s >= candidate.read_bw_bytes_per_s &&
          other.resources.bram36 <= candidate.resources.bram36;
      const bool strictly_better =
          other.read_bw_bytes_per_s > candidate.read_bw_bytes_per_s ||
          other.resources.bram36 < candidate.resources.bram36;
      if (better_or_equal && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const DseResult& a, const DseResult& b) {
              if (a.resources.bram36 != b.resources.bram36)
                return a.resources.bram36 < b.resources.bram36;
              return a.read_bw_bytes_per_s > b.read_bw_bytes_per_s;
            });
  return frontier;
}

}  // namespace polymem::dse
