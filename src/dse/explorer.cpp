#include "dse/explorer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::dse {

using synth::DsePoint;
using synth::FmaxModel;

double port_bandwidth_bytes_per_s(unsigned lanes, double mhz) {
  return bandwidth_bytes_per_s(lanes, 64, mhz * 1e6);
}

DseExplorer::DseExplorer(const synth::FmaxModel& fmax) : fmax_(&fmax) {}

DseResult DseExplorer::evaluate(const DsePoint& point) const {
  POLYMEM_REQUIRE(
      synth::dse_point_valid(point.size_kb, point.lanes, point.ports),
      "design point is outside the valid DSE grid");
  DseResult r;
  r.point = point;
  const auto config = FmaxModel::make_config(point);
  r.fmax_mhz = fmax_->fmax_mhz(config);
  r.fmax_mhz_paper = synth::paper_fmax_mhz(point);
  r.resources = resources_.estimate(config);
  r.write_bw_bytes_per_s = port_bandwidth_bytes_per_s(point.lanes, r.fmax_mhz);
  r.read_bw_bytes_per_s = point.ports * r.write_bw_bytes_per_s;
  if (r.fmax_mhz_paper) {
    r.write_bw_paper =
        port_bandwidth_bytes_per_s(point.lanes, *r.fmax_mhz_paper);
    r.read_bw_paper = point.ports * *r.write_bw_paper;
  }
  return r;
}

std::vector<DseResult> DseExplorer::explore() const {
  std::vector<DseResult> out;
  out.reserve(synth::paper_table4().size());
  for (const synth::DseColumn& col : synth::table4_columns())
    for (maf::Scheme scheme : maf::kAllSchemes)
      out.push_back(
          evaluate(DsePoint{scheme, col.size_kb, col.lanes, col.ports}));
  return out;
}

DseResult DseExplorer::best_read_bandwidth() const {
  std::optional<DseResult> best;
  for (const DseResult& r : explore())
    if (!best || r.read_bw_bytes_per_s > best->read_bw_bytes_per_s) best = r;
  return *best;
}

DseResult DseExplorer::best_write_bandwidth() const {
  std::optional<DseResult> best;
  for (const DseResult& r : explore())
    if (!best || r.write_bw_bytes_per_s > best->write_bw_bytes_per_s) best = r;
  return *best;
}

std::vector<DseResult> DseExplorer::pareto_read_bw_vs_bram() const {
  std::vector<DseResult> all = explore();
  std::vector<DseResult> frontier;
  for (const DseResult& candidate : all) {
    bool dominated = false;
    for (const DseResult& other : all) {
      const bool better_or_equal =
          other.read_bw_bytes_per_s >= candidate.read_bw_bytes_per_s &&
          other.resources.bram36 <= candidate.resources.bram36;
      const bool strictly_better =
          other.read_bw_bytes_per_s > candidate.read_bw_bytes_per_s ||
          other.resources.bram36 < candidate.resources.bram36;
      if (better_or_equal && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const DseResult& a, const DseResult& b) {
              if (a.resources.bram36 != b.resources.bram36)
                return a.resources.bram36 < b.resources.bram36;
              return a.read_bw_bytes_per_s > b.read_bw_bytes_per_s;
            });
  return frontier;
}

}  // namespace polymem::dse
