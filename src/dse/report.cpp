#include "dse/report.hpp"

#include <filesystem>

#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::dse {

using synth::DseColumn;
using synth::DsePoint;

std::string column_label(const DseColumn& column) {
  return std::to_string(column.size_kb) + "," + std::to_string(column.lanes) +
         "," + std::to_string(column.ports);
}

namespace {

// Indexes results by (scheme, column) for table layout.
const DseResult& find_result(const std::vector<DseResult>& results,
                             maf::Scheme scheme, const DseColumn& col) {
  for (const DseResult& r : results) {
    if (r.point.scheme == scheme && r.point.size_kb == col.size_kb &&
        r.point.lanes == col.lanes && r.point.ports == col.ports)
      return r;
  }
  throw InvalidArgument("DSE results do not cover the full grid");
}

TextTable scheme_by_column(
    const std::vector<DseResult>& results, const std::string& title,
    const std::function<std::string(const DseResult&)>& cell) {
  TextTable table(title);
  std::vector<std::string> header = {"Scheme"};
  for (const DseColumn& col : synth::table4_columns())
    header.push_back(column_label(col));
  table.set_header(std::move(header));
  for (maf::Scheme scheme : maf::kAllSchemes) {
    std::vector<std::string> row = {maf::scheme_name(scheme)};
    for (const DseColumn& col : synth::table4_columns())
      row.push_back(cell(find_result(results, scheme, col)));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

TextTable table4_model(const std::vector<DseResult>& results) {
  return scheme_by_column(
      results,
      "Table IV (model): MAX-PolyMem maximum clock frequencies [MHz]",
      [](const DseResult& r) { return TextTable::num(r.fmax_mhz, 0); });
}

TextTable table4_paper() {
  DseExplorer explorer;
  return scheme_by_column(
      explorer.explore(),
      "Table IV (paper): MAX-PolyMem maximum clock frequencies [MHz]",
      [](const DseResult& r) { return TextTable::num(*r.fmax_mhz_paper, 0); });
}

TextTable table4_error(const std::vector<DseResult>& results) {
  TextTable table("Table IV model vs paper: mean relative error");
  table.set_header({"Scheme", "mean |err| %", "max |err| %"});
  double total_sum = 0;
  int total_n = 0;
  double total_max = 0;
  for (maf::Scheme scheme : maf::kAllSchemes) {
    double sum = 0, mx = 0;
    int n = 0;
    for (const DseResult& r : results) {
      if (r.point.scheme != scheme || !r.fmax_mhz_paper) continue;
      const double err =
          std::abs(r.fmax_mhz - *r.fmax_mhz_paper) / *r.fmax_mhz_paper;
      sum += err;
      mx = std::max(mx, err);
      ++n;
    }
    POLYMEM_REQUIRE(n > 0, "no paper reference cells for scheme");
    table.add_row({maf::scheme_name(scheme), TextTable::num(100 * sum / n, 1),
                   TextTable::num(100 * mx, 1)});
    total_sum += sum;
    total_n += n;
    total_max = std::max(total_max, mx);
  }
  table.add_row({"ALL", TextTable::num(100 * total_sum / total_n, 1),
                 TextTable::num(100 * total_max, 1)});
  return table;
}

TextTable figure_series(const std::vector<DseResult>& results,
                        const std::string& title,
                        const std::function<double(const DseResult&)>& metric,
                        int precision) {
  TextTable table(title);
  std::vector<std::string> header = {"Capacity,Lanes,Ports"};
  for (maf::Scheme scheme : maf::kAllSchemes)
    header.emplace_back(maf::scheme_name(scheme));
  table.set_header(std::move(header));
  for (const DseColumn& col : synth::table4_columns()) {
    std::vector<std::string> row = {column_label(col)};
    for (maf::Scheme scheme : maf::kAllSchemes)
      row.push_back(
          TextTable::num(metric(find_result(results, scheme, col)),
                         precision));
    table.add_row(std::move(row));
  }
  return table;
}

TextTable fig4_write_bandwidth(const std::vector<DseResult>& results) {
  return figure_series(
      results, "Fig. 4: Write bandwidth per port (GB/s)",
      [](const DseResult& r) { return r.write_bw_bytes_per_s / GB; });
}

TextTable fig5_read_bandwidth(const std::vector<DseResult>& results) {
  return figure_series(
      results, "Fig. 5: Read bandwidth, aggregated over read ports (GB/s)",
      [](const DseResult& r) { return r.read_bw_bytes_per_s / GB; });
}

TextTable fig6_logic_utilisation(const std::vector<DseResult>& results) {
  return figure_series(
      results, "Fig. 6: Logic utilisation (%)",
      [](const DseResult& r) { return r.resources.logic_pct; });
}

TextTable fig7_lut_utilisation(const std::vector<DseResult>& results) {
  return figure_series(
      results, "Fig. 7: LUT utilisation (%)",
      [](const DseResult& r) { return r.resources.lut_pct; });
}

TextTable fig8_bram_utilisation(const std::vector<DseResult>& results) {
  return figure_series(
      results, "Fig. 8: BRAM utilisation (%)",
      [](const DseResult& r) { return r.resources.bram_pct; });
}

std::vector<std::string> write_all_csv(
    const std::string& directory, const std::vector<DseResult>& results) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  const std::vector<std::pair<std::string, TextTable>> artefacts = {
      {"table4_model.csv", table4_model(results)},
      {"table4_paper.csv", table4_paper()},
      {"table4_error.csv", table4_error(results)},
      {"fig4_write_bw_gbs.csv", fig4_write_bandwidth(results)},
      {"fig5_read_bw_gbs.csv", fig5_read_bandwidth(results)},
      {"fig6_logic_pct.csv", fig6_logic_utilisation(results)},
      {"fig7_lut_pct.csv", fig7_lut_utilisation(results)},
      {"fig8_bram_pct.csv", fig8_bram_utilisation(results)},
  };
  std::vector<std::string> written;
  for (const auto& [name, table] : artefacts) {
    const std::string path = (fs::path(directory) / name).string();
    table.save_csv(path);
    written.push_back(path);
  }
  return written;
}

}  // namespace polymem::dse
