// Table/figure emission for the DSE (paper Table IV, Figs. 4-8).
//
// Each function renders exactly the rows/series the paper reports: one
// line per scheme across the 18 (capacity, lanes, ports) columns. Where
// the paper published numbers (Table IV and the bandwidths derived from
// it), a comparison table with per-cell relative error is available.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "dse/explorer.hpp"

namespace polymem::dse {

/// "512,8,1" — the x-axis label format of the paper's figures
/// (Capacity KB, Number of Lanes, Number of Read Ports).
std::string column_label(const synth::DseColumn& column);

/// Table IV layout: scheme rows x 18 design-point columns of the model's
/// Fmax (MHz).
TextTable table4_model(const std::vector<DseResult>& results);

/// Table IV from the paper (reference), same layout.
TextTable table4_paper();

/// Model-vs-paper comparison: per-scheme mean relative error and the
/// overall figure.
TextTable table4_error(const std::vector<DseResult>& results);

/// Figure series: one row per column label, one column per scheme.
/// `metric` extracts the plotted value from a DseResult.
TextTable figure_series(
    const std::vector<DseResult>& results, const std::string& title,
    const std::function<double(const DseResult&)>& metric,
    int precision = 2);

/// Pre-wired metrics for the paper's figures.
TextTable fig4_write_bandwidth(const std::vector<DseResult>& results);
TextTable fig5_read_bandwidth(const std::vector<DseResult>& results);
TextTable fig6_logic_utilisation(const std::vector<DseResult>& results);
TextTable fig7_lut_utilisation(const std::vector<DseResult>& results);
TextTable fig8_bram_utilisation(const std::vector<DseResult>& results);

/// Writes every table/figure of the DSE (Table IV model + paper + error,
/// Figs. 4-8) as CSV files into `directory` (created if missing).
/// Returns the file paths written.
std::vector<std::string> write_all_csv(const std::string& directory,
                                       const std::vector<DseResult>& results);

}  // namespace polymem::dse
