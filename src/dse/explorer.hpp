// Design Space Exploration driver (paper Sec. IV, Table III).
//
// Sweeps the paper's DSE grid — capacity {512KB..4MB} x lanes {8, 16} x
// read ports {1..4}, restricted by the validity rule — over all five
// schemes, and computes for each point the model frequency, resource
// estimate and bandwidths, side by side with the paper's published
// values where available.
#pragma once

#include <optional>
#include <vector>

#include "synth/calibration.hpp"
#include "synth/fmax_model.hpp"
#include "synth/resource_model.hpp"

namespace polymem::dse {

struct DseResult {
  synth::DsePoint point;
  double fmax_mhz = 0;                      ///< model prediction
  std::optional<double> fmax_mhz_paper;     ///< paper Table IV, if present
  synth::ResourceEstimate resources;        ///< model estimate
  double write_bw_bytes_per_s = 0;          ///< per-port (Fig. 4)
  double read_bw_bytes_per_s = 0;           ///< aggregated over ports (Fig. 5)
  std::optional<double> write_bw_paper;     ///< derived from Table IV
  std::optional<double> read_bw_paper;
};

/// Per-port bandwidth at a clock: lanes x 8 bytes x f (64-bit data).
double port_bandwidth_bytes_per_s(unsigned lanes, double mhz);

class DseExplorer {
 public:
  explicit DseExplorer(
      const synth::FmaxModel& fmax = synth::FmaxModel::paper_calibrated());

  /// All 90 valid design points (5 schemes x 18 columns), in Table IV
  /// order (columns major, then schemes).
  std::vector<DseResult> explore() const;

  /// One design point.
  DseResult evaluate(const synth::DsePoint& point) const;

  /// The point with the highest aggregated read bandwidth — the paper's
  /// headline "512KB ... 4 read ports ... around 32GB/s" claim.
  DseResult best_read_bandwidth() const;

  /// The point with the highest per-port (write) bandwidth.
  DseResult best_write_bandwidth() const;

  /// The Pareto frontier of the grid under (maximise aggregated read
  /// bandwidth, minimise BRAM blocks): the configurations a designer
  /// would actually choose between — the Sec. III-A "best configuration"
  /// trade-off applied to the whole DSE. Sorted by ascending BRAM.
  std::vector<DseResult> pareto_read_bw_vs_bram() const;

 private:
  const synth::FmaxModel* fmax_;
  synth::ResourceModel resources_;
};

}  // namespace polymem::dse
