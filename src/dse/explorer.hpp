// Design Space Exploration driver (paper Sec. IV, Table III).
//
// Sweeps the paper's DSE grid — capacity {512KB..4MB} x lanes {8, 16} x
// read ports {1..4}, restricted by the validity rule — over all five
// schemes, and computes for each point the model frequency, resource
// estimate and bandwidths, side by side with the paper's published
// values where available.
//
// Grid points are fully independent, so sweep() distributes them over the
// parallel runtime (runtime/thread_pool.hpp) when asked: results land in
// a pre-sized slot per point and the per-point validation RNG is derived
// from the point index, so every thread count produces the identical
// result vector (the determinism contract the dse tests pin down).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "synth/calibration.hpp"
#include "synth/fmax_model.hpp"
#include "synth/resource_model.hpp"

namespace polymem::runtime {
class ThreadPool;
}

namespace polymem::dse {

struct DseResult {
  synth::DsePoint point;
  double fmax_mhz = 0;                      ///< model prediction
  std::optional<double> fmax_mhz_paper;     ///< paper Table IV, if present
  synth::ResourceEstimate resources;        ///< model estimate
  double write_bw_bytes_per_s = 0;          ///< per-port (Fig. 4)
  double read_bw_bytes_per_s = 0;           ///< aggregated over ports (Fig. 5)
  std::optional<double> write_bw_paper;     ///< derived from Table IV
  std::optional<double> read_bw_paper;
  // Filled by sweep() with SweepOptions::validate: the paper's functional
  // validation cycle (Sec. IV-A host fill + parallel readback) ran on the
  // simulated memory, passed, and hashed its readback data to `checksum`
  // (FNV-1a, deterministic per (seed, point index)).
  bool validated = false;
  bool validation_ok = false;
  std::uint64_t validation_checksum = 0;
  // Filled by sweep() with SweepOptions::score_affine: how polymorphic
  // the point's scheme really is, measured by the symbolic prover
  // (verify/affine_prover.hpp) over the canonical affine suite.
  // `affine_served` counts patterns proven conflict-free at least for
  // aligned anchors, `affine_any` those proven for every anchor;
  // `affine_total` is the suite size.
  unsigned affine_served = 0;
  unsigned affine_any = 0;
  unsigned affine_total = 0;
};

/// sweep() configuration.
struct SweepOptions {
  /// Total participating threads: 1 = serial (the reference path),
  /// 0 = host hardware concurrency, N = caller + N-1 pool workers.
  unsigned threads = 1;
  /// Also run the functional validation cycle per point (builds the
  /// point's PolyMem, host-fills it, reads back on every port) — the
  /// expensive, embarrassingly parallel part of the sweep.
  bool validate = false;
  /// Base seed of the per-point fill data (runtime::derive_seed keys each
  /// point off it, so the checksum is thread-count independent).
  std::uint64_t seed = 2018;
  /// Also score each point by provably-served affine patterns (symbolic
  /// prover over the canonical suite; fills DseResult::affine_*). Cheap:
  /// purely algebraic, no lattice sweeps.
  bool score_affine = false;
};

/// Per-port bandwidth at a clock: lanes x 8 bytes x f (64-bit data).
double port_bandwidth_bytes_per_s(unsigned lanes, double mhz);

class DseExplorer {
 public:
  explicit DseExplorer(
      const synth::FmaxModel& fmax = synth::FmaxModel::paper_calibrated());

  /// All 90 valid design points (5 schemes x 18 columns), in Table IV
  /// order (columns major, then schemes).
  std::vector<DseResult> explore() const;

  /// explore() with explicit execution options: the same 90 points in the
  /// same order, evaluated across `opts.threads` threads and optionally
  /// functionally validated. Bit-identical output for any thread count.
  std::vector<DseResult> sweep(const SweepOptions& opts) const;

  /// One design point.
  DseResult evaluate(const synth::DsePoint& point) const;

  /// The paper's Sec. IV-A validation cycle for one design point: build
  /// the PolyMem, host-fill sampled row bands with seed-derived values,
  /// read them back through the parallel access engine on every read
  /// port, and check every word. Returns the FNV-1a hash of the readback
  /// stream; `ok` reports the comparison.
  static std::uint64_t validate_point(const synth::DsePoint& point,
                                      std::uint64_t seed, bool& ok);

  /// Symbolic polymorphism score of one (scheme, p, q): proves every
  /// pattern of verify::canonical_affine_suite and returns how many are
  /// served (>= aligned) and how many at any anchor, as
  /// (affine_served, affine_any, affine_total). Used by sweep() with
  /// SweepOptions::score_affine; exposed for direct scheme comparisons.
  struct AffineCoverage {
    unsigned served = 0;
    unsigned any = 0;
    unsigned total = 0;
  };
  static AffineCoverage affine_coverage(maf::Scheme scheme, unsigned p,
                                        unsigned q);

  /// The point with the highest aggregated read bandwidth — the paper's
  /// headline "512KB ... 4 read ports ... around 32GB/s" claim.
  DseResult best_read_bandwidth() const;

  /// The point with the highest per-port (write) bandwidth.
  DseResult best_write_bandwidth() const;

  /// The Pareto frontier of the grid under (maximise aggregated read
  /// bandwidth, minimise BRAM blocks): the configurations a designer
  /// would actually choose between — the Sec. III-A "best configuration"
  /// trade-off applied to the whole DSE. Sorted by ascending BRAM.
  std::vector<DseResult> pareto_read_bw_vs_bram() const;

 private:
  const synth::FmaxModel* fmax_;
  synth::ResourceModel resources_;
};

}  // namespace polymem::dse
