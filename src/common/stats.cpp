#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace polymem {

double CacheCounters::hit_rate() const {
  const std::uint64_t accesses = hits + misses;
  return accesses == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(accesses);
}

CacheCounters& CacheCounters::operator+=(const CacheCounters& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  writebacks += other.writebacks;
  prefetch_issued += other.prefetch_issued;
  prefetch_useful += other.prefetch_useful;
  prefetch_dropped += other.prefetch_dropped;
  return *this;
}

void RunningStats::add(double x) {
  ++n_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_abs_error(const std::vector<double>& a,
                      const std::vector<double>& b) {
  POLYMEM_REQUIRE(a.size() == b.size() && !a.empty(),
                  "series must be non-empty and equally sized");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double mean_abs_rel_error(const std::vector<double>& model,
                          const std::vector<double>& reference) {
  POLYMEM_REQUIRE(model.size() == reference.size() && !model.empty(),
                  "series must be non-empty and equally sized");
  double sum = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    POLYMEM_REQUIRE(reference[i] != 0.0, "reference value must be non-zero");
    sum += std::abs(model[i] - reference[i]) / std::abs(reference[i]);
  }
  return sum / static_cast<double>(model.size());
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  POLYMEM_REQUIRE(a.size() == b.size(), "series must be equally sized");
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  if (sa.stddev() == 0.0 || sb.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  cov /= static_cast<double>(n);
  return cov / (sa.stddev() * sb.stddev());
}

}  // namespace polymem
