#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace polymem {

double CacheCounters::hit_rate() const {
  const std::uint64_t accesses = hits + misses;
  return accesses == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(accesses);
}

CacheCounters& CacheCounters::operator+=(const CacheCounters& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  writebacks += other.writebacks;
  prefetch_issued += other.prefetch_issued;
  prefetch_useful += other.prefetch_useful;
  prefetch_dropped += other.prefetch_dropped;
  flush_runs += other.flush_runs;
  relayouts += other.relayouts;
  return *this;
}

void RunningStats::add(double x) {
  ++n_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), state_(seed) {
  POLYMEM_REQUIRE(capacity > 0, "reservoir capacity must be positive");
  samples_.reserve(capacity);
}

std::uint64_t Reservoir::next_random() {
  // splitmix64: the same constants as runtime::derive_seed, kept local so
  // common/ stays dependency-free.
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void Reservoir::add(double x) {
  ++count_;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // Replace a random slot with probability capacity/count: slot index
  // uniform in [0, count); keep only when it lands inside the reservoir.
  const std::uint64_t slot = next_random() % count_;
  if (slot < capacity_) samples_[static_cast<std::size_t>(slot)] = x;
}

double Reservoir::percentile(double pct) const {
  POLYMEM_REQUIRE(pct >= 0.0 && pct <= 100.0,
                  "percentile must lie in [0, 100]");
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Reservoir::Summary Reservoir::summary() const {
  Summary s;
  s.count = count_;
  if (samples_.empty()) return s;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double pct) {
    const double rank =
        pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  };
  s.min = sorted.front();
  s.p50 = at(50.0);
  s.p95 = at(95.0);
  s.p99 = at(99.0);
  s.max = sorted.back();
  return s;
}

double mean_abs_error(const std::vector<double>& a,
                      const std::vector<double>& b) {
  POLYMEM_REQUIRE(a.size() == b.size() && !a.empty(),
                  "series must be non-empty and equally sized");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double mean_abs_rel_error(const std::vector<double>& model,
                          const std::vector<double>& reference) {
  POLYMEM_REQUIRE(model.size() == reference.size() && !model.empty(),
                  "series must be non-empty and equally sized");
  double sum = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    POLYMEM_REQUIRE(reference[i] != 0.0, "reference value must be non-zero");
    sum += std::abs(model[i] - reference[i]) / std::abs(reference[i]);
  }
  return sum / static_cast<double>(model.size());
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  POLYMEM_REQUIRE(a.size() == b.size(), "series must be equally sized");
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  if (sa.stddev() == 0.0 || sb.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  cov /= static_cast<double>(n);
  return cov / (sa.stddev() * sb.stddev());
}

}  // namespace polymem
