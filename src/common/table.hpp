// Plain-text table and CSV emission for the benchmark harness.
//
// Every table/figure-reproducing binary prints an aligned ASCII table (the
// rows/series the paper reports) and can also dump CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace polymem {

/// A simple column-aligned text table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; its width must match the header (when present)
  /// or the first row otherwise.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells with `printf`-style precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string num(int v);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  /// Renders as CSV (header first when set).
  void print_csv(std::ostream& os) const;

  /// Writes the CSV rendering to a file; throws InvalidArgument when the
  /// path is not writable.
  void save_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace polymem
