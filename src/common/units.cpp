#include "common/units.hpp"

#include <cstdio>

namespace polymem {

std::string format_capacity(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= MiB && bytes % MiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluMB",
                  static_cast<unsigned long long>(bytes / MiB));
  } else if (bytes >= KiB && bytes % KiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluKB",
                  static_cast<unsigned long long>(bytes / KiB));
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_s, bool decimal_gb) {
  char buf[48];
  if (decimal_gb) {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_s / GB);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f MB/s", bytes_per_s / MB);
  }
  return buf;
}

}  // namespace polymem
