// Byte-size and bandwidth units.
//
// The paper reports capacities in binary KB/MB (512KB..4096KB of BRAM) and
// bandwidths in MB/s and GB/s derived from `lanes * width * f_clock`, where
// MB/s follows the STREAM convention of 1e6 bytes/s.
#pragma once

#include <cstdint>
#include <string>

namespace polymem {

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;

/// STREAM-style decimal megabyte (the STREAM benchmark reports MB/s = 1e6 B/s).
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

/// Bandwidth in bytes/second given a word width, lane count and clock.
constexpr double bandwidth_bytes_per_s(unsigned lanes, unsigned width_bits,
                                       double clock_hz) {
  return static_cast<double>(lanes) * (width_bits / 8.0) * clock_hz;
}

/// "512KB", "2MB", ... for binary capacities; used in table headers.
std::string format_capacity(std::uint64_t bytes);

/// "15301.2 MB/s" or "32.1 GB/s"; `decimal_gb` picks the GB/s form.
std::string format_bandwidth(double bytes_per_s, bool decimal_gb = false);

}  // namespace polymem
