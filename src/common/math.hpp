// Small integer-math helpers used across the library.
//
// Bank-assignment math (module assignment functions) needs well-defined
// floored division/modulo for possibly-negative coordinates (secondary
// diagonals walk left), which C++ `/` and `%` do not provide.
#pragma once

#include <cstdint>
#include <type_traits>

namespace polymem {

/// Floored division: rounds towards negative infinity (Python's `//`).
template <typename T>
  requires std::is_signed_v<T>
constexpr T floordiv(T a, T b) {
  T quot = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --quot;
  return quot;
}

/// Floored modulo: result has the sign of `b` (non-negative for b > 0).
template <typename T>
  requires std::is_signed_v<T>
constexpr T floormod(T a, T b) {
  T rem = a % b;
  if (rem != 0 && ((rem < 0) != (b < 0))) rem += b;
  return rem;
}

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `b`.
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr unsigned log2_floor(std::uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr unsigned log2_ceil(std::uint64_t x) {
  return is_pow2(x) ? log2_floor(x) : log2_floor(x) + 1;
}

}  // namespace polymem
