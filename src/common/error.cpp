#include "common/error.hpp"

#include <sstream>

namespace polymem::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [failed: " << expr << " at " << file << ':'
     << line << ']';
  return os.str();
}
}  // namespace

void throw_invalid(const char* expr, const char* file, int line,
                   const std::string& msg) {
  throw InvalidArgument(format("invalid argument", expr, file, line, msg));
}

void throw_unsupported(const char* expr, const char* file, int line,
                       const std::string& msg) {
  throw Unsupported(format("unsupported", expr, file, line, msg));
}

}  // namespace polymem::detail
