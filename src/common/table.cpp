#include "common/table.hpp"

#include <fstream>

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace polymem {

void TextTable::set_header(std::vector<std::string> header) {
  POLYMEM_REQUIRE(rows_.empty(), "header must be set before rows");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    POLYMEM_REQUIRE(row.size() == header_.size(),
                    "row width must match header");
  } else if (!rows_.empty()) {
    POLYMEM_REQUIRE(row.size() == rows_.front().size(),
                    "row width must match previous rows");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::uint64_t v) {
  return std::to_string(v);
}

std::string TextTable::num(std::int64_t v) { return std::to_string(v); }

std::string TextTable::num(int v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width;
  auto account = [&width](const std::vector<std::string>& row) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& row : rows_) account(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
      total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 < row.size() ? "," : "");
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

void TextTable::save_csv(const std::string& path) const {
  std::ofstream out(path);
  POLYMEM_REQUIRE(out.good(), "cannot write CSV file: " + path);
  print_csv(out);
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  table.print(os);
  return os;
}

}  // namespace polymem
