// Error handling for the PolyMem library.
//
// The library reports contract violations and unsupported configurations by
// throwing exceptions derived from `polymem::Error`. Internal invariants that
// can only fail through a library bug use POLYMEM_ASSERT, which is compiled
// out in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace polymem {

/// Base class of every exception thrown by the PolyMem library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition
/// (bad configuration, out-of-range coordinates, wrong vector length, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a request is well-formed but the configuration cannot serve
/// it (e.g. a pattern the selected scheme does not support conflict-free,
/// or a ReTr geometry with no known skewing function).
class Unsupported : public Error {
 public:
  explicit Unsupported(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid(const char* expr, const char* file, int line,
                                const std::string& msg);
[[noreturn]] void throw_unsupported(const char* expr, const char* file,
                                    int line, const std::string& msg);
}  // namespace detail

}  // namespace polymem

/// Precondition check: throws polymem::InvalidArgument when `cond` is false.
/// Always active (also in release builds): these guard the public API.
#define POLYMEM_REQUIRE(cond, msg)                                        \
  do {                                                                    \
    if (!(cond))                                                          \
      ::polymem::detail::throw_invalid(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Capability check: throws polymem::Unsupported when `cond` is false.
#define POLYMEM_SUPPORTED(cond, msg)                                          \
  do {                                                                        \
    if (!(cond))                                                              \
      ::polymem::detail::throw_unsupported(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant; aborts in debug builds, no-op with NDEBUG.
#ifdef NDEBUG
#define POLYMEM_ASSERT(cond) ((void)0)
#else
#include <cassert>
#define POLYMEM_ASSERT(cond) assert(cond)
#endif
