#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace polymem {

namespace {

std::string trim(const std::string& s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto begin = std::find_if_not(s.begin(), s.end(), is_space);
  auto end = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
  return (begin < end) ? std::string(begin, end) : std::string{};
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    POLYMEM_REQUIRE(eq != std::string::npos,
                    "config line " + std::to_string(lineno) +
                        " is not of the form key = value: '" + line + "'");
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    POLYMEM_REQUIRE(!key.empty(), "config line " + std::to_string(lineno) +
                                      " has an empty key");
    cfg.kv_[key] = value;
  }
  return cfg;
}

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  POLYMEM_REQUIRE(in.good(), "cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool ConfigFile::has(const std::string& key) const {
  return kv_.count(key) != 0;
}

std::string ConfigFile::get_string(const std::string& key) const {
  auto it = kv_.find(key);
  POLYMEM_REQUIRE(it != kv_.end(), "missing config key: " + key);
  return it->second;
}

std::int64_t ConfigFile::get_int(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    std::size_t pos = 0;
    std::int64_t r = std::stoll(v, &pos, 0);
    POLYMEM_REQUIRE(pos == v.size(), "trailing characters in integer for key " + key);
    return r;
  } catch (const std::logic_error&) {
    throw InvalidArgument("config key " + key + " is not an integer: " + v);
  }
}

double ConfigFile::get_double(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    std::size_t pos = 0;
    double r = std::stod(v, &pos);
    POLYMEM_REQUIRE(pos == v.size(), "trailing characters in number for key " + key);
    return r;
  } catch (const std::logic_error&) {
    throw InvalidArgument("config key " + key + " is not a number: " + v);
  }
}

bool ConfigFile::get_bool(const std::string& key) const {
  const std::string v = lower(get_string(key));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("config key " + key + " is not a boolean: " + v);
}

std::string ConfigFile::get_string_or(const std::string& key,
                                      const std::string& fallback) const {
  return has(key) ? get_string(key) : fallback;
}

std::int64_t ConfigFile::get_int_or(const std::string& key,
                                    std::int64_t fallback) const {
  return has(key) ? get_int(key) : fallback;
}

double ConfigFile::get_double_or(const std::string& key,
                                 double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

bool ConfigFile::get_bool_or(const std::string& key, bool fallback) const {
  return has(key) ? get_bool(key) : fallback;
}

}  // namespace polymem
