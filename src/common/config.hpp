// Key=value configuration files.
//
// The paper (Sec. IV-A): "Our design is easily configurable: a simple
// configuration file sets, at compile time, the required DSE parameters."
// This parser reads the same style of file at run time for the simulator:
// `key = value` lines, `#` comments, whitespace-insensitive.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace polymem {

class ConfigFile {
 public:
  /// Parses `text`; throws InvalidArgument on malformed lines.
  static ConfigFile parse(const std::string& text);

  /// Loads and parses a file; throws InvalidArgument if unreadable.
  static ConfigFile load(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters; throw InvalidArgument when the key is missing or the
  /// value does not parse. The `_or` variants return `fallback` when missing
  /// (but still throw on unparsable values).
  std::string get_string(const std::string& key) const;
  std::int64_t get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& entries() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace polymem
