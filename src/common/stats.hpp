// Running statistics and small fitting helpers.
//
// Used by the STREAM harness (min/avg/max over 1000 runs, as the original
// STREAM reports) and by the synthesis-model calibration (error metrics).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace polymem {

/// Accumulates count/min/max/mean/variance in one pass (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean absolute error between two equal-length series.
double mean_abs_error(const std::vector<double>& a,
                      const std::vector<double>& b);

/// Mean absolute *relative* error |a-b|/|b| (b is the reference).
double mean_abs_rel_error(const std::vector<double>& model,
                          const std::vector<double>& reference);

/// Pearson correlation coefficient; returns 0 for degenerate input.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace polymem
