// Running statistics and small fitting helpers.
//
// Used by the STREAM harness (min/avg/max over 1000 runs, as the original
// STREAM reports), by the synthesis-model calibration (error metrics) and
// by the software-cache observability counters (src/cache hot path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace polymem {

/// Software-cache event counters (src/cache hot path; surfaced through
/// maxsim::DmaStats and the bench_cache JSON report). A *hit* is a tile
/// request served from a resident frame; a *miss* triggers a refill; an
/// *eviction* displaces a resident tile (dirty or clean); a *writeback*
/// is the dirty half of an eviction or flush. Prefetch counters split
/// issued background loads into useful (consumed by a later miss) and
/// dropped (overwritten or invalidated before use).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_useful = 0;
  std::uint64_t prefetch_dropped = 0;
  /// Contiguous ascending-LMem-address write-back runs issued by flush():
  /// a flush of N dirty tiles in perfect layout order counts 1; unordered
  /// it would count up to N. The burst-friendliness measure of the DMA
  /// path (Ferry et al., PAPERS.md).
  std::uint64_t flush_runs = 0;
  /// Tile re-layouts: the cache was re-pointed at a migrated PolyMem
  /// (adaptive layout engine) and repopulates on demand.
  std::uint64_t relayouts = 0;

  /// hits / (hits + misses); 0 when no accesses happened.
  double hit_rate() const;

  CacheCounters& operator+=(const CacheCounters& other);

  friend bool operator==(const CacheCounters&, const CacheCounters&) =
      default;
};

/// Accumulates count/min/max/mean/variance in one pass (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-capacity percentile reservoir (Vitter's algorithm R): add() every
/// sample, keep a uniform random subset of at most `capacity`, and answer
/// p50/p95/p99 queries over the retained set. While the stream fits the
/// capacity the answer is exact; beyond it, each sample survives with
/// probability capacity/count, so tail percentiles stay unbiased without
/// storing millions of latency points. The replacement RNG is a seeded
/// splitmix64 walk — deterministic run to run, like every generator in
/// this library. Used by the service load generator (bench/bench_service)
/// and the parallel-runtime bench for latency distributions.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity = 4096, std::uint64_t seed = 1);

  void add(double x);

  /// Samples offered / retained.
  std::uint64_t count() const { return count_; }
  std::size_t size() const { return samples_.size(); }

  /// The pct-th percentile (pct in [0, 100]) of the retained samples by
  /// linear interpolation; NaN when empty.
  double percentile(double pct) const;

  struct Summary {
    std::uint64_t count = 0;
    double min = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;
  };
  /// min/p50/p95/p99/max in one sort of the retained set.
  Summary summary() const;

 private:
  std::uint64_t next_random();

  std::size_t capacity_;
  std::uint64_t state_;
  std::uint64_t count_ = 0;
  std::vector<double> samples_;
};

/// High-water gauge: tracks the maximum value ever recorded (queue depth,
/// in-flight population). Single-writer; readers take snapshots via max().
class HighWater {
 public:
  void record(std::uint64_t value) {
    if (value > max_) max_ = value;
  }
  std::uint64_t max() const { return max_; }

 private:
  std::uint64_t max_ = 0;
};

/// Mean absolute error between two equal-length series.
double mean_abs_error(const std::vector<double>& a,
                      const std::vector<double>& b);

/// Mean absolute *relative* error |a-b|/|b| (b is the reference).
double mean_abs_rel_error(const std::vector<double>& model,
                          const std::vector<double>& reference);

/// Pearson correlation coefficient; returns 0 for degenerate input.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace polymem
