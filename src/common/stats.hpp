// Running statistics and small fitting helpers.
//
// Used by the STREAM harness (min/avg/max over 1000 runs, as the original
// STREAM reports), by the synthesis-model calibration (error metrics) and
// by the software-cache observability counters (src/cache hot path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace polymem {

/// Software-cache event counters (src/cache hot path; surfaced through
/// maxsim::DmaStats and the bench_cache JSON report). A *hit* is a tile
/// request served from a resident frame; a *miss* triggers a refill; an
/// *eviction* displaces a resident tile (dirty or clean); a *writeback*
/// is the dirty half of an eviction or flush. Prefetch counters split
/// issued background loads into useful (consumed by a later miss) and
/// dropped (overwritten or invalidated before use).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_useful = 0;
  std::uint64_t prefetch_dropped = 0;

  /// hits / (hits + misses); 0 when no accesses happened.
  double hit_rate() const;

  CacheCounters& operator+=(const CacheCounters& other);

  friend bool operator==(const CacheCounters&, const CacheCounters&) =
      default;
};

/// Accumulates count/min/max/mean/variance in one pass (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean absolute error between two equal-length series.
double mean_abs_error(const std::vector<double>& a,
                      const std::vector<double>& b);

/// Mean absolute *relative* error |a-b|/|b| (b is the reference).
double mean_abs_rel_error(const std::vector<double>& model,
                          const std::vector<double>& reference);

/// Pearson correlation coefficient; returns 0 for degenerate input.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace polymem
