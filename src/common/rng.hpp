// Deterministic random number generation for tests and workload generators.
//
// A thin wrapper over std::mt19937_64 with convenience draws; every use in
// the library takes an explicit seed so that tests and benchmarks are
// reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace polymem {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double probability) { return uniform01() < probability; }

  std::uint64_t bits() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace polymem
