// Executes a schedule on the cycle-accurate PolyMem and measures the
// realised speedup — closing the loop of Sec. III-A: the scheduler's
// *predicted* speedup (elements / accesses) versus the speedup a timed
// simulation actually delivers, including pipeline latency.
//
// The scalar baseline is the paper's implicit comparison: a conventional
// one-element-per-cycle memory needs |trace| cycles for the same gather.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cycle_polymem.hpp"
#include "sched/scheduler.hpp"

namespace polymem::sched {

struct ExecutionResult {
  std::uint64_t polymem_cycles = 0;  ///< schedule execution incl. latency
  std::uint64_t scalar_cycles = 0;   ///< |trace| (1 element/cycle baseline)
  std::uint64_t elements_fetched = 0;  ///< lanes x accesses (incl. overlap)
  double measured_speedup = 0;       ///< scalar_cycles / polymem_cycles

  /// Latency-free steady-state speedup (what a long-running kernel sees).
  double steady_state_speedup = 0;
};

/// Runs every access of `schedule` back-to-back (one per cycle) on `mem`
/// and verifies that each fetched word matches `expected(coord)`; throws
/// Error on a data mismatch. The memory must already hold the data.
template <typename ExpectedFn>
ExecutionResult execute_schedule(const AccessTrace& trace,
                                 const Schedule& schedule,
                                 core::CyclePolyMem& mem,
                                 ExpectedFn&& expected) {
  ExecutionResult result;
  result.scalar_cycles = static_cast<std::uint64_t>(trace.size());

  const std::uint64_t start_cycles = mem.cycles();
  std::size_t next = 0;
  std::size_t retired = 0;
  const std::size_t total = schedule.accesses.size();
  std::vector<access::Coord> coords;  // reused across retirements
  while (retired < total) {
    if (next < total) {
      const bool ok = mem.issue_read(0, schedule.accesses[next],
                                     static_cast<std::uint64_t>(next));
      POLYMEM_ASSERT(ok);
      (void)ok;
      ++next;
    }
    mem.tick();
    if (auto resp = mem.retire_read(0)) {
      const auto& acc = schedule.accesses[resp->tag];
      access::expand_into(acc, mem.config().p, mem.config().q, coords);
      for (std::size_t k = 0; k < coords.size(); ++k) {
        if (resp->data[k] != expected(coords[k]))
          throw Error("schedule execution fetched wrong data at (" +
                      std::to_string(coords[k].i) + "," +
                      std::to_string(coords[k].j) + ")");
      }
      result.elements_fetched += resp->data.size();
      ++retired;
    }
  }
  result.polymem_cycles = mem.cycles() - start_cycles;
  if (result.polymem_cycles > 0)
    result.measured_speedup =
        static_cast<double>(result.scalar_cycles) /
        static_cast<double>(result.polymem_cycles);
  if (!schedule.accesses.empty())
    result.steady_state_speedup =
        static_cast<double>(result.scalar_cycles) /
        static_cast<double>(schedule.accesses.size());
  return result;
}

}  // namespace polymem::sched
