// Replayable access-trace serialization — the `polymem_replay` format.
//
// A recorded trace is a header plus one access tuple per line:
// direction, pattern, anchor, extent (anchor-walk count and stride) and
// an optional data checksum:
//
//   polymem-trace v1
//   geometry 2x4 space 64x64 seed 42
//   R row @ 0,0 x8 step 0,8 sum 59cbd17fe356cfde
//   W rect @ 4,8 x1
//
// The header pins the lane geometry (p x q — the tuples' shapes are
// meaningless without it), the address space and the canonical-data
// seed. Everything else — scheme, software cache, port count, execution
// engine — is chosen by the replay harness (src/replay): the trace is
// *polymorphic*, which is the paper's claim made executable.
//
// Checksums use a fixed data model so that recording and replay agree
// without shipping the data itself: memory starts as canonical_cell(seed)
// per element, and the k-th write op stores canonical_write_word(seed, k)
// words. Each op's checksum is FNV-1a over the words it moves, in
// canonical lane order. host_replay() evaluates this model with plain
// host arrays — it is the differential oracle every PolyMem-backed
// replay is compared against, bit for bit.
//
// The full grammar lives in docs/trace_format.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "access/pattern.hpp"
#include "common/error.hpp"
#include "core/access_batch.hpp"
#include "sched/trace.hpp"

namespace polymem::sched {

/// One replayable operation: a direction plus a constant-stride anchor
/// walk of a Table-I pattern — the textual twin of core::AccessBatch
/// (1D form; a 2D batch serializes as outer_count lines).
struct TraceOp {
  enum class Dir : std::uint8_t { kRead, kWrite };

  Dir dir = Dir::kRead;
  access::PatternKind kind = access::PatternKind::kRect;
  access::Coord anchor;
  access::Coord stride;    ///< anchor step between consecutive accesses
  std::int64_t count = 1;  ///< accesses in the walk
  std::optional<std::uint64_t> checksum;  ///< FNV-1a over the moved words

  /// The walk as a 1D strided batch for the batched engines.
  core::AccessBatch batch() const {
    return core::AccessBatch::strided(kind, anchor, stride, count);
  }

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

const char* trace_dir_name(TraceOp::Dir dir);  ///< "R" / "W"

/// A parsed/recorded trace: header plus the op sequence.
struct RecordedTrace {
  unsigned p = 2, q = 4;                ///< recording lane geometry
  std::int64_t height = 0, width = 0;   ///< address space
  std::uint64_t seed = 0;               ///< canonical-data seed
  std::vector<TraceOp> ops;

  /// Total parallel accesses (sum of op counts).
  std::int64_t accesses() const;
  /// Total words moved (accesses() * p * q).
  std::int64_t words() const { return accesses() * p * q; }

  /// Flattens every op into an AccessTrace carrying full provenance
  /// (pattern kind + anchor alignment per access), ready for
  /// verify::lint_trace without the original program.
  AccessTrace access_trace() const;

  friend bool operator==(const RecordedTrace&, const RecordedTrace&) = default;
};

/// Typed parse failure: `line()` is the 1-based offending line. Malformed
/// input never crashes the parser — it throws this, and the CLI maps it
/// to a nonzero exit.
class TraceParseError : public Error {
 public:
  TraceParseError(int line, const std::string& what);
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses the text format; throws TraceParseError on malformed input.
RecordedTrace parse_trace(std::istream& in);
RecordedTrace parse_trace_text(const std::string& text);
/// Throws Error when the file cannot be opened.
RecordedTrace parse_trace_file(const std::string& path);

/// Prints the text format (parse_trace round-trips it bit-identically).
void print_trace(std::ostream& out, const RecordedTrace& trace);
std::string trace_to_string(const RecordedTrace& trace);
void write_trace_file(const std::string& path, const RecordedTrace& trace);

// ---- canonical data model ------------------------------------------------

/// Initial content of element (i, j) (splitmix64 of the flat index).
std::uint64_t canonical_cell(std::uint64_t seed, std::int64_t width,
                             access::Coord c);
/// The word-index-w payload of write op number `op` (ops numbered over
/// the whole trace, reads included; w < count * lanes).
std::uint64_t canonical_write_word(std::uint64_t seed, std::int64_t op,
                                   std::int64_t w);
/// FNV-1a (64-bit, byte-wise over little-endian words) of a word span.
std::uint64_t fnv1a(const std::uint64_t* words, std::size_t n);

/// Host-array evaluation of a trace under the canonical data model: the
/// final memory image (row-major height x width) and every op's
/// checksum. This is the replay oracle; it throws InvalidArgument when
/// an access leaves the address space.
struct HostReplay {
  std::vector<std::uint64_t> memory;
  std::vector<std::uint64_t> checksums;
};
HostReplay host_replay(const RecordedTrace& trace);

/// Fills every op's checksum from host_replay (recorders call this once
/// after the op stream is complete).
void annotate_checksums(RecordedTrace& trace);

// ---- recording -----------------------------------------------------------

/// Tap on a TraceRecorder's access stream: on_access fires once per
/// recorded parallel access, before coalescing, carrying the same
/// provenance an AccessTrace entry would (direction + pattern kind +
/// anchor). The adaptive layout engine (src/adapt) hangs its online
/// profiler here, so profiling rides the recording path for free instead
/// of instrumenting every application. Observers must not call back into
/// the recorder.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void on_access(TraceOp::Dir dir,
                         const access::ParallelAccess& access) = 0;
};

/// Collects the accesses an application actually issues and folds
/// consecutive same-direction, same-pattern, constant-stride accesses
/// into single TraceOp walks (the textual analogue of BatchCoalescer).
/// finish() seals the trace and annotates canonical checksums.
class TraceRecorder {
 public:
  TraceRecorder(unsigned p, unsigned q, std::int64_t height,
                std::int64_t width, std::uint64_t seed = 42);

  void read(const access::ParallelAccess& access) {
    add(TraceOp::Dir::kRead, access);
  }
  void write(const access::ParallelAccess& access) {
    add(TraceOp::Dir::kWrite, access);
  }
  /// Records a whole strided batch (one op per outer row).
  void read_batch(const core::AccessBatch& batch) {
    add_batch(TraceOp::Dir::kRead, batch);
  }
  void write_batch(const core::AccessBatch& batch) {
    add_batch(TraceOp::Dir::kWrite, batch);
  }

  std::int64_t ops_recorded() const;

  /// Registers a tap on the access stream (nullptr detaches). Not owned;
  /// the observer must outlive the recorder or be detached first.
  void set_observer(AccessObserver* observer) { observer_ = observer; }
  AccessObserver* observer() const { return observer_; }

  /// Seals the pending run, annotates checksums, returns the trace.
  /// The recorder is reusable afterwards (empty op stream, same header).
  RecordedTrace finish();

 private:
  void add(TraceOp::Dir dir, const access::ParallelAccess& access);
  void add_batch(TraceOp::Dir dir, const core::AccessBatch& batch);
  void flush_run();

  RecordedTrace trace_;
  TraceOp run_;             // pending coalescing run (run_.count == 0: none)
  access::Coord next_;      // anchor that would extend the run
  bool have_stride_ = false;
  AccessObserver* observer_ = nullptr;
};

}  // namespace polymem::sched
