// Application access traces (the input of the Sec. III-A methodology).
//
// "To customize PolyMem for a given application, we start from the
//  application memory access pattern" — an AccessTrace is that pattern:
// the set of distinct 2D elements one kernel iteration reads. Generators
// cover the workload classes the paper motivates (dense blocks for
// matrix/multimedia kernels, stencils for scientific simulation, sparse
// sets for graph-like irregularity). Traces recorded from parallel
// accesses additionally carry per-access provenance (pattern kind,
// anchor, alignment — see TraceOrigin), so a replayed trace can be
// re-linted without the program that produced it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "access/coord.hpp"
#include "access/pattern.hpp"

namespace polymem::sched {

/// Provenance of one recorded parallel access: the originating pattern
/// kind and anchor, plus whether the anchor sat on the aligned
/// (i % p == 0, j % q == 0) lattice at recording time. A trace carrying
/// origins can be re-linted without the original program: aligned-only
/// schemes accept exactly the aligned anchors, so alignment is part of
/// the recorded fact, not something to re-derive.
struct TraceOrigin {
  access::ParallelAccess access;
  bool aligned = false;

  friend bool operator==(const TraceOrigin&, const TraceOrigin&) = default;
};

class AccessTrace {
 public:
  AccessTrace() = default;
  explicit AccessTrace(std::vector<access::Coord> elements);

  /// Deduplicated, sorted elements.
  const std::vector<access::Coord>& elements() const { return elements_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(elements_.size());
  }
  bool empty() const { return elements_.empty(); }

  /// Bounding box (valid only when non-empty).
  access::Coord min() const;
  access::Coord max() const;

  /// Elements outside the [0, height) x [0, width) address space — the
  /// static bounds check of a trace before scheduling it onto real
  /// storage (verify/plan_lint.hpp).
  std::vector<access::Coord> out_of_bounds(std::int64_t height,
                                           std::int64_t width) const;

  /// Builds a trace from parallel accesses expanded at bank geometry
  /// (p, q), recording each access's pattern kind and anchor alignment
  /// as provenance (the raw-tuple constructor above records none).
  static AccessTrace from_accesses(
      std::span<const access::ParallelAccess> accesses, unsigned p,
      unsigned q);

  /// Recorded provenance, in recording order (empty for raw-tuple and
  /// generator traces — those never saw a pattern).
  const std::vector<TraceOrigin>& origins() const { return origins_; }
  bool has_origins() const { return !origins_.empty(); }

  /// Bank geometry the origins were recorded at (0 without provenance).
  unsigned origin_p() const { return origin_p_; }
  unsigned origin_q() const { return origin_q_; }

  /// True when every recorded origin anchor is (p, q)-aligned. Requires
  /// provenance.
  bool origins_aligned() const;

  /// Generators.
  static AccessTrace dense_block(access::Coord origin, std::int64_t rows,
                                 std::int64_t cols);
  /// A 5-point / 9-point style star stencil footprint around `center`
  /// swept over a rows x cols tile: union of the tile shifted by the
  /// stencil offsets.
  static AccessTrace stencil(access::Coord origin, std::int64_t rows,
                             std::int64_t cols,
                             const std::vector<access::Coord>& offsets);
  static AccessTrace random_sparse(access::Coord origin, std::int64_t rows,
                                   std::int64_t cols, double density,
                                   std::uint64_t seed);
  /// A diagonal band: the main diagonal of a length x length tile plus
  /// `halo` neighbours on each side.
  static AccessTrace diagonal_band(access::Coord origin, std::int64_t length,
                                   std::int64_t halo);

 private:
  std::vector<access::Coord> elements_;
  std::vector<TraceOrigin> origins_;
  unsigned origin_p_ = 0;
  unsigned origin_q_ = 0;
};

}  // namespace polymem::sched
