// Application access traces (the input of the Sec. III-A methodology).
//
// "To customize PolyMem for a given application, we start from the
//  application memory access pattern" — an AccessTrace is that pattern:
// the set of distinct 2D elements one kernel iteration reads. Generators
// cover the workload classes the paper motivates (dense blocks for
// matrix/multimedia kernels, stencils for scientific simulation, sparse
// sets for graph-like irregularity).
#pragma once

#include <cstdint>
#include <vector>

#include "access/coord.hpp"

namespace polymem::sched {

class AccessTrace {
 public:
  AccessTrace() = default;
  explicit AccessTrace(std::vector<access::Coord> elements);

  /// Deduplicated, sorted elements.
  const std::vector<access::Coord>& elements() const { return elements_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(elements_.size());
  }
  bool empty() const { return elements_.empty(); }

  /// Bounding box (valid only when non-empty).
  access::Coord min() const;
  access::Coord max() const;

  /// Elements outside the [0, height) x [0, width) address space — the
  /// static bounds check of a trace before scheduling it onto real
  /// storage (verify/plan_lint.hpp).
  std::vector<access::Coord> out_of_bounds(std::int64_t height,
                                           std::int64_t width) const;

  /// Generators.
  static AccessTrace dense_block(access::Coord origin, std::int64_t rows,
                                 std::int64_t cols);
  /// A 5-point / 9-point style star stencil footprint around `center`
  /// swept over a rows x cols tile: union of the tile shifted by the
  /// stencil offsets.
  static AccessTrace stencil(access::Coord origin, std::int64_t rows,
                             std::int64_t cols,
                             const std::vector<access::Coord>& offsets);
  static AccessTrace random_sparse(access::Coord origin, std::int64_t rows,
                                   std::int64_t cols, double density,
                                   std::uint64_t seed);
  /// A diagonal band: the main diagonal of a length x length tile plus
  /// `halo` neighbours on each side.
  static AccessTrace diagonal_band(access::Coord origin, std::int64_t length,
                                   std::int64_t halo);

 private:
  std::vector<access::Coord> elements_;
};

}  // namespace polymem::sched
