#include "sched/setcover.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::sched {

void CoverInstance::validate() const {
  POLYMEM_REQUIRE(universe_size >= 0, "universe size must be non-negative");
  std::vector<char> covered(static_cast<std::size_t>(universe_size), 0);
  for (const auto& set : sets) {
    for (int e : set) {
      POLYMEM_REQUIRE(e >= 0 && e < universe_size,
                      "set element out of universe range");
      covered[static_cast<std::size_t>(e)] = 1;
    }
  }
  for (int e = 0; e < universe_size; ++e)
    POLYMEM_REQUIRE(covered[static_cast<std::size_t>(e)],
                    "universe element " + std::to_string(e) +
                        " is not coverable by any set");
}

bool is_cover(const CoverInstance& instance, const std::vector<int>& chosen) {
  std::vector<char> covered(static_cast<std::size_t>(instance.universe_size),
                            0);
  for (int s : chosen) {
    if (s < 0 || s >= static_cast<int>(instance.sets.size())) return false;
    for (int e : instance.sets[static_cast<std::size_t>(s)])
      covered[static_cast<std::size_t>(e)] = 1;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](char c) { return c != 0; });
}

CoverInstance prune_dominated(const CoverInstance& instance,
                              std::vector<int>& kept) {
  const int n = static_cast<int>(instance.sets.size());
  // Sorted copies make subset tests a linear merge.
  std::vector<std::vector<int>> sorted(instance.sets);
  for (auto& set : sorted) std::sort(set.begin(), set.end());
  auto subset_of = [](const std::vector<int>& a, const std::vector<int>& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  };

  // s is dominated when some t strictly contains it, or equals it with a
  // lower index (consistent tie-break so exactly one duplicate survives).
  std::vector<char> dominated(static_cast<std::size_t>(n), 0);
  for (int s = 0; s < n; ++s) {
    const auto& a = sorted[static_cast<std::size_t>(s)];
    for (int t = 0; t < n && !dominated[static_cast<std::size_t>(s)]; ++t) {
      if (t == s) continue;
      const auto& b = sorted[static_cast<std::size_t>(t)];
      if (a.size() > b.size()) continue;
      if (!subset_of(a, b)) continue;
      if (a.size() < b.size() || t < s)
        dominated[static_cast<std::size_t>(s)] = 1;
    }
  }

  CoverInstance pruned;
  pruned.universe_size = instance.universe_size;
  kept.clear();
  for (int s = 0; s < n; ++s) {
    if (dominated[static_cast<std::size_t>(s)]) continue;
    pruned.sets.push_back(instance.sets[static_cast<std::size_t>(s)]);
    kept.push_back(s);
  }
  return pruned;
}

std::vector<int> greedy_cover(const CoverInstance& instance) {
  instance.validate();
  std::vector<char> covered(static_cast<std::size_t>(instance.universe_size),
                            0);
  int remaining = instance.universe_size;
  std::vector<int> chosen;
  while (remaining > 0) {
    int best = -1, best_gain = 0;
    for (int s = 0; s < static_cast<int>(instance.sets.size()); ++s) {
      int gain = 0;
      for (int e : instance.sets[static_cast<std::size_t>(s)])
        gain += covered[static_cast<std::size_t>(e)] ? 0 : 1;
      if (gain > best_gain) {
        best_gain = gain;
        best = s;
      }
    }
    POLYMEM_ASSERT(best >= 0);  // validate() guarantees coverage
    chosen.push_back(best);
    for (int e : instance.sets[static_cast<std::size_t>(best)]) {
      if (!covered[static_cast<std::size_t>(e)]) {
        covered[static_cast<std::size_t>(e)] = 1;
        --remaining;
      }
    }
  }
  return chosen;
}

namespace {

// Branch-and-bound state for the exact solver.
struct Search {
  const CoverInstance* instance = nullptr;
  std::vector<std::vector<int>> covering_sets;  // per element
  std::vector<int> cover_count;  // how many chosen sets cover each element
  std::vector<int> chosen;
  std::vector<int> best;
  std::uint64_t nodes = 0;
  std::uint64_t max_nodes = 0;
  bool exhausted = false;
  std::size_t max_set_size = 1;

  int uncovered() const {
    int n = 0;
    for (int c : cover_count) n += (c == 0);
    return n;
  }

  // The uncovered element with the fewest candidate sets (fail-first).
  int pick_element() const {
    int best_e = -1;
    std::size_t best_options = SIZE_MAX;
    for (int e = 0; e < instance->universe_size; ++e) {
      if (cover_count[static_cast<std::size_t>(e)] != 0) continue;
      const std::size_t options =
          covering_sets[static_cast<std::size_t>(e)].size();
      if (options < best_options) {
        best_options = options;
        best_e = e;
      }
    }
    return best_e;
  }

  void choose(int s) {
    chosen.push_back(s);
    for (int e : instance->sets[static_cast<std::size_t>(s)])
      ++cover_count[static_cast<std::size_t>(e)];
  }

  void unchoose(int s) {
    chosen.pop_back();
    for (int e : instance->sets[static_cast<std::size_t>(s)])
      --cover_count[static_cast<std::size_t>(e)];
  }

  void dfs() {
    if (exhausted) return;
    if (++nodes > max_nodes) {
      exhausted = true;
      return;
    }
    const int remaining = uncovered();
    if (remaining == 0) {
      if (best.empty() || chosen.size() < best.size()) best = chosen;
      return;
    }
    // Lower bound: even the largest set covers at most max_set_size
    // uncovered elements per pick.
    const std::size_t bound =
        chosen.size() + static_cast<std::size_t>(ceil_div<int>(
                            remaining, static_cast<int>(max_set_size)));
    if (!best.empty() && bound >= best.size()) return;

    const int e = pick_element();
    POLYMEM_ASSERT(e >= 0);
    for (int s : covering_sets[static_cast<std::size_t>(e)]) {
      choose(s);
      dfs();
      unchoose(s);
      if (exhausted) return;
    }
  }
};

}  // namespace

std::optional<std::vector<int>> exact_cover(const CoverInstance& instance,
                                            std::uint64_t max_nodes) {
  instance.validate();
  if (instance.universe_size == 0) return std::vector<int>{};

  Search search;
  search.instance = &instance;
  search.max_nodes = max_nodes;
  search.cover_count.assign(static_cast<std::size_t>(instance.universe_size),
                            0);
  search.covering_sets.resize(
      static_cast<std::size_t>(instance.universe_size));
  for (int s = 0; s < static_cast<int>(instance.sets.size()); ++s) {
    const auto& set = instance.sets[static_cast<std::size_t>(s)];
    search.max_set_size = std::max(search.max_set_size, set.size());
    for (int e : set)
      search.covering_sets[static_cast<std::size_t>(e)].push_back(s);
  }
  // Seed the upper bound with greedy so pruning bites immediately.
  search.best = greedy_cover(instance);
  search.dfs();
  if (search.exhausted) return std::nullopt;
  return search.best;
}

}  // namespace polymem::sched
