#include "sched/trace.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace polymem::sched {

using access::Coord;

AccessTrace::AccessTrace(std::vector<Coord> elements)
    : elements_(std::move(elements)) {
  std::sort(elements_.begin(), elements_.end());
  elements_.erase(std::unique(elements_.begin(), elements_.end()),
                  elements_.end());
}

Coord AccessTrace::min() const {
  POLYMEM_REQUIRE(!empty(), "empty trace has no bounding box");
  Coord m = elements_.front();
  for (const Coord& c : elements_) {
    m.i = std::min(m.i, c.i);
    m.j = std::min(m.j, c.j);
  }
  return m;
}

Coord AccessTrace::max() const {
  POLYMEM_REQUIRE(!empty(), "empty trace has no bounding box");
  Coord m = elements_.front();
  for (const Coord& c : elements_) {
    m.i = std::max(m.i, c.i);
    m.j = std::max(m.j, c.j);
  }
  return m;
}

std::vector<Coord> AccessTrace::out_of_bounds(std::int64_t height,
                                              std::int64_t width) const {
  POLYMEM_REQUIRE(height >= 1 && width >= 1,
                  "address space must be non-empty");
  std::vector<Coord> outside;
  for (const Coord& c : elements_)
    if (c.i < 0 || c.i >= height || c.j < 0 || c.j >= width)
      outside.push_back(c);
  return outside;
}

AccessTrace AccessTrace::from_accesses(
    std::span<const access::ParallelAccess> accesses, unsigned p,
    unsigned q) {
  POLYMEM_REQUIRE(p >= 1 && q >= 1, "bank geometry must be at least 1x1");
  std::vector<Coord> el;
  std::vector<Coord> lanes;
  AccessTrace trace;
  trace.origin_p_ = p;
  trace.origin_q_ = q;
  trace.origins_.reserve(accesses.size());
  for (const access::ParallelAccess& a : accesses) {
    access::expand_into(a, p, q, lanes);
    el.insert(el.end(), lanes.begin(), lanes.end());
    trace.origins_.push_back(
        {a, a.anchor.i % p == 0 && a.anchor.j % q == 0});
  }
  std::sort(el.begin(), el.end());
  el.erase(std::unique(el.begin(), el.end()), el.end());
  trace.elements_ = std::move(el);
  return trace;
}

bool AccessTrace::origins_aligned() const {
  POLYMEM_REQUIRE(has_origins(), "trace carries no provenance");
  for (const TraceOrigin& o : origins_)
    if (!o.aligned) return false;
  return true;
}

AccessTrace AccessTrace::dense_block(Coord origin, std::int64_t rows,
                                     std::int64_t cols) {
  POLYMEM_REQUIRE(rows >= 1 && cols >= 1, "block must be non-empty");
  std::vector<Coord> el;
  el.reserve(static_cast<std::size_t>(rows * cols));
  for (std::int64_t u = 0; u < rows; ++u)
    for (std::int64_t v = 0; v < cols; ++v)
      el.push_back({origin.i + u, origin.j + v});
  return AccessTrace(std::move(el));
}

AccessTrace AccessTrace::stencil(Coord origin, std::int64_t rows,
                                 std::int64_t cols,
                                 const std::vector<Coord>& offsets) {
  POLYMEM_REQUIRE(rows >= 1 && cols >= 1, "tile must be non-empty");
  POLYMEM_REQUIRE(!offsets.empty(), "stencil needs at least one offset");
  std::vector<Coord> el;
  for (std::int64_t u = 0; u < rows; ++u)
    for (std::int64_t v = 0; v < cols; ++v)
      for (const Coord& o : offsets)
        el.push_back({origin.i + u + o.i, origin.j + v + o.j});
  return AccessTrace(std::move(el));
}

AccessTrace AccessTrace::random_sparse(Coord origin, std::int64_t rows,
                                       std::int64_t cols, double density,
                                       std::uint64_t seed) {
  POLYMEM_REQUIRE(density > 0.0 && density <= 1.0,
                  "density must be in (0, 1]");
  Rng rng(seed);
  std::vector<Coord> el;
  for (std::int64_t u = 0; u < rows; ++u)
    for (std::int64_t v = 0; v < cols; ++v)
      if (rng.chance(density)) el.push_back({origin.i + u, origin.j + v});
  if (el.empty()) el.push_back(origin);  // keep the trace non-degenerate
  return AccessTrace(std::move(el));
}

AccessTrace AccessTrace::diagonal_band(Coord origin, std::int64_t length,
                                       std::int64_t halo) {
  POLYMEM_REQUIRE(length >= 1 && halo >= 0, "bad band shape");
  std::vector<Coord> el;
  for (std::int64_t k = 0; k < length; ++k)
    for (std::int64_t h = -halo; h <= halo; ++h)
      el.push_back({origin.i + k, origin.j + k + h});
  return AccessTrace(std::move(el));
}

}  // namespace polymem::sched
