#include "sched/scheduler.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace polymem::sched {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

Scheduler::Scheduler(maf::Scheme scheme, unsigned p, unsigned q)
    : maf_(scheme, p, q) {}

void Scheduler::set_bounds(std::int64_t height, std::int64_t width) {
  POLYMEM_REQUIRE(height >= 1 && width >= 1, "bounds must be positive");
  height_ = height;
  width_ = width;
}

std::vector<ParallelAccess> Scheduler::candidate_accesses(
    const AccessTrace& trace) const {
  if (trace.empty()) return {};
  const Coord lo = trace.min();
  const Coord hi = trace.max();
  // Fast membership for "covers at least one trace element".
  const std::vector<Coord>& el = trace.elements();
  auto touches = [&el](const Coord& c) {
    return std::binary_search(el.begin(), el.end(), c);
  };

  std::vector<ParallelAccess> out;
  std::vector<Coord> expansion;
  for (PatternKind kind : access::kAllPatterns) {
    const maf::SupportLevel level = maf::probe_support(maf_, kind);
    if (level == maf::SupportLevel::kNone) continue;
    const auto ext = access::pattern_extent(kind, maf_.p(), maf_.q());
    // Anchors from which the pattern can reach the bounding box.
    for (std::int64_t a = lo.i - ext.rows + 1; a <= hi.i; ++a) {
      for (std::int64_t b = lo.j - ext.cols - ext.col_offset + 1;
           b <= hi.j - ext.col_offset; ++b) {
        const ParallelAccess acc{kind, {a, b}};
        if (!maf::access_supported(maf_, acc)) continue;  // alignment
        if (height_ >= 0 &&
            !access::fits(acc, maf_.p(), maf_.q(), height_, width_))
          continue;  // stays inside the physical address space
        access::expand_into(acc, maf_.p(), maf_.q(), expansion);
        if (std::any_of(expansion.begin(), expansion.end(), touches))
          out.push_back(acc);
      }
    }
  }
  return out;
}

Schedule Scheduler::schedule(const AccessTrace& trace,
                             SolverKind solver) const {
  Schedule result;
  if (trace.empty()) {
    result.optimal = true;
    return result;
  }
  const auto candidates = candidate_accesses(trace);
  POLYMEM_ASSERT(!candidates.empty());

  // Build the covering instance: universe = trace elements (by index).
  const std::vector<Coord>& el = trace.elements();
  CoverInstance instance;
  instance.universe_size = static_cast<int>(el.size());
  instance.sets.reserve(candidates.size());
  std::vector<Coord> expansion;
  for (const ParallelAccess& acc : candidates) {
    access::expand_into(acc, maf_.p(), maf_.q(), expansion);
    std::vector<int> covered;
    for (const Coord& c : expansion) {
      const auto it = std::lower_bound(el.begin(), el.end(), c);
      if (it != el.end() && *it == c)
        covered.push_back(static_cast<int>(it - el.begin()));
    }
    instance.sets.push_back(std::move(covered));
  }

  // Dominated candidates (accesses whose useful lanes are a subset of
  // another's) cannot improve any cover; pruning them shrinks the search
  // dramatically for regular traces.
  std::vector<int> kept;
  const CoverInstance pruned = prune_dominated(instance, kept);

  std::vector<int> chosen;
  if (solver == SolverKind::kExact) {
    if (auto exact = exact_cover(pruned)) {
      chosen = *exact;
      result.optimal = true;
    } else {
      chosen = greedy_cover(pruned);  // node budget exhausted
    }
  } else {
    chosen = greedy_cover(pruned);
  }
  POLYMEM_ASSERT(is_cover(pruned, chosen));
  result.accesses.reserve(chosen.size());
  for (int s : chosen)
    result.accesses.push_back(
        candidates[static_cast<std::size_t>(kept[static_cast<std::size_t>(s)])]);
  return result;
}

ScheduleMetrics Scheduler::evaluate(const AccessTrace& trace,
                                    const Schedule& schedule) const {
  ScheduleMetrics m;
  m.trace_elements = trace.size();
  m.schedule_length = schedule.length();
  if (m.schedule_length > 0) {
    m.speedup = static_cast<double>(m.trace_elements) /
                static_cast<double>(m.schedule_length);
    m.efficiency = m.speedup / static_cast<double>(maf_.banks());
  }
  return m;
}

std::vector<ConfigurationChoice> rank_configurations(
    const AccessTrace& trace,
    const std::vector<std::tuple<maf::Scheme, unsigned, unsigned>>& configs,
    SolverKind solver) {
  std::vector<ConfigurationChoice> out;
  out.reserve(configs.size());
  for (const auto& [scheme, p, q] : configs) {
    const Scheduler scheduler(scheme, p, q);
    ConfigurationChoice choice{scheme, p, q, scheduler.schedule(trace, solver),
                               {}};
    choice.metrics = scheduler.evaluate(trace, choice.schedule);
    out.push_back(std::move(choice));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ConfigurationChoice& a,
                      const ConfigurationChoice& b) {
                     if (a.metrics.speedup != b.metrics.speedup)
                       return a.metrics.speedup > b.metrics.speedup;
                     return a.metrics.efficiency > b.metrics.efficiency;
                   });
  return out;
}

}  // namespace polymem::sched
