// The access scheduler: trace -> optimal parallel access sequence
// (paper Sec. III-A, expanded in [11] "The Case for Custom Parallel
// Memories").
//
// Given an application trace and a PolyMem configuration (scheme + bank
// geometry), the scheduler enumerates every conflict-free parallel access
// that touches the trace and picks the minimum set of accesses covering
// all trace elements (set covering; exact by default, greedy fallback).
// Configurations are then compared by the paper's two metrics:
//
//   speedup     = |trace| / |schedule|     (vs a 1-element/cycle memory)
//   efficiency  = speedup / (p*q)          (useful fraction of the lanes)
#pragma once

#include <string>
#include <vector>

#include "access/pattern.hpp"
#include "maf/conflict.hpp"
#include "maf/maf.hpp"
#include "sched/setcover.hpp"
#include "sched/trace.hpp"

namespace polymem::sched {

enum class SolverKind : std::uint8_t { kExact, kGreedy };

struct Schedule {
  std::vector<access::ParallelAccess> accesses;
  bool optimal = false;  ///< true when produced by a completed exact search

  std::int64_t length() const {
    return static_cast<std::int64_t>(accesses.size());
  }
};

struct ScheduleMetrics {
  std::int64_t trace_elements = 0;
  std::int64_t schedule_length = 0;
  double speedup = 0;
  double efficiency = 0;
};

class Scheduler {
 public:
  /// A scheduler for one (scheme, p, q) configuration. The default is
  /// unbounded (anchors anywhere around the trace); give the PolyMem's
  /// address-space bounds when the schedule will execute on real storage,
  /// so no candidate access leaves the space.
  Scheduler(maf::Scheme scheme, unsigned p, unsigned q);

  void set_bounds(std::int64_t height, std::int64_t width);

  const maf::Maf& maf() const { return maf_; }

  /// Every supported parallel access (any pattern the scheme serves, any
  /// valid anchor near the trace) covering at least one trace element.
  std::vector<access::ParallelAccess> candidate_accesses(
      const AccessTrace& trace) const;

  /// The minimum-length (exact) or near-minimum (greedy) schedule covering
  /// the trace. Exact falls back to greedy when the node budget runs out
  /// (schedule.optimal reports which happened).
  Schedule schedule(const AccessTrace& trace,
                    SolverKind solver = SolverKind::kExact) const;

  ScheduleMetrics evaluate(const AccessTrace& trace,
                           const Schedule& schedule) const;

 private:
  maf::Maf maf_;
  std::int64_t height_ = -1;  ///< -1: unbounded
  std::int64_t width_ = -1;
};

/// The Sec. III-A configuration-selection flow: schedules the trace on
/// every candidate configuration and ranks by speedup, breaking ties by
/// efficiency.
struct ConfigurationChoice {
  maf::Scheme scheme;
  unsigned p, q;
  Schedule schedule;
  ScheduleMetrics metrics;
};

std::vector<ConfigurationChoice> rank_configurations(
    const AccessTrace& trace,
    const std::vector<std::tuple<maf::Scheme, unsigned, unsigned>>& configs,
    SolverKind solver = SolverKind::kExact);

}  // namespace polymem::sched
