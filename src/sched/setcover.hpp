// Set covering, the paper's schedule-optimisation core (Sec. III-A).
//
// "To determine the optimal schedule we formulate the problem as a set
//  covering problem, using Integer Linear Programming (ILP) for the
//  search itself."
//
// This module provides a self-contained exact solver (branch-and-bound
// with the same optimality guarantee as the ILP) and the classic greedy
// approximation as a baseline for the scheduler ablation bench.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace polymem::sched {

/// A covering instance: `sets[s]` lists the universe elements (indices in
/// [0, universe_size)) that set s covers.
struct CoverInstance {
  int universe_size = 0;
  std::vector<std::vector<int>> sets;

  /// Throws InvalidArgument if any set references an element out of range
  /// or the union of sets does not cover the universe.
  void validate() const;
};

/// Greedy: repeatedly picks the set covering the most uncovered elements.
/// Classic ln(n)-approximation; deterministic (ties by lowest index).
std::vector<int> greedy_cover(const CoverInstance& instance);

/// Exact branch-and-bound minimum cover. Explores at most `max_nodes`
/// search nodes; returns nullopt when the budget is exhausted before
/// optimality is proven (callers then fall back to greedy).
std::optional<std::vector<int>> exact_cover(const CoverInstance& instance,
                                            std::uint64_t max_nodes = 1u << 22);

/// True when `chosen` covers every universe element.
bool is_cover(const CoverInstance& instance, const std::vector<int>& chosen);

/// Drops *dominated* sets — sets whose elements are a subset of another
/// set's — without changing the optimum: any cover using a dominated set
/// stays a cover when the dominating set replaces it. `kept` receives the
/// surviving sets' original indices (kept[i] = original index of the
/// pruned instance's set i). Ties (duplicate sets) keep the lowest index.
CoverInstance prune_dominated(const CoverInstance& instance,
                              std::vector<int>& kept);

}  // namespace polymem::sched
