#include "sched/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace polymem::sched {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

namespace {

// splitmix64 (same constants as runtime::derive_seed, kept local so the
// trace format has no dependency on the thread pool).
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Tag separating the write-payload stream from the initial-cell stream.
constexpr std::uint64_t kWriteTag = 0xA5A5A5A5DEADBEEFull;

}  // namespace

const char* trace_dir_name(TraceOp::Dir dir) {
  return dir == TraceOp::Dir::kRead ? "R" : "W";
}

std::int64_t RecordedTrace::accesses() const {
  std::int64_t n = 0;
  for (const TraceOp& op : ops) n += op.count;
  return n;
}

AccessTrace RecordedTrace::access_trace() const {
  std::vector<ParallelAccess> flat;
  flat.reserve(static_cast<std::size_t>(accesses()));
  for (const TraceOp& op : ops)
    for (std::int64_t t = 0; t < op.count; ++t)
      flat.push_back({op.kind,
                      {op.anchor.i + t * op.stride.i,
                       op.anchor.j + t * op.stride.j}});
  return AccessTrace::from_accesses(flat, p, q);
}

TraceParseError::TraceParseError(int line, const std::string& what)
    : Error("trace parse error at line " + std::to_string(line) + ": " +
            what),
      line_(line) {}

// ---- parsing -------------------------------------------------------------

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

std::int64_t parse_int(const std::string& tok, int line, const char* what) {
  std::int64_t value = 0;
  const char* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), end, value);
  if (ec != std::errc() || ptr != end)
    throw TraceParseError(line, std::string("bad ") + what + " '" + tok +
                                    "'");
  return value;
}

Coord parse_coord(const std::string& tok, int line, const char* what) {
  const std::size_t comma = tok.find(',');
  if (comma == std::string::npos || comma == 0 || comma + 1 == tok.size())
    throw TraceParseError(line, std::string("bad ") + what + " '" + tok +
                                    "' (expected i,j)");
  return {parse_int(tok.substr(0, comma), line, what),
          parse_int(tok.substr(comma + 1), line, what)};
}

// "2x4" -> (2, 4); both components must be positive.
std::pair<std::int64_t, std::int64_t> parse_pair_x(const std::string& tok,
                                                   int line,
                                                   const char* what) {
  const std::size_t x = tok.find('x');
  if (x == std::string::npos || x == 0 || x + 1 == tok.size())
    throw TraceParseError(line, std::string("bad ") + what + " '" + tok +
                                    "' (expected AxB)");
  const std::int64_t a = parse_int(tok.substr(0, x), line, what);
  const std::int64_t b = parse_int(tok.substr(x + 1), line, what);
  if (a < 1 || b < 1)
    throw TraceParseError(line, std::string(what) + " must be positive");
  return {a, b};
}

std::uint64_t parse_sum(const std::string& tok, int line) {
  if (tok.size() != 16)
    throw TraceParseError(line, "checksum must be 16 hex digits, got '" +
                                    tok + "'");
  std::uint64_t value = 0;
  const char* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), end, value, 16);
  if (ec != std::errc() || ptr != end)
    throw TraceParseError(line, "bad checksum '" + tok + "'");
  return value;
}

TraceOp parse_op(const std::vector<std::string>& tok, int line) {
  TraceOp op;
  if (tok[0] == "R")
    op.dir = TraceOp::Dir::kRead;
  else if (tok[0] == "W")
    op.dir = TraceOp::Dir::kWrite;
  else
    throw TraceParseError(line, "unknown direction '" + tok[0] +
                                    "' (expected R or W)");
  if (tok.size() < 4 || tok[2] != "@")
    throw TraceParseError(line,
                          "expected '<dir> <pattern> @ <i,j> ...'");
  try {
    op.kind = access::pattern_from_name(tok[1]);
  } catch (const Error&) {
    throw TraceParseError(line, "unknown pattern '" + tok[1] + "'");
  }
  op.anchor = parse_coord(tok[3], line, "anchor");

  std::size_t i = 4;
  if (i < tok.size() && tok[i].size() > 1 && tok[i][0] == 'x') {
    op.count = parse_int(tok[i].substr(1), line, "count");
    if (op.count < 1) throw TraceParseError(line, "count must be >= 1");
    ++i;
  }
  if (i < tok.size() && tok[i] == "step") {
    if (i + 1 >= tok.size())
      throw TraceParseError(line, "'step' needs a stride");
    op.stride = parse_coord(tok[i + 1], line, "stride");
    i += 2;
  }
  if (i < tok.size() && tok[i] == "sum") {
    if (i + 1 >= tok.size())
      throw TraceParseError(line, "'sum' needs a checksum");
    op.checksum = parse_sum(tok[i + 1], line);
    i += 2;
  }
  if (i != tok.size())
    throw TraceParseError(line, "trailing junk '" + tok[i] + "'");
  return op;
}

}  // namespace

RecordedTrace parse_trace(std::istream& in) {
  RecordedTrace trace;
  std::string line;
  int lineno = 0;
  bool saw_magic = false, saw_geometry = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    if (!saw_magic) {
      if (tok.size() != 2 || tok[0] != "polymem-trace" || tok[1] != "v1")
        throw TraceParseError(lineno,
                              "expected header 'polymem-trace v1'");
      saw_magic = true;
      continue;
    }
    if (!saw_geometry) {
      if (tok.size() != 6 || tok[0] != "geometry" || tok[2] != "space" ||
          tok[4] != "seed")
        throw TraceParseError(
            lineno, "expected 'geometry PxQ space HxW seed N'");
      const auto [p, q] = parse_pair_x(tok[1], lineno, "geometry");
      const auto [h, w] = parse_pair_x(tok[3], lineno, "space");
      trace.p = static_cast<unsigned>(p);
      trace.q = static_cast<unsigned>(q);
      trace.height = h;
      trace.width = w;
      trace.seed =
          static_cast<std::uint64_t>(parse_int(tok[5], lineno, "seed"));
      saw_geometry = true;
      continue;
    }
    trace.ops.push_back(parse_op(tok, lineno));
  }
  if (!saw_magic)
    throw TraceParseError(lineno + 1, "missing 'polymem-trace v1' header");
  if (!saw_geometry)
    throw TraceParseError(lineno + 1, "missing geometry header");
  return trace;
}

RecordedTrace parse_trace_text(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

RecordedTrace parse_trace_file(const std::string& path) {
  std::ifstream in(path);
  POLYMEM_REQUIRE(in.good(), "cannot open trace file: " + path);
  return parse_trace(in);
}

void print_trace(std::ostream& out, const RecordedTrace& trace) {
  out << "polymem-trace v1\n"
      << "geometry " << trace.p << "x" << trace.q << " space "
      << trace.height << "x" << trace.width << " seed " << trace.seed
      << "\n";
  char sum[17];
  for (const TraceOp& op : trace.ops) {
    out << trace_dir_name(op.dir) << " " << access::pattern_name(op.kind)
        << " @ " << op.anchor.i << "," << op.anchor.j << " x" << op.count;
    if (op.count > 1)
      out << " step " << op.stride.i << "," << op.stride.j;
    if (op.checksum) {
      std::snprintf(sum, sizeof(sum), "%016llx",
                    static_cast<unsigned long long>(*op.checksum));
      out << " sum " << sum;
    }
    out << "\n";
  }
}

std::string trace_to_string(const RecordedTrace& trace) {
  std::ostringstream out;
  print_trace(out, trace);
  return out.str();
}

void write_trace_file(const std::string& path, const RecordedTrace& trace) {
  std::ofstream out(path);
  POLYMEM_REQUIRE(out.good(), "cannot write trace file: " + path);
  print_trace(out, trace);
}

// ---- canonical data model ------------------------------------------------

std::uint64_t canonical_cell(std::uint64_t seed, std::int64_t width,
                             Coord c) {
  return splitmix(seed ^ static_cast<std::uint64_t>(c.i * width + c.j));
}

std::uint64_t canonical_write_word(std::uint64_t seed, std::int64_t op,
                                   std::int64_t w) {
  return splitmix(splitmix(seed ^ kWriteTag ^ static_cast<std::uint64_t>(op)) ^
                  static_cast<std::uint64_t>(w));
}

std::uint64_t fnv1a(const std::uint64_t* words, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i)
    for (int b = 0; b < 8; ++b) {
      h ^= (words[i] >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  return h;
}

HostReplay host_replay(const RecordedTrace& trace) {
  POLYMEM_REQUIRE(trace.height >= 1 && trace.width >= 1,
                  "trace has an empty address space");
  HostReplay result;
  result.memory.resize(static_cast<std::size_t>(trace.height * trace.width));
  for (std::int64_t i = 0; i < trace.height; ++i)
    for (std::int64_t j = 0; j < trace.width; ++j)
      result.memory[static_cast<std::size_t>(i * trace.width + j)] =
          canonical_cell(trace.seed, trace.width, {i, j});

  const auto lanes = static_cast<std::int64_t>(trace.p) * trace.q;
  std::vector<Coord> coords;
  std::vector<std::uint64_t> words;
  result.checksums.reserve(trace.ops.size());
  for (std::size_t k = 0; k < trace.ops.size(); ++k) {
    const TraceOp& op = trace.ops[k];
    words.clear();
    words.reserve(static_cast<std::size_t>(op.count * lanes));
    for (std::int64_t t = 0; t < op.count; ++t) {
      const ParallelAccess a{op.kind,
                             {op.anchor.i + t * op.stride.i,
                              op.anchor.j + t * op.stride.j}};
      access::expand_into(a, trace.p, trace.q, coords);
      for (std::size_t l = 0; l < coords.size(); ++l) {
        const Coord c = coords[l];
        POLYMEM_REQUIRE(c.i >= 0 && c.i < trace.height && c.j >= 0 &&
                            c.j < trace.width,
                        "trace op " + std::to_string(k) +
                            " leaves the address space");
        const auto flat = static_cast<std::size_t>(c.i * trace.width + c.j);
        if (op.dir == TraceOp::Dir::kRead) {
          words.push_back(result.memory[flat]);
        } else {
          const std::uint64_t v = canonical_write_word(
              trace.seed, static_cast<std::int64_t>(k),
              t * lanes + static_cast<std::int64_t>(l));
          result.memory[flat] = v;
          words.push_back(v);
        }
      }
    }
    result.checksums.push_back(fnv1a(words.data(), words.size()));
  }
  return result;
}

void annotate_checksums(RecordedTrace& trace) {
  const HostReplay host = host_replay(trace);
  for (std::size_t k = 0; k < trace.ops.size(); ++k)
    trace.ops[k].checksum = host.checksums[k];
}

// ---- recording -----------------------------------------------------------

TraceRecorder::TraceRecorder(unsigned p, unsigned q, std::int64_t height,
                             std::int64_t width, std::uint64_t seed) {
  POLYMEM_REQUIRE(p >= 1 && q >= 1, "bank geometry must be at least 1x1");
  POLYMEM_REQUIRE(height >= 1 && width >= 1,
                  "address space must be non-empty");
  trace_.p = p;
  trace_.q = q;
  trace_.height = height;
  trace_.width = width;
  trace_.seed = seed;
  run_.count = 0;
}

std::int64_t TraceRecorder::ops_recorded() const {
  return static_cast<std::int64_t>(trace_.ops.size()) +
         (run_.count > 0 ? 1 : 0);
}

void TraceRecorder::flush_run() {
  if (run_.count == 0) return;
  if (run_.count == 1) run_.stride = {0, 0};
  trace_.ops.push_back(run_);
  run_.count = 0;
  have_stride_ = false;
}

void TraceRecorder::add(TraceOp::Dir dir, const ParallelAccess& access) {
  if (observer_ != nullptr) observer_->on_access(dir, access);
  if (run_.count > 0 && dir == run_.dir && access.kind == run_.kind) {
    if (!have_stride_) {
      run_.stride = {access.anchor.i - run_.anchor.i,
                     access.anchor.j - run_.anchor.j};
      have_stride_ = true;
      next_ = {access.anchor.i + run_.stride.i,
               access.anchor.j + run_.stride.j};
      ++run_.count;
      return;
    }
    if (access.anchor == next_) {
      next_ = {next_.i + run_.stride.i, next_.j + run_.stride.j};
      ++run_.count;
      return;
    }
  }
  flush_run();
  run_.dir = dir;
  run_.kind = access.kind;
  run_.anchor = access.anchor;
  run_.stride = {0, 0};
  run_.count = 1;
  run_.checksum.reset();
  have_stride_ = false;
}

void TraceRecorder::add_batch(TraceOp::Dir dir,
                              const core::AccessBatch& batch) {
  for (std::int64_t t = 0; t < batch.count(); ++t) add(dir, batch.access(t));
}

RecordedTrace TraceRecorder::finish() {
  flush_run();
  annotate_checksums(trace_);
  RecordedTrace out = trace_;
  trace_.ops.clear();
  return out;
}

}  // namespace polymem::sched
