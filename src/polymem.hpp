// Umbrella header: the complete public API of the PolyMem library.
//
//   #include "polymem.hpp"
//
// pulls in everything a downstream application needs:
//
//   core    — PolyMem / CyclePolyMem, the parallel memory itself
//   access  — patterns, regions, 2D coordinates
//   apps    — verified application kernels (transpose, stencil, matvec)
//   maf     — schemes, module assignment functions, the capability oracle
//   prf     — logical registers (runtime polymorphism, paper Fig. 2)
//   hw      — BRAM/crossbar/Benes/FIFO/clock simulation primitives
//   maxsim  — the simulated Maxeler platform (PCIe, LMem, kernels, DMA)
//   stream  — the STREAM benchmark design and host driver
//   synth   — device database, resource and frequency models
//   dse     — design-space exploration and table/figure reports
//   sched   — access traces, set covering, the schedule optimiser
//
// Individual module headers remain includable on their own for faster
// incremental builds.
#pragma once

#include "access/pattern.hpp"
#include "access/region.hpp"
#include "apps/matvec_app.hpp"
#include "apps/stencil_app.hpp"
#include "apps/transpose_app.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/cycle_polymem.hpp"
#include "core/layout.hpp"
#include "core/polymem.hpp"
#include "dse/explorer.hpp"
#include "dse/report.hpp"
#include "hw/benes.hpp"
#include "hw/bram.hpp"
#include "hw/clock.hpp"
#include "hw/crossbar.hpp"
#include "hw/fifo.hpp"
#include "hw/pipeline.hpp"
#include "maf/addressing.hpp"
#include "maf/conflict.hpp"
#include "maf/maf.hpp"
#include "maf/maf_table.hpp"
#include "maf/scheme.hpp"
#include "maxsim/dfe.hpp"
#include "maxsim/dma.hpp"
#include "maxsim/kernel.hpp"
#include "maxsim/lmem.hpp"
#include "maxsim/manager.hpp"
#include "maxsim/pcie.hpp"
#include "prf/fig2.hpp"
#include "prf/register_file.hpp"
#include "sched/execute.hpp"
#include "sched/scheduler.hpp"
#include "sched/setcover.hpp"
#include "sched/trace.hpp"
#include "stream/host.hpp"
#include "synth/calibration.hpp"
#include "synth/fmax_model.hpp"
#include "synth/resource_model.hpp"
#include "synth/virtex6.hpp"
