// Parallel execution runtime (docs/ARCHITECTURE.md, "Parallel runtime").
//
// The paper's design is parallel twice over — p*q independent BRAM banks
// per access and up to four replicated read ports (Fig. 3) — and the DSE
// grid of Sec. IV is a set of fully independent design points. This module
// is the host-side mirror of that parallelism: a small work-stealing
// thread pool plus a deterministic `parallel_for` that the DSE sweep
// (dse/explorer.hpp), the concurrent multi-port read engine
// (core::PolyMem::read_batch_mt) and the benchmark harness all share.
//
// Design rules, in priority order:
//  1. *Determinism.* Work is identified by its index, never by the worker
//     that ran it: results land in slot `i`, and randomized workloads
//     derive their RNG stream from `derive_seed(seed, i)` — so any thread
//     count (including 1) produces bit-identical output.
//  2. *Work stealing at chunk granularity.* parallel_for splits the index
//     range into one contiguous sub-range per participant; a participant
//     that drains its own range steals the upper half of the fullest
//     remaining range. Regular grids stay cache-local, irregular ones
//     (DSE points whose PolyMem capacity varies 8x) still balance.
//  3. *The caller works too.* parallel_for enlists the calling thread as
//     participant 0, so a pool of size 0 degrades to plain serial
//     execution with zero synchronisation surprises — that is the
//     reference path the differential tests compare against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace polymem::runtime {

/// A fixed-size pool of worker threads consuming submitted tasks.
/// Tasks are arbitrary callables; parallel_for (below) is the structured
/// entry point virtually all library code uses.
class ThreadPool {
 public:
  /// `threads` worker threads (0 is valid: every operation then runs on
  /// the calling thread). `hardware()` picks the host's concurrency.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Host hardware concurrency (at least 1).
  static unsigned hardware_threads();

  /// Pool sized to the host (size() == hardware_threads()).
  static ThreadPool& hardware();

  /// Enqueues one task. Tasks must not throw (parallel_for wraps user
  /// callables and routes their exceptions; raw submit is for internal
  /// and test use). On a pool of size 0 the task runs inline on the
  /// calling thread (design rule 3: no workers degrades to serial).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished (test/teardown aid;
  /// parallel_for has its own completion tracking).
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned running_ = 0;
  bool stop_ = false;
};

namespace detail {

/// One participant's contiguous slice of the iteration space. `next` and
/// `end` move under `lock` only: owners take `grain` indices from the
/// front, thieves take the upper half from the back, and neither can
/// observe a torn range.
struct WorkRange {
  std::mutex lock;
  std::int64_t next = 0;
  std::int64_t end = 0;
};

class ParallelForJob {
 public:
  ParallelForJob(std::int64_t begin, std::int64_t end, unsigned participants,
                 std::int64_t grain);

  /// Claims up to `grain` indices for `worker`, preferring its own range,
  /// then stealing. Returns false when the whole iteration space is done.
  bool claim(unsigned worker, std::int64_t& lo, std::int64_t& hi);

  void record_exception(std::exception_ptr error);
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Called by each participant when it can claim no more work; the last
  /// one wakes the caller. Rethrows the first recorded exception in the
  /// caller once every participant has quiesced.
  void participant_done();
  void wait_and_rethrow(unsigned participants);

 private:
  std::vector<std::unique_ptr<WorkRange>> ranges_;
  std::int64_t grain_;
  std::atomic<bool> cancelled_{false};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  unsigned done_count_ = 0;
  std::exception_ptr error_;
};

}  // namespace detail

/// Runs `fn(i, worker)` for every i in [begin, end), distributed over the
/// pool's workers plus the calling thread. `worker` is a dense stable id
/// in [0, pool.size()] — 0 is the caller — usable to index per-participant
/// scratch state. Blocks until the whole range completed; the first
/// exception thrown by `fn` is rethrown here (remaining iterations may be
/// skipped). `grain` is the number of consecutive indices claimed at once.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  Fn&& fn, std::int64_t grain = 1) {
  if (begin >= end) return;
  const unsigned participants = pool.size() + 1;
  if (participants == 1 || end - begin == 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i, 0u);
    return;
  }
  detail::ParallelForJob job(begin, end, participants, grain);
  auto run = [&job, &fn](unsigned worker) {
    std::int64_t lo, hi;
    while (!job.cancelled() && job.claim(worker, lo, hi)) {
      try {
        for (std::int64_t i = lo; i < hi; ++i) fn(i, worker);
      } catch (...) {
        job.record_exception(std::current_exception());
      }
    }
    job.participant_done();
  };
  for (unsigned w = 1; w < participants; ++w) pool.submit([&run, w] { run(w); });
  run(0);
  job.wait_and_rethrow(participants);
}

/// Deterministic per-index seed derivation (splitmix64 over base ^ index):
/// workload generators draw from Rng(derive_seed(seed, i)) so the random
/// stream of element i never depends on which thread computed it or on the
/// thread count. Statistically independent streams for adjacent indices.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace polymem::runtime
