#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace polymem::runtime {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::hardware() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

void ThreadPool::submit(std::function<void()> task) {
  // Design rule 3: a pool of size 0 degrades to serial execution. Without
  // workers a queued task would never run (and wait_idle would block
  // forever), so run it on the caller right away.
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    POLYMEM_REQUIRE(!stop_, "submit on a stopped ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

namespace detail {

ParallelForJob::ParallelForJob(std::int64_t begin, std::int64_t end,
                               unsigned participants, std::int64_t grain)
    : grain_(std::max<std::int64_t>(1, grain)) {
  // One contiguous sub-range per participant, remainder spread over the
  // leading ranges — participant w starts near w/participants of the way
  // through, like a static schedule, and stealing repairs any imbalance.
  ranges_.reserve(participants);
  const std::int64_t total = end - begin;
  const std::int64_t base = total / participants;
  const std::int64_t extra = total % participants;
  std::int64_t at = begin;
  for (unsigned w = 0; w < participants; ++w) {
    auto range = std::make_unique<WorkRange>();
    range->next = at;
    at += base + (w < static_cast<unsigned>(extra) ? 1 : 0);
    range->end = at;
    ranges_.push_back(std::move(range));
  }
  POLYMEM_ASSERT(at == end);
}

bool ParallelForJob::claim(unsigned worker, std::int64_t& lo,
                          std::int64_t& hi) {
  // Own range first (front, cache-friendly order).
  WorkRange& own = *ranges_[worker];
  {
    std::lock_guard<std::mutex> lock(own.lock);
    if (own.next < own.end) {
      lo = own.next;
      hi = std::min(own.end, own.next + grain_);
      own.next = hi;
      return true;
    }
  }
  // Steal: take the upper half of the fullest remaining range. Re-scan
  // until every range is empty — another participant may split a range
  // between our scan and our lock. Ranges are locked one at a time (never
  // nested), so thieves stealing from each other's ranges cannot deadlock.
  for (;;) {
    WorkRange* victim = nullptr;
    std::int64_t best_left = 0;
    for (const auto& range : ranges_) {
      std::lock_guard<std::mutex> lock(range->lock);
      const std::int64_t left = range->end - range->next;
      if (left > best_left) {
        best_left = left;
        victim = range.get();
      }
    }
    if (victim == nullptr) return false;
    std::int64_t steal_lo = 0, steal_hi = 0;
    {
      std::lock_guard<std::mutex> lock(victim->lock);
      const std::int64_t left = victim->end - victim->next;
      if (left <= 0) continue;  // drained between scan and lock; rescan
      if (left <= grain_) {
        // Too small to split: take it whole.
        steal_lo = victim->next;
        steal_hi = victim->end;
        victim->next = victim->end;
      } else {
        const std::int64_t mid = victim->next + left / 2;
        steal_lo = mid;
        steal_hi = victim->end;
        victim->end = mid;
      }
    }
    if (steal_hi - steal_lo <= grain_) {
      lo = steal_lo;
      hi = steal_hi;
      return true;
    }
    // Deposit the loot beyond the first chunk into our own (drained)
    // range, after releasing the victim's lock, so future claims chunk it
    // by `grain` and other thieves can re-steal from it.
    lo = steal_lo;
    hi = steal_lo + grain_;
    WorkRange& mine = *ranges_[worker];
    std::lock_guard<std::mutex> lock(mine.lock);
    mine.next = hi;
    mine.end = steal_hi;
    return true;
  }
}

void ParallelForJob::record_exception(std::exception_ptr error) {
  cancelled_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(done_mutex_);
  if (!error_) error_ = std::move(error);
}

void ParallelForJob::participant_done() {
  std::lock_guard<std::mutex> lock(done_mutex_);
  ++done_count_;
  done_cv_.notify_all();
}

void ParallelForJob::wait_and_rethrow(unsigned participants) {
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_cv_.wait(lock, [&] { return done_count_ == participants; });
  if (error_) std::rethrow_exception(error_);
}

}  // namespace detail

}  // namespace polymem::runtime
