// ShardedService — multi-tenant PolyMem-as-a-service over a shared LMem.
//
// One PolyMem (plus its drain thread) caps the service at a single
// consumer's throughput and at the on-chip capacity. ShardedService
// scales both ways: a large row-major LMem matrix is served by `shards`
// independent PolyMem instances, each with its own TileCache over the
// *shared* board memory (LMem is internally synchronized) and its own
// ServiceEngine drain. Tiles are disjoint across shards — a tile-hash
// routes every request to the one shard owning its anchor tile — so
// shards never need coherence traffic, per-port FIFO still orders one
// client's write->read on the same data, and the drains scale across the
// thread pool's workers.
//
// Routing:
//  - shard  = hash(anchor tile)  — derive_seed keyed splitmix64, so hot
//    tiles spread over shards regardless of the tile grid's shape;
//  - port   = hash(tenant)       — tenants land on stable per-shard
//    queues, keeping each tenant's scan runs contiguous (coalescible)
//    instead of interleaved with other tenants'.
//
// Writes go through the shard's write-back TileCache; flush() publishes
// every shard's dirty tiles to LMem (engines must be idle or stopped).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/tile_cache.hpp"
#include "core/polymem.hpp"
#include "maxsim/dma.hpp"
#include "maxsim/lmem.hpp"
#include "runtime/thread_pool.hpp"
#include "service/engine.hpp"

namespace polymem::service {

struct ShardedOptions {
  /// Independent PolyMem+TileCache+drain instances (>= 1).
  unsigned shards = 2;
  /// Per-shard engine geometry (ports, queue bound, coalesce window).
  EngineOptions engine = {};
  /// Geometry of each shard's PolyMem (validated; every shard is a
  /// replica of this configuration, tiled by FramePool::default_tiling).
  core::PolyMemConfig shard_config;
  cache::EvictionKind eviction = cache::EvictionKind::kLru;
  /// Clock for the caches' DRAM-overlap accounting.
  double clock_hz = 120e6;
};

class ShardedService {
 public:
  /// Serves `matrix` (resident in `lmem`) through `options.shards`
  /// engines. The matrix must be at least one tile tall and wide; both
  /// must outlive the service.
  ShardedService(maxsim::LMem& lmem, const maxsim::LMemMatrix& matrix,
                 ShardedOptions options);

  /// Stops every engine (completing or shedding everything submitted),
  /// but does NOT flush — call flush() first when LMem must be current.
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Routes by anchor tile (shard) and tenant (port) and submits; same
  /// contract as ServiceEngine::submit. The request addresses matrix
  /// coordinates and must fit inside one tile.
  Status submit(Request&& request, RequestId* id_out = nullptr);

  /// Launches one drain per shard (requires pool.size() >= shards(), so
  /// every drain can make progress concurrently).
  void start(runtime::ThreadPool& pool);

  /// Graceful shutdown of every shard's engine.
  void stop();

  /// Writes every shard's dirty tiles back to LMem. Engines must be
  /// stopped or idle (the flush runs on the caller's thread).
  void flush();

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  unsigned ports() const { return options_.engine.ports; }
  std::int64_t tile_rows() const { return tile_rows_; }
  std::int64_t tile_cols() const { return tile_cols_; }

  unsigned shard_of(access::Coord anchor) const;
  unsigned port_of(Tenant tenant) const;

  ServiceEngine& engine(unsigned shard) { return *shards_[shard].engine; }
  cache::TileCache& tile_cache(unsigned shard) {
    return *shards_[shard].cache;
  }

  /// Sum of every shard's engine stats (high-water fields are maxed,
  /// cycles summed — see EngineStats::operator+=).
  EngineStats stats() const;

 private:
  struct Shard {
    std::unique_ptr<core::PolyMem> mem;
    std::unique_ptr<cache::TileCache> cache;
    std::unique_ptr<ServiceEngine> engine;
  };

  ShardedOptions options_;
  std::int64_t tile_rows_ = 0;
  std::int64_t tile_cols_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace polymem::service
