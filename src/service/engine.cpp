#include "service/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace polymem::service {

namespace {

/// Recycled PendingBatch buffers kept between drains; beyond this the
/// extras are freed (the in-flight window is bounded by the modeled
/// latency, so steady state never needs more than a handful).
constexpr std::size_t kBatchPoolCap = 64;

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kAccepted:
      return "accepted";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kRejected:
      return "rejected";
    case Status::kShutdown:
      return "shutdown";
    case Status::kOk:
      return "ok";
  }
  return "unknown";
}

EngineStats& EngineStats::operator+=(const EngineStats& other) {
  accepted += other.accepted;
  shed += other.shed;
  rejected += other.rejected;
  completed_reads += other.completed_reads;
  completed_writes += other.completed_writes;
  shutdown_completions += other.shutdown_completions;
  drained_runs += other.drained_runs;
  drained_requests += other.drained_requests;
  compiled_runs += other.compiled_runs;
  compiled_requests += other.compiled_requests;
  fallback_accesses += other.fallback_accesses;
  tile_misses += other.tile_misses;
  max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
  max_in_flight = std::max(max_in_flight, other.max_in_flight);
  cycles += other.cycles;  // total modeled cycles across engines
  return *this;
}

ServiceEngine::ServiceEngine(core::PolyMem& mem, EngineOptions options)
    : mem_(&mem), options_(options) {
  init_queues();
}

ServiceEngine::ServiceEngine(cache::TileCache& cache, EngineOptions options)
    : mem_(&cache.polymem()),
      cache_(&cache),
      tile_rows_(cache.frames().tile_rows()),
      tile_cols_(cache.frames().tile_cols()),
      options_(options) {
  POLYMEM_REQUIRE(
      cache.options().write_policy == cache::WritePolicy::kWriteBack,
      "service engine requires a write-back tile cache (drains mark frames "
      "dirty; flush() publishes to LMem)");
  init_queues();
}

ServiceEngine::~ServiceEngine() {
  if (started_.load(std::memory_order_acquire) && !stopped_) stop();
  accepting_.store(false, std::memory_order_release);
  // Manual-mode engines (and stragglers that raced stop): everything
  // still queued hears kShutdown, everything executed completes with kOk.
  shutdown_sweep();
  retire_all();
}

void ServiceEngine::init_queues() {
  POLYMEM_REQUIRE(options_.ports >= 1, "service engine needs at least 1 port");
  POLYMEM_REQUIRE(options_.max_coalesce >= 1,
                  "max_coalesce must be at least 1");
  queues_.reserve(options_.ports);
  for (unsigned port = 0; port < options_.ports; ++port) {
    queues_.push_back(std::make_unique<PortQueue>(options_.queue_bound,
                                                  tile_rows_, tile_cols_));
  }
  // kAllPatterns is in enum order, so the array indexes by PatternKind.
  for (std::size_t k = 0; k < std::size(access::kAllPatterns); ++k) {
    support_[k] = maf::probe_support(mem_->maf(), access::kAllPatterns[k]);
  }
}

Status ServiceEngine::validate(const Request& request) const {
  if (request.listener == nullptr) return Status::kRejected;
  const unsigned lanes = mem_->lanes();
  if (request.op == Op::kWrite) {
    if (request.payload.size() != lanes) return Status::kRejected;
  } else if (!request.payload.empty()) {
    return Status::kRejected;
  }
  const auto& config = mem_->config();
  const access::Coord anchor = request.where.anchor;
  if (cache_ == nullptr) {
    if (!access::fits(request.where, config.p, config.q, config.height,
                      config.width)) {
      return Status::kRejected;
    }
  } else {
    // Matrix coordinates: inside the matrix AND inside the anchor's tile,
    // so the whole access translates to its cache frame with one offset.
    const auto ext =
        access::pattern_extent(request.where.kind, config.p, config.q);
    const maxsim::LMemMatrix& matrix = cache_->matrix();
    const std::int64_t i0 = anchor.i;
    const std::int64_t c0 = anchor.j + ext.col_offset;
    if (i0 < 0 || c0 < 0 || anchor.j < 0) return Status::kRejected;
    if (i0 + ext.rows > matrix.rows || c0 + ext.cols > matrix.cols) {
      return Status::kRejected;
    }
    const std::int64_t ti = i0 / tile_rows_;
    const std::int64_t tj = anchor.j / tile_cols_;
    if ((i0 + ext.rows - 1) / tile_rows_ != ti) return Status::kRejected;
    if (c0 / tile_cols_ != tj || (c0 + ext.cols - 1) / tile_cols_ != tj) {
      return Status::kRejected;
    }
  }
  const maf::SupportLevel level =
      support_[static_cast<std::size_t>(request.where.kind)];
  if (level == maf::SupportLevel::kNone) return Status::kRejected;
  if (level == maf::SupportLevel::kAligned &&
      (anchor.i % config.p != 0 || anchor.j % config.q != 0)) {
    // Frame origins and tile dimensions are bank-grid aligned (FramePool
    // invariant), so matrix-coordinate alignment survives translation.
    return Status::kRejected;
  }
  return Status::kAccepted;
}

Status ServiceEngine::submit(unsigned port, Request&& request,
                             RequestId* id_out) {
  POLYMEM_REQUIRE(port < queues_.size(), "service port out of range");
  if (!accepting_.load(std::memory_order_acquire)) return Status::kShutdown;
  const Status verdict = validate(request);
  if (verdict != Status::kAccepted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return verdict;
  }
  const RequestId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  PendingRequest pending{std::move(request), id,
                         cycle_.load(std::memory_order_relaxed)};
  const Status pushed = queues_[port]->try_push(std::move(pending));
  if (pushed != Status::kAccepted) {
    // Typed shedding: hand the request (payload included) back intact so
    // the caller can retry. The queue counted the shed.
    request = std::move(pending.request);
    return pushed;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (id_out != nullptr) *id_out = id;
  // Wake the drain only when it published itself idle: the seq_cst pair
  // (push -> load idle here, store idle -> recheck queues there) makes a
  // missed wakeup impossible without serializing every submit on the
  // wake mutex.
  if (drain_idle_.load(std::memory_order_seq_cst)) {
    {
      const std::lock_guard<std::mutex> lock(wake_mutex_);
      work_signal_ = true;
    }
    wake_cv_.notify_one();
  }
  return Status::kAccepted;
}

void ServiceEngine::start(runtime::ThreadPool& pool) {
  POLYMEM_REQUIRE(!started_.load(std::memory_order_acquire),
                  "service engine already started");
  POLYMEM_REQUIRE(pool.size() >= 1,
                  "service drain needs a worker thread (a 0-size pool would "
                  "run the drain loop inline forever)");
  started_.store(true, std::memory_order_release);
  pool.submit([this] { drain_loop(); });
}

void ServiceEngine::stop() {
  if (stopped_) return;
  accepting_.store(false, std::memory_order_release);
  if (started_.load(std::memory_order_acquire)) {
    {
      const std::lock_guard<std::mutex> lock(wake_mutex_);
      stop_requested_ = true;
    }
    wake_cv_.notify_all();
    std::unique_lock<std::mutex> lock(wake_mutex_);
    exit_cv_.wait(lock, [this] { return exited_; });
  }
  // The drain has exited (or never ran): its state is ours now. Complete
  // stragglers that raced admission, then retire whatever is in flight.
  shutdown_sweep();
  retire_all();
  stopped_ = true;
}

bool ServiceEngine::drain_once() {
  POLYMEM_REQUIRE(!started_.load(std::memory_order_acquire),
                  "manual pump on a started engine (the drain thread owns "
                  "the PolyMem)");
  return service_once();
}

void ServiceEngine::run_until_idle() {
  POLYMEM_REQUIRE(!started_.load(std::memory_order_acquire),
                  "manual pump on a started engine (the drain thread owns "
                  "the PolyMem)");
  while (service_once()) {
  }
}

bool ServiceEngine::service_once() {
  bool progress = retire_due();
  const unsigned nports = static_cast<unsigned>(queues_.size());
  for (unsigned k = 0; k < nports; ++k) {
    const unsigned port = (round_robin_ + k) % nports;
    core::AccessBatch batch;
    if (queues_[port]->pop_run(options_.max_coalesce, run_, batch) == 0) {
      continue;
    }
    round_robin_ = (port + 1) % nports;
    execute_run(port, batch);
    return true;
  }
  if (!in_flight_.empty()) {
    // Nothing left to issue: fast-forward the clock to the next
    // completion instead of spinning cycle by cycle.
    cycle_.store(in_flight_.begin()->first, std::memory_order_relaxed);
    retire_due();
    return true;
  }
  return progress;
}

void ServiceEngine::execute_run(unsigned queue_port,
                                const core::AccessBatch& batch) {
  const std::size_t n = run_.size();
  const unsigned lanes = mem_->lanes();
  const Op op = run_.front().request.op;
  core::AccessBatch exec = batch;
  std::uint64_t extra_latency = 0;
  int dirty_frame = -1;
  if (cache_ != nullptr) {
    const std::int64_t ti = batch.start.i / tile_rows_;
    const std::int64_t tj = batch.start.j / tile_cols_;
    if (!cache_->resident(ti, tj)) {
      extra_latency = options_.miss_penalty_cycles;
      tile_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    const cache::TileCache::TileRef ref = cache_->acquire(ti, tj);
    exec.start = {ref.origin.i + (batch.start.i - ti * tile_rows_),
                  ref.origin.j + (batch.start.j - tj * tile_cols_)};
    if (op == Op::kWrite) dirty_frame = ref.frame;
    cache_->note_kernel_accesses(n, static_cast<std::uint64_t>(n) * lanes);
  }
  const unsigned port = queue_port % mem_->config().read_ports;
  PendingBatch pending = take_batch_buffer();
  const bool compiled = n >= 2 && mem_->compile_batch(exec, plan_);
  if (op == Op::kRead) {
    pending.data.resize(n * lanes);
    const std::span<Word> out(pending.data);
    if (compiled) {
      mem_->read_compiled(plan_, port, out);
    } else {
      for (std::size_t t = 0; t < n; ++t) {
        mem_->read_into(exec.access(static_cast<std::int64_t>(t)), port,
                        out.subspan(t * lanes, lanes));
      }
    }
  } else {
    write_staging_.clear();
    for (const PendingRequest& pr : run_) {
      write_staging_.insert(write_staging_.end(), pr.request.payload.begin(),
                            pr.request.payload.end());
    }
    const std::span<const Word> data(write_staging_);
    if (compiled) {
      mem_->write_compiled(plan_, data);
    } else {
      for (std::size_t t = 0; t < n; ++t) {
        mem_->write(exec.access(static_cast<std::int64_t>(t)),
                    data.subspan(t * lanes, lanes));
      }
    }
    if (dirty_frame >= 0) cache_->mark_dirty(dirty_frame);
  }
  if (compiled) {
    compiled_runs_.fetch_add(1, std::memory_order_relaxed);
    compiled_requests_.fetch_add(n, std::memory_order_relaxed);
  } else {
    fallback_accesses_.fetch_add(n, std::memory_order_relaxed);
  }
  drained_runs_.fetch_add(1, std::memory_order_relaxed);
  drained_requests_.fetch_add(n, std::memory_order_relaxed);

  // One access per cycle; a tile fault stalls the drain clock itself
  // (acquire is synchronous), so later requests on the port never
  // complete before an earlier miss. The run completes read_latency
  // pipeline cycles after its last issue.
  const std::uint64_t advance = n + extra_latency;
  const std::uint64_t issued =
      cycle_.fetch_add(advance, std::memory_order_relaxed) + advance;
  const std::uint64_t complete_cycle = issued + mem_->config().read_latency;
  pending.requests.reserve(n);
  for (const PendingRequest& pr : run_) {
    pending.requests.push_back({pr.id, pr.request.tag, pr.request.tenant, op,
                                pr.request.listener, pr.submit_cycle,
                                sequence_++});
  }
  in_flight_requests_ += n;
  if (in_flight_requests_ > max_in_flight_.load(std::memory_order_relaxed)) {
    max_in_flight_.store(in_flight_requests_, std::memory_order_relaxed);
  }
  in_flight_.emplace(complete_cycle, std::move(pending));
}

bool ServiceEngine::retire_due() {
  bool any = false;
  const std::uint64_t now = cycle_.load(std::memory_order_relaxed);
  const unsigned lanes = mem_->lanes();
  while (!in_flight_.empty() && in_flight_.begin()->first <= now) {
    auto node = in_flight_.extract(in_flight_.begin());
    PendingBatch& pending = node.mapped();
    for (std::size_t x = 0; x < pending.requests.size(); ++x) {
      const Pending& req = pending.requests[x];
      Completion completion;
      completion.id = req.id;
      completion.tag = req.tag;
      completion.tenant = req.tenant;
      completion.op = req.op;
      completion.status = Status::kOk;
      if (req.op == Op::kRead) {
        completion.data =
            std::span<const Word>(pending.data).subspan(x * lanes, lanes);
        completed_reads_.fetch_add(1, std::memory_order_relaxed);
      } else {
        completed_writes_.fetch_add(1, std::memory_order_relaxed);
      }
      completion.sequence = req.sequence;
      completion.submit_cycle = req.submit_cycle;
      completion.complete_cycle = node.key();
      req.listener->on_complete(completion);
      any = true;
    }
    in_flight_requests_ -= pending.requests.size();
    pending.requests.clear();
    pending.data.clear();
    if (batch_pool_.size() < kBatchPoolCap) {
      batch_pool_.push_back(std::move(pending));
    }
  }
  return any;
}

void ServiceEngine::retire_all() {
  if (in_flight_.empty()) return;
  cycle_.store(in_flight_.rbegin()->first, std::memory_order_relaxed);
  retire_due();
}

void ServiceEngine::shutdown_sweep() {
  std::vector<PendingRequest> swept;
  for (const auto& queue : queues_) {
    queue->pop_all(swept);
    for (PendingRequest& pr : swept) {
      Completion completion;
      completion.id = pr.id;
      completion.tag = pr.request.tag;
      completion.tenant = pr.request.tenant;
      completion.op = pr.request.op;
      completion.status = Status::kShutdown;
      completion.sequence = sequence_++;
      completion.submit_cycle = pr.submit_cycle;
      completion.complete_cycle = cycle_.load(std::memory_order_relaxed);
      shutdown_completions_.fetch_add(1, std::memory_order_relaxed);
      pr.request.listener->on_complete(completion);
    }
  }
}

bool ServiceEngine::any_queued() const {
  for (const auto& queue : queues_) {
    if (!queue->empty()) return true;
  }
  return false;
}

void ServiceEngine::drain_loop() {
  for (;;) {
    while (service_once()) {
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_requested_) break;
    if (work_signal_) {
      work_signal_ = false;
      continue;
    }
    drain_idle_.store(true, std::memory_order_seq_cst);
    if (any_queued()) {
      // A submit slipped in between our last drain and publishing idle;
      // it may have read drain_idle_ == false and skipped the wakeup.
      drain_idle_.store(false, std::memory_order_relaxed);
      continue;
    }
    wake_cv_.wait(lock, [this] { return stop_requested_ || work_signal_; });
    work_signal_ = false;
    drain_idle_.store(false, std::memory_order_relaxed);
    if (stop_requested_) break;
  }
  // Shutdown: admission is closed (stop() cleared accepting_ before
  // signalling). Serve everything accepted, retire every completion, and
  // hand leftover sweep duty back to stop().
  while (service_once()) {
  }
  retire_all();
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    exited_ = true;
  }
  exit_cv_.notify_all();
}

ServiceEngine::PendingBatch ServiceEngine::take_batch_buffer() {
  if (batch_pool_.empty()) return {};
  PendingBatch pending = std::move(batch_pool_.back());
  batch_pool_.pop_back();
  return pending;
}

EngineStats ServiceEngine::stats() const {
  EngineStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed_reads = completed_reads_.load(std::memory_order_relaxed);
  s.completed_writes = completed_writes_.load(std::memory_order_relaxed);
  s.shutdown_completions =
      shutdown_completions_.load(std::memory_order_relaxed);
  s.drained_runs = drained_runs_.load(std::memory_order_relaxed);
  s.drained_requests = drained_requests_.load(std::memory_order_relaxed);
  s.compiled_runs = compiled_runs_.load(std::memory_order_relaxed);
  s.compiled_requests = compiled_requests_.load(std::memory_order_relaxed);
  s.fallback_accesses = fallback_accesses_.load(std::memory_order_relaxed);
  s.tile_misses = tile_misses_.load(std::memory_order_relaxed);
  s.max_in_flight = max_in_flight_.load(std::memory_order_relaxed);
  s.cycles = cycle_.load(std::memory_order_relaxed);
  for (const auto& queue : queues_) {
    const PortQueueStats qs = queue->stats();
    s.shed += qs.shed;
    s.max_queue_depth = std::max(s.max_queue_depth, qs.max_depth);
  }
  return s;
}

}  // namespace polymem::service
