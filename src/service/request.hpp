// PolyMem-as-a-service: request, completion and listener types.
//
// The paper positions PolyMem as a high-bandwidth parallel memory serving
// many concurrent access streams; a production memory serves *requests*,
// not function calls. This module defines the request plane shared by the
// single-memory engine (service/engine.hpp) and the multi-tenant sharded
// router (service/sharded.hpp), modeled on mgsim's ParallelMemory idiom:
// clients submit (tenant, access, payload) tuples into bounded per-port
// queues and registered listeners receive cycle-ordered completions.
//
// Completions are delivered through a listener interface rather than a
// per-request std::function so the hot path allocates nothing for reads:
// a Request is a flat struct, and the Completion's data span aliases
// engine-owned storage that is valid only during the callback.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "access/pattern.hpp"
#include "hw/bram.hpp"

namespace polymem::service {

using hw::Word;

/// Engine-assigned request identity, unique per engine, in submit order.
using RequestId = std::uint64_t;

/// Client identity: drives port placement (tenants hash to independent
/// ports) and shows up in completions for per-tenant accounting.
using Tenant = std::uint32_t;

enum class Op : std::uint8_t { kRead, kWrite };

/// Submission and completion status. Submission returns kAccepted,
/// kOverloaded (the bounded port queue is full — typed shedding, never
/// blocking, never a silent drop), kRejected (the request can never be
/// served: out of bounds, unsupported pattern, bad payload size) or
/// kShutdown (the engine stopped accepting). Completions carry kOk, or
/// kShutdown for requests still queued when the engine wound down.
enum class Status : std::uint8_t {
  kAccepted,
  kOverloaded,
  kRejected,
  kShutdown,
  kOk,
};

const char* status_name(Status status);

class CompletionListener;

/// One parallel-access request. `where` is in engine coordinates: PolyMem
/// coordinates for a direct engine, matrix coordinates for a sharded /
/// tile-cached engine. `tag` is an opaque client cookie echoed in the
/// completion (slot index, trace position, ...). `listener` receives the
/// completion and must outlive it. Writes move their lanes() payload
/// words into the request; reads leave `payload` empty.
struct Request {
  Tenant tenant = 0;
  Op op = Op::kRead;
  access::ParallelAccess where;
  std::uint64_t tag = 0;
  CompletionListener* listener = nullptr;
  std::vector<Word> payload;
};

/// Delivered to the request's listener exactly once, on the engine's
/// drain thread, in completion-cycle order. `data` (reads only) aliases
/// engine-owned storage and is valid only during the callback — copy it
/// out if it must survive. `sequence` is the engine's execution order
/// (the serial-replay key the differential oracle uses), `submit_cycle` /
/// `complete_cycle` are the modeled clock stamps whose difference is the
/// in-engine latency in cycles.
struct Completion {
  RequestId id = 0;
  std::uint64_t tag = 0;
  Tenant tenant = 0;
  Op op = Op::kRead;
  Status status = Status::kOk;
  std::span<const Word> data;
  std::uint64_t sequence = 0;
  std::uint64_t submit_cycle = 0;
  std::uint64_t complete_cycle = 0;
};

/// Completion sink, registered per request (mgsim's RegisterListener
/// idiom, but carried in the request so one engine can serve callers
/// with different sinks). Callbacks run on the drain thread and must be
/// cheap; re-submitting to the same engine from a callback is allowed
/// (the drain does not hold queue locks while delivering).
class CompletionListener {
 public:
  virtual ~CompletionListener() = default;
  virtual void on_complete(const Completion& completion) = 0;
};

}  // namespace polymem::service
