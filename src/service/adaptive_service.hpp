// AdaptiveService — per-tenant adaptive matrices behind the service
// request plane.
//
// ShardedService scales one matrix across shards; AdaptiveService scales
// *layouts* across tenants. Every tenant owns a private
// adapt::AdaptiveMatrix (same geometry, independent profiler + policy +
// epoch), so a tenant that scans rows converges to a row-friendly scheme
// while its neighbour scanning diagonals converges to ReO — the paper's
// polymorphism applied per client instead of per build. Migrations for
// all tenants share one runtime::ThreadPool (AdaptiveOptions::pool), and
// every one is differentially verified before its epoch flip, so a
// tenant's layout can change under live traffic without the service ever
// returning a stale or torn word.
//
// The request plane is the same typed one as service/engine.hpp
// (Status::kRejected for malformed accesses), but served synchronously:
// AdaptiveMatrix already serializes client ops internally, so reads and
// writes from any thread are safe, and runs submitted via read_run /
// write_run profile as aligned runs (the signal kAligned schemes need).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "adapt/adaptive_matrix.hpp"
#include "core/polymem.hpp"
#include "service/request.hpp"

namespace polymem::service {

struct AdaptiveServiceOptions {
  /// Geometry of every tenant's private matrix (scheme = each tenant's
  /// *initial* scheme; the engine migrates from there independently).
  core::PolyMemConfig tenant_config;
  /// Profiler/policy/migration knobs, shared by all tenants. Set
  /// `adaptive.pool` to host the copy-forward migrations off the request
  /// path; nullptr runs them inline on the triggering request.
  adapt::AdaptiveOptions adaptive;
};

class AdaptiveService {
 public:
  explicit AdaptiveService(AdaptiveServiceOptions options);

  AdaptiveService(const AdaptiveService&) = delete;
  AdaptiveService& operator=(const AdaptiveService&) = delete;

  /// The tenant's matrix, created on first use (thread-safe; the
  /// reference stays valid for the service's lifetime).
  adapt::AdaptiveMatrix& tenant_matrix(Tenant tenant);

  /// Synchronous single-access ops. Return kOk, or kRejected when the
  /// access leaves the tenant's space or the span size != lanes().
  Status read(Tenant tenant, const access::ParallelAccess& where,
              std::span<Word> out);
  Status write(Tenant tenant, const access::ParallelAccess& where,
               std::span<const Word> data);

  /// Constant-stride runs (count accesses, spans of count * lanes()
  /// words) — the coalesced form the profiler sees as one aligned run.
  Status read_run(Tenant tenant, const access::ParallelAccess& first,
                  access::Coord stride, std::int64_t count,
                  std::span<Word> out);
  Status write_run(Tenant tenant, const access::ParallelAccess& first,
                   access::Coord stride, std::int64_t count,
                   std::span<const Word> data);

  /// Tenants materialized so far, in id order.
  std::vector<Tenant> tenants() const;

  /// Blocks until no tenant has a migration in flight.
  void wait_idle();

  const AdaptiveServiceOptions& options() const { return options_; }
  unsigned lanes() const { return options_.tenant_config.lanes(); }

 private:
  Status validate(std::int64_t count, std::size_t span_words) const;

  AdaptiveServiceOptions options_;
  mutable std::shared_mutex tenants_mutex_;
  std::map<Tenant, std::unique_ptr<adapt::AdaptiveMatrix>> tenants_;
};

}  // namespace polymem::service
