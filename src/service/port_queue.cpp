#include "service/port_queue.hpp"

#include "common/error.hpp"

namespace polymem::service {

PortQueue::PortQueue(std::size_t bound, std::int64_t tile_rows,
                     std::int64_t tile_cols)
    : bound_(bound), tile_rows_(tile_rows), tile_cols_(tile_cols) {
  POLYMEM_REQUIRE(bound > 0, "port queue bound must be positive");
  POLYMEM_REQUIRE((tile_rows == 0) == (tile_cols == 0),
                  "tile constraint needs both dimensions (or neither)");
  ring_.resize(bound);
}

Status PortQueue::try_push(PendingRequest&& pending) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (size_ >= bound_) {
    ++shed_;
    return Status::kOverloaded;
  }
  ring_[slot(size_)] = std::move(pending);
  ++size_;
  ++pushed_;
  depth_high_water_.record(size_);
  return Status::kAccepted;
}

bool PortQueue::same_tile(const access::Coord& a,
                          const access::Coord& b) const {
  if (tile_rows_ == 0) return true;
  return a.i / tile_rows_ == b.i / tile_rows_ &&
         a.j / tile_cols_ == b.j / tile_cols_;
}

std::size_t PortQueue::pop_run(std::size_t max_run,
                               std::vector<PendingRequest>& run,
                               core::AccessBatch& batch) {
  run.clear();
  core::BatchCoalescer coalescer;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (size_ == 0) return 0;
  const Op op = ring_[head_].request.op;
  const access::Coord first = ring_[head_].request.where.anchor;
  while (run.size() < max_run && size_ > 0) {
    const PendingRequest& next = ring_[head_];
    if (next.request.op != op) break;
    if (!same_tile(first, next.request.where.anchor)) break;
    if (!coalescer.try_add(next.request.where)) break;
    run.push_back(take_front());
  }
  batch = coalescer.take();
  return run.size();
}

std::size_t PortQueue::pop_all(std::vector<PendingRequest>& run) {
  run.clear();
  const std::lock_guard<std::mutex> lock(mutex_);
  while (size_ > 0) run.push_back(take_front());
  return run.size();
}

std::size_t PortQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

PortQueueStats PortQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {pushed_, shed_, depth_high_water_.max()};
}

void PortQueue::note_shed() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++shed_;
}

}  // namespace polymem::service
