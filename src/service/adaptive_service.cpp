#include "service/adaptive_service.hpp"

#include "common/error.hpp"
#include "core/access_batch.hpp"

namespace polymem::service {

AdaptiveService::AdaptiveService(AdaptiveServiceOptions options)
    : options_(std::move(options)) {
  options_.tenant_config.validate();
}

adapt::AdaptiveMatrix& AdaptiveService::tenant_matrix(Tenant tenant) {
  {
    std::shared_lock lock(tenants_mutex_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return *it->second;
  }
  std::unique_lock lock(tenants_mutex_);
  auto& slot = tenants_[tenant];
  if (!slot) {
    slot = std::make_unique<adapt::AdaptiveMatrix>(options_.tenant_config,
                                                   options_.adaptive);
  }
  return *slot;
}

Status AdaptiveService::validate(std::int64_t count,
                                 std::size_t span_words) const {
  const core::PolyMemConfig& cfg = options_.tenant_config;
  if (count <= 0) return Status::kRejected;
  if (span_words != static_cast<std::size_t>(count) * cfg.lanes()) {
    return Status::kRejected;
  }
  return Status::kAccepted;
}

Status AdaptiveService::read(Tenant tenant, const access::ParallelAccess& where,
                             std::span<Word> out) {
  return read_run(tenant, where, {0, 0}, 1, out);
}

Status AdaptiveService::write(Tenant tenant,
                              const access::ParallelAccess& where,
                              std::span<const Word> data) {
  return write_run(tenant, where, {0, 0}, 1, data);
}

Status AdaptiveService::read_run(Tenant tenant,
                                 const access::ParallelAccess& first,
                                 access::Coord stride, std::int64_t count,
                                 std::span<Word> out) {
  if (Status s = validate(count, out.size()); s != Status::kAccepted) {
    return s;
  }
  const core::PolyMemConfig& cfg = options_.tenant_config;
  // Anchors move linearly, so the run stays in bounds iff its endpoints do.
  const access::ParallelAccess last{
      first.kind,
      {first.anchor.i + (count - 1) * stride.i,
       first.anchor.j + (count - 1) * stride.j}};
  if (!access::fits(first, cfg.p, cfg.q, cfg.height, cfg.width) ||
      !access::fits(last, cfg.p, cfg.q, cfg.height, cfg.width)) {
    return Status::kRejected;
  }
  tenant_matrix(tenant).read_batch(
      core::AccessBatch::strided(first.kind, first.anchor, stride, count),
      out);
  return Status::kOk;
}

Status AdaptiveService::write_run(Tenant tenant,
                                  const access::ParallelAccess& first,
                                  access::Coord stride, std::int64_t count,
                                  std::span<const Word> data) {
  if (Status s = validate(count, data.size()); s != Status::kAccepted) {
    return s;
  }
  const core::PolyMemConfig& cfg = options_.tenant_config;
  const access::ParallelAccess last{
      first.kind,
      {first.anchor.i + (count - 1) * stride.i,
       first.anchor.j + (count - 1) * stride.j}};
  if (!access::fits(first, cfg.p, cfg.q, cfg.height, cfg.width) ||
      !access::fits(last, cfg.p, cfg.q, cfg.height, cfg.width)) {
    return Status::kRejected;
  }
  tenant_matrix(tenant).write_batch(
      core::AccessBatch::strided(first.kind, first.anchor, stride, count),
      data);
  return Status::kOk;
}

std::vector<Tenant> AdaptiveService::tenants() const {
  std::shared_lock lock(tenants_mutex_);
  std::vector<Tenant> out;
  out.reserve(tenants_.size());
  for (const auto& [id, mat] : tenants_) out.push_back(id);
  return out;
}

void AdaptiveService::wait_idle() {
  std::shared_lock lock(tenants_mutex_);
  for (auto& [id, mat] : tenants_) mat->wait_idle();
}

}  // namespace polymem::service
