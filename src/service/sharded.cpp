#include "service/sharded.hpp"

#include "common/error.hpp"
#include "core/frame_pool.hpp"

namespace polymem::service {

ShardedService::ShardedService(maxsim::LMem& lmem,
                               const maxsim::LMemMatrix& matrix,
                               ShardedOptions options)
    : options_(options) {
  POLYMEM_REQUIRE(options.shards >= 1, "sharded service needs >= 1 shard");
  options_.shard_config.validate();
  shards_.reserve(options.shards);
  for (unsigned s = 0; s < options.shards; ++s) {
    Shard shard;
    shard.mem = std::make_unique<core::PolyMem>(options_.shard_config);
    core::FramePool frames =
        core::FramePool::default_tiling(options_.shard_config);
    cache::CacheOptions cache_options;
    cache_options.eviction = options_.eviction;
    cache_options.write_policy = cache::WritePolicy::kWriteBack;
    cache_options.prefetch_pool = nullptr;  // the drain is the prefetcher
    cache_options.clock_hz = options_.clock_hz;
    shard.cache = std::make_unique<cache::TileCache>(
        lmem, *shard.mem, matrix, frames, cache_options);
    shard.engine =
        std::make_unique<ServiceEngine>(*shard.cache, options_.engine);
    shards_.push_back(std::move(shard));
  }
  tile_rows_ = shards_.front().cache->frames().tile_rows();
  tile_cols_ = shards_.front().cache->frames().tile_cols();
  POLYMEM_REQUIRE(matrix.rows >= 1 && matrix.cols >= 1,
                  "sharded service needs a non-empty matrix");
}

ShardedService::~ShardedService() { stop(); }

unsigned ShardedService::shard_of(access::Coord anchor) const {
  const auto ti = static_cast<std::uint64_t>(anchor.i / tile_rows_);
  const auto tj = static_cast<std::uint64_t>(anchor.j / tile_cols_);
  // splitmix64 over the tile coordinate: hot neighbouring tiles spread
  // over shards instead of striping with the grid shape.
  const std::uint64_t h = runtime::derive_seed(ti * 0x100000001b3ull, tj);
  return static_cast<unsigned>(h % shards_.size());
}

unsigned ShardedService::port_of(Tenant tenant) const {
  const std::uint64_t h = runtime::derive_seed(0x7e4a7c159e3779b9ull, tenant);
  return static_cast<unsigned>(h % options_.engine.ports);
}

Status ShardedService::submit(Request&& request, RequestId* id_out) {
  if (request.where.anchor.i < 0 || request.where.anchor.j < 0) {
    return Status::kRejected;  // tile routing needs a non-negative anchor
  }
  const unsigned shard = shard_of(request.where.anchor);
  const unsigned port = port_of(request.tenant);
  return shards_[shard].engine->submit(port, std::move(request), id_out);
}

void ShardedService::start(runtime::ThreadPool& pool) {
  POLYMEM_REQUIRE(pool.size() >= shards_.size(),
                  "sharded service needs one pool worker per shard");
  for (Shard& shard : shards_) shard.engine->start(pool);
}

void ShardedService::stop() {
  for (Shard& shard : shards_) shard.engine->stop();
}

void ShardedService::flush() {
  for (Shard& shard : shards_) shard.cache->flush();
}

EngineStats ShardedService::stats() const {
  EngineStats total;
  for (const Shard& shard : shards_) total += shard.engine->stats();
  return total;
}

}  // namespace polymem::service
