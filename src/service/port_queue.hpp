// Bounded per-port request queue with coalescing pop.
//
// The mgsim ParallelMemory idiom: every port owns a FIFO of requests;
// submitters push under the port mutex and the drain loop pops. The
// FIFO is a fixed ring buffer allocated once at construction — a
// bounded queue never needs to grow, and a deque's steady-state block
// churn (an allocation every few pushes at these request sizes) was
// measurable against the ~100 ns request budget. Two further
// deviations from mgsim earn their keep here:
//
//  - *Bounded with typed shedding.* try_push refuses with
//    Status::kOverloaded once `bound` requests are queued — admission
//    control instead of unbounded growth. It never blocks and never
//    drops silently; the caller decides whether to retry.
//  - *Coalescing pop.* pop_run removes the longest FIFO prefix that one
//    compiled ExecPlan can serve: same op, same pattern kind,
//    constant-stride anchors (core::BatchCoalescer), and — when the
//    queue is tile-constrained (sharded engines) — the same tile, so
//    the whole run translates to its cache frame with one offset. FIFO
//    order is preserved: a run is always a prefix, never a selection.
//
// Thread safety: any number of submitters, one drainer; every operation
// holds the single port mutex. Depth statistics (high-water mark, shed
// count) are maintained under the same mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/stats.hpp"
#include "core/access_batch.hpp"
#include "service/request.hpp"

namespace polymem::service {

/// A Request annotated with its engine-assigned identity and stamps.
struct PendingRequest {
  Request request;
  RequestId id = 0;
  std::uint64_t submit_cycle = 0;
};

struct PortQueueStats {
  std::uint64_t pushed = 0;
  std::uint64_t shed = 0;
  std::uint64_t max_depth = 0;
};

class PortQueue {
 public:
  /// `bound` caps the queue depth (must be positive). Non-zero
  /// `tile_rows`/`tile_cols` constrain coalesced runs to anchors within
  /// one tile of that geometry (sharded engines; 0 means unconstrained).
  explicit PortQueue(std::size_t bound, std::int64_t tile_rows = 0,
                     std::int64_t tile_cols = 0);

  PortQueue(const PortQueue&) = delete;
  PortQueue& operator=(const PortQueue&) = delete;

  /// Status::kAccepted, or Status::kOverloaded when `bound` requests are
  /// already queued (the request is left untouched so the caller can
  /// retry or shed it).
  Status try_push(PendingRequest&& pending);

  /// Pops the longest coalescible FIFO prefix (at most `max_run`
  /// requests) into `run` (cleared first) and describes it as one
  /// strided AccessBatch in `batch`. Returns the run length; 0 when the
  /// queue is empty.
  std::size_t pop_run(std::size_t max_run, std::vector<PendingRequest>& run,
                      core::AccessBatch& batch);

  /// Pops every queued request (shutdown sweep).
  std::size_t pop_all(std::vector<PendingRequest>& run);

  std::size_t depth() const;
  bool empty() const { return depth() == 0; }
  PortQueueStats stats() const;

  /// Records a shed decided by the engine (e.g. submit after stop).
  void note_shed();

 private:
  bool same_tile(const access::Coord& a, const access::Coord& b) const;
  std::size_t slot(std::size_t offset) const {
    std::size_t s = head_ + offset;
    if (s >= bound_) s -= bound_;
    return s;
  }
  PendingRequest take_front() {
    PendingRequest out = std::move(ring_[head_]);
    head_ = slot(1);
    --size_;
    return out;
  }

  const std::size_t bound_;
  const std::int64_t tile_rows_;
  const std::int64_t tile_cols_;
  mutable std::mutex mutex_;
  std::vector<PendingRequest> ring_;  ///< fixed capacity bound_
  std::size_t head_ = 0;              ///< index of the FIFO front
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t shed_ = 0;
  HighWater depth_high_water_;
};

}  // namespace polymem::service
