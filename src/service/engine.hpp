// ServiceEngine — the concurrent request engine over one PolyMem.
//
// Clients submit (tenant, access, payload) requests into bounded per-port
// queues (service/port_queue.hpp); one drain loop — a long-running task
// on the shared runtime::ThreadPool — serves them:
//
//   submit -> enqueue -> coalesce -> compiled drain -> in-flight -> complete
//
//  - *Coalesce.* Each drain pops the longest constant-stride FIFO prefix
//    of one port (round-robin across ports = cycle order) and compiles it
//    into the engine's own ExecPlan (PolyMem::compile_batch), so one
//    compiled gather/scatter serves the whole run — the 8.7-8.9 ns/access
//    SIMD path (BENCH_core.json) amortized over many requests instead of
//    idling between synchronous read_batch calls. Runs of one request,
//    and runs the plan cache cannot serve, fall back to the per-access
//    plan-template path (read_into); results are identical either way.
//  - *In-flight tracking.* Executed runs enter a cycle-ordered
//    std::multimap keyed by modeled completion cycle (issue cycle +
//    config read_latency, + a miss penalty when a tile-cached engine
//    faulted), the mgsim ParallelMemory idiom. Completions retire in
//    cycle order; each request's listener fires exactly once. One map
//    node and one recycled data buffer per *run*, not per request, so
//    the steady-state drain allocates nothing.
//  - *Admission control.* Bounded queues shed with Status::kOverloaded
//    instead of growing without bound; malformed requests are rejected
//    synchronously with Status::kRejected; submits after stop() return
//    Status::kShutdown.
//
// Two backing modes share the engine:
//  - *direct*: requests address PolyMem coordinates of a caller-owned
//    memory — the in-core engine the 1-port/multi-port benches use;
//  - *tile-cached*: requests address matrix coordinates of a TileCache's
//    LMem-resident matrix; the drain faults tiles in (counting misses
//    into the completion latency) and translates anchors to cache
//    frames. Coalesced runs are constrained to one tile so the whole
//    run translates with a single offset. This is the per-shard engine
//    of service/sharded.hpp.
//
// Threading: any number of submitters; exactly one drain thread, which
// is the only thread to touch the PolyMem (and TileCache) — the same
// single-consumer contract as TileCache itself. Listeners run on the
// drain thread; they may submit (the drain holds no queue lock while
// delivering) but must not call the manual pumps.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/tile_cache.hpp"
#include "core/exec_plan.hpp"
#include "core/polymem.hpp"
#include "maf/conflict.hpp"
#include "runtime/thread_pool.hpp"
#include "service/port_queue.hpp"
#include "service/request.hpp"

namespace polymem::service {

struct EngineOptions {
  /// Submit queues; queue `port` reads through PolyMem replica
  /// `port % read_ports`, so tenants hashed to different queues use
  /// independent read ports.
  unsigned ports = 1;
  /// Per-port queue bound; try_push sheds with kOverloaded beyond it.
  std::size_t queue_bound = 256;
  /// Longest run one drain serves (and one ExecPlan compile amortizes).
  std::size_t max_coalesce = 64;
  /// Extra cycles the drain clock stalls when a tile-cached drain
  /// faulted the run's tile in (the synchronous DRAM refill; it delays
  /// this run's completion and every later issue).
  std::uint64_t miss_penalty_cycles = 64;
};

struct EngineStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;      ///< kOverloaded submissions (all ports)
  std::uint64_t rejected = 0;  ///< kRejected submissions
  std::uint64_t completed_reads = 0;
  std::uint64_t completed_writes = 0;
  std::uint64_t shutdown_completions = 0;
  std::uint64_t drained_runs = 0;       ///< batches executed
  std::uint64_t drained_requests = 0;   ///< requests inside those batches
  std::uint64_t compiled_runs = 0;      ///< runs served by one ExecPlan
  std::uint64_t compiled_requests = 0;  ///< requests inside compiled runs
  std::uint64_t fallback_accesses = 0;  ///< per-access path (incl. singletons)
  std::uint64_t tile_misses = 0;        ///< tile-cached mode only
  std::uint64_t max_queue_depth = 0;    ///< high water over all ports
  std::uint64_t max_in_flight = 0;      ///< requests awaiting completion
  std::uint64_t cycles = 0;             ///< modeled clock at snapshot

  /// Requests per drained batch — the coalescing amortization factor.
  double mean_run_length() const {
    return drained_runs == 0 ? 0.0
                             : static_cast<double>(drained_requests) /
                                   static_cast<double>(drained_runs);
  }
  EngineStats& operator+=(const EngineStats& other);
};

class ServiceEngine {
 public:
  /// Direct engine: requests address `mem`'s PolyMem coordinates. The
  /// engine is the memory's only user while running.
  explicit ServiceEngine(core::PolyMem& mem, EngineOptions options = {});

  /// Tile-cached engine: requests address matrix coordinates of
  /// `cache`'s LMem matrix; every access must fit inside one tile.
  /// Requires the cache's write policy to be write-back (the drain marks
  /// frames dirty; call the cache's flush() when LMem must be current)
  /// and takes over as the cache's single consumer.
  explicit ServiceEngine(cache::TileCache& cache, EngineOptions options = {});

  /// Stops the drain if running, then completes anything still queued
  /// or in flight (executed requests with kOk, never-executed ones with
  /// kShutdown) — listeners always hear exactly one completion.
  ~ServiceEngine();

  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  /// Validates and enqueues on `port`. Returns kAccepted (id written to
  /// `id_out` when non-null), kOverloaded (typed shedding: queue full,
  /// request untouched — retry later), kRejected (malformed; see
  /// request.hpp) or kShutdown (stop() already called).
  Status submit(unsigned port, Request&& request, RequestId* id_out = nullptr);

  /// Launches the drain loop as one long-running task on `pool`
  /// (requires at least one worker thread; the loop would otherwise run
  /// inline forever).
  void start(runtime::ThreadPool& pool);

  /// Graceful shutdown: stops admission, serves every accepted request,
  /// retires all completions, then returns once the drain task exited.
  void stop();

  bool started() const { return started_.load(std::memory_order_acquire); }

  /// Manual pumps for deterministic tests (engine must not be started):
  /// drain_once serves one run or retires due completions, returning
  /// false only when fully idle; run_until_idle pumps to quiescence.
  bool drain_once();
  void run_until_idle();

  const EngineOptions& options() const { return options_; }
  unsigned ports() const { return static_cast<unsigned>(queues_.size()); }
  core::PolyMem& polymem() { return *mem_; }
  cache::TileCache* tile_cache() { return cache_; }

  /// Point-in-time statistics; exact once the engine is stopped or idle.
  EngineStats stats() const;

 private:
  /// One request of an executed run, waiting in the in-flight map.
  struct Pending {
    RequestId id = 0;
    std::uint64_t tag = 0;
    Tenant tenant = 0;
    Op op = Op::kRead;
    CompletionListener* listener = nullptr;
    std::uint64_t submit_cycle = 0;
    std::uint64_t sequence = 0;
  };
  /// One executed run: its requests plus (reads) the gathered data; both
  /// vectors recycle through batch_pool_, so steady state allocates
  /// nothing.
  struct PendingBatch {
    std::vector<Pending> requests;
    std::vector<Word> data;
  };

  void init_queues();
  Status validate(const Request& request) const;
  bool service_once();
  void execute_run(unsigned queue_port, const core::AccessBatch& batch);
  bool retire_due();
  void retire_all();
  void shutdown_sweep();
  void drain_loop();
  bool any_queued() const;
  PendingBatch take_batch_buffer();

  core::PolyMem* mem_;
  cache::TileCache* cache_ = nullptr;
  std::int64_t tile_rows_ = 0;
  std::int64_t tile_cols_ = 0;
  EngineOptions options_;
  std::array<maf::SupportLevel, std::size(access::kAllPatterns)> support_{};
  std::vector<std::unique_ptr<PortQueue>> queues_;

  // Drain-side state (single consumer).
  core::ExecPlan plan_;
  std::vector<PendingRequest> run_;
  std::vector<Word> write_staging_;
  std::multimap<std::uint64_t, PendingBatch> in_flight_;
  std::vector<PendingBatch> batch_pool_;
  unsigned round_robin_ = 0;
  std::uint64_t sequence_ = 0;
  std::uint64_t in_flight_requests_ = 0;

  // Shared clock / identity / admission.
  std::atomic<std::uint64_t> cycle_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> drain_idle_{false};

  // Lifecycle handshake with the pool task.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable exit_cv_;
  bool work_signal_ = false;
  bool stop_requested_ = false;
  bool exited_ = false;
  std::atomic<bool> started_{false};
  bool stopped_ = false;

  // Statistics (relaxed atomics: drain-owned writers, any-thread reads).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_reads_{0};
  std::atomic<std::uint64_t> completed_writes_{0};
  std::atomic<std::uint64_t> shutdown_completions_{0};
  std::atomic<std::uint64_t> drained_runs_{0};
  std::atomic<std::uint64_t> drained_requests_{0};
  std::atomic<std::uint64_t> compiled_runs_{0};
  std::atomic<std::uint64_t> compiled_requests_{0};
  std::atomic<std::uint64_t> fallback_accesses_{0};
  std::atomic<std::uint64_t> tile_misses_{0};
  std::atomic<std::uint64_t> max_in_flight_{0};
};

}  // namespace polymem::service
