// Analytical FPGA resource model (reproduces paper Figs. 6, 7, 8).
//
// The paper measures logic / LUT / BRAM utilisation from Xilinx synthesis;
// this model reproduces those numbers analytically from the architecture:
//
//   BRAM  — each of the p*q banks needs ceil(bank_bytes / bram_bytes)
//           RAMB36 blocks; every *additional read port replicates all of
//           them* ("increasing the number of read ports involved
//           duplicating data in BRAMs", Sec. IV-C); plus a fixed platform
//           overhead (PCIe/infrastructure) and per-lane stream FIFOs.
//   logic — a platform base, the crossbars (supra-linear in lanes; the
//           read-side crossbars replicate per port: "mostly due to the
//           read crossbars replication"), a small per-doubling capacity
//           term, and a scheme-complexity offset.
//   LUTs  — an affine map of logic ("similar trends", Sec. IV-C).
//
// Constants are calibrated against the utilisation figures quoted in
// Sec. IV-C (10.58 %, 10.78 %, 13.05 %, 22.34 %, 23.73 %, 16.07 %,
// 19.31 %, 29.04 %, 97 %); tests pin the anchors.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "synth/virtex6.hpp"

namespace polymem::synth {

struct ResourceEstimate {
  std::uint64_t bram36 = 0;      ///< RAMB36 blocks (data + infrastructure)
  std::uint64_t bram36_data = 0; ///< RAMB36 blocks holding PolyMem data only
  double luts = 0;               ///< absolute LUT count
  double logic_cells = 0;        ///< absolute logic-cell count
  double bram_pct = 0;           ///< % of device BRAM blocks
  double lut_pct = 0;            ///< % of device LUTs
  double logic_pct = 0;          ///< % of device logic cells

  /// True when every resource fits on the device.
  bool fits() const {
    return bram_pct <= 100.0 && lut_pct <= 100.0 && logic_pct <= 100.0;
  }
};

class ResourceModel {
 public:
  explicit ResourceModel(const DeviceSpec& device = virtex6_sx475t());

  const DeviceSpec& device() const { return *device_; }

  ResourceEstimate estimate(const core::PolyMemConfig& config) const;

  /// The paper's modularity ablation (Sec. III-C): the multi-kernel
  /// variant "consumes twice as many resources, mainly due to the
  /// additional inter-kernel communication infrastructure". When modular,
  /// logic/LUT estimates double.
  ResourceEstimate estimate_modular(const core::PolyMemConfig& config) const;

 private:
  const DeviceSpec* device_;
};

}  // namespace polymem::synth
