// FPGA device database.
//
// The paper evaluates on a Maxeler Vectis DFE carrying a Xilinx Virtex-6
// SX475T "featuring 475k logic cells and 4MB of on-chip BRAMs"
// (Sec. IV-A). The resource model normalises utilisation against these
// totals.
#pragma once

#include <cstdint>
#include <string>

namespace polymem::synth {

struct DeviceSpec {
  std::string name;
  std::uint64_t logic_cells = 0;
  std::uint64_t luts = 0;
  std::uint64_t flip_flops = 0;
  std::uint64_t bram36_blocks = 0;   ///< RAMB36E1 count
  std::uint64_t bram36_bytes = 0;    ///< usable bytes per block (72-bit width)

  std::uint64_t bram_bytes_total() const {
    return bram36_blocks * bram36_bytes;
  }
};

/// The Xilinx XC6VSX475T of the Maxeler Vectis DFE.
const DeviceSpec& virtex6_sx475t();

}  // namespace polymem::synth
