#include "synth/fmax_model.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace polymem::synth {

FmaxModel::FmaxModel(FmaxParams params, const DeviceSpec& device)
    : params_(params), resources_(device) {}

core::PolyMemConfig FmaxModel::make_config(const DsePoint& point) {
  unsigned p = 0, q = 0;
  dse_geometry(point.lanes, p, q);
  return core::PolyMemConfig::with_capacity(
      static_cast<std::uint64_t>(point.size_kb) * KiB, point.scheme, p, q,
      point.ports);
}

double FmaxModel::period_ns(const core::PolyMemConfig& config) const {
  const ResourceEstimate est = resources_.estimate(config);
  const unsigned lanes = config.lanes();
  double t = params_.t0 +
             params_.tb * std::sqrt(static_cast<double>(est.bram36)) +
             params_.tp * (config.read_ports - 1) +
             params_.tl * (lanes > 8 ? lanes - 8 : 0) +
             params_.scheme_offset[static_cast<unsigned>(config.scheme)];
  return std::max(t, 0.1);
}

double FmaxModel::fmax_mhz(const core::PolyMemConfig& config) const {
  return 1000.0 / period_ns(config);
}

double FmaxModel::fmax_mhz(const DsePoint& point) const {
  return fmax_mhz(make_config(point));
}

double FmaxModel::mean_rel_error_vs_paper() const {
  double sum = 0.0;
  const auto& samples = paper_table4();
  for (const FmaxSample& s : samples)
    sum += std::abs(fmax_mhz(s.point) - s.mhz) / s.mhz;
  return sum / static_cast<double>(samples.size());
}

namespace {

double objective(const FmaxParams& params, const ResourceModel& resources,
                 const std::vector<FmaxSample>& samples,
                 const std::vector<core::PolyMemConfig>& configs) {
  const FmaxModel model(params, resources.device());
  double sum = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i)
    sum += std::abs(model.fmax_mhz(configs[i]) - samples[i].mhz) /
           samples[i].mhz;
  return sum / static_cast<double>(samples.size());
}

}  // namespace

FmaxParams FmaxModel::fit_to(const std::vector<FmaxSample>& samples,
                             const ResourceModel& resources) {
  POLYMEM_REQUIRE(!samples.empty(), "need calibration samples");
  std::vector<core::PolyMemConfig> configs;
  configs.reserve(samples.size());
  for (const FmaxSample& s : samples) configs.push_back(make_config(s.point));

  FmaxParams params;  // defaults are the hand-derived starting point
  // Access parameters uniformly for coordinate descent.
  auto param_refs = [](FmaxParams& p) {
    return std::vector<double*>{&p.t0,
                                &p.tb,
                                &p.tp,
                                &p.tl,
                                &p.scheme_offset[0],
                                &p.scheme_offset[1],
                                &p.scheme_offset[2],
                                &p.scheme_offset[3],
                                &p.scheme_offset[4]};
  };

  double best = objective(params, resources, samples, configs);
  double step = 0.2;
  for (int round = 0; round < 60 && step > 1e-4; ++round) {
    bool improved = false;
    for (double* param : param_refs(params)) {
      for (double direction : {+1.0, -1.0}) {
        const double saved = *param;
        *param = saved + direction * step;
        const double cost = objective(params, resources, samples, configs);
        if (cost + 1e-9 < best) {
          best = cost;
          improved = true;
        } else {
          *param = saved;
        }
      }
    }
    if (!improved) step *= 0.5;
  }
  return params;
}

const FmaxModel& FmaxModel::paper_calibrated() {
  static const FmaxModel model(
      fit_to(paper_table4(), ResourceModel(virtex6_sx475t())),
      virtex6_sx475t());
  return model;
}

}  // namespace polymem::synth
