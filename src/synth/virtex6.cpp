#include "synth/virtex6.hpp"

namespace polymem::synth {

const DeviceSpec& virtex6_sx475t() {
  // Xilinx DS150 (Virtex-6 Family Overview), XC6VSX475T column.
  // A RAMB36E1 holds 36Kb; in 512x72 simple-dual-port mode the full 72-bit
  // width (data + parity bits) is available, i.e. 4608 usable bytes.
  static const DeviceSpec spec{
      .name = "XC6VSX475T",
      .logic_cells = 476'160,
      .luts = 297'600,
      .flip_flops = 595'200,
      .bram36_blocks = 1'064,
      .bram36_bytes = 4'608,
  };
  return spec;
}

}  // namespace polymem::synth
