#include "synth/resource_model.hpp"

#include <cmath>

#include "common/math.hpp"
#include "common/units.hpp"

namespace polymem::synth {

namespace {

// Calibration constants (see header). Logic model:
//   logic% = kLogicBase
//          + (kXbarPow * lanes^1.5 + kXbarLin * lanes)
//            * (1 + kPortRepl * (read_ports - 1))
//          + kCapacity * log2(capacity / 512KB)
//          + scheme offset
constexpr double kLogicBase = 3.5;
constexpr double kXbarPow = 0.3016;
constexpr double kXbarLin = 0.0577;
constexpr double kPortRepl = 0.529;
constexpr double kCapacity = 0.70;

// LUT% tracks logic% affinely (Sec. IV-C: "similar trends", 7..28 %).
constexpr double kLutSlope = 0.78;
constexpr double kLutOffset = -0.5;

// BRAM infrastructure: platform base + per-lane stream buffering, the
// read-port replicas adding their own lane buffers.
constexpr double kBramBase = 30.0;
constexpr double kBramPerLane = 2.5;
constexpr double kBramPerLanePort = 1.5;

double scheme_logic_offset(maf::Scheme scheme) {
  // ReO's MAF is two bare modulos; RoCo computes both rotated coordinates.
  switch (scheme) {
    case maf::Scheme::kReO: return -0.20;
    case maf::Scheme::kReRo: return 0.0;
    case maf::Scheme::kReCo: return 0.0;
    case maf::Scheme::kRoCo: return +0.20;
    case maf::Scheme::kReTr: return +0.10;
  }
  return 0.0;
}

}  // namespace

ResourceModel::ResourceModel(const DeviceSpec& device) : device_(&device) {}

ResourceEstimate ResourceModel::estimate(
    const core::PolyMemConfig& config) const {
  config.validate();
  ResourceEstimate est;

  // --- BRAM ---------------------------------------------------------------
  const std::uint64_t bank_bytes =
      static_cast<std::uint64_t>(config.words_per_bank()) *
      (config.data_width_bits / 8);
  const std::uint64_t per_bank =
      ceil_div<std::uint64_t>(bank_bytes, device_->bram36_bytes);
  est.bram36_data = per_bank * config.lanes() * config.read_ports;
  const double infra = kBramBase + kBramPerLane * config.lanes() +
                       kBramPerLanePort * config.lanes() *
                           (config.read_ports - 1);
  est.bram36 = est.bram36_data + static_cast<std::uint64_t>(std::lround(infra));
  est.bram_pct = 100.0 * static_cast<double>(est.bram36) /
                 static_cast<double>(device_->bram36_blocks);

  // --- logic / LUTs ---------------------------------------------------------
  const double lanes = config.lanes();
  const double xbar = kXbarPow * std::pow(lanes, 1.5) + kXbarLin * lanes;
  const double cap_doublings =
      std::log2(static_cast<double>(config.capacity_bytes()) /
                static_cast<double>(512 * KiB));
  est.logic_pct = kLogicBase +
                  xbar * (1.0 + kPortRepl * (config.read_ports - 1)) +
                  kCapacity * std::max(0.0, cap_doublings) +
                  scheme_logic_offset(config.scheme);
  est.lut_pct = kLutSlope * est.logic_pct + kLutOffset;
  est.logic_cells =
      est.logic_pct / 100.0 * static_cast<double>(device_->logic_cells);
  est.luts = est.lut_pct / 100.0 * static_cast<double>(device_->luts);
  return est;
}

ResourceEstimate ResourceModel::estimate_modular(
    const core::PolyMemConfig& config) const {
  ResourceEstimate est = estimate(config);
  // Sec. III-C: the modular multi-kernel design doubles resource use.
  est.logic_pct *= 2.0;
  est.lut_pct *= 2.0;
  est.logic_cells *= 2.0;
  est.luts *= 2.0;
  return est;
}

}  // namespace polymem::synth
