// Analytical maximum-clock-frequency model (reproduces paper Table IV).
//
// Place-and-route frequency cannot be measured without the Xilinx tools;
// this model captures its structure:
//
//   period(ns) = t0                          (pipeline logic depth)
//              + tb * sqrt(total BRAM blocks) (routing spread: more BRAMs
//                                              place further apart, and
//                                              capacity/ports grow BRAMs —
//                                              "additional pressure ... to
//                                              place and route all the
//                                              additional BRAMs", Sec. IV-B)
//              + tp * (read_ports - 1)        (read-crossbar replication)
//              + tl * max(0, lanes - 8)       (wider crossbars)
//              + scheme offset                (MAF complexity)
//
// and fmax = 1000 / period MHz. The constants are *fitted* to the paper's
// Table IV (embedded in calibration.cpp) by coordinate descent; tests
// bound the fit's mean relative error.
#pragma once

#include <array>

#include "core/config.hpp"
#include "synth/calibration.hpp"
#include "synth/resource_model.hpp"

namespace polymem::synth {

struct FmaxParams {
  double t0 = 2.5;   ///< ns, base pipeline period
  double tb = 0.30;  ///< ns per sqrt(BRAM block)
  double tp = 0.30;  ///< ns per extra read port
  double tl = 0.02;  ///< ns per lane beyond 8
  std::array<double, 5> scheme_offset{};  ///< ns, indexed by Scheme
};

class FmaxModel {
 public:
  /// A model with explicit parameters (e.g. for ablations).
  explicit FmaxModel(FmaxParams params,
                     const DeviceSpec& device = virtex6_sx475t());

  /// The production model: parameters fitted to the paper's Table IV.
  /// The fit is deterministic and cached process-wide.
  static const FmaxModel& paper_calibrated();

  const FmaxParams& params() const { return params_; }

  /// Predicted clock period / maximum frequency.
  double period_ns(const core::PolyMemConfig& config) const;
  double fmax_mhz(const core::PolyMemConfig& config) const;
  double fmax_mhz(const DsePoint& point) const;

  /// Mean absolute relative error of the model against paper Table IV.
  double mean_rel_error_vs_paper() const;

  /// Builds the PolyMemConfig of a DSE point (2xq geometry, 64-bit data).
  static core::PolyMemConfig make_config(const DsePoint& point);

 private:
  static FmaxParams fit_to(const std::vector<FmaxSample>& samples,
                           const ResourceModel& resources);

  FmaxParams params_;
  ResourceModel resources_;
};

}  // namespace polymem::synth
