#include "synth/calibration.hpp"

#include "common/error.hpp"

namespace polymem::synth {

namespace {

using maf::Scheme;

// Column layout of paper Table IV (18 columns): per capacity, first the
// 8-lane ports then the 16-lane ports that synthesised.
constexpr DseColumn kColumns[] = {
    {512, 8, 1},  {512, 8, 2},  {512, 8, 3},  {512, 8, 4},
    {512, 16, 1}, {512, 16, 2},
    {1024, 8, 1}, {1024, 8, 2}, {1024, 8, 3}, {1024, 8, 4},
    {1024, 16, 1}, {1024, 16, 2},
    {2048, 8, 1}, {2048, 8, 2},
    {2048, 16, 1}, {2048, 16, 2},
    {4096, 8, 1},
    {4096, 16, 1},
};

// Table IV rows, MHz, in the column order above.
struct Row {
  Scheme scheme;
  double mhz[18];
};

constexpr Row kRows[] = {
    {Scheme::kReO,
     {202, 160, 139, 123, 185, 100, 160, 123, 102, 79, 144, 109, 127, 86, 127,
      87, 95, 95}},
    {Scheme::kReRo,
     {195, 166, 131, 123, 168, 100, 163, 125, 102, 77, 140, 109, 120, 87, 120,
      80, 98, 91}},
    {Scheme::kReCo,
     {196, 155, 131, 122, 157, 100, 163, 121, 107, 81, 156, 122, 124, 78, 124,
      79, 93, 93}},
    {Scheme::kRoCo,
     {194, 150, 146, 122, 161, 100, 173, 135, 114, 86, 145, 109, 122, 90, 122,
      84, 88, 91}},
    {Scheme::kReTr,
     {193, 158, 134, 137, 159, 112, 155, 121, 102, 77, 146, 122, 116, 81, 114,
      77, 102, 102}},
};

}  // namespace

const std::vector<FmaxSample>& paper_table4() {
  static const std::vector<FmaxSample> samples = [] {
    std::vector<FmaxSample> out;
    out.reserve(90);
    for (const Row& row : kRows) {
      for (int c = 0; c < 18; ++c) {
        out.push_back({DsePoint{row.scheme, kColumns[c].size_kb,
                                kColumns[c].lanes, kColumns[c].ports},
                       row.mhz[c]});
      }
    }
    return out;
  }();
  return samples;
}

std::optional<double> paper_fmax_mhz(const DsePoint& point) {
  for (const FmaxSample& s : paper_table4())
    if (s.point == point) return s.mhz;
  return std::nullopt;
}

const std::vector<DseColumn>& table4_columns() {
  static const std::vector<DseColumn> cols(std::begin(kColumns),
                                           std::end(kColumns));
  return cols;
}

bool dse_point_valid(unsigned size_kb, unsigned lanes, unsigned ports) {
  if (ports < 1 || ports > 4) return false;
  if (lanes != 8 && lanes != 16) return false;
  if (size_kb != 512 && size_kb != 1024 && size_kb != 2048 &&
      size_kb != 4096)
    return false;
  // Read-port replication must fit the 4MB of BRAM.
  if (static_cast<std::uint64_t>(size_kb) * ports > 4096) return false;
  // 16-lane crossbars route at most 2 read ports (Table IV).
  if (lanes == 16 && ports > 2) return false;
  return true;
}

void dse_geometry(unsigned lanes, unsigned& p, unsigned& q) {
  POLYMEM_REQUIRE(lanes == 8 || lanes == 16,
                  "the DSE uses 8 (2x4) or 16 (2x8) lanes");
  p = 2;
  q = lanes / 2;
}

}  // namespace polymem::synth
