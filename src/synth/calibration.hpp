// The paper's published measurements, embedded as calibration/reference
// data.
//
// We cannot run Xilinx synthesis for a Virtex-6; instead the paper's own
// Table IV (maximum clock frequencies for all 90 synthesised design
// points) is embedded verbatim. It serves two roles:
//   1. calibration set for the analytical FmaxModel, and
//   2. reference columns printed next to the model in the Table IV /
//      Fig. 4 / Fig. 5 reproduction benches, with per-cell error.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "maf/scheme.hpp"

namespace polymem::synth {

/// One DSE design point (a column of Table IV x a scheme row).
struct DsePoint {
  maf::Scheme scheme = maf::Scheme::kReO;
  unsigned size_kb = 512;  ///< 512, 1024, 2048, 4096
  unsigned lanes = 8;      ///< 8 (2x4) or 16 (2x8)
  unsigned ports = 1;      ///< read ports 1..4

  friend bool operator==(const DsePoint&, const DsePoint&) = default;
};

/// A Table IV cell: the design point plus its synthesised Fmax.
struct FmaxSample {
  DsePoint point;
  double mhz = 0;
};

/// All 90 cells of paper Table IV.
const std::vector<FmaxSample>& paper_table4();

/// Looks up the paper's Fmax for a design point (nullopt if the paper did
/// not synthesise it).
std::optional<double> paper_fmax_mhz(const DsePoint& point);

/// The 18 (size, lanes, ports) columns of Table IV, in table order.
struct DseColumn {
  unsigned size_kb;
  unsigned lanes;
  unsigned ports;
};
const std::vector<DseColumn>& table4_columns();

/// Table III validity rule: the replicated data must fit the 4MB BRAM
/// (size * ports <= 4096KB) and 16-lane designs route at most 2 read
/// ports. Exactly the 18 columns of Table IV satisfy this.
bool dse_point_valid(unsigned size_kb, unsigned lanes, unsigned ports);

/// Bank geometry of a DSE lane count (the paper uses 8 = 2x4, 16 = 2x8).
void dse_geometry(unsigned lanes, unsigned& p, unsigned& q);

}  // namespace polymem::synth
