// Pipelined 9-point stencil on the cycle-accurate PolyMem (ReO scheme).
//
// Each p x q output tile needs a (p+2) x (q+2) input halo, gathered with
// four unaligned rectangle reads (ReO rectangles are conflict-free at any
// anchor). Reads stream one per cycle; when a tile's four reads have all
// retired, the output tile is computed and written to the result band
// through the concurrent write port. The app reports how far the gather
// redundancy (24 halo words fetched as 32) keeps it from the 8x scalar
// speedup.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/app_report.hpp"
#include "core/cycle_polymem.hpp"
#include "core/layout.hpp"
#include "sched/trace_io.hpp"

namespace polymem::apps {

class StencilApp {
 public:
  /// A 9-point mean stencil over an n x n grid of doubles; interior
  /// outputs only. n must be a multiple of p and q, with n >= 2 both.
  /// Source band: rows [0, n); output band: rows [n, 2n).
  explicit StencilApp(std::int64_t n, unsigned read_latency = 14);

  core::CyclePolyMem& memory() { return mem_; }
  std::int64_t n() const { return n_; }

  /// Loads the source grid (row-major, n*n doubles).
  void load_grid(std::span<const double> values);

  /// Runs the sweep; verification compares against a host reference.
  AppReport run();

  double output(std::int64_t i, std::int64_t j) const;

  /// Records every access the kernel issues (nullptr disables).
  void set_recorder(sched::TraceRecorder* recorder) { recorder_ = recorder; }
  /// A recorder matching this app's geometry and address space.
  sched::TraceRecorder make_recorder(std::uint64_t seed = 42) const;

 private:
  double host_reference(std::int64_t i, std::int64_t j) const;

  std::int64_t n_;
  core::CyclePolyMem mem_;
  sched::TraceRecorder* recorder_ = nullptr;
};

}  // namespace polymem::apps
