#include "apps/transpose_app.hpp"

#include <vector>

#include "common/error.hpp"

namespace polymem::apps {

using access::ParallelAccess;
using access::PatternKind;

namespace {

core::PolyMemConfig make_config(std::int64_t n, unsigned p, unsigned q,
                                unsigned read_latency) {
  POLYMEM_REQUIRE(n >= 1 && n % p == 0 && n % q == 0,
                  "matrix size must be a multiple of both bank dimensions");
  core::PolyMemConfig cfg;
  cfg.scheme = maf::Scheme::kReTr;
  cfg.p = p;
  cfg.q = q;
  cfg.height = 2 * n;
  cfg.width = n;
  cfg.read_latency = read_latency;
  cfg.validate();
  return cfg;
}

}  // namespace

TransposeApp::TransposeApp(std::int64_t n, unsigned p, unsigned q,
                           unsigned read_latency)
    : n_(n), mem_(make_config(n, p, q, read_latency)) {}

sched::TraceRecorder TransposeApp::make_recorder(std::uint64_t seed) const {
  return {mem_.config().p, mem_.config().q, mem_.config().height,
          mem_.config().width, seed};
}

void TransposeApp::load_source(std::span<const hw::Word> values) {
  POLYMEM_REQUIRE(values.size() == static_cast<std::size_t>(n_ * n_),
                  "source must be n*n words");
  mem_.functional().fill_rect({0, 0}, n_, n_, values);
}

hw::Word TransposeApp::destination(std::int64_t i, std::int64_t j) const {
  return mem_.functional().load({n_ + i, j});
}

AppReport TransposeApp::run() {
  const auto& cfg = mem_.config();
  const std::int64_t p = cfg.p, q = cfg.q;
  const unsigned lanes = cfg.lanes();

  // Tile anchors in issue order; the read's tag indexes this list so the
  // retire path knows the mirrored destination.
  std::vector<access::Coord> anchors;
  for (std::int64_t bi = 0; bi < n_; bi += p)
    for (std::int64_t bj = 0; bj < n_; bj += q)
      anchors.push_back({bi, bj});

  AppReport report;
  const std::uint64_t start = mem_.cycles();
  std::size_t next = 0;
  std::size_t written = 0;
  std::vector<hw::Word> trect(lanes);
  while (written < anchors.size()) {
    if (next < anchors.size()) {
      if (recorder_) recorder_->read({PatternKind::kRect, anchors[next]});
      const bool ok =
          mem_.issue_read(0, {PatternKind::kRect, anchors[next]},
                          static_cast<std::uint64_t>(next));
      POLYMEM_ASSERT(ok);
      (void)ok;
      ++next;
      ++report.parallel_reads;
    }
    // The write issues BEFORE this cycle's tick, concurrent with the next
    // read — read and write ports are independent.
    mem_.tick();
    if (auto resp = mem_.retire_read(0)) {
      const access::Coord a = anchors[resp->tag];
      // rect lane (u, v) -> trect lane (v, u).
      for (std::int64_t u = 0; u < p; ++u)
        for (std::int64_t v = 0; v < q; ++v)
          trect[static_cast<std::size_t>(v * p + u)] =
              resp->data[static_cast<std::size_t>(u * q + v)];
      if (recorder_)
        recorder_->write({PatternKind::kTRect, {n_ + a.j, a.i}});
      const bool ok = mem_.issue_write(
          {PatternKind::kTRect, {n_ + a.j, a.i}}, trect);
      POLYMEM_ASSERT(ok);
      (void)ok;
      ++report.parallel_writes;
      ++written;
    }
  }
  // The final write is still pending; one more cycle lands it.
  mem_.tick();
  report.cycles = mem_.cycles() - start;
  report.elements_touched = static_cast<std::uint64_t>(2 * n_ * n_);

  // Verify against the source; both regions come out as one bulk dump
  // each instead of 2*n*n scalar loads.
  report.verified = true;
  const auto elems = static_cast<std::size_t>(n_ * n_);
  std::vector<hw::Word> src(elems), dst(elems);
  mem_.functional().dump_rect({0, 0}, n_, n_, src);
  mem_.functional().dump_rect({n_, 0}, n_, n_, dst);
  for (std::int64_t i = 0; i < n_ && report.verified; ++i)
    for (std::int64_t j = 0; j < n_; ++j)
      if (dst[static_cast<std::size_t>(i * n_ + j)] !=
          src[static_cast<std::size_t>(j * n_ + i)]) {
        report.verified = false;
        break;
      }
  return report;
}

}  // namespace polymem::apps
