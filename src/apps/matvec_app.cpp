#include "apps/matvec_app.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace polymem::apps {

using access::PatternKind;

namespace {

core::PolyMemConfig make_config(std::int64_t n, unsigned p, unsigned q,
                                unsigned read_latency) {
  POLYMEM_REQUIRE(n >= 1 && n % (p * q) == 0,
                  "matrix size must be a multiple of the lane count");
  core::PolyMemConfig cfg;
  cfg.scheme = maf::Scheme::kReRo;
  cfg.p = p;
  cfg.q = q;
  cfg.height = n;
  cfg.width = n;
  cfg.read_latency = read_latency;
  cfg.validate();
  return cfg;
}

}  // namespace

MatVecApp::MatVecApp(std::int64_t n, unsigned p, unsigned q,
                     unsigned read_latency)
    : n_(n), mem_(make_config(n, p, q, read_latency)) {}

sched::TraceRecorder MatVecApp::make_recorder(std::uint64_t seed) const {
  return {mem_.config().p, mem_.config().q, mem_.config().height,
          mem_.config().width, seed};
}

void MatVecApp::load_matrix(std::span<const double> values) {
  POLYMEM_REQUIRE(values.size() == static_cast<std::size_t>(n_ * n_),
                  "matrix must be n*n doubles");
  auto& f = mem_.functional();
  // One batched write over the whole matrix: n rows x (n/lanes) row
  // segments, validated once and executed through the plan-template cache.
  const auto lanes = static_cast<std::int64_t>(mem_.config().lanes());
  std::vector<hw::Word> words(values.size());
  for (std::size_t k = 0; k < values.size(); ++k)
    words[k] = core::pack_double(values[k]);
  f.write_batch({PatternKind::kRow, {0, 0}, {0, lanes}, n_ / lanes, {1, 0},
                 n_},
                words);
}

AppReport MatVecApp::run(std::span<const double> x, std::span<double> y) {
  POLYMEM_REQUIRE(x.size() == static_cast<std::size_t>(n_) &&
                      y.size() == static_cast<std::size_t>(n_),
                  "vectors must have n elements");
  const auto lanes = static_cast<std::int64_t>(mem_.config().lanes());
  const std::int64_t segments_per_row = n_ / lanes;
  const std::int64_t total = n_ * segments_per_row;

  std::fill(y.begin(), y.end(), 0.0);
  AppReport report;
  const std::uint64_t start = mem_.cycles();
  std::int64_t issued = 0;
  std::int64_t retired = 0;
  while (retired < total) {
    if (issued < total) {
      const std::int64_t row = issued / segments_per_row;
      const std::int64_t seg = issued % segments_per_row;
      if (recorder_)
        recorder_->read({PatternKind::kRow, {row, seg * lanes}});
      const bool ok =
          mem_.issue_read(0, {PatternKind::kRow, {row, seg * lanes}},
                          static_cast<std::uint64_t>(issued));
      POLYMEM_ASSERT(ok);
      (void)ok;
      ++issued;
      ++report.parallel_reads;
    }
    mem_.tick();
    if (auto resp = mem_.retire_read(0)) {
      const auto row = static_cast<std::int64_t>(resp->tag) /
                       segments_per_row;
      const auto seg = static_cast<std::int64_t>(resp->tag) %
                       segments_per_row;
      double acc = 0;
      for (std::int64_t k = 0; k < lanes; ++k)
        acc += core::unpack_double(resp->data[static_cast<std::size_t>(k)]) *
               x[static_cast<std::size_t>(seg * lanes + k)];
      y[static_cast<std::size_t>(row)] += acc;
      ++retired;
    }
  }
  report.cycles = mem_.cycles() - start;
  report.elements_touched = static_cast<std::uint64_t>(n_ * n_);

  report.verified = true;
  // Host reference from one bulk dump instead of n*n scalar loads.
  std::vector<hw::Word> matrix(static_cast<std::size_t>(n_ * n_));
  mem_.functional().dump_rect({0, 0}, n_, n_, matrix);
  for (std::int64_t i = 0; i < n_ && report.verified; ++i) {
    double ref = 0;
    for (std::int64_t j = 0; j < n_; ++j)
      ref += core::unpack_double(
                 matrix[static_cast<std::size_t>(i * n_ + j)]) *
             x[static_cast<std::size_t>(j)];
    if (std::abs(ref - y[static_cast<std::size_t>(i)]) > 1e-9)
      report.verified = false;
  }
  return report;
}

}  // namespace polymem::apps
