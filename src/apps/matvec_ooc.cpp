#include "apps/matvec_ooc.hpp"

#include <vector>

#include "common/error.hpp"
#include "core/layout.hpp"

namespace polymem::apps {

OocMatVecReport ooc_matvec(maxsim::LMem& lmem, core::PolyMem& mem,
                           const maxsim::LMemMatrix& a,
                           std::span<const double> x, std::span<double> y,
                           const cache::CacheOptions& options) {
  POLYMEM_REQUIRE(x.size() == static_cast<std::size_t>(a.cols),
                  "x does not match the matrix columns");
  POLYMEM_REQUIRE(y.size() == static_cast<std::size_t>(a.rows),
                  "y does not match the matrix rows");

  cache::CachedMatrix cached(
      lmem, mem, a, core::FramePool::default_tiling(mem.config()), options);

  OocMatVecReport report;
  report.rows = a.rows;
  report.cols = a.cols;

  std::vector<hw::Word> row(static_cast<std::size_t>(a.cols));
  for (std::int64_t i = 0; i < a.rows; ++i) {
    cached.read_row(i, 0, row);
    double acc = 0;
    for (std::int64_t j = 0; j < a.cols; ++j)
      acc += core::unpack_double(row[static_cast<std::size_t>(j)]) *
             x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }

  report.cache = cached.stats();
  return report;
}

}  // namespace polymem::apps
