#include "apps/stencil_app.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace polymem::apps {

using access::Coord;
using access::PatternKind;

namespace {

constexpr unsigned kP = 2;
constexpr unsigned kQ = 4;
constexpr unsigned kReadsPerTile = 4;

core::PolyMemConfig make_config(std::int64_t n, unsigned read_latency) {
  POLYMEM_REQUIRE(n >= 8 && n % kP == 0 && n % kQ == 0,
                  "grid size must be >= 8 and a multiple of 2 and 4");
  core::PolyMemConfig cfg;
  cfg.scheme = maf::Scheme::kReO;  // unaligned rectangles
  cfg.p = kP;
  cfg.q = kQ;
  cfg.height = 2 * n;
  cfg.width = n;
  cfg.read_latency = read_latency;
  cfg.validate();
  return cfg;
}

}  // namespace

StencilApp::StencilApp(std::int64_t n, unsigned read_latency)
    : n_(n), mem_(make_config(n, read_latency)) {}

sched::TraceRecorder StencilApp::make_recorder(std::uint64_t seed) const {
  return {mem_.config().p, mem_.config().q, mem_.config().height,
          mem_.config().width, seed};
}

void StencilApp::load_grid(std::span<const double> values) {
  POLYMEM_REQUIRE(values.size() == static_cast<std::size_t>(n_ * n_),
                  "grid must be n*n doubles");
  // Bulk host fill: one region bounds check, direct bank pokes. (ReO does
  // not serve rows, so the batched row engine is not an option here.)
  std::vector<hw::Word> words(values.size());
  for (std::size_t k = 0; k < values.size(); ++k)
    words[k] = core::pack_double(values[k]);
  mem_.functional().fill_rect({0, 0}, n_, n_, words);
}

double StencilApp::output(std::int64_t i, std::int64_t j) const {
  return core::unpack_double(mem_.functional().load({n_ + i, j}));
}

double StencilApp::host_reference(std::int64_t i, std::int64_t j) const {
  double sum = 0;
  for (std::int64_t di = -1; di <= 1; ++di)
    for (std::int64_t dj = -1; dj <= 1; ++dj)
      sum += core::unpack_double(
          mem_.functional().load({i + di, j + dj}));
  return sum / 9.0;
}

AppReport StencilApp::run() {
  // Interior output tiles: anchors (ti, tj), ti in [1, n-1-p], step p.
  struct Tile {
    Coord anchor;                      // output tile anchor
    std::array<double, 4 * 6> halo{};  // (p+2) x (q+2) input window
    unsigned pending = kReadsPerTile;
  };
  std::vector<Tile> tiles;
  for (std::int64_t ti = 1; ti + kP <= n_ - 1; ti += kP)
    for (std::int64_t tj = 1; tj + kQ <= n_ - 1; tj += kQ)
      tiles.push_back({{ti, tj}, {}, kReadsPerTile});

  // The four halo-gather anchors of a tile, relative to (ti-1, tj-1).
  constexpr std::array<Coord, kReadsPerTile> kGather = {
      Coord{0, 0}, Coord{0, 2}, Coord{2, 0}, Coord{2, 2}};

  AppReport report;
  const std::uint64_t start = mem_.cycles();
  const std::size_t total_reads = tiles.size() * kReadsPerTile;
  std::size_t issued = 0;
  std::size_t completed_tiles = 0;
  std::vector<hw::Word> out_tile(kP * kQ);

  while (completed_tiles < tiles.size()) {
    if (issued < total_reads) {
      const std::size_t t = issued / kReadsPerTile;
      const Coord g = kGather[issued % kReadsPerTile];
      const Coord anchor{tiles[t].anchor.i - 1 + g.i,
                         tiles[t].anchor.j - 1 + g.j};
      if (recorder_) recorder_->read({PatternKind::kRect, anchor});
      const bool ok = mem_.issue_read(0, {PatternKind::kRect, anchor},
                                      static_cast<std::uint64_t>(issued));
      POLYMEM_ASSERT(ok);
      (void)ok;
      ++issued;
      ++report.parallel_reads;
    }
    mem_.tick();
    if (auto resp = mem_.retire_read(0)) {
      const std::size_t t = resp->tag / kReadsPerTile;
      const Coord g = kGather[resp->tag % kReadsPerTile];
      Tile& tile = tiles[t];
      // Scatter the 2x4 read into the 4x6 halo buffer.
      for (unsigned u = 0; u < kP; ++u)
        for (unsigned v = 0; v < kQ; ++v)
          tile.halo[static_cast<std::size_t>((g.i + u) * 6 + g.j + v)] =
              core::unpack_double(
                  resp->data[static_cast<std::size_t>(u * kQ + v)]);
      if (--tile.pending == 0) {
        // Compute the output tile and push it through the write port.
        for (unsigned u = 0; u < kP; ++u) {
          for (unsigned v = 0; v < kQ; ++v) {
            double sum = 0;
            for (unsigned du = 0; du <= 2; ++du)
              for (unsigned dv = 0; dv <= 2; ++dv)
                sum += tile.halo[static_cast<std::size_t>(
                    (u + du) * 6 + v + dv)];
            out_tile[static_cast<std::size_t>(u * kQ + v)] =
                core::pack_double(sum / 9.0);
          }
        }
        if (recorder_)
          recorder_->write(
              {PatternKind::kRect, {n_ + tile.anchor.i, tile.anchor.j}});
        const bool ok = mem_.issue_write(
            {PatternKind::kRect, {n_ + tile.anchor.i, tile.anchor.j}},
            out_tile);
        POLYMEM_ASSERT(ok);
        (void)ok;
        ++report.parallel_writes;
        ++completed_tiles;
      }
    }
  }
  mem_.tick();  // land the final write
  report.cycles = mem_.cycles() - start;
  // Scalar equivalent: 9 loads + 1 store per output element.
  report.elements_touched = tiles.size() * kP * kQ * 10;

  report.verified = true;
  for (const Tile& tile : tiles) {
    for (unsigned u = 0; u < kP && report.verified; ++u)
      for (unsigned v = 0; v < kQ; ++v) {
        const std::int64_t i = tile.anchor.i + u, j = tile.anchor.j + v;
        if (std::abs(output(i, j) - host_reference(i, j)) > 1e-12) {
          report.verified = false;
          break;
        }
      }
  }
  return report;
}

}  // namespace polymem::apps
