#include "apps/histogram_app.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace polymem::apps {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;
using core::AccessBatch;

namespace {

constexpr std::int64_t pad_to(std::int64_t v, std::int64_t m) {
  return (v + m - 1) / m * m;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Keep the trace lint bounded when the bench scatters many samples.
constexpr std::int64_t kMaxLintedAccesses = 4096;

}  // namespace

HistogramScatterApp::HistogramScatterApp(std::int64_t n_bins,
                                         std::int64_t cols,
                                         maf::Scheme scheme, unsigned p,
                                         unsigned q)
    : n_bins_(n_bins),
      cols_(cols),
      lanes_(static_cast<std::int64_t>(p) * q),
      rows_(0) {
  POLYMEM_REQUIRE(n_bins >= 1 && cols >= 1 && n_bins % cols == 0,
                  "bin count must be a positive multiple of cols");
  rows_ = lanes_ * (n_bins_ / cols_);

  chip_cfg_.scheme = scheme;
  chip_cfg_.p = p;
  chip_cfg_.q = q;
  chip_cfg_.height = 4 * lanes_;  // four column-block frames
  chip_cfg_.width = pad_to(cols_, q);
  chip_cfg_.validate();

  lmem_ = std::make_unique<maxsim::LMem>(1 << 22);
  chip_ = std::make_unique<core::PolyMem>(chip_cfg_);
  const maxsim::LMemMatrix matrix{0, rows_, cols_, cols_};
  cached_ = std::make_unique<cache::CachedMatrix>(
      *lmem_, *chip_, matrix,
      core::FramePool::whole_space(chip_cfg_, lanes_, chip_cfg_.width));
}

sched::TraceRecorder HistogramScatterApp::make_recorder(
    std::uint64_t seed) const {
  return {chip_cfg_.p, chip_cfg_.q, rows_, cols_, seed};
}

std::uint64_t HistogramScatterApp::bin_total(std::int64_t b) {
  POLYMEM_REQUIRE(b >= 0 && b < n_bins_, "bin out of range");
  std::vector<hw::Word> column(static_cast<std::size_t>(lanes_));
  cached_->read_block(lanes_ * (b / cols_), b % cols_, lanes_, 1, column);
  std::uint64_t total = 0;
  for (hw::Word w : column) total += w;
  return total;
}

AppReport HistogramScatterApp::run(std::int64_t samples, std::uint64_t seed) {
  POLYMEM_REQUIRE(samples >= 0, "negative sample count");
  const auto p = chip_cfg_.p;
  const auto q = chip_cfg_.q;

  std::vector<std::uint64_t> host(
      static_cast<std::size_t>(n_bins_ * lanes_));
  std::vector<ParallelAccess> linted;
  linted.reserve(static_cast<std::size_t>(
      std::min(samples, kMaxLintedAccesses)));
  std::vector<hw::Word> column(static_cast<std::size_t>(lanes_));

  AppReport report;
  std::uint64_t rng = seed;
  for (std::int64_t s = 0; s < samples; ++s) {
    const std::uint64_t x = splitmix64(rng);
    // Zipf-ish skew: cube of a uniform deviate piles samples onto the
    // low bins — the hot-spot shape that makes scatter-add conflict.
    const double u =
        static_cast<double>(x >> 11) * 0x1.0p-53;
    const auto b = std::min<std::int64_t>(
        n_bins_ - 1,
        static_cast<std::int64_t>(static_cast<double>(n_bins_) * u * u * u));
    const std::int64_t lane = static_cast<std::int64_t>(x % static_cast<std::uint64_t>(lanes_));
    const Coord anchor{lanes_ * (b / cols_), b % cols_};

    if (recorder_) recorder_->read({PatternKind::kCol, anchor});
    cached_->read_block(anchor.i, anchor.j, lanes_, 1, column);
    ++column[static_cast<std::size_t>(lane)];
    if (recorder_) recorder_->write({PatternKind::kCol, anchor});
    cached_->write_block(anchor.i, anchor.j, lanes_, 1, column);

    ++host[static_cast<std::size_t>(b * lanes_ + lane)];
    if (static_cast<std::int64_t>(linted.size()) < kMaxLintedAccesses)
      linted.push_back({PatternKind::kCol, anchor});

    ++report.parallel_reads;
    ++report.parallel_writes;
  }
  cached_->flush();
  report.elements_touched = static_cast<std::uint64_t>(2 * samples * lanes_);
  report.cycles = cached_->stats().total_polymem_cycles();

  // Verify LMem against the host histogram, sub-bin for sub-bin.
  report.verified = true;
  std::vector<hw::Word> row(static_cast<std::size_t>(cols_));
  for (std::int64_t i = 0; i < rows_ && report.verified; ++i) {
    lmem_->read(static_cast<std::uint64_t>(i * cols_), row);
    for (std::int64_t j = 0; j < cols_; ++j) {
      const std::int64_t b = (i / lanes_) * cols_ + j;
      if (row[static_cast<std::size_t>(j)] !=
          host[static_cast<std::size_t>(b * lanes_ + i % lanes_)]) {
        report.verified = false;
        break;
      }
    }
  }

  // Provoke the linter with the parallel formulation the kernel WANTS:
  // strided column batches hammering the hottest bin, write before
  // read. On a row-oriented scheme this is the PML003 + PML008 case.
  std::int64_t hot = 0;
  std::uint64_t hot_count = 0;
  for (std::int64_t b = 0; b < n_bins_; ++b) {
    std::uint64_t total = 0;
    for (std::int64_t l = 0; l < lanes_; ++l)
      total += host[static_cast<std::size_t>(b * lanes_ + l)];
    if (total > hot_count) {
      hot_count = total;
      hot = b;
    }
  }
  core::PolyMemConfig lint_cfg;
  lint_cfg.scheme = chip_cfg_.scheme;
  lint_cfg.p = p;
  lint_cfg.q = q;
  lint_cfg.height = pad_to(rows_, p);
  lint_cfg.width = pad_to(cols_, q);
  lint_cfg.validate();
  const Coord hot_anchor{lanes_ * (hot / cols_), hot % cols_};
  const AccessBatch hot_batch =
      AccessBatch::strided(PatternKind::kCol, hot_anchor, {0, 0}, 4);
  lint_ = verify::lint_program(
      lint_cfg, {{verify::BatchOp::Dir::kWrite, hot_batch},
                 {verify::BatchOp::Dir::kRead, hot_batch}});
  const auto trace_lint = verify::lint_trace(
      lint_cfg, sched::AccessTrace::from_accesses(linted, p, q));
  lint_.diagnostics.insert(lint_.diagnostics.end(),
                           trace_lint.diagnostics.begin(),
                           trace_lint.diagnostics.end());
  // The aggregate trace dedups into a bank-balanced element set; the
  // imbalance witness is the hottest bin's working set alone — one
  // column whose `lanes` elements land in only p of the p*q banks on a
  // row-oriented scheme (a column-capable scheme spreads them evenly,
  // and the warning stays silent).
  std::vector<ParallelAccess> hot_accesses;
  for (const ParallelAccess& a : linted)
    if (a.anchor.i == hot_anchor.i && a.anchor.j == hot_anchor.j)
      hot_accesses.push_back(a);
  const auto hot_lint = verify::lint_trace(
      lint_cfg, sched::AccessTrace::from_accesses(hot_accesses, p, q));
  lint_.diagnostics.insert(lint_.diagnostics.end(),
                           hot_lint.diagnostics.begin(),
                           hot_lint.diagnostics.end());
  return report;
}

}  // namespace polymem::apps
