// Histogram scatter-add — the suite's deliberate conflict provoker.
//
// Bins live out-of-core as a sub-binned matrix: bin b owns the L = p*q
// sub-bin column at (L * (b / cols), b % cols), and each sample
// increments one lane of its bin's column (read column, bump one
// sub-bin, write it back) through a CachedMatrix. Column anchors land
// on arbitrary columns, and the 1-wide blocks can never take the
// batched row path — on a row-oriented scheme (the ReRo default) every
// update runs the SCALAR FALLBACK, one PolyMem access per element, the
// honest cost of a scheme mismatch the cache layer promises.
//
// The app also lints the parallel formulation it *wants* — strided
// column batches hammering the hottest bins — against its scheme, and
// lints the recorded trace's bank load. On ReRo that provokes the
// diagnostics this app exists to exercise: PML003 unsupported-pattern
// errors, PML008 read-after-write hazards on the repeated hot anchor,
// and a PML010 bank-imbalance warning from the skewed sample stream.
// Replaying the same recorded trace on a column-capable scheme (RoCo)
// services it batched — polymorphism rescuing the same access stream.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/app_report.hpp"
#include "cache/cached_matrix.hpp"
#include "sched/trace_io.hpp"
#include "verify/plan_lint.hpp"

namespace polymem::apps {

class HistogramScatterApp {
 public:
  /// n_bins must be a multiple of cols (bins pack into full block rows).
  explicit HistogramScatterApp(std::int64_t n_bins, std::int64_t cols,
                               maf::Scheme scheme = maf::Scheme::kReRo,
                               unsigned p = 2, unsigned q = 4);

  std::int64_t n_bins() const { return n_bins_; }
  std::int64_t sub_bins() const { return lanes_; }

  /// Bins-matrix geometry (rows = L * n_bins / cols).
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  /// Records every column update the kernel issues (nullptr disables).
  void set_recorder(sched::TraceRecorder* recorder) { recorder_ = recorder; }
  /// A recorder matching the bins-matrix address space.
  sched::TraceRecorder make_recorder(std::uint64_t seed = 42) const;

  /// Scatters `samples` Zipf-skewed samples; verification flushes the
  /// cache and compares LMem against a host histogram.
  AppReport run(std::int64_t samples, std::uint64_t seed = 1);

  /// Sum of bin b's sub-bins after run() (reads through the cache).
  std::uint64_t bin_total(std::int64_t b);

  /// Diagnostics provoked by run(): the hot-bin column program linted
  /// against this scheme, plus the recorded trace's bank-load lint.
  const verify::LintReport& lint_report() const { return lint_; }

  cache::CacheStats stats() const { return cached_->stats(); }

 private:
  std::int64_t n_bins_, cols_, lanes_, rows_;
  core::PolyMemConfig chip_cfg_;
  std::unique_ptr<maxsim::LMem> lmem_;
  std::unique_ptr<core::PolyMem> chip_;
  std::unique_ptr<cache::CachedMatrix> cached_;
  verify::LintReport lint_;
  sched::TraceRecorder* recorder_ = nullptr;
};

}  // namespace polymem::apps
