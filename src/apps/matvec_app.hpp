// Pipelined dense matrix-vector multiply on the cycle-accurate PolyMem.
//
// y = A * x with A cached on chip (ReRo scheme, row accesses): the kernel
// streams one full-width row segment per cycle — the memory-bound inner
// loop that the paper's bandwidth numbers are about. Steady state: p*q
// multiply-accumulates per cycle, limited purely by the parallel memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/app_report.hpp"
#include "core/cycle_polymem.hpp"
#include "core/layout.hpp"
#include "sched/trace_io.hpp"

namespace polymem::apps {

class MatVecApp {
 public:
  /// y = A x for an n x n matrix of doubles; n must be a multiple of the
  /// lane count (p*q).
  explicit MatVecApp(std::int64_t n, unsigned p = 2, unsigned q = 4,
                     unsigned read_latency = 14);

  core::CyclePolyMem& memory() { return mem_; }
  std::int64_t n() const { return n_; }

  /// Loads A (row-major, n*n doubles).
  void load_matrix(std::span<const double> values);

  /// Computes y = A x; the result lands in `y` (size n). Verification
  /// compares against the host dot products.
  AppReport run(std::span<const double> x, std::span<double> y);

  /// Records every access the kernel issues (nullptr disables).
  void set_recorder(sched::TraceRecorder* recorder) { recorder_ = recorder; }
  /// A recorder matching this app's geometry and address space.
  sched::TraceRecorder make_recorder(std::uint64_t seed = 42) const;

 private:
  std::int64_t n_;
  core::CyclePolyMem mem_;
  sched::TraceRecorder* recorder_ = nullptr;
};

}  // namespace polymem::apps
