// Tiled dense GEMM on the batched PolyMem engine (rectangle family).
//
// C = A * B for n x n matrices of doubles, all three resident in one
// PolyMem (A rows [0,n), B rows [n,2n), C rows [2n,3n)). The kernel
// walks C in p x q output tiles; per tile it reads A's p-row k-panel as
// one strided batch of p x q rectangles and B's j-column k-panel as
// another (q consecutive B rows arrive as q/p stacked rectangles), then
// writes the finished tile with a single rectangle access. Every anchor
// sits on the (p, q)-aligned lattice, so the kernel runs unchanged on
// ALL five schemes — including RoCo, whose rectangles are aligned-only —
// which is exactly the polymorphic-memory claim the app suite exists to
// exercise.
//
// The app runs on the functional memory through the batched/compiled
// engine; reported cycles model one parallel access per cycle (the
// steady-state throughput of the pipelined hardware).
#pragma once

#include <cstdint>
#include <span>

#include "apps/app_report.hpp"
#include "core/polymem.hpp"
#include "sched/trace_io.hpp"

namespace polymem::apps {

class TiledGemmApp {
 public:
  /// n must be a multiple of q; q must be a multiple of p (the B panel
  /// is q rows fetched as q/p rectangles).
  explicit TiledGemmApp(std::int64_t n,
                        maf::Scheme scheme = maf::Scheme::kReO,
                        unsigned p = 2, unsigned q = 4);

  core::PolyMem& memory() { return mem_; }
  std::int64_t n() const { return n_; }

  /// Records every batch the kernel issues (nullptr disables).
  void set_recorder(sched::TraceRecorder* recorder) { recorder_ = recorder; }
  /// A recorder matching this app's geometry and address space.
  sched::TraceRecorder make_recorder(std::uint64_t seed = 42) const;

  /// Loads A and B (row-major, n*n doubles each).
  void load(std::span<const double> a, std::span<const double> b);

  /// Runs the multiply; verification compares C against a host GEMM
  /// computed in the same accumulation order.
  AppReport run();

  /// C(i, j) after run().
  double c_at(std::int64_t i, std::int64_t j) const;

 private:
  std::int64_t n_;
  core::PolyMem mem_;
  sched::TraceRecorder* recorder_ = nullptr;
};

}  // namespace polymem::apps
