#include "apps/tiled_gemm_app.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "core/layout.hpp"

namespace polymem::apps {

using access::PatternKind;
using core::AccessBatch;

namespace {

core::PolyMemConfig make_config(std::int64_t n, maf::Scheme scheme,
                                unsigned p, unsigned q) {
  POLYMEM_REQUIRE(n >= 1 && n % q == 0 && n % p == 0,
                  "matrix size must be a multiple of both bank dimensions");
  POLYMEM_REQUIRE(q % p == 0, "q must be a multiple of p (B k-panels)");
  core::PolyMemConfig cfg;
  cfg.scheme = scheme;
  cfg.p = p;
  cfg.q = q;
  cfg.height = 3 * n;
  cfg.width = n;
  cfg.validate();
  return cfg;
}

}  // namespace

TiledGemmApp::TiledGemmApp(std::int64_t n, maf::Scheme scheme, unsigned p,
                           unsigned q)
    : n_(n), mem_(make_config(n, scheme, p, q)) {}

sched::TraceRecorder TiledGemmApp::make_recorder(std::uint64_t seed) const {
  return {mem_.config().p, mem_.config().q, mem_.config().height,
          mem_.config().width, seed};
}

void TiledGemmApp::load(std::span<const double> a,
                        std::span<const double> b) {
  POLYMEM_REQUIRE(a.size() == static_cast<std::size_t>(n_ * n_) &&
                      b.size() == static_cast<std::size_t>(n_ * n_),
                  "matrices must be n*n doubles");
  std::vector<hw::Word> words(a.size());
  for (std::size_t k = 0; k < a.size(); ++k)
    words[k] = core::pack_double(a[k]);
  mem_.fill_rect({0, 0}, n_, n_, words);
  for (std::size_t k = 0; k < b.size(); ++k)
    words[k] = core::pack_double(b[k]);
  mem_.fill_rect({n_, 0}, n_, n_, words);
}

double TiledGemmApp::c_at(std::int64_t i, std::int64_t j) const {
  return core::unpack_double(mem_.load({2 * n_ + i, j}));
}

AppReport TiledGemmApp::run() {
  const std::int64_t p = mem_.config().p, q = mem_.config().q;
  const auto lanes = static_cast<std::int64_t>(mem_.lanes());
  const std::int64_t a_segs = n_ / q;  // rects per A k-panel
  const std::int64_t b_segs = n_ / p;  // rects per B k-panel

  AppReport report;
  std::vector<hw::Word> a_panel(static_cast<std::size_t>(a_segs * lanes));
  std::vector<hw::Word> b_panel(static_cast<std::size_t>(b_segs * lanes));
  std::vector<hw::Word> c_tile(static_cast<std::size_t>(lanes));
  std::vector<double> acc(static_cast<std::size_t>(lanes));

  for (std::int64_t i0 = 0; i0 < n_; i0 += p) {
    // A's k-panel depends only on the tile row; hoisted batch reuse is
    // the plan-cache's job, re-reading keeps the trace honest.
    const AccessBatch a_batch =
        AccessBatch::strided(PatternKind::kRect, {i0, 0}, {0, q}, a_segs);
    for (std::int64_t j0 = 0; j0 < n_; j0 += q) {
      const AccessBatch b_batch = AccessBatch::strided(
          PatternKind::kRect, {n_, j0}, {p, 0}, b_segs);
      if (recorder_) recorder_->read_batch(a_batch);
      mem_.read_batch(a_batch, 0, a_panel);
      if (recorder_) recorder_->read_batch(b_batch);
      mem_.read_batch(b_batch, 0, b_panel);
      report.parallel_reads += a_segs + b_segs;

      std::fill(acc.begin(), acc.end(), 0.0);
      for (std::int64_t k = 0; k < n_; ++k) {
        // A lane (u, k % q) of segment k / q; B lane (k % p, v) of
        // segment k / p.
        for (std::int64_t u = 0; u < p; ++u) {
          const double a_uk = core::unpack_double(
              a_panel[static_cast<std::size_t>((k / q) * lanes + u * q +
                                               k % q)]);
          for (std::int64_t v = 0; v < q; ++v)
            acc[static_cast<std::size_t>(u * q + v)] +=
                a_uk * core::unpack_double(b_panel[static_cast<std::size_t>(
                           (k / p) * lanes + (k % p) * q + v)]);
        }
      }
      for (std::int64_t l = 0; l < lanes; ++l)
        c_tile[static_cast<std::size_t>(l)] =
            core::pack_double(acc[static_cast<std::size_t>(l)]);
      const AccessBatch c_batch = AccessBatch::strided(
          PatternKind::kRect, {2 * n_ + i0, j0}, {0, 0}, 1);
      if (recorder_) recorder_->write_batch(c_batch);
      mem_.write_batch(c_batch, c_tile);
      ++report.parallel_writes;
    }
  }

  report.cycles = report.parallel_reads + report.parallel_writes;
  report.elements_touched = report.cycles * static_cast<std::uint64_t>(lanes);

  // Host reference in the same accumulation order (k ascending), so the
  // comparison is exact, not epsilon-smeared.
  report.verified = true;
  const auto elems = static_cast<std::size_t>(n_ * n_);
  std::vector<hw::Word> a(elems), b(elems), c(elems);
  mem_.dump_rect({0, 0}, n_, n_, a);
  mem_.dump_rect({n_, 0}, n_, n_, b);
  mem_.dump_rect({2 * n_, 0}, n_, n_, c);
  for (std::int64_t i = 0; i < n_ && report.verified; ++i)
    for (std::int64_t j = 0; j < n_; ++j) {
      double ref = 0;
      for (std::int64_t k = 0; k < n_; ++k)
        ref += core::unpack_double(a[static_cast<std::size_t>(i * n_ + k)]) *
               core::unpack_double(b[static_cast<std::size_t>(k * n_ + j)]);
      if (core::unpack_double(c[static_cast<std::size_t>(i * n_ + j)]) !=
          ref) {
        report.verified = false;
        break;
      }
    }
  return report;
}

}  // namespace polymem::apps
