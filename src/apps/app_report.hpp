// Common reporting for PolyMem-backed application kernels.
//
// Every app in this module runs on the cycle-accurate memory and reports
// the same metrics, so the bench can compare kernels uniformly and
// against the scalar baseline (one element per cycle) the paper's
// bandwidth argument implies.
#pragma once

#include <cstdint>

namespace polymem::apps {

struct AppReport {
  std::uint64_t cycles = 0;             ///< simulated kernel cycles
  std::uint64_t parallel_reads = 0;     ///< read accesses issued
  std::uint64_t parallel_writes = 0;    ///< write accesses issued
  std::uint64_t elements_touched = 0;   ///< scalar-equivalent accesses
  bool verified = false;                ///< output matched host reference

  /// Elements moved per cycle (the utilisation of the parallel memory).
  double elements_per_cycle() const {
    return cycles ? static_cast<double>(elements_touched) /
                        static_cast<double>(cycles)
                  : 0.0;
  }

  /// Speedup over a one-element-per-cycle scalar memory.
  double speedup_vs_scalar() const { return elements_per_cycle(); }
};

}  // namespace polymem::apps
