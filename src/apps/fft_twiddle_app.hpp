// FFT-style transpose-and-twiddle stage on two polymorphic memories.
//
// Computes dst(r, c) = src(c, r) * w[(r * c) mod n] for an n x n matrix
// of doubles — the data-reordering core of a four-step FFT, where a
// transpose and a twiddle-factor multiply land between the two batched
// sub-FFT passes. Two PolyMems carry the stage:
//
//  * a 2n x n ReTr data memory (source rows [0, n), destination rows
//    [n, 2n)) read as p x q rectangles and written back as q x p
//    transposed rectangles — the rect/trect multiview only ReTr serves
//    conflict-free;
//  * an n-row ReRo twiddle ROM holding each tile's p*q factors along a
//    MAIN DIAGONAL. Tile t lives at anchor (L*(t mod n/L), t / (n/L))
//    with L = p*q, so consecutive tiles pack diagonally with unaligned
//    column anchors — exercising ReRo's any-anchor diagonal support and
//    the strided-diagonal batch path end to end.
//
// The ROM sits in its own memory, so its reads overlap the data
// memory's traffic; reported cycles count only data-memory accesses.
#pragma once

#include <cstdint>
#include <span>

#include "apps/app_report.hpp"
#include "core/polymem.hpp"
#include "sched/trace_io.hpp"

namespace polymem::apps {

class FftTwiddleApp {
 public:
  /// n must be a multiple of p*q (tiles cover the matrix exactly and
  /// each tile's twiddles form one full diagonal access).
  explicit FftTwiddleApp(std::int64_t n, unsigned p = 2, unsigned q = 4);

  core::PolyMem& memory() { return mem_; }
  core::PolyMem& rom() { return rom_; }
  std::int64_t n() const { return n_; }

  /// The twiddle factor applied at destination element (r, c).
  double twiddle(std::int64_t r, std::int64_t c) const;

  /// Records the data-memory batches / the ROM's diagonal batch
  /// (nullptr disables either).
  void set_recorders(sched::TraceRecorder* data, sched::TraceRecorder* rom) {
    data_recorder_ = data;
    rom_recorder_ = rom;
  }
  sched::TraceRecorder make_data_recorder(std::uint64_t seed = 42) const;
  sched::TraceRecorder make_rom_recorder(std::uint64_t seed = 42) const;

  /// Loads the source matrix (row-major, n*n doubles).
  void load(std::span<const double> src);

  /// Runs the stage; verification compares the destination band against
  /// src(c, r) * twiddle(r, c) computed on the host.
  AppReport run();

  /// dst(r, c) after run().
  double dst_at(std::int64_t r, std::int64_t c) const;

 private:
  std::int64_t n_;
  core::PolyMem mem_;
  core::PolyMem rom_;
  sched::TraceRecorder* data_recorder_ = nullptr;
  sched::TraceRecorder* rom_recorder_ = nullptr;
};

}  // namespace polymem::apps
