#include "apps/fft_twiddle_app.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "core/layout.hpp"

namespace polymem::apps {

using access::PatternKind;
using core::AccessBatch;

namespace {

core::PolyMemConfig data_config(std::int64_t n, unsigned p, unsigned q) {
  const std::int64_t lanes = static_cast<std::int64_t>(p) * q;
  POLYMEM_REQUIRE(n >= lanes && n % lanes == 0,
                  "matrix size must be a multiple of p*q");
  core::PolyMemConfig cfg;
  cfg.scheme = maf::Scheme::kReTr;
  cfg.p = p;
  cfg.q = q;
  cfg.height = 2 * n;
  cfg.width = n;
  cfg.validate();
  return cfg;
}

core::PolyMemConfig rom_config(std::int64_t n, unsigned p, unsigned q) {
  const std::int64_t lanes = static_cast<std::int64_t>(p) * q;
  core::PolyMemConfig cfg;
  cfg.scheme = maf::Scheme::kReRo;
  cfg.p = p;
  cfg.q = q;
  cfg.height = n;
  // Diagonals starting in column c < n reach column c + lanes - 1; pad
  // the overhang to a q multiple.
  const std::int64_t w = n + lanes - 1;
  cfg.width = (w + q - 1) / q * q;
  cfg.validate();
  return cfg;
}

}  // namespace

FftTwiddleApp::FftTwiddleApp(std::int64_t n, unsigned p, unsigned q)
    : n_(n), mem_(data_config(n, p, q)), rom_(rom_config(n, p, q)) {
  POLYMEM_REQUIRE(
      rom_.supports(PatternKind::kMainDiag) == maf::SupportLevel::kAny,
      "twiddle ROM scheme must serve diagonals at any anchor");
}

double FftTwiddleApp::twiddle(std::int64_t r, std::int64_t c) const {
  const auto k = static_cast<double>((r * c) % n_);
  return std::cos(2.0 * std::numbers::pi * k / static_cast<double>(n_));
}

sched::TraceRecorder FftTwiddleApp::make_data_recorder(
    std::uint64_t seed) const {
  return {mem_.config().p, mem_.config().q, mem_.config().height,
          mem_.config().width, seed};
}

sched::TraceRecorder FftTwiddleApp::make_rom_recorder(
    std::uint64_t seed) const {
  return {rom_.config().p, rom_.config().q, rom_.config().height,
          rom_.config().width, seed};
}

void FftTwiddleApp::load(std::span<const double> src) {
  POLYMEM_REQUIRE(src.size() == static_cast<std::size_t>(n_ * n_),
                  "source must be n*n doubles");
  std::vector<hw::Word> words(src.size());
  for (std::size_t k = 0; k < src.size(); ++k)
    words[k] = core::pack_double(src[k]);
  mem_.fill_rect({0, 0}, n_, n_, words);

  // Skewed twiddle ROM: tile t = bi*(n/q) + bj keeps its L factors on
  // the main diagonal anchored at (L * (t % (n/L)), t / (n/L)); lane
  // l = u*p + v holds the factor for destination element
  // (q*bj + u, p*bi + v).
  const std::int64_t p = mem_.config().p, q = mem_.config().q;
  const std::int64_t lanes = p * q;
  const auto rom_w = rom_.config().width;
  std::vector<hw::Word> image(
      static_cast<std::size_t>(rom_.config().height * rom_w));
  for (std::int64_t bi = 0; bi < n_ / p; ++bi)
    for (std::int64_t bj = 0; bj < n_ / q; ++bj) {
      const std::int64_t t = bi * (n_ / q) + bj;
      const std::int64_t row0 = lanes * (t % (n_ / lanes));
      const std::int64_t col0 = t / (n_ / lanes);
      for (std::int64_t u = 0; u < q; ++u)
        for (std::int64_t v = 0; v < p; ++v) {
          const std::int64_t l = u * p + v;
          image[static_cast<std::size_t>((row0 + l) * rom_w + col0 + l)] =
              core::pack_double(twiddle(q * bj + u, p * bi + v));
        }
    }
  rom_.fill_rect({0, 0}, rom_.config().height, rom_w, image);
}

double FftTwiddleApp::dst_at(std::int64_t r, std::int64_t c) const {
  return core::unpack_double(mem_.load({n_ + r, c}));
}

AppReport FftTwiddleApp::run() {
  const std::int64_t p = mem_.config().p, q = mem_.config().q;
  const std::int64_t lanes = p * q;
  const std::int64_t tiles = (n_ / p) * (n_ / q);

  // All three walks enumerate tiles in the same flat order
  // (bi outer, bj inner), so flat index t lines up across the buffers.
  const AccessBatch src_batch{PatternKind::kRect, {0, 0},
                              {0, q},             n_ / q,
                              {p, 0},             n_ / p};
  const AccessBatch rom_batch{PatternKind::kMainDiag, {0, 0},
                              {lanes, 0},            n_ / lanes,
                              {0, 1},                tiles / (n_ / lanes)};
  const AccessBatch dst_batch{PatternKind::kTRect, {n_, 0},
                              {q, 0},              n_ / q,
                              {0, p},              n_ / p};

  std::vector<hw::Word> src_words(static_cast<std::size_t>(tiles * lanes));
  std::vector<hw::Word> rom_words(src_words.size());
  std::vector<hw::Word> dst_words(src_words.size());

  if (data_recorder_) data_recorder_->read_batch(src_batch);
  mem_.read_batch(src_batch, 0, src_words);
  if (rom_recorder_) rom_recorder_->read_batch(rom_batch);
  rom_.read_batch(rom_batch, 0, rom_words);

  // Destination lane l = u*p + v of tile t transposes source lane
  // v*q + u and scales it by the tile's diagonal ROM lane l.
  for (std::int64_t t = 0; t < tiles; ++t)
    for (std::int64_t u = 0; u < q; ++u)
      for (std::int64_t v = 0; v < p; ++v) {
        const auto dst = static_cast<std::size_t>(t * lanes + u * p + v);
        const auto src = static_cast<std::size_t>(t * lanes + v * q + u);
        dst_words[dst] = core::pack_double(
            core::unpack_double(src_words[src]) *
            core::unpack_double(rom_words[dst]));
      }

  if (data_recorder_) data_recorder_->write_batch(dst_batch);
  mem_.write_batch(dst_batch, dst_words);

  AppReport report;
  report.parallel_reads = static_cast<std::uint64_t>(2 * tiles);
  report.parallel_writes = static_cast<std::uint64_t>(tiles);
  // The ROM streams from its own memory, overlapped with the data
  // memory's pipeline; the data port is the bottleneck.
  report.cycles = static_cast<std::uint64_t>(2 * tiles);
  report.elements_touched =
      static_cast<std::uint64_t>(3 * tiles) * static_cast<std::uint64_t>(lanes);

  report.verified = true;
  const auto elems = static_cast<std::size_t>(n_ * n_);
  std::vector<hw::Word> src_img(elems), dst_img(elems);
  mem_.dump_rect({0, 0}, n_, n_, src_img);
  mem_.dump_rect({n_, 0}, n_, n_, dst_img);
  for (std::int64_t r = 0; r < n_ && report.verified; ++r)
    for (std::int64_t c = 0; c < n_; ++c) {
      const double expected =
          core::unpack_double(src_img[static_cast<std::size_t>(c * n_ + r)]) *
          core::unpack_double(core::pack_double(twiddle(r, c)));
      if (core::unpack_double(dst_img[static_cast<std::size_t>(r * n_ + c)]) !=
          expected) {
        report.verified = false;
        break;
      }
    }
  return report;
}

}  // namespace polymem::apps
