// Pipelined matrix transpose on the cycle-accurate PolyMem (ReTr scheme).
//
// The kernel streams one rectangle read per cycle from the source band
// and, as each read retires, writes the transposed tile to the mirrored
// destination anchor in the SAME cycle through the independent write port
// — the concurrent read+write pattern of the paper's STREAM design, here
// with the rect/trect multiview that only ReTr provides. Steady state:
// p*q elements read AND p*q written per cycle.
#pragma once

#include <cstdint>

#include "apps/app_report.hpp"
#include "core/cycle_polymem.hpp"
#include "sched/trace_io.hpp"

namespace polymem::apps {

class TransposeApp {
 public:
  /// Transposes an n x n matrix of 64-bit words; n must be a multiple of
  /// both bank dimensions. The app owns a 2n x n ReTr PolyMem: source in
  /// rows [0, n), destination in rows [n, 2n).
  explicit TransposeApp(std::int64_t n, unsigned p = 2, unsigned q = 4,
                        unsigned read_latency = 14);

  core::CyclePolyMem& memory() { return mem_; }
  std::int64_t n() const { return n_; }

  /// Loads the source matrix (row-major, n*n words) via the host port.
  void load_source(std::span<const hw::Word> values);

  /// Runs the transpose; returns metrics. Verification compares the
  /// destination band against the transposed source.
  AppReport run();

  /// Destination element (i, j) == source (j, i) after run().
  hw::Word destination(std::int64_t i, std::int64_t j) const;

  /// Records every access the kernel issues (nullptr disables).
  void set_recorder(sched::TraceRecorder* recorder) { recorder_ = recorder; }
  /// A recorder matching this app's geometry and address space.
  sched::TraceRecorder make_recorder(std::uint64_t seed = 42) const;

 private:
  std::int64_t n_;
  core::CyclePolyMem mem_;
  sched::TraceRecorder* recorder_ = nullptr;
};

}  // namespace polymem::apps
