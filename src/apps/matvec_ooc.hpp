// Out-of-core dense matrix-vector multiply.
//
// y = A x with A resident in LMem and streamed through the software
// cache (cache::CachedMatrix): row panels of A fault into PolyMem frames
// on demand, so n is bounded by board DRAM instead of on-chip capacity —
// the out-of-core counterpart of apps::MatVecApp. The traversal is
// row-major, exactly the sequential sweep the cache's next-tile
// prefetcher predicts.
#pragma once

#include <cstdint>
#include <span>

#include "cache/cached_matrix.hpp"

namespace polymem::apps {

struct OocMatVecReport {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  cache::CacheStats cache;  ///< A-cache accounting (refills, hit rate)
};

/// y = A x for the rows x cols matrix `a` of packed doubles
/// (core::pack_double) in LMem. x holds cols values, y receives rows.
/// Cache frames default to core::FramePool::default_tiling(mem.config()).
OocMatVecReport ooc_matvec(maxsim::LMem& lmem, core::PolyMem& mem,
                           const maxsim::LMemMatrix& a,
                           std::span<const double> x, std::span<double> y,
                           const cache::CacheOptions& options = {});

}  // namespace polymem::apps
