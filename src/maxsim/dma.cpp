#include "maxsim/dma.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace polymem::maxsim {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;
using core::AccessBatch;

DmaStats& DmaStats::operator+=(const DmaStats& other) {
  words += other.words;
  polymem_accesses += other.polymem_accesses;
  polymem_cycles += other.polymem_cycles;
  lmem_seconds += other.lmem_seconds;
  cache += other.cache;
  return *this;
}

DmaEngine::DmaEngine(LMem& lmem, core::PolyMem& polymem)
    : lmem_(&lmem), mem_(&polymem) {}

DmaEngine::Shape DmaEngine::pick_shape(std::int64_t rows, std::int64_t cols,
                                       Coord origin) const {
  const auto& cfg = mem_->config();
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  if (cols % lanes == 0 &&
      maf::probe_support(mem_->maf(), PatternKind::kRow) ==
          maf::SupportLevel::kAny) {
    return Shape::kRowAccesses;
  }
  if (rows % cfg.p == 0 && cols % cfg.q == 0 &&
      maf::access_supported(mem_->maf(), {PatternKind::kRect, origin})) {
    // Rect anchors advance in p/q steps from the origin, so alignment (for
    // RoCo) holds at every tile position iff it holds at the origin.
    return Shape::kRectAccesses;
  }
  return Shape::kScalar;
}

void DmaEngine::check_tile(const LMemMatrix& m, std::int64_t tile_i,
                           std::int64_t tile_j, std::int64_t rows,
                           std::int64_t cols, Coord origin) const {
  POLYMEM_REQUIRE(rows >= 1 && cols >= 1, "tile must be non-empty");
  POLYMEM_REQUIRE(tile_i >= 0 && tile_j >= 0 && tile_i + rows <= m.rows &&
                      tile_j + cols <= m.cols,
                  "tile exceeds the LMem matrix");
  POLYMEM_REQUIRE(m.leading_dim >= m.cols, "bad leading dimension");
  const auto& cfg = mem_->config();
  POLYMEM_REQUIRE(origin.i >= 0 && origin.j >= 0 &&
                      origin.i + rows <= cfg.height &&
                      origin.j + cols <= cfg.width,
                  "tile exceeds the PolyMem address space");
}

void DmaEngine::check_staged(std::span<const hw::Word> tile,
                             std::int64_t rows, std::int64_t cols,
                             Coord origin) const {
  POLYMEM_REQUIRE(rows >= 1 && cols >= 1, "tile must be non-empty");
  POLYMEM_REQUIRE(tile.size() == static_cast<std::size_t>(rows * cols),
                  "staged buffer does not match the tile shape");
  const auto& cfg = mem_->config();
  POLYMEM_REQUIRE(origin.i >= 0 && origin.j >= 0 &&
                      origin.i + rows <= cfg.height &&
                      origin.j + cols <= cfg.width,
                  "tile exceeds the PolyMem address space");
}

void DmaEngine::write_staged_into(std::span<const hw::Word> tile,
                                  std::int64_t rows, std::int64_t cols,
                                  Coord origin, DmaStats& stats) {
  const auto& cfg = mem_->config();
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const Shape shape = pick_shape(rows, cols, origin);

  switch (shape) {
    case Shape::kRowAccesses: {
      // The batch's canonical-lane concatenation (inner = row segments,
      // outer = rows) is exactly the row-major tile buffer.
      const AccessBatch batch{PatternKind::kRow, origin,    {0, lanes},
                              cols / lanes,      {1, 0},    rows};
      if (batched_) {
        mem_->write_batch(batch, tile);
      } else {
        for (std::int64_t t = 0; t < batch.count(); ++t)
          mem_->write(batch.access(t),
                      tile.subspan(static_cast<std::size_t>(t * lanes),
                                   static_cast<std::size_t>(lanes)));
      }
      stats.polymem_accesses += static_cast<std::uint64_t>(batch.count());
      break;
    }
    case Shape::kRectAccesses: {
      // Re-stage row-major into per-access canonical groups: p x q block
      // row-major, blocks walked row-of-blocks first (the batch order).
      const AccessBatch batch{PatternKind::kRect,
                              origin,
                              {0, static_cast<std::int64_t>(cfg.q)},
                              cols / cfg.q,
                              {static_cast<std::int64_t>(cfg.p), 0},
                              rows / cfg.p};
      block_.resize(tile.size());
      std::int64_t g = 0;
      for (std::int64_t br = 0; br < rows; br += cfg.p)
        for (std::int64_t bc = 0; bc < cols; bc += cfg.q)
          for (std::int64_t u = 0; u < cfg.p; ++u)
            for (std::int64_t v = 0; v < cfg.q; ++v)
              block_[static_cast<std::size_t>(g++)] =
                  tile[static_cast<std::size_t>((br + u) * cols + bc + v)];
      if (batched_) {
        mem_->write_batch(batch, block_);
      } else {
        for (std::int64_t t = 0; t < batch.count(); ++t)
          mem_->write(batch.access(t),
                      std::span<const hw::Word>(block_).subspan(
                          static_cast<std::size_t>(t * lanes),
                          static_cast<std::size_t>(lanes)));
      }
      stats.polymem_accesses += static_cast<std::uint64_t>(batch.count());
      break;
    }
    case Shape::kScalar:
      for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < cols; ++c) {
          mem_->store({origin.i + r, origin.j + c},
                      tile[static_cast<std::size_t>(r * cols + c)]);
          ++stats.polymem_accesses;
        }
      break;
  }
}

void DmaEngine::read_staged_into(std::span<hw::Word> tile, std::int64_t rows,
                                 std::int64_t cols, Coord origin,
                                 DmaStats& stats) {
  const auto& cfg = mem_->config();
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const Shape shape = pick_shape(rows, cols, origin);

  switch (shape) {
    case Shape::kRowAccesses: {
      const AccessBatch batch{PatternKind::kRow, origin,    {0, lanes},
                              cols / lanes,      {1, 0},    rows};
      if (batched_) {
        mem_->read_batch(batch, 0, tile);
      } else {
        for (std::int64_t t = 0; t < batch.count(); ++t)
          mem_->read_into(batch.access(t), 0,
                          tile.subspan(static_cast<std::size_t>(t * lanes),
                                       static_cast<std::size_t>(lanes)));
      }
      stats.polymem_accesses += static_cast<std::uint64_t>(batch.count());
      break;
    }
    case Shape::kRectAccesses: {
      const AccessBatch batch{PatternKind::kRect,
                              origin,
                              {0, static_cast<std::int64_t>(cfg.q)},
                              cols / cfg.q,
                              {static_cast<std::int64_t>(cfg.p), 0},
                              rows / cfg.p};
      block_.resize(tile.size());
      if (batched_) {
        mem_->read_batch(batch, 0, block_);
      } else {
        for (std::int64_t t = 0; t < batch.count(); ++t)
          mem_->read_into(batch.access(t), 0,
                          std::span<hw::Word>(block_).subspan(
                              static_cast<std::size_t>(t * lanes),
                              static_cast<std::size_t>(lanes)));
      }
      std::int64_t g = 0;
      for (std::int64_t br = 0; br < rows; br += cfg.p)
        for (std::int64_t bc = 0; bc < cols; bc += cfg.q)
          for (std::int64_t u = 0; u < cfg.p; ++u)
            for (std::int64_t v = 0; v < cfg.q; ++v)
              tile[static_cast<std::size_t>((br + u) * cols + bc + v)] =
                  block_[static_cast<std::size_t>(g++)];
      stats.polymem_accesses += static_cast<std::uint64_t>(batch.count());
      break;
    }
    case Shape::kScalar:
      for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < cols; ++c) {
          tile[static_cast<std::size_t>(r * cols + c)] =
              mem_->load({origin.i + r, origin.j + c});
          ++stats.polymem_accesses;
        }
      break;
  }
}

DmaStats DmaEngine::write_staged(std::span<const hw::Word> tile,
                                 std::int64_t rows, std::int64_t cols,
                                 Coord origin) {
  check_staged(tile, rows, cols, origin);
  DmaStats stats;
  stats.words = static_cast<std::uint64_t>(rows * cols);
  write_staged_into(tile, rows, cols, origin, stats);
  stats.polymem_cycles = stats.polymem_accesses;
  return stats;
}

DmaStats DmaEngine::read_staged(std::span<hw::Word> tile, std::int64_t rows,
                                std::int64_t cols, Coord origin) {
  check_staged(tile, rows, cols, origin);
  DmaStats stats;
  stats.words = static_cast<std::uint64_t>(rows * cols);
  read_staged_into(tile, rows, cols, origin, stats);
  stats.polymem_cycles = stats.polymem_accesses;
  return stats;
}

DmaStats DmaEngine::load_tile(const LMemMatrix& src, std::int64_t tile_i,
                              std::int64_t tile_j, std::int64_t rows,
                              std::int64_t cols, Coord dst_origin) {
  check_tile(src, tile_i, tile_j, rows, cols, dst_origin);
  DmaStats stats;
  stats.words = static_cast<std::uint64_t>(rows * cols);
  stats.lmem_seconds =
      lmem_->burst_seconds(static_cast<std::uint64_t>(rows) * cols * 8);

  // The whole tile is staged row-major (the DMA's burst buffer).
  stage_.resize(static_cast<std::size_t>(rows * cols));
  for (std::int64_t r = 0; r < rows; ++r)
    lmem_->read(src.word_addr(tile_i + r, tile_j),
                std::span<hw::Word>(stage_).subspan(
                    static_cast<std::size_t>(r * cols),
                    static_cast<std::size_t>(cols)));

  write_staged_into(stage_, rows, cols, dst_origin, stats);
  stats.polymem_cycles = stats.polymem_accesses;
  return stats;
}

DmaStats DmaEngine::store_tile(const LMemMatrix& dst, std::int64_t tile_i,
                               std::int64_t tile_j, std::int64_t rows,
                               std::int64_t cols, Coord src_origin) {
  check_tile(dst, tile_i, tile_j, rows, cols, src_origin);
  DmaStats stats;
  stats.words = static_cast<std::uint64_t>(rows * cols);
  stats.lmem_seconds =
      lmem_->burst_seconds(static_cast<std::uint64_t>(rows) * cols * 8);

  stage_.resize(static_cast<std::size_t>(rows * cols));
  read_staged_into(stage_, rows, cols, src_origin, stats);

  for (std::int64_t r = 0; r < rows; ++r)
    lmem_->write(dst.word_addr(tile_i + r, tile_j),
                 std::span<const hw::Word>(stage_).subspan(
                     static_cast<std::size_t>(r * cols),
                     static_cast<std::size_t>(cols)));
  stats.polymem_cycles = stats.polymem_accesses;
  return stats;
}

}  // namespace polymem::maxsim
