#include "maxsim/dma.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace polymem::maxsim {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

DmaStats& DmaStats::operator+=(const DmaStats& other) {
  words += other.words;
  polymem_accesses += other.polymem_accesses;
  polymem_cycles += other.polymem_cycles;
  lmem_seconds += other.lmem_seconds;
  return *this;
}

DmaEngine::DmaEngine(LMem& lmem, core::PolyMem& polymem)
    : lmem_(&lmem), mem_(&polymem) {}

DmaEngine::Shape DmaEngine::pick_shape(std::int64_t rows, std::int64_t cols,
                                       Coord origin) const {
  const auto& cfg = mem_->config();
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  if (cols % lanes == 0 &&
      maf::probe_support(mem_->maf(), PatternKind::kRow) ==
          maf::SupportLevel::kAny) {
    return Shape::kRowAccesses;
  }
  if (rows % cfg.p == 0 && cols % cfg.q == 0 &&
      maf::access_supported(mem_->maf(), {PatternKind::kRect, origin})) {
    // Rect anchors advance in p/q steps from the origin, so alignment (for
    // RoCo) holds at every tile position iff it holds at the origin.
    return Shape::kRectAccesses;
  }
  return Shape::kScalar;
}

void DmaEngine::check_tile(const LMemMatrix& m, std::int64_t tile_i,
                           std::int64_t tile_j, std::int64_t rows,
                           std::int64_t cols, Coord origin) const {
  POLYMEM_REQUIRE(rows >= 1 && cols >= 1, "tile must be non-empty");
  POLYMEM_REQUIRE(tile_i >= 0 && tile_j >= 0 && tile_i + rows <= m.rows &&
                      tile_j + cols <= m.cols,
                  "tile exceeds the LMem matrix");
  POLYMEM_REQUIRE(m.leading_dim >= m.cols, "bad leading dimension");
  const auto& cfg = mem_->config();
  POLYMEM_REQUIRE(origin.i >= 0 && origin.j >= 0 &&
                      origin.i + rows <= cfg.height &&
                      origin.j + cols <= cfg.width,
                  "tile exceeds the PolyMem address space");
}

DmaStats DmaEngine::load_tile(const LMemMatrix& src, std::int64_t tile_i,
                              std::int64_t tile_j, std::int64_t rows,
                              std::int64_t cols, Coord dst_origin) {
  check_tile(src, tile_i, tile_j, rows, cols, dst_origin);
  DmaStats stats;
  stats.words = static_cast<std::uint64_t>(rows * cols);
  stats.lmem_seconds =
      lmem_->burst_seconds(static_cast<std::uint64_t>(rows) * cols * 8);

  const auto& cfg = mem_->config();
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const Shape shape = pick_shape(rows, cols, dst_origin);

  // The whole tile is staged row-major (the DMA's burst buffer).
  std::vector<hw::Word> tile(static_cast<std::size_t>(rows * cols));
  for (std::int64_t r = 0; r < rows; ++r)
    lmem_->read(src.word_addr(tile_i + r, tile_j),
                std::span<hw::Word>(tile).subspan(
                    static_cast<std::size_t>(r * cols),
                    static_cast<std::size_t>(cols)));

  switch (shape) {
    case Shape::kRowAccesses:
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t g = 0; g < cols; g += lanes) {
          mem_->write(
              {PatternKind::kRow, {dst_origin.i + r, dst_origin.j + g}},
              std::span<const hw::Word>(tile).subspan(
                  static_cast<std::size_t>(r * cols + g),
                  static_cast<std::size_t>(lanes)));
          ++stats.polymem_accesses;
        }
      }
      break;
    case Shape::kRectAccesses: {
      std::vector<hw::Word> block(static_cast<std::size_t>(lanes));
      for (std::int64_t br = 0; br < rows; br += cfg.p) {
        for (std::int64_t bc = 0; bc < cols; bc += cfg.q) {
          // Canonical rect order: row-major p x q.
          for (std::int64_t u = 0; u < cfg.p; ++u)
            for (std::int64_t v = 0; v < cfg.q; ++v)
              block[static_cast<std::size_t>(u * cfg.q + v)] =
                  tile[static_cast<std::size_t>((br + u) * cols + bc + v)];
          mem_->write(
              {PatternKind::kRect, {dst_origin.i + br, dst_origin.j + bc}},
              block);
          ++stats.polymem_accesses;
        }
      }
      break;
    }
    case Shape::kScalar:
      for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < cols; ++c) {
          mem_->store({dst_origin.i + r, dst_origin.j + c},
                      tile[static_cast<std::size_t>(r * cols + c)]);
          ++stats.polymem_accesses;
        }
      break;
  }
  stats.polymem_cycles = stats.polymem_accesses;
  return stats;
}

DmaStats DmaEngine::store_tile(const LMemMatrix& dst, std::int64_t tile_i,
                               std::int64_t tile_j, std::int64_t rows,
                               std::int64_t cols, Coord src_origin) {
  check_tile(dst, tile_i, tile_j, rows, cols, src_origin);
  DmaStats stats;
  stats.words = static_cast<std::uint64_t>(rows * cols);
  stats.lmem_seconds =
      lmem_->burst_seconds(static_cast<std::uint64_t>(rows) * cols * 8);

  const auto& cfg = mem_->config();
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const Shape shape = pick_shape(rows, cols, src_origin);

  std::vector<hw::Word> tile(static_cast<std::size_t>(rows * cols));
  std::vector<hw::Word> group(static_cast<std::size_t>(lanes));
  switch (shape) {
    case Shape::kRowAccesses:
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t g = 0; g < cols; g += lanes) {
          mem_->read_into(
              {PatternKind::kRow, {src_origin.i + r, src_origin.j + g}}, 0,
              group);
          std::copy(group.begin(), group.end(),
                    tile.begin() + static_cast<std::ptrdiff_t>(r * cols + g));
          ++stats.polymem_accesses;
        }
      }
      break;
    case Shape::kRectAccesses:
      for (std::int64_t br = 0; br < rows; br += cfg.p) {
        for (std::int64_t bc = 0; bc < cols; bc += cfg.q) {
          mem_->read_into(
              {PatternKind::kRect, {src_origin.i + br, src_origin.j + bc}},
              0, group);
          for (std::int64_t u = 0; u < cfg.p; ++u)
            for (std::int64_t v = 0; v < cfg.q; ++v)
              tile[static_cast<std::size_t>((br + u) * cols + bc + v)] =
                  group[static_cast<std::size_t>(u * cfg.q + v)];
          ++stats.polymem_accesses;
        }
      }
      break;
    case Shape::kScalar:
      for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < cols; ++c) {
          tile[static_cast<std::size_t>(r * cols + c)] =
              mem_->load({src_origin.i + r, src_origin.j + c});
          ++stats.polymem_accesses;
        }
      break;
  }
  for (std::int64_t r = 0; r < rows; ++r)
    lmem_->write(dst.word_addr(tile_i + r, tile_j),
                 std::span<const hw::Word>(tile).subspan(
                     static_cast<std::size_t>(r * cols),
                     static_cast<std::size_t>(cols)));
  stats.polymem_cycles = stats.polymem_accesses;
  return stats;
}

}  // namespace polymem::maxsim
