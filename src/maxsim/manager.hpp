// The Manager: owns kernels and streams and advances the clock.
//
// Mirrors Maxeler's manager concept — the design-level component that
// instantiates kernels and wires their streams (paper Sec. III-C).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "maxsim/kernel.hpp"

namespace polymem::maxsim {

class Manager {
 public:
  /// Registers a kernel; the manager owns it. Returns a typed handle.
  template <typename K, typename... Args>
  K& add_kernel(Args&&... args) {
    auto kernel = std::make_unique<K>(std::forward<Args>(args)...);
    K& ref = *kernel;
    kernels_.push_back(std::move(kernel));
    return ref;
  }

  /// Creates a named stream; names must be unique.
  Stream& add_stream(const std::string& name, std::size_t capacity);

  /// Looks up a stream by name; throws InvalidArgument when unknown.
  Stream& stream(const std::string& name);
  const Stream& stream(const std::string& name) const;

  std::size_t kernel_count() const { return kernels_.size(); }
  std::uint64_t cycles() const { return cycles_; }

  /// Advances one clock cycle: every kernel ticks once.
  void tick();

  /// Runs until every kernel reports done() or `max_cycles` elapse.
  /// Returns the cycles spent in this call; throws Error on timeout
  /// (a hung design, e.g. dead-locked streams).
  std::uint64_t run_to_completion(std::uint64_t max_cycles);

  /// True when every kernel reports done().
  bool all_done() const;

 private:
  std::vector<std::unique_ptr<Kernel>> kernels_;
  std::map<std::string, std::unique_ptr<Stream>> streams_;
  std::uint64_t cycles_ = 0;
};

}  // namespace polymem::maxsim
