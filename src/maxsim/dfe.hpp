// The DFE device: a manager running under a clock, reached over PCIe.
//
// Completes the Fig. 1 system picture: blocking host "actions" (load a
// stream, run a kernel stage) each pay the PCIe call overhead, and kernel
// time is cycles / f_clock at the synthesised frequency. The accumulated
// action timings are what the STREAM benchmark reports.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "hw/clock.hpp"
#include "maxsim/lmem.hpp"
#include "maxsim/manager.hpp"
#include "maxsim/pcie.hpp"

namespace polymem::maxsim {

/// Timing of one blocking host action.
struct ActionTiming {
  std::string name;
  std::uint64_t cycles = 0;      ///< kernel cycles spent on the DFE
  std::uint64_t pcie_bytes = 0;  ///< payload moved over PCIe
  double seconds = 0;            ///< total wall-clock (overhead included)
};

class DfeDevice {
 public:
  /// A device clocked at `clock_mhz` (the synthesis result for the loaded
  /// design), with default Vectis-like PCIe and LMem.
  explicit DfeDevice(double clock_mhz);

  double clock_mhz() const { return clock_.frequency_hz() / 1e6; }
  hw::ClockDomain& clock() { return clock_; }
  PcieLink& pcie() { return pcie_; }
  LMem& lmem() { return lmem_; }

  /// Blocking host call that streams `data` into `stream` (Load stage).
  /// The kernel graph ticks while the stream drains into the design.
  ActionTiming write_stream(Manager& manager, const std::string& stream,
                            std::span<const hw::Word> data,
                            std::uint64_t max_cycles = 100'000'000);

  /// Blocking host call that pulls `out.size()` words from `stream`
  /// (Offload stage), ticking the design while data trickles out.
  ActionTiming read_stream(Manager& manager, const std::string& stream,
                           std::span<hw::Word> out,
                           std::uint64_t max_cycles = 100'000'000);

  /// Blocking host call that runs the design until all kernels are done
  /// (a compute stage such as STREAM's Copy). No PCIe payload, only the
  /// call overhead.
  ActionTiming run_action(const std::string& name, Manager& manager,
                          std::uint64_t max_cycles = 100'000'000);

  const std::vector<ActionTiming>& history() const { return history_; }
  double total_seconds() const;

 private:
  ActionTiming finish(ActionTiming timing);

  hw::ClockDomain clock_;
  PcieLink pcie_;
  LMem lmem_;
  std::vector<ActionTiming> history_;
};

}  // namespace polymem::maxsim
