#include "maxsim/dfe.hpp"

#include "common/error.hpp"

namespace polymem::maxsim {

DfeDevice::DfeDevice(double clock_mhz) : clock_(clock_mhz * 1e6) {}

ActionTiming DfeDevice::finish(ActionTiming timing) {
  timing.seconds = pcie_.call_seconds(timing.pcie_bytes) +
                   clock_.seconds_for(timing.cycles);
  pcie_.record_call(timing.pcie_bytes);
  clock_.tick(timing.cycles);
  history_.push_back(timing);
  return timing;
}

ActionTiming DfeDevice::write_stream(Manager& manager,
                                     const std::string& stream,
                                     std::span<const hw::Word> data,
                                     std::uint64_t max_cycles) {
  Stream& s = manager.stream(stream);
  const std::uint64_t start = manager.cycles();
  std::size_t sent = 0;
  std::uint64_t guard = 0;
  while (sent < data.size()) {
    // The host DMA engine feeds the stream as fast as it accepts words;
    // the design ticks concurrently and drains it.
    while (sent < data.size() && s.push(data[sent])) ++sent;
    manager.tick();
    POLYMEM_REQUIRE(++guard <= max_cycles,
                    "write_stream did not complete (design not draining '" +
                        stream + "')");
  }
  // Let the design consume what is still buffered in the stream and
  // finish the work it triggers (e.g. the final PolyMem write).
  while (!s.empty() || !manager.all_done()) {
    manager.tick();
    POLYMEM_REQUIRE(++guard <= max_cycles,
                    "write_stream tail did not drain on '" + stream + "'");
  }
  return finish({"write:" + stream, manager.cycles() - start,
                 data.size() * sizeof(hw::Word), 0.0});
}

ActionTiming DfeDevice::read_stream(Manager& manager,
                                    const std::string& stream,
                                    std::span<hw::Word> out,
                                    std::uint64_t max_cycles) {
  Stream& s = manager.stream(stream);
  const std::uint64_t start = manager.cycles();
  std::size_t received = 0;
  std::uint64_t guard = 0;
  while (received < out.size()) {
    while (received < out.size()) {
      const auto w = s.pop();
      if (!w) break;
      out[received++] = *w;
    }
    if (received >= out.size()) break;
    manager.tick();
    POLYMEM_REQUIRE(++guard <= max_cycles,
                    "read_stream starved (design not filling '" + stream +
                        "')");
  }
  return finish({"read:" + stream, manager.cycles() - start,
                 out.size() * sizeof(hw::Word), 0.0});
}

ActionTiming DfeDevice::run_action(const std::string& name, Manager& manager,
                                   std::uint64_t max_cycles) {
  const std::uint64_t cycles = manager.run_to_completion(max_cycles);
  return finish({name, cycles, 0, 0.0});
}

double DfeDevice::total_seconds() const {
  double t = 0;
  for (const ActionTiming& a : history_) t += a.seconds;
  return t;
}

}  // namespace polymem::maxsim
