#include "maxsim/lmem.hpp"

namespace polymem::maxsim {

LMem::LMem(std::uint64_t capacity_bytes, double bandwidth_bytes_per_s,
           double latency_ns)
    : capacity_(capacity_bytes),
      bandwidth_(bandwidth_bytes_per_s),
      latency_s_(latency_ns * 1e-9) {
  POLYMEM_REQUIRE(capacity_bytes >= 8, "capacity must hold at least a word");
  POLYMEM_REQUIRE(bandwidth_bytes_per_s > 0, "bandwidth must be positive");
  POLYMEM_REQUIRE(latency_ns >= 0, "latency must be non-negative");
}

void LMem::check_range(std::uint64_t word_addr, std::size_t words) const {
  POLYMEM_REQUIRE((word_addr + words) * 8 <= capacity_,
                  "LMem access beyond device capacity");
}

hw::Word* LMem::slot(std::uint64_t word_addr) {
  const std::uint64_t page = word_addr / kPageWords;
  auto [it, inserted] = pages_.try_emplace(page);
  if (inserted) it->second.assign(kPageWords, 0);
  return &it->second[word_addr % kPageWords];
}

const hw::Word* LMem::slot_if_present(std::uint64_t word_addr) const {
  const auto it = pages_.find(word_addr / kPageWords);
  if (it == pages_.end()) return nullptr;
  return &it->second[word_addr % kPageWords];
}

void LMem::write(std::uint64_t word_addr, std::span<const hw::Word> data) {
  check_range(word_addr, data.size());
  const std::lock_guard<std::mutex> lock(m_);
  for (std::size_t k = 0; k < data.size(); ++k)
    *slot(word_addr + k) = data[k];
}

void LMem::read(std::uint64_t word_addr, std::span<hw::Word> out) const {
  check_range(word_addr, out.size());
  const std::lock_guard<std::mutex> lock(m_);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const hw::Word* w = slot_if_present(word_addr + k);
    out[k] = w ? *w : 0;
  }
}

double LMem::burst_seconds(std::uint64_t bytes) const {
  return latency_s_ + static_cast<double>(bytes) / bandwidth_;
}

}  // namespace polymem::maxsim
