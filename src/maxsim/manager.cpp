#include "maxsim/manager.hpp"

#include "common/error.hpp"

namespace polymem::maxsim {

Stream& Manager::add_stream(const std::string& name, std::size_t capacity) {
  auto [it, inserted] =
      streams_.try_emplace(name, std::make_unique<Stream>(name, capacity));
  POLYMEM_REQUIRE(inserted, "duplicate stream name: " + name);
  return *it->second;
}

Stream& Manager::stream(const std::string& name) {
  auto it = streams_.find(name);
  POLYMEM_REQUIRE(it != streams_.end(), "unknown stream: " + name);
  return *it->second;
}

const Stream& Manager::stream(const std::string& name) const {
  auto it = streams_.find(name);
  POLYMEM_REQUIRE(it != streams_.end(), "unknown stream: " + name);
  return *it->second;
}

void Manager::tick() {
  for (auto& kernel : kernels_) kernel->tick();
  ++cycles_;
}

bool Manager::all_done() const {
  for (const auto& kernel : kernels_)
    if (!kernel->done()) return false;
  return true;
}

std::uint64_t Manager::run_to_completion(std::uint64_t max_cycles) {
  const std::uint64_t start = cycles_;
  while (!all_done()) {
    if (cycles_ - start >= max_cycles)
      throw Error("design did not complete within " +
                  std::to_string(max_cycles) + " cycles (deadlock?)");
    tick();
  }
  return cycles_ - start;
}

}  // namespace polymem::maxsim
