// DMA engine between board DRAM (LMem) and PolyMem.
//
// Completes the paper's Fig. 1 system organisation: PolyMem "acts like a
// high-bandwidth, 2D parallel software cache" between the off-chip DRAM
// and the kernel. The DMA engine moves rectangular tiles of a row-major
// LMem matrix into/out of the PolyMem 2D space, using full-width parallel
// accesses where the scheme supports them, and accounts both sides' time
// (LMem burst time vs PolyMem cycles) so applications can quantify the
// caching win.
//
// The PolyMem side of a transfer runs through the batched access engine
// (PolyMem::read_batch / write_batch): the whole tile is one validated
// AccessBatch replayed through the plan-template cache. The original
// per-access path is kept behind set_batched(false) as the differential
// reference (tests/maxsim/dma_test.cpp compares contents and stats).
#pragma once

#include <cstdint>
#include <span>

#include "access/coord.hpp"
#include "common/stats.hpp"
#include "core/polymem.hpp"
#include "maxsim/lmem.hpp"

namespace polymem::maxsim {

/// Timing/volume accounting of one tile transfer (and, aggregated, of a
/// software-cache session: TileCache sums the DmaStats of its refills and
/// write-backs and fills in the `cache` event counters).
struct DmaStats {
  std::uint64_t words = 0;            ///< elements moved
  std::uint64_t polymem_accesses = 0; ///< parallel accesses used
  std::uint64_t polymem_cycles = 0;   ///< == polymem_accesses (1/cycle)
  double lmem_seconds = 0;            ///< DRAM burst time for the tile
  CacheCounters cache;                ///< cache events (zero for raw DMA)

  DmaStats& operator+=(const DmaStats& other);
};

/// Describes a dense row-major matrix resident in LMem.
struct LMemMatrix {
  std::uint64_t base_word = 0;   ///< word address of element (0, 0)
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t leading_dim = 0;  ///< words between consecutive rows

  std::uint64_t word_addr(std::int64_t i, std::int64_t j) const {
    return base_word + static_cast<std::uint64_t>(i * leading_dim + j);
  }
};

class DmaEngine {
 public:
  DmaEngine(LMem& lmem, core::PolyMem& polymem);

  /// Copies the rows x cols tile of `src` anchored at (tile_i, tile_j)
  /// into PolyMem at `dst_origin`. The engine picks the widest transfer
  /// the scheme serves at these anchors: full-lane ROW accesses, then
  /// p x q RECTANGLE accesses, then scalar stores (counted one access per
  /// element — the honest cost of a scheme mismatch).
  DmaStats load_tile(const LMemMatrix& src, std::int64_t tile_i,
                     std::int64_t tile_j, std::int64_t rows,
                     std::int64_t cols, access::Coord dst_origin);

  /// The reverse: PolyMem tile -> LMem.
  DmaStats store_tile(const LMemMatrix& dst, std::int64_t tile_i,
                      std::int64_t tile_j, std::int64_t rows,
                      std::int64_t cols, access::Coord src_origin);

  /// The PolyMem half of a transfer on its own: writes/reads a staged
  /// row-major tile buffer (rows * cols words) into/out of the frame at
  /// `origin`, LMem untouched (lmem_seconds stays 0). load_tile is
  /// "LMem burst + write_staged"; the software cache uses these directly
  /// to install tiles its prefetcher already staged off the critical
  /// path.
  DmaStats write_staged(std::span<const hw::Word> tile, std::int64_t rows,
                        std::int64_t cols, access::Coord origin);
  DmaStats read_staged(std::span<hw::Word> tile, std::int64_t rows,
                       std::int64_t cols, access::Coord origin);

  /// The transfer shape the engine would use for this tile.
  enum class Shape : std::uint8_t { kRowAccesses, kRectAccesses, kScalar };
  Shape pick_shape(std::int64_t rows, std::int64_t cols,
                   access::Coord origin) const;

  /// Toggles the batched engine (default on). The legacy per-access path
  /// is the differential-test reference; both produce identical memory
  /// contents and DmaStats.
  void set_batched(bool batched) { batched_ = batched; }
  bool batched() const { return batched_; }

  /// Points the engine at a different PolyMem (same LMem). The adaptive
  /// layout engine swaps the on-chip memory under a live cache at
  /// migration cutover; transfer shapes re-derive from the new scheme on
  /// the next call.
  void retarget(core::PolyMem& polymem) { mem_ = &polymem; }

 private:
  void check_tile(const LMemMatrix& m, std::int64_t tile_i,
                  std::int64_t tile_j, std::int64_t rows,
                  std::int64_t cols, access::Coord origin) const;
  void check_staged(std::span<const hw::Word> tile, std::int64_t rows,
                    std::int64_t cols, access::Coord origin) const;
  void write_staged_into(std::span<const hw::Word> tile, std::int64_t rows,
                         std::int64_t cols, access::Coord origin,
                         DmaStats& stats);
  void read_staged_into(std::span<hw::Word> tile, std::int64_t rows,
                        std::int64_t cols, access::Coord origin,
                        DmaStats& stats);

  LMem* lmem_;
  core::PolyMem* mem_;
  bool batched_ = true;
  std::vector<hw::Word> stage_;  ///< tile burst buffer (reused)
  std::vector<hw::Word> block_;  ///< rect-order staging (reused)
};

}  // namespace polymem::maxsim
