// DMA engine between board DRAM (LMem) and PolyMem.
//
// Completes the paper's Fig. 1 system organisation: PolyMem "acts like a
// high-bandwidth, 2D parallel software cache" between the off-chip DRAM
// and the kernel. The DMA engine moves rectangular tiles of a row-major
// LMem matrix into/out of the PolyMem 2D space, using full-width parallel
// accesses where the scheme supports them, and accounts both sides' time
// (LMem burst time vs PolyMem cycles) so applications can quantify the
// caching win.
#pragma once

#include <cstdint>

#include "access/coord.hpp"
#include "core/polymem.hpp"
#include "maxsim/lmem.hpp"

namespace polymem::maxsim {

/// Timing/volume accounting of one tile transfer.
struct DmaStats {
  std::uint64_t words = 0;            ///< elements moved
  std::uint64_t polymem_accesses = 0; ///< parallel accesses used
  std::uint64_t polymem_cycles = 0;   ///< == polymem_accesses (1/cycle)
  double lmem_seconds = 0;            ///< DRAM burst time for the tile

  DmaStats& operator+=(const DmaStats& other);
};

/// Describes a dense row-major matrix resident in LMem.
struct LMemMatrix {
  std::uint64_t base_word = 0;   ///< word address of element (0, 0)
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t leading_dim = 0;  ///< words between consecutive rows

  std::uint64_t word_addr(std::int64_t i, std::int64_t j) const {
    return base_word + static_cast<std::uint64_t>(i * leading_dim + j);
  }
};

class DmaEngine {
 public:
  DmaEngine(LMem& lmem, core::PolyMem& polymem);

  /// Copies the rows x cols tile of `src` anchored at (tile_i, tile_j)
  /// into PolyMem at `dst_origin`. The engine picks the widest transfer
  /// the scheme serves at these anchors: full-lane ROW accesses, then
  /// p x q RECTANGLE accesses, then scalar stores (counted one access per
  /// element — the honest cost of a scheme mismatch).
  DmaStats load_tile(const LMemMatrix& src, std::int64_t tile_i,
                     std::int64_t tile_j, std::int64_t rows,
                     std::int64_t cols, access::Coord dst_origin);

  /// The reverse: PolyMem tile -> LMem.
  DmaStats store_tile(const LMemMatrix& dst, std::int64_t tile_i,
                      std::int64_t tile_j, std::int64_t rows,
                      std::int64_t cols, access::Coord src_origin);

  /// The transfer shape the engine would use for this tile.
  enum class Shape : std::uint8_t { kRowAccesses, kRectAccesses, kScalar };
  Shape pick_shape(std::int64_t rows, std::int64_t cols,
                   access::Coord origin) const;

 private:
  void check_tile(const LMemMatrix& m, std::int64_t tile_i,
                  std::int64_t tile_j, std::int64_t rows,
                  std::int64_t cols, access::Coord origin) const;

  LMem* lmem_;
  core::PolyMem* mem_;
};

}  // namespace polymem::maxsim
