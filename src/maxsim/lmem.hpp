// Off-chip board DRAM ("LMem") model.
//
// "The FPGA board features its own high capacity DRAM which can be used to
//  store application data. However, the latency of this memory is
//  relatively high ... and the off-chip DRAM bandwidth is limited"
//  (Sec. II-B). PolyMem exists to cache hot data out of this memory.
//
// Storage is allocated page-on-demand so a 24GB device can be modelled
// without committing 24GB of host RAM.
//
// Thread safety: read and write serialize on an internal mutex — the
// real DRAM controller serializes bursts too. This is what lets
// several software caches (src/cache) share one board memory while
// their prefetch workers stream tiles concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "hw/bram.hpp"

namespace polymem::maxsim {

class LMem {
 public:
  /// Defaults model the Vectis board: 24GB capacity, ~15 GB/s aggregate
  /// bandwidth, ~200ns access latency.
  explicit LMem(std::uint64_t capacity_bytes = 24ull << 30,
                double bandwidth_bytes_per_s = 15e9,
                double latency_ns = 200.0);

  std::uint64_t capacity_bytes() const { return capacity_; }

  /// Bulk transfers, word-granular, safe to call from any thread.
  /// Unwritten memory reads as zero.
  void write(std::uint64_t word_addr, std::span<const hw::Word> data);
  void read(std::uint64_t word_addr, std::span<hw::Word> out) const;

  /// Seconds a burst of `bytes` takes: latency + bytes / bandwidth.
  double burst_seconds(std::uint64_t bytes) const;

  /// Pages currently materialised (for tests/diagnostics).
  std::size_t resident_pages() const {
    const std::lock_guard<std::mutex> lock(m_);
    return pages_.size();
  }

 private:
  static constexpr std::uint64_t kPageWords = 512;  // 4KB pages

  hw::Word* slot(std::uint64_t word_addr);
  const hw::Word* slot_if_present(std::uint64_t word_addr) const;
  void check_range(std::uint64_t word_addr, std::size_t words) const;

  std::uint64_t capacity_;
  double bandwidth_;
  double latency_s_;
  mutable std::mutex m_;
  mutable std::unordered_map<std::uint64_t, std::vector<hw::Word>> pages_;
};

}  // namespace polymem::maxsim
