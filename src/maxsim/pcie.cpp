#include "maxsim/pcie.hpp"

namespace polymem::maxsim {

PcieLink::PcieLink(double bandwidth_bytes_per_s, double call_overhead_ns)
    : bandwidth_(bandwidth_bytes_per_s), overhead_s_(call_overhead_ns * 1e-9) {
  POLYMEM_REQUIRE(bandwidth_bytes_per_s > 0, "bandwidth must be positive");
  POLYMEM_REQUIRE(call_overhead_ns >= 0, "overhead must be non-negative");
}

double PcieLink::call_seconds(std::uint64_t bytes) const {
  return overhead_s_ + static_cast<double>(bytes) / bandwidth_;
}

void PcieLink::record_call(std::uint64_t bytes) {
  ++calls_;
  bytes_ += bytes;
  busy_s_ += call_seconds(bytes);
}

}  // namespace polymem::maxsim
