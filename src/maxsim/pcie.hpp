// Host <-> FPGA-board PCI Express link model.
//
// The paper's system (Fig. 1) connects the host CPU to the DFE over PCIe.
// Two properties matter for reproducing its measurements:
//   - a minimum per-call overhead of ~300ns ("This minimum overhead is,
//     according to our dedicated measurements, around 300ns", Sec. V),
//     which bends the left side of Fig. 10, and
//   - finite bulk bandwidth for the Load/Offload stages.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace polymem::maxsim {

class PcieLink {
 public:
  /// Defaults match the Vectis' PCIe Gen2 x8 link (~2 GB/s effective) and
  /// the paper's measured 300ns call overhead.
  explicit PcieLink(double bandwidth_bytes_per_s = 2.0e9,
                    double call_overhead_ns = 300.0);

  double bandwidth_bytes_per_s() const { return bandwidth_; }
  double call_overhead_seconds() const { return overhead_s_; }

  /// Wall-clock seconds for one blocking host call moving `bytes`
  /// (overhead + payload). bytes == 0 models a pure doorbell/signal call.
  double call_seconds(std::uint64_t bytes) const;

  /// Accumulated accounting across all calls issued through this link.
  void record_call(std::uint64_t bytes);
  std::uint64_t calls() const { return calls_; }
  std::uint64_t bytes_moved() const { return bytes_; }
  double busy_seconds() const { return busy_s_; }

 private:
  double bandwidth_;
  double overhead_s_;
  std::uint64_t calls_ = 0;
  std::uint64_t bytes_ = 0;
  double busy_s_ = 0;
};

}  // namespace polymem::maxsim
