// Dataflow kernel and stream abstractions (the MaxJ analogue).
//
// MaxJ describes an application as a graph of kernels connected by streams
// (paper Sec. II-B); the MAX-PolyMem STREAM design is "a modular
// multikernel design, using a custom manager to connect the different
// modules" (Sec. III-C). This header provides the same structural pieces
// for the simulator: a Kernel base class ticked once per clock cycle, and
// bounded word streams with back-pressure.
#pragma once

#include <cstdint>
#include <string>

#include "hw/bram.hpp"
#include "hw/fifo.hpp"

namespace polymem::maxsim {

/// A named, bounded stream of 64-bit words connecting kernels and/or the
/// host. Push fails when full (back-pressure), pop fails when empty.
class Stream {
 public:
  Stream(std::string name, std::size_t capacity)
      : name_(std::move(name)), fifo_(capacity) {}

  const std::string& name() const { return name_; }
  bool push(hw::Word w) { return fifo_.try_push(w); }
  std::optional<hw::Word> pop() { return fifo_.try_pop(); }
  bool empty() const { return fifo_.empty(); }
  bool full() const { return fifo_.full(); }
  std::size_t size() const { return fifo_.size(); }
  std::size_t capacity() const { return fifo_.capacity(); }

 private:
  std::string name_;
  hw::Fifo<hw::Word> fifo_;
};

/// A hardware kernel: tick() models one clock cycle of combinational +
/// register behaviour. Kernels communicate only through Streams.
class Kernel {
 public:
  explicit Kernel(std::string name) : name_(std::move(name)) {}
  virtual ~Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  const std::string& name() const { return name_; }

  /// One clock cycle.
  virtual void tick() = 0;

  /// True when the kernel has finished its programmed work (used by the
  /// manager's run loop; a free-running kernel never reports done).
  virtual bool done() const { return false; }

 private:
  std::string name_;
};

}  // namespace polymem::maxsim
