// The paper's Fig. 2 register map, as a reusable fixture.
//
// Fig. 2 shows a 2D logical address space holding ten memory Regions
// (R0..R9) "each with different size and location: matrix, transposed
// matrix, row, column, main and secondary diagonals", where R1..R9 are
// readable in ONE parallel access and R0 (a larger matrix) in several —
// all with 8 memory banks (2x4).
//
// The original figure uses an 8x9 space; this fixture adapts the layout
// to a 12x16 space (the addressing function needs width % q == 0) while
// keeping the figure's essence: ten disjoint regions covering every
// region kind, sized so R1..R9 are single-access.
#pragma once

#include <string>
#include <vector>

#include "access/region.hpp"
#include "maf/scheme.hpp"

namespace polymem::prf {

struct Fig2Register {
  std::string name;
  access::Region region;
  access::PatternKind pattern;     ///< the shape that reads it in parallel
  std::int64_t expected_accesses;  ///< 1 for R1..R9, 4 for R0
  /// A scheme that serves this register's pattern at its anchors (2x4).
  maf::Scheme served_by;
};

/// The address-space shape the fixture assumes (p=2, q=4 banks).
inline constexpr std::int64_t kFig2Height = 12;
inline constexpr std::int64_t kFig2Width = 16;

/// The ten registers R0..R9.
const std::vector<Fig2Register>& fig2_registers();

}  // namespace polymem::prf
