#include "prf/fig2.hpp"

namespace polymem::prf {

using access::PatternKind;
using access::Region;
using maf::Scheme;

const std::vector<Fig2Register>& fig2_registers() {
  // Layout in the 12x16 space (rows x cols), all regions disjoint:
  //
  //   cols:  0...............7 8..............15
  //   row  0 R0 R0 R0 R0 R0 R0 R0 R0  R1 R1 R1 R1 R2 R2 R2 R2
  //   row  1 R0 ...                   R1 ...         R2 ...
  //   rows 2-3                        R3 (row), R4 (row)
  //   rows 4-11  R5 R6 | R7 diag ->           <- R8 diag | R9 matrix
  //
  static const std::vector<Fig2Register> regs = {
      // R0: the big matrix, read with several rectangle accesses (4).
      {"R0", Region::matrix({0, 0}, 4, 8), PatternKind::kRect, 4,
       Scheme::kReRo},
      // R1, R2: p x q matrices == one rectangle access each.
      {"R1", Region::matrix({0, 8}, 2, 4), PatternKind::kRect, 1,
       Scheme::kReRo},
      {"R2", Region::matrix({0, 12}, 2, 4), PatternKind::kRect, 1,
       Scheme::kReRo},
      // R3, R4: 8-element row vectors.
      {"R3", Region::row_vec({2, 8}, 8), PatternKind::kRow, 1, Scheme::kReRo},
      {"R4", Region::row_vec({3, 8}, 8), PatternKind::kRow, 1, Scheme::kReRo},
      // R5, R6: 8-element column vectors (ReCo territory).
      {"R5", Region::col_vec({4, 0}, 8), PatternKind::kCol, 1, Scheme::kReCo},
      {"R6", Region::col_vec({4, 1}, 8), PatternKind::kCol, 1, Scheme::kReCo},
      // R7: main diagonal, R8: secondary diagonal (length 8).
      {"R7", Region::main_diag({4, 2}, 8), PatternKind::kMainDiag, 1,
       Scheme::kReRo},
      {"R8", Region::sec_diag({4, 15}, 8), PatternKind::kSecDiag, 1,
       Scheme::kReRo},
      // R9: the transposed matrix (q x p), one transposed-rectangle access
      // under ReTr.
      {"R9", Region::matrix({8, 2}, 4, 2), PatternKind::kTRect, 1,
       Scheme::kReTr},
  };
  return regs;
}

}  // namespace polymem::prf
