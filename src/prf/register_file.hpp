// The Polymorphic Register File view layer (paper Sec. II-A, Fig. 2).
//
// The PRF heritage of PolyMem is a register file that "can be logically
// reorganized by the programmer or a runtime system to support multiple
// register dimensions and sizes simultaneously". This module provides that
// layer on top of a PolyMem: *logical registers* are named regions of the
// 2D space (matrices, vectors, diagonals — the R0..R9 of Fig. 2), each
// with a preferred parallel access pattern. Registers can be defined,
// resized, moved and removed at run time (the paper's polymorphism),
// and whole-register reads/writes are executed as schedules of
// conflict-free parallel accesses.
//
// Writes to registers whose tiling is not an exact cover of the region
// use read-modify-write on the partial tiles, so neighbouring registers
// are never clobbered.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "access/region.hpp"
#include "core/polymem.hpp"

namespace polymem::prf {

/// A named logical register: a region plus the pattern used to access it
/// in parallel.
struct LogicalRegister {
  std::string name;
  access::Region region;
  access::PatternKind pattern = access::PatternKind::kRect;

  std::int64_t elements() const { return region.element_count(); }
};

/// Statistics of one whole-register transfer.
struct TransferStats {
  std::int64_t parallel_reads = 0;
  std::int64_t parallel_writes = 0;
  std::int64_t elements_moved = 0;
};

class RegisterFile {
 public:
  /// A non-owning view over `mem`; the register table starts empty.
  explicit RegisterFile(core::PolyMem& mem);

  core::PolyMem& memory() { return *mem_; }

  /// Defines a new register. Throws:
  ///   InvalidArgument — name taken, region overlaps an existing register
  ///                     or leaves the address space, or the pattern
  ///                     cannot tile the region shape;
  ///   Unsupported     — the PolyMem's scheme does not serve the pattern
  ///                     at the anchors the tiling needs.
  void define(const std::string& name, const access::Region& region,
              access::PatternKind pattern);

  /// Runtime polymorphism: atomically replaces the definition of `name`
  /// (resize / move / reshape). The register's *data is not preserved* —
  /// like the PRF, redefinition reinterprets storage.
  void redefine(const std::string& name, const access::Region& region,
                access::PatternKind pattern);

  void undefine(const std::string& name);

  bool defined(const std::string& name) const;
  const LogicalRegister& reg(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Number of parallel accesses one whole-register read takes
  /// (Fig. 2: one for R1..R9, several for R0).
  std::int64_t read_access_count(const std::string& name) const;

  /// Whole-register data movement in the region's canonical element
  /// order. Returns the transfer statistics alongside.
  std::vector<core::Word> read_register(const std::string& name,
                                        TransferStats* stats = nullptr);
  void write_register(const std::string& name,
                      std::span<const core::Word> values,
                      TransferStats* stats = nullptr);

 private:
  struct Entry {
    LogicalRegister reg;
    std::vector<access::ParallelAccess> tiles;
    // For each tile, the (lane -> region element index) mapping; -1 for
    // lanes whose element lies outside the region (partial tiles).
    std::vector<std::vector<std::int64_t>> lane_index;
    bool exact_cover = true;
  };

  Entry build_entry(const std::string& name, const access::Region& region,
                    access::PatternKind pattern) const;
  const Entry& entry(const std::string& name) const;
  void check_no_overlap(const access::Region& region,
                        const std::string& ignore) const;

  core::PolyMem* mem_;
  std::map<std::string, Entry> table_;
};

}  // namespace polymem::prf
