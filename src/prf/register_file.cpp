#include "prf/register_file.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"

namespace polymem::prf {

using access::Coord;
using access::CoordHash;
using access::ParallelAccess;
using access::PatternKind;
using access::Region;

RegisterFile::RegisterFile(core::PolyMem& mem) : mem_(&mem) {}

void RegisterFile::check_no_overlap(const Region& region,
                                    const std::string& ignore) const {
  std::unordered_set<Coord, CoordHash> incoming;
  for (const Coord& c : region.elements()) incoming.insert(c);
  for (const auto& [name, existing] : table_) {
    if (name == ignore) continue;
    for (const Coord& c : existing.reg.region.elements()) {
      POLYMEM_REQUIRE(incoming.count(c) == 0,
                      "region overlaps register '" + name + "' at (" +
                          std::to_string(c.i) + "," + std::to_string(c.j) +
                          ")");
    }
  }
}

RegisterFile::Entry RegisterFile::build_entry(const std::string& name,
                                              const Region& region,
                                              PatternKind pattern) const {
  const auto& cfg = mem_->config();
  Entry entry;
  entry.reg = {name, region, pattern};
  entry.tiles = access::tile_region(region, pattern, cfg.p, cfg.q);

  // Canonical element order of the region -> index.
  std::unordered_map<Coord, std::int64_t, CoordHash> index;
  {
    const auto el = region.elements();
    for (std::int64_t k = 0; k < static_cast<std::int64_t>(el.size()); ++k)
      index.emplace(el[static_cast<std::size_t>(k)], k);
  }

  for (const ParallelAccess& tile : entry.tiles) {
    // Every tile must fit the PolyMem and be served conflict-free at its
    // anchor (the AGU would throw later; validating at define() gives the
    // error at the right time).
    POLYMEM_REQUIRE(
        access::fits(tile, cfg.p, cfg.q, cfg.height, cfg.width),
        "register '" + name + "' needs a tile outside the address space");
    if (!maf::access_supported(mem_->maf(), tile)) {
      throw Unsupported("scheme " + std::string(maf::scheme_name(cfg.scheme)) +
                        " does not serve pattern " +
                        access::pattern_name(pattern) +
                        " at the anchors register '" + name + "' needs");
    }
    std::vector<std::int64_t> lanes;
    const auto coords = access::expand(tile, cfg.p, cfg.q);
    lanes.reserve(coords.size());
    for (const Coord& c : coords) {
      const auto it = index.find(c);
      lanes.push_back(it == index.end() ? -1 : it->second);
      if (it == index.end()) entry.exact_cover = false;
    }
    entry.lane_index.push_back(std::move(lanes));
  }
  return entry;
}

void RegisterFile::define(const std::string& name, const Region& region,
                          PatternKind pattern) {
  POLYMEM_REQUIRE(!name.empty(), "register name must be non-empty");
  POLYMEM_REQUIRE(table_.count(name) == 0,
                  "register '" + name + "' is already defined");
  check_no_overlap(region, /*ignore=*/"");
  table_.emplace(name, build_entry(name, region, pattern));
}

void RegisterFile::redefine(const std::string& name, const Region& region,
                            PatternKind pattern) {
  POLYMEM_REQUIRE(table_.count(name) == 1,
                  "register '" + name + "' is not defined");
  check_no_overlap(region, /*ignore=*/name);
  // Build first: a failed redefinition must leave the old register intact.
  Entry fresh = build_entry(name, region, pattern);
  table_[name] = std::move(fresh);
}

void RegisterFile::undefine(const std::string& name) {
  POLYMEM_REQUIRE(table_.erase(name) == 1,
                  "register '" + name + "' is not defined");
}

bool RegisterFile::defined(const std::string& name) const {
  return table_.count(name) != 0;
}

const RegisterFile::Entry& RegisterFile::entry(const std::string& name) const {
  const auto it = table_.find(name);
  POLYMEM_REQUIRE(it != table_.end(),
                  "register '" + name + "' is not defined");
  return it->second;
}

const LogicalRegister& RegisterFile::reg(const std::string& name) const {
  return entry(name).reg;
}

std::vector<std::string> RegisterFile::names() const {
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [name, _] : table_) out.push_back(name);
  return out;
}

std::int64_t RegisterFile::read_access_count(const std::string& name) const {
  return static_cast<std::int64_t>(entry(name).tiles.size());
}

std::vector<core::Word> RegisterFile::read_register(const std::string& name,
                                                    TransferStats* stats) {
  const Entry& e = entry(name);
  std::vector<core::Word> out(
      static_cast<std::size_t>(e.reg.elements()));
  TransferStats local;
  for (std::size_t t = 0; t < e.tiles.size(); ++t) {
    const auto data = mem_->read(e.tiles[t]);
    ++local.parallel_reads;
    for (std::size_t k = 0; k < data.size(); ++k) {
      const std::int64_t idx = e.lane_index[t][k];
      if (idx >= 0) {
        out[static_cast<std::size_t>(idx)] = data[k];
        ++local.elements_moved;
      }
    }
  }
  if (stats) *stats = local;
  return out;
}

void RegisterFile::write_register(const std::string& name,
                                  std::span<const core::Word> values,
                                  TransferStats* stats) {
  const Entry& e = entry(name);
  POLYMEM_REQUIRE(values.size() ==
                      static_cast<std::size_t>(e.reg.elements()),
                  "value count must match the register size");
  TransferStats local;
  std::vector<core::Word> lane_data(mem_->config().lanes());
  for (std::size_t t = 0; t < e.tiles.size(); ++t) {
    const auto& lanes = e.lane_index[t];
    const bool partial =
        std::any_of(lanes.begin(), lanes.end(),
                    [](std::int64_t idx) { return idx < 0; });
    if (partial) {
      // Read-modify-write: keep out-of-register lanes intact.
      lane_data = mem_->read(e.tiles[t]);
      ++local.parallel_reads;
    }
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      if (lanes[k] >= 0) {
        lane_data[k] = values[static_cast<std::size_t>(lanes[k])];
        ++local.elements_moved;
      }
    }
    mem_->write(e.tiles[t], lane_data);
    ++local.parallel_writes;
  }
  if (stats) *stats = local;
}

}  // namespace polymem::prf
