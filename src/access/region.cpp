#include "access/region.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::access {

const char* region_shape_name(RegionShape shape) {
  switch (shape) {
    case RegionShape::kMatrix: return "matrix";
    case RegionShape::kRowVec: return "rowvec";
    case RegionShape::kColVec: return "colvec";
    case RegionShape::kMainDiag: return "maindiag";
    case RegionShape::kSecDiag: return "secdiag";
  }
  throw InvalidArgument("unknown region shape");
}

Region Region::matrix(Coord origin, std::int64_t rows, std::int64_t cols) {
  POLYMEM_REQUIRE(rows >= 1 && cols >= 1, "matrix region must be non-empty");
  return Region{RegionShape::kMatrix, origin, rows, cols};
}

Region Region::row_vec(Coord origin, std::int64_t length) {
  POLYMEM_REQUIRE(length >= 1, "vector region must be non-empty");
  return Region{RegionShape::kRowVec, origin, 1, length};
}

Region Region::col_vec(Coord origin, std::int64_t length) {
  POLYMEM_REQUIRE(length >= 1, "vector region must be non-empty");
  return Region{RegionShape::kColVec, origin, length, 1};
}

Region Region::main_diag(Coord origin, std::int64_t length) {
  POLYMEM_REQUIRE(length >= 1, "diagonal region must be non-empty");
  return Region{RegionShape::kMainDiag, origin, length, length};
}

Region Region::sec_diag(Coord origin, std::int64_t length) {
  POLYMEM_REQUIRE(length >= 1, "diagonal region must be non-empty");
  return Region{RegionShape::kSecDiag, origin, length, length};
}

std::int64_t Region::element_count() const {
  switch (shape) {
    case RegionShape::kMatrix: return rows * cols;
    case RegionShape::kRowVec: return cols;
    case RegionShape::kColVec: return rows;
    case RegionShape::kMainDiag:
    case RegionShape::kSecDiag: return rows;
  }
  throw InvalidArgument("unknown region shape");
}

std::vector<Coord> Region::elements() const {
  std::vector<Coord> out;
  out.reserve(static_cast<std::size_t>(element_count()));
  switch (shape) {
    case RegionShape::kMatrix:
      for (std::int64_t u = 0; u < rows; ++u)
        for (std::int64_t v = 0; v < cols; ++v)
          out.push_back({origin.i + u, origin.j + v});
      break;
    case RegionShape::kRowVec:
      for (std::int64_t k = 0; k < cols; ++k)
        out.push_back({origin.i, origin.j + k});
      break;
    case RegionShape::kColVec:
      for (std::int64_t k = 0; k < rows; ++k)
        out.push_back({origin.i + k, origin.j});
      break;
    case RegionShape::kMainDiag:
      for (std::int64_t k = 0; k < rows; ++k)
        out.push_back({origin.i + k, origin.j + k});
      break;
    case RegionShape::kSecDiag:
      for (std::int64_t k = 0; k < rows; ++k)
        out.push_back({origin.i + k, origin.j - k});
      break;
  }
  return out;
}

namespace {

// Tiles a 1D walk of `length` elements with steps of n = p*q accesses whose
// anchors advance along the walk direction.
std::vector<ParallelAccess> tile_walk(PatternKind pattern, Coord origin,
                                      std::int64_t length, std::int64_t n,
                                      std::int64_t di, std::int64_t dj) {
  std::vector<ParallelAccess> out;
  const std::int64_t steps = polymem::ceil_div(length, n);
  out.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t s = 0; s < steps; ++s)
    out.push_back(
        {pattern, {origin.i + s * n * di, origin.j + s * n * dj}});
  return out;
}

}  // namespace

std::vector<ParallelAccess> tile_region(const Region& region,
                                        PatternKind pattern, unsigned p,
                                        unsigned q) {
  const std::int64_t n = static_cast<std::int64_t>(p) * q;
  switch (region.shape) {
    case RegionShape::kMatrix: {
      const PatternExtent ext = pattern_extent(pattern, p, q);
      POLYMEM_SUPPORTED(pattern == PatternKind::kRect ||
                            pattern == PatternKind::kTRect ||
                            pattern == PatternKind::kRow ||
                            pattern == PatternKind::kCol,
                        "matrix regions tile with rect/trect/row/col");
      std::vector<ParallelAccess> out;
      const std::int64_t tr = polymem::ceil_div(region.rows, ext.rows);
      const std::int64_t tc = polymem::ceil_div(region.cols, ext.cols);
      out.reserve(static_cast<std::size_t>(tr * tc));
      for (std::int64_t u = 0; u < tr; ++u)
        for (std::int64_t v = 0; v < tc; ++v)
          out.push_back({pattern,
                         {region.origin.i + u * ext.rows,
                          region.origin.j + v * ext.cols}});
      return out;
    }
    case RegionShape::kRowVec:
      POLYMEM_SUPPORTED(pattern == PatternKind::kRow,
                        "row-vector regions tile with row accesses");
      return tile_walk(pattern, region.origin, region.cols, n, 0, 1);
    case RegionShape::kColVec:
      POLYMEM_SUPPORTED(pattern == PatternKind::kCol,
                        "column-vector regions tile with column accesses");
      return tile_walk(pattern, region.origin, region.rows, n, 1, 0);
    case RegionShape::kMainDiag:
      POLYMEM_SUPPORTED(pattern == PatternKind::kMainDiag,
                        "main-diagonal regions tile with mdiag accesses");
      return tile_walk(pattern, region.origin, region.rows, n, 1, 1);
    case RegionShape::kSecDiag:
      POLYMEM_SUPPORTED(pattern == PatternKind::kSecDiag,
                        "secondary-diagonal regions tile with sdiag accesses");
      return tile_walk(pattern, region.origin, region.rows, n, 1, -1);
  }
  throw InvalidArgument("unknown region shape");
}

std::int64_t tile_count(const Region& region, PatternKind pattern, unsigned p,
                        unsigned q) {
  return static_cast<std::int64_t>(tile_region(region, pattern, p, q).size());
}

}  // namespace polymem::access
