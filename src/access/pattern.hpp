// Parallel access patterns (paper Table I / Fig. 2).
//
// A parallel access touches exactly p*q elements in one clock cycle. Its
// *shape* is one of six patterns; which shapes are conflict-free depends on
// the memory scheme (see polymem::maf). For p x q memory banks:
//
//   Row       : 1 x (p*q)   elements (i, j..j+pq-1)
//   Col       : (p*q) x 1   elements (i..i+pq-1, j)
//   Rect      : p x q       block anchored at (i, j)
//   TRect     : q x p       transposed block anchored at (i, j)
//   MainDiag  : p*q         elements (i+k, j+k)
//   SecDiag   : p*q         elements (i+k, j-k)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "access/coord.hpp"

namespace polymem::access {

enum class PatternKind : std::uint8_t {
  kRow,
  kCol,
  kRect,
  kTRect,
  kMainDiag,
  kSecDiag,
};

inline constexpr PatternKind kAllPatterns[] = {
    PatternKind::kRow,  PatternKind::kCol,      PatternKind::kRect,
    PatternKind::kTRect, PatternKind::kMainDiag, PatternKind::kSecDiag,
};

/// Short name used in tables and config files ("row", "rect", ...).
const char* pattern_name(PatternKind kind);

/// Inverse of pattern_name; throws InvalidArgument on unknown names.
PatternKind pattern_from_name(const std::string& name);

/// A parallel access: a pattern anchored at a coordinate. The access shape
/// is fully determined once the bank geometry (p, q) is known.
struct ParallelAccess {
  PatternKind kind = PatternKind::kRect;
  Coord anchor;

  friend bool operator==(const ParallelAccess&, const ParallelAccess&) = default;
};

/// Number of rows/cols the pattern spans for bank geometry (p, q).
/// E.g. Rect spans p rows and q cols; a Row spans 1 row and p*q cols.
struct PatternExtent {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  /// Column offset of the leftmost element relative to the anchor
  /// (negative for the secondary diagonal, which walks left).
  std::int64_t col_offset = 0;
};
PatternExtent pattern_extent(PatternKind kind, unsigned p, unsigned q);

/// Expands an access into its p*q element coordinates in *canonical order*:
/// the order in which data words appear on the DataIn/DataOut port
/// (left-to-right, top-to-bottom; paper Sec. III-B).
std::vector<Coord> expand(const ParallelAccess& access, unsigned p, unsigned q);

/// Appends expansion to `out` (cleared first); allocation-free steady state.
void expand_into(const ParallelAccess& access, unsigned p, unsigned q,
                 std::vector<Coord>& out);

/// True when every element of the access lies inside the H x W space.
bool fits(const ParallelAccess& access, unsigned p, unsigned q,
          std::int64_t height, std::int64_t width);

}  // namespace polymem::access
