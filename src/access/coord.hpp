// 2D coordinates in PolyMem's logical address space.
//
// PolyMem exposes a two-dimensional address space so that matrices and
// vectors can be placed directly, without linear index arithmetic
// (paper Sec. I). Coordinates are signed: secondary-diagonal accesses
// walk towards smaller columns and intermediate values may be computed
// below an anchor.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace polymem::access {

struct Coord {
  std::int64_t i = 0;  ///< row
  std::int64_t j = 0;  ///< column

  friend bool operator==(const Coord&, const Coord&) = default;
  friend auto operator<=>(const Coord&, const Coord&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Coord& c) {
  return os << '(' << c.i << ',' << c.j << ')';
}

struct CoordHash {
  std::size_t operator()(const Coord& c) const {
    // 2D -> 1D mix; splitmix-style avalanche of the packed pair.
    std::uint64_t x = static_cast<std::uint64_t>(c.i) * 0x9E3779B97F4A7C15ull ^
                      static_cast<std::uint64_t>(c.j);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace polymem::access
