// Logical regions of the 2D address space (paper Fig. 2).
//
// A Region is an application-level data structure placed in PolyMem — a
// matrix, a row/column vector, or a diagonal — that is read or written with
// one or more parallel accesses. The paper's Fig. 2 shows ten such regions
// (R0..R9) in an 8x9 space, each readable in one (R1..R9) or several (R0)
// parallel accesses.
#pragma once

#include <cstdint>
#include <vector>

#include "access/pattern.hpp"

namespace polymem::access {

enum class RegionShape : std::uint8_t {
  kMatrix,    ///< rows x cols block
  kRowVec,    ///< 1 x length
  kColVec,    ///< length x 1
  kMainDiag,  ///< length elements (i+k, j+k)
  kSecDiag,   ///< length elements (i+k, j-k)
};

const char* region_shape_name(RegionShape shape);

struct Region {
  RegionShape shape = RegionShape::kMatrix;
  Coord origin;
  std::int64_t rows = 0;  ///< for kMatrix; for vectors/diagonals use length
  std::int64_t cols = 0;

  static Region matrix(Coord origin, std::int64_t rows, std::int64_t cols);
  static Region row_vec(Coord origin, std::int64_t length);
  static Region col_vec(Coord origin, std::int64_t length);
  static Region main_diag(Coord origin, std::int64_t length);
  static Region sec_diag(Coord origin, std::int64_t length);

  std::int64_t element_count() const;

  /// All element coordinates, row-major for matrices, walk order otherwise.
  std::vector<Coord> elements() const;
};

/// Tiles the region with parallel accesses of the given pattern so that the
/// accesses cover every region element (possibly touching elements outside
/// the region when sizes do not divide evenly — the caller masks those).
/// Returns the access list in sweep order.
///
/// Supported combinations: kMatrix with kRect/kTRect/kRow/kCol, vectors with
/// their matching 1D pattern, diagonals with the matching diagonal pattern.
/// Throws Unsupported for shape/pattern mismatches.
std::vector<ParallelAccess> tile_region(const Region& region,
                                        PatternKind pattern, unsigned p,
                                        unsigned q);

/// Minimum number of parallel accesses needed to cover the region with the
/// given pattern (the size of tile_region's result).
std::int64_t tile_count(const Region& region, PatternKind pattern, unsigned p,
                        unsigned q);

}  // namespace polymem::access
