#include "access/pattern.hpp"

#include "common/error.hpp"

namespace polymem::access {

const char* pattern_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::kRow: return "row";
    case PatternKind::kCol: return "col";
    case PatternKind::kRect: return "rect";
    case PatternKind::kTRect: return "trect";
    case PatternKind::kMainDiag: return "mdiag";
    case PatternKind::kSecDiag: return "sdiag";
  }
  throw InvalidArgument("unknown pattern kind");
}

PatternKind pattern_from_name(const std::string& name) {
  for (PatternKind kind : kAllPatterns)
    if (name == pattern_name(kind)) return kind;
  throw InvalidArgument("unknown pattern name: " + name);
}

PatternExtent pattern_extent(PatternKind kind, unsigned p, unsigned q) {
  const std::int64_t n = static_cast<std::int64_t>(p) * q;
  switch (kind) {
    case PatternKind::kRow: return {1, n, 0};
    case PatternKind::kCol: return {n, 1, 0};
    case PatternKind::kRect: return {p, q, 0};
    case PatternKind::kTRect: return {q, p, 0};
    case PatternKind::kMainDiag: return {n, n, 0};
    case PatternKind::kSecDiag: return {n, n, -(n - 1)};
  }
  throw InvalidArgument("unknown pattern kind");
}

void expand_into(const ParallelAccess& access, unsigned p, unsigned q,
                 std::vector<Coord>& out) {
  POLYMEM_REQUIRE(p >= 1 && q >= 1, "bank geometry must be at least 1x1");
  const std::int64_t n = static_cast<std::int64_t>(p) * q;
  const auto [a, b] = access.anchor;
  // Indexed writes into a pre-sized vector: a no-op resize in steady state,
  // so callers that reuse `out` (the AGU scratch) never reallocate and skip
  // push_back's per-element capacity checks.
  out.resize(static_cast<std::size_t>(n));
  Coord* dst = out.data();
  switch (access.kind) {
    case PatternKind::kRow:
      for (std::int64_t k = 0; k < n; ++k) dst[k] = {a, b + k};
      break;
    case PatternKind::kCol:
      for (std::int64_t k = 0; k < n; ++k) dst[k] = {a + k, b};
      break;
    case PatternKind::kRect:
      for (std::int64_t u = 0; u < p; ++u)
        for (std::int64_t v = 0; v < q; ++v) *dst++ = {a + u, b + v};
      break;
    case PatternKind::kTRect:
      for (std::int64_t u = 0; u < q; ++u)
        for (std::int64_t v = 0; v < p; ++v) *dst++ = {a + u, b + v};
      break;
    case PatternKind::kMainDiag:
      for (std::int64_t k = 0; k < n; ++k) dst[k] = {a + k, b + k};
      break;
    case PatternKind::kSecDiag:
      for (std::int64_t k = 0; k < n; ++k) dst[k] = {a + k, b - k};
      break;
    default:
      throw InvalidArgument("unknown pattern kind");
  }
}

std::vector<Coord> expand(const ParallelAccess& access, unsigned p,
                          unsigned q) {
  std::vector<Coord> out;
  expand_into(access, p, q, out);
  return out;
}

bool fits(const ParallelAccess& access, unsigned p, unsigned q,
          std::int64_t height, std::int64_t width) {
  const PatternExtent ext = pattern_extent(access.kind, p, q);
  const auto [a, b] = access.anchor;
  const std::int64_t left = b + ext.col_offset;
  return a >= 0 && left >= 0 && a + ext.rows <= height &&
         left + ext.cols <= width;
}

}  // namespace polymem::access
