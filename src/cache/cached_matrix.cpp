#include "cache/cached_matrix.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "maf/conflict.hpp"

namespace polymem::cache {

using access::PatternKind;
using core::AccessBatch;

CachedMatrix::CachedMatrix(maxsim::LMem& lmem, core::PolyMem& mem,
                           const maxsim::LMemMatrix& matrix,
                           core::FramePool frames, CacheOptions options)
    : cache_(lmem, mem, matrix, frames, options),
      lanes_(static_cast<std::int64_t>(mem.config().lanes())),
      rows_any_anchor_(maf::probe_support(mem.maf(), PatternKind::kRow) ==
                       maf::SupportLevel::kAny) {}

void CachedMatrix::check_block(std::int64_t i, std::int64_t j,
                               std::int64_t rows, std::int64_t cols,
                               std::size_t buffer) const {
  POLYMEM_REQUIRE(rows >= 1 && cols >= 1, "block must be non-empty");
  POLYMEM_REQUIRE(i >= 0 && j >= 0 && i + rows <= this->rows() &&
                      j + cols <= this->cols(),
                  "block exceeds the cached matrix");
  POLYMEM_REQUIRE(buffer == static_cast<std::size_t>(rows * cols),
                  "buffer does not match the block shape");
}

bool CachedMatrix::row_path(std::int64_t sub_cols) const {
  return rows_any_anchor_ && sub_cols % lanes_ == 0;
}

void CachedMatrix::read_block(std::int64_t i, std::int64_t j,
                              std::int64_t rows, std::int64_t cols,
                              std::span<hw::Word> out) {
  check_block(i, j, rows, cols, out.size());
  const std::int64_t t_rows = cache_.frames().tile_rows();
  const std::int64_t t_cols = cache_.frames().tile_cols();
  core::PolyMem& mem = cache_.polymem();

  for (std::int64_t ti = i / t_rows; ti * t_rows < i + rows; ++ti) {
    for (std::int64_t tj = j / t_cols; tj * t_cols < j + cols; ++tj) {
      const TileCache::TileRef ref = cache_.acquire(ti, tj);
      const std::int64_t bi0 = std::max(i, ti * t_rows);
      const std::int64_t bi1 = std::min(i + rows, ti * t_rows + ref.rows);
      const std::int64_t bj0 = std::max(j, tj * t_cols);
      const std::int64_t bj1 = std::min(j + cols, tj * t_cols + ref.cols);
      const std::int64_t sub_rows = bi1 - bi0;
      const std::int64_t sub_cols = bj1 - bj0;
      const std::int64_t fi = bi0 - ti * t_rows;  // frame-relative
      const std::int64_t fj = bj0 - tj * t_cols;

      if (row_path(sub_cols)) {
        for (std::int64_t r = 0; r < sub_rows; ++r) {
          const AccessBatch row = AccessBatch::strided(
              PatternKind::kRow,
              {ref.origin.i + fi + r, ref.origin.j + fj}, {0, lanes_},
              sub_cols / lanes_);
          mem.read_batch(row, 0,
                         out.subspan(static_cast<std::size_t>(
                                         (bi0 - i + r) * cols + (bj0 - j)),
                                     static_cast<std::size_t>(sub_cols)));
        }
        cache_.note_kernel_accesses(
            static_cast<std::uint64_t>(sub_rows * (sub_cols / lanes_)),
            static_cast<std::uint64_t>(sub_rows * sub_cols));
      } else {
        for (std::int64_t r = 0; r < sub_rows; ++r)
          for (std::int64_t c = 0; c < sub_cols; ++c)
            out[static_cast<std::size_t>((bi0 - i + r) * cols +
                                         (bj0 - j) + c)] =
                mem.load({ref.origin.i + fi + r, ref.origin.j + fj + c});
        cache_.note_kernel_accesses(
            static_cast<std::uint64_t>(sub_rows * sub_cols),
            static_cast<std::uint64_t>(sub_rows * sub_cols));
      }
    }
  }
}

void CachedMatrix::write_block(std::int64_t i, std::int64_t j,
                               std::int64_t rows, std::int64_t cols,
                               std::span<const hw::Word> data) {
  check_block(i, j, rows, cols, data.size());
  const std::int64_t t_rows = cache_.frames().tile_rows();
  const std::int64_t t_cols = cache_.frames().tile_cols();
  const bool through =
      cache_.options().write_policy == WritePolicy::kWriteThrough;
  core::PolyMem& mem = cache_.polymem();

  for (std::int64_t ti = i / t_rows; ti * t_rows < i + rows; ++ti) {
    for (std::int64_t tj = j / t_cols; tj * t_cols < j + cols; ++tj) {
      const TileCache::TileRef ref = cache_.acquire(ti, tj);
      const std::int64_t bi0 = std::max(i, ti * t_rows);
      const std::int64_t bi1 = std::min(i + rows, ti * t_rows + ref.rows);
      const std::int64_t bj0 = std::max(j, tj * t_cols);
      const std::int64_t bj1 = std::min(j + cols, tj * t_cols + ref.cols);
      const std::int64_t sub_rows = bi1 - bi0;
      const std::int64_t sub_cols = bj1 - bj0;
      const std::int64_t fi = bi0 - ti * t_rows;
      const std::int64_t fj = bj0 - tj * t_cols;

      if (row_path(sub_cols)) {
        for (std::int64_t r = 0; r < sub_rows; ++r) {
          const AccessBatch row = AccessBatch::strided(
              PatternKind::kRow,
              {ref.origin.i + fi + r, ref.origin.j + fj}, {0, lanes_},
              sub_cols / lanes_);
          mem.write_batch(row,
                          data.subspan(static_cast<std::size_t>(
                                           (bi0 - i + r) * cols + (bj0 - j)),
                                       static_cast<std::size_t>(sub_cols)));
        }
        cache_.note_kernel_accesses(
            static_cast<std::uint64_t>(sub_rows * (sub_cols / lanes_)),
            static_cast<std::uint64_t>(sub_rows * sub_cols));
      } else {
        for (std::int64_t r = 0; r < sub_rows; ++r)
          for (std::int64_t c = 0; c < sub_cols; ++c)
            mem.store({ref.origin.i + fi + r, ref.origin.j + fj + c},
                      data[static_cast<std::size_t>((bi0 - i + r) * cols +
                                                    (bj0 - j) + c)]);
        cache_.note_kernel_accesses(
            static_cast<std::uint64_t>(sub_rows * sub_cols),
            static_cast<std::uint64_t>(sub_rows * sub_cols));
      }

      if (through) {
        for (std::int64_t r = 0; r < sub_rows; ++r)
          cache_.write_through(
              bi0 + r, bj0,
              data.subspan(static_cast<std::size_t>((bi0 - i + r) * cols +
                                                    (bj0 - j)),
                           static_cast<std::size_t>(sub_cols)));
      } else {
        cache_.mark_dirty(ref.frame);
      }
    }
  }
}

hw::Word CachedMatrix::read(std::int64_t i, std::int64_t j) {
  hw::Word value = 0;
  read_block(i, j, 1, 1, std::span<hw::Word>(&value, 1));
  return value;
}

void CachedMatrix::write(std::int64_t i, std::int64_t j, hw::Word value) {
  write_block(i, j, 1, 1, std::span<const hw::Word>(&value, 1));
}

}  // namespace polymem::cache
