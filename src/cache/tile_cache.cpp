#include "cache/tile_cache.hpp"

#include <algorithm>
#include <list>

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::cache {

const char* eviction_name(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kLru: return "lru";
    case EvictionKind::kFifo: return "fifo";
  }
  return "?";
}

const char* write_policy_name(WritePolicy policy) {
  switch (policy) {
    case WritePolicy::kWriteBack: return "write-back";
    case WritePolicy::kWriteThrough: return "write-through";
  }
  return "?";
}

namespace {

/// One list covers both policies: frames enter at the back, the victim is
/// the front; LRU additionally moves a touched frame to the back.
class ListOrder : public EvictionOrder {
 public:
  ListOrder(bool move_on_access, const char* name)
      : move_on_access_(move_on_access), name_(name) {}

  const char* name() const override { return name_; }

  void on_insert(int frame) override {
    pos_[frame] = order_.insert(order_.end(), frame);
  }

  void on_access(int frame) override {
    if (!move_on_access_) return;
    const auto it = pos_.find(frame);
    POLYMEM_REQUIRE(it != pos_.end(), "access to a frame not in the order");
    order_.splice(order_.end(), order_, it->second);
  }

  void on_erase(int frame) override {
    const auto it = pos_.find(frame);
    POLYMEM_REQUIRE(it != pos_.end(), "erase of a frame not in the order");
    order_.erase(it->second);
    pos_.erase(it);
  }

  int victim() const override {
    POLYMEM_REQUIRE(!order_.empty(), "no frame to evict");
    return order_.front();
  }

  bool empty() const override { return order_.empty(); }

 private:
  std::list<int> order_;
  std::unordered_map<int, std::list<int>::iterator> pos_;
  bool move_on_access_;
  const char* name_;
};

}  // namespace

std::unique_ptr<EvictionOrder> EvictionOrder::make(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kLru:
      return std::make_unique<ListOrder>(true, "lru");
    case EvictionKind::kFifo:
      return std::make_unique<ListOrder>(false, "fifo");
  }
  throw InvalidArgument("unknown eviction kind");
}

TileCache::TileCache(maxsim::LMem& lmem, core::PolyMem& mem,
                     const maxsim::LMemMatrix& matrix,
                     core::FramePool frames, CacheOptions options)
    : lmem_(&lmem),
      mem_(&mem),
      matrix_(matrix),
      frames_(frames),
      options_(options),
      dma_(lmem, mem),
      tiles_i_(ceil_div(matrix.rows, frames.tile_rows())),
      tiles_j_(ceil_div(matrix.cols, frames.tile_cols())),
      order_(EvictionOrder::make(options.eviction)),
      slot_(std::make_shared<PrefetchSlot>()) {
  POLYMEM_REQUIRE(matrix.rows >= 1 && matrix.cols >= 1,
                  "cached matrix must be non-empty");
  POLYMEM_REQUIRE(matrix.leading_dim >= matrix.cols,
                  "bad leading dimension");
  POLYMEM_REQUIRE(options.clock_hz > 0, "clock must be positive");
  frame_table_.resize(static_cast<std::size_t>(frames_.frames()));
  // Free list popped from the back: frame 0 is handed out first.
  for (int f = frames_.frames() - 1; f >= 0; --f) free_frames_.push_back(f);
}

TileCache::~TileCache() { drain_prefetch(); }

std::int64_t TileCache::clipped_rows(std::int64_t ti) const {
  return std::min(frames_.tile_rows(),
                  matrix_.rows - ti * frames_.tile_rows());
}

std::int64_t TileCache::clipped_cols(std::int64_t tj) const {
  return std::min(frames_.tile_cols(),
                  matrix_.cols - tj * frames_.tile_cols());
}

bool TileCache::resident(std::int64_t ti, std::int64_t tj) const {
  return residency_.count(tile_key(ti, tj)) > 0;
}

TileCache::TileRef TileCache::acquire(std::int64_t ti, std::int64_t tj) {
  POLYMEM_REQUIRE(ti >= 0 && ti < tiles_i_ && tj >= 0 && tj < tiles_j_,
                  "tile coordinate outside the matrix");
  const std::int64_t key = tile_key(ti, tj);
  TileRef ref;
  ref.ti = ti;
  ref.tj = tj;
  ref.rows = clipped_rows(ti);
  ref.cols = clipped_cols(tj);

  if (const auto it = residency_.find(key); it != residency_.end()) {
    ++stats_.dma.cache.hits;
    order_->on_access(it->second);
    ref.frame = it->second;
    ref.origin = frames_.frame_origin(it->second);
    return ref;
  }
  ++stats_.dma.cache.misses;

  // Is the missing tile already staged (or being staged) by the
  // prefetcher? Wait out an in-flight load of exactly this tile.
  bool staged = false;
  {
    std::unique_lock<std::mutex> lock(slot_->m);
    if (slot_->inflight && slot_->ti == ti && slot_->tj == tj)
      slot_->cv.wait(lock, [&] { return !slot_->inflight; });
    staged = slot_->ready && slot_->ti == ti && slot_->tj == tj;
  }

  // Free a frame first: an eviction's write-back takes the LMem lock
  // itself, so it must run before we pin the slot for the install.
  const int frame = take_frame();

  if (staged) {
    std::unique_lock<std::mutex> lock(slot_->m);
    install_prefetched(frame, lock);
  } else {
    std::lock_guard<std::mutex> lock(slot_->m);
    stats_.dma += dma_.load_tile(matrix_, ti * frames_.tile_rows(),
                                 tj * frames_.tile_cols(), ref.rows,
                                 ref.cols, frames_.frame_origin(frame));
  }

  residency_[key] = frame;
  frame_table_[static_cast<std::size_t>(frame)] = {ti, tj, false};
  order_->on_insert(frame);
  ref.frame = frame;
  ref.origin = frames_.frame_origin(frame);

  // Sequential next-tile prediction: the next tile in row-major tile
  // order. Issued after the install so the burst overlaps the kernel's
  // work on the tile we just returned.
  if (options_.prefetch_pool != nullptr) {
    std::int64_t ni = ti, nj = tj + 1;
    if (nj == tiles_j_) {
      ni = ti + 1;
      nj = 0;
    }
    if (ni < tiles_i_) issue_prefetch(ni, nj);
  }
  return ref;
}

int TileCache::take_frame() {
  if (!free_frames_.empty()) {
    const int frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  const int victim = order_->victim();
  evict(victim);
  free_frames_.pop_back();
  return victim;
}

void TileCache::evict(int frame) {
  Frame& slot = frame_table_[static_cast<std::size_t>(frame)];
  POLYMEM_REQUIRE(slot.ti >= 0, "evicting a free frame");
  if (slot.dirty) write_back(frame);
  ++stats_.dma.cache.evictions;
  residency_.erase(tile_key(slot.ti, slot.tj));
  order_->on_erase(frame);
  slot = Frame{};
  free_frames_.push_back(frame);
}

void TileCache::write_back(int frame) {
  Frame& slot = frame_table_[static_cast<std::size_t>(frame)];
  std::lock_guard<std::mutex> lock(slot_->m);
  stats_.dma += dma_.store_tile(
      matrix_, slot.ti * frames_.tile_rows(), slot.tj * frames_.tile_cols(),
      clipped_rows(slot.ti), clipped_cols(slot.tj),
      frames_.frame_origin(frame));
  ++stats_.dma.cache.writebacks;
  slot.dirty = false;
}

void TileCache::mark_dirty(int frame) {
  Frame& slot = frame_table_[static_cast<std::size_t>(frame)];
  POLYMEM_REQUIRE(slot.ti >= 0, "dirtying a free frame");
  if (options_.write_policy == WritePolicy::kWriteBack) slot.dirty = true;
}

void TileCache::write_through(std::int64_t i, std::int64_t j,
                              std::span<const hw::Word> data) {
  POLYMEM_REQUIRE(i >= 0 && i < matrix_.rows && j >= 0 &&
                      j + static_cast<std::int64_t>(data.size()) <=
                          matrix_.cols,
                  "write-through outside the matrix");
  std::lock_guard<std::mutex> lock(slot_->m);
  lmem_->write(matrix_.word_addr(i, j), data);
  stats_.dma.lmem_seconds += lmem_->burst_seconds(data.size() * 8);
}

void TileCache::note_kernel_accesses(std::uint64_t accesses,
                                     std::uint64_t words) {
  stats_.kernel_accesses += accesses;
  stats_.kernel_words += words;
}

void TileCache::flush() {
  // Burst-friendly order (Ferry et al., PAPERS.md): write back in
  // ascending LMem address, i.e. (ti, tj) lexicographic — consecutive
  // tiles of a row band land in consecutive DRAM regions, so the burst
  // stream stays monotone instead of hopping with frame-table order.
  std::vector<int> dirty;
  for (int f = 0; f < frames_.frames(); ++f)
    if (frame_table_[static_cast<std::size_t>(f)].dirty) dirty.push_back(f);
  std::sort(dirty.begin(), dirty.end(), [this](int a, int b) {
    const Frame& fa = frame_table_[static_cast<std::size_t>(a)];
    const Frame& fb = frame_table_[static_cast<std::size_t>(b)];
    return tile_key(fa.ti, fa.tj) < tile_key(fb.ti, fb.tj);
  });
  std::int64_t prev_key = -2;
  for (int f : dirty) {
    const Frame& slot = frame_table_[static_cast<std::size_t>(f)];
    const std::int64_t key = tile_key(slot.ti, slot.tj);
    if (key != prev_key + 1) ++stats_.dma.cache.flush_runs;
    prev_key = key;
    write_back(f);
  }
}

void TileCache::migrate(core::PolyMem& polymem) {
  POLYMEM_REQUIRE(
      polymem.config().height >= frames_.origin().i + frames_.region_rows() &&
          polymem.config().width >= frames_.origin().j + frames_.region_cols(),
      "migrated PolyMem too small for the frame pool");
  flush();        // ordered write-back: LMem becomes the only truth
  invalidate();   // drop residency; tiles refill from LMem on demand
  mem_ = &polymem;
  dma_.retarget(polymem);
  ++stats_.dma.cache.relayouts;
}

void TileCache::invalidate() {
  drain_prefetch();
  {
    std::lock_guard<std::mutex> lock(slot_->m);
    if (slot_->ready) ++stats_.dma.cache.prefetch_dropped;
    slot_->ready = false;
    slot_->ti = slot_->tj = -1;
  }
  for (int f = 0; f < frames_.frames(); ++f) {
    Frame& slot = frame_table_[static_cast<std::size_t>(f)];
    if (slot.ti < 0) continue;
    residency_.erase(tile_key(slot.ti, slot.tj));
    order_->on_erase(f);
    slot = Frame{};
    free_frames_.push_back(f);
  }
}

void TileCache::issue_prefetch(std::int64_t ti, std::int64_t tj) {
  if (resident(ti, tj)) return;
  const std::int64_t rows = clipped_rows(ti);
  const std::int64_t cols = clipped_cols(tj);
  const std::int64_t row0 = ti * frames_.tile_rows();
  const std::int64_t col0 = tj * frames_.tile_cols();
  {
    std::lock_guard<std::mutex> lock(slot_->m);
    if (slot_->inflight) return;  // one outstanding prefetch at a time
    if (slot_->ready) {
      if (slot_->ti == ti && slot_->tj == tj) return;  // already staged
      ++stats_.dma.cache.prefetch_dropped;  // stale staging, overwrite
    }
    slot_->inflight = true;
    slot_->ready = false;
    slot_->ti = ti;
    slot_->tj = tj;
    slot_->rows = rows;
    slot_->cols = cols;
    slot_->issue_cycles = stats_.total_polymem_cycles();
    ++stats_.dma.cache.prefetch_issued;
  }
  options_.prefetch_pool->submit(
      [slot = slot_, lmem = lmem_, matrix = matrix_, row0, col0, rows,
       cols] {
        std::lock_guard<std::mutex> lock(slot->m);
        slot->data.resize(static_cast<std::size_t>(rows * cols));
        for (std::int64_t r = 0; r < rows; ++r)
          lmem->read(matrix.word_addr(row0 + r, col0),
                     std::span<hw::Word>(slot->data)
                         .subspan(static_cast<std::size_t>(r * cols),
                                  static_cast<std::size_t>(cols)));
        slot->lmem_seconds =
            lmem->burst_seconds(static_cast<std::uint64_t>(rows) * cols * 8);
        slot->ready = true;
        slot->inflight = false;
        slot->cv.notify_all();
      });
}

void TileCache::install_prefetched(int frame,
                                   std::unique_lock<std::mutex>& lock) {
  POLYMEM_REQUIRE(lock.owns_lock() && slot_->ready,
                  "install without a staged tile");
  // Overlap credit first: PolyMem cycles spent since the issue bound the
  // DRAM time the prefetch hid from the critical path.
  const std::uint64_t cycles_since =
      stats_.total_polymem_cycles() - slot_->issue_cycles;
  stats_.lmem_seconds_overlapped +=
      std::min(slot_->lmem_seconds,
               static_cast<double>(cycles_since) / options_.clock_hz);
  stats_.dma += dma_.write_staged(slot_->data, slot_->rows, slot_->cols,
                                  frames_.frame_origin(frame));
  stats_.dma.lmem_seconds += slot_->lmem_seconds;
  ++stats_.dma.cache.prefetch_useful;
  slot_->ready = false;
  slot_->ti = slot_->tj = -1;
}

void TileCache::drain_prefetch() {
  std::unique_lock<std::mutex> lock(slot_->m);
  slot_->cv.wait(lock, [&] { return !slot_->inflight; });
}

CacheStats TileCache::stats() const { return stats_; }

}  // namespace polymem::cache
