// Out-of-core software cache: tile residency over LMem.
//
// The paper presents PolyMem as "a high-bandwidth, 2D parallel software
// cache" between the board DRAM and the kernel (Fig. 1, Sec. II-B). The
// seed reproduction stopped at raw DMA tile moves, capping every workload
// at the on-chip capacity; TileCache adds the missing controller. It
// manages the PolyMem 2D space as a pool of fixed-geometry frames
// (core::FramePool) caching tiles of one row-major LMem matrix:
//
//  - a *residency map* from matrix tile coordinates to frames, so matrix
//    (i, j) translates to a PolyMem coordinate in O(1);
//  - pluggable *eviction* (LRU and FIFO) with dirty-tile tracking and
//    write-back vs write-through policies;
//  - asynchronous *prefetch* of the predicted next tile on the shared
//    runtime::ThreadPool: the DRAM burst of the next tile is staged in
//    the background while the kernel keeps issuing PolyMem accesses, and
//    the hidden portion of LMem::burst_seconds is accounted separately
//    (stats().lmem_seconds_overlapped) so benchmarks can report the
//    overlap win honestly.
//
// TileCache is single-consumer: one thread calls acquire/flush; the only
// concurrency is the prefetch worker. The staged-tile handoff is
// serialized on the slot mutex, LMem itself is internally synchronized
// (several caches may share one board memory), and PolyMem is only ever
// touched by the consumer thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "core/frame_pool.hpp"
#include "core/polymem.hpp"
#include "maxsim/dma.hpp"
#include "maxsim/lmem.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::cache {

enum class EvictionKind : std::uint8_t { kLru, kFifo };
enum class WritePolicy : std::uint8_t { kWriteBack, kWriteThrough };

const char* eviction_name(EvictionKind kind);
const char* write_policy_name(WritePolicy policy);

/// Pluggable eviction order over frame ids. TileCache notifies residency
/// changes and touches; victim() names the frame to displace next.
class EvictionOrder {
 public:
  virtual ~EvictionOrder() = default;
  virtual const char* name() const = 0;
  virtual void on_insert(int frame) = 0;  ///< frame became resident
  virtual void on_access(int frame) = 0;  ///< resident frame was touched
  virtual void on_erase(int frame) = 0;   ///< frame was evicted/invalidated
  virtual int victim() const = 0;         ///< next frame to displace
  virtual bool empty() const = 0;

  static std::unique_ptr<EvictionOrder> make(EvictionKind kind);
};

struct CacheOptions {
  EvictionKind eviction = EvictionKind::kLru;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  /// Non-null enables sequential next-tile prefetch on this pool.
  runtime::ThreadPool* prefetch_pool = nullptr;
  /// Clock used to convert PolyMem cycles elapsed while a prefetch was in
  /// flight into the DRAM time it hid (paper Sec. V: 120 MHz design).
  double clock_hz = 120e6;
};

/// Aggregate accounting of a cache session. `dma` sums every refill and
/// write-back (its `cache` member carries the event counters);
/// `kernel_accesses` are the consumer-side PolyMem parallel accesses the
/// cache served from resident frames.
struct CacheStats {
  maxsim::DmaStats dma;
  std::uint64_t kernel_accesses = 0;
  std::uint64_t kernel_words = 0;
  double lmem_seconds_overlapped = 0;

  const CacheCounters& counters() const { return dma.cache; }
  /// DRAM time on the critical path: total bursts minus what prefetch hid.
  double effective_lmem_seconds() const {
    return dma.lmem_seconds - lmem_seconds_overlapped;
  }
  /// Every PolyMem cycle spent (refills, write-backs and kernel accesses).
  std::uint64_t total_polymem_cycles() const {
    return dma.polymem_cycles + kernel_accesses;
  }
};

class TileCache {
 public:
  /// Caches tiles of `matrix` (resident in `lmem`) in the frames of
  /// `frames` (a region of `mem`). The matrix is tiled in
  /// tile_rows x tile_cols steps from its top-left corner; edge tiles are
  /// clipped. The frame pool, LMem and PolyMem must outlive the cache.
  TileCache(maxsim::LMem& lmem, core::PolyMem& mem,
            const maxsim::LMemMatrix& matrix, core::FramePool frames,
            CacheOptions options = {});

  /// Drains any in-flight prefetch. Does NOT flush dirty tiles — call
  /// flush() when the LMem copy must be current.
  ~TileCache();

  TileCache(const TileCache&) = delete;
  TileCache& operator=(const TileCache&) = delete;

  /// A resident tile: its frame, PolyMem origin and clipped extent.
  struct TileRef {
    int frame = -1;
    access::Coord origin;     ///< frame origin in PolyMem
    std::int64_t rows = 0;    ///< actual tile rows (edge tiles clipped)
    std::int64_t cols = 0;
    std::int64_t ti = 0, tj = 0;
  };

  /// Ensures tile (ti, tj) is resident (refilling and evicting as
  /// needed) and returns its frame. Counts one hit or one miss.
  TileRef acquire(std::int64_t ti, std::int64_t tj);

  /// Marks a frame's tile as modified (write-back policy tracks it for
  /// eviction/flush; under write-through the caller is expected to also
  /// call write_through with the new data).
  void mark_dirty(int frame);

  /// Writes `data` straight to LMem at matrix row `i`, columns
  /// [j, j + data.size()), accounting the burst — the write-through half
  /// of a store (serialized against the prefetch worker).
  void write_through(std::int64_t i, std::int64_t j,
                     std::span<const hw::Word> data);

  /// Consumer-side PolyMem access accounting (CachedMatrix reports the
  /// parallel accesses it issued against resident frames here).
  void note_kernel_accesses(std::uint64_t accesses, std::uint64_t words);

  /// Writes every dirty tile back to LMem (no-op under write-through).
  /// Dirty tiles go back in ascending LMem address order — consecutive
  /// tiles coalesce into long contiguous DRAM burst runs
  /// (counters().flush_runs counts the runs; 1 == perfectly contiguous).
  void flush();

  /// Tile re-layout on scheme migration: flushes (ordered), drops all
  /// residency and re-points the cache (and its DMA engine) at `polymem`,
  /// which must cover the frame pool's region. Tiles refill lazily from
  /// LMem under the new scheme; counters().relayouts counts these. The
  /// new PolyMem must outlive the cache.
  void migrate(core::PolyMem& polymem);

  /// Drops all residency without writing anything back.
  void invalidate();

  bool resident(std::int64_t ti, std::int64_t tj) const;

  const maxsim::LMemMatrix& matrix() const { return matrix_; }
  const core::FramePool& frames() const { return frames_; }
  const CacheOptions& options() const { return options_; }
  core::PolyMem& polymem() { return *mem_; }
  std::int64_t tiles_i() const { return tiles_i_; }
  std::int64_t tiles_j() const { return tiles_j_; }

  /// Snapshot of the aggregate accounting. An issued-but-unconsumed
  /// prefetch is not yet in the DMA totals (it merges on install).
  CacheStats stats() const;

 private:
  struct Frame {
    std::int64_t ti = -1, tj = -1;  ///< resident tile; -1 = free
    bool dirty = false;
  };

  /// Prefetch slot shared with the worker. Held by shared_ptr so a job
  /// that outlives the cache (never in practice: the destructor drains)
  /// still touches valid memory. `m` also serializes every LMem access.
  struct PrefetchSlot {
    std::mutex m;
    std::condition_variable cv;
    bool inflight = false;
    bool ready = false;
    std::int64_t ti = -1, tj = -1;
    std::int64_t rows = 0, cols = 0;
    std::vector<hw::Word> data;          ///< staged row-major tile
    double lmem_seconds = 0;
    std::uint64_t issue_cycles = 0;      ///< total cycles at issue time
  };

  std::int64_t tile_key(std::int64_t ti, std::int64_t tj) const {
    return ti * tiles_j_ + tj;
  }
  std::int64_t clipped_rows(std::int64_t ti) const;
  std::int64_t clipped_cols(std::int64_t tj) const;
  int take_frame();                      ///< free frame or evicted victim
  void evict(int frame);
  void write_back(int frame);
  void issue_prefetch(std::int64_t ti, std::int64_t tj);
  /// Installs the ready slot's tile into `frame` (counts as a refill
  /// whose burst happened off the critical path). Caller holds slot->m.
  void install_prefetched(int frame, std::unique_lock<std::mutex>& lock);
  void drain_prefetch();

  maxsim::LMem* lmem_;
  core::PolyMem* mem_;
  maxsim::LMemMatrix matrix_;
  core::FramePool frames_;
  CacheOptions options_;
  maxsim::DmaEngine dma_;
  std::int64_t tiles_i_;
  std::int64_t tiles_j_;

  std::vector<Frame> frame_table_;
  std::vector<int> free_frames_;
  std::unordered_map<std::int64_t, int> residency_;
  std::unique_ptr<EvictionOrder> order_;

  std::shared_ptr<PrefetchSlot> slot_;
  CacheStats stats_;
};

}  // namespace polymem::cache
