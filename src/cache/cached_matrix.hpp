// CachedMatrix — the out-of-core facade over TileCache.
//
// Presents a row-major LMem matrix of any size as if it were resident in
// PolyMem: block, row and scalar accessors translate matrix coordinates
// to the caching frames, faulting tiles in (and evicting) as needed.
// Apps and the STREAM harness run matrices far larger than the on-chip
// capacity unchanged — the Fig. 1 "software cache" promise completed.
//
// Reads and writes of resident data go through the batched parallel
// engine (PolyMem::read_batch / write_batch, full-width row accesses)
// whenever the sub-rectangle is lane-aligned and the scheme serves rows
// at any anchor; otherwise they fall back to scalar element accesses,
// counted one PolyMem access per element — the honest cost of a scheme
// mismatch, same as the DMA engine's fallback.
#pragma once

#include <cstdint>
#include <span>

#include "cache/tile_cache.hpp"

namespace polymem::cache {

class CachedMatrix {
 public:
  /// See TileCache: `matrix` lives in `lmem`, tiles are cached in the
  /// `frames` region of `mem`.
  CachedMatrix(maxsim::LMem& lmem, core::PolyMem& mem,
               const maxsim::LMemMatrix& matrix, core::FramePool frames,
               CacheOptions options = {});

  std::int64_t rows() const { return cache_.matrix().rows; }
  std::int64_t cols() const { return cache_.matrix().cols; }

  /// Row-major copy of the `rows` x `cols` rectangle at (i, j) out of /
  /// into the cached matrix. `out`/`data` hold rows * cols words.
  void read_block(std::int64_t i, std::int64_t j, std::int64_t rows,
                  std::int64_t cols, std::span<hw::Word> out);
  void write_block(std::int64_t i, std::int64_t j, std::int64_t rows,
                   std::int64_t cols, std::span<const hw::Word> data);

  /// Row accessors: elements (i, j .. j + n) with n = span size.
  void read_row(std::int64_t i, std::int64_t j, std::span<hw::Word> out) {
    read_block(i, j, 1, static_cast<std::int64_t>(out.size()), out);
  }
  void write_row(std::int64_t i, std::int64_t j,
                 std::span<const hw::Word> data) {
    write_block(i, j, 1, static_cast<std::int64_t>(data.size()), data);
  }

  /// Scalar accessors (one cached element; a full parallel access's cost
  /// only on a miss).
  hw::Word read(std::int64_t i, std::int64_t j);
  void write(std::int64_t i, std::int64_t j, hw::Word value);

  /// Writes every dirty tile back to LMem (no-op under write-through).
  void flush() { cache_.flush(); }

  TileCache& cache() { return cache_; }
  const TileCache& cache() const { return cache_; }
  CacheStats stats() const { return cache_.stats(); }

 private:
  void check_block(std::int64_t i, std::int64_t j, std::int64_t rows,
                   std::int64_t cols, std::size_t buffer) const;
  /// True when the sub-rect copy can use full-width row accesses.
  bool row_path(std::int64_t sub_cols) const;

  TileCache cache_;
  std::int64_t lanes_;
  bool rows_any_anchor_;
};

}  // namespace polymem::cache
