// Full-crossbar shuffle network (the paper's Shuffle blocks, Sec. III-B).
//
// MAX-PolyMem reorders lane data with full crossbars: given a reordering
// (select) signal, the regular Shuffle places input `sel[k]` on output `k`,
// while the Inverse Shuffle restores the original order — output
// `sel[k]` receives input `k`. The paper attributes the supra-linear logic
// growth with lane count to these crossbars (n^2 crosspoints).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace polymem::hw {

/// Validates that `sel` is a permutation of [0, n); throws otherwise.
/// Shuffle networks are only well-defined for permutation selects.
void require_permutation(std::span<const unsigned> sel);

/// Regular shuffle: out[k] = in[sel[k]].
template <typename T>
void shuffle(std::span<const T> in, std::span<const unsigned> sel,
             std::span<T> out) {
  POLYMEM_REQUIRE(in.size() == sel.size() && in.size() == out.size(),
                  "shuffle lane counts must match");
  require_permutation(sel);
  for (std::size_t k = 0; k < in.size(); ++k) out[k] = in[sel[k]];
}

/// Inverse shuffle: out[sel[k]] = in[k]. Applying shuffle then
/// inverse_shuffle with the same select restores the input order.
template <typename T>
void inverse_shuffle(std::span<const T> in, std::span<const unsigned> sel,
                     std::span<T> out) {
  POLYMEM_REQUIRE(in.size() == sel.size() && in.size() == out.size(),
                  "shuffle lane counts must match");
  require_permutation(sel);
  for (std::size_t k = 0; k < in.size(); ++k) out[sel[k]] = in[k];
}

/// Crosspoint count of an n-lane full crossbar; the resource model uses
/// this to reproduce the paper's quadratic logic growth (Sec. IV-C).
constexpr std::uint64_t crossbar_crosspoints(unsigned lanes) {
  return static_cast<std::uint64_t>(lanes) * lanes;
}

}  // namespace polymem::hw
