// Benes rearrangeable permutation network.
//
// The paper's shuffles are full crossbars — O(n^2) crosspoints, the cause
// of its supra-linear logic growth (Sec. IV-C). The classic alternative
// is a Benes network: 2*log2(n) - 1 stages of n/2 two-by-two switches,
// O(n log n) area, able to realise ANY permutation — at the price of a
// route-computation step (the "looping algorithm") that is hard to do
// combinationally in one cycle. This module implements the network and
// its routing exactly, so the ablation in bench_ablation rests on a real
// implementation, not just a cost formula.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::hw {

/// Switch settings for one routed permutation: stage_cross[s][t] is true
/// when switch t of stage s crosses its two inputs.
struct BenesPlan {
  unsigned lanes = 0;
  std::vector<std::vector<bool>> stage_cross;

  unsigned stages() const {
    return static_cast<unsigned>(stage_cross.size());
  }
  std::uint64_t switches() const {
    std::uint64_t n = 0;
    for (const auto& stage : stage_cross) n += stage.size();
    return n;
  }
};

/// Number of stages / 2x2 switches of an n-lane Benes network (n = 2^k).
constexpr unsigned benes_stages(unsigned lanes) {
  return lanes <= 1 ? 0 : 2 * log2_ceil(lanes) - 1;
}
constexpr std::uint64_t benes_switches(unsigned lanes) {
  return static_cast<std::uint64_t>(benes_stages(lanes)) * (lanes / 2);
}

/// Computes switch settings realising out[k] = in[sel[k]] (the same
/// semantics as hw::shuffle). `sel` must be a permutation and lanes a
/// power of two.
BenesPlan benes_route(std::span<const unsigned> sel);

namespace detail {
// Applies one recursion level of the plan; used by benes_apply.
template <typename T>
void apply_rec(std::span<const T> in, std::span<T> out,
               const BenesPlan& plan, unsigned depth, unsigned block);
}  // namespace detail

/// Applies a routed plan to data: out[k] = in[sel[k]] for the `sel` the
/// plan was computed from.
template <typename T>
void benes_apply(std::span<const T> in, const BenesPlan& plan,
                 std::span<T> out) {
  POLYMEM_REQUIRE(in.size() == plan.lanes && out.size() == plan.lanes,
                  "lane counts must match the plan");
  if (plan.lanes == 1) {
    out[0] = in[0];
    return;
  }
  detail::apply_rec<T>(in, out, plan, 0, 0);
}

namespace detail {

template <typename T>
void apply_rec(std::span<const T> in, std::span<T> out,
               const BenesPlan& plan, unsigned depth, unsigned block) {
  const unsigned m = static_cast<unsigned>(in.size());
  const unsigned total = plan.stages();
  if (m == 2) {
    // The single middle switch of this recursion path.
    const bool cross = plan.stage_cross[depth][block];
    out[0] = in[cross ? 1 : 0];
    out[1] = in[cross ? 0 : 1];
    return;
  }
  const unsigned half = m / 2;
  const unsigned first = depth;
  const unsigned last = total - 1 - depth;
  const unsigned sw_base = block * half;

  // Input column: route each input pair into the two subnetworks.
  std::vector<T> upper_in(half), lower_in(half);
  for (unsigned t = 0; t < half; ++t) {
    const bool cross = plan.stage_cross[first][sw_base + t];
    upper_in[t] = in[2 * t + (cross ? 1 : 0)];
    lower_in[t] = in[2 * t + (cross ? 0 : 1)];
  }
  // Subnetworks.
  std::vector<T> upper_out(half), lower_out(half);
  apply_rec<T>(upper_in, std::span<T>(upper_out), plan, depth + 1,
               2 * block);
  apply_rec<T>(lower_in, std::span<T>(lower_out), plan, depth + 1,
               2 * block + 1);
  // Output column.
  for (unsigned t = 0; t < half; ++t) {
    const bool cross = plan.stage_cross[last][sw_base + t];
    out[2 * t + (cross ? 1 : 0)] = upper_out[t];
    out[2 * t + (cross ? 0 : 1)] = lower_out[t];
  }
}

}  // namespace detail

}  // namespace polymem::hw
