#include "hw/bram.hpp"

#include <string>

namespace polymem::hw {

BramBank::BramBank(std::int64_t words) {
  POLYMEM_REQUIRE(words >= 1, "bank must hold at least one word");
  mem_.assign(static_cast<std::size_t>(words), 0);
}

void BramBank::begin_cycle() {
  read_used_ = false;
  write_used_ = false;
}

void BramBank::check_addr(std::int64_t addr) const {
  POLYMEM_REQUIRE(addr >= 0 && addr < words(),
                  "bank address out of range: " + std::to_string(addr) +
                      " (bank holds " + std::to_string(words()) + " words)");
}

Word BramBank::peek(std::int64_t addr) const {
  check_addr(addr);
  return mem_[static_cast<std::size_t>(addr)];
}

void BramBank::poke(std::int64_t addr, Word value) {
  check_addr(addr);
  mem_[static_cast<std::size_t>(addr)] = value;
}

Word BramBank::read(std::int64_t addr) {
  check_addr(addr);
  if (read_used_)
    throw Error("bank conflict: second read on one port in one cycle");
  read_used_ = true;
  ++total_reads_;
  return mem_[static_cast<std::size_t>(addr)];
}

void BramBank::write(std::int64_t addr, Word value) {
  check_addr(addr);
  if (write_used_)
    throw Error("bank conflict: second write on one port in one cycle");
  write_used_ = true;
  ++total_writes_;
  mem_[static_cast<std::size_t>(addr)] = value;
}

}  // namespace polymem::hw
