// Clock domain bookkeeping for the cycle-level simulator.
//
// A ClockDomain counts cycles and converts them to wall-clock time at the
// (synthesis-model-provided) clock frequency; bandwidth numbers in the
// benches come from `bytes / domain.elapsed_seconds()`.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace polymem::hw {

class ClockDomain {
 public:
  explicit ClockDomain(double frequency_hz) : frequency_hz_(frequency_hz) {
    POLYMEM_REQUIRE(frequency_hz > 0, "clock frequency must be positive");
  }

  double frequency_hz() const { return frequency_hz_; }
  std::uint64_t cycles() const { return cycles_; }

  void tick(std::uint64_t n = 1) { cycles_ += n; }
  void reset() { cycles_ = 0; }

  double elapsed_seconds() const {
    return static_cast<double>(cycles_) / frequency_hz_;
  }
  double elapsed_ns() const { return elapsed_seconds() * 1e9; }

  /// Seconds a given cycle count takes in this domain.
  double seconds_for(std::uint64_t cycle_count) const {
    return static_cast<double>(cycle_count) / frequency_hz_;
  }

 private:
  double frequency_hz_;
  std::uint64_t cycles_ = 0;
};

}  // namespace polymem::hw
