#include "hw/benes.hpp"

#include "hw/crossbar.hpp"

namespace polymem::hw {

namespace {

// Recursive core of the looping algorithm. `sel` maps this subnetwork's
// outputs to its inputs (out o takes in sel[o]); `depth`/`block` locate
// the subnetwork in the flattened plan.
void route_rec(std::span<const unsigned> sel, BenesPlan& plan,
               unsigned depth, unsigned block) {
  const unsigned m = static_cast<unsigned>(sel.size());
  if (m == 1) return;
  if (m == 2) {
    plan.stage_cross[depth][block] = (sel[0] == 1);
    return;
  }
  const unsigned half = m / 2;
  const unsigned first = depth;
  const unsigned last = plan.stages() - 1 - depth;
  const unsigned sw_base = block * half;

  // Inverse permutation: input -> output.
  std::vector<unsigned> inv(m);
  for (unsigned o = 0; o < m; ++o) inv[sel[o]] = o;

  // 2-colour the connections (the looping algorithm): connections sharing
  // an input pair or an output pair must use different subnetworks. The
  // conflict graph is a disjoint union of even cycles, so walking each
  // cycle alternating colours always succeeds.
  std::vector<int> subnet(m, -1);
  for (unsigned start = 0; start < m; ++start) {
    if (subnet[start] != -1) continue;
    unsigned o = start;
    const int colour = 0;
    while (true) {
      subnet[o] = colour;
      // The connection sharing o's input switch takes the other subnet.
      const unsigned p = inv[sel[o] ^ 1u];
      if (subnet[p] != -1) break;
      subnet[p] = 1 - colour;
      // The connection sharing p's output switch continues the cycle with
      // the original colour.
      o = p ^ 1u;
      if (subnet[o] != -1) break;
    }
  }

  // Derive the input/output column settings and the sub-permutations.
  std::vector<unsigned> upper_sel(half), lower_sel(half);
  for (unsigned t = 0; t < half; ++t) {
    // Output switch t: its upper-subnet connection is output 2t or 2t+1.
    const unsigned o_upper = (subnet[2 * t] == 0) ? 2 * t : 2 * t + 1;
    const unsigned o_lower = o_upper ^ 1u;
    POLYMEM_ASSERT(subnet[o_upper] == 0 && subnet[o_lower] == 1);
    plan.stage_cross[last][sw_base + t] = (o_upper % 2 == 1);
    upper_sel[t] = sel[o_upper] / 2;
    lower_sel[t] = sel[o_lower] / 2;
    // Input switch t: the input routed to the upper subnet.
    const unsigned via_upper_in =
        (subnet[inv[2 * t]] == 0) ? 2 * t : 2 * t + 1;
    plan.stage_cross[first][sw_base + t] = (via_upper_in % 2 == 1);
  }

  route_rec(upper_sel, plan, depth + 1, 2 * block);
  route_rec(lower_sel, plan, depth + 1, 2 * block + 1);
}

}  // namespace

BenesPlan benes_route(std::span<const unsigned> sel) {
  const unsigned lanes = static_cast<unsigned>(sel.size());
  POLYMEM_REQUIRE(lanes >= 1, "need at least one lane");
  POLYMEM_REQUIRE(is_pow2(lanes), "Benes networks need power-of-two lanes");
  require_permutation(sel);

  BenesPlan plan;
  plan.lanes = lanes;
  const unsigned stages = benes_stages(lanes);
  plan.stage_cross.assign(stages, std::vector<bool>(lanes / 2, false));
  if (lanes >= 2) route_rec(sel, plan, 0, 0);
  return plan;
}

}  // namespace polymem::hw
