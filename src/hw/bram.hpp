// Behavioural model of an on-chip memory bank (BRAM).
//
// The FPGA's distributed BRAM blocks are what makes PolyMem possible: each
// bank is an independent memory with its own ports (paper Sec. I). The
// model enforces *port semantics* per clock cycle — a simple-dual-port
// bank accepts at most one read and one write per cycle — so a banking bug
// (two lanes hitting the same bank) raises an error in simulation exactly
// where real hardware would corrupt data.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace polymem::hw {

using Word = std::uint64_t;

class BramBank {
 public:
  /// A bank of `words` 64-bit words, zero-initialised (matching how the
  /// synthesis tools initialise BRAM contents).
  explicit BramBank(std::int64_t words);

  std::int64_t words() const { return static_cast<std::int64_t>(mem_.size()); }

  /// Marks the start of a clock cycle: port-usage accounting resets.
  void begin_cycle();

  /// Combinational-style accessors without port accounting (host/debug use).
  Word peek(std::int64_t addr) const;
  void poke(std::int64_t addr, Word value);

  /// Ported accesses: at most one read and one write per cycle. A second
  /// access of the same kind in one cycle throws Error (bank conflict).
  Word read(std::int64_t addr);
  void write(std::int64_t addr, Word value);

  /// Lifetime counters, for utilisation statistics.
  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t total_writes() const { return total_writes_; }

  /// Raw storage base, for the compiled batch engine's gather/scatter
  /// pointer tables (core/exec_plan.hpp). The pointer is stable for the
  /// bank's lifetime: capacity is fixed at construction.
  const Word* data() const { return mem_.data(); }
  Word* data() { return mem_.data(); }

  /// Bulk counter credit for accesses served through the compiled engine,
  /// which proves conflict-freedom per residue class at plan-build time
  /// instead of per cycle (the same contract as BankArray::read_shared).
  void add_bulk_reads(std::uint64_t n) { total_reads_ += n; }
  void add_bulk_writes(std::uint64_t n) { total_writes_ += n; }

 private:
  void check_addr(std::int64_t addr) const;

  std::vector<Word> mem_;
  bool read_used_ = false;
  bool write_used_ = false;
  std::uint64_t total_reads_ = 0;
  std::uint64_t total_writes_ = 0;
};

}  // namespace polymem::hw
