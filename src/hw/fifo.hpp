// Bounded FIFO, the stream-buffering primitive of the kernel simulator.
#pragma once

#include <deque>
#include <optional>

#include "common/error.hpp"

namespace polymem::hw {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity) : capacity_(capacity) {
    POLYMEM_REQUIRE(capacity >= 1, "FIFO capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }

  /// Pushes when space is available; returns false on a full FIFO
  /// (back-pressure), matching stream stall semantics.
  bool try_push(T value) {
    if (full()) return false;
    items_.push_back(std::move(value));
    return true;
  }

  /// Pops the oldest element, or nullopt when empty.
  std::optional<T> try_pop() {
    if (empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  const T& front() const {
    POLYMEM_REQUIRE(!empty(), "front() on empty FIFO");
    return items_.front();
  }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

}  // namespace polymem::hw
