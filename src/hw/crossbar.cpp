#include "hw/crossbar.hpp"

#include <cstdint>

namespace polymem::hw {

void require_permutation(std::span<const unsigned> sel) {
  // This runs once per shuffled access on the naive engine, so it must not
  // touch the heap. Lane counts beyond 64 exceed every buildable PolyMem
  // geometry; chunk the occupancy bits into words to stay general anyway.
  const std::size_t n = sel.size();
  std::uint64_t seen_words[8] = {};
  std::vector<std::uint64_t> seen_overflow;
  std::uint64_t* seen = seen_words;
  if (n > 64 * std::size(seen_words)) {
    seen_overflow.assign((n + 63) / 64, 0);
    seen = seen_overflow.data();
  }
  for (unsigned s : sel) {
    POLYMEM_REQUIRE(s < n, "shuffle select out of range");
    const std::uint64_t bit = std::uint64_t{1} << (s % 64);
    POLYMEM_REQUIRE(!(seen[s / 64] & bit),
                    "shuffle select is not a permutation");
    seen[s / 64] |= bit;
  }
}

}  // namespace polymem::hw
