#include "hw/crossbar.hpp"

namespace polymem::hw {

void require_permutation(std::span<const unsigned> sel) {
  // A fixed-size bitset would be faster, but selects are small (<= lanes).
  std::vector<char> seen(sel.size(), 0);
  for (unsigned s : sel) {
    POLYMEM_REQUIRE(s < sel.size(), "shuffle select out of range");
    POLYMEM_REQUIRE(!seen[s], "shuffle select is not a permutation");
    seen[s] = 1;
  }
}

}  // namespace polymem::hw
