// Fixed-latency delay line.
//
// Models pipeline registers between the PolyMem blocks (AGU -> M/A ->
// shuffles -> banks -> read shuffle). The STREAM design of the paper sees a
// 14-cycle read latency through this pipeline (Sec. V) and must align the
// controller inputs with the delayed outputs; DelayLine is that mechanism.
#pragma once

#include <optional>
#include <vector>

#include "common/error.hpp"

namespace polymem::hw {

template <typename T>
class DelayLine {
 public:
  /// A delay of `latency` cycles; latency 0 passes values through the same
  /// cycle.
  explicit DelayLine(unsigned latency)
      : stages_(latency), head_(0) {}

  unsigned latency() const { return static_cast<unsigned>(stages_.size()); }

  /// Advances one clock cycle: shifts `in` into the line and returns what
  /// falls out of the far end (nullopt while the pipe is still filling or
  /// when a bubble was inserted `latency` cycles ago).
  std::optional<T> tick(std::optional<T> in) {
    if (stages_.empty()) return in;
    std::optional<T> out = std::move(stages_[head_]);
    stages_[head_] = std::move(in);
    head_ = (head_ + 1) % stages_.size();
    return out;
  }

  /// Drops all in-flight values.
  void flush() {
    for (auto& s : stages_) s.reset();
    head_ = 0;
  }

  /// Number of values currently in flight.
  unsigned in_flight() const {
    unsigned n = 0;
    for (const auto& s : stages_)
      if (s.has_value()) ++n;
    return n;
  }

 private:
  std::vector<std::optional<T>> stages_;
  std::size_t head_;
};

}  // namespace polymem::hw
