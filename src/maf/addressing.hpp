// The intra-bank Addressing Function (the paper's "A" block, Sec. III-B).
//
// Once the MAF has chosen *which* bank stores element (i, j), A chooses
// *where inside that bank* it lives. All five schemes distribute every
// aligned p x q block across all p*q banks exactly once, so the block
// coordinates |i/p| and |j/q| identify a unique word per bank:
//
//     A(i, j) = |i/p| * (W/q) + |j/q|
//
// where W is the width of the 2D address space. This makes (bank, A) a
// bijection from the H x W space onto p*q banks of (H/p)*(W/q) words each.
#pragma once

#include <cstdint>

#include "access/coord.hpp"

namespace polymem::maf {

class AddressingFunction {
 public:
  /// The address space is H x W elements; H must be a multiple of p and
  /// W a multiple of q so banks fill evenly.
  AddressingFunction(unsigned p, unsigned q, std::int64_t height,
                     std::int64_t width);

  std::int64_t height() const { return height_; }
  std::int64_t width() const { return width_; }

  /// Words each bank must hold: (H/p) * (W/q).
  std::int64_t words_per_bank() const {
    return (height_ / p_) * (width_ / q_);
  }

  /// Intra-bank address of element (i, j); valid for 0 <= i < H, 0 <= j < W.
  std::int64_t address(std::int64_t i, std::int64_t j) const {
    return (i / p_) * (width_ / q_) + (j / q_);
  }
  std::int64_t address(access::Coord c) const { return address(c.i, c.j); }

  /// True when (i, j) lies inside the H x W space.
  bool in_bounds(std::int64_t i, std::int64_t j) const {
    return i >= 0 && i < height_ && j >= 0 && j < width_;
  }
  bool in_bounds(access::Coord c) const { return in_bounds(c.i, c.j); }

 private:
  std::int64_t p_;
  std::int64_t q_;
  std::int64_t height_;
  std::int64_t width_;
};

}  // namespace polymem::maf
