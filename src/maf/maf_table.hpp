// Lookup-table form of a module assignment function.
//
// Every MAF in this library is periodic in both axes with period
// n * lcm(p, q); tabulating one period turns bank() into a single load —
// the hardware analogue is a small ROM, and for the simulator it makes
// AGU expansion measurably faster (see bench_micro). The table is proven
// equal to the analytic MAF at construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/math.hpp"
#include "maf/maf.hpp"

namespace polymem::maf {

class MafTable {
 public:
  /// Tabulates `maf` over one full period (n * lcm(p, q) per axis).
  explicit MafTable(const Maf& maf);

  Scheme scheme() const { return scheme_; }
  unsigned banks() const { return banks_; }
  std::int64_t period() const { return period_; }

  /// Identical to Maf::bank for every coordinate (including negatives).
  BankIndex bank(std::int64_t i, std::int64_t j) const {
    return table_[static_cast<std::size_t>(floormod(i, period_) * period_ +
                                           floormod(j, period_))];
  }
  BankIndex bank(access::Coord c) const { return bank(c.i, c.j); }

  /// Bytes of table storage (the ROM-size trade-off).
  std::size_t storage_bytes() const {
    return table_.size() * sizeof(BankIndex);
  }

 private:
  Scheme scheme_;
  unsigned banks_;
  std::int64_t period_;
  std::vector<BankIndex> table_;
};

}  // namespace polymem::maf
