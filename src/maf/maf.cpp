#include "maf/maf.hpp"

#include <map>
#include <mutex>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::maf {

namespace {

using Geometry = std::pair<unsigned, unsigned>;  // (p, q) with p <= q

// ReTr skewing coefficients verified by exhaustive search
// (tools/maf_search.cpp) for the geometries the DSE uses. Entries are for
// p <= q; p > q geometries use the transposed form.
const std::map<Geometry, ReTrCoefficients> kKnownReTr = {
    {{1, 1}, {0, 1}},  {{1, 2}, {0, 1}},  {{1, 4}, {0, 1}},
    {{1, 8}, {0, 1}},  {{1, 16}, {0, 1}}, {{2, 2}, {0, 2}},
    {{2, 4}, {2, 2}},  {{2, 8}, {2, 2}},  {{2, 16}, {2, 2}},
    {{4, 4}, {0, 4}},  {{4, 8}, {12, 4}},
};

// Bank index of the candidate ReTr skewing (p <= q assumed, s = p).
unsigned retr_bank(std::int64_t i, std::int64_t j, unsigned p, unsigned q,
                   unsigned a, unsigned b) {
  const std::int64_t n = static_cast<std::int64_t>(p) * q;
  const std::int64_t s = p;  // min(p, q)
  const std::int64_t v =
      j + static_cast<std::int64_t>(a) * floordiv(j, s) +
      static_cast<std::int64_t>(b) * i;
  return static_cast<unsigned>(floormod(v, n));
}

// Bounded-exhaustive conflict-freeness check of the candidate over the
// rect (p x q) and trect (q x p) patterns. The MAF terms are periodic in
// both axes with period n * lcm(p, q), so sweeping anchors over one period
// is a proof, not a sample.
bool retr_candidate_ok(unsigned p, unsigned q, unsigned a, unsigned b) {
  const std::int64_t n = static_cast<std::int64_t>(p) * q;
  const std::int64_t span = n * std::lcm<std::int64_t>(p, q);
  std::vector<char> seen(static_cast<std::size_t>(n));
  // Both patterns are checked at each anchor before moving on, so invalid
  // candidates die at small anchors no matter which pattern breaks them.
  for (std::int64_t ai = 0; ai < span; ++ai) {
    for (std::int64_t aj = 0; aj < span; ++aj) {
      for (int transposed = 0; transposed < 2; ++transposed) {
        const std::int64_t rows = transposed ? q : p;
        const std::int64_t cols = transposed ? p : q;
        std::fill(seen.begin(), seen.end(), 0);
        for (std::int64_t u = 0; u < rows; ++u) {
          for (std::int64_t v = 0; v < cols; ++v) {
            const unsigned m = retr_bank(ai + u, aj + v, p, q, a, b);
            if (seen[m]) return false;
            seen[m] = 1;
          }
        }
      }
    }
  }
  return true;
}

// Finds ReTr coefficients for (p, q) with p <= q: built-in table first,
// then exhaustive search over the skewing family. Results (including
// failures) are cached process-wide.
std::optional<ReTrCoefficients> find_retr(unsigned p, unsigned q) {
  POLYMEM_ASSERT(p <= q);
  if (auto it = kKnownReTr.find({p, q}); it != kKnownReTr.end())
    return it->second;

  static std::mutex mutex;
  static std::map<Geometry, std::optional<ReTrCoefficients>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  if (auto it = cache.find({p, q}); it != cache.end()) return it->second;

  std::optional<ReTrCoefficients> found;
  const unsigned n = p * q;
  for (unsigned a = 0; a < n && !found; ++a)
    for (unsigned b = 0; b < n && !found; ++b)
      if (retr_candidate_ok(p, q, a, b)) found = ReTrCoefficients{a, b};
  cache[{p, q}] = found;
  return found;
}

}  // namespace

Maf::Maf(Scheme scheme, unsigned p, unsigned q)
    : scheme_(scheme), p_(p), q_(q) {
  POLYMEM_REQUIRE(p >= 1 && q >= 1, "bank geometry must be at least 1x1");
  POLYMEM_REQUIRE(static_cast<std::uint64_t>(p) * q <= (1u << 20),
                  "bank geometry too large");
  if (scheme == Scheme::kReTr) {
    transposed_ = p_ > q_;
    const unsigned lo = transposed_ ? q_ : p_;
    const unsigned hi = transposed_ ? p_ : q_;
    const auto coeff = find_retr(lo, hi);
    POLYMEM_SUPPORTED(coeff.has_value(),
                      "no conflict-free ReTr skewing for geometry " +
                          std::to_string(p) + "x" + std::to_string(q) +
                          " (power-of-two p and q are supported)");
    a_ = coeff->a;
    b_ = coeff->b;
  }
}

BankIndex Maf::bank(std::int64_t i, std::int64_t j) const {
  const std::int64_t p = p_;
  const std::int64_t q = q_;
  switch (scheme_) {
    case Scheme::kReO:
      return static_cast<unsigned>(floormod(i, p) * q + floormod(j, q));
    case Scheme::kReRo:
      return static_cast<unsigned>(floormod(i + floordiv(j, q), p) * q +
                                   floormod(j, q));
    case Scheme::kReCo:
      return static_cast<unsigned>(floormod(i, p) * q +
                                   floormod(j + floordiv(i, p), q));
    case Scheme::kRoCo:
      return static_cast<unsigned>(floormod(i + floordiv(j, q), p) * q +
                                   floormod(j + floordiv(i, p), q));
    case Scheme::kReTr:
      return transposed_ ? retr_bank(j, i, q_, p_, a_, b_)
                         : retr_bank(i, j, p_, q_, a_, b_);
  }
  throw InvalidArgument("unknown scheme");
}

std::int64_t Maf::period_i() const {
  const std::int64_t p = p_;
  const std::int64_t q = q_;
  const std::int64_t n = p * q;
  switch (scheme_) {
    case Scheme::kReO:
      return p;  // m_v = i mod p, m_h independent of i
    case Scheme::kReRo:
      return p;  // i only enters m_v through (i + ...) mod p
    case Scheme::kReCo:
      return n;  // |i/p| mod q repeats every p*q rows
    case Scheme::kRoCo:
      return n;  // lcm of the ReRo/ReCo i-periods
    case Scheme::kReTr:
      // Non-transposed: b*i mod n repeats every n rows. Transposed: i plays
      // the skewed-j role, period s*n with s = min(p, q) = q.
      return transposed_ ? static_cast<std::int64_t>(q_) * n : n;
  }
  throw InvalidArgument("unknown scheme");
}

std::int64_t Maf::period_j() const {
  const std::int64_t p = p_;
  const std::int64_t q = q_;
  const std::int64_t n = p * q;
  switch (scheme_) {
    case Scheme::kReO:
      return q;
    case Scheme::kReRo:
      return n;  // |j/q| mod p repeats every q*p columns
    case Scheme::kReCo:
      return q;
    case Scheme::kRoCo:
      return n;
    case Scheme::kReTr:
      // Non-transposed: j + a*|j/s| advances by n*(s + a)/s ≡ 0 (mod n)
      // every s*n columns, s = min(p, q) = p. Transposed: j enters as b*j.
      return transposed_ ? n : static_cast<std::int64_t>(p_) * n;
  }
  throw InvalidArgument("unknown scheme");
}

unsigned Maf::m_v(std::int64_t i, std::int64_t j) const {
  return bank(i, j) / q_;
}

unsigned Maf::m_h(std::int64_t i, std::int64_t j) const {
  return bank(i, j) % q_;
}

std::optional<ReTrCoefficients> Maf::retr_coefficients() const {
  if (scheme_ != Scheme::kReTr) return std::nullopt;
  return ReTrCoefficients{a_, b_};
}

std::string Maf::describe() const {
  const std::string p = std::to_string(p_);
  const std::string q = std::to_string(q_);
  switch (scheme_) {
    case Scheme::kReO:
      return "m_v = i mod " + p + ", m_h = j mod " + q;
    case Scheme::kReRo:
      return "m_v = (i + |j/" + q + "|) mod " + p + ", m_h = j mod " + q;
    case Scheme::kReCo:
      return "m_v = i mod " + p + ", m_h = (j + |i/" + p + "|) mod " + q;
    case Scheme::kRoCo:
      return "m_v = (i + |j/" + q + "|) mod " + p + ", m_h = (j + |i/" + p +
             "|) mod " + q;
    case Scheme::kReTr: {
      const std::string n = std::to_string(p_ * q_);
      const std::string s = std::to_string(std::min(p_, q_));
      const std::string a = std::to_string(a_);
      const std::string b = std::to_string(b_);
      if (transposed_)
        return "bank = (i + " + a + "*|i/" + s + "| + " + b + "*j) mod " + n;
      return "bank = (j + " + a + "*|j/" + s + "| + " + b + "*i) mod " + n;
    }
  }
  throw InvalidArgument("unknown scheme");
}

}  // namespace polymem::maf
