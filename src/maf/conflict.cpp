#include "maf/conflict.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>

#include "common/error.hpp"

namespace polymem::maf {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;

const char* support_level_name(SupportLevel level) {
  switch (level) {
    case SupportLevel::kNone: return "none";
    case SupportLevel::kAligned: return "aligned";
    case SupportLevel::kAny: return "any";
  }
  throw InvalidArgument("unknown support level");
}

namespace {

// Core sweep shared by verify/find. Anchors walk one Maf::period_i() x
// period_j() lattice — exhaustive by per-axis periodicity (the periods are
// machine-checked in maf_test.cpp and by verify/maf_prover's independent
// periodicity proof), and much tighter than the n*lcm(p,q) square the
// sweep used before. Periods are multiples of p resp. q, so the aligned
// anchor classes are residue classes of the same lattice. Returns
// conflicting anchors (empty when conflict-free); bails after max_hits.
std::vector<Coord> sweep(const Maf& maf, PatternKind pattern,
                         bool aligned_only, std::size_t max_hits) {
  const unsigned n = maf.banks();
  std::vector<Coord> el;
  std::vector<char> seen(n);
  std::vector<Coord> hits;
  for (std::int64_t a = 0; a < maf.period_i(); ++a) {
    if (aligned_only && a % maf.p() != 0) continue;
    for (std::int64_t b = 0; b < maf.period_j(); ++b) {
      if (aligned_only && b % maf.q() != 0) continue;
      access::expand_into({pattern, {a, b}}, maf.p(), maf.q(), el);
      std::fill(seen.begin(), seen.end(), 0);
      for (const Coord& c : el) {
        const unsigned m = maf.bank(c);
        if (seen[m]) {
          hits.push_back({a, b});
          if (hits.size() >= max_hits) return hits;
          break;
        }
        seen[m] = 1;
      }
    }
  }
  return hits;
}

}  // namespace

bool verify_conflict_free(const Maf& maf, PatternKind pattern,
                          bool aligned_only) {
  return sweep(maf, pattern, aligned_only, 1).empty();
}

std::vector<Coord> find_conflicts(const Maf& maf, PatternKind pattern,
                                  bool aligned_only, std::size_t max_hits) {
  return sweep(maf, pattern, aligned_only, max_hits);
}

SupportLevel probe_support(const Maf& maf, PatternKind pattern) {
  using Key = std::tuple<Scheme, unsigned, unsigned, PatternKind>;
  static std::mutex mutex;
  static std::map<Key, SupportLevel> cache;

  const Key key{maf.scheme(), maf.p(), maf.q(), pattern};
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (auto it = cache.find(key); it != cache.end()) return it->second;
  }

  SupportLevel level = SupportLevel::kNone;
  if (verify_conflict_free(maf, pattern, /*aligned_only=*/false)) {
    level = SupportLevel::kAny;
  } else if (verify_conflict_free(maf, pattern, /*aligned_only=*/true)) {
    level = SupportLevel::kAligned;
  }

  std::lock_guard<std::mutex> lock(mutex);
  cache.emplace(key, level);
  return level;
}

bool access_supported(const Maf& maf, const ParallelAccess& access) {
  switch (probe_support(maf, access.kind)) {
    case SupportLevel::kAny:
      return true;
    case SupportLevel::kAligned:
      return access.anchor.i % maf.p() == 0 && access.anchor.j % maf.q() == 0;
    case SupportLevel::kNone:
      return false;
  }
  return false;
}

}  // namespace polymem::maf
