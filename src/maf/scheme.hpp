// PRF memory access schemes (paper Table I).
//
// A scheme selects which *family* of access patterns the module assignment
// function keeps conflict-free. The five schemes of the paper:
//
//   ReO  (Rectangle Only)          : rectangle
//   ReRo (Rectangle, Row)          : rectangle, row, main+secondary diagonals
//   ReCo (Rectangle, Column)       : rectangle, column, main+secondary diags
//   RoCo (Row, Column)             : row, column, (aligned) rectangle
//   ReTr (Rect, Transposed Rect)   : rectangle, transposed rectangle
//
// Support can depend on the bank geometry (p, q); the authoritative answer
// comes from maf/conflict.hpp's machine-checked oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "access/pattern.hpp"

namespace polymem::maf {

enum class Scheme : std::uint8_t { kReO, kReRo, kReCo, kRoCo, kReTr };

inline constexpr Scheme kAllSchemes[] = {
    Scheme::kReO, Scheme::kReRo, Scheme::kReCo, Scheme::kRoCo, Scheme::kReTr,
};

/// Canonical name as used in the paper's tables ("ReO", "ReRo", ...).
const char* scheme_name(Scheme scheme);

/// Inverse of scheme_name; throws InvalidArgument on unknown names.
Scheme scheme_from_name(const std::string& name);

/// The pattern family the scheme advertises (paper Table I), independent of
/// geometry. RoCo's rectangle is aligned-only; that nuance lives in the
/// capability oracle (maf/conflict.hpp), which is geometry-aware.
std::vector<access::PatternKind> advertised_patterns(Scheme scheme);

}  // namespace polymem::maf
