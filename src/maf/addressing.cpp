#include "maf/addressing.hpp"

#include "common/error.hpp"

namespace polymem::maf {

AddressingFunction::AddressingFunction(unsigned p, unsigned q,
                                       std::int64_t height,
                                       std::int64_t width)
    : p_(p), q_(q), height_(height), width_(width) {
  POLYMEM_REQUIRE(p >= 1 && q >= 1, "bank geometry must be at least 1x1");
  POLYMEM_REQUIRE(height >= 1 && width >= 1,
                  "address space must be non-empty");
  POLYMEM_REQUIRE(height % p == 0,
                  "address-space height must be a multiple of p");
  POLYMEM_REQUIRE(width % q == 0,
                  "address-space width must be a multiple of q");
}

}  // namespace polymem::maf
