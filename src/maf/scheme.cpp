#include "maf/scheme.hpp"

#include "common/error.hpp"

namespace polymem::maf {

using access::PatternKind;

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kReO: return "ReO";
    case Scheme::kReRo: return "ReRo";
    case Scheme::kReCo: return "ReCo";
    case Scheme::kRoCo: return "RoCo";
    case Scheme::kReTr: return "ReTr";
  }
  throw InvalidArgument("unknown scheme");
}

Scheme scheme_from_name(const std::string& name) {
  for (Scheme s : kAllSchemes)
    if (name == scheme_name(s)) return s;
  throw InvalidArgument("unknown scheme name: " + name);
}

std::vector<PatternKind> advertised_patterns(Scheme scheme) {
  switch (scheme) {
    case Scheme::kReO:
      return {PatternKind::kRect};
    case Scheme::kReRo:
      return {PatternKind::kRect, PatternKind::kRow, PatternKind::kMainDiag,
              PatternKind::kSecDiag};
    case Scheme::kReCo:
      return {PatternKind::kRect, PatternKind::kCol, PatternKind::kMainDiag,
              PatternKind::kSecDiag};
    case Scheme::kRoCo:
      return {PatternKind::kRow, PatternKind::kCol, PatternKind::kRect};
    case Scheme::kReTr:
      return {PatternKind::kRect, PatternKind::kTRect};
  }
  throw InvalidArgument("unknown scheme");
}

}  // namespace polymem::maf
