// Module Assignment Functions (the paper's "M" block, Sec. III-B).
//
// A MAF maps every coordinate of the 2D address space to one of p*q memory
// banks such that the scheme's access patterns always hit p*q *distinct*
// banks — the conflict-freeness that makes single-cycle parallel access
// possible.
//
// The four multiview schemes use the classic PRF row/column rotation
// functions [Ciobanu, PhD 2013]:
//
//   ReO :  m_v = i mod p                 m_h = j mod q
//   ReRo:  m_v = (i + |j/q|) mod p       m_h = j mod q
//   ReCo:  m_v = i mod p                 m_h = (j + |i/p|) mod q
//   RoCo:  m_v = (i + |j/q|) mod p       m_h = (j + |i/p|) mod q
//
// (bank = m_v * q + m_h; |x/y| is floored division, so the functions are
// defined for negative coordinates too.)
//
// ReTr uses a skewing function over the combined bank index, rediscovered
// and machine-verified by this library (tools/maf_search.cpp):
//
//   bank(i, j) = (j + A*|j/s| + B*i) mod (p*q)        with s = min(p, q)
//
// with per-geometry coefficients (A, B) from a built-in verified table,
// e.g. (p,q)=(2,4): A=2, B=2; (4,8): A=12, B=4. For geometries with p > q
// the transposed form (i and j swapped) is used. Unknown geometries fall
// back to an exhaustive, machine-verified coefficient search; geometries
// with no valid skewing in this family are rejected with Unsupported.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "access/coord.hpp"
#include "maf/scheme.hpp"

namespace polymem::maf {

/// A bank index in [0, p*q).
using BankIndex = unsigned;

/// ReTr skewing coefficients; see the header comment.
struct ReTrCoefficients {
  unsigned a = 0;  ///< multiplier of |j/s|
  unsigned b = 0;  ///< multiplier of i
};

/// The module assignment function for one (scheme, p, q) configuration.
/// Immutable and cheap to copy; bank() is a handful of integer ops.
class Maf {
 public:
  /// Builds the MAF. For ReTr this may run the coefficient search (cached
  /// process-wide); throws Unsupported when no conflict-free skewing exists
  /// for the geometry.
  Maf(Scheme scheme, unsigned p, unsigned q);

  Scheme scheme() const { return scheme_; }
  unsigned p() const { return p_; }
  unsigned q() const { return q_; }
  unsigned banks() const { return p_ * q_; }

  /// The bank storing element (i, j). Defined for all coordinates,
  /// including negative ones (floored arithmetic).
  BankIndex bank(std::int64_t i, std::int64_t j) const;
  BankIndex bank(access::Coord c) const { return bank(c.i, c.j); }

  /// Vertical/horizontal bank coordinates (bank == m_v * q + m_h).
  unsigned m_v(std::int64_t i, std::int64_t j) const;
  unsigned m_h(std::int64_t i, std::int64_t j) const;

  /// Axis periods of the bank function: bank(i + period_i(), j) == bank(i, j)
  /// and bank(i, j + period_j()) == bank(i, j) for every coordinate. These
  /// are per-scheme tight-ish bounds (always multiples of p and q
  /// respectively), the foundation of plan-template caching
  /// (core/plan_cache.hpp): one template per anchor residue class serves
  /// the whole address space.
  std::int64_t period_i() const;
  std::int64_t period_j() const;

  /// The ReTr coefficients in use (empty for other schemes).
  std::optional<ReTrCoefficients> retr_coefficients() const;

  /// Human-readable formula of this MAF, e.g. for ReRo:
  /// "m_v = (i + |j/4|) mod 2, m_h = j mod 4".
  std::string describe() const;

 private:
  Scheme scheme_;
  unsigned p_;
  unsigned q_;
  // ReTr only: skewing coefficients and whether the transposed form applies.
  unsigned a_ = 0;
  unsigned b_ = 0;
  bool transposed_ = false;
};

}  // namespace polymem::maf
