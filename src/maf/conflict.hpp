// Conflict-freeness verification and the capability oracle.
//
// The PRF literature *states* which patterns each scheme serves
// conflict-free; this library *proves* it per configuration. All MAFs in
// maf.cpp are periodic per axis (Maf::period_i/period_j), so checking
// every anchor inside one period_i x period_j lattice is exhaustive, and
// the oracle's answers are sound for the whole (unbounded) address space.
// verify/maf_prover.hpp re-proves the same facts — including the periods
// themselves — against a black-box model, as the offline/CI gate.
//
// Support comes in three levels:
//   kAny     — conflict-free at every anchor
//   kAligned — conflict-free when the anchor is p/q-aligned
//              (i % p == 0 and j % q == 0), e.g. RoCo rectangles
//   kNone    — some anchor collides
#pragma once

#include <cstdint>
#include <vector>

#include "access/pattern.hpp"
#include "maf/maf.hpp"

namespace polymem::maf {

enum class SupportLevel : std::uint8_t { kNone, kAligned, kAny };

const char* support_level_name(SupportLevel level);

/// Exhaustively verifies that `pattern` is conflict-free under `maf` for
/// every (optionally aligned) anchor in one MAF period.
bool verify_conflict_free(const Maf& maf, access::PatternKind pattern,
                          bool aligned_only = false);

/// Returns the (possibly empty) list of anchors inside one period where the
/// pattern collides; useful diagnostics for tests and error messages.
/// Stops after `max_hits` collisions.
std::vector<access::Coord> find_conflicts(const Maf& maf,
                                          access::PatternKind pattern,
                                          bool aligned_only = false,
                                          std::size_t max_hits = 8);

/// The machine-checked support level of `pattern` under `maf`.
/// Results are memoized process-wide per (scheme, p, q, pattern).
SupportLevel probe_support(const Maf& maf, access::PatternKind pattern);

/// Convenience: true when the pattern is usable at the given anchor —
/// kAny, or kAligned with an aligned anchor.
bool access_supported(const Maf& maf, const access::ParallelAccess& access);

}  // namespace polymem::maf
