#include "maf/maf_table.hpp"

#include <numeric>

#include "common/error.hpp"

namespace polymem::maf {

MafTable::MafTable(const Maf& maf)
    : scheme_(maf.scheme()),
      banks_(maf.banks()),
      period_(static_cast<std::int64_t>(maf.banks()) *
              std::lcm<std::int64_t>(maf.p(), maf.q())) {
  POLYMEM_REQUIRE(period_ * period_ <= (std::int64_t{1} << 26),
                  "MAF period too large to tabulate");
  table_.resize(static_cast<std::size_t>(period_ * period_));
  for (std::int64_t i = 0; i < period_; ++i)
    for (std::int64_t j = 0; j < period_; ++j)
      table_[static_cast<std::size_t>(i * period_ + j)] = maf.bank(i, j);
}

}  // namespace polymem::maf
