#include "replay/replay.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "adapt/adaptive_matrix.hpp"
#include "common/error.hpp"
#include "core/polymem.hpp"
#include "maxsim/lmem.hpp"

namespace polymem::replay {

using access::Coord;
using access::ParallelAccess;
using access::PatternKind;
using sched::RecordedTrace;
using sched::TraceOp;

namespace {

std::int64_t pad_to(std::int64_t x, std::int64_t m) {
  return (x + m - 1) / m * m;
}

core::PolyMemConfig direct_config(const RecordedTrace& trace,
                                  const ReplayOptions& opts) {
  core::PolyMemConfig cfg;
  cfg.scheme = opts.scheme;
  cfg.p = trace.p;
  cfg.q = trace.q;
  cfg.read_ports = std::max(1u, opts.read_ports);
  cfg.height = pad_to(trace.height, trace.p);
  cfg.width = pad_to(trace.width, trace.q);
  cfg.validate();
  return cfg;
}

/// The host-memory mirror: exact trace-space array under the canonical
/// data model, advanced op by op alongside the memory under test.
class Mirror {
 public:
  explicit Mirror(const RecordedTrace& trace) : trace_(trace) {
    cells_.resize(static_cast<std::size_t>(trace.height * trace.width));
    for (std::int64_t i = 0; i < trace.height; ++i)
      for (std::int64_t j = 0; j < trace.width; ++j)
        at({i, j}) = sched::canonical_cell(trace.seed, trace.width, {i, j});
  }

  std::uint64_t& at(Coord c) {
    return cells_[static_cast<std::size_t>(c.i * trace_.width + c.j)];
  }

  /// Expands op access t and bounds-checks it against the trace space.
  void expand(const TraceOp& op, std::int64_t t, std::int64_t op_index) {
    const ParallelAccess a{op.kind,
                           {op.anchor.i + t * op.stride.i,
                            op.anchor.j + t * op.stride.j}};
    access::expand_into(a, trace_.p, trace_.q, coords_);
    for (const Coord c : coords_)
      POLYMEM_REQUIRE(c.i >= 0 && c.i < trace_.height && c.j >= 0 &&
                          c.j < trace_.width,
                      "trace op " + std::to_string(op_index) +
                          " leaves the address space");
  }
  const std::vector<Coord>& coords() const { return coords_; }

  const std::vector<std::uint64_t>& cells() const { return cells_; }

 private:
  const RecordedTrace& trace_;
  std::vector<std::uint64_t> cells_;
  std::vector<Coord> coords_;
};

/// Per-op scratch shared by both backends: canonical write payloads and
/// the words actually moved (checksummed afterwards).
struct OpData {
  std::vector<std::uint64_t> words;

  void fill_write(const RecordedTrace& trace, const TraceOp& op,
                  std::int64_t op_index) {
    const auto lanes = static_cast<std::int64_t>(trace.p) * trace.q;
    words.resize(static_cast<std::size_t>(op.count * lanes));
    for (std::int64_t w = 0; w < op.count * lanes; ++w)
      words[static_cast<std::size_t>(w)] =
          sched::canonical_write_word(trace.seed, op_index, w);
  }
};

bool batched_eligible(const core::PolyMem& mem, const TraceOp& op,
                      unsigned p, unsigned q) {
  switch (mem.supports(op.kind)) {
    case maf::SupportLevel::kAny:
      return true;
    case maf::SupportLevel::kAligned:
      return op.anchor.i % p == 0 && op.anchor.j % q == 0 &&
             op.stride.i % p == 0 && op.stride.j % q == 0;
    case maf::SupportLevel::kNone:
      return false;
  }
  return false;
}

void check_read(const std::vector<std::uint64_t>& got, Mirror& mirror,
                const TraceOp& op, std::int64_t op_index,
                ReplayReport& report) {
  const auto lanes = static_cast<std::size_t>(got.size()) /
                     static_cast<std::size_t>(op.count);
  for (std::int64_t t = 0; t < op.count; ++t) {
    mirror.expand(op, t, op_index);
    for (std::size_t l = 0; l < lanes; ++l)
      if (got[static_cast<std::size_t>(t) * lanes + l] !=
          mirror.at(mirror.coords()[l]))
        ++report.data_mismatches;
  }
}

void apply_write(const std::vector<std::uint64_t>& words, Mirror& mirror,
                 const TraceOp& op, std::int64_t op_index) {
  const auto lanes = static_cast<std::size_t>(words.size()) /
                     static_cast<std::size_t>(op.count);
  for (std::int64_t t = 0; t < op.count; ++t) {
    mirror.expand(op, t, op_index);
    for (std::size_t l = 0; l < lanes; ++l)
      mirror.at(mirror.coords()[l]) =
          words[static_cast<std::size_t>(t) * lanes + l];
  }
}

void check_checksum(const std::vector<std::uint64_t>& words,
                    const TraceOp& op, const ReplayOptions& opts,
                    ReplayReport& report) {
  if (!opts.verify_checksums || !op.checksum) return;
  ++report.checksums_checked;
  if (sched::fnv1a(words.data(), words.size()) != *op.checksum)
    ++report.checksum_mismatches;
}

ReplayReport replay_direct(const RecordedTrace& trace,
                           const ReplayOptions& opts) {
  const core::PolyMemConfig cfg = direct_config(trace, opts);
  core::PolyMem mem(cfg);

  // Canonical fill over the padded space (padding cells stay zero and
  // are unreachable from in-bounds trace ops).
  {
    std::vector<std::uint64_t> init(
        static_cast<std::size_t>(cfg.height * cfg.width), 0);
    for (std::int64_t i = 0; i < trace.height; ++i)
      for (std::int64_t j = 0; j < trace.width; ++j)
        init[static_cast<std::size_t>(i * cfg.width + j)] =
            sched::canonical_cell(trace.seed, trace.width, {i, j});
    mem.fill_rect({0, 0}, cfg.height, cfg.width, init);
  }

  Mirror mirror(trace);
  ReplayReport report;
  report.scheme = opts.scheme;
  OpData data;
  const auto lanes = static_cast<std::int64_t>(trace.p) * trace.q;

  for (std::size_t k = 0; k < trace.ops.size(); ++k) {
    const TraceOp& op = trace.ops[k];
    const auto op_index = static_cast<std::int64_t>(k);
    const bool batched = batched_eligible(mem, op, trace.p, trace.q);
    ++report.ops;
    (op.dir == TraceOp::Dir::kRead ? report.reads : report.writes) +=
        op.count;
    (batched ? report.batched_accesses : report.fallback_accesses) +=
        op.count;

    if (op.dir == TraceOp::Dir::kRead) {
      data.words.resize(static_cast<std::size_t>(op.count * lanes));
      if (batched) {
        const unsigned port =
            static_cast<unsigned>(k) % std::max(1u, opts.read_ports);
        mem.read_batch(op.batch(), port, data.words);
      } else {
        std::size_t w = 0;
        for (std::int64_t t = 0; t < op.count; ++t) {
          mirror.expand(op, t, op_index);
          for (const Coord c : mirror.coords()) data.words[w++] = mem.load(c);
        }
      }
      check_read(data.words, mirror, op, op_index, report);
    } else {
      data.fill_write(trace, op, op_index);
      if (batched) {
        mem.write_batch(op.batch(), data.words);
      } else {
        std::size_t w = 0;
        for (std::int64_t t = 0; t < op.count; ++t) {
          mirror.expand(op, t, op_index);
          for (const Coord c : mirror.coords()) mem.store(c, data.words[w++]);
        }
      }
      apply_write(data.words, mirror, op, op_index);
    }
    check_checksum(data.words, op, opts, report);
  }

  // End-state differential: the full trace-space image must match the
  // mirror bit for bit, whatever mix of engines served the ops.
  std::vector<std::uint64_t> image(
      static_cast<std::size_t>(trace.height * trace.width));
  for (std::int64_t i = 0; i < trace.height; ++i)
    mem.dump_rect({i, 0}, 1, trace.width,
                  std::span<std::uint64_t>(image).subspan(
                      static_cast<std::size_t>(i * trace.width),
                      static_cast<std::size_t>(trace.width)));
  report.final_image_ok = image == mirror.cells();
  return report;
}

ReplayReport replay_adaptive(const RecordedTrace& trace,
                             const ReplayOptions& opts) {
  const core::PolyMemConfig cfg = direct_config(trace, opts);

  adapt::AdaptiveOptions aopts;
  aopts.pool = nullptr;  // inline migrations: deterministic replay
  aopts.verify_migrations = true;
  aopts.profiler.window =
      opts.adaptive_window > 0
          ? opts.adaptive_window
          : std::clamp<std::int64_t>(trace.accesses() / 6, 64, 4096);
  adapt::AdaptiveMatrix mat(cfg, aopts);

  {
    std::vector<std::uint64_t> init(
        static_cast<std::size_t>(cfg.height * cfg.width), 0);
    for (std::int64_t i = 0; i < trace.height; ++i)
      for (std::int64_t j = 0; j < trace.width; ++j)
        init[static_cast<std::size_t>(i * cfg.width + j)] =
            sched::canonical_cell(trace.seed, trace.width, {i, j});
    mat.fill_rect({0, 0}, cfg.height, cfg.width, init);
  }

  Mirror mirror(trace);
  ReplayReport report;
  report.scheme = opts.scheme;
  report.adaptive = true;
  OpData data;
  const auto lanes = static_cast<std::int64_t>(trace.p) * trace.q;

  for (std::size_t k = 0; k < trace.ops.size(); ++k) {
    const TraceOp& op = trace.ops[k];
    const auto op_index = static_cast<std::int64_t>(k);
    ++report.ops;
    (op.dir == TraceOp::Dir::kRead ? report.reads : report.writes) +=
        op.count;

    // Bounds-check against the unpadded trace space before the engine
    // sees the op (the engine's own checks run on the padded space).
    for (std::int64_t t = 0; t < op.count; ++t) mirror.expand(op, t, op_index);

    // The adaptive engine decides batched vs fallback internally, per its
    // *current* scheme; both paths produce canonical lane order.
    data.words.resize(static_cast<std::size_t>(op.count * lanes));
    if (op.dir == TraceOp::Dir::kRead) {
      mat.read_batch(op.batch(), data.words);
      check_read(data.words, mirror, op, op_index, report);
    } else {
      data.fill_write(trace, op, op_index);
      mat.write_batch(op.batch(), data.words);
      apply_write(data.words, mirror, op, op_index);
    }
    check_checksum(data.words, op, opts, report);
  }

  const adapt::AdaptiveStats astats = mat.stats();
  report.batched_accesses = static_cast<std::int64_t>(astats.batched_accesses);
  report.fallback_accesses =
      static_cast<std::int64_t>(astats.fallback_accesses);
  report.final_scheme = astats.scheme;
  report.migrations = static_cast<std::int64_t>(astats.migrations_completed);
  report.migrations_aborted =
      static_cast<std::int64_t>(astats.migrations_aborted);
  report.migration_mismatches =
      static_cast<std::int64_t>(astats.mismatched_words);
  report.forwarded_words = static_cast<std::int64_t>(astats.forwarded_words);

  std::vector<std::uint64_t> image(
      static_cast<std::size_t>(trace.height * trace.width));
  for (std::int64_t i = 0; i < trace.height; ++i)
    mat.dump_rect({i, 0}, 1, trace.width,
                  std::span<std::uint64_t>(image).subspan(
                      static_cast<std::size_t>(i * trace.width),
                      static_cast<std::size_t>(trace.width)));
  report.final_image_ok = image == mirror.cells();
  return report;
}

ReplayReport replay_cached(const RecordedTrace& trace,
                           const ReplayOptions& opts) {
  // The on-chip memory is deliberately smaller than the trace space
  // (that is the point of the cache path): four full-width row-panel
  // frames over a modest scheme-typed PolyMem.
  core::PolyMemConfig cfg;
  cfg.scheme = opts.scheme;
  cfg.p = trace.p;
  cfg.q = trace.q;
  cfg.height = 8 * trace.p;
  cfg.width = pad_to(std::min<std::int64_t>(trace.width, 64), trace.q);
  cfg.validate();
  core::PolyMem mem(cfg);

  const std::uint64_t bytes = static_cast<std::uint64_t>(trace.height) *
                              static_cast<std::uint64_t>(trace.width) * 8;
  maxsim::LMem lmem(std::max<std::uint64_t>(bytes, 1u << 20));
  const maxsim::LMemMatrix matrix{0, trace.height, trace.width,
                                  trace.width};
  {
    std::vector<std::uint64_t> row(static_cast<std::size_t>(trace.width));
    for (std::int64_t i = 0; i < trace.height; ++i) {
      for (std::int64_t j = 0; j < trace.width; ++j)
        row[static_cast<std::size_t>(j)] =
            sched::canonical_cell(trace.seed, trace.width, {i, j});
      lmem.write(matrix.word_addr(i, 0), row);
    }
  }
  cache::CachedMatrix cached(
      lmem, mem, matrix,
      core::FramePool::whole_space(cfg, 2 * trace.p, cfg.width),
      {.write_policy = opts.write_policy});

  Mirror mirror(trace);
  ReplayReport report;
  report.scheme = opts.scheme;
  report.through_cache = true;
  OpData data;
  const auto lanes = static_cast<std::int64_t>(trace.p) * trace.q;

  for (std::size_t k = 0; k < trace.ops.size(); ++k) {
    const TraceOp& op = trace.ops[k];
    const auto op_index = static_cast<std::int64_t>(k);
    const access::PatternExtent ext =
        access::pattern_extent(op.kind, trace.p, trace.q);
    const bool block_shape = op.kind == PatternKind::kRow ||
                             op.kind == PatternKind::kCol ||
                             op.kind == PatternKind::kRect ||
                             op.kind == PatternKind::kTRect;
    ++report.ops;
    (op.dir == TraceOp::Dir::kRead ? report.reads : report.writes) +=
        op.count;
    // Only full-lane rows can ride the cache's batched row path; every
    // other shape is served element-by-element inside CachedMatrix.
    (op.kind == PatternKind::kRow ? report.batched_accesses
                                  : report.fallback_accesses) += op.count;

    data.words.resize(static_cast<std::size_t>(op.count * lanes));
    if (op.dir == TraceOp::Dir::kWrite)
      data.fill_write(trace, op, op_index);
    for (std::int64_t t = 0; t < op.count; ++t) {
      mirror.expand(op, t, op_index);  // bounds check before touching
      const Coord a{op.anchor.i + t * op.stride.i,
                    op.anchor.j + t * op.stride.j};
      const auto span = std::span<std::uint64_t>(data.words)
                            .subspan(static_cast<std::size_t>(t * lanes),
                                     static_cast<std::size_t>(lanes));
      if (op.dir == TraceOp::Dir::kRead) {
        if (block_shape)
          cached.read_block(a.i, a.j + ext.col_offset, ext.rows, ext.cols,
                            span);
        else
          for (std::int64_t l = 0; l < lanes; ++l)
            span[static_cast<std::size_t>(l)] =
                cached.read(mirror.coords()[static_cast<std::size_t>(l)].i,
                            mirror.coords()[static_cast<std::size_t>(l)].j);
      } else {
        if (block_shape)
          cached.write_block(a.i, a.j + ext.col_offset, ext.rows, ext.cols,
                             span);
        else
          for (std::int64_t l = 0; l < lanes; ++l)
            cached.write(mirror.coords()[static_cast<std::size_t>(l)].i,
                         mirror.coords()[static_cast<std::size_t>(l)].j,
                         span[static_cast<std::size_t>(l)]);
      }
    }
    if (op.dir == TraceOp::Dir::kRead)
      check_read(data.words, mirror, op, op_index, report);
    else
      apply_write(data.words, mirror, op, op_index);
    check_checksum(data.words, op, opts, report);
  }

  cached.flush();
  report.cache_stats = cached.stats();

  std::vector<std::uint64_t> image(
      static_cast<std::size_t>(trace.height * trace.width));
  for (std::int64_t i = 0; i < trace.height; ++i)
    lmem.read(matrix.word_addr(i, 0),
              std::span<std::uint64_t>(image).subspan(
                  static_cast<std::size_t>(i * trace.width),
                  static_cast<std::size_t>(trace.width)));
  report.final_image_ok = image == mirror.cells();
  return report;
}

}  // namespace

std::string ReplayReport::summary() const {
  std::ostringstream out;
  out << maf::scheme_name(scheme)
      << (adaptive ? " adaptive" : (through_cache ? " cached" : " direct"))
      << ": " << ops << " ops (" << reads << "R/" << writes << "W), "
      << batched_accesses + fallback_accesses << " accesses ("
      << batched_accesses << " batched, " << fallback_accesses
      << " fallback), ";
  if (adaptive)
    out << migrations << " migrations (" << migrations_aborted
        << " aborted) -> " << maf::scheme_name(final_scheme) << ", ";
  out << "checksums " << checksums_checked - checksum_mismatches << "/"
      << checksums_checked << " ok, " << data_mismatches
      << " data mismatches, image " << (final_image_ok ? "ok" : "DIVERGED");
  return out.str();
}

ReplayReport replay(const RecordedTrace& trace, const ReplayOptions& opts) {
  POLYMEM_REQUIRE(trace.height >= 1 && trace.width >= 1,
                  "trace has an empty address space");
  POLYMEM_REQUIRE(!(opts.adaptive && opts.through_cache),
                  "adaptive replay does not route through the cache");
  if (opts.adaptive) return replay_adaptive(trace, opts);
  return opts.through_cache ? replay_cached(trace, opts)
                            : replay_direct(trace, opts);
}

verify::LintReport relint(const RecordedTrace& trace, maf::Scheme scheme) {
  core::PolyMemConfig cfg;
  cfg.scheme = scheme;
  cfg.p = trace.p;
  cfg.q = trace.q;
  cfg.height = pad_to(trace.height, trace.p);
  cfg.width = pad_to(trace.width, trace.q);

  std::vector<verify::BatchOp> ops;
  ops.reserve(trace.ops.size());
  for (const TraceOp& op : trace.ops)
    ops.push_back({op.dir == TraceOp::Dir::kRead
                       ? verify::BatchOp::Dir::kRead
                       : verify::BatchOp::Dir::kWrite,
                   op.batch(),
                   std::nullopt});
  verify::LintReport report = verify::lint_program(cfg, ops);
  if (!trace.ops.empty()) {
    const verify::LintReport elems =
        verify::lint_trace(cfg, trace.access_trace());
    report.diagnostics.insert(report.diagnostics.end(),
                              elems.diagnostics.begin(),
                              elems.diagnostics.end());
  }
  return report;
}

}  // namespace polymem::replay
