// Trace-replay harness: executes a RecordedTrace against an arbitrary
// scheme x cache x port configuration, differentially verified.
//
// A trace pins the lane geometry, address space and canonical-data seed
// (sched/trace_io.hpp); this module supplies everything else. Three
// backends serve the ops:
//
//  - *direct*: a PolyMem of the chosen scheme. Ops the scheme serves
//    conflict-free run through the batched engine (read_batch /
//    write_batch, ports round-robined); unsupported or unaligned ops
//    fall back to scalar host accesses — counted, so the report shows
//    what the scheme could not serve, and the replay still completes on
//    every scheme.
//  - *through_cache*: a CachedMatrix over LMem (the out-of-core path),
//    where rectangle-family ops map to block accesses and diagonal ops
//    exercise the scalar-fallback path of the software cache.
//  - *adaptive*: an adapt::AdaptiveMatrix starting on the chosen scheme,
//    migrating live as the trace's pattern mix shifts (inline, so the
//    replay is deterministic); the same word-for-word mirror diffs the
//    migrating engine against the static-scheme oracle.
//
// Verification is threefold, against the same canonical data model the
// recorder used: every read is compared word-for-word with a host-memory
// mirror, every op's FNV-1a checksum is compared with the recorded one,
// and the final memory image is compared with the mirror. Any divergence
// is a counted failure — ReplayReport::verified() is the differential
// oracle the CLI and CI gate on.
#pragma once

#include <cstdint>
#include <string>

#include "cache/cached_matrix.hpp"
#include "maf/scheme.hpp"
#include "sched/trace_io.hpp"
#include "verify/plan_lint.hpp"

namespace polymem::replay {

struct ReplayOptions {
  maf::Scheme scheme = maf::Scheme::kReRo;
  unsigned read_ports = 1;
  /// Route through CachedMatrix over LMem instead of a resident PolyMem.
  bool through_cache = false;
  cache::WritePolicy write_policy = cache::WritePolicy::kWriteBack;
  /// Compare computed checksums against the ones recorded in the trace
  /// (off replays traces without `sum` fields silently).
  bool verify_checksums = true;
  /// Route through the adaptive layout engine (src/adapt): `scheme` is
  /// only the *initial* scheme; the profiler/policy migrate the matrix
  /// as the trace's pattern mix shifts. Migrations run inline (no pool),
  /// so the replay — including every migration decision — is
  /// deterministic, and each one is verified bit-identical before its
  /// epoch flip. Mutually exclusive with through_cache.
  bool adaptive = false;
  /// Profiler window for adaptive mode; 0 derives one from the trace
  /// length (accesses / 6, clamped to [64, 4096]) so short traces can
  /// still migrate.
  std::int64_t adaptive_window = 0;
};

struct ReplayReport {
  maf::Scheme scheme = maf::Scheme::kReRo;  ///< initial scheme
  bool through_cache = false;
  bool adaptive = false;

  std::int64_t ops = 0;
  std::int64_t reads = 0, writes = 0;       ///< parallel accesses by dir
  std::int64_t batched_accesses = 0;        ///< served by the batched engine
  std::int64_t fallback_accesses = 0;       ///< served element-by-element

  std::int64_t checksums_checked = 0;
  std::int64_t checksum_mismatches = 0;
  std::int64_t data_mismatches = 0;         ///< read words != host mirror
  bool final_image_ok = false;              ///< end-state memory == mirror

  /// Populated in adaptive mode.
  maf::Scheme final_scheme = maf::Scheme::kReRo;
  std::int64_t migrations = 0;              ///< completed epoch flips
  std::int64_t migrations_aborted = 0;
  std::int64_t migration_mismatches = 0;    ///< migration-oracle word diffs
  std::int64_t forwarded_words = 0;         ///< writes forwarded to epoch B

  /// Populated in through_cache mode.
  cache::CacheStats cache_stats;

  bool verified() const {
    return checksum_mismatches == 0 && data_mismatches == 0 &&
           migration_mismatches == 0 && final_image_ok;
  }
  std::string summary() const;
};

/// Replays the trace; throws polymem::Error on structurally impossible
/// input (out-of-bounds ops, empty space). Divergence does not throw —
/// it is counted in the report.
ReplayReport replay(const sched::RecordedTrace& trace,
                    const ReplayOptions& options = {});

/// Re-lints a replayed trace with no access to the original program:
/// every op as a BatchOp program (support/alignment/bounds/conflict/RAW
/// analysis) plus the flattened element trace (out-of-bounds, bank
/// imbalance) under the chosen scheme.
verify::LintReport relint(const sched::RecordedTrace& trace,
                          maf::Scheme scheme);

}  // namespace polymem::replay
