// Symbolic affine conflict-freedom prover.
//
// Decides, for an AffinePattern under a SymbolicMaf, whether all lanes hit
// distinct banks at *every* anchor of the given class — without sweeping
// anchors. The reduction (see prove_conflict_free in the .cpp for the
// derivation):
//
//   1. Bank equality between two lanes is digit-wise congruence of the
//      MAF's mixed-radix normal form: Δdigit_f ≡ 0 (mod m_f) for every
//      form f.
//   2. Each digit difference is affine in the lane-offset difference
//      (Δi, Δj) plus floor terms ⌊(x+i_a)/D⌋ − ⌊(x+i_b)/D⌋. For anchor x
//      with residue r = (x + i_b) mod D, that difference is exactly
//      ⌊Δi/D⌋ + [r ≥ D − (Δi mod D)] — a constant plus a 0/1 indicator
//      that depends only on which of two residue *intervals* r falls in.
//      The unbounded anchor is gone; only the indicator remains.
//   3. Anchor alignment (x ≡ 0 mod p) restricts r to a coset
//      r ≡ i_b (mod gcd(p, D)). Whether an indicator interval meets the
//      coset is a gcd computation; a concrete witness anchor is
//      reconstructed by CRT (verify/congruence.hpp).
//
// So each lane pair costs O(forms · 4 indicator cases) — independent of
// the anchor lattice, the matrix shape, and the MAF periods. A refutation
// always carries a concrete AffineCounterexample that tests replay
// against the real Maf::bank.
//
// sweep_conflict_free is the independent brute-force reference (one full
// period lattice, pointwise banks): every symbolic verdict is
// differentially validated against it in tests/verify and in
// prove_affine_pattern (PMV009).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "maf/conflict.hpp"
#include "maf/maf.hpp"
#include "verify/affine.hpp"

namespace polymem::verify {

/// The anchor class quantified over: every anchor, or every p/q-aligned
/// anchor (anchor.i ≡ 0 mod p, anchor.j ≡ 0 mod q).
enum class AnchorClass : std::uint8_t { kAny, kAligned };

const char* anchor_class_name(AnchorClass anchors);

/// Outcome of one conflict-freedom decision. `degenerate` is set when the
/// pattern is ill-formed (empty lane grid) or touches an element twice —
/// such patterns are rejected rather than "refuted".
struct AffineVerdict {
  bool conflict_free = false;
  std::optional<AffineCounterexample> counterexample;
  std::string degenerate;       ///< non-empty when the pattern is ill-formed
  std::uint64_t pairs_checked = 0;

  bool ok() const { return conflict_free && degenerate.empty(); }
};

/// Symbolic decision: conflict-free for every anchor of the class, or a
/// concrete counterexample. Never executes the memory and never sweeps
/// anchors.
AffineVerdict prove_conflict_free(const SymbolicMaf& maf,
                                  const AffinePattern& pattern,
                                  AnchorClass anchors);

/// Brute-force reference: sweeps every (aligned) anchor of one
/// period_i x period_j lattice and evaluates every lane's bank pointwise.
/// Exhaustive by MAF periodicity; used to differentially validate the
/// symbolic path.
AffineVerdict sweep_conflict_free(const maf::Maf& maf,
                                  const AffinePattern& pattern,
                                  AnchorClass anchors);

/// The support level the symbolic prover establishes (kAny > kAligned >
/// kNone). When `counterexample` is given, it receives the witness that
/// rules out the next-stronger level.
maf::SupportLevel prove_affine_support(
    const SymbolicMaf& maf, const AffinePattern& pattern,
    AffineCounterexample* counterexample = nullptr);

/// Checks the symbolic normal form against the concrete bank function
/// over a window spanning one period box plus negative coordinates;
/// returns the first disagreement ("(i,j): symbolic b1 != concrete b2").
std::string validate_symbolic_maf(const SymbolicMaf& sym, const maf::Maf& maf);

/// The canonical affine-pattern battery used to score how *polymorphic* a
/// geometry really is (dse::DseExplorer): the six Table-I families plus
/// strided and skewed variants, all with p·q lanes.
std::vector<AffinePattern> canonical_affine_suite(unsigned p, unsigned q);

}  // namespace polymem::verify
