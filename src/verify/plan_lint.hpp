// Access-plan linter: static analysis of batch descriptors and traces.
//
// PolyMem::read_batch/write_batch reject bad batches at runtime by
// throwing on the first problem; this linter analyses the same
// descriptors *without executing them* and reports every problem at
// once, with a stable diagnostic code per kind (lint_code) so tools and
// CI can gate on them:
//
//   PML001 bad-config          the configuration itself is invalid
//   PML002 empty-batch         a batch moves no data (or negative counts,
//                              or a degenerate/aliasing affine pattern)
//   PML003 unsupported-pattern the scheme never serves the pattern; for
//                              affine ops, the symbolic prover refutes the
//                              pattern (with a replayable counterexample)
//   PML004 unaligned-anchor    aligned-only pattern, unaligned start
//   PML005 misaligned-stride   aligned-only pattern, stride leaves the
//                              aligned anchor lattice
//   PML006 out-of-bounds       a corner access leaves the address space
//   PML007 bank-conflict       lane pair sharing a bank (with the worst
//                              per-bank load, i.e. the serialization cost)
//   PML008 read-after-write    a read overlaps an earlier write's elements
//   PML009 trace-out-of-bounds trace elements outside the space
//   PML010 bank-imbalance      trace skewed onto few banks (schedule
//                              length is lower-bounded by the worst bank)
//
// Batches are not limited to the six Table-I families: a BatchOp may carry
// an arbitrary AffinePattern (verify/affine.hpp). Such ops are admitted
// through the symbolic prover (verify/affine_prover.hpp) — proven
// conflict-free patterns pass with no diagnostic at all, aligned-only
// proofs get the same anchor/stride lint as the built-in aligned families,
// and refuted patterns are rejected with a concrete collision witness in
// Diagnostic::counterexample.
//
// Diagnostics never throw; a LintReport collects everything found.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/polymem.hpp"
#include "sched/trace.hpp"
#include "verify/affine.hpp"

namespace polymem::verify {

enum class LintKind : std::uint8_t {
  kBadConfig,
  kEmptyBatch,
  kUnsupportedPattern,
  kUnalignedAnchor,
  kMisalignedStride,
  kOutOfBounds,
  kBankConflict,
  kReadAfterWrite,
  kTraceOutOfBounds,
  kBankImbalance,
};

/// Stable diagnostic code ("PML006") / short name ("out-of-bounds").
const char* lint_code(LintKind kind);
const char* lint_name(LintKind kind);

enum class Severity : std::uint8_t { kWarning, kError };
const char* severity_name(Severity severity);

/// One finding. `message` always starts with "[<code>]" and names the
/// pattern, anchor and lanes involved; `op` is the index of the offending
/// program op (-1 when the finding concerns the whole input).
struct Diagnostic {
  LintKind kind = LintKind::kBadConfig;
  Severity severity = Severity::kError;
  std::string message;
  std::int64_t op = -1;
  /// Structured, replayable collision witness for conflict findings
  /// (PML003 on affine ops, PML004 aligned-only refutations, PML007).
  std::optional<AffineCounterexample> counterexample;
};

/// One step of a batch program: a direction plus the batch descriptor.
/// When `affine` is set, the op accesses that affine pattern instead of
/// the Table-I family in `batch.kind`; the batch anchor walk (start,
/// strides, counts) is unchanged, and admission goes through the symbolic
/// prover rather than the capability oracle.
struct BatchOp {
  enum class Dir : std::uint8_t { kRead, kWrite };
  Dir dir = Dir::kRead;
  core::AccessBatch batch;
  std::optional<AffinePattern> affine;
};

const char* dir_name(BatchOp::Dir dir);

struct LintReport {
  std::vector<Diagnostic> diagnostics;

  std::size_t errors() const;
  std::size_t warnings() const;
  bool ok() const { return errors() == 0; }

  /// One line per diagnostic plus a trailing error/warning count.
  std::string summary() const;
};

/// Lints a single batch descriptor (as op 0): support, alignment, bounds
/// and bank-conflict analysis — everything but cross-op hazards.
LintReport lint_batch(const core::PolyMemConfig& config,
                      const core::AccessBatch& batch);

/// Lints a whole program: every op individually plus read-after-write
/// hazards between each write and every later overlapping read.
LintReport lint_program(const core::PolyMemConfig& config,
                        const std::vector<BatchOp>& ops);

/// Lints an application trace against the configuration: out-of-bounds
/// elements and bank-load imbalance under the configuration's MAF.
LintReport lint_trace(const core::PolyMemConfig& config,
                      const sched::AccessTrace& trace);

}  // namespace polymem::verify
