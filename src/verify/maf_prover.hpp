// Static MAF conflict-freedom prover (verify/, the "prove before you run"
// layer).
//
// The paper's central claim — each PRF scheme's MAF keeps its pattern
// family conflict-free — and the invariants the plan-template cache
// (core/plan_cache.hpp) is built on are *static* properties of the
// (scheme, p, q) configuration. This module proves them once, offline,
// instead of sampling them at runtime:
//
//   1. bank range        — bank(i, j) lands in [0, p*q) everywhere;
//   2. periodicity       — Maf::period_i()/period_j() really are axis
//                          periods of the bank function;
//   3. conflict freedom  — every pattern the capability oracle claims is
//                          served maps its p*q lanes to distinct banks at
//                          *every* anchor of one period_i x period_j
//                          lattice (exhaustive by periodicity: any anchor
//                          in the unbounded space is congruent to a lattice
//                          anchor, so the sweep is a proof, not a sample);
//   4. address injectivity — (bank, A) is a bijection from the H x W space
//                          onto p*q banks of (H/p)*(W/q) words;
//   5. template agreement — every plan-cache template agrees bitwise with
//                          the naive MAF/AGU math for its whole
//                          (pattern, anchor-residue) class.
//
// On top of the lattice sweeps sits the *symbolic* layer
// (verify/affine_prover.hpp): arbitrary affine patterns are proven
// conflict-free algebraically, and every symbolic ingredient is itself
// checked here — the extracted SymbolicMaf normal form against the
// concrete bank function (PMV008), and every symbolic verdict against the
// brute-force period-lattice sweep (PMV009). prove_affine_pattern() is
// the one-stop entry the lint CLI uses for user-supplied specs.
//
// Checks operate on a black-box MafModel (a bank function plus claimed
// periods), so tests can inject deliberately-corrupted mutants the prover
// must reject; model_of() adapts the production Maf.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "access/pattern.hpp"
#include "core/config.hpp"
#include "maf/conflict.hpp"
#include "maf/maf.hpp"
#include "maf/scheme.hpp"
#include "verify/affine.hpp"
#include "verify/affine_prover.hpp"

namespace polymem::verify {

/// A module assignment function under verification: the bank mapping, its
/// claimed axis periods and the bank geometry. Checks treat it as a black
/// box, so corrupted mutants are first-class inputs for negative tests.
struct MafModel {
  unsigned p = 0;
  unsigned q = 0;
  std::int64_t period_i = 1;
  std::int64_t period_j = 1;
  std::function<unsigned(std::int64_t, std::int64_t)> bank;

  unsigned banks() const { return p * q; }
};

/// Adapts a production Maf (maf/maf.hpp) into a verifiable model.
MafModel model_of(const maf::Maf& maf);

/// The prover's check kinds. Every violation message carries the check's
/// stable diagnostic code (check_code) for tooling and tests.
enum class CheckKind : std::uint8_t {
  kConstruction,        ///< PMV001: the MAF cannot be built at all
  kBankRange,           ///< PMV002: bank() escapes [0, p*q)
  kPeriodicity,         ///< PMV003: claimed period is not a period
  kConflictFreedom,     ///< PMV004: two lanes of a pattern share a bank
  kAddressInjectivity,  ///< PMV005: (bank, addr) is not a bijection
  kTemplateAgreement,   ///< PMV006: plan-cache template != naive AGU math
  kAffineConflict,      ///< PMV007: an affine pattern provably collides
  kAffineForm,          ///< PMV008: symbolic MAF form != concrete banks
  kAffineDifferential,  ///< PMV009: symbolic verdict != brute-force sweep
  kAffineDegenerate,    ///< PMV010: affine pattern is ill-formed/aliasing
};

/// Stable diagnostic code ("PMV004") / short name ("conflict-freedom").
const char* check_code(CheckKind kind);
const char* check_name(CheckKind kind);

/// One disproved invariant: the failing check plus a message holding the
/// diagnostic code and a concrete counterexample (anchor, lane pair, ...).
struct Violation {
  CheckKind check = CheckKind::kConstruction;
  std::string message;
};

/// Checks bank(i, j) < p*q over one period window around the origin
/// (negative coordinates included).
std::optional<Violation> check_bank_range(const MafModel& model);

/// Checks bank(i + Pi, j) == bank(i, j) and bank(i, j + Pj) == bank(i, j)
/// over a window spanning negative and positive coordinates, plus the
/// plan-cache requirements Pi % p == 0 and Pj % q == 0.
std::optional<Violation> check_periodicity(const MafModel& model);

/// Exhaustive conflict-freedom proof of `pattern` under `model` for every
/// (optionally p/q-aligned) anchor of the period lattice. On failure the
/// violation names the pattern, the anchor and the offending lane pair.
std::optional<Violation> check_conflict_freedom(const MafModel& model,
                                                access::PatternKind pattern,
                                                bool aligned_only);

/// Checks that (bank, address) is a bijection from the height x width
/// space onto p*q banks of `words_per_bank` words each: every address in
/// range, no two elements sharing a (bank, address) slot, every slot hit.
std::optional<Violation> check_address_injectivity(
    const MafModel& model,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& address,
    std::int64_t height, std::int64_t width, std::int64_t words_per_bank);

/// Replays every (pattern, anchor-residue) plan-cache template of the
/// configuration against the naive AGU expansion: bank permutation,
/// inverse permutation and per-lane/per-bank addresses must agree.
std::optional<Violation> check_template_agreement(
    const core::PolyMemConfig& config);

/// The support level the lattice sweep actually proves (kAny > kAligned >
/// kNone). When `counterexample` is given, the first disproving violation
/// message of the stronger levels is stored there.
maf::SupportLevel prove_support(const MafModel& model,
                                access::PatternKind pattern,
                                std::string* counterexample = nullptr);

/// Checks the extracted symbolic normal form (SymbolicMaf) against the
/// concrete bank function over the full period window — the soundness
/// foundation of every symbolic verdict. PMV008 on disagreement.
std::optional<Violation> check_affine_form(const SymbolicMaf& sym,
                                           const maf::Maf& maf);

/// Differentially validates one symbolic verdict against the brute-force
/// period-lattice sweep: both must agree on conflict-freedom, and a
/// symbolic counterexample must replay to a real bank collision. PMV009
/// on any disagreement. `sym` is a parameter (not derived from `maf`) so
/// tests can inject corrupted forms the check must flag.
std::optional<Violation> check_affine_differential(const maf::Maf& maf,
                                                   const SymbolicMaf& sym,
                                                   const AffinePattern& pattern,
                                                   AnchorClass anchors);

/// One symbolically-proven affine pattern inside a ProverReport: the
/// symbolic support level, the brute-force reference level, and whether
/// they agree (`ok`). A pattern the scheme legitimately cannot serve has
/// proven == swept == kNone and ok == true — only *disagreement* is a
/// violation.
struct AffineProof {
  AffinePattern pattern;
  maf::SupportLevel proven = maf::SupportLevel::kNone;  ///< symbolic
  maf::SupportLevel swept = maf::SupportLevel::kNone;   ///< brute force
  std::optional<AffineCounterexample> counterexample;
  bool ok = false;
};

/// Self-contained verdict for one user-supplied affine pattern under one
/// configuration — the engine behind `polymem_lint --prove-affine`.
/// Violations use PMV007 (proven conflict, with a replayable
/// counterexample), PMV008/PMV009 (symbolic machinery unsound — never
/// expected for shipped schemes) and PMV010 (degenerate pattern).
/// ok == true means the pattern is admissible (kAny or kAligned).
struct AffineReport {
  maf::Scheme scheme = maf::Scheme::kReO;
  unsigned p = 0;
  unsigned q = 0;
  AffinePattern pattern;
  maf::SupportLevel proven = maf::SupportLevel::kNone;
  std::optional<AffineCounterexample> counterexample;
  std::vector<Violation> violations;
  bool ok = false;

  /// Multi-line human-readable report.
  std::string summary() const;
};

/// Proves one affine pattern under (scheme, p, q): symbolic support level,
/// PMV008 form validation, PMV009 differential validation of the verdict,
/// PMV007/PMV010 admission violations.
AffineReport prove_affine_pattern(maf::Scheme scheme, unsigned p, unsigned q,
                                  const AffinePattern& pattern);

/// Mutant-injectable overload: `sym` need not be the form extracted from
/// `maf`, so tests can feed corrupted normal forms and assert that
/// PMV008/PMV009 fire.
AffineReport prove_affine_pattern(const maf::Maf& maf, const SymbolicMaf& sym,
                                  const AffinePattern& pattern);

/// Per-pattern proof outcome: the proven level, the capability oracle's
/// claim (they must match) and whether the scheme's advertised family
/// (paper Table I) includes the pattern (advertised patterns must prove at
/// least kAligned).
struct PatternProof {
  access::PatternKind pattern = access::PatternKind::kRect;
  maf::SupportLevel proven = maf::SupportLevel::kNone;
  maf::SupportLevel claimed = maf::SupportLevel::kNone;
  bool advertised = false;
  bool ok = false;
  std::string detail;
};

struct ProverReport {
  maf::Scheme scheme = maf::Scheme::kReO;
  unsigned p = 0;
  unsigned q = 0;
  std::int64_t period_i = 0;
  std::int64_t period_j = 0;
  bool ok = false;
  std::vector<Violation> violations;
  std::vector<PatternProof> patterns;
  /// Symbolic-vs-sweep differential over the canonical affine suite
  /// (affine_prover.hpp); any disagreement is also a PMV009 violation.
  std::vector<AffineProof> affine;

  /// Multi-line human-readable report (one PASS/FAIL line per check).
  std::string summary() const;
};

/// Full static proof of one configuration: all checks above, all six
/// patterns. The report is self-contained; ok == true means every
/// invariant the runtime relies on is proven for the unbounded space.
ProverReport prove(const core::PolyMemConfig& config);

/// Convenience: proves (scheme, p, q) on a small synthetic address space
/// that covers every residue class of every pattern.
ProverReport prove(maf::Scheme scheme, unsigned p, unsigned q);

}  // namespace polymem::verify
